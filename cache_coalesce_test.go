package xrank

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// Engine-level coalescing under the race detector: a stampede of
// identical queries must resolve into few executions whose result every
// caller shares, with per-request accounting intact. The cache is off so
// every round starts a fresh flight; the deterministic exactly-once and
// waiter-cancellation contracts live in internal/cache's unit tests —
// this exercises the full engine path (flight context, I/O attribution,
// metrics) concurrently.
func TestEngineCoalesceRace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEngine(&Config{IndexDir: t.TempDir(), CoalesceQueries: true})
	for n := 0; n < 30; n++ {
		if err := e.AddXML(fmt.Sprintf("doc%02d", n), strings.NewReader(diffDoc(rng, n))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const rounds, callers = 4, 16
	opts := SearchOptions{Algorithm: AlgoDIL, TopM: 25}
	requests := 0
	for round := 0; round < rounds; round++ {
		q := diffQueries[round%len(diffQueries)]
		var (
			start   sync.WaitGroup
			done    sync.WaitGroup
			mu      sync.Mutex
			results [][]SearchResult
			stats   []*QueryStats
		)
		start.Add(1)
		for i := 0; i < callers; i++ {
			done.Add(1)
			go func() {
				defer done.Done()
				start.Wait()
				rs, st, err := e.SearchContext(context.Background(), q, opts)
				if err != nil {
					t.Errorf("round %d: %v", round, err)
					return
				}
				mu.Lock()
				results = append(results, rs)
				stats = append(stats, st)
				mu.Unlock()
			}()
		}
		start.Done()
		done.Wait()
		requests += callers
		if len(results) != callers {
			t.Fatalf("round %d: %d successes", round, len(results))
		}
		executions := 0
		for _, st := range stats {
			if st.Cached {
				t.Fatalf("round %d: cached result with the cache disabled", round)
			}
			if !st.Coalesced {
				executions++
				continue
			}
			// A coalesced caller did no I/O of its own.
			if st.IO.Reads != 0 || st.IO.CacheHits != 0 {
				t.Fatalf("round %d: coalesced caller attributed I/O: %+v", round, st.IO)
			}
		}
		if executions < 1 {
			t.Fatalf("round %d: no caller executed", round)
		}
		// Every caller shares one result set, element for element.
		for i := 1; i < len(results); i++ {
			if len(results[i]) != len(results[0]) {
				t.Fatalf("round %d: caller %d got %d results, caller 0 got %d",
					round, i, len(results[i]), len(results[0]))
			}
			for j := range results[i] {
				if results[i][j] != results[0][j] {
					t.Fatalf("round %d: caller %d result %d differs", round, i, j)
				}
			}
		}
	}

	// Per-request accounting: with no abandoned callers, every request —
	// executed or coalesced — recorded exactly one query.
	total := e.Metrics().Counter(metricQueries, helpQueries, "algo", "DIL").Value()
	if total != int64(requests) {
		t.Fatalf("queries_total = %d, want %d (one per request)", total, requests)
	}

	// A waiter whose context dies mid-stampede either shares the flight's
	// result (it resolved first) or gets its own ctx error — never a
	// partial result, never a crash. Run it a few times under -race.
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, _, err := e.SearchContext(context.Background(), "alpha beta gamma", opts); err != nil {
					t.Errorf("survivor: %v", err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, _, err := e.SearchContext(ctx, "alpha beta gamma", opts)
			if err == nil && rs == nil {
				t.Error("cancelled caller: nil results without error")
			}
			if err != nil && err != context.Canceled && !strings.Contains(err.Error(), "context canceled") {
				t.Errorf("cancelled caller: unexpected error %v", err)
			}
		}()
		time.Sleep(time.Duration(i) * 100 * time.Microsecond)
		cancel()
		wg.Wait()
	}
}
