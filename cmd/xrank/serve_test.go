package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"xrank"
)

func newTestEngine(t *testing.T) *xrank.Engine {
	t.Helper()
	e := xrank.NewEngine(nil)
	doc := `<workshop><title>xml search systems</title>
	 <paper id="1"><title>ranked xml keyword search</title><body>the xql language and more</body></paper>
	 <paper id="2"><title>another xml paper</title><cite ref="1">see</cite></paper>
	</workshop>`
	if err := e.AddXML("ws", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestServeSearchAPI(t *testing.T) {
	mux := newMux(newTestEngine(t), muxOptions{metrics: true})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=xql+language&m=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Query     string
		Algorithm string
		Results   []xrank.SearchResult
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Query != "xql language" || resp.Algorithm != "HDIL" || len(resp.Results) == 0 {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Results[0].Tag != "body" {
		t.Errorf("top result tag = %q (want the most specific element)", resp.Results[0].Tag)
	}

	// Algorithm selection and validation.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=xml&algo=dil", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"DIL"`) {
		t.Errorf("algo=dil: %d %s", rec.Code, rec.Body)
	}
	for _, bad := range []string{
		"/api/search",                // missing q
		"/api/search?q=xml&m=0",      // bad m
		"/api/search?q=xml&m=x",      // bad m
		"/api/search?q=xml&algo=wat", // bad algo
	} {
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}
}

func TestServeAncestorsAPI(t *testing.T) {
	e := newTestEngine(t)
	mux := newMux(e, muxOptions{metrics: true})
	rs, err := e.Search("xql language")
	if err != nil || len(rs) == 0 {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/ancestors?id="+rs[0].DeweyID, nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var anc []xrank.SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &anc); err != nil {
		t.Fatal(err)
	}
	if len(anc) == 0 || anc[len(anc)-1].Tag != "workshop" {
		t.Errorf("ancestors = %+v", anc)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/ancestors?id=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bogus id: status %d", rec.Code)
	}
}

func TestServeHTMLPage(t *testing.T) {
	mux := newMux(newTestEngine(t), muxOptions{metrics: true})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/?q=xml", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "XRANK") || !strings.Contains(body, "workshop") {
		t.Errorf("page body missing content:\n%s", body)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Errorf("unknown path: %d", rec.Code)
	}
}
