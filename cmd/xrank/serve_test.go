package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"xrank"
)

func newTestEngine(t *testing.T) *xrank.Engine {
	t.Helper()
	e := xrank.NewEngine(nil)
	doc := `<workshop><title>xml search systems</title>
	 <paper id="1"><title>ranked xml keyword search</title><body>the xql language and more</body></paper>
	 <paper id="2"><title>another xml paper</title><cite ref="1">see</cite></paper>
	</workshop>`
	if err := e.AddXML("ws", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestServeSearchAPI(t *testing.T) {
	mux := newMux(newTestEngine(t), muxOptions{Metrics: true})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=xql+language&m=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Query     string
		Algorithm string
		Results   []xrank.SearchResult
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Query != "xql language" || resp.Algorithm != "HDIL" || len(resp.Results) == 0 {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Results[0].Tag != "body" {
		t.Errorf("top result tag = %q (want the most specific element)", resp.Results[0].Tag)
	}

	// Algorithm selection and validation.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=xml&algo=dil", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"DIL"`) {
		t.Errorf("algo=dil: %d %s", rec.Code, rec.Body)
	}
	for _, bad := range []string{
		"/api/search",                // missing q
		"/api/search?q=xml&m=0",      // bad m
		"/api/search?q=xml&m=x",      // bad m
		"/api/search?q=xml&algo=wat", // bad algo
	} {
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}
}

// TestServeSuggestAPI drives /api/suggest: completion, multi-keyword
// normalization, the empty-prefix and no-match shapes, and parameter
// validation.
func TestServeSuggestAPI(t *testing.T) {
	mux := newMux(newTestEngine(t), muxOptions{Metrics: true})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/suggest?q=xq&k=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Query       string
		Prefix      string
		Terms       int
		Suggestions []xrank.Suggestion
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Query != "xq" || resp.Prefix != "xq" || resp.Terms == 0 || len(resp.Suggestions) == 0 {
		t.Fatalf("response = %+v", resp)
	}
	for _, s := range resp.Suggestions {
		if !strings.HasPrefix(s.Term, "xq") {
			t.Errorf("completion %q does not extend the prefix", s.Term)
		}
	}
	if st := rec.Header().Get("Server-Timing"); !strings.Contains(st, "queue;dur=") {
		t.Errorf("Server-Timing = %q", st)
	}

	// Raw multi-keyword input: only the last token is completed, folded
	// through the index tokenizer.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/suggest?q=ranked+XM", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"prefix":"xm"`) {
		t.Fatalf("multi-keyword: %d %s", rec.Code, rec.Body)
	}

	// An empty q is valid: the top terms of the whole dictionary.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/suggest?q=", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"term"`) {
		t.Fatalf("empty prefix: %d %s", rec.Code, rec.Body)
	}

	// No match: 200 with an empty array, never null.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/suggest?q=zzzz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"suggestions":[]`) {
		t.Fatalf("no match: %d %s", rec.Code, rec.Body)
	}

	for _, bad := range []string{
		"/api/suggest",          // missing q entirely
		"/api/suggest?q=x&k=0",  // bad k
		"/api/suggest?q=x&k=-1", // bad k
		"/api/suggest?q=x&k=x",  // bad k
	} {
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}
}

// TestServeSuggestDisabled: an engine built with SuggestDisabled maps
// ErrSuggestDisabled to 403, like the updates gate.
func TestServeSuggestDisabled(t *testing.T) {
	e := xrank.NewEngine(&xrank.Config{IndexDir: t.TempDir(), SuggestDisabled: true})
	if err := e.AddXML("d", strings.NewReader("<doc><t>xml search</t></doc>")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	mux := newMux(e, muxOptions{})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/suggest?q=x", nil))
	if rec.Code != 403 {
		t.Fatalf("suggest disabled: status %d, want 403: %s", rec.Code, rec.Body)
	}
}

func TestServeAncestorsAPI(t *testing.T) {
	e := newTestEngine(t)
	mux := newMux(e, muxOptions{Metrics: true})
	rs, err := e.Search("xql language")
	if err != nil || len(rs) == 0 {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/ancestors?id="+rs[0].DeweyID, nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var anc []xrank.SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &anc); err != nil {
		t.Fatal(err)
	}
	if len(anc) == 0 || anc[len(anc)-1].Tag != "workshop" {
		t.Errorf("ancestors = %+v", anc)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/ancestors?id=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bogus id: status %d", rec.Code)
	}
}

func TestServeHTMLPage(t *testing.T) {
	mux := newMux(newTestEngine(t), muxOptions{Metrics: true})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/?q=xml", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "XRANK") || !strings.Contains(body, "workshop") {
		t.Errorf("page body missing content:\n%s", body)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Errorf("unknown path: %d", rec.Code)
	}
}

// TestServeDocsAPI drives the mutating /api/docs endpoints: add a
// document, see it in search results, replace it, delete it, and watch
// the opt-in gate and error statuses.
func TestServeDocsAPI(t *testing.T) {
	e := xrank.NewEngine(&xrank.Config{IndexDir: t.TempDir()})
	if err := e.AddXML("base", strings.NewReader("<doc><t>xml search</t></doc>")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	mux := newMux(e, muxOptions{Updates: true})

	do := func(method, url, body string) *httptest.ResponseRecorder {
		t.Helper()
		var r *httptest.ResponseRecorder = httptest.NewRecorder()
		var req = httptest.NewRequest(method, url, strings.NewReader(body))
		mux.ServeHTTP(r, req)
		return r
	}

	// Add, then find the new document.
	if rec := do("POST", "/api/docs?name=extra", "<doc><t>zebra quartz</t></doc>"); rec.Code != 200 {
		t.Fatalf("add: status %d: %s", rec.Code, rec.Body)
	}
	if rec := do("GET", "/api/search?q=zebra+quartz", ""); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"extra"`) {
		t.Fatalf("search after add: %d %s", rec.Code, rec.Body)
	}

	// Replace it (same name), then delete it.
	if rec := do("PUT", "/api/docs?name=extra", "<doc><t>different words</t></doc>"); rec.Code != 200 {
		t.Fatalf("replace: status %d: %s", rec.Code, rec.Body)
	}
	if rec := do("DELETE", "/api/docs?name=extra", ""); rec.Code != 200 {
		t.Fatalf("delete: status %d: %s", rec.Code, rec.Body)
	}
	if rec := do("GET", "/api/search?q=different+words", ""); strings.Contains(rec.Body.String(), `"extra"`) {
		t.Fatalf("deleted doc still served: %s", rec.Body)
	}

	// Error statuses: double delete 404, missing name 400, bad method 405.
	if rec := do("DELETE", "/api/docs?name=extra", ""); rec.Code != 404 {
		t.Errorf("double delete: status %d, want 404", rec.Code)
	}
	if rec := do("POST", "/api/docs", "<doc/>"); rec.Code != 400 {
		t.Errorf("missing name: status %d, want 400", rec.Code)
	}
	if rec := do("GET", "/api/docs?name=x", ""); rec.Code != 405 {
		t.Errorf("GET: status %d, want 405", rec.Code)
	}

	// The opt-in gate: a mux without Updates refuses.
	frozen := newMux(e, muxOptions{})
	rec := httptest.NewRecorder()
	frozen.ServeHTTP(rec, httptest.NewRequest("POST", "/api/docs?name=y", strings.NewReader("<d/>")))
	if rec.Code != 403 {
		t.Errorf("updates disabled: status %d, want 403", rec.Code)
	}
}

// TestServeServerTiming checks /api/search answers carry the
// Server-Timing header on both the success and the shed path.
func TestServeServerTiming(t *testing.T) {
	mux := newMux(newTestEngine(t), muxOptions{})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=xml", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	st := rec.Header().Get("Server-Timing")
	if !strings.Contains(st, "queue;dur=") || !strings.Contains(st, "search;dur=") {
		t.Errorf("Server-Timing = %q", st)
	}
}
