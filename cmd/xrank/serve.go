package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"time"

	"xrank"
	"xrank/internal/cache"
)

// serveCacheBytesDefault is the result-cache size the serve command uses
// when neither the -cache-bytes flag nor the persisted engine config
// picks one. Serving is exactly the workload the cache exists for, so it
// is on by default here (the engine library keeps it opt-in).
const serveCacheBytesDefault = 32 << 20

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("dir", "", "index directory (required)")
	addr := fs.String("addr", ":8080", "listen address")
	slowMS := fs.Int("slowlog-ms", 0, "slow-query log threshold in milliseconds (0 = engine default 250, negative disables)")
	metrics := fs.Bool("metrics", true, "serve Prometheus metrics at /metrics")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof at /debug/pprof/")
	failDegraded := fs.Bool("fail-on-degraded", false, "fail queries (503) instead of serving partial results when shards are excluded")
	cacheBytes := fs.Int64("cache-bytes", -1, "result cache size in bytes (0 disables; -1 = engine config, or 32 MiB if unset)")
	coalesce := fs.Bool("coalesce", true, "coalesce concurrent identical queries into a single execution")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently executing /api/search requests (0 = engine config; negative disables admission control)")
	admissionQueue := fs.Int("admission-queue", 0, "admission wait-queue length (0 = engine config or 2x max-inflight; negative disables queueing)")
	maxSegments := fs.Int("max-segments", 0, "compact when more than this many index segments accumulate (0 = engine config or 4; negative disables the compactor)")
	compactInterval := fs.Int("compact-interval-ms", 0, "background compactor check interval in milliseconds (0 = engine config or 1000)")
	compactBudget := fs.Int64("compact-budget-pages", 0, "max pages of write I/O one compaction may issue (0 = engine config or unmetered)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("serve: -dir is required")
	}
	e, err := xrank.OpenEngine(*dir)
	if err != nil {
		return err
	}
	defer e.Close()
	e.SetFailOnDegraded(*failDegraded)
	if *slowMS != 0 {
		d := time.Duration(*slowMS) * time.Millisecond
		if *slowMS < 0 {
			d = -1
		}
		e.SlowLog().SetThreshold(d)
	}
	cfg := e.Config()
	bytes := *cacheBytes
	if bytes < 0 {
		bytes = cfg.CacheBytes
		if bytes <= 0 {
			bytes = serveCacheBytesDefault
		}
	}
	e.ConfigureResultCache(bytes)
	e.SetCoalesceQueries(*coalesce)
	inflight := *maxInflight
	if inflight == 0 {
		inflight = cfg.MaxInflightQueries
	}
	queue := *admissionQueue
	if queue == 0 {
		queue = cfg.AdmissionQueue
	}
	var adm *cache.Admission
	if inflight > 0 {
		adm = cache.NewAdmission(inflight, queue)
	}
	segLimit := *maxSegments
	if segLimit == 0 {
		segLimit = cfg.MaxSegments
		if segLimit == 0 {
			segLimit = 4
		}
	}
	if segLimit > 0 {
		interval := *compactInterval
		if interval == 0 {
			interval = cfg.CompactIntervalMillis
		}
		budgetPages := *compactBudget
		if budgetPages == 0 {
			budgetPages = cfg.CompactBudgetPages
		}
		if err := e.StartCompactor(time.Duration(interval)*time.Millisecond, segLimit, budgetPages); err != nil {
			return err
		}
	}
	log.Printf("xrank: serving on %s (index %s)", *addr, *dir)
	return http.ListenAndServe(*addr, newMux(e, muxOptions{metrics: *metrics, pprof: *pprofOn, admission: adm}))
}

// muxOptions selects the optional observability endpoints.
type muxOptions struct {
	metrics   bool             // serve /metrics (Prometheus text exposition)
	pprof     bool             // serve /debug/pprof/ (opt-in: exposes runtime internals)
	admission *cache.Admission // bound /api/search concurrency (nil: unbounded)
}

// withRecovery wraps a handler so a panicking request logs the stack,
// increments xrank_http_panics_total, and answers 500 — one bad request
// never takes down the server or leaves the client hanging.
func withRecovery(e *xrank.Engine, next http.Handler) http.Handler {
	panics := e.Metrics().Counter("xrank_http_panics_total", "HTTP requests that panicked and were answered with a 500.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				panics.Inc()
				log.Printf("http: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				// Best effort: if the handler already wrote a status line
				// this is a no-op and the client sees a truncated body.
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// newMux builds the HTTP API: /api/search, /api/ancestors, /api/shards,
// /api/segments, /api/slowlog, a minimal HTML search page at /, and — per opts —
// /metrics and /debug/pprof/. The whole mux sits behind the
// panic-recovery middleware.
func newMux(e *xrank.Engine, opts muxOptions) http.Handler {
	mux := http.NewServeMux()
	// Admission metrics live in the engine registry so one /metrics scrape
	// covers the whole serving path.
	admAdmitted := e.Metrics().Counter("xrank_admission_admitted_total", "Search requests admitted past the concurrency limiter.")
	admShed := e.Metrics().Counter("xrank_admission_shed_total", "Search requests shed with 429: limiter saturated and queue full.")
	admExpired := e.Metrics().Counter("xrank_admission_expired_total", "Search requests whose deadline expired while queued (503).")
	admWaiting := e.Metrics().Gauge("xrank_admission_queued", "Search requests currently waiting for an execution slot.")
	mux.HandleFunc("/api/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `missing "q" parameter`, http.StatusBadRequest)
			return
		}
		m := 10
		if ms := r.URL.Query().Get("m"); ms != "" {
			v, err := strconv.Atoi(ms)
			if err != nil || v < 1 || v > 1000 {
				http.Error(w, `bad "m" parameter`, http.StatusBadRequest)
				return
			}
			m = v
		}
		algo := xrank.AlgoHDIL
		if as := r.URL.Query().Get("algo"); as != "" {
			a, err := parseAlgo(as)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			algo = a
		}
		// The request context flows into the query: a client that
		// disconnects or a timeout_ms that expires cancels the merge at
		// its next page access instead of burning I/O on a dead request.
		ctx := r.Context()
		if ts := r.URL.Query().Get("timeout_ms"); ts != "" {
			v, err := strconv.Atoi(ts)
			if err != nil || v < 1 {
				http.Error(w, `bad "timeout_ms" parameter`, http.StatusBadRequest)
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(v)*time.Millisecond)
			defer cancel()
		}
		var budget int64
		if bs := r.URL.Query().Get("budget"); bs != "" {
			v, err := strconv.ParseInt(bs, 10, 64)
			if err != nil || v < 1 {
				http.Error(w, `bad "budget" parameter`, http.StatusBadRequest)
				return
			}
			budget = v
		}
		// Admission gate: parameters are validated above (rejecting a
		// malformed request never costs a slot), and ctx already carries
		// the request's deadline so time queued counts against it.
		if adm := opts.admission; adm != nil {
			admWaiting.Add(1)
			err := adm.Acquire(ctx)
			admWaiting.Add(-1)
			if err != nil {
				status := http.StatusServiceUnavailable
				if errors.Is(err, cache.ErrQueueFull) {
					status = http.StatusTooManyRequests
					admShed.Inc()
				} else {
					admExpired.Inc()
				}
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(status)
				json.NewEncoder(w).Encode(map[string]interface{}{
					"error":               err.Error(),
					"retry_after_seconds": 1,
				})
				return
			}
			admAdmitted.Inc()
			defer adm.Release()
		}
		results, stats, err := e.SearchContext(ctx, q, xrank.SearchOptions{
			TopM: m, Algorithm: algo, MaxPageReads: budget,
		})
		if err != nil {
			http.Error(w, err.Error(), searchErrorStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		resp := map[string]interface{}{
			"query":      q,
			"algorithm":  stats.Algorithm.String(),
			"wall_us":    stats.WallTime.Microseconds(),
			"io_reads":   stats.IO.Reads,
			"cache_hits": stats.IO.CacheHits,
			"shards":     stats.Shards,
			"degraded":   stats.Degraded,
			"cached":     stats.Cached,
			"results":    results,
		}
		if stats.Coalesced {
			resp["coalesced"] = true
		}
		if stats.Degraded {
			resp["failed_shards"] = stats.FailedShards
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/api/cache", func(w http.ResponseWriter, r *http.Request) {
		resp := map[string]interface{}{"cache": e.CacheStats()}
		if opts.admission != nil {
			resp["admission"] = opts.admission.Stats()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/api/shards", func(w http.ResponseWriter, r *http.Request) {
		per := e.ShardIOStats()
		health := e.ShardHealth()
		unhealthy := 0
		shards := make([]map[string]interface{}, len(per))
		for i, s := range per {
			shards[i] = map[string]interface{}{
				"shard":      i,
				"io_reads":   s.Reads,
				"seq_reads":  s.SeqReads,
				"rand_reads": s.RandReads,
				"cache_hits": s.CacheHits,
			}
			if i < len(health) {
				h := health[i]
				shards[i]["healthy"] = h.Healthy
				shards[i]["consecutive_failures"] = h.Failures
				if h.LastError != "" {
					shards[i]["last_error"] = h.LastError
				}
				if !h.Healthy {
					unhealthy++
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"num_shards": e.NumShards(),
			"unhealthy":  unhealthy,
			"shards":     shards,
		})
	})
	mux.HandleFunc("/api/segments", func(w http.ResponseWriter, r *http.Request) {
		segs := e.Segments()
		stale := 0
		for _, s := range segs {
			if s.Stale {
				stale++
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"num_segments": len(segs),
			"rank_version": e.RankVersion(),
			"stale":        stale,
			"segments":     segs,
		})
	})
	mux.HandleFunc("/api/slowlog", func(w http.ResponseWriter, r *http.Request) {
		l := e.SlowLog()
		entries := l.Entries()
		if ls := r.URL.Query().Get("limit"); ls != "" {
			v, err := strconv.Atoi(ls)
			if err != nil || v < 1 {
				http.Error(w, `bad "limit" parameter`, http.StatusBadRequest)
				return
			}
			if v < len(entries) {
				entries = entries[:v]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"threshold_ms": l.Threshold().Milliseconds(),
			"total":        l.Total(),
			"entries":      entries,
		})
	})
	if opts.metrics {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := e.Metrics().WritePrometheus(w); err != nil {
				log.Printf("metrics: %v", err)
			}
		})
	}
	if opts.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/api/ancestors", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		anc, err := e.Ancestors(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(anc)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		q := r.URL.Query().Get("q")
		data := struct {
			Query   string
			Results []xrank.SearchResult
			Err     string
		}{Query: q}
		if q != "" {
			rs, err := e.Search(q)
			if err != nil {
				data.Err = err.Error()
			} else {
				data.Results = rs
			}
		}
		if err := page.Execute(w, data); err != nil {
			log.Printf("render: %v", err)
		}
	})
	return withRecovery(e, mux)
}

// searchErrorStatus maps a query failure to an HTTP status: timeouts to
// 504, client disconnects, exhausted budgets and degraded-mode refusals
// (FailOnDegraded) to 503 (the service is temporarily unable to serve a
// complete answer), everything else to 500.
func searchErrorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled),
		errors.Is(err, xrank.ErrBudgetExceeded),
		errors.Is(err, xrank.ErrDegraded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

var page = template.Must(template.New("page").Parse(`<!doctype html>
<html><head><title>XRANK</title>
<style>
 body { font-family: sans-serif; max-width: 48rem; margin: 2rem auto; }
 .path { color: #666; font-size: 0.85rem; }
 .score { color: #295; }
 .snippet { margin: 0.2rem 0 1rem; }
</style></head>
<body>
<h1>XRANK — ranked XML keyword search</h1>
<form action="/" method="get"><input name="q" size="50" value="{{.Query}}" autofocus>
<button type="submit">Search</button></form>
{{if .Err}}<p style="color:#a00">{{.Err}}</p>{{end}}
{{range .Results}}
  <div>
   <div><span class="score">{{printf "%.3g" .Score}}</span> &lt;{{.Tag}}&gt; in <b>{{.Doc}}</b></div>
   <div class="path">{{.Path}} (dewey {{.DeweyID}})</div>
   <div class="snippet">{{.Snippet}}</div>
  </div>
{{end}}
</body></html>`))
