package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"xrank"
	"xrank/internal/cache"
	"xrank/internal/httpapi"
)

// serveCacheBytesDefault is the result-cache size the serve command uses
// when neither the -cache-bytes flag nor the persisted engine config
// picks one. Serving is exactly the workload the cache exists for, so it
// is on by default here (the engine library keeps it opt-in).
const serveCacheBytesDefault = 32 << 20

// muxOptions and newMux alias the extracted internal/httpapi package so
// the serve command and its tests read as before; the handler stack
// itself now lives where in-process harnesses (xrank-loadgen -inproc)
// can mount it too.
type muxOptions = httpapi.Options

func newMux(e *xrank.Engine, opts muxOptions) http.Handler { return httpapi.NewMux(e, opts) }

func searchErrorStatus(err error) int { return httpapi.SearchErrorStatus(err) }

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("dir", "", "index directory (required)")
	addr := fs.String("addr", ":8080", "listen address")
	slowMS := fs.Int("slowlog-ms", 0, "slow-query log threshold in milliseconds (0 = engine default 250, negative disables)")
	metrics := fs.Bool("metrics", true, "serve Prometheus metrics at /metrics")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof at /debug/pprof/")
	updates := fs.Bool("updates", false, "serve POST/DELETE /api/docs (mutates the index)")
	failDegraded := fs.Bool("fail-on-degraded", false, "fail queries (503) instead of serving partial results when shards are excluded")
	cacheBytes := fs.Int64("cache-bytes", -1, "result cache size in bytes (0 disables; -1 = engine config, or 32 MiB if unset)")
	coalesce := fs.Bool("coalesce", true, "coalesce concurrent identical queries into a single execution")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently executing /api/search requests (0 = engine config; negative disables admission control)")
	admissionQueue := fs.Int("admission-queue", 0, "admission wait-queue length (0 = engine config or 2x max-inflight; negative disables queueing)")
	maxSegments := fs.Int("max-segments", 0, "compact when more than this many index segments accumulate (0 = engine config or 4; negative disables the compactor)")
	compactInterval := fs.Int("compact-interval-ms", 0, "background compactor check interval in milliseconds (0 = engine config or 1000)")
	compactBudget := fs.Int64("compact-budget-pages", 0, "max pages of write I/O one compaction may issue (0 = engine config or unmetered)")
	suggestMaxK := fs.Int("suggest-max-k", 0, "max completions one /api/suggest request may ask for (0 = engine config or 50)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("serve: -dir is required")
	}
	e, err := xrank.OpenEngine(*dir)
	if err != nil {
		return err
	}
	defer e.Close()
	e.SetFailOnDegraded(*failDegraded)
	if *slowMS != 0 {
		d := time.Duration(*slowMS) * time.Millisecond
		if *slowMS < 0 {
			d = -1
		}
		e.SlowLog().SetThreshold(d)
	}
	cfg := e.Config()
	bytes := *cacheBytes
	if bytes < 0 {
		bytes = cfg.CacheBytes
		if bytes <= 0 {
			bytes = serveCacheBytesDefault
		}
	}
	e.ConfigureResultCache(bytes)
	e.SetCoalesceQueries(*coalesce)
	if *suggestMaxK != 0 {
		e.SetSuggestMaxK(*suggestMaxK)
	}
	inflight := *maxInflight
	if inflight == 0 {
		inflight = cfg.MaxInflightQueries
	}
	queue := *admissionQueue
	if queue == 0 {
		queue = cfg.AdmissionQueue
	}
	var adm *cache.Admission
	if inflight > 0 {
		adm = cache.NewAdmission(inflight, queue)
	}
	segLimit := *maxSegments
	if segLimit == 0 {
		segLimit = cfg.MaxSegments
		if segLimit == 0 {
			segLimit = 4
		}
	}
	if segLimit > 0 {
		interval := *compactInterval
		if interval == 0 {
			interval = cfg.CompactIntervalMillis
		}
		budgetPages := *compactBudget
		if budgetPages == 0 {
			budgetPages = cfg.CompactBudgetPages
		}
		if err := e.StartCompactor(time.Duration(interval)*time.Millisecond, segLimit, budgetPages); err != nil {
			return err
		}
	}
	log.Printf("xrank: serving on %s (index %s)", *addr, *dir)
	return http.ListenAndServe(*addr, newMux(e, muxOptions{
		Metrics: *metrics, Pprof: *pprofOn, Updates: *updates, Admission: adm,
	}))
}
