// Command xrank indexes and searches XML/HTML document collections with
// the XRANK ranked keyword search engine.
//
//	xrank index  -dir ./idx docs/*.xml pages/*.html
//	xrank search -dir ./idx -m 10 -algo hdil "xql language"
//	xrank serve  -dir ./idx -addr :8080
//
// The index directory is self-contained (inverted lists, B+-trees,
// ElemRanks and a document store), so search/serve reopen it without the
// original files.
package main

import (
	"flag"
	"fmt"
	"os"

	"xrank"
	"xrank/internal/httpapi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "index":
		err = cmdIndex(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "xrank: unknown command %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xrank:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  xrank index  -dir DIR [flags] FILE...   build an index over XML/HTML files
  xrank search -dir DIR [flags] QUERY     run a ranked keyword query
  xrank serve  -dir DIR [-addr :8080]     serve a search API + mini UI
`)
	os.Exit(2)
}

func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	dir := fs.String("dir", "", "index directory (required)")
	decay := fs.Float64("decay", 0.75, "per-level rank decay in (0,1]")
	skipNaive := fs.Bool("skip-naive", true, "omit the naive baseline indexes")
	compress := fs.Bool("compress", false, "prefix-compress Dewey postings")
	block := fs.Bool("block", false, "block-encode postings with per-block skip indexes (enables block-max pruning)")
	shards := fs.Int("shards", 1, "partition the index into N document shards queried in parallel")
	answerTags := fs.String("answer-tags", "", "comma-separated answer-node tags (empty: all elements)")
	fs.Parse(args)
	if *dir == "" || fs.NArg() == 0 {
		return fmt.Errorf("index: -dir and at least one input file are required")
	}
	if *shards < 1 {
		return fmt.Errorf("index: -shards must be >= 1")
	}
	cfg := &xrank.Config{IndexDir: *dir, Decay: *decay, SkipNaive: *skipNaive, CompressDewey: *compress, BlockPostings: *block, Shards: *shards}
	if *answerTags != "" {
		cfg.AnswerTags = splitComma(*answerTags)
	}
	e := xrank.NewEngine(cfg)
	for _, path := range fs.Args() {
		if err := e.AddFile(path); err != nil {
			return err
		}
	}
	info, err := e.Build()
	if err != nil {
		return err
	}
	defer e.Close()
	fmt.Printf("indexed %d documents, %d elements, %d terms\n", info.NumDocs, info.NumElements, info.Terms)
	fmt.Printf("ElemRank: %d iterations in %v (links: %d resolved, %d dangling)\n",
		info.ElemRankIterations, info.ElemRankTime.Round(1e6), info.ResolvedLinks, info.DanglingLinks)
	fmt.Printf("index size: DIL %.2fMB, RDIL %.2fMB+%.2fMB trees, HDIL +%.2fMB prefix +%.2fMB trees\n",
		mb(info.Sizes.DILList), mb(info.Sizes.RDILList), mb(info.Sizes.RDILIndex),
		mb(info.Sizes.HDILRank), mb(info.Sizes.HDILIndex))
	return nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	dir := fs.String("dir", "", "index directory (required)")
	m := fs.Int("m", 10, "number of results")
	algo := fs.String("algo", "hdil", "algorithm: dil, rdil, hdil, naiveid, naiverank")
	stats := fs.Bool("stats", false, "print query cost statistics")
	disjunctive := fs.Bool("or", false, "disjunctive semantics (match any keyword)")
	tfidf := fs.Bool("tfidf", false, "tf-idf scoring instead of ElemRank (dil/naiveid only)")
	fragments := fs.Bool("frag", false, "print each result's XML fragment")
	fs.Parse(args)
	if *dir == "" || fs.NArg() == 0 {
		return fmt.Errorf("search: -dir and a query are required")
	}
	a, err := parseAlgo(*algo)
	if err != nil {
		return err
	}
	e, err := xrank.OpenEngine(*dir)
	if err != nil {
		return err
	}
	defer e.Close()
	query := ""
	for i, w := range fs.Args() {
		if i > 0 {
			query += " "
		}
		query += w
	}
	results, qs, err := e.SearchDetailed(query, xrank.SearchOptions{
		TopM:        *m,
		Algorithm:   a,
		Disjunctive: *disjunctive,
		TFIDF:       *tfidf,
	})
	if err != nil {
		return err
	}
	if len(results) == 0 {
		fmt.Println("no results")
		return nil
	}
	for i, r := range results {
		fmt.Printf("%2d. [%.3g] <%s>  %s (%s)\n    %s\n", i+1, r.Score, r.Tag, r.Path, r.Doc, r.Snippet)
		if *fragments {
			frag, err := e.Fragment(r.DeweyID, 3)
			if err != nil {
				return err
			}
			fmt.Printf("    %s\n", frag)
		}
	}
	if *stats {
		fmt.Printf("\n%s: %v wall, %d page reads (%d seq, %d random), %v simulated cold-disk\n",
			qs.Algorithm, qs.WallTime.Round(1e3), qs.IO.Reads, qs.IO.SeqReads, qs.IO.RandReads, qs.SimulatedTime.Round(1e5))
		if qs.IO.BlocksDecoded > 0 || qs.IO.BlocksSkipped > 0 {
			fmt.Printf("blocks: %d decoded, %d skipped\n", qs.IO.BlocksDecoded, qs.IO.BlocksSkipped)
		}
	}
	return nil
}

func parseAlgo(s string) (xrank.Algorithm, error) { return httpapi.ParseAlgo(s) }

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func mb(n int64) float64 { return float64(n) / (1 << 20) }
