package main

import (
	"bufio"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMetricsUnderConcurrentQueries runs the serve-time access pattern
// end to end: 16 goroutines issue queries through /api/search while
// others scrape /metrics and read /api/slowlog. Run under -race this
// exercises the whole query → registry → exposition path; afterwards
// the global counters must equal the sums of the per-query stats the
// search responses reported — every query counted exactly once, no
// bleed between concurrent queries.
func TestMetricsUnderConcurrentQueries(t *testing.T) {
	e := newTestEngine(t)
	e.SlowLog().SetThreshold(0) // log every query
	mux := newMux(e, muxOptions{Metrics: true})

	const (
		queryGoroutines = 16
		perGoroutine    = 25
	)
	urls := []string{
		"/api/search?q=xql+language&algo=dil",
		"/api/search?q=xml+search&algo=rdil",
		"/api/search?q=xml+systems&algo=hdil",
		"/api/search?q=language&algo=naiveid",
	}

	var (
		wantQueries = int64(queryGoroutines * perGoroutine)
		gotReads    atomic.Int64 // summed from per-query responses
		gotHits     atomic.Int64
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rec := get(t, mux, "/metrics"); rec.Code != 200 {
					t.Errorf("metrics scrape: status %d", rec.Code)
					return
				}
				if rec := get(t, mux, "/api/slowlog?limit=10"); rec.Code != 200 {
					t.Errorf("slowlog read: status %d", rec.Code)
					return
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for g := 0; g < queryGoroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perGoroutine; i++ {
				rec := get(t, mux, urls[(g+i)%len(urls)])
				if rec.Code != 200 {
					t.Errorf("query: status %d: %s", rec.Code, rec.Body)
					return
				}
				var resp struct {
					IOReads   int64 `json:"io_reads"`
					CacheHits int64 `json:"cache_hits"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Error(err)
					return
				}
				gotReads.Add(resp.IOReads)
				gotHits.Add(resp.CacheHits)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}

	// A final scrape: global totals vs the per-query sums.
	rec := get(t, mux, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("final scrape: status %d", rec.Code)
	}
	series := parseExposition(t, rec.Body.String())
	checks := []struct {
		name string
		want int64
	}{
		{"xrank_queries_total", wantQueries},
		{"xrank_query_latency_seconds_count", wantQueries},
		{"xrank_page_reads_total", gotReads.Load()},
		{"xrank_cache_hits_total", gotHits.Load()},
		{"xrank_query_errors_total", 0},
		{"xrank_inflight_queries", 0},
		{"xrank_slow_queries_total", wantQueries},
	}
	for _, c := range checks {
		if got := series[c.name]; got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := e.SlowLog().Total(); got != wantQueries {
		t.Errorf("slowlog total = %d, want %d", got, wantQueries)
	}
}

// parseExposition sums every sample of each metric family (folding the
// per-label series of e.g. xrank_queries_total into one total).
// Histogram bucket samples are skipped so _count sums stay meaningful.
func parseExposition(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "_bucket{") {
			continue
		}
		name, rest, _ := strings.Cut(line, " ")
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("bad exposition line %q: %v", line, err)
		}
		out[name] += int64(v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
