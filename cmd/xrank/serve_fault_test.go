package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xrank"
	"xrank/internal/httpapi"
	"xrank/internal/index"
	"xrank/internal/storage"
)

// TestServePanicRecovery: a handler panic must surface as a 500 plus a
// counted metric, never kill the server goroutine.
func TestServePanicRecovery(t *testing.T) {
	e := newTestEngine(t)
	h := httpapi.WithRecovery(e, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=xml", nil))
	if rec.Code != 500 {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	var buf bytes.Buffer
	if err := e.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "xrank_http_panics_total 1") {
		t.Fatalf("panic not counted:\n%s", buf.String())
	}

	// A healthy request through the same wrapper still works.
	mux := newMux(e, muxOptions{Metrics: true})
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=xml", nil))
	if rec.Code != 200 {
		t.Fatalf("healthy request after panic: %d", rec.Code)
	}
}

// TestServeDegraded drives the acceptance scenario end to end: with one
// shard permanently failing, /api/search answers over the healthy
// shards with degraded:true, /api/shards reports the unhealthy shard,
// and FailOnDegraded turns the partial answer into a 503.
func TestServeDegraded(t *testing.T) {
	const shards = 2
	ffs := storage.NewFaultFS(nil, 31)
	e := xrank.NewEngine(&xrank.Config{
		IndexDir:                t.TempDir(),
		Shards:                  shards,
		FS:                      ffs,
		ShardRetryBackoffMillis: 1,
	})
	for i := 0; i < 8; i++ {
		doc := fmt.Sprintf(`<r><t>common xml search</t><p>token%d body</p></r>`, i)
		if err := e.AddXML(fmt.Sprintf("doc%d.xml", i), strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	mux := newMux(e, muxOptions{Metrics: true})

	fail := index.ShardOf(0, shards)
	name := fmt.Sprintf("shard%03d", fail)
	ffs.FailReads(func(p string) bool { return strings.Contains(p, name) }, storage.ErrInjected, -1)
	if err := e.ColdCache(); err != nil {
		t.Fatal(err)
	}

	var resp struct {
		Degraded     bool  `json:"degraded"`
		FailedShards []int `json:"failed_shards"`
		Results      []xrank.SearchResult
	}
	// Default threshold is 3 consecutive failures: query until the dead
	// shard is marked unhealthy, checking every answer stays useful.
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=common&algo=dil", nil))
		if rec.Code != 200 {
			t.Fatalf("degraded query %d: status %d: %s", i, rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Degraded || len(resp.FailedShards) != 1 || resp.FailedShards[0] != fail {
			t.Fatalf("degraded query %d: degraded=%v failed=%v", i, resp.Degraded, resp.FailedShards)
		}
		if len(resp.Results) == 0 {
			t.Fatalf("degraded query %d returned no results", i)
		}
	}

	// /api/shards now reports the unhealthy shard.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/shards", nil))
	if rec.Code != 200 {
		t.Fatalf("/api/shards: %d", rec.Code)
	}
	var sh struct {
		Unhealthy int `json:"unhealthy"`
		Shards    []struct {
			Shard   int  `json:"shard"`
			Healthy bool `json:"healthy"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sh); err != nil {
		t.Fatal(err)
	}
	if sh.Unhealthy != 1 {
		t.Fatalf("/api/shards unhealthy = %d: %s", sh.Unhealthy, rec.Body)
	}
	for _, s := range sh.Shards {
		if s.Healthy == (s.Shard == fail) {
			t.Fatalf("/api/shards health wrong for shard %d: %s", s.Shard, rec.Body)
		}
	}

	// Strict mode: the same query becomes a 503.
	e.SetFailOnDegraded(true)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=common&algo=dil", nil))
	if rec.Code != 503 {
		t.Fatalf("FailOnDegraded: status %d, want 503: %s", rec.Code, rec.Body)
	}
}
