package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"xrank"
	"xrank/internal/cache"
)

// Golden-file tests pin the HTTP API's response shapes. Timing-dependent
// fields (wall times, span durations, I/O counts, histogram buckets) are
// normalized before comparison; everything else — field names, result
// sets, deterministic counters — must match byte-for-byte.
//
// Regenerate with: go test ./cmd/xrank -run TestGolden -update

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// volatileNumKeys are JSON fields whose values depend on wall-clock
// timing or cache state; they are zeroed before golden comparison.
// "bytes" (result-cache occupancy) is deterministic for a fixed corpus
// but tracks every snippet byte, which would make unrelated corpus edits
// churn the golden.
var volatileNumKeys = map[string]bool{
	"wall_us": true, "wall_ns": true, "dur_ns": true,
	"io_reads": true, "cache_hits": true, "seq_reads": true, "rand_reads": true,
	"bytes": true,
}

// volatileStrKeys are timestamp-valued fields, replaced by "T".
var volatileStrKeys = map[string]bool{"time": true, "start": true}

func scrubJSON(v interface{}) interface{} {
	switch x := v.(type) {
	case map[string]interface{}:
		for k, val := range x {
			switch {
			case volatileNumKeys[k]:
				x[k] = 0
			case volatileStrKeys[k]:
				x[k] = "T"
			default:
				x[k] = scrubJSON(val)
			}
		}
		return x
	case []interface{}:
		for i := range x {
			x[i] = scrubJSON(x[i])
		}
		return x
	}
	return v
}

// normalizeJSON re-encodes a JSON body with volatile fields scrubbed and
// keys in sorted order, so golden files are stable and readable.
func normalizeJSON(t *testing.T, body []byte) []byte {
	t.Helper()
	var v interface{}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	out, err := json.MarshalIndent(scrubJSON(v), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// Histogram bucket/sum values and I/O counters in the exposition depend
// on timing and cache state; their values become X. Series names,
// labels, and the deterministic counters stay exact.
var metricsVolatile = []*regexp.Regexp{
	regexp.MustCompile(`^(xrank_\w+_bucket\{[^}]*\}) \d+$`),
	regexp.MustCompile(`^(xrank_\w+_sum(\{[^}]*\})?) [0-9.eE+-]+$`),
	regexp.MustCompile(`^(xrank_(?:page_reads|seq_reads|rand_reads|cache_hits)_total) \d+$`),
	regexp.MustCompile(`^(xrank_cache_result_bytes) \d+$`),
}

func normalizeMetrics(body []byte) []byte {
	lines := bytes.Split(body, []byte("\n"))
	for i, line := range lines {
		for _, re := range metricsVolatile {
			if m := re.FindSubmatch(line); m != nil {
				lines[i] = append(append([]byte{}, m[1]...), []byte(" X")...)
				break
			}
		}
	}
	return bytes.Join(lines, []byte("\n"))
}

func get(t *testing.T, mux http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

// TestGoldenAPI drives one deterministic request sequence against a
// fresh engine and pins every observability endpoint's response.
func TestGoldenAPI(t *testing.T) {
	e := newTestEngine(t)
	e.SlowLog().SetThreshold(0) // log every query
	e.ConfigureResultCache(1 << 20)
	e.SetCoalesceQueries(true)
	mux := newMux(e, muxOptions{Metrics: true, Admission: cache.NewAdmission(4, 8)})

	// 1. A budget of one device read cannot satisfy a cold RDIL query
	//    (B+-tree probes alone need more): deterministic 503. This must
	//    run first, while the buffer pools are still empty.
	if rec := get(t, mux, "/api/search?q=xql+language&algo=rdil&budget=1"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("budget query: status %d, want 503: %s", rec.Code, rec.Body)
	}

	// 2. Invalid requests: 400 before any query runs.
	for _, bad := range []string{
		"/api/search",
		"/api/search?q=xql&budget=0",
		"/api/search?q=xql&timeout_ms=no",
		"/api/slowlog?limit=0",
	} {
		if rec := get(t, mux, bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}

	// 3. A clean DIL query: the /api/search shape.
	rec := get(t, mux, "/api/search?q=xql+language&m=5&algo=dil")
	if rec.Code != 200 {
		t.Fatalf("search: status %d: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "search.golden", normalizeJSON(t, rec.Body.Bytes()))

	// 4. Shard I/O shape.
	rec = get(t, mux, "/api/shards")
	if rec.Code != 200 {
		t.Fatalf("shards: status %d", rec.Code)
	}
	checkGolden(t, "shards.golden", normalizeJSON(t, rec.Body.Bytes()))

	// 5. The slow log holds both queries (newest first): the failed
	//    budget probe and the clean search, each with its span trace.
	rec = get(t, mux, "/api/slowlog")
	if rec.Code != 200 {
		t.Fatalf("slowlog: status %d", rec.Code)
	}
	checkGolden(t, "slowlog.golden", normalizeJSON(t, rec.Body.Bytes()))

	// 6. The full Prometheus exposition after the sequence.
	rec = get(t, mux, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("metrics content type = %q", ct)
	}
	checkGolden(t, "metrics.golden", normalizeMetrics(rec.Body.Bytes()))

	// 7. The exact query from step 3 again: a result-cache hit, marked in
	//    the response and, since the threshold is zero, in the slow log.
	rec = get(t, mux, "/api/search?q=xql+language&m=5&algo=dil")
	if rec.Code != 200 {
		t.Fatalf("cached search: status %d: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "search_cached.golden", normalizeJSON(t, rec.Body.Bytes()))
	if rec = get(t, mux, "/api/slowlog?limit=1"); !bytes.Contains(rec.Body.Bytes(), []byte(`"cached":true`)) {
		t.Errorf("slow log's newest entry is not marked cached: %s", rec.Body)
	}

	// 8. Cache and admission introspection after the whole sequence.
	rec = get(t, mux, "/api/cache")
	if rec.Code != 200 {
		t.Fatalf("cache stats: status %d", rec.Code)
	}
	checkGolden(t, "cache.golden", normalizeJSON(t, rec.Body.Bytes()))

	// 9. A saturated admission controller with no queue sheds
	//    deterministically: 429, Retry-After, JSON body.
	adm := cache.NewAdmission(1, -1)
	if err := adm.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer adm.Release()
	busy := newMux(e, muxOptions{Admission: adm})
	rec = get(t, busy, "/api/search?q=xql")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed request: status %d, want 429: %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("shed request Retry-After = %q, want \"1\"", ra)
	}
	checkGolden(t, "shed.golden", normalizeJSON(t, rec.Body.Bytes()))
}

// TestMuxOptions checks that the opt-in endpoints stay off by default.
func TestMuxOptions(t *testing.T) {
	e := newTestEngine(t)
	plain := newMux(e, muxOptions{})
	if rec := get(t, plain, "/metrics"); rec.Code != http.StatusNotFound {
		t.Errorf("metrics off: status %d, want 404", rec.Code)
	}
	if rec := get(t, plain, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", rec.Code)
	}
	withPprof := newMux(e, muxOptions{Pprof: true})
	if rec := get(t, withPprof, "/debug/pprof/"); rec.Code != 200 {
		t.Errorf("pprof on: status %d, want 200", rec.Code)
	}
}

// TestSearchErrorStatus pins the error→HTTP-status mapping, including
// the 504 path a live request can only hit flakily (the query would
// have to lose a race with its own deadline).
func TestSearchErrorStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{context.Canceled, http.StatusServiceUnavailable},
		{xrank.ErrBudgetExceeded, http.StatusServiceUnavailable},
		{fmt.Errorf("storage: %w (limit 1)", xrank.ErrBudgetExceeded), http.StatusServiceUnavailable},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := searchErrorStatus(tc.err); got != tc.want {
			t.Errorf("searchErrorStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
