package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the xrank and xrank-gen binaries once per test run.
func buildTools(t *testing.T) (xrankBin, genBin string) {
	t.Helper()
	dir := t.TempDir()
	xrankBin = filepath.Join(dir, "xrank")
	genBin = filepath.Join(dir, "xrank-gen")
	for bin, pkg := range map[string]string{xrankBin: "xrank/cmd/xrank", genBin: "xrank/cmd/xrank-gen"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return xrankBin, genBin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	xrankBin, genBin := buildTools(t)
	work := t.TempDir()
	corpus := filepath.Join(work, "corpus")
	idx := filepath.Join(work, "idx")

	out := run(t, genBin, "-kind", "dblp", "-out", corpus, "-docs", "6", "-papers", "40")
	if !strings.Contains(out, "wrote 6 file(s)") {
		t.Fatalf("gen output: %s", out)
	}
	files, err := filepath.Glob(filepath.Join(corpus, "*.xml"))
	if err != nil || len(files) != 6 {
		t.Fatalf("generated files: %v %v", files, err)
	}

	out = run(t, xrankBin, append([]string{"index", "-dir", idx, "-skip-naive=false"}, files...)...)
	if !strings.Contains(out, "indexed 6 documents") {
		t.Fatalf("index output: %s", out)
	}
	if !strings.Contains(out, "0 dangling") {
		t.Fatalf("index left dangling links: %s", out)
	}

	out = run(t, xrankBin, "search", "-dir", idx, "-stats", "-m", "5", "gray")
	if !strings.Contains(out, "jim gray") {
		t.Fatalf("search output missing anecdote results: %s", out)
	}
	if !strings.Contains(out, "page reads") {
		t.Fatalf("search -stats output missing stats: %s", out)
	}

	// Algorithms and error paths.
	for _, algo := range []string{"dil", "rdil", "hdil", "naiveid", "naiverank"} {
		out = run(t, xrankBin, "search", "-dir", idx, "-algo", algo, "gray")
		if !strings.Contains(out, "1.") {
			t.Fatalf("algo %s produced no results: %s", algo, out)
		}
	}
	if _, err := exec.Command(xrankBin, "search", "-dir", idx, "-algo", "bogus", "x").CombinedOutput(); err == nil {
		t.Errorf("bogus algorithm should fail")
	}
	if _, err := exec.Command(xrankBin, "search", "-dir", filepath.Join(work, "missing"), "x").CombinedOutput(); err == nil {
		t.Errorf("missing index dir should fail")
	}
	out = run(t, xrankBin, "search", "-dir", idx, "zzzznotthere", "gray")
	if !strings.Contains(out, "no results") {
		t.Fatalf("conjunctive miss should say 'no results': %s", out)
	}

	// Extension flags: disjunctive rescues the miss; tfidf works on DIL;
	// fragments render XML.
	out = run(t, xrankBin, "search", "-dir", idx, "-or", "zzzznotthere", "gray")
	if strings.Contains(out, "no results") {
		t.Fatalf("disjunctive should match: %s", out)
	}
	out = run(t, xrankBin, "search", "-dir", idx, "-algo", "dil", "-tfidf", "gray")
	if !strings.Contains(out, "1.") {
		t.Fatalf("tfidf search: %s", out)
	}
	out = run(t, xrankBin, "search", "-dir", idx, "-frag", "-m", "1", "gray")
	if !strings.Contains(out, "<author>") {
		t.Fatalf("fragment output: %s", out)
	}
}

func TestCLIGenKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	_, genBin := buildTools(t)
	for kind, minFiles := range map[string]int{"xmark": 1, "html": 5, "perf": 1} {
		out := t.TempDir()
		run(t, genBin, "-kind", kind, "-out", out, "-items", "30", "-pages", "5", "-blocks", "500")
		entries, err := os.ReadDir(out)
		if err != nil || len(entries) < minFiles {
			t.Errorf("kind %s wrote %d files (%v)", kind, len(entries), err)
		}
	}
}

func TestSplitComma(t *testing.T) {
	got := splitComma("a,b,,c")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("splitComma = %v", got)
	}
	if splitComma("") != nil {
		t.Errorf("splitComma empty should be nil")
	}
}
