// Command xrank-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index):
//
//	xrank-bench -exp all                       # everything
//	xrank-bench -exp space                     # Table 1
//	xrank-bench -exp fig10,fig11 -perfblocks 400000
//	xrank-bench -exp crossover -sweep 50000,200000,800000
//
// Experiments: elemrank (E1), space (E2 + E2b), fig10 (E3), fig11 (E4),
// topm (E5), quality (E6), ablation (E7a-d), crossover (E8), warm (E9),
// shard (E10, also written to -shardjson for CI trend tracking), cache
// (E11, the result-cache hit-ratio/hot-cold experiment, written to
// -cachejson), ingest (E12, incremental segment-ingestion throughput vs
// a full rebuild, written to -ingestjson), block (E13, the block-max
// pruning experiment comparing the v1 and block postings formats,
// written to -blockjson), suggest (E15, autosuggest latency and trie
// memory vs dictionary size plus ingest throughput over the committed
// abstracts fixture, written to -suggestjson).
//
// E1/E2/E6/E7 run on the DBLP-shaped and XMark-shaped corpora; E3/E4/E5
// run on the long-list performance corpus (see internal/datagen/perfgen),
// and E8 sweeps that corpus's size to expose the DIL/RDIL crossover.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xrank"
	"xrank/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "comma-separated experiments: elemrank,space,fig10,fig11,topm,quality,ablation,crossover or 'all'")
		scale      = flag.Float64("scale", 1.0, "DBLP/XMark corpus scale factor")
		perfBlocks = flag.Int("perfblocks", 200000, "performance-corpus size (records) for fig10/fig11/topm")
		sweep      = flag.String("sweep", "25000,100000,400000", "comma-separated block counts for the crossover sweep")
		seed       = flag.Int64("seed", 42, "generation seed")
		topM       = flag.Int("m", 10, "desired number of results per query")
		dir        = flag.String("dir", "", "workspace directory (default: a temp dir, removed afterwards)")

		shardCounts = flag.String("shardcounts", "1,2,4,8", "comma-separated shard counts for the shard experiment")
		shardDocs   = flag.Int("sharddocs", 8, "XMark-shaped documents in the shard-experiment corpus")
		shardScale  = flag.Float64("shardscale", 4.0, "shard-experiment corpus scale factor")
		shardJSON   = flag.String("shardjson", "BENCH_shard.json", "where the shard experiment writes its JSON report (empty: skip)")
		baseline    = flag.String("baseline", "", "committed BENCH_shard.json to guard against (empty: no guard); exits 2 and emits a GitHub warning annotation on a >25% median-latency regression")

		cacheDocs  = flag.Int("cachedocs", 6, "XMark-shaped documents in the cache-experiment corpus")
		cacheScale = flag.Float64("cachescale", 2.0, "cache-experiment corpus scale factor")
		cacheJSON  = flag.String("cachejson", "BENCH_cache.json", "where the cache experiment writes its JSON report (empty: skip)")

		ingestDocs    = flag.Int("ingestdocs", 4, "XMark-shaped documents in the ingest-experiment initial build")
		ingestBatches = flag.Int("ingestbatches", 6, "AddDocs batches the ingest experiment flushes")
		ingestBatch   = flag.Int("ingestbatch", 2, "documents per ingest batch")
		ingestScale   = flag.Float64("ingestscale", 2.0, "ingest-experiment corpus scale factor")
		ingestJSON    = flag.String("ingestjson", "BENCH_ingest.json", "where the ingest experiment writes its JSON report (empty: skip)")

		blockBlocks = flag.Int("blockblocks", 200000, "performance-corpus size (records) for the block-pruning experiment")
		blockJSON   = flag.String("blockjson", "BENCH_block.json", "where the block-pruning experiment writes its JSON report (empty: skip)")

		suggestSizes   = flag.String("suggestsizes", "1000,10000,50000", "comma-separated dictionary sizes for the suggest experiment")
		suggestK       = flag.Int("suggestk", 8, "completions per suggest query")
		suggestFixture = flag.String("suggestfixture", "internal/ingest/testdata/abstracts.xml", "committed abstracts fixture the suggest experiment ingests (empty: skip the fixture section)")
		suggestJSON    = flag.String("suggestjson", "BENCH_suggest.json", "where the suggest experiment writes its JSON report (empty: skip)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	if want["all"] {
		for _, e := range []string{"elemrank", "space", "fig10", "fig11", "topm", "quality", "ablation", "crossover", "warm", "shard", "cache", "ingest", "block", "suggest"} {
			want[e] = true
		}
	}

	ws := *dir
	if ws == "" {
		td, err := os.MkdirTemp("", "xrank-bench-*")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(td)
		ws = td
	}

	needDatasets := want["elemrank"] || want["space"] || want["quality"] || want["ablation"]
	needPerf := want["fig10"] || want["fig11"] || want["topm"] || want["warm"]

	var es *bench.Engines
	if needDatasets {
		fmt.Printf("building DBLP/XMark corpora (scale %.2f, seed %d)...\n", *scale, *seed)
		t0 := time.Now()
		var err error
		es, err = bench.BuildAll(ws, *scale, *seed)
		if err != nil {
			fail(err)
		}
		defer es.Close()
		fmt.Printf("built: DBLP-shape %d docs / %d elements, XMark-shape %d elements (%.1fs)\n",
			es.DBLPInfo.NumDocs, es.DBLPInfo.NumElements, es.XMarkInfo.NumElements, time.Since(t0).Seconds())
	}

	var perf *xrank.Engine
	if needPerf {
		fmt.Printf("building performance corpus (%d blocks)...\n", *perfBlocks)
		t0 := time.Now()
		var info *xrank.BuildInfo
		var err error
		perf, info, err = bench.BuildPerfEngine(ws+"/perf", *perfBlocks, *seed)
		if err != nil {
			fail(err)
		}
		defer perf.Close()
		fmt.Printf("built: perf corpus %d docs / %d elements, DIL %0.1fMB (%.1fs)\n",
			info.NumDocs, info.NumElements, float64(info.Sizes.DILList)/(1<<20), time.Since(t0).Seconds())
	}

	if want["elemrank"] {
		bench.E1ElemRank(es).Render(os.Stdout)
	}
	if want["space"] {
		bench.E2Space(es).Render(os.Stdout)
		t, err := bench.E2bCompression(ws, *scale, *seed, es)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
	}
	if want["fig10"] {
		t, err := bench.E3Fig10(perf, "perf corpus", *topM)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
	}
	if want["fig11"] {
		t, err := bench.E4Fig11(perf, "perf corpus", *topM)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
	}
	if want["topm"] {
		t, err := bench.E5TopM(perf, "perf corpus")
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
	}
	if want["quality"] {
		ts, err := bench.E6Quality(es)
		if err != nil {
			fail(err)
		}
		for _, t := range ts {
			t.Render(os.Stdout)
		}
	}
	if want["ablation"] {
		t, err := bench.E7AblationVariants(*seed)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
		t, err = bench.E7AblationDecay(es.XMark)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
		t, err = bench.E7AblationProximity(es.DBLP)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
		t, err = bench.E7AblationDs(*seed)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
	}
	if want["warm"] {
		t, err := bench.E9WarmCache(perf)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
	}
	if want["crossover"] {
		var blocks []int
		for _, s := range strings.Split(*sweep, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
				fail(fmt.Errorf("bad -sweep value %q: %v", s, err))
			}
			blocks = append(blocks, n)
		}
		t, err := bench.E8Crossover(ws, blocks, *seed)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
	}
	if want["shard"] {
		counts, err := parseInts(*shardCounts)
		if err != nil {
			fail(fmt.Errorf("bad -shardcounts: %v", err))
		}
		t, rep, err := bench.E10Shard(ws+"/shardexp", counts, *shardDocs, *shardScale, *seed, *topM)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
		if rep.Speedup > 0 {
			fmt.Printf("shard speedup: %.2fx at %d shards over the 1-shard baseline (%d workers)\n",
				rep.Speedup, rep.BestShards, rep.Workers)
		}
		if *shardJSON != "" {
			if err := rep.WriteJSON(*shardJSON); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *shardJSON)
		}
		if *baseline != "" {
			base, err := bench.ReadShardReport(*baseline)
			if err != nil {
				fail(err)
			}
			g, err := bench.CompareShardReports(base, rep)
			if err != nil {
				fail(err)
			}
			fmt.Println("bench guard:", g)
			if g.Regressed {
				// ::warning:: renders as an annotation on the GitHub Actions
				// run; the non-zero exit makes the step itself fail.
				fmt.Printf("::warning title=bench regression::shard-bench %s\n", g)
				os.Exit(2)
			}
		}
	}
	if want["cache"] {
		t, rep, err := bench.E11Cache(ws+"/cacheexp", *cacheDocs, *cacheScale, *seed, *topM)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
		fmt.Printf("cache hot/cold: %.0fx (hit %dµs vs cold %dµs at top-%d)\n",
			rep.HotSpeedup, rep.HotMicros, rep.ColdMicros, *topM)
		if *cacheJSON != "" {
			if err := rep.WriteJSON(*cacheJSON); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *cacheJSON)
		}
	}
	if want["block"] {
		t, rep, err := bench.E13BlockPruning(ws+"/blockexp", *blockBlocks, *seed)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
		fmt.Printf("block pruning: RDIL %.2fx, HDIL %.2fx wall p50 at hicorr top-10 over the v1 format\n",
			rep.RDILTop10Speedup, rep.HDILTop10Speedup)
		if *blockJSON != "" {
			if err := rep.WriteJSON(*blockJSON); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *blockJSON)
		}
	}
	if want["suggest"] {
		sizes, err := parseInts(*suggestSizes)
		if err != nil {
			fail(fmt.Errorf("bad -suggestsizes: %v", err))
		}
		t, rep, err := bench.E15Suggest(ws+"/suggestexp", sizes, *suggestK, *seed, *suggestFixture)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
		if n := len(rep.Runs); n > 0 {
			last := rep.Runs[n-1]
			fmt.Printf("suggest: %d-term dictionary completes at p50 %dµs / p99 %dµs in %.1fB/term\n",
				last.Terms, last.P50Micros, last.P99Micros, last.BytesPerTerm)
		}
		if rep.FixtureDocs > 0 {
			fmt.Printf("suggest fixture: %d docs ingested at %.0f docs/s; %d-term dictionary p50 %dµs / p99 %dµs\n",
				rep.FixtureDocs, rep.FixtureDocsPerSec, rep.FixtureTerms, rep.FixtureP50Micros, rep.FixtureP99Micros)
		}
		if *suggestJSON != "" {
			if err := rep.WriteJSON(*suggestJSON); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *suggestJSON)
		}
	}
	if want["ingest"] {
		t, rep, err := bench.E12Ingest(ws+"/ingestexp", *ingestDocs, *ingestBatches, *ingestBatch, *ingestScale, *seed)
		if err != nil {
			fail(err)
		}
		t.Render(os.Stdout)
		fmt.Printf("ingest: %.1f docs/sec incremental; avg flush %dms vs %dms full rebuild (%.1fx)\n",
			rep.DocsPerSec, rep.AvgAddMillis, rep.RebuildMillis, rep.SpeedupVsRebuild)
		if *ingestJSON != "" {
			if err := rep.WriteJSON(*ingestJSON); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *ingestJSON)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil {
			return nil, fmt.Errorf("%q: %v", f, err)
		}
		if n < 1 {
			return nil, fmt.Errorf("%q: shard counts must be >= 1", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xrank-bench:", err)
	os.Exit(1)
}
