// Command xrank-shardd serves one or more XRANK shard replicas: each
// -shard mounts a complete engine directory behind the standard
// internal/httpapi stack, plus the cluster-internal endpoints the
// coordinator and snapshot bootstrap use (/internal/shard/search,
// /internal/health, /internal/snapshot). A replica that should clone
// its data from a serving peer names the peer with -bootstrap; the
// snapshot is fetched with resume, every checksum is verified before
// the directory is opened, and the result is bit-identical to the
// source.
//
// Typical 2-shard replica:
//
//	xrank-shardd -addr :9101 -shard 0=/data/s0 -shard 1=/data/s1 \
//	    -bootstrap 0=http://peer:9100 -bootstrap 1=http://peer:9100
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"xrank"
	"xrank/internal/cache"
	"xrank/internal/cluster"
	"xrank/internal/httpapi"
)

// mountFlag collects repeated "N=value" flags into a shard → value map.
type mountFlag struct {
	name string
	m    map[int]string
}

func (f *mountFlag) String() string {
	var parts []string
	for k, v := range f.m {
		parts = append(parts, fmt.Sprintf("%d=%s", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (f *mountFlag) Set(s string) error {
	eq := strings.IndexByte(s, '=')
	if eq <= 0 {
		return fmt.Errorf("-%s wants N=%s, got %q", f.name, f.name, s)
	}
	n, err := strconv.Atoi(s[:eq])
	if err != nil || n < 0 {
		return fmt.Errorf("-%s: bad shard number in %q", f.name, s)
	}
	if f.m == nil {
		f.m = make(map[int]string)
	}
	if _, dup := f.m[n]; dup {
		return fmt.Errorf("-%s: shard %d given twice", f.name, n)
	}
	f.m[n] = s[eq+1:]
	return nil
}

// bootstrapped reports whether dir already holds an openable engine
// (either layout's commit point exists), so a restart skips the fetch.
func bootstrapped(dir string) bool {
	for _, f := range []string{"engine.json", "segments.json"} {
		if _, err := os.Stat(dir + string(os.PathSeparator) + f); err == nil {
			return true
		}
	}
	return false
}

func main() {
	addr := flag.String("addr", ":9100", "listen address")
	shards := &mountFlag{name: "shard"}
	flag.Var(shards, "shard", "shard mount as N=dir (repeatable)")
	boots := &mountFlag{name: "bootstrap"}
	flag.Var(boots, "bootstrap", "snapshot source as N=url: clone shard N's engine dir from a serving peer before opening (repeatable)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing searches per shard (0 = engine config; negative disables admission control)")
	admissionQueue := flag.Int("admission-queue", 0, "admission wait-queue length per shard (0 = engine config or 2x max-inflight)")
	metrics := flag.Bool("metrics", true, "serve Prometheus metrics at /metrics (default shard's registry)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof at /debug/pprof/")
	failDegraded := flag.Bool("fail-on-degraded", false, "fail queries (503) instead of serving partial results when local sub-shards are excluded")
	bootTimeout := flag.Int("bootstrap-timeout-ms", 600_000, "overall snapshot bootstrap deadline in milliseconds")
	flag.Parse()
	if len(shards.m) == 0 {
		log.Fatal("xrank-shardd: at least one -shard N=dir is required")
	}

	srv := cluster.NewShardServer()
	ids := make([]int, 0, len(shards.m))
	for id := range shards.m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		dir := shards.m[id]
		if peer, ok := boots.m[id]; ok && !bootstrapped(dir) {
			log.Printf("xrank-shardd: bootstrapping shard %d from %s into %s", id, peer, dir)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatalf("xrank-shardd: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(*bootTimeout)*time.Millisecond)
			man, err := cluster.FetchSnapshot(ctx, http.DefaultClient, peer, id, dir)
			cancel()
			if err != nil {
				log.Fatalf("xrank-shardd: bootstrap shard %d: %v", id, err)
			}
			log.Printf("xrank-shardd: shard %d bootstrapped (%d files verified)", id, len(man.Files))
		}
		e, err := xrank.OpenEngine(dir)
		if err != nil {
			log.Fatalf("xrank-shardd: open shard %d (%s): %v", id, dir, err)
		}
		defer e.Close()
		e.SetFailOnDegraded(*failDegraded)
		cfg := e.Config()
		inflight := *maxInflight
		if inflight == 0 {
			inflight = cfg.MaxInflightQueries
		}
		queue := *admissionQueue
		if queue == 0 {
			queue = cfg.AdmissionQueue
		}
		var adm *cache.Admission
		if inflight > 0 {
			adm = cache.NewAdmission(inflight, queue)
		}
		if err := srv.Mount(id, e, dir, httpapi.Options{
			Metrics: *metrics, Pprof: *pprofOn, Admission: adm,
		}); err != nil {
			log.Fatalf("xrank-shardd: %v", err)
		}
	}
	log.Printf("xrank-shardd: serving shards %v on %s", srv.ShardIDs(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
