// Command xrank-coordinator serves /api/search over a cluster of
// xrank-shardd replicas: rendezvous-hash placement picks each shard's
// primary, failures retry with seeded full-jitter backoff and fail
// over across replicas, slow primaries get a hedged second request
// after a p99-derived delay, and per-replica circuit breakers (with
// half-open probes) keep dead replicas out of the request path. Losing
// every replica of a shard degrades the response the same way the
// single-node engine degrades around a failed local shard; with
// -fail-on-degraded it answers 503 instead.
//
// Typical 2-shard × 2-replica cluster:
//
//	xrank-coordinator -addr :9000 \
//	    -shard http://a:9101,http://b:9102 \
//	    -shard http://a:9101,http://b:9102
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"xrank/internal/cluster"
)

// shardListFlag collects repeated -shard flags; occurrence order is
// the shard id.
type shardListFlag [][]string

func (f *shardListFlag) String() string { return "" }

func (f *shardListFlag) Set(s string) error {
	var reps []string
	for _, r := range strings.Split(s, ",") {
		if r = strings.TrimSpace(r); r != "" {
			reps = append(reps, strings.TrimSuffix(r, "/"))
		}
	}
	*f = append(*f, reps)
	return nil
}

func main() {
	addr := flag.String("addr", ":9000", "listen address")
	var shards shardListFlag
	flag.Var(&shards, "shard", "comma-separated replica URLs for one shard (repeat once per shard, in shard order)")
	replicaTimeout := flag.Int("replica-timeout-ms", 2000, "per-replica attempt timeout in milliseconds")
	retries := flag.Int("retries", 1, "extra passes over a shard's replica list after the first (negative: none)")
	retryBackoff := flag.Int("retry-backoff-ms", 2, "full-jitter backoff base between replica attempts in milliseconds")
	retrySeed := flag.Int64("retry-seed", 0, "seed for the jittered backoff schedule (0 = seed 1)")
	failureThreshold := flag.Int("failure-threshold", 3, "consecutive failures that open a replica's circuit breaker")
	probeInterval := flag.Int("probe-interval-ms", 1000, "half-open probe spacing for open breakers in milliseconds (0 = sticky)")
	hedgeMS := flag.Int("hedge-ms", 0, "hedged second-request delay in milliseconds (0 = auto from p99, negative disables hedging)")
	failDegraded := flag.Bool("fail-on-degraded", false, "fail queries (503) instead of serving partial results when a whole shard is down")
	metrics := flag.Bool("metrics", true, "serve Prometheus metrics at /metrics")
	flag.Parse()
	if len(shards) == 0 {
		log.Fatal("xrank-coordinator: at least one -shard url[,url...] is required")
	}

	c, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Shards:           shards,
		ReplicaTimeout:   time.Duration(*replicaTimeout) * time.Millisecond,
		Retries:          *retries,
		RetryBackoff:     time.Duration(*retryBackoff) * time.Millisecond,
		RetrySeed:        *retrySeed,
		FailureThreshold: *failureThreshold,
		ProbeInterval:    time.Duration(*probeInterval) * time.Millisecond,
		HedgeDelay:       time.Duration(*hedgeMS) * time.Millisecond,
		FailOnDegraded:   *failDegraded,
		Metrics:          *metrics,
	})
	if err != nil {
		log.Fatalf("xrank-coordinator: %v", err)
	}
	log.Printf("xrank-coordinator: serving %d shards on %s", len(shards), *addr)
	log.Fatal(http.ListenAndServe(*addr, c.Handler()))
}
