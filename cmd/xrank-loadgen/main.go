// Command xrank-loadgen is the open-loop load harness for the xrank
// HTTP server (experiment E14). It fires /api/search — /api/docs in
// the update-mix arm, /api/suggest in the keystroke-simulation
// suggest arm — at a fixed target rate with seeded
// Poisson or uniform arrivals, measures latency from each request's
// *intended* send time (no coordinated omission), and reports per-arm
// p50/p90/p99/p99.9 plus achieved-vs-target RPS, shed/error counts and
// server-side cache/coalesce/degraded rates scraped from /metrics.
//
// Two targets:
//
//	xrank-loadgen -url http://host:8080          # a running `xrank serve`
//	xrank-loadgen -inproc                        # self-hosted seeded corpus
//
// -inproc builds a seeded XMark corpus in a temp dir, mounts the same
// handler stack `xrank serve` uses (admission control included) on a
// loopback listener, and drives that — the reproducible CI mode.
//
// The -baseline/-slo-ratio flags gate a fresh run against a committed
// BENCH_load.json (median across arms of accepted-p99 ratios);
// -require-shed additionally demands the overload arm demonstrated 429
// shedding while accepted-request p99 held under -slo-ms. Gate
// failures exit 2, harness errors exit 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"xrank"
	"xrank/internal/cache"
	"xrank/internal/datagen/xmark"
	"xrank/internal/httpapi"
	"xrank/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if ge, ok := err.(gateError); ok {
			fmt.Fprintf(os.Stderr, "xrank-loadgen: %v\n", ge.err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "xrank-loadgen: %v\n", err)
		os.Exit(1)
	}
}

// gateError marks SLO-gate failures (exit 2) as opposed to harness
// errors (exit 1), mirroring the bench guard convention.
type gateError struct{ err error }

func (g gateError) Error() string { return g.err.Error() }

func run(args []string) error {
	fs := flag.NewFlagSet("xrank-loadgen", flag.ExitOnError)
	urlFlag := fs.String("url", "", "base URL(s) of running servers, comma-separated to round-robin across targets (mutually exclusive with -inproc)")
	inproc := fs.Bool("inproc", false, "build a seeded corpus and serve it in-process on a loopback listener")
	seed := fs.Int64("seed", 1, "workload seed: same seed, same spec => byte-identical request stream")
	arms := fs.String("arms", "zipf,hotset,updates,suggest,overload", "comma-separated arm kinds to run, in order")
	rps := fs.Float64("rps", 200, "base target arrival rate per arm")
	overloadMult := fs.Float64("overload-mult", 20, "overload arm rate = -rps x this multiple")
	duration := fs.Duration("duration", 10*time.Second, "length of each arm")
	arrival := fs.String("arrival", "poisson", "arrival process: poisson | uniform")
	vocab := fs.Int("vocab", 256, "query vocabulary size (ranks into the shared w0..wN pool)")
	zipfS := fs.Float64("zipf-s", 0, "zipf skew >1 (0 = per-arm default: 1.1, overload 1.01)")
	rotations := fs.Int("rotations", 1, "hotset arm: mid-run hot-set rotations")
	updateFrac := fs.Float64("update-frac", 0.05, "updates arm: fraction of requests that mutate /api/docs")
	algo := fs.String("algo", "dil", "search algorithm parameter")
	topM := fs.Int("m", 10, "search top-m parameter (suggest arm: the k parameter)")
	timeoutMS := fs.Int("timeout-ms", 0, "per-request timeout_ms query parameter (0 = none)")
	maxOutstanding := fs.Int("max-outstanding", 1024, "client-side cap on in-flight requests (excess is counted dropped)")
	warmup := fs.Int("warmup", 50, "untimed warmup requests before the first arm")

	csvPath := fs.String("csv", "", "write the per-arm CSV report here")
	jsonPath := fs.String("json", "", "write the BENCH_load.json report here")
	dump := fs.Bool("dump", false, "print the generated workloads (header + one line per request) and exit without sending")

	baseline := fs.String("baseline", "", "committed BENCH_load.json to gate against")
	sloRatio := fs.Float64("slo-ratio", 0, "max median accepted-p99 ratio vs baseline (0 = default 2.5)")
	requireShed := fs.Bool("require-shed", false, "fail unless the overload arm shed 429s with accepted p99 under -slo-ms")
	sloMS := fs.Int("slo-ms", 2000, "absolute accepted-request p99 SLO for -require-shed, in milliseconds")

	docs := fs.Int("docs", 8, "inproc: XMark documents in the generated corpus")
	scale := fs.Float64("scale", 0.25, "inproc: corpus scale factor")
	shards := fs.Int("shards", 1, "inproc: index shard count")
	cacheBytes := fs.Int64("cache-bytes", 32<<20, "inproc: result cache size (0 disables)")
	maxInflight := fs.Int("max-inflight", 2, "inproc: admission max concurrent searches (<=0 disables admission control)")
	admissionQueue := fs.Int("admission-queue", 0, "inproc: admission wait-queue length (0 = 2x max-inflight)")
	coalesce := fs.Bool("coalesce", true, "inproc: coalesce concurrent identical queries")
	fs.Parse(args)

	specs, err := buildSpecs(strings.Split(*arms, ","), armKnobs{
		rps: *rps, overloadMult: *overloadMult, duration: *duration,
		arrival: *arrival, vocab: *vocab, zipfS: *zipfS, rotations: *rotations,
		updateFrac: *updateFrac, algo: *algo, topM: *topM, timeoutMS: *timeoutMS,
	})
	if err != nil {
		return err
	}

	// Each arm gets a distinct but seed-derived stream: -seed fixes the
	// whole run, and -dump of the same invocation is byte-identical.
	workloads := make([]*loadgen.Workload, len(specs))
	for i, spec := range specs {
		w, err := loadgen.Generate(spec, *seed+int64(i))
		if err != nil {
			return err
		}
		workloads[i] = w
	}
	if *dump {
		for _, w := range workloads {
			if err := w.Dump(os.Stdout); err != nil {
				return err
			}
		}
		return nil
	}

	report := &loadgen.Report{Seed: *seed, Workers: runtime.GOMAXPROCS(0)}
	baseURL := *urlFlag
	if *inproc {
		if baseURL != "" {
			return fmt.Errorf("-url and -inproc are mutually exclusive")
		}
		report.Corpus = "xmark"
		report.Docs = *docs
		srvURL, info, cleanup, err := startInproc(inprocConfig{
			seed: *seed, docs: *docs, scale: *scale, vocab: *vocab,
			shards: *shards, cacheBytes: *cacheBytes, coalesce: *coalesce,
			maxInflight: *maxInflight, admissionQueue: *admissionQueue,
		})
		if err != nil {
			return err
		}
		defer cleanup()
		report.Elements = info.NumElements
		baseURL = srvURL
		fmt.Printf("inproc target %s: %d docs, %d elements, %d shards\n",
			baseURL, *docs, info.NumElements, *shards)
	}
	if baseURL == "" {
		return fmt.Errorf("need a target: -url http://host:port or -inproc")
	}

	opts := loadgen.RunOptions{MaxOutstanding: *maxOutstanding}
	if err := warmTarget(baseURL, *warmup); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}
	for i, w := range workloads {
		fmt.Printf("arm %s: %d requests at %g rps over %s (%s arrivals, seed %d)\n",
			w.Spec.Name, len(w.Reqs), w.Spec.RPS, w.Spec.Duration, w.Spec.Arrival, w.Seed)
		res, err := loadgen.RunArm(context.Background(), baseURL, w, opts)
		if err != nil {
			return err
		}
		a := loadgen.BuildArmReport(res)
		report.Arms = append(report.Arms, a)
		printArm(a)
		// Let queued work and compaction drain between arms so one arm's
		// backlog doesn't contaminate the next arm's scrape window.
		if i < len(workloads)-1 {
			time.Sleep(200 * time.Millisecond)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := report.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *jsonPath != "" {
		if err := report.WriteJSON(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return gate(report, *baseline, *sloRatio, *requireShed, *sloMS)
}

// armKnobs carries the shared CLI knobs into per-arm specs.
type armKnobs struct {
	rps, overloadMult float64
	duration          time.Duration
	arrival           string
	vocab             int
	zipfS             float64
	rotations         int
	updateFrac        float64
	algo              string
	topM              int
	timeoutMS         int
}

func buildSpecs(kinds []string, k armKnobs) ([]loadgen.ArmSpec, error) {
	var specs []loadgen.ArmSpec
	for _, kind := range kinds {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		spec := loadgen.ArmSpec{
			Kind: kind, RPS: k.rps, Duration: k.duration, Arrival: k.arrival,
			Vocab: k.vocab, ZipfS: k.zipfS, HotRotations: k.rotations,
			UpdateFrac: k.updateFrac, Algo: k.algo, TopM: k.topM, TimeoutMS: k.timeoutMS,
		}
		if kind == loadgen.KindOverload {
			spec.RPS = k.rps * k.overloadMult
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no arms selected")
	}
	return specs, nil
}

// inprocConfig parameterizes the self-hosted target.
type inprocConfig struct {
	seed           int64
	docs           int
	scale          float64
	vocab          int
	shards         int
	cacheBytes     int64
	coalesce       bool
	maxInflight    int
	admissionQueue int
}

// startInproc builds a seeded XMark corpus into a temp dir and mounts
// the serve handler stack on a loopback listener. The corpus vocabulary
// is sized to the workload's -vocab so every generated query matches
// real postings.
func startInproc(c inprocConfig) (url string, info *xrank.BuildInfo, cleanup func(), err error) {
	dir, err := os.MkdirTemp("", "xrank-loadgen-*")
	if err != nil {
		return "", nil, nil, err
	}
	fail := func(e error) (string, *xrank.BuildInfo, func(), error) {
		os.RemoveAll(dir)
		return "", nil, nil, e
	}
	e := xrank.NewEngine(&xrank.Config{IndexDir: dir, Shards: c.shards})
	for d := 0; d < c.docs; d++ {
		doc := xmark.Generate(xmark.Params{
			Seed:           c.seed + int64(d),
			Items:          int(300 * c.scale),
			People:         int(180 * c.scale),
			OpenAuctions:   int(200 * c.scale),
			ClosedAuctions: int(120 * c.scale),
			Categories:     int(20 * c.scale),
			VocabSize:      c.vocab + 1, // adjacent-pair queries reach rank vocab-1 + 1
		})
		if err := e.AddXML(fmt.Sprintf("xmark-%03d", d), strings.NewReader(doc)); err != nil {
			return fail(err)
		}
	}
	info, err = e.Build()
	if err != nil {
		return fail(err)
	}
	e.ConfigureResultCache(c.cacheBytes)
	e.SetCoalesceQueries(c.coalesce)
	// The updates arm appends segments; the compactor keeps the segment
	// count bounded like a real serve deployment would.
	if err := e.StartCompactor(time.Second, 4, 0); err != nil {
		return fail(err)
	}
	var adm *cache.Admission
	if c.maxInflight > 0 {
		adm = cache.NewAdmission(c.maxInflight, c.admissionQueue)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		e.Close()
		return fail(err)
	}
	srv := &http.Server{Handler: httpapi.NewMux(e, httpapi.Options{
		Metrics: true, Updates: true, Admission: adm,
	})}
	go srv.Serve(ln)
	cleanup = func() {
		srv.Close()
		e.Close()
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), info, cleanup, nil
}

// warmTarget primes connections and OS caches with untimed searches so
// the first arm's tail is not dominated by one-time setup cost. Every
// comma-separated target gets the full warmup pass.
func warmTarget(baseURL string, n int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for _, target := range strings.Split(baseURL, ",") {
		target = strings.TrimSpace(target)
		if target == "" {
			continue
		}
		for i := 0; i < n; i++ {
			resp, err := client.Get(fmt.Sprintf("%s/api/search?q=w%d+w%d&m=5", target, i%16, i%16+1))
			if err != nil {
				return err
			}
			resp.Body.Close()
		}
	}
	return nil
}

// printArm renders one arm's headline numbers for the terminal.
func printArm(a loadgen.ArmReport) {
	fmt.Printf("  %-9s rps %7.1f/%7.1f  ok %6d  429 %5d  503 %4d  504 %4d  404 %4d  fail %4d  drop %4d\n",
		a.Arm, a.AchievedRPS, a.TargetRPS, a.OK, a.Shed429, a.Expired503,
		a.Timeout504, a.NotFound, a.Failed, a.Dropped)
	fmt.Printf("            p50 %s  p90 %s  p99 %s  p99.9 %s  max %s  (server queue %s + exec %s)\n",
		us(a.P50Micros), us(a.P90Micros), us(a.P99Micros), us(a.P999Micros), us(a.MaxMicros),
		us(a.ServerQueueMeanMicros), us(a.ServerSearchMeanMicros))
	fmt.Printf("            shed %.1f%%  cache-hit %.1f%%  coalesce %.1f%%  degraded %.1f%%  engine p50/p99 %s/%s\n",
		100*a.ShedRate, 100*a.CacheHitRate, 100*a.CoalesceRate, 100*a.DegradedRate,
		us(a.EngineP50Micros), us(a.EngineP99Micros))
	if a.UpdateOK > 0 {
		fmt.Printf("            updates ok %d  update p99 %s\n", a.UpdateOK, us(a.UpdateP99Micros))
	}
	for _, tr := range a.Targets {
		fmt.Printf("            target %s  sent %d  ok %d  429 %d  503 %d  504 %d  fail %d  p99 %s\n",
			tr.URL, tr.Sent, tr.OK, tr.Shed429, tr.Expired503, tr.Timeout504, tr.Failed, us(tr.P99Micros))
	}
}

func us(v int64) string { return (time.Duration(v) * time.Microsecond).String() }

// gate applies the baseline and shedding gates, returning gateError on
// SLO violations so main exits 2.
func gate(report *loadgen.Report, baseline string, sloRatio float64, requireShed bool, sloMS int) error {
	if baseline != "" {
		base, err := loadgen.ReadReport(baseline)
		if err != nil {
			return err
		}
		res, err := loadgen.CompareReports(base, report, sloRatio)
		if err != nil {
			return gateError{err}
		}
		fmt.Printf("slo gate vs %s: %s\n", baseline, res)
		if res.Regressed {
			return gateError{fmt.Errorf("accepted-p99 regression: %s", res)}
		}
	}
	if requireShed {
		checked := false
		for _, a := range report.Arms {
			if a.Kind != loadgen.KindOverload {
				continue
			}
			checked = true
			if err := loadgen.CheckOverload(a, time.Duration(sloMS)*time.Millisecond); err != nil {
				return gateError{err}
			}
			fmt.Printf("overload gate: arm %s shed %d (%.1f%%) while accepted p99 %s held under %dms\n",
				a.Arm, a.Shed429, 100*a.ShedRate, us(a.P99Micros), sloMS)
		}
		if !checked {
			return gateError{fmt.Errorf("-require-shed set but no overload arm ran")}
		}
	}
	return nil
}
