// Command xrank-gen writes synthetic benchmark corpora to disk:
//
//	xrank-gen -kind dblp  -out ./corpus -docs 30 -papers 120
//	xrank-gen -kind xmark -out ./corpus -items 1200
//	xrank-gen -kind html  -out ./corpus -pages 80
//	xrank-gen -kind perf  -out ./corpus -blocks 200000
//
// The generated files can be indexed with `xrank index -dir IDX out/*`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xrank/internal/datagen/dblp"
	"xrank/internal/datagen/htmlgen"
	"xrank/internal/datagen/perfgen"
	"xrank/internal/datagen/xmark"
)

func main() {
	var (
		kind      = flag.String("kind", "dblp", "corpus kind: dblp, xmark, html, perf")
		out       = flag.String("out", "", "output directory (required)")
		seed      = flag.Int64("seed", 42, "generation seed")
		docs      = flag.Int("docs", 30, "dblp: venue-year documents")
		papers    = flag.Int("papers", 120, "dblp: papers per document")
		items     = flag.Int("items", 1200, "xmark: items")
		pages     = flag.Int("pages", 80, "html: pages")
		blocks    = flag.Int("blocks", 200000, "perf: records")
		anecdotes = flag.Bool("anecdotes", true, "plant the Section 5.2 ranking anecdotes")
		markers   = flag.Int("markers", 3, "correlation marker groups (0 disables)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "xrank-gen: -out is required")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(*out, name), []byte(content), 0o644); err != nil {
			fail(err)
		}
	}
	n := 0
	switch *kind {
	case "dblp":
		for _, d := range dblp.Generate(dblp.Params{
			Seed: *seed, Docs: *docs, PapersPerDoc: *papers,
			CorrelationGroups: *markers, PlantAnecdotes: *anecdotes,
		}) {
			write(d.Name, d.XML)
			n++
		}
	case "xmark":
		write("xmark.xml", xmark.Generate(xmark.Params{
			Seed: *seed, Items: *items,
			CorrelationGroups: *markers, PlantAnecdotes: *anecdotes,
		}))
		n = 1
	case "html":
		for _, d := range htmlgen.Generate(htmlgen.Params{Seed: *seed, Pages: *pages}) {
			write(d.Name, d.HTML)
			n++
		}
	case "perf":
		for _, d := range perfgen.Generate(perfgen.Params{Seed: *seed, Blocks: *blocks, Groups: *markers}) {
			write(d.Name, d.XML)
			n++
		}
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}
	fmt.Printf("wrote %d file(s) to %s\n", n, *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xrank-gen:", err)
	os.Exit(1)
}
