package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xrank"
	"xrank/internal/httpapi"
)

const fixture = "../../internal/ingest/testdata/abstracts.xml"

// TestIngestEndToEnd streams the committed abstracts fixture into a
// fresh directory and proves the result is a queryable engine: search
// finds fixture content, /api/suggest completes fixture terms, and the
// xrank_suggest_* metrics move — the acceptance path of the subsystem.
func TestIngestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-in", fixture, "-dir", dir, "-batch", "7"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "40 total") {
		t.Fatalf("output does not report 40 docs:\n%s", out.String())
	}

	e, err := xrank.OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.NumDocs() != 40 {
		t.Fatalf("NumDocs = %d, want 40", e.NumDocs())
	}
	rs, err := e.Search("inverted index")
	if err != nil || len(rs) == 0 {
		t.Fatalf("search over ingested corpus: %v, %d results", err, len(rs))
	}

	mux := httpapi.NewMux(e, httpapi.Options{Metrics: true})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/suggest?q=pre&k=5", nil))
	if rec.Code != 200 {
		t.Fatalf("/api/suggest: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Suggestions []xrank.Suggestion
		Terms       int
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// "prefix", "precision", "predicts", "pressure" all live in the fixture.
	if len(resp.Suggestions) == 0 || resp.Terms == 0 {
		t.Fatalf("no completions over the ingested corpus: %s", rec.Body)
	}
	for _, s := range resp.Suggestions {
		if !strings.HasPrefix(s.Term, "pre") {
			t.Errorf("completion %q does not extend the prefix", s.Term)
		}
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "xrank_suggest_queries_total 1") {
		t.Fatalf("suggest metrics not populated:\n%s", rec.Body)
	}
}

// TestIngestResume interrupts an ingest with -limit, resumes it, and
// checks the result matches a one-shot run: same doc count, same
// deterministic names, same search results.
func TestIngestResume(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-in", fixture, "-dir", dir, "-batch", "6", "-limit", "15"}, &out); err != nil {
		t.Fatalf("first run: %v\n%s", err, out.String())
	}
	e, err := xrank.OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumDocs() != 15 {
		t.Fatalf("after -limit 15: NumDocs = %d", e.NumDocs())
	}
	e.Close()

	out.Reset()
	if err := run([]string{"-in", fixture, "-dir", dir, "-batch", "6"}, &out); err != nil {
		t.Fatalf("resume: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "resuming after 15 committed docs") {
		t.Fatalf("resume did not pick up the checkpoint:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "25 docs this run, 40 total") {
		t.Fatalf("resume accounting wrong:\n%s", out.String())
	}

	e, err = xrank.OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.NumDocs() != 40 {
		t.Fatalf("after resume: NumDocs = %d, want 40", e.NumDocs())
	}
	// The last fixture doc must be present under its deterministic name.
	rs, err := e.Search("load testing")
	if err != nil || len(rs) == 0 {
		t.Fatalf("tail doc not searchable: %v, %d results", err, len(rs))
	}
	found := false
	for _, r := range rs {
		if r.Doc == "wiki-00000039.xml" {
			found = true
		}
	}
	if !found {
		t.Fatalf("deterministic name missing from results: %+v", rs)
	}

	// Running again against a finished checkpoint is a no-op.
	out.Reset()
	if err := run([]string{"-in", fixture, "-dir", dir, "-batch", "6"}, &out); err != nil {
		t.Fatalf("idempotent rerun: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 docs this run, 40 total") {
		t.Fatalf("finished ingest re-ingested docs:\n%s", out.String())
	}
}

// TestIngestGzipResume covers the non-seekable path: a gzipped dump
// resumes by re-reading and skipping the committed prefix.
func TestIngestGzipResume(t *testing.T) {
	raw, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(t.TempDir(), "abstracts.xml.gz")
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gzPath, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-in", gzPath, "-dir", dir, "-batch", "9", "-limit", "20"}, &out); err != nil {
		t.Fatalf("first run: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run([]string{"-in", gzPath, "-dir", dir, "-batch", "9"}, &out); err != nil {
		t.Fatalf("resume: %v\n%s", err, out.String())
	}
	e, err := xrank.OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.NumDocs() != 40 {
		t.Fatalf("gzip resume: NumDocs = %d, want 40", e.NumDocs())
	}
}

// TestIngestHTTPMode posts the fixture through a live /api/docs server
// and checks the documents land (and suggest sees them).
func TestIngestHTTPMode(t *testing.T) {
	e := xrank.NewEngine(&xrank.Config{IndexDir: t.TempDir()})
	if err := e.AddXML("seed.xml", strings.NewReader("<doc><t>seed document</t></doc>")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	srv := httptest.NewServer(httpapi.NewMux(e, httpapi.Options{Updates: true}))
	defer srv.Close()

	var out bytes.Buffer
	if err := run([]string{"-in", fixture, "-mode", "http", "-url", srv.URL,
		"-checkpoint", "none", "-batch", "10", "-limit", "12"}, &out); err != nil {
		t.Fatalf("http mode: %v\n%s", err, out.String())
	}
	if e.NumDocs() != 13 { // seed + 12
		t.Fatalf("NumDocs = %d, want 13", e.NumDocs())
	}
	sugs, _, err := e.Suggest("anarch", 5)
	if err != nil || len(sugs) == 0 {
		t.Fatalf("suggest over HTTP-ingested docs: %v, %v", err, sugs)
	}
}

// TestIngestChecksGuards covers the refusal paths: source mismatch and
// bad flags.
func TestIngestGuards(t *testing.T) {
	if err := run([]string{"-dir", t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", fixture}, &bytes.Buffer{}); err == nil {
		t.Error("local mode without -dir accepted")
	}
	if err := run([]string{"-in", fixture, "-mode", "http"}, &bytes.Buffer{}); err == nil {
		t.Error("http mode without -url accepted")
	}
	if err := run([]string{"-in", fixture, "-mode", "wat", "-dir", t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Error("unknown mode accepted")
	}

	// A checkpoint from a different dump is refused, not silently reused.
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-in", fixture, "-dir", dir, "-limit", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(t.TempDir(), "other.xml")
	raw, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(other, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", other, "-dir", dir}, &out); err == nil ||
		!strings.Contains(err.Error(), "records source") {
		t.Errorf("source mismatch not refused: %v", err)
	}
}
