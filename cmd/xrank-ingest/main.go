// Command xrank-ingest streams a Wikipedia-abstract XML dump into an
// XRANK engine:
//
//	xrank-ingest -in enwiki-abstract.xml -dir ./idx              build or extend a local index
//	xrank-ingest -in dump.xml.gz -dir ./idx -batch 2000          gzip input, bigger batches
//	xrank-ingest -in dump.xml -mode http -url http://host:8080   POST /api/docs to a running server
//
// The dump is parsed with a streaming token loop (one <doc> resident at
// a time), so memory stays bounded on multi-gigabyte inputs. Documents
// commit in batches — a fresh directory's first batch builds the engine,
// every later batch lands as a delta segment through AddDocs — and a
// checkpoint is durably written after each committed batch, so a killed
// ingest resumes exactly after the last committed document (seekable
// inputs seek to the recorded offset; gzip inputs re-read and skip by
// count). Document names are deterministic (wiki-NNNNNNNN.xml), so a
// resume reproduces the names a one-shot run would have used.
package main

import (
	"bytes"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"xrank"
	"xrank/internal/ingest"
	"xrank/internal/storage"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "xrank-ingest: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fl := flag.NewFlagSet("xrank-ingest", flag.ContinueOnError)
	in := fl.String("in", "", "abstracts dump to ingest (.xml or .xml.gz; required)")
	mode := fl.String("mode", "local", `"local" (build or extend the index at -dir) or "http" (POST /api/docs to -url)`)
	dir := fl.String("dir", "", "index directory (local mode; required)")
	serverURL := fl.String("url", "", "server base URL (http mode; required)")
	ckpt := fl.String("checkpoint", "", `checkpoint file (local default: <dir>/ingest.checkpoint; "none" disables)`)
	batch := fl.Int("batch", 1000, "documents per committed batch")
	limit := fl.Int64("limit", 0, "stop after this many total documents (0 = whole dump)")
	shards := fl.Int("shards", 0, "index shards when creating a fresh directory (0 = engine default)")
	block := fl.Bool("block", false, "block postings format when creating a fresh directory")
	compactOver := fl.Int("compact-segments", 8, "compact when more than this many segments accumulate (0 disables)")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1")
	}

	// The sink commits one batch durably (names are pre-assigned by the
	// caller from the checkpointed document counter).
	var sink func(batch map[string][]byte) error
	var done func() error
	fs := storage.DefaultFS(nil)
	switch *mode {
	case "local":
		if *dir == "" {
			return fmt.Errorf("-dir is required in local mode")
		}
		if *ckpt == "" {
			*ckpt = filepath.Join(*dir, "ingest.checkpoint")
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
		var e *xrank.Engine
		fresh := false
		if _, err := os.Stat(filepath.Join(*dir, "engine.json")); os.IsNotExist(err) {
			fresh = true
			e = xrank.NewEngine(&xrank.Config{IndexDir: *dir, Shards: *shards, BlockPostings: *block})
		} else if err != nil {
			return err
		} else if e, err = xrank.OpenEngine(*dir); err != nil {
			return err
		}
		defer e.Close()
		sink = func(b map[string][]byte) error {
			if fresh {
				// First batch of a fresh directory: build the base
				// segment (the durable commit the checkpoint records).
				// Name order keeps doc IDs deterministic, like AddDocs'
				// own internal sort.
				names := make([]string, 0, len(b))
				for name := range b {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					if err := e.AddXML(name, bytes.NewReader(b[name])); err != nil {
						return err
					}
				}
				if _, err := e.Build(); err != nil {
					return err
				}
				fresh = false
				return nil
			}
			add := make(map[string]io.Reader, len(b))
			for name, doc := range b {
				add[name] = bytes.NewReader(doc)
			}
			if err := e.AddDocs(add); err != nil {
				return err
			}
			if *compactOver > 0 && e.SegmentCount() > *compactOver {
				if _, err := e.CompactOnce(0); err != nil {
					return fmt.Errorf("compact: %w", err)
				}
			}
			return nil
		}
		done = func() error {
			fmt.Fprintf(out, "index: %d docs, %d segments, %d suggest terms\n",
				e.NumDocs(), e.SegmentCount(), e.SuggestTerms())
			return nil
		}
	case "http":
		if *serverURL == "" {
			return fmt.Errorf("-url is required in http mode")
		}
		base := strings.TrimSuffix(*serverURL, "/")
		client := &http.Client{Timeout: 60 * time.Second}
		sink = func(b map[string][]byte) error {
			for name, doc := range b {
				u := base + "/api/docs?name=" + url.QueryEscape(name)
				resp, err := client.Post(u, "application/xml", bytes.NewReader(doc))
				if err != nil {
					return err
				}
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("POST %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
				}
			}
			return nil
		}
		done = func() error { return nil }
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	// Load the checkpoint and position the input after the last
	// committed document.
	checkpointing := *ckpt != "" && *ckpt != "none"
	cp := &ingest.Checkpoint{Source: filepath.Base(*in)}
	if checkpointing {
		old, err := ingest.LoadCheckpoint(fs, *ckpt)
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		if old != nil {
			if old.Source != cp.Source {
				return fmt.Errorf("checkpoint %s records source %q, not %q", *ckpt, old.Source, cp.Source)
			}
			cp = old
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	var sourceSize int64
	if st, err := f.Stat(); err == nil {
		sourceSize = st.Size()
	}
	if cp.Docs > 0 && cp.SourceSize != 0 && cp.SourceSize != sourceSize {
		return fmt.Errorf("dump size changed since checkpoint (%d != %d); delete %s to restart", sourceSize, cp.SourceSize, *ckpt)
	}
	cp.SourceSize = sourceSize

	var p *ingest.Parser
	gzipped := strings.HasSuffix(*in, ".gz")
	switch {
	case gzipped:
		zr, err := gzip.NewReader(f)
		if err != nil {
			return err
		}
		defer zr.Close()
		p = ingest.NewParser(zr)
		// Compressed input is not seekable: resume by re-reading and
		// discarding the committed prefix.
		for skipped := int64(0); skipped < cp.Docs; skipped++ {
			if _, err := p.Next(); err != nil {
				return fmt.Errorf("skipping %d committed docs: %w", cp.Docs, err)
			}
		}
	case cp.Docs > 0:
		if _, err := f.Seek(cp.Offset, io.SeekStart); err != nil {
			return err
		}
		p = ingest.ResumeParser(f, cp.Offset)
	default:
		p = ingest.NewParser(f)
	}
	if cp.Docs > 0 {
		fmt.Fprintf(out, "resuming after %d committed docs (batch %d)\n", cp.Docs, cp.Batches)
	}

	start := time.Now()
	ingested := int64(0)
	eof := false
	for !eof {
		if *limit > 0 && cp.Docs >= *limit {
			break
		}
		b := make(map[string][]byte, *batch)
		// batchOff is the offset just past the batch's last </doc> — not
		// p.InputOffset() at commit time, which after the final document
		// has consumed the whole feed and would checkpoint past </feed>.
		batchOff := cp.Offset
		for len(b) < *batch {
			if *limit > 0 && cp.Docs+int64(len(b)) >= *limit {
				break
			}
			a, err := p.Next()
			if err == io.EOF {
				eof = true
				break
			}
			if err != nil {
				return fmt.Errorf("parse after %d docs: %w", cp.Docs+int64(len(b)), err)
			}
			b[ingest.DocName(cp.Docs+int64(len(b)))] = a.DocXML()
			batchOff = p.InputOffset()
		}
		if len(b) == 0 {
			break
		}
		if err := sink(b); err != nil {
			return fmt.Errorf("batch %d: %w", cp.Batches+1, err)
		}
		cp.Docs += int64(len(b))
		cp.Offset = batchOff
		cp.Batches++
		ingested += int64(len(b))
		if checkpointing {
			if err := ingest.SaveCheckpoint(fs, *ckpt, cp); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
		}
		fmt.Fprintf(out, "batch %d: %d docs committed (%.0f docs/s)\n",
			cp.Batches, cp.Docs, float64(ingested)/time.Since(start).Seconds())
	}
	fmt.Fprintf(out, "done: %d docs this run, %d total, %d batches, %.1fs\n",
		ingested, cp.Docs, cp.Batches, time.Since(start).Seconds())
	return done()
}
