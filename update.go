package xrank

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"xrank/internal/storage"
)

// Document-granularity updates (Section 4.5). The paper handles adding
// and deleting whole documents "exactly like in traditional inverted
// lists": deletions take effect immediately through document-ID
// tombstones (the first Dewey component identifies the document), and
// additions are folded in by rebuilding the indexes from the document
// store — the classic batch/merge regime. AddDocs (segment.go) amortizes
// the addition side into immutable delta segments; Update below remains
// the full-rebuild path that also reclaims tombstone space.
// Element-granularity insertion (sparse Dewey renumbering, Tatarinov et
// al. [32]) is future work in the paper as well.

// DeleteDoc tombstones a document: its elements disappear from all query
// results immediately, without touching the index files. The tombstone is
// persisted in the engine manifest. Space is reclaimed at the next
// Update/rebuild. Under name shadowing (AddDocs replacing a document) the
// newest version of the name is deleted.
//
// Cached results are invalidated per document: only entries whose result
// sets mention the deleted document are evicted, so unrelated hot
// queries keep their cache hits.
func (e *Engine) DeleteDoc(name string) error {
	if !e.built {
		return fmt.Errorf("xrank: DeleteDoc before Build")
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	d := e.col.DocByName(name)
	if d == nil {
		return fmt.Errorf("xrank: no document %q", name)
	}
	if int(d.ID) >= len(e.docs) {
		return fmt.Errorf("xrank: document %q missing from manifest", name)
	}
	de := &e.docs[d.ID]
	if de.Deleted {
		return fmt.Errorf("xrank: document %q already deleted", name)
	}
	de.Deleted = true
	e.mu.Lock()
	if e.deleted == nil {
		e.deleted = make(map[uint32]bool)
	}
	e.deleted[d.ID] = true
	e.mu.Unlock()
	// Evict only the cached results that mention this document — after
	// the tombstone is visible, so a racing query that misses from here
	// on filters the document. A store racing with the eviction is
	// caught by the serve-time liveness check (docsLive in search.go).
	e.invalidateDocResults(name)
	if e.segmented {
		return e.persistSegments()
	}
	return e.persistManifest(e.cfg.IndexDir)
}

// invalidateDocResults drops every result-cache entry whose result set
// mentions the named document. Entries of unknown shape are evicted
// defensively.
func (e *Engine) invalidateDocResults(name string) {
	if e.rcache == nil {
		return
	}
	n := e.rcache.EvictMatching(func(_ string, val any) bool {
		fv, ok := val.(*flightEntry)
		if !ok {
			return true
		}
		for _, d := range fv.docs {
			if d == name {
				return true
			}
		}
		return false
	})
	if n > 0 {
		e.met.resultEvictions.Add(int64(n))
	}
	cs := e.rcache.Stats()
	e.met.resultBytes.Set(cs.Bytes)
	e.met.resultEntries.Set(int64(cs.Entries))
}

// DeletedDocs returns the names of tombstoned documents.
func (e *Engine) DeletedDocs() []string {
	var out []string
	seen := make(map[string]bool)
	for _, d := range e.docs {
		if d.Deleted && !seen[d.Name] {
			// Under shadowing the name may appear again as a live newer
			// version; only report names with no live version.
			if live := e.col.DocByName(d.Name); live != nil && !e.docs[live.ID].Deleted {
				continue
			}
			seen[d.Name] = true
			out = append(out, d.Name)
		}
	}
	return out
}

// Update builds a new engine in dir containing this engine's live
// (non-tombstoned) documents plus the given additions, reading the
// existing documents from the document store. The receiver remains usable
// and unchanged. add maps new document names to their content; names
// ending in .html are parsed as HTML. Unlike AddDocs this is a full
// rebuild: it reclaims the space of tombstoned and shadowed documents.
func (e *Engine) Update(dir string, add map[string]io.Reader) (*Engine, error) {
	if !e.built {
		return nil, fmt.Errorf("xrank: Update before Build")
	}
	if dir == e.cfg.IndexDir {
		return nil, fmt.Errorf("xrank: Update target must differ from the current index directory")
	}
	cfg := e.cfg
	cfg.IndexDir = dir
	ne := NewEngine(&cfg)
	fs := e.fs()
	for i := range e.docs {
		d := &e.docs[i]
		if d.Deleted {
			continue
		}
		// Under shadowing only the newest version of a name is live.
		if cur := e.col.DocByName(d.Name); cur == nil || int(cur.ID) != i {
			continue
		}
		// Read back through storage.FS so fault injection covers the
		// document-store read path, and verify against the manifest's
		// checksum before reparsing.
		data, err := fs.ReadFile(filepath.Join(e.cfg.IndexDir, "docs", d.File))
		if err != nil {
			return nil, fmt.Errorf("xrank: document store: %w", err)
		}
		if int64(len(data)) != d.Size || storage.Checksum(data) != d.CRC32 {
			return nil, fmt.Errorf("xrank: document store: %s: %w", d.File, ErrCorrupt)
		}
		if d.HTML {
			err = ne.AddHTML(d.Name, bytes.NewReader(data))
		} else {
			err = ne.AddXML(d.Name, bytes.NewReader(data))
		}
		if err != nil {
			return nil, err
		}
	}
	// Sort added names for deterministic document IDs.
	names := make([]string, 0, len(add))
	for n := range add {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var err error
		if isHTMLName(n) {
			err = ne.AddHTML(n, add[n])
		} else {
			err = ne.AddXML(n, add[n])
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := ne.Build(); err != nil {
		return nil, err
	}
	return ne, nil
}
