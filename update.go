package xrank

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Document-granularity updates (Section 4.5). The paper handles adding
// and deleting whole documents "exactly like in traditional inverted
// lists": deletions take effect immediately through document-ID
// tombstones (the first Dewey component identifies the document), and
// additions are folded in by rebuilding the indexes from the document
// store — the classic batch/merge regime. Element-granularity insertion
// (sparse Dewey renumbering, Tatarinov et al. [32]) is future work in the
// paper as well.

// DeleteDoc tombstones a document: its elements disappear from all query
// results immediately, without touching the index files. The tombstone is
// persisted in the engine manifest. Space is reclaimed at the next
// Update/rebuild.
func (e *Engine) DeleteDoc(name string) error {
	if !e.built {
		return fmt.Errorf("xrank: DeleteDoc before Build")
	}
	d := e.col.DocByName(name)
	if d == nil {
		return fmt.Errorf("xrank: no document %q", name)
	}
	for i := range e.docs {
		if e.docs[i].Name == name {
			if e.docs[i].Deleted {
				return fmt.Errorf("xrank: document %q already deleted", name)
			}
			e.docs[i].Deleted = true
			e.mu.Lock()
			if e.deleted == nil {
				e.deleted = make(map[uint32]bool)
			}
			e.deleted[d.ID] = true
			e.mu.Unlock()
			// Bump the cache generation only after the tombstone is
			// visible: a query that misses the cache from here on filters
			// the document, and anything cached before the bump reads as
			// stale. The other order would let a pre-delete result be
			// re-served after the delete.
			e.gen.Add(1)
			return e.persistManifest(e.cfg.IndexDir)
		}
	}
	return fmt.Errorf("xrank: document %q missing from manifest", name)
}

// DeletedDocs returns the names of tombstoned documents.
func (e *Engine) DeletedDocs() []string {
	var out []string
	for _, d := range e.docs {
		if d.Deleted {
			out = append(out, d.Name)
		}
	}
	return out
}

// Update builds a new engine in dir containing this engine's live
// (non-tombstoned) documents plus the given additions, reading the
// existing documents from the document store. The receiver remains usable
// and unchanged. add maps new document names to their content; names
// ending in .html are parsed as HTML.
func (e *Engine) Update(dir string, add map[string]io.Reader) (*Engine, error) {
	if !e.built {
		return nil, fmt.Errorf("xrank: Update before Build")
	}
	if dir == e.cfg.IndexDir {
		return nil, fmt.Errorf("xrank: Update target must differ from the current index directory")
	}
	cfg := e.cfg
	cfg.IndexDir = dir
	ne := NewEngine(&cfg)
	for _, d := range e.docs {
		if d.Deleted {
			continue
		}
		f, err := os.Open(filepath.Join(e.cfg.IndexDir, "docs", d.File))
		if err != nil {
			return nil, fmt.Errorf("xrank: document store: %w", err)
		}
		if d.HTML {
			err = ne.AddHTML(d.Name, f)
		} else {
			err = ne.AddXML(d.Name, f)
		}
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	// Sort added names for deterministic document IDs.
	names := make([]string, 0, len(add))
	for n := range add {
		names = append(names, n)
	}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		var err error
		if filepath.Ext(n) == ".html" || filepath.Ext(n) == ".htm" {
			err = ne.AddHTML(n, add[n])
		} else {
			err = ne.AddXML(n, add[n])
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := ne.Build(); err != nil {
		return nil, err
	}
	return ne, nil
}
