package storage

import (
	"errors"
	"math/rand"
	"os"
	"sync"
)

// FaultFS wraps another FS with deterministic, seed-driven fault
// injection: transient or permanent I/O errors (EIO, ENOSPC), short
// writes, torn pages, and "crash here" points at any write/sync boundary.
// It is the substrate under the crash-simulation harness and the
// degraded-mode tests.
//
// Write-boundary operations — Create, WriteAt, Sync, Rename, Remove,
// MkdirAll, SyncDir — are numbered 1, 2, 3, … in execution order. A
// clean run with no faults armed counts them (WriteOps), and the crash
// matrix then replays the same workload once per boundary with
// CrashAtWriteOp(k): the k-th boundary fails with ErrCrashed — a WriteAt
// additionally persists a deterministic prefix of its buffer first, the
// torn-page model — and every later mutation also fails, simulating the
// process dying at that instant. Reads keep working after a "crash" (the
// harness reopens through a fresh FS anyway).
//
// All configuration methods may be called at any time, including after
// files were opened: handles consult the FaultFS on every operation.
type FaultFS struct {
	mu   sync.Mutex
	base FS
	rng  *rand.Rand

	writeOps int64
	readOps  int64

	crashAt int64 // 1-based write-boundary index; 0 = disarmed
	crashed bool

	shortWriteAt int64 // write boundary that persists a prefix, reports io.ErrShortWrite

	readRule  *faultRule
	writeRule *faultRule
}

// ErrCrashed marks every operation refused because the FaultFS reached
// its armed crash point — the moral equivalent of the process dying.
var ErrCrashed = errors.New("fault: simulated crash")

// ErrInjected is a generic injected I/O failure for callers that don't
// care which errno they simulate.
var ErrInjected = errors.New("fault: injected I/O error")

type faultRule struct {
	pred      func(path string) bool
	err       error
	remaining int64 // <0 = unlimited
}

func (r *faultRule) match(path string) error {
	if r == nil || r.remaining == 0 || (r.pred != nil && !r.pred(path)) {
		return nil
	}
	if r.remaining > 0 {
		r.remaining--
	}
	return r.err
}

// NewFaultFS wraps base (nil = the real file system) with fault
// injection. seed drives every random choice (torn-write prefix
// lengths), so a given seed + fault configuration replays identically.
func NewFaultFS(base FS, seed int64) *FaultFS {
	return &FaultFS{base: DefaultFS(base), rng: rand.New(rand.NewSource(seed))}
}

// CrashAtWriteOp arms the simulated crash at the n-th write boundary
// (1-based); 0 disarms. See the type comment for the crash model.
func (f *FaultFS) CrashAtWriteOp(n int64) {
	f.mu.Lock()
	f.crashAt = n
	f.mu.Unlock()
}

// ShortWriteAtOp makes the n-th write boundary, if it is a WriteAt,
// persist only a prefix of its buffer and report io.ErrShortWrite —
// the partial-write failure mode checksums must catch.
func (f *FaultFS) ShortWriteAtOp(n int64) {
	f.mu.Lock()
	f.shortWriteAt = n
	f.mu.Unlock()
}

// FailReads injects err on ReadAt/ReadFile operations whose path
// satisfies pred (nil = every path). n bounds how many reads fail
// (n < 0 = every matching read, permanently).
func (f *FaultFS) FailReads(pred func(path string) bool, err error, n int64) {
	f.mu.Lock()
	f.readRule = &faultRule{pred: pred, err: err, remaining: n}
	f.mu.Unlock()
}

// FailWrites injects err on write-boundary operations whose path
// satisfies pred (nil = every path), performing nothing — the EIO/ENOSPC
// model. n bounds how many writes fail (n < 0 = unlimited).
func (f *FaultFS) FailWrites(pred func(path string) bool, err error, n int64) {
	f.mu.Lock()
	f.writeRule = &faultRule{pred: pred, err: err, remaining: n}
	f.mu.Unlock()
}

// WriteOps returns how many write boundaries have executed so far — run
// the workload once fault-free to size the crash matrix.
func (f *FaultFS) WriteOps() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeOps
}

// ReadOps returns how many read operations have executed so far.
func (f *FaultFS) ReadOps() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.readOps
}

// Crashed reports whether the armed crash point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// writeBoundary accounts one write-boundary op against path and decides
// its fate: nil error and torn < 0 → perform normally; torn >= 0 → a
// WriteAt persists only p[:torn] (with err telling the caller what to
// report); otherwise fail with err performing nothing.
func (f *FaultFS) writeBoundary(path string, bufLen int) (torn int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return -1, ErrCrashed
	}
	f.writeOps++
	if f.crashAt > 0 && f.writeOps >= f.crashAt {
		f.crashed = true
		if bufLen > 0 {
			// Torn page: a deterministic prefix reaches the platter
			// before the "power fails".
			return f.rng.Intn(bufLen), ErrCrashed
		}
		return -1, ErrCrashed
	}
	if f.shortWriteAt > 0 && f.writeOps == f.shortWriteAt && bufLen > 0 {
		n := 1 + f.rng.Intn(bufLen)
		if n == bufLen {
			n = bufLen - 1
		}
		return n, errShortWrite
	}
	if ferr := f.writeRule.match(path); ferr != nil {
		return -1, ferr
	}
	return -1, nil
}

var errShortWrite = errors.New("fault: injected short write")

func (f *FaultFS) readBoundary(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readOps++
	return f.readRule.match(path)
}

// Create opens path through the base FS unless a fault fires first.
func (f *FaultFS) Create(path string) (File, error) {
	if _, err := f.writeBoundary(path, 0); err != nil {
		return nil, err
	}
	fl, err := f.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, f: fl}, nil
}

// Open opens path read-write; reads and writes through the handle keep
// consulting the FaultFS.
func (f *FaultFS) Open(path string) (File, error) {
	fl, err := f.base.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, f: fl}, nil
}

// ReadFile reads path, subject to read faults.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := f.readBoundary(path); err != nil {
		return nil, err
	}
	return f.base.ReadFile(path)
}

// Rename is a write boundary: an armed crash fires before the rename, so
// the destination keeps its previous content.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.writeBoundary(newpath, 0); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove is a write boundary.
func (f *FaultFS) Remove(path string) error {
	if _, err := f.writeBoundary(path, 0); err != nil {
		return err
	}
	return f.base.Remove(path)
}

// MkdirAll is a write boundary.
func (f *FaultFS) MkdirAll(path string) error {
	if _, err := f.writeBoundary(path, 0); err != nil {
		return err
	}
	return f.base.MkdirAll(path)
}

// Stat passes through un-faulted (metadata reads don't tear).
func (f *FaultFS) Stat(path string) (os.FileInfo, error) { return f.base.Stat(path) }

// SyncDir is a write boundary: the crash model includes dying between a
// rename and its parent-directory fsync.
func (f *FaultFS) SyncDir(path string) error {
	if _, err := f.writeBoundary(path, 0); err != nil {
		return err
	}
	return f.base.SyncDir(path)
}

// faultFile threads every read/write/sync of one handle back through its
// FaultFS.
type faultFile struct {
	fs   *FaultFS
	path string
	f    File
}

func (fl *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := fl.fs.readBoundary(fl.path); err != nil {
		return 0, err
	}
	return fl.f.ReadAt(p, off)
}

func (fl *faultFile) WriteAt(p []byte, off int64) (int, error) {
	torn, err := fl.fs.writeBoundary(fl.path, len(p))
	if err != nil {
		if torn > 0 {
			fl.f.WriteAt(p[:torn], off) // the torn prefix lands; the error stands
		}
		if errors.Is(err, errShortWrite) {
			return torn, err
		}
		return 0, err
	}
	return fl.f.WriteAt(p, off)
}

func (fl *faultFile) Sync() error {
	if _, err := fl.fs.writeBoundary(fl.path, 0); err != nil {
		return err
	}
	return fl.f.Sync()
}

func (fl *faultFile) Close() error { return fl.f.Close() }
