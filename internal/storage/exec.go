package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBudgetExceeded is returned (wrapped) when a query's page-read budget
// runs out; see ExecContext.SetBudget.
var ErrBudgetExceeded = errors.New("storage: page-read budget exceeded")

// ExecContext is the per-query execution context threaded from the engine
// down through the query processors, cursors, B+-tree probes and buffer
// pools to the page file. It owns three things:
//
//   - a context.Context checked at every page access (device read or
//     buffer-pool hit) and at merge-loop boundaries, so a cancelled or
//     deadline-expired query aborts promptly mid-merge;
//   - a private Stats accumulator, so the I/O of one query is attributed
//     to exactly that query even when many queries run concurrently
//     against the same index (the engine-global counters only report
//     aggregate traffic). The accumulator carries its own
//     sequential/random stream classifier: a query's reads are classified
//     by the query's own access pattern, not by how concurrent queries
//     happen to interleave on the shared file;
//   - an optional page-read budget: once the query has performed that
//     many device reads, every further page access fails with an error
//     wrapping ErrBudgetExceeded (admission control's per-query knob).
//
// It additionally carries an optional SpanRecorder so every layer can
// report per-stage timings (StartSpan) into one per-query trace; see
// SetSpanRecorder.
//
// A query that fans out across index shards gives each parallel branch a
// Child context: children share the parent's cancellation, deadline,
// read budget and sticky failure (one family-wide pool of all three),
// while each child classifies its own access stream and accumulates its
// own Stats, which the parent's Stats aggregates race-free.
//
// A nil *ExecContext is valid everywhere and disables all three concerns,
// so index-building and legacy single-tenant callers need no changes.
// Methods are safe for concurrent use, but an ExecContext family
// represents one query: do not share one across queries you want
// attributed separately.
type ExecContext struct {
	ctx    context.Context
	shared *execShared

	mu       sync.Mutex
	stats    Stats
	children []*ExecContext
}

// execShared is the state one query's whole ExecContext family shares:
// the device-read budget, the sticky failure, and the span recorder. It
// has its own mutex so budget accounting across parallel shard workers
// stays consistent without serializing their per-branch stats updates.
type execShared struct {
	mu       sync.Mutex
	maxReads int64
	reads    int64 // device reads across the whole family
	err      error // sticky failure (budget exhaustion or Fail)
	recorder SpanRecorder
}

// SpanRecorder receives finished per-stage spans. The engine installs
// one per query (an obs.Trace satisfies this structurally); every layer
// below reports stage timings through StartSpan without knowing where
// they go. Implementations must be safe for concurrent use — parallel
// shard branches record into the same recorder.
type SpanRecorder interface {
	RecordSpan(name string, start time.Time, d time.Duration)
}

// NewExecContext creates an execution context for one query. A nil ctx
// means context.Background().
func NewExecContext(ctx context.Context) *ExecContext {
	if ctx == nil {
		ctx = context.Background()
	}
	return &ExecContext{ctx: ctx, shared: &execShared{}}
}

// SetBudget caps the number of device page reads this query — including
// every child branch — may perform; zero or negative means unlimited.
// Buffer-pool hits are free: the budget bounds actual disk traffic, not
// logical accesses. Call before the query starts.
func (ec *ExecContext) SetBudget(maxReads int64) {
	ec.shared.mu.Lock()
	ec.shared.maxReads = maxReads
	ec.shared.mu.Unlock()
}

// SetSpanRecorder installs the per-stage span sink for this query's
// whole ExecContext family (children created before or after see it
// too, since the recorder lives in the shared state). Call before the
// query starts; a nil receiver is a no-op.
func (ec *ExecContext) SetSpanRecorder(r SpanRecorder) {
	if ec == nil {
		return
	}
	ec.shared.mu.Lock()
	ec.shared.recorder = r
	ec.shared.mu.Unlock()
}

// StartSpan begins a named stage and returns the function that ends it,
// recording the elapsed time into the family's SpanRecorder:
//
//	defer ec.StartSpan("dil.merge")()
//
// A nil receiver or an unset recorder returns a no-op, so span-annotated
// code costs nothing for callers that don't trace (index builds, legacy
// single-tenant paths). Safe to call from parallel shard branches.
func (ec *ExecContext) StartSpan(name string) func() {
	if ec == nil {
		return func() {}
	}
	ec.shared.mu.Lock()
	r := ec.shared.recorder
	ec.shared.mu.Unlock()
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() { r.RecordSpan(name, start, time.Since(start)) }
}

// Child derives an execution context for one parallel branch of this
// query (a shard worker). The child shares the parent's context (so
// cancellation and deadlines fan out), its read budget (the family draws
// from one pool) and its sticky failure (a branch that fails — or a
// Fail call — stops the siblings at their next page access). The child
// has its own Stats accumulator and stream classifier, so concurrent
// branches never contend on one counter and each branch's reads are
// classified by that branch's own access pattern; the parent's Stats
// aggregates every descendant. A nil receiver returns nil.
func (ec *ExecContext) Child() *ExecContext {
	if ec == nil {
		return nil
	}
	child := &ExecContext{ctx: ec.ctx, shared: ec.shared}
	ec.mu.Lock()
	ec.children = append(ec.children, child)
	ec.mu.Unlock()
	return child
}

// Fail records err as the family's sticky failure (unless one is already
// set): every subsequent page access and Err check across the parent and
// all children returns it. The sharded query executor uses this so one
// shard's failure promptly aborts the other shards' workers instead of
// letting them run to completion. A nil receiver or nil err is a no-op.
func (ec *ExecContext) Fail(err error) {
	if ec == nil || err == nil {
		return
	}
	ec.shared.mu.Lock()
	if ec.shared.err == nil {
		ec.shared.err = err
	}
	ec.shared.mu.Unlock()
}

// Context returns the underlying context (context.Background() for a nil
// receiver).
func (ec *ExecContext) Context() context.Context {
	if ec == nil {
		return context.Background()
	}
	return ec.ctx
}

// Err reports why the query must stop: the context's error if it was
// cancelled or its deadline passed, the family's sticky error once the
// page-read budget is exhausted (or a branch failed), and nil otherwise
// (always nil on a nil receiver). Query merge loops call this between
// iterations.
func (ec *ExecContext) Err() error {
	if ec == nil {
		return nil
	}
	if err := ec.ctx.Err(); err != nil {
		return err
	}
	ec.shared.mu.Lock()
	defer ec.shared.mu.Unlock()
	return ec.shared.err
}

// Stats returns a snapshot of the I/O attributed to this query so far,
// including every child branch. A nil receiver reports zeroes.
func (ec *ExecContext) Stats() Stats {
	if ec == nil {
		return Stats{}
	}
	ec.mu.Lock()
	s := ec.stats
	kids := make([]*ExecContext, len(ec.children))
	copy(kids, ec.children)
	ec.mu.Unlock()
	for _, c := range kids {
		s.Add(c.Stats())
	}
	return s
}

// CountBlocks attributes posting-block outcomes to this query: decoded
// blocks were materialized by a cursor, skipped blocks were pruned
// without decoding (doc-range leapfrog or a threshold-algorithm early
// stop). Format-v1 indexes never call this. A nil receiver is a no-op.
func (ec *ExecContext) CountBlocks(decoded, skipped int64) {
	if ec == nil || (decoded == 0 && skipped == 0) {
		return
	}
	ec.mu.Lock()
	ec.stats.BlocksDecoded += decoded
	ec.stats.BlocksSkipped += skipped
	ec.mu.Unlock()
}

// pageRead accounts one device page read against this query, enforcing
// cancellation and the family-wide read budget. Called by
// PageFile.ReadPageExec before the read reaches the device.
func (ec *ExecContext) pageRead(id PageID) error {
	if ec == nil {
		return nil
	}
	if err := ec.ctx.Err(); err != nil {
		return err
	}
	sh := ec.shared
	sh.mu.Lock()
	if sh.err != nil {
		err := sh.err
		sh.mu.Unlock()
		return err
	}
	if sh.maxReads > 0 && sh.reads >= sh.maxReads {
		sh.err = fmt.Errorf("%w (limit %d device page reads)", ErrBudgetExceeded, sh.maxReads)
		err := sh.err
		sh.mu.Unlock()
		return err
	}
	sh.reads++
	sh.mu.Unlock()
	ec.mu.Lock()
	ec.stats.recordRead(id)
	ec.mu.Unlock()
	return nil
}

// Charge debits pages page-equivalents from the family's read budget
// without attributing a device read to the stats classifier. The
// compactor uses it (through BudgetFS) to meter segment-merge writes
// with the same budget machinery queries use for reads: once the pool
// is exhausted every further Charge — and every page read sharing the
// family — fails with an error wrapping ErrBudgetExceeded. A nil
// receiver, a non-positive charge, or an unset budget is a no-op.
func (ec *ExecContext) Charge(pages int64) error {
	if ec == nil || pages <= 0 {
		return nil
	}
	if err := ec.ctx.Err(); err != nil {
		return err
	}
	sh := ec.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.err != nil {
		return sh.err
	}
	if sh.maxReads > 0 && sh.reads >= sh.maxReads {
		sh.err = fmt.Errorf("%w (limit %d device page reads)", ErrBudgetExceeded, sh.maxReads)
		return sh.err
	}
	sh.reads += pages
	return nil
}

// cacheHit accounts one buffer-pool hit against this query. Hits are not
// budgeted, but a cancelled or already-over-budget query still stops here
// so that fully cached queries remain cancellable.
func (ec *ExecContext) cacheHit() error {
	if ec == nil {
		return nil
	}
	if err := ec.ctx.Err(); err != nil {
		return err
	}
	ec.shared.mu.Lock()
	if err := ec.shared.err; err != nil {
		ec.shared.mu.Unlock()
		return err
	}
	ec.shared.mu.Unlock()
	ec.mu.Lock()
	ec.stats.CacheHits++
	ec.mu.Unlock()
	return nil
}
