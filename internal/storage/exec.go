package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrBudgetExceeded is returned (wrapped) when a query's page-read budget
// runs out; see ExecContext.SetBudget.
var ErrBudgetExceeded = errors.New("storage: page-read budget exceeded")

// ExecContext is the per-query execution context threaded from the engine
// down through the query processors, cursors, B+-tree probes and buffer
// pools to the page file. It owns three things:
//
//   - a context.Context checked at every page access (device read or
//     buffer-pool hit) and at merge-loop boundaries, so a cancelled or
//     deadline-expired query aborts promptly mid-merge;
//   - a private Stats accumulator, so the I/O of one query is attributed
//     to exactly that query even when many queries run concurrently
//     against the same index (the engine-global counters only report
//     aggregate traffic). The accumulator carries its own
//     sequential/random stream classifier: a query's reads are classified
//     by the query's own access pattern, not by how concurrent queries
//     happen to interleave on the shared file;
//   - an optional page-read budget: once the query has performed that
//     many device reads, every further page access fails with an error
//     wrapping ErrBudgetExceeded (admission control's per-query knob).
//
// A nil *ExecContext is valid everywhere and disables all three concerns,
// so index-building and legacy single-tenant callers need no changes.
// Methods are safe for concurrent use, but an ExecContext represents one
// query: do not share one across queries you want attributed separately.
type ExecContext struct {
	ctx      context.Context
	maxReads int64

	mu    sync.Mutex
	stats Stats
	err   error // sticky budget error
}

// NewExecContext creates an execution context for one query. A nil ctx
// means context.Background().
func NewExecContext(ctx context.Context) *ExecContext {
	if ctx == nil {
		ctx = context.Background()
	}
	return &ExecContext{ctx: ctx}
}

// SetBudget caps the number of device page reads this query may perform;
// zero or negative means unlimited. Buffer-pool hits are free: the budget
// bounds actual disk traffic, not logical accesses.
func (ec *ExecContext) SetBudget(maxReads int64) {
	ec.maxReads = maxReads
}

// Context returns the underlying context (context.Background() for a nil
// receiver).
func (ec *ExecContext) Context() context.Context {
	if ec == nil {
		return context.Background()
	}
	return ec.ctx
}

// Err reports why the query must stop: the context's error if it was
// cancelled or its deadline passed, the sticky budget error once the
// page-read budget is exhausted, and nil otherwise (always nil on a nil
// receiver). Query merge loops call this between iterations.
func (ec *ExecContext) Err() error {
	if ec == nil {
		return nil
	}
	if err := ec.ctx.Err(); err != nil {
		return err
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.err
}

// Stats returns a snapshot of the I/O attributed to this query so far.
// A nil receiver reports zeroes.
func (ec *ExecContext) Stats() Stats {
	if ec == nil {
		return Stats{}
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.stats
}

// pageRead accounts one device page read against this query, enforcing
// cancellation and the read budget. Called by PageFile.ReadPageExec
// before the read reaches the device.
func (ec *ExecContext) pageRead(id PageID) error {
	if ec == nil {
		return nil
	}
	if err := ec.ctx.Err(); err != nil {
		return err
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if ec.err != nil {
		return ec.err
	}
	if ec.maxReads > 0 && ec.stats.Reads >= ec.maxReads {
		ec.err = fmt.Errorf("%w (limit %d device page reads)", ErrBudgetExceeded, ec.maxReads)
		return ec.err
	}
	ec.stats.recordRead(id)
	return nil
}

// cacheHit accounts one buffer-pool hit against this query. Hits are not
// budgeted, but a cancelled or already-over-budget query still stops here
// so that fully cached queries remain cancellable.
func (ec *ExecContext) cacheHit() error {
	if ec == nil {
		return nil
	}
	if err := ec.ctx.Err(); err != nil {
		return err
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if ec.err != nil {
		return ec.err
	}
	ec.stats.CacheHits++
	return nil
}
