package storage

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func newTestFile(t *testing.T) *PageFile {
	t.Helper()
	pf, err := CreatePageFile(filepath.Join(t.TempDir(), "test.pages"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func pageFilled(b byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestPageFileAppendReadWrite(t *testing.T) {
	pf := newTestFile(t)
	id0, err := pf.AppendPage(pageFilled(1))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := pf.AppendPage(pageFilled(2))
	if err != nil {
		t.Fatal(err)
	}
	if id0 != 0 || id1 != 1 || pf.NumPages() != 2 {
		t.Fatalf("ids %d %d, pages %d", id0, id1, pf.NumPages())
	}
	buf := make([]byte, PageSize)
	if err := pf.ReadPage(id1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pageFilled(2)) {
		t.Errorf("page 1 contents wrong")
	}
	if err := pf.WritePage(id0, pageFilled(9)); err != nil {
		t.Fatal(err)
	}
	if err := pf.ReadPage(id0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Errorf("overwrite not visible")
	}
	if pf.Size() != 2*PageSize {
		t.Errorf("Size = %d", pf.Size())
	}
}

func TestPageFileBoundsAndSizes(t *testing.T) {
	pf := newTestFile(t)
	if _, err := pf.AppendPage(make([]byte, 10)); err == nil {
		t.Errorf("short append should fail")
	}
	if err := pf.ReadPage(0, make([]byte, PageSize)); err == nil {
		t.Errorf("read beyond end should fail")
	}
	if err := pf.WritePage(5, pageFilled(0)); err == nil {
		t.Errorf("write beyond end should fail")
	}
	if _, err := pf.AppendPage(pageFilled(0)); err != nil {
		t.Fatal(err)
	}
	if err := pf.ReadPage(0, make([]byte, 16)); err == nil {
		t.Errorf("short read buffer should fail")
	}
}

func TestPageFileReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pages")
	pf, err := CreatePageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pf.AppendPage(pageFilled(7))
	pf.AppendPage(pageFilled(8))
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	re, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages() != 2 {
		t.Fatalf("reopened pages = %d", re.NumPages())
	}
	buf := make([]byte, PageSize)
	if err := re.ReadPage(1, buf); err != nil || buf[0] != 8 {
		t.Errorf("reopened read: %v, byte %d", err, buf[0])
	}
	if _, err := OpenPageFile(filepath.Join(dir, "missing")); err == nil {
		t.Errorf("open of missing file should fail")
	}
}

func TestStatsSeqRandClassification(t *testing.T) {
	pf := newTestFile(t)
	for i := 0; i < 5; i++ {
		pf.AppendPage(pageFilled(byte(i)))
	}
	pf.ResetStats()
	buf := make([]byte, PageSize)
	// 0,1,2 = first random then two sequential; 4 = random; 0 = random.
	for _, id := range []PageID{0, 1, 2, 4, 0} {
		if err := pf.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := pf.Stats()
	if s.Reads != 5 || s.SeqReads != 2 || s.RandReads != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStatsInterleavedStreamsAreSequential(t *testing.T) {
	// A k-way merge reads k regions in lockstep; per-stream readahead
	// tracking must classify all but the first touch of each region as
	// sequential (this is what keeps the DIL cost model honest).
	pf := newTestFile(t)
	for i := 0; i < 40; i++ {
		pf.AppendPage(pageFilled(byte(i)))
	}
	pf.ResetStats()
	buf := make([]byte, PageSize)
	for i := 0; i < 10; i++ {
		pf.ReadPage(PageID(i), buf)    // stream A: 0,1,2,...
		pf.ReadPage(PageID(20+i), buf) // stream B: 20,21,22,...
	}
	s := pf.Stats()
	if s.RandReads != 2 || s.SeqReads != 18 {
		t.Errorf("interleaved streams: %+v, want 2 random + 18 sequential", s)
	}
	// Re-reading the same page (a rescan of a pinned region) is also
	// sequential, not a seek.
	pf.ResetStats()
	pf.ReadPage(5, buf)
	pf.ReadPage(5, buf)
	if s := pf.Stats(); s.SeqReads != 1 || s.RandReads != 1 {
		t.Errorf("same-page re-read: %+v", s)
	}
}

func TestStatsStreamEviction(t *testing.T) {
	// More concurrent streams than the tracker holds: the oldest stream is
	// forgotten and its next read counts as random again.
	pf := newTestFile(t)
	for i := 0; i < 128; i++ {
		pf.AppendPage(pageFilled(byte(i)))
	}
	pf.ResetStats()
	buf := make([]byte, PageSize)
	// Open maxStreams+1 streams, then extend the first.
	for s := 0; s <= maxStreams; s++ {
		pf.ReadPage(PageID(s*10), buf)
	}
	pf.ReadPage(PageID(0*10+1), buf) // stream 0 was evicted
	st := pf.Stats()
	if st.SeqReads != 0 || st.RandReads != int64(maxStreams+2) {
		t.Errorf("eviction: %+v", st)
	}
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{Reads: 10, SeqReads: 4, RandReads: 6, Writes: 2, CacheHits: 1}
	b := Stats{Reads: 3, SeqReads: 1, RandReads: 2, Writes: 1}
	d := a.Sub(b)
	if d.Reads != 7 || d.SeqReads != 3 || d.RandReads != 4 || d.Writes != 1 || d.CacheHits != 1 {
		t.Errorf("Sub = %+v", d)
	}
	var acc Stats
	acc.Add(a)
	acc.Add(b)
	if acc.Reads != 13 {
		t.Errorf("Add = %+v", acc)
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{RandRead: 10 * time.Millisecond, SeqRead: time.Millisecond, CacheHit: 0}
	s := Stats{RandReads: 2, SeqReads: 5}
	if got := m.SimulatedTime(s); got != 25*time.Millisecond {
		t.Errorf("SimulatedTime = %v", got)
	}
	// A scan-heavy workload must be cheaper than an equally sized
	// probe-heavy one under the default model.
	def := DefaultCostModel()
	scan := Stats{SeqReads: 100, RandReads: 1}
	probe := Stats{RandReads: 101}
	if def.SimulatedTime(scan) >= def.SimulatedTime(probe) {
		t.Errorf("sequential scan should be cheaper than random probes")
	}
}

func TestBufferPoolHitAndEvict(t *testing.T) {
	pf := newTestFile(t)
	for i := 0; i < 10; i++ {
		pf.AppendPage(pageFilled(byte(i)))
	}
	pf.ResetStats()
	bp := NewBufferPool(pf, 2)

	f0, err := bp.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if f0.Data[0] != 0 {
		t.Errorf("frame data wrong")
	}
	f0.Release()
	// Second Get of page 0 must hit.
	f0b, _ := bp.Get(0)
	f0b.Release()
	if bp.Hits() != 1 {
		t.Errorf("hits = %d", bp.Hits())
	}
	if pf.Stats().Reads != 1 {
		t.Errorf("device reads = %d, want 1", pf.Stats().Reads)
	}
	// Fill beyond capacity; page 0 (LRU) must be evicted.
	g1, _ := bp.Get(1)
	g1.Release()
	g2, _ := bp.Get(2)
	g2.Release()
	f0c, _ := bp.Get(0)
	f0c.Release()
	if pf.Stats().Reads != 4 { // 0, 1, 2, 0-again
		t.Errorf("device reads = %d, want 4 (page 0 should have been evicted)", pf.Stats().Reads)
	}
	if pf.Stats().CacheHits != 1 {
		t.Errorf("cache hits on stats = %d", pf.Stats().CacheHits)
	}
}

func TestBufferPoolPinPreventsEviction(t *testing.T) {
	pf := newTestFile(t)
	for i := 0; i < 4; i++ {
		pf.AppendPage(pageFilled(byte(i)))
	}
	bp := NewBufferPool(pf, 2)
	a, _ := bp.Get(0) // pinned
	b, _ := bp.Get(1) // pinned
	if _, err := bp.Get(2); err == nil {
		t.Errorf("Get with all frames pinned should fail")
	}
	b.Release()
	c, err := bp.Get(2) // evicts 1, keeps pinned 0
	if err != nil {
		t.Fatal(err)
	}
	if a.Data[0] != 0 || c.Data[0] != 2 {
		t.Errorf("pinned frame corrupted")
	}
	a.Release()
	c.Release()
}

func TestBufferPoolReset(t *testing.T) {
	pf := newTestFile(t)
	pf.AppendPage(pageFilled(1))
	bp := NewBufferPool(pf, 4)
	fr, _ := bp.Get(0)
	if err := bp.Reset(); err == nil {
		t.Errorf("Reset with pinned page should fail")
	}
	fr.Release()
	if err := bp.Reset(); err != nil {
		t.Fatal(err)
	}
	pf.ResetStats()
	fr2, _ := bp.Get(0)
	fr2.Release()
	if pf.Stats().Reads != 1 {
		t.Errorf("after Reset, Get should reach the device")
	}
}

func TestBufferPoolDoubleReleasePanics(t *testing.T) {
	pf := newTestFile(t)
	pf.AppendPage(pageFilled(1))
	bp := NewBufferPool(pf, 2)
	fr, _ := bp.Get(0)
	fr.Release()
	defer func() {
		if recover() == nil {
			t.Errorf("double release should panic")
		}
	}()
	fr.Release()
}

func TestBufferPoolConcurrentAccess(t *testing.T) {
	pf := newTestFile(t)
	for i := 0; i < 32; i++ {
		pf.AppendPage(pageFilled(byte(i)))
	}
	bp := NewBufferPool(pf, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := PageID((i*7 + w) % 32)
				fr, err := bp.Get(id)
				if err != nil {
					t.Errorf("Get(%d): %v", id, err)
					return
				}
				if fr.Data[0] != byte(id) {
					t.Errorf("page %d data corrupted: %d", id, fr.Data[0])
				}
				fr.Release()
			}
		}(w)
	}
	wg.Wait()
}

func TestExecContextAttribution(t *testing.T) {
	pf := newTestFile(t)
	for i := 0; i < 8; i++ {
		if _, err := pf.AppendPage(pageFilled(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(pf, 4)

	ecA := NewExecContext(context.Background())
	ecB := NewExecContext(context.Background())
	// A reads pages 0-3 sequentially (cold), B re-reads 0-1 (hits) and
	// 4-5 (cold). Each context must see only its own traffic.
	for i := 0; i < 4; i++ {
		fr, err := bp.GetExec(ecA, PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		fr.Release()
	}
	for _, id := range []PageID{0, 1, 4, 5} {
		fr, err := bp.GetExec(ecB, id)
		if err != nil {
			t.Fatal(err)
		}
		fr.Release()
	}
	a, b := ecA.Stats(), ecB.Stats()
	if a.Reads != 4 || a.CacheHits != 0 {
		t.Errorf("ecA stats = %+v, want 4 reads, 0 hits", a)
	}
	if a.SeqReads+a.RandReads != a.Reads {
		t.Errorf("ecA seq+rand = %d+%d != reads %d", a.SeqReads, a.RandReads, a.Reads)
	}
	if a.SeqReads < 3 {
		t.Errorf("ecA sequential scan classified as %d seq / %d rand", a.SeqReads, a.RandReads)
	}
	if b.Reads != 2 || b.CacheHits != 2 {
		t.Errorf("ecB stats = %+v, want 2 reads, 2 hits", b)
	}
	// The global file counters aggregate both queries.
	g := pf.Stats()
	if g.Reads != a.Reads+b.Reads || g.CacheHits != a.CacheHits+b.CacheHits {
		t.Errorf("global %+v != sum of per-query %+v + %+v", g, a, b)
	}
	// A nil ExecContext stays inert.
	var nilEC *ExecContext
	if err := nilEC.Err(); err != nil {
		t.Errorf("nil ExecContext.Err() = %v", err)
	}
	if s := nilEC.Stats(); s.Reads != 0 {
		t.Errorf("nil ExecContext.Stats() = %+v", s)
	}
	fr, err := bp.GetExec(nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	fr.Release()
}

func TestExecContextBudget(t *testing.T) {
	pf := newTestFile(t)
	for i := 0; i < 6; i++ {
		if _, err := pf.AppendPage(pageFilled(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(pf, 8)
	ec := NewExecContext(context.Background())
	ec.SetBudget(2)
	for i := 0; i < 2; i++ {
		fr, err := bp.GetExec(ec, PageID(i))
		if err != nil {
			t.Fatalf("read %d within budget: %v", i, err)
		}
		fr.Release()
	}
	// Third device read exceeds the budget.
	if _, err := bp.GetExec(ec, 2); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget read err = %v, want ErrBudgetExceeded", err)
	}
	// The error is sticky: even a would-be cache hit fails now.
	if _, err := bp.GetExec(ec, 0); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("post-budget cache hit err = %v, want ErrBudgetExceeded", err)
	}
	if err := ec.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("Err() = %v, want ErrBudgetExceeded", err)
	}
	if s := ec.Stats(); s.Reads != 2 {
		t.Errorf("budgeted context recorded %d reads, want 2", s.Reads)
	}
	// Other contexts on the same pool are unaffected.
	fr, err := bp.GetExec(NewExecContext(context.Background()), 2)
	if err != nil {
		t.Fatal(err)
	}
	fr.Release()
}

func TestExecContextCancellation(t *testing.T) {
	pf := newTestFile(t)
	if _, err := pf.AppendPage(pageFilled(1)); err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(pf, 2)
	// Warm the pool so the cancelled access would be a pure cache hit.
	fr, err := bp.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	fr.Release()

	ctx, cancel := context.WithCancel(context.Background())
	ec := NewExecContext(ctx)
	cancel()
	if _, err := bp.GetExec(ec, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("cached read after cancel err = %v, want context.Canceled", err)
	}
	if err := ec.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	ec2 := NewExecContext(expired)
	if err := pf.ReadPageExec(ec2, 0, make([]byte, PageSize)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("device read past deadline err = %v, want context.DeadlineExceeded", err)
	}
	if s := ec2.Stats(); s.Reads != 0 {
		t.Errorf("refused read still recorded: %+v", s)
	}
}

// spanSink is a minimal SpanRecorder for tests.
type spanSink struct {
	mu    sync.Mutex
	spans []string
	durs  []time.Duration
}

func (s *spanSink) RecordSpan(name string, _ time.Time, d time.Duration) {
	s.mu.Lock()
	s.spans = append(s.spans, name)
	s.durs = append(s.durs, d)
	s.mu.Unlock()
}

func TestExecContextSpans(t *testing.T) {
	// Without a recorder (or with a nil receiver) StartSpan is a no-op.
	var nilEC *ExecContext
	nilEC.StartSpan("x")()
	ec := NewExecContext(context.Background())
	ec.StartSpan("unrecorded")()

	sink := &spanSink{}
	ec.SetSpanRecorder(sink)
	end := ec.StartSpan("stage")
	time.Sleep(time.Millisecond)
	end()
	// Children share the family's recorder, including ones created
	// before the span starts and ones recording concurrently.
	child := ec.Child()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			child.StartSpan("branch")()
		}()
	}
	wg.Wait()

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.spans) != 5 || sink.spans[0] != "stage" {
		t.Fatalf("spans = %v", sink.spans)
	}
	if sink.durs[0] < time.Millisecond {
		t.Errorf("stage duration = %v, want >= 1ms", sink.durs[0])
	}
}
