package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
)

// Crash-safe persistence primitives. Every manifest and blob the engine
// writes goes through the same protocol:
//
//	write to a deterministic temp file → fsync the file → atomic rename
//	over the destination → fsync the parent directory
//
// so a crash at any boundary leaves either the old file or the new file,
// never a torn mixture. On top of that, every artifact carries a format
// version and a CRC-32C checksum, and every open verifies them, so a torn
// or bit-rotted file is reported as a precise "corrupt <file>" error
// instead of being parsed into garbage.

// ErrCorrupt is wrapped by every checksum, size or format-version
// mismatch detected while opening persisted state.
var ErrCorrupt = errors.New("corrupt")

// castagnoli is the CRC-32C polynomial table used by every checksum in
// the store (hardware-accelerated on modern CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of data.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// FileSum records a file's expected size and checksum inside a manifest
// (the sidecar verification data for page files and lexicons, whose
// formats predate checksums).
type FileSum struct {
	Size  int64  `json:"size"`
	CRC32 uint32 `json:"crc32"`
}

// WriteFileAtomic writes data to path via the temp+fsync+rename+dir-fsync
// protocol. After it returns nil the new content is durable; after an
// error the previous content of path (or its absence) is intact.
func WriteFileAtomic(fs FS, path string, data []byte) error {
	fs = DefaultFS(fs)
	tmp := TempPath(path)
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		fs.Remove(tmp) // best effort; a leftover temp file is inert
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// ManifestFormat is the envelope format version every JSON manifest
// carries. Opens reject newer formats with a clear error instead of
// misreading them.
const ManifestFormat = 1

// manifestEnvelope wraps a JSON manifest payload with its format version
// and checksum. The CRC covers the exact payload bytes as written, so any
// single-bit flip — in the payload or in the envelope fields — fails
// verification.
type manifestEnvelope struct {
	Format  int             `json:"format"`
	CRC32   uint32          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// WriteManifestAtomic marshals payload, wraps it in a checksummed
// envelope and writes it to path with the atomic-write protocol.
func WriteManifestAtomic(fs FS, path string, payload interface{}) error {
	pb, err := json.MarshalIndent(payload, "  ", "  ")
	if err != nil {
		return err
	}
	env, err := json.MarshalIndent(manifestEnvelope{
		Format:  ManifestFormat,
		CRC32:   Checksum(pb),
		Payload: pb,
	}, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(fs, path, append(env, '\n'))
}

// ReadManifest reads a checksummed manifest written by
// WriteManifestAtomic, verifying format and CRC before unmarshaling the
// payload into v. Verification failures wrap ErrCorrupt and name the
// file.
func ReadManifest(fs FS, path string, v interface{}) error {
	b, err := DefaultFS(fs).ReadFile(path)
	if err != nil {
		return err
	}
	name := filepath.Base(path)
	var env manifestEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return fmt.Errorf("%w %s: not a manifest envelope: %v", ErrCorrupt, name, err)
	}
	if env.Format <= 0 || env.Format > ManifestFormat {
		return fmt.Errorf("%w %s: manifest format %d, this build understands <= %d",
			ErrCorrupt, name, env.Format, ManifestFormat)
	}
	if got := Checksum(env.Payload); got != env.CRC32 {
		return fmt.Errorf("%w %s: checksum mismatch (manifest %08x, computed %08x)",
			ErrCorrupt, name, env.CRC32, got)
	}
	if err := json.Unmarshal(env.Payload, v); err != nil {
		return fmt.Errorf("%w %s: bad payload: %v", ErrCorrupt, name, err)
	}
	return nil
}

// Blob header layout: magic (4) | version (4) | payload length (8) |
// payload CRC-32C (4), followed by the payload bytes.
const blobHeaderSize = 20

// blobVersion is the current blob format version.
const blobVersion = 1

// WriteBlobAtomic writes a checksummed binary blob (header + payload) to
// path with the atomic-write protocol. magic identifies the blob type so
// a misplaced file is rejected on read.
func WriteBlobAtomic(fs FS, path string, magic uint32, payload []byte) error {
	buf := make([]byte, blobHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], blobVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[16:], Checksum(payload))
	copy(buf[blobHeaderSize:], payload)
	return WriteFileAtomic(fs, path, buf)
}

// ReadBlob reads a blob written by WriteBlobAtomic, verifying magic,
// version, length and checksum; failures wrap ErrCorrupt and name the
// file.
func ReadBlob(fs FS, path string, magic uint32) ([]byte, error) {
	b, err := DefaultFS(fs).ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := filepath.Base(path)
	if len(b) < blobHeaderSize {
		return nil, fmt.Errorf("%w %s: %d bytes is shorter than the blob header", ErrCorrupt, name, len(b))
	}
	if got := binary.LittleEndian.Uint32(b[0:]); got != magic {
		return nil, fmt.Errorf("%w %s: magic %08x, want %08x", ErrCorrupt, name, got, magic)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != blobVersion {
		return nil, fmt.Errorf("%w %s: blob version %d, this build understands %d", ErrCorrupt, name, v, blobVersion)
	}
	n := binary.LittleEndian.Uint64(b[8:])
	if n != uint64(len(b)-blobHeaderSize) {
		return nil, fmt.Errorf("%w %s: header declares %d payload bytes, file holds %d",
			ErrCorrupt, name, n, len(b)-blobHeaderSize)
	}
	payload := b[blobHeaderSize:]
	want := binary.LittleEndian.Uint32(b[16:])
	if got := Checksum(payload); got != want {
		return nil, fmt.Errorf("%w %s: checksum mismatch (header %08x, computed %08x)", ErrCorrupt, name, want, got)
	}
	return payload, nil
}

// ChecksumFile streams path and returns its size and CRC-32C — the
// verification pass opens run over page files and lexicons before
// trusting them.
func ChecksumFile(fs FS, path string) (FileSum, error) {
	fs = DefaultFS(fs)
	st, err := fs.Stat(path)
	if err != nil {
		return FileSum{}, err
	}
	f, err := fs.Open(path)
	if err != nil {
		return FileSum{}, err
	}
	defer f.Close()
	var (
		crc uint32
		buf = make([]byte, 256*1024)
		off int64
	)
	size := st.Size()
	for off < size {
		n := int64(len(buf))
		if size-off < n {
			n = size - off
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return FileSum{}, err
		}
		crc = crc32.Update(crc, castagnoli, buf[:n])
		off += n
	}
	return FileSum{Size: size, CRC32: crc}, nil
}

// VerifyFile checks path against its recorded size and checksum,
// returning a precise ErrCorrupt-wrapping error on mismatch.
func VerifyFile(fs FS, path string, want FileSum) error {
	got, err := ChecksumFile(fs, path)
	if err != nil {
		return fmt.Errorf("%w %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	if got.Size != want.Size {
		return fmt.Errorf("%w %s: size %d, manifest says %d", ErrCorrupt, filepath.Base(path), got.Size, want.Size)
	}
	if got.CRC32 != want.CRC32 {
		return fmt.Errorf("%w %s: checksum mismatch (manifest %08x, computed %08x)",
			ErrCorrupt, filepath.Base(path), want.CRC32, got.CRC32)
	}
	return nil
}
