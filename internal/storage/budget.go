package storage

import "os"

// BudgetFS wraps an FS so every write is charged against an
// ExecContext's page budget: WriteAt debits ⌈len/PageSize⌉ pages before
// reaching the underlying file. The compactor builds merged segments
// through it, bounding how much I/O one compaction may issue with the
// same accounting queries use for reads — once the budget is exhausted
// the in-flight build fails with ErrBudgetExceeded and the half-written
// segment is an inert orphan (nothing references it until the manifest
// swap). Reads, syncs and metadata operations are not charged.
type BudgetFS struct {
	Base FS
	Exec *ExecContext
}

// NewBudgetFS wraps base (nil means the real file system) so writes
// draw from ec's budget.
func NewBudgetFS(base FS, ec *ExecContext) *BudgetFS {
	return &BudgetFS{Base: DefaultFS(base), Exec: ec}
}

func (b *BudgetFS) Create(path string) (File, error) {
	f, err := b.Base.Create(path)
	if err != nil {
		return nil, err
	}
	return &budgetFile{File: f, exec: b.Exec}, nil
}

func (b *BudgetFS) Open(path string) (File, error) {
	f, err := b.Base.Open(path)
	if err != nil {
		return nil, err
	}
	return &budgetFile{File: f, exec: b.Exec}, nil
}

func (b *BudgetFS) ReadFile(path string) ([]byte, error) { return b.Base.ReadFile(path) }
func (b *BudgetFS) Rename(oldpath, newpath string) error { return b.Base.Rename(oldpath, newpath) }
func (b *BudgetFS) Remove(path string) error             { return b.Base.Remove(path) }
func (b *BudgetFS) MkdirAll(path string) error           { return b.Base.MkdirAll(path) }
func (b *BudgetFS) Stat(path string) (os.FileInfo, error) { return b.Base.Stat(path) }
func (b *BudgetFS) SyncDir(path string) error            { return b.Base.SyncDir(path) }

type budgetFile struct {
	File
	exec *ExecContext
}

func (f *budgetFile) WriteAt(p []byte, off int64) (int, error) {
	pages := int64(len(p)+PageSize-1) / PageSize
	if pages == 0 {
		pages = 1
	}
	if err := f.exec.Charge(pages); err != nil {
		return 0, err
	}
	return f.File.WriteAt(p, off)
}
