package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// Frame is a pinned page in the buffer pool. The Data slice is valid until
// Release is called; callers must not retain it afterwards and must not
// mutate it unless they own the page.
type Frame struct {
	ID   PageID
	Data []byte

	pool *BufferPool
	pins int
	elem *list.Element // position in the LRU list when unpinned
}

// Release unpins the frame, making it eligible for eviction once no other
// pins remain. Release is idempotent per pin: call it exactly once per Get.
func (fr *Frame) Release() {
	fr.pool.release(fr)
}

// BufferPool caches pages of a PageFile with LRU replacement and pin
// counting. A pinned page is never evicted; queries pin the pages they are
// actively merging (a DIL scan page, the B+-tree path of an RDIL probe)
// and release them as the cursor moves on.
type BufferPool struct {
	mu       sync.Mutex
	pf       *PageFile
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // of *Frame; front = most recently used
	hits     int64
}

// NewBufferPool wraps pf with a pool of the given page capacity
// (minimum 1).
func NewBufferPool(pf *PageFile, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		pf:       pf,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
	}
}

// Get returns a pinned frame for page id, reading it from the file on a
// miss. The caller must Release the frame.
func (bp *BufferPool) Get(id PageID) (*Frame, error) {
	return bp.GetExec(nil, id)
}

// GetExec is Get under a per-query execution context: both hits and
// misses are attributed to ec's private stats, and any page access fails
// once ec is cancelled, past its deadline, or over its read budget.
// Because every page a query touches flows through here, this is the
// uniform cancellation checkpoint for disk-backed cursors, B+-tree probes
// and hash lookups alike. A nil ec behaves exactly like Get.
func (bp *BufferPool) GetExec(ec *ExecContext, id PageID) (*Frame, error) {
	bp.mu.Lock()
	if fr, ok := bp.frames[id]; ok {
		if err := ec.cacheHit(); err != nil {
			bp.mu.Unlock()
			return nil, err
		}
		bp.hits++
		bp.pf.mu.Lock()
		bp.pf.stats.CacheHits++
		bp.pf.mu.Unlock()
		fr.pins++
		if fr.elem != nil {
			bp.lru.Remove(fr.elem)
			fr.elem = nil
		}
		bp.mu.Unlock()
		return fr, nil
	}
	// Miss: evict if full, then read outside the lock would race on the
	// frame map; the pool is not performance-critical enough in this
	// system to justify a lock-free design, so read under the lock.
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			bp.mu.Unlock()
			return nil, err
		}
	}
	fr := &Frame{ID: id, Data: make([]byte, PageSize), pool: bp, pins: 1}
	if err := bp.pf.ReadPageExec(ec, id, fr.Data); err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	bp.frames[id] = fr
	bp.mu.Unlock()
	return fr, nil
}

func (bp *BufferPool) evictLocked() error {
	back := bp.lru.Back()
	if back == nil {
		return fmt.Errorf("storage: buffer pool of %d pages exhausted (all pinned)", bp.capacity)
	}
	fr := back.Value.(*Frame)
	bp.lru.Remove(back)
	delete(bp.frames, fr.ID)
	return nil
}

func (bp *BufferPool) release(fr *Frame) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr.pins <= 0 {
		panic("storage: Release of unpinned frame")
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = bp.lru.PushFront(fr)
	}
}

// Hits returns the number of pool hits since creation or the last Reset.
func (bp *BufferPool) Hits() int64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits
}

// Reset empties the pool, simulating a cold cache (Section 5.1: "results
// were obtained using a cold operating system cache"). It fails if any
// page is still pinned.
func (bp *BufferPool) Reset() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, fr := range bp.frames {
		if fr.pins > 0 {
			return fmt.Errorf("storage: Reset with page %d still pinned", id)
		}
	}
	bp.frames = make(map[PageID]*Frame, bp.capacity)
	bp.lru.Init()
	bp.hits = 0
	return nil
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }
