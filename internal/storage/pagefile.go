// Package storage provides the disk substrate for XRANK's index
// structures: a page-based file manager, a pinning LRU buffer pool, and
// I/O accounting with a calibrated cost model.
//
// The paper's experiments (Section 5.1) run with a cold operating-system
// cache on a 2003-era disk, so relative query costs are dominated by how
// many pages are touched and whether access is sequential (inverted-list
// scans in DIL) or random (B+-tree probes in RDIL). The Stats/CostModel
// pair reproduces exactly that distinction: every page read is classified
// as sequential or random, and SimulatedTime converts counts into a
// device-independent time estimate so the experiment *shapes* (who wins,
// where the crossovers are) match the paper's even though the absolute
// hardware differs.
package storage

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the fixed size of every page in a PageFile.
const PageSize = 8192

// PageID identifies a page within a PageFile.
type PageID uint32

// InvalidPage is a sentinel PageID that never refers to a real page.
const InvalidPage = PageID(^uint32(0))

// ErrIO marks device-level I/O failures (as opposed to cancellation,
// budget exhaustion, or semantic errors). The query layer treats a shard
// failure as retryable — and a shard as degradable — only when its error
// wraps ErrIO: a device can recover or be routed around, a semantic
// error would just recur on every shard.
var ErrIO = errors.New("I/O error")

// PageFile is a file organized as an array of fixed-size pages. It is safe
// for concurrent use.
type PageFile struct {
	mu       sync.Mutex
	fs       FS
	f        File
	path     string
	numPages uint32
	stats    Stats
}

// CreatePageFile creates (truncating) a page file at path on the real
// file system.
func CreatePageFile(path string) (*PageFile, error) {
	return CreatePageFileFS(nil, path)
}

// CreatePageFileFS creates (truncating) a page file at path on fs
// (nil = the real file system).
func CreatePageFileFS(fs FS, path string) (*PageFile, error) {
	fs = DefaultFS(fs)
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", path, err)
	}
	return &PageFile{fs: fs, f: f, path: path}, nil
}

// OpenPageFile opens an existing page file read-write on the real file
// system.
func OpenPageFile(path string) (*PageFile, error) {
	return OpenPageFileFS(nil, path)
}

// OpenPageFileFS opens an existing page file read-write on fs (nil = the
// real file system).
func OpenPageFileFS(fs FS, path string) (*PageFile, error) {
	fs = DefaultFS(fs)
	st, err := fs.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of the page size", path, st.Size())
	}
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &PageFile{fs: fs, f: f, path: path, numPages: uint32(st.Size() / PageSize)}, nil
}

// Path returns the file path.
func (pf *PageFile) Path() string { return pf.path }

// NumPages returns the current number of pages.
func (pf *PageFile) NumPages() uint32 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.numPages
}

// ReadPage reads page id into buf, which must be at least PageSize long.
// The read is recorded in the file's stats as sequential if id immediately
// follows the previously read page, random otherwise.
func (pf *PageFile) ReadPage(id PageID, buf []byte) error {
	return pf.ReadPageExec(nil, id, buf)
}

// ReadPageExec is ReadPage under a per-query execution context: the read
// is additionally attributed to ec's private stats, and is refused —
// before touching the device — when ec is cancelled, past its deadline,
// or over its page-read budget. A nil ec behaves exactly like ReadPage.
func (pf *PageFile) ReadPageExec(ec *ExecContext, id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("storage: read buffer too small (%d)", len(buf))
	}
	if err := ec.pageRead(id); err != nil {
		return err
	}
	pf.mu.Lock()
	if uint32(id) >= pf.numPages {
		pf.mu.Unlock()
		return fmt.Errorf("storage: read of page %d beyond end (%d pages)", id, pf.numPages)
	}
	pf.stats.recordRead(id)
	pf.mu.Unlock()
	_, err := pf.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err != nil {
		return fmt.Errorf("storage: read page %d of %s: %w: %w", id, pf.path, ErrIO, err)
	}
	return nil
}

// WritePage writes buf (at least PageSize bytes) to page id, which must
// already exist. Stats count the write only if it succeeds.
func (pf *PageFile) WritePage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("storage: write buffer too small (%d)", len(buf))
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if uint32(id) >= pf.numPages {
		return fmt.Errorf("storage: write of page %d beyond end (%d pages)", id, pf.numPages)
	}
	if _, err := pf.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d of %s: %w: %w", id, pf.path, ErrIO, err)
	}
	pf.stats.Writes++
	return nil
}

// AppendPage appends buf as a new page and returns its ID. The page count
// (and write stats) advance only after the write succeeds, so a failed
// append leaves no phantom page behind — the file size stays a multiple
// of PageSize and a reopen sees exactly the pages that were written.
func (pf *PageFile) AppendPage(buf []byte) (PageID, error) {
	if len(buf) < PageSize {
		return 0, fmt.Errorf("storage: append buffer too small (%d)", len(buf))
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	id := PageID(pf.numPages)
	if _, err := pf.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: append page to %s: %w: %w", pf.path, ErrIO, err)
	}
	pf.numPages++
	pf.stats.Writes++
	return id, nil
}

// Stats returns a snapshot of the file's I/O statistics.
func (pf *PageFile) Stats() Stats {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.stats
}

// ResetStats zeroes the I/O statistics (the sequential-read tracker too).
func (pf *PageFile) ResetStats() {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	pf.stats = Stats{}
}

// Size returns the file size in bytes.
func (pf *PageFile) Size() int64 { return int64(pf.NumPages()) * PageSize }

// Checksum streams the file and returns its size and CRC-32C, for
// recording in a manifest at build time. Call after Sync, before any
// further writes.
func (pf *PageFile) Checksum() (FileSum, error) {
	return ChecksumFile(pf.fs, pf.path)
}

// Sync flushes the file to stable storage.
func (pf *PageFile) Sync() error { return pf.f.Sync() }

// Close closes the underlying file.
func (pf *PageFile) Close() error { return pf.f.Close() }
