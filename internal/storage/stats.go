package storage

import "time"

// Stats counts page-level I/O, classifying reads as sequential or random.
// The distinction drives the cost model: DIL scans inverted lists
// sequentially while RDIL performs random B+-tree probes, and that
// difference — not CPU time — is what separates them on the paper's
// cold-cache hardware.
//
// Sequentiality is detected per stream, the way operating-system
// readahead does: the tracker remembers the heads of the most recent
// maxStreams access streams, and a read that extends any of them counts
// as sequential. A k-keyword DIL merge interleaves k scans of different
// file regions; each scan is still sequential on disk.
type Stats struct {
	Reads     int64 // total page reads reaching the device
	SeqReads  int64 // reads extending one of the recent access streams
	RandReads int64 // all other reads
	Writes    int64 // page writes
	CacheHits int64 // reads absorbed by a buffer pool (no device access)

	// Posting-block accounting (format v2, see internal/index).
	BlocksDecoded int64 // posting blocks materialized by a cursor
	BlocksSkipped int64 // posting blocks pruned without decoding

	heads   [maxStreams]PageID
	headAge [maxStreams]int64
	nHeads  int
	clock   int64
}

// maxStreams is how many concurrent sequential streams the classifier
// tracks (Linux readahead handles dozens; queries here need one per
// keyword list).
const maxStreams = 8

func (s *Stats) recordRead(id PageID) {
	s.Reads++
	s.clock++
	for i := 0; i < s.nHeads; i++ {
		if id == s.heads[i]+1 || id == s.heads[i] {
			s.SeqReads++
			s.heads[i] = id
			s.headAge[i] = s.clock
			return
		}
	}
	s.RandReads++
	// Start a new stream, evicting the least recently extended head.
	slot := s.nHeads
	if s.nHeads < maxStreams {
		s.nHeads++
	} else {
		slot = 0
		for i := 1; i < maxStreams; i++ {
			if s.headAge[i] < s.headAge[slot] {
				slot = i
			}
		}
	}
	s.heads[slot] = id
	s.headAge[slot] = s.clock
}

// Add accumulates other into s (cache-position tracking is not merged).
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.SeqReads += other.SeqReads
	s.RandReads += other.RandReads
	s.Writes += other.Writes
	s.CacheHits += other.CacheHits
	s.BlocksDecoded += other.BlocksDecoded
	s.BlocksSkipped += other.BlocksSkipped
}

// Sub returns s minus other, for measuring an interval between snapshots.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Reads:         s.Reads - other.Reads,
		SeqReads:      s.SeqReads - other.SeqReads,
		RandReads:     s.RandReads - other.RandReads,
		Writes:        s.Writes - other.Writes,
		CacheHits:     s.CacheHits - other.CacheHits,
		BlocksDecoded: s.BlocksDecoded - other.BlocksDecoded,
		BlocksSkipped: s.BlocksSkipped - other.BlocksSkipped,
	}
}

// CostModel converts I/O counts into simulated elapsed time on a reference
// disk. The defaults approximate the paper's 2003-era hardware: an 8ms
// average positioning time for a random page and ~50MB/s sequential
// transfer (≈0.16ms per 8KB page).
type CostModel struct {
	RandRead time.Duration // cost of one random page read
	SeqRead  time.Duration // cost of one sequential page read
	CacheHit time.Duration // cost of a buffer-pool hit (CPU only)
}

// DefaultCostModel returns the reference-disk model described above.
func DefaultCostModel() CostModel {
	return CostModel{
		RandRead: 8 * time.Millisecond,
		SeqRead:  160 * time.Microsecond,
		CacheHit: 2 * time.Microsecond,
	}
}

// SimulatedTime converts the stats into simulated elapsed time under m.
func (m CostModel) SimulatedTime(s Stats) time.Duration {
	return time.Duration(s.RandReads)*m.RandRead +
		time.Duration(s.SeqReads)*m.SeqRead +
		time.Duration(s.CacheHits)*m.CacheHit
}
