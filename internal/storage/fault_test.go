package storage

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteFileAtomicCrashMatrix replays an atomic overwrite once per
// write boundary with a crash armed there: after every crash the file
// must hold exactly the old or the new content, never a mixture.
func TestWriteFileAtomicCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	oldData := []byte("the old contents of the file")
	newData := []byte("the replacement, rather longer than what was there before")
	if err := WriteFileAtomic(nil, path, oldData); err != nil {
		t.Fatal(err)
	}

	// Size the matrix with a clean faulted run.
	clean := NewFaultFS(nil, 1)
	if err := WriteFileAtomic(clean, path, newData); err != nil {
		t.Fatal(err)
	}
	n := clean.WriteOps()
	if n < 4 { // create, write, sync, rename (+ dir sync)
		t.Fatalf("clean run counted %d write boundaries, expected at least 4", n)
	}

	for k := int64(1); k <= n; k++ {
		if err := WriteFileAtomic(nil, path, oldData); err != nil {
			t.Fatal(err)
		}
		ffs := NewFaultFS(nil, k) // different seed per point: vary torn prefixes
		ffs.CrashAtWriteOp(k)
		err := WriteFileAtomic(ffs, path, newData)
		if err == nil {
			t.Fatalf("crash at op %d: write reported success", k)
		}
		if !ffs.Crashed() {
			t.Fatalf("crash at op %d never fired (run has %d ops)", k, n)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("crash at op %d: destination unreadable: %v", k, rerr)
		}
		if string(got) != string(oldData) && string(got) != string(newData) {
			t.Fatalf("crash at op %d: destination holds a third state: %q", k, got)
		}
	}
}

// TestWriteFileAtomicShortWrite checks that an injected short write
// fails the atomic protocol and leaves the old content intact.
func TestWriteFileAtomicShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFileAtomic(nil, path, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(nil, 7)
	ffs.ShortWriteAtOp(2) // boundary 1 is Create; 2 is the WriteAt
	if err := WriteFileAtomic(ffs, path, []byte("this write is cut short")); err == nil {
		t.Fatal("short write went unreported")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "intact" {
		t.Fatalf("after short write: %q, %v", got, err)
	}
}

// TestFaultFSInjectedWriteErrors checks the EIO/ENOSPC model: matching
// write boundaries fail with the injected error, bounded by n.
func TestFaultFSInjectedWriteErrors(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, 3)
	isBin := func(path string) bool { return filepath.Ext(path) == ".bin" }
	ffs.FailWrites(isBin, ErrInjected, 1)

	if _, err := ffs.Create(filepath.Join(dir, "a.bin")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first matching create: %v, want ErrInjected", err)
	}
	f, err := ffs.Create(filepath.Join(dir, "b.bin"))
	if err != nil {
		t.Fatalf("budget exhausted but create still failed: %v", err)
	}
	f.Close()
	if _, err := ffs.Create(filepath.Join(dir, "c.txt")); err != nil {
		t.Fatalf("non-matching path: %v", err)
	}
}

// TestFaultFSTransientReads checks bounded read faults: the first n
// matching reads fail, later ones succeed — the shape retry loops lean on.
func TestFaultFSTransientReads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.txt")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(nil, 5)
	ffs.FailReads(nil, ErrInjected, 2)
	for i := 0; i < 2; i++ {
		if _, err := ffs.ReadFile(path); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: %v, want ErrInjected", i, err)
		}
	}
	if b, err := ffs.ReadFile(path); err != nil || string(b) != "payload" {
		t.Fatalf("after fault budget: %q, %v", b, err)
	}
}

// TestManifestCorruptionDetection round-trips a manifest and then
// verifies that bit flips, truncation and format skew all surface as
// ErrCorrupt — never as silently wrong data.
func TestManifestCorruptionDetection(t *testing.T) {
	type payload struct {
		Name  string `json:"name"`
		Count int    `json:"count"`
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := WriteManifestAtomic(nil, path, payload{Name: "x", Count: 42}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := ReadManifest(nil, path, &got); err != nil || got != (payload{"x", 42}) {
		t.Fatalf("roundtrip: %+v, %v", got, err)
	}

	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the payload: the CRC must catch it.
	for i, b := range pristine {
		if b == '4' { // the 42
			mut := append([]byte{}, pristine...)
			mut[i] ^= 0x01
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if err := ReadManifest(nil, path, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: %v, want ErrCorrupt", err)
	}
	// Truncation makes it unparsable: still a corrupt report, not a panic.
	if err := os.WriteFile(path, pristine[:len(pristine)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadManifest(nil, path, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: %v, want ErrCorrupt", err)
	}
	// A future format version is rejected, not misread.
	var env manifestEnvelope
	if err := json.Unmarshal(pristine, &env); err != nil {
		t.Fatal(err)
	}
	env.Format = ManifestFormat + 1
	future, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, future, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadManifest(nil, path, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future format: %v, want ErrCorrupt", err)
	}
}

// TestBlobCorruptionDetection exercises ReadBlob's four checks: magic,
// version, declared length and checksum.
func TestBlobCorruptionDetection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.bin")
	const magic = 0x0b10b0b1
	body := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := WriteBlobAtomic(nil, path, magic, body); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadBlob(nil, path, magic); err != nil || len(got) != len(body) {
		t.Fatalf("roundtrip: %v, %v", got, err)
	}
	if _, err := ReadBlob(nil, path, magic+1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong magic: %v", err)
	}
	pristine, _ := os.ReadFile(path)
	mut := append([]byte{}, pristine...)
	mut[len(mut)-1] ^= 0x80 // flip a payload bit
	os.WriteFile(path, mut, 0o644)
	if _, err := ReadBlob(nil, path, magic); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload flip: %v", err)
	}
	os.WriteFile(path, pristine[:len(pristine)-3], 0o644) // truncate
	if _, err := ReadBlob(nil, path, magic); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: %v", err)
	}
	os.WriteFile(path, pristine[:blobHeaderSize-1], 0o644) // shorter than header
	if _, err := ReadBlob(nil, path, magic); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sub-header: %v", err)
	}
}

// TestVerifyFile checks the sidecar size+CRC verification used for page
// files and lexicons.
func TestVerifyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.dat")
	data := make([]byte, 300*1024) // spans multiple ChecksumFile chunks
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := ChecksumFile(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Size != int64(len(data)) || sum.CRC32 != Checksum(data) {
		t.Fatalf("ChecksumFile = %+v", sum)
	}
	if err := VerifyFile(nil, path, sum); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(nil, path, FileSum{Size: sum.Size + 1, CRC32: sum.CRC32}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("size skew: %v", err)
	}
	if err := VerifyFile(nil, path, FileSum{Size: sum.Size, CRC32: sum.CRC32 ^ 1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("crc skew: %v", err)
	}
}

// TestAppendPageFailureKeepsCounters pins the fix for the append
// accounting bug: a failed AppendPage must not advance NumPages or the
// write counter, and the next successful append reuses the same page ID.
func TestAppendPageFailureKeepsCounters(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, 11)
	pf, err := CreatePageFileFS(ffs, filepath.Join(dir, "p.pf"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	buf := make([]byte, PageSize)
	id0, err := pf.AppendPage(buf)
	if err != nil || id0 != 0 {
		t.Fatalf("first append: %v, %v", id0, err)
	}
	ffs.FailWrites(nil, ErrInjected, 1)
	if _, err := pf.AppendPage(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted append: %v", err)
	}
	if pf.NumPages() != 1 || pf.Stats().Writes != 1 {
		t.Fatalf("failed append advanced counters: pages=%d writes=%d", pf.NumPages(), pf.Stats().Writes)
	}
	id1, err := pf.AppendPage(buf)
	if err != nil || id1 != 1 {
		t.Fatalf("append after fault: id=%v err=%v (want 1, nil)", id1, err)
	}
}

// TestFaultFSDeterminism: the same seed and crash point tear the same
// prefix, so a crash-matrix failure replays exactly.
func TestFaultFSDeterminism(t *testing.T) {
	tear := func(seed int64) []byte {
		dir := t.TempDir()
		path := filepath.Join(dir, "t.bin")
		ffs := NewFaultFS(nil, seed)
		ffs.CrashAtWriteOp(2) // the WriteAt inside WriteFileAtomic
		data := make([]byte, 4096)
		for i := range data {
			data[i] = byte(i)
		}
		WriteFileAtomic(ffs, path, data)
		got, _ := os.ReadFile(TempPath(path))
		return got
	}
	a, b := tear(42), tear(42)
	if string(a) != string(b) {
		t.Fatalf("same seed tore different prefixes: %d vs %d bytes", len(a), len(b))
	}
}
