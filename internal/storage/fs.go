package storage

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the file-system seam every persisted artifact goes through: page
// files, lexicons, manifests, blobs and the document store. Production
// code uses OS (the real file system); fault-injection tests substitute a
// FaultFS that can fail or tear any operation deterministically. The
// interface is deliberately minimal — exactly the operations the engine's
// write protocol needs, so every write/sync boundary is also a potential
// injected-crash boundary.
type FS interface {
	// Create opens path read-write, creating it and truncating any
	// existing content.
	Create(path string) (File, error)
	// Open opens an existing file read-write.
	Open(path string) (File, error)
	// ReadFile returns the whole content of path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// MkdirAll creates the directory path with any missing parents.
	MkdirAll(path string) error
	// Stat returns file metadata.
	Stat(path string) (os.FileInfo, error)
	// SyncDir fsyncs the directory itself, making renames within it
	// durable (the "parent-dir fsync" step of the atomic-write protocol).
	SyncDir(path string) error
}

// File is the per-file handle behind FS: positioned reads and writes plus
// durability and close. *os.File satisfies it directly.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Close() error
}

// OS is the real file system.
var OS FS = osFS{}

// DefaultFS returns fs, or the real file system when fs is nil — the
// idiom every layer uses to make the FS parameter optional.
func DefaultFS(fs FS) FS {
	if fs == nil {
		return OS
	}
	return fs
}

type osFS struct{}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Open(path string) (File, error) {
	return os.OpenFile(path, os.O_RDWR, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) Stat(path string) (os.FileInfo, error) { return os.Stat(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// TempPath returns the temp-file name the atomic-write protocol uses for
// path. It is deterministic so fault-injection runs replay identically.
func TempPath(path string) string {
	return filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
}
