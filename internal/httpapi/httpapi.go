// Package httpapi builds the engine's HTTP surface: /api/search,
// /api/suggest, /api/docs, /api/ancestors, /api/shards, /api/segments,
// /api/slowlog, /api/cache, a minimal HTML search page at /, and — per
// Options — /metrics and /debug/pprof/. It is the one mux both `xrank
// serve` and the in-process harnesses (tests, xrank-loadgen -inproc)
// mount, so a load test exercises byte-for-byte the handler stack
// production runs.
//
// Every /api/search and /api/suggest response carries a Server-Timing
// header (queue;dur=…, search;dur=… in milliseconds) so external
// clients can split time-in-admission-queue from time-in-engine
// without scraping /metrics per request.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"xrank"
	"xrank/internal/cache"
)

// maxDocBytes bounds one /api/docs upload; a document larger than this
// answers 413 before the engine sees it.
const maxDocBytes = 8 << 20

// Options selects the optional endpoints and the admission controller.
type Options struct {
	Metrics   bool             // serve /metrics (Prometheus text exposition)
	Pprof     bool             // serve /debug/pprof/ (opt-in: exposes runtime internals)
	Updates   bool             // serve POST/DELETE /api/docs (opt-in: mutates the index)
	Admission *cache.Admission // bound /api/search concurrency (nil: unbounded)
}

// WithRecovery wraps a handler so a panicking request logs the stack,
// increments xrank_http_panics_total, and answers 500 — one bad request
// never takes down the server or leaves the client hanging.
func WithRecovery(e *xrank.Engine, next http.Handler) http.Handler {
	panics := e.Metrics().Counter("xrank_http_panics_total", "HTTP requests that panicked and were answered with a 500.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				panics.Inc()
				log.Printf("http: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				// Best effort: if the handler already wrote a status line
				// this is a no-op and the client sees a truncated body.
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// serverTiming renders a Server-Timing header value: time spent waiting
// for an admission slot and time spent executing the query, both in
// milliseconds per the Server-Timing spec's dur unit.
func serverTiming(queue, search time.Duration) string {
	return fmt.Sprintf("queue;dur=%.3f, search;dur=%.3f",
		float64(queue.Microseconds())/1000, float64(search.Microseconds())/1000)
}

// NewMux builds the HTTP API behind the panic-recovery middleware.
func NewMux(e *xrank.Engine, opts Options) http.Handler {
	mux := http.NewServeMux()
	// Admission metrics live in the engine registry so one /metrics scrape
	// covers the whole serving path.
	admAdmitted := e.Metrics().Counter("xrank_admission_admitted_total", "Search requests admitted past the concurrency limiter.")
	admShed := e.Metrics().Counter("xrank_admission_shed_total", "Search requests shed with 429: limiter saturated and queue full.")
	admExpired := e.Metrics().Counter("xrank_admission_expired_total", "Search requests whose deadline expired while queued (503).")
	admWaiting := e.Metrics().Gauge("xrank_admission_queued", "Search requests currently waiting for an execution slot.")
	// acquire runs the admission gate shared by /api/search and
	// /api/suggest: on success it returns the queue wait and a release
	// to defer; on shed/expiry it writes the 429/503 JSON envelope
	// itself and reports !ok. Callers validate parameters first so a
	// malformed request never costs a slot.
	acquire := func(ctx context.Context, w http.ResponseWriter) (queued time.Duration, release func(), ok bool) {
		adm := opts.Admission
		if adm == nil {
			return 0, func() {}, true
		}
		admWaiting.Add(1)
		t0 := time.Now()
		err := adm.Acquire(ctx)
		queued = time.Since(t0)
		admWaiting.Add(-1)
		if err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, cache.ErrQueueFull) {
				status = http.StatusTooManyRequests
				admShed.Inc()
			} else {
				admExpired.Inc()
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Server-Timing", serverTiming(queued, 0))
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]interface{}{
				"error":               err.Error(),
				"retry_after_seconds": 1,
			})
			return queued, nil, false
		}
		admAdmitted.Inc()
		return queued, adm.Release, true
	}
	mux.HandleFunc("/api/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `missing "q" parameter`, http.StatusBadRequest)
			return
		}
		m := 10
		if ms := r.URL.Query().Get("m"); ms != "" {
			v, err := strconv.Atoi(ms)
			if err != nil || v < 1 || v > 1000 {
				http.Error(w, `bad "m" parameter`, http.StatusBadRequest)
				return
			}
			m = v
		}
		algo := xrank.AlgoHDIL
		if as := r.URL.Query().Get("algo"); as != "" {
			a, err := ParseAlgo(as)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			algo = a
		}
		// The request context flows into the query: a client that
		// disconnects or a timeout_ms that expires cancels the merge at
		// its next page access instead of burning I/O on a dead request.
		ctx := r.Context()
		if ts := r.URL.Query().Get("timeout_ms"); ts != "" {
			v, err := strconv.Atoi(ts)
			if err != nil || v < 1 {
				http.Error(w, `bad "timeout_ms" parameter`, http.StatusBadRequest)
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(v)*time.Millisecond)
			defer cancel()
		}
		var budget int64
		if bs := r.URL.Query().Get("budget"); bs != "" {
			v, err := strconv.ParseInt(bs, 10, 64)
			if err != nil || v < 1 {
				http.Error(w, `bad "budget" parameter`, http.StatusBadRequest)
				return
			}
			budget = v
		}
		// Admission gate: ctx already carries the request's deadline so
		// time queued counts against it.
		queued, release, ok := acquire(ctx, w)
		if !ok {
			return
		}
		defer release()
		t0 := time.Now()
		results, stats, err := e.SearchContext(ctx, q, xrank.SearchOptions{
			TopM: m, Algorithm: algo, MaxPageReads: budget,
		})
		w.Header().Set("Server-Timing", serverTiming(queued, time.Since(t0)))
		if err != nil {
			http.Error(w, err.Error(), SearchErrorStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		resp := map[string]interface{}{
			"query":      q,
			"algorithm":  stats.Algorithm.String(),
			"wall_us":    stats.WallTime.Microseconds(),
			"io_reads":   stats.IO.Reads,
			"cache_hits": stats.IO.CacheHits,
			"shards":     stats.Shards,
			"degraded":   stats.Degraded,
			"cached":     stats.Cached,
			"results":    results,
		}
		if stats.Coalesced {
			resp["coalesced"] = true
		}
		if stats.Degraded {
			resp["failed_shards"] = stats.FailedShards
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/api/suggest", func(w http.ResponseWriter, r *http.Request) {
		// An empty q is a valid query (the top terms of the whole
		// dictionary), so only a missing parameter is rejected.
		if !r.URL.Query().Has("q") {
			http.Error(w, `missing "q" parameter`, http.StatusBadRequest)
			return
		}
		q := r.URL.Query().Get("q")
		k := 0 // engine default (DefaultSuggestK)
		if ks := r.URL.Query().Get("k"); ks != "" {
			v, err := strconv.Atoi(ks)
			if err != nil || v < 1 || v > 1000 {
				http.Error(w, `bad "k" parameter`, http.StatusBadRequest)
				return
			}
			k = v
		}
		// Completions share the search admission gate: a saturated
		// engine sheds keystrokes before queries only in the sense that
		// both wait in the same queue under the same limit.
		queued, release, ok := acquire(r.Context(), w)
		if !ok {
			return
		}
		defer release()
		t0 := time.Now()
		sugs, st, err := e.Suggest(q, k)
		w.Header().Set("Server-Timing", serverTiming(queued, time.Since(t0)))
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, xrank.ErrSuggestDisabled) {
				status = http.StatusForbidden
			}
			http.Error(w, err.Error(), status)
			return
		}
		if sugs == nil {
			sugs = []xrank.Suggestion{} // JSON [] rather than null
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"query":         q,
			"prefix":        st.Prefix,
			"terms":         st.Terms,
			"nodes_visited": st.NodesVisited,
			"wall_us":       st.WallTime.Microseconds(),
			"suggestions":   sugs,
		})
	})
	mux.HandleFunc("/api/docs", func(w http.ResponseWriter, r *http.Request) {
		if !opts.Updates {
			http.Error(w, "updates disabled (start the server with -updates)", http.StatusForbidden)
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			http.Error(w, `missing "name" parameter`, http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodPost, http.MethodPut:
			// AddDoc replaces an existing name atomically (old version
			// tombstoned), so POST and PUT behave identically.
			body := http.MaxBytesReader(w, r.Body, maxDocBytes)
			if err := e.AddDoc(name, body); err != nil {
				status := http.StatusInternalServerError
				if strings.Contains(err.Error(), "request body too large") {
					status = http.StatusRequestEntityTooLarge
				}
				http.Error(w, err.Error(), status)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]interface{}{
				"name":     name,
				"docs":     e.NumDocs(),
				"segments": e.SegmentCount(),
			})
		case http.MethodDelete:
			if err := e.DeleteDoc(name); err != nil {
				status := http.StatusInternalServerError
				if strings.Contains(err.Error(), "no document") ||
					strings.Contains(err.Error(), "already deleted") {
					status = http.StatusNotFound
				}
				http.Error(w, err.Error(), status)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]interface{}{"deleted": name})
		default:
			w.Header().Set("Allow", "POST, PUT, DELETE")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/api/cache", func(w http.ResponseWriter, r *http.Request) {
		resp := map[string]interface{}{"cache": e.CacheStats()}
		if opts.Admission != nil {
			resp["admission"] = opts.Admission.Stats()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/api/shards", func(w http.ResponseWriter, r *http.Request) {
		per := e.ShardIOStats()
		health := e.ShardHealth()
		unhealthy := 0
		shards := make([]map[string]interface{}, len(per))
		for i, s := range per {
			shards[i] = map[string]interface{}{
				"shard":      i,
				"io_reads":   s.Reads,
				"seq_reads":  s.SeqReads,
				"rand_reads": s.RandReads,
				"cache_hits": s.CacheHits,
			}
			if i < len(health) {
				h := health[i]
				shards[i]["healthy"] = h.Healthy
				shards[i]["consecutive_failures"] = h.Failures
				if h.LastError != "" {
					shards[i]["last_error"] = h.LastError
				}
				if !h.Healthy {
					unhealthy++
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"num_shards": e.NumShards(),
			"unhealthy":  unhealthy,
			"shards":     shards,
		})
	})
	mux.HandleFunc("/api/segments", func(w http.ResponseWriter, r *http.Request) {
		segs := e.Segments()
		stale := 0
		for _, s := range segs {
			if s.Stale {
				stale++
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"num_segments": len(segs),
			"rank_version": e.RankVersion(),
			"stale":        stale,
			"segments":     segs,
		})
	})
	mux.HandleFunc("/api/slowlog", func(w http.ResponseWriter, r *http.Request) {
		l := e.SlowLog()
		entries := l.Entries()
		if ls := r.URL.Query().Get("limit"); ls != "" {
			v, err := strconv.Atoi(ls)
			if err != nil || v < 1 {
				http.Error(w, `bad "limit" parameter`, http.StatusBadRequest)
				return
			}
			if v < len(entries) {
				entries = entries[:v]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"threshold_ms": l.Threshold().Milliseconds(),
			"total":        l.Total(),
			"entries":      entries,
		})
	})
	if opts.Metrics {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := e.Metrics().WritePrometheus(w); err != nil {
				log.Printf("metrics: %v", err)
			}
		})
	}
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/api/ancestors", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		anc, err := e.Ancestors(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(anc)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		q := r.URL.Query().Get("q")
		data := struct {
			Query   string
			Results []xrank.SearchResult
			Err     string
		}{Query: q}
		if q != "" {
			rs, err := e.Search(q)
			if err != nil {
				data.Err = err.Error()
			} else {
				data.Results = rs
			}
		}
		if err := page.Execute(w, data); err != nil {
			log.Printf("render: %v", err)
		}
	})
	return WithRecovery(e, mux)
}

// SearchErrorStatus maps a query failure to an HTTP status: timeouts to
// 504, client disconnects, exhausted budgets and degraded-mode refusals
// (FailOnDegraded) to 503 (the service is temporarily unable to serve a
// complete answer), everything else to 500.
func SearchErrorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled),
		errors.Is(err, xrank.ErrBudgetExceeded),
		errors.Is(err, xrank.ErrDegraded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// ParseAlgo resolves the CLI/HTTP algorithm names.
func ParseAlgo(s string) (xrank.Algorithm, error) {
	switch s {
	case "hdil":
		return xrank.AlgoHDIL, nil
	case "dil":
		return xrank.AlgoDIL, nil
	case "rdil":
		return xrank.AlgoRDIL, nil
	case "naiveid":
		return xrank.AlgoNaiveID, nil
	case "naiverank":
		return xrank.AlgoNaiveRank, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

var page = template.Must(template.New("page").Parse(`<!doctype html>
<html><head><title>XRANK</title>
<style>
 body { font-family: sans-serif; max-width: 48rem; margin: 2rem auto; }
 .path { color: #666; font-size: 0.85rem; }
 .score { color: #295; }
 .snippet { margin: 0.2rem 0 1rem; }
</style></head>
<body>
<h1>XRANK — ranked XML keyword search</h1>
<form action="/" method="get"><input name="q" size="50" value="{{.Query}}" autofocus>
<button type="submit">Search</button></form>
{{if .Err}}<p style="color:#a00">{{.Err}}</p>{{end}}
{{range .Results}}
  <div>
   <div><span class="score">{{printf "%.3g" .Score}}</span> &lt;{{.Tag}}&gt; in <b>{{.Doc}}</b></div>
   <div class="path">{{.Path}} (dewey {{.DeweyID}})</div>
   <div class="snippet">{{.Snippet}}</div>
  </div>
{{end}}
</body></html>`))
