package httpapi

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xrank"
	"xrank/internal/cache"
)

// Timeout-edge tests: pin the exact envelopes (status, Retry-After,
// body) of the three backpressure responses — 429 shed, 503 expired in
// queue, 504 engine deadline — that the cluster coordinator passes
// through verbatim, and audit admission accounting under concurrent
// cancellation. Regenerate goldens with:
//
//	go test ./internal/httpapi -run TestEdge -update

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// edgeEngine builds a small deterministic corpus.
func edgeEngine(t *testing.T) *xrank.Engine {
	t.Helper()
	e := xrank.NewEngine(&xrank.Config{IndexDir: t.TempDir()})
	for i := 0; i < 4; i++ {
		doc := fmt.Sprintf(`<r><t>xql language doc%d</t><p>ranked keyword search</p></r>`, i)
		if err := e.AddXML(fmt.Sprintf("doc%d.xml", i), strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// envelope renders the parts of a backpressure response that clients
// (and the coordinator's passthrough) depend on. Server-Timing carries
// wall-clock durations and stays out of the golden; its presence is
// asserted separately.
func envelope(rec *httptest.ResponseRecorder) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "status: %d\n", rec.Code)
	fmt.Fprintf(&b, "Retry-After: %s\n", rec.Header().Get("Retry-After"))
	fmt.Fprintf(&b, "Content-Type: %s\n\n", rec.Header().Get("Content-Type"))
	b.Write(rec.Body.Bytes())
	return b.Bytes()
}

// TestEdgeShed429 saturates a queue-less admission controller: the
// shed envelope must carry Retry-After and the JSON error body.
func TestEdgeShed429(t *testing.T) {
	e := edgeEngine(t)
	adm := cache.NewAdmission(1, -1)
	if err := adm.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer adm.Release()
	mux := NewMux(e, Options{Admission: adm})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=xql", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Header().Get("Server-Timing"), "queue;dur=") {
		t.Errorf("shed response lost Server-Timing: %q", rec.Header().Get("Server-Timing"))
	}
	checkGolden(t, "edge_shed_429.golden", envelope(rec))
}

// TestEdgeSuggestShed429: /api/suggest sits behind the same admission
// gate as /api/search, so a saturated controller sheds completions
// with the byte-identical envelope (same golden as the search shed).
func TestEdgeSuggestShed429(t *testing.T) {
	e := edgeEngine(t)
	adm := cache.NewAdmission(1, -1)
	if err := adm.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer adm.Release()
	mux := NewMux(e, Options{Admission: adm})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/suggest?q=xq", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Header().Get("Server-Timing"), "queue;dur=") {
		t.Errorf("shed response lost Server-Timing: %q", rec.Header().Get("Server-Timing"))
	}
	checkGolden(t, "edge_shed_429.golden", envelope(rec))
}

// TestEdgeExpired503 parks a request in the admission queue until its
// deadline fires: 503, Retry-After, and the context error in the body.
func TestEdgeExpired503(t *testing.T) {
	e := edgeEngine(t)
	adm := cache.NewAdmission(1, 1)
	if err := adm.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer adm.Release()
	mux := NewMux(e, Options{Admission: adm})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=xql&timeout_ms=40", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "edge_expired_503.golden", envelope(rec))
}

// TestEdgeTimeout504 sends a request whose deadline has already
// passed: the engine observes the expired context at its first page
// access and the handler maps it to 504. (A live request racing its
// own deadline would be flaky; a pre-expired one is deterministic.)
func TestEdgeTimeout504(t *testing.T) {
	e := edgeEngine(t)
	if err := e.ColdCache(); err != nil {
		t.Fatal(err)
	}
	mux := NewMux(e, Options{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/api/search?q=xql+language&algo=dil", nil).WithContext(ctx)
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "edge_timeout_504.golden", envelope(rec))
}

// TestEdgeAdmissionAccountingRace cancels a swarm of queued requests
// mid-wait (the shape a cancelled hedge duplicate produces) and checks
// the books balance exactly: every request that entered the admission
// gate is admitted, shed, or expired — never double-counted, never
// lost. Run with -race this also exercises the gate's concurrency.
func TestEdgeAdmissionAccountingRace(t *testing.T) {
	e := edgeEngine(t)
	adm := cache.NewAdmission(1, 2)
	mux := NewMux(e, Options{Admission: adm})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var handled int64
	const workers, perWorker = 8, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
			for i := 0; i < perWorker; i++ {
				// Half the requests carry a deadline short enough to expire
				// in the queue under contention; client-side cancellation
				// follows, like a hedge loser being abandoned.
				u := srv.URL + "/api/search?q=xql+language&algo=dil"
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%2 == 0 {
					ctx, cancel = context.WithTimeout(ctx, 15*time.Millisecond)
				}
				req, _ := http.NewRequestWithContext(ctx, "GET", u, nil)
				resp, err := client.Do(req)
				if err == nil {
					resp.Body.Close()
				}
				if cancel != nil {
					cancel()
				}
				atomic.AddInt64(&handled, 1)
			}
		}(w)
	}
	wg.Wait()

	mv := func(name string) int64 {
		var sb strings.Builder
		if err := e.Metrics().WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(sb.String(), "\n") {
			if strings.HasPrefix(line, name+" ") {
				var v int64
				fmt.Sscanf(line[len(name)+1:], "%d", &v)
				return v
			}
		}
		return 0
	}
	admitted, shed, expired := mv("xrank_admission_admitted_total"),
		mv("xrank_admission_shed_total"), mv("xrank_admission_expired_total")
	total := admitted + shed + expired
	// Client-side cancellation can abort a request before the server
	// runs the handler at all, so the gate may see fewer requests than
	// the client sent — but every request it did see is counted exactly
	// once, and the in-queue gauge drains to zero.
	if total > atomic.LoadInt64(&handled) {
		t.Fatalf("admission counted %d (adm %d + shed %d + exp %d) > %d sent",
			total, admitted, shed, expired, handled)
	}
	if admitted == 0 {
		t.Fatal("no request was admitted")
	}
	if queued := mv("xrank_admission_queued"); queued != 0 {
		t.Fatalf("admission queue gauge stuck at %d", queued)
	}
	// The gate's own invariant: stats agree with the counters.
	st := adm.Stats()
	if st.Admitted != admitted || st.ShedFull != shed || st.Expired != expired {
		t.Fatalf("admission stats %+v disagree with metrics (%d/%d/%d)", st, admitted, shed, expired)
	}
}
