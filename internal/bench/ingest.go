package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"xrank"
)

// The ingestion-throughput experiment (E12, an extension beyond the
// paper): the paper handles additions by rebuilding the index (Section
// 4.5); segment-based incremental indexing amortizes that into small
// delta-segment flushes. This experiment ingests a stream of XMark-shaped
// documents batch by batch through AddDocs — interleaving a fixed query
// probe after every batch to confirm and price concurrent serving — and
// compares the per-batch flush cost against a from-scratch rebuild over
// the same final corpus. It closes with one compaction, pricing the fold
// back to a single segment. Results go to BENCH_ingest.json for CI trend
// tracking (non-gating: wall times on shared runners are noise; the
// artifact history shows throughput drift).

// IngestBatch is the measurement of one AddDocs flush.
type IngestBatch struct {
	Batch        int   `json:"batch"`
	Docs         int   `json:"docs"`
	AddMillis    int64 `json:"add_millis"`
	Segments     int   `json:"segments"`
	ProbeMicros  int64 `json:"probe_micros"`
	ProbeResults int   `json:"probe_results"`
}

// IngestBenchReport is the JSON artifact (BENCH_ingest.json) of E12.
type IngestBenchReport struct {
	Corpus      string `json:"corpus"`
	InitialDocs int    `json:"initial_docs"`
	Batches     int    `json:"batches"`
	BatchSize   int    `json:"batch_size"`
	Shards      int    `json:"shards"`
	Workers     int    `json:"workers"`
	Elements    int    `json:"final_elements"`

	Runs []IngestBatch `json:"runs"`

	// The headline: total documents ingested incrementally, the wall time
	// of those flushes, the resulting throughput, and how one average
	// flush compares to rebuilding the whole final corpus from scratch.
	IngestedDocs     int     `json:"ingested_docs"`
	IngestMillis     int64   `json:"ingest_millis"`
	DocsPerSec       float64 `json:"docs_per_sec"`
	AvgAddMillis     int64   `json:"avg_add_millis"`
	RebuildMillis    int64   `json:"rebuild_millis"`
	SpeedupVsRebuild float64 `json:"speedup_vs_rebuild"`

	// The closing compaction: segments folded, wall time, bytes written.
	SegmentsBeforeCompact int   `json:"segments_before_compact"`
	CompactMillis         int64 `json:"compact_millis"`
	CompactBytes          int64 `json:"compact_bytes"`
}

// WriteJSON writes the report to path, indented.
func (r *IngestBenchReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// E12Ingest builds an engine over the first initialDocs documents of an
// XMark-shaped corpus, then ingests the rest in batches AddDocs-style.
func E12Ingest(baseDir string, initialDocs, batches, batchSize int, scale float64, seed int64) (*Table, *IngestBenchReport, error) {
	const shards = 4
	const probe = "w0 w1"
	total := initialDocs + batches*batchSize
	corpus := shardCorpus(total, scale, seed)
	name := func(d int) string { return fmt.Sprintf("xmark%02d", d) }

	e := xrank.NewEngine(&xrank.Config{
		IndexDir:  baseDir + "/inc",
		Shards:    shards,
		SkipNaive: true,
	})
	for d := 0; d < initialDocs; d++ {
		if err := e.AddXML(name(d), strings.NewReader(corpus[d])); err != nil {
			return nil, nil, err
		}
	}
	if _, err := e.Build(); err != nil {
		return nil, nil, err
	}
	defer e.Close()

	rep := &IngestBenchReport{
		Corpus:      "xmark",
		InitialDocs: initialDocs,
		Batches:     batches,
		BatchSize:   batchSize,
		Shards:      shards,
		Workers:     runtime.GOMAXPROCS(0),
	}
	t := &Table{
		Title:  fmt.Sprintf("E12 (extension): incremental ingestion, %d initial + %d batches x %d docs", initialDocs, batches, batchSize),
		Header: []string{"batch", "docs", "AddDocs", "segments", "probe"},
		Comment: "Each batch is one AddDocs flush: parse + global ElemRank recompute + delta-segment\n" +
			"build + manifest swap, with the full index left untouched. The probe query runs right\n" +
			"after the flush, so it merges across every live segment. The rebuild row is the\n" +
			"from-scratch Build over the same final corpus that Section 4.5 would pay per change.",
	}

	next := initialDocs
	var ingestWall time.Duration
	for b := 0; b < batches; b++ {
		batch := make(map[string]io.Reader, batchSize)
		for i := 0; i < batchSize; i++ {
			batch[name(next)] = strings.NewReader(corpus[next])
			next++
		}
		t0 := time.Now()
		if err := e.AddDocs(batch); err != nil {
			return nil, nil, fmt.Errorf("bench: ingest batch %d: %w", b, err)
		}
		add := time.Since(t0)
		ingestWall += add

		rs, stats, err := e.SearchDetailed(probe, xrank.SearchOptions{TopM: 10, Algorithm: xrank.AlgoDIL})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: ingest probe after batch %d: %w", b, err)
		}
		run := IngestBatch{
			Batch:        b,
			Docs:         batchSize,
			AddMillis:    add.Milliseconds(),
			Segments:     e.SegmentCount(),
			ProbeMicros:  stats.WallTime.Microseconds(),
			ProbeResults: len(rs),
		}
		rep.Runs = append(rep.Runs, run)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%d", batchSize),
			fmt.Sprintf("%dms", run.AddMillis),
			fmt.Sprintf("%d", run.Segments),
			fmt.Sprintf("%dµs/%d", run.ProbeMicros, run.ProbeResults),
		})
	}
	rep.IngestedDocs = batches * batchSize
	rep.IngestMillis = ingestWall.Milliseconds()
	if s := ingestWall.Seconds(); s > 0 {
		rep.DocsPerSec = float64(rep.IngestedDocs) / s
	}
	if batches > 0 {
		rep.AvgAddMillis = ingestWall.Milliseconds() / int64(batches)
	}

	// The Section 4.5 baseline: one from-scratch build over the final
	// corpus, i.e. what every batch would have cost without segments.
	rb := xrank.NewEngine(&xrank.Config{
		IndexDir:  baseDir + "/rebuild",
		Shards:    shards,
		SkipNaive: true,
	})
	for d := 0; d < total; d++ {
		if err := rb.AddXML(name(d), strings.NewReader(corpus[d])); err != nil {
			return nil, nil, err
		}
	}
	t0 := time.Now()
	info, err := rb.Build()
	if err != nil {
		return nil, nil, err
	}
	rebuild := time.Since(t0)
	rb.Close()
	rep.Elements = info.NumElements
	rep.RebuildMillis = rebuild.Milliseconds()
	if rep.AvgAddMillis > 0 {
		rep.SpeedupVsRebuild = float64(rep.RebuildMillis) / float64(rep.AvgAddMillis)
	}
	t.Rows = append(t.Rows, []string{"rebuild", fmt.Sprintf("%d", total),
		fmt.Sprintf("%dms", rep.RebuildMillis), "1",
		fmt.Sprintf("%.1fx avg flush", rep.SpeedupVsRebuild)})

	rep.SegmentsBeforeCompact = e.SegmentCount()
	t0 = time.Now()
	cs, err := e.CompactOnce(0)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: closing compaction: %w", err)
	}
	rep.CompactMillis = time.Since(t0).Milliseconds()
	rep.CompactBytes = cs.Bytes
	t.Rows = append(t.Rows, []string{"compact", fmt.Sprintf("%d", rep.SegmentsBeforeCompact),
		fmt.Sprintf("%dms", rep.CompactMillis), "1",
		fmt.Sprintf("%.1fMB", float64(cs.Bytes)/(1<<20))})
	return t, rep, nil
}
