package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"xrank"
	"xrank/internal/datagen/xmark"
)

// The shard-scaling experiment (E10, an extension beyond the paper): the
// same XMark-generator corpus indexed at several shard counts, the same
// conjunctive queries run against each, comparing per-query latency and
// sequential throughput. Document sharding helps conjunctive queries two
// ways: the per-shard merges run in parallel under the worker pool, and
// — independent of core count — a shard missing any conjunctive keyword
// is pruned outright (its DIL merge exits before scanning a page). The
// workload here is the classic selective conjunction: one rare keyword
// (a marker planted in only the first two documents) paired with one
// frequent vocabulary word. The 1-shard baseline scans the frequent
// word's full inverted list; a sharded index scans it only in the shards
// that also hold the rare keyword. Results are serialized to
// BENCH_shard.json for CI trend tracking.

// ShardRun is the measurement at one shard count. Latency figures come
// from the engine's own query-latency histogram (the interval between
// two snapshots around the measured reps), not from harness-side timers:
// the harness measures exactly what /metrics reports.
type ShardRun struct {
	Shards           int     `json:"shards"`
	BuildMillis      int64   `json:"build_millis"`
	AvgLatencyMicros int64   `json:"avg_latency_micros"` // histogram interval mean over all measured reps
	P50LatencyMicros int64   `json:"p50_latency_micros"` // histogram interval median (bucket-interpolated)
	QueriesPerSec    float64 `json:"queries_per_sec"`    // sequential: interval count / interval sum
	AvgReads         int64   `json:"avg_reads"`          // device page reads per query (shard-count invariant)
	AvgResults       float64 `json:"avg_results"`
}

// ShardReport is the JSON artifact (BENCH_shard.json) of the experiment.
type ShardReport struct {
	Corpus   string     `json:"corpus"`
	Docs     int        `json:"docs"`
	Elements int        `json:"elements"`
	Workers  int        `json:"workers"` // GOMAXPROCS at run time
	Keywords int        `json:"keywords"`
	Queries  int        `json:"queries"`
	Reps     int        `json:"reps"`
	TopM     int        `json:"top_m"`
	Runs     []ShardRun `json:"runs"`
	// Speedup is baseline latency / best multi-shard latency (>1 means
	// sharding won); BestShards is the count that achieved it.
	Speedup    float64 `json:"speedup"`
	BestShards int     `json:"best_shards"`
}

// WriteJSON writes the report to path, indented.
func (r *ShardReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// markerDocs is how many of the shard corpus's documents plant the
// marker groups; keeping it below the document count makes the marker
// keywords rare — the selective half of the benchmark's conjunctions.
const markerDocs = 2

// shardCorpus generates docs XMark-shaped documents (the generator's
// single deep document, instantiated per seed) so the document-hash
// partitioner has real spread. Only the first markerDocs documents plant
// the marker groups; the shared Zipf vocabulary (w0, w1, ...) spans all
// of them.
func shardCorpus(docs int, scale float64, seed int64) []string {
	if scale <= 0 {
		scale = 1.0
	}
	out := make([]string, docs)
	for d := 0; d < docs; d++ {
		p := xmark.Params{
			Seed:           seed + int64(d),
			Items:          int(300 * scale),
			People:         int(180 * scale),
			OpenAuctions:   int(200 * scale),
			ClosedAuctions: int(120 * scale),
			Categories:     int(20 * scale),
		}
		if d < markerDocs {
			p.CorrelationGroups = markerGroups
			p.CorrelationWidth = markerWidth
			p.PlantRate = 0.25
		}
		out[d] = xmark.Generate(p)
	}
	return out
}

// shardQueries pairs each marker group's first keyword (rare: planted in
// markerDocs documents) with a frequent vocabulary word — the selective
// conjunctions the experiment measures.
func shardQueries() [][]string {
	out := make([][]string, 0, markerGroups)
	for g := 0; g < markerGroups; g++ {
		out = append(out, []string{fmt.Sprintf("hicorr%dk0", g), fmt.Sprintf("w%d", g)})
	}
	return out
}

// E10Shard builds the XMark-generator corpus at every shard count in
// counts (which should include 1, the baseline) and measures the same
// conjunctive queries against each. reps repetitions are run per query;
// the reported latency is the mean and median of the engine's own
// query-latency histogram over the measured interval.
func E10Shard(baseDir string, counts []int, docs int, scale float64, seed int64, topM int) (*Table, *ShardReport, error) {
	xmls := shardCorpus(docs, scale, seed)
	queries := shardQueries()
	const reps = 3

	rep := &ShardReport{
		Corpus:   "xmark",
		Docs:     docs,
		Workers:  runtime.GOMAXPROCS(0),
		Keywords: len(queries[0]),
		Queries:  len(queries),
		Reps:     reps,
		TopM:     topM,
	}
	t := &Table{
		Title:  fmt.Sprintf("E10 (extension): shard scaling, XMark-shape ×%d docs, rare+frequent conjunctions, top-%d", docs, topM),
		Header: []string{"shards", "avg latency", "p50 latency", "queries/s", "reads", "results"},
		Comment: "Same corpus, same queries, same ranking at every shard count (the differential harness\n" +
			"guards that). Shards missing the rare keyword are pruned before scanning a page, so both\n" +
			"reads and latency fall as shards isolate the frequent word's list; the per-shard merges\n" +
			"additionally run in parallel when cores allow.",
	}

	for _, sc := range counts {
		dir := fmt.Sprintf("%s/shard%d", baseDir, sc)
		e := xrank.NewEngine(&xrank.Config{IndexDir: dir, Shards: sc, SkipNaive: true})
		for d, x := range xmls {
			if err := e.AddXML(fmt.Sprintf("xmark%02d", d), strings.NewReader(x)); err != nil {
				return nil, nil, err
			}
		}
		t0 := time.Now()
		info, err := e.Build()
		if err != nil {
			return nil, nil, err
		}
		run := ShardRun{Shards: sc, BuildMillis: time.Since(t0).Milliseconds()}
		rep.Elements = info.NumElements

		// One unmeasured warmup pass: faults the postfiles into the OS
		// page cache and lets the post-build heap settle, so the measured
		// reps compare merge work, not build aftermath.
		for _, q := range queries {
			if _, _, err := e.SearchDetailed(strings.Join(q, " "), xrank.SearchOptions{
				TopM: topM, Algorithm: xrank.AlgoDIL, ColdCache: true,
			}); err != nil {
				e.Close()
				return nil, nil, fmt.Errorf("bench: shard%d warmup %v: %w", sc, q, err)
			}
		}
		runtime.GC()

		// The measured interval is the diff of the engine's query-latency
		// histogram around the reps: the warmup pass above is excluded,
		// and the numbers are exactly what the engine's /metrics reports.
		before := e.QueryLatency(xrank.AlgoDIL.String())
		var reads int64
		var results float64
		for _, q := range queries {
			for r := 0; r < reps; r++ {
				rs, stats, err := e.SearchDetailed(strings.Join(q, " "), xrank.SearchOptions{
					TopM:      topM,
					Algorithm: xrank.AlgoDIL,
					ColdCache: true,
				})
				if err != nil {
					e.Close()
					return nil, nil, fmt.Errorf("bench: shard%d %v: %w", sc, q, err)
				}
				if r == 0 {
					reads += stats.IO.Reads
					results += float64(len(rs))
				}
			}
		}
		interval := e.QueryLatency(xrank.AlgoDIL.String()).Sub(before)
		e.Close()

		n := len(queries)
		if want := int64(n * reps); interval.Count != want {
			return nil, nil, fmt.Errorf("bench: shard%d histogram interval holds %d observations, want %d", sc, interval.Count, want)
		}
		run.AvgLatencyMicros = int64(interval.Mean() * 1e6)
		run.P50LatencyMicros = int64(interval.Quantile(0.5) * 1e6)
		if interval.Sum > 0 {
			run.QueriesPerSec = float64(interval.Count) / interval.Sum
		}
		run.AvgReads = reads / int64(n)
		run.AvgResults = results / float64(n)
		rep.Runs = append(rep.Runs, run)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", sc),
			fmt.Sprintf("%.2fms", float64(run.AvgLatencyMicros)/1000),
			fmt.Sprintf("%.2fms", float64(run.P50LatencyMicros)/1000),
			fmt.Sprintf("%.0f", run.QueriesPerSec),
			fmt.Sprintf("%d", run.AvgReads),
			fmt.Sprintf("%.1f", run.AvgResults),
		})
	}

	// Speedup: the 1-shard baseline against the best multi-shard run.
	var base int64
	for _, r := range rep.Runs {
		if r.Shards == 1 {
			base = r.AvgLatencyMicros
		}
	}
	for _, r := range rep.Runs {
		if r.Shards > 1 && base > 0 && r.AvgLatencyMicros > 0 {
			if s := float64(base) / float64(r.AvgLatencyMicros); s > rep.Speedup {
				rep.Speedup = s
				rep.BestShards = r.Shards
			}
		}
	}
	return t, rep, nil
}
