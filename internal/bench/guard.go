package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// GuardThreshold is the tolerated latency growth before the CI guard
// fails: the median across shard counts of new/baseline average-latency
// ratios must stay at or below it. 1.25 — a 25% regression — leaves
// room for runner noise (each ratio shares corpus, queries, and shard
// count with its baseline; only the code changed).
const GuardThreshold = 1.25

// GuardResult is the verdict of one baseline comparison.
type GuardResult struct {
	// MedianRatio is the median over shard counts of the new run's
	// average latency divided by the baseline's (1.0 = unchanged).
	MedianRatio float64
	// Ratios holds the per-shard-count ratios, in the baseline's order.
	Ratios []float64
	// Shards holds the shard counts the ratios correspond to.
	Shards []int
	// Regressed is true when MedianRatio exceeds GuardThreshold.
	Regressed bool
}

func (g *GuardResult) String() string {
	s := fmt.Sprintf("median latency ratio %.3f over shard counts %v (threshold %.2f)",
		g.MedianRatio, g.Shards, GuardThreshold)
	if g.Regressed {
		return "REGRESSION: " + s
	}
	return "ok: " + s
}

// CompareShardReports checks a fresh shard report against a committed
// baseline: for every shard count present in both, it takes the ratio of
// average latencies, and fails when the median ratio exceeds
// GuardThreshold. The median makes the guard robust to one noisy shard
// count; requiring matching shard counts keeps the comparison
// apples-to-apples. An error (rather than a regressed result) means the
// reports cannot be compared at all.
func CompareShardReports(baseline, current *ShardReport) (*GuardResult, error) {
	if len(baseline.Runs) == 0 {
		return nil, fmt.Errorf("bench: baseline report has no runs")
	}
	base := make(map[int]int64, len(baseline.Runs))
	for _, r := range baseline.Runs {
		base[r.Shards] = r.AvgLatencyMicros
	}
	g := &GuardResult{}
	for _, r := range current.Runs {
		b, ok := base[r.Shards]
		if !ok {
			continue
		}
		if b <= 0 || r.AvgLatencyMicros <= 0 {
			return nil, fmt.Errorf("bench: non-positive latency at %d shards (baseline %dµs, current %dµs)",
				r.Shards, b, r.AvgLatencyMicros)
		}
		g.Shards = append(g.Shards, r.Shards)
		g.Ratios = append(g.Ratios, float64(r.AvgLatencyMicros)/float64(b))
	}
	if len(g.Ratios) == 0 {
		return nil, fmt.Errorf("bench: no shard counts in common between baseline and current report")
	}
	sorted := append([]float64(nil), g.Ratios...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		g.MedianRatio = sorted[mid]
	} else {
		g.MedianRatio = (sorted[mid-1] + sorted[mid]) / 2
	}
	g.Regressed = g.MedianRatio > GuardThreshold
	return g, nil
}

// ReadShardReport loads a BENCH_shard.json artifact.
func ReadShardReport(path string) (*ShardReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ShardReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &r, nil
}
