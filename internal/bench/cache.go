package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"xrank"
)

// The result-cache experiment (E11, an extension beyond the paper): a
// Zipfian stream of conjunctive queries against one engine with the
// result cache and coalescing enabled, swept over the stream's skew. The
// skewed head of the distribution turns into cache hits after its first
// appearance, so the hit ratio tracks the skew; the headline number is
// the hot/cold latency ratio — a hit copies a cached result set, a cold
// (uncached) execution runs the full sharded DIL merge. Results are
// serialized to BENCH_cache.json for CI trend tracking.

// CacheBenchRun is the measurement of one Zipf skew setting.
type CacheBenchRun struct {
	ZipfS           float64 `json:"zipf_s"`
	Requests        int     `json:"requests"`
	Hits            int64   `json:"hits"`
	HitRatio        float64 `json:"hit_ratio"`
	AvgHitMicros    int64   `json:"avg_hit_micros"`
	AvgMissMicros   int64   `json:"avg_miss_micros"`
	BytesResident   int64   `json:"bytes_resident"`
	EntriesResident int     `json:"entries_resident"`
}

// CacheBenchReport is the JSON artifact (BENCH_cache.json) of E11.
type CacheBenchReport struct {
	Corpus     string `json:"corpus"`
	Docs       int    `json:"docs"`
	Elements   int    `json:"elements"`
	Shards     int    `json:"shards"`
	Workers    int    `json:"workers"`
	TopM       int    `json:"top_m"`
	CacheBytes int64  `json:"cache_bytes"`
	Pool       int    `json:"distinct_queries"`

	Runs []CacheBenchRun `json:"runs"`

	// The hot/cold headline at top-k: ColdMicros is the mean wall time of
	// repeated executions with the cache disabled, HotMicros the mean
	// wall time of cache hits on the same queries, HotSpeedup their
	// ratio (the acceptance floor for this experiment is 5x).
	ColdMicros int64   `json:"cold_micros"`
	HotMicros  int64   `json:"hot_micros"`
	HotSpeedup float64 `json:"hot_speedup"`
}

// WriteJSON writes the report to path, indented.
func (r *CacheBenchReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// cacheBenchPool builds the distinct-query population: adjacent-rank
// pairs from the corpus's shared Zipf vocabulary (w0 is the most
// frequent word), so low pool indices are long-list queries and the
// whole pool is guaranteed non-empty on the XMark-shaped corpus.
func cacheBenchPool(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%d w%d", i, i+1)
	}
	return out
}

// E11Cache builds the XMark-shaped corpus once and measures the result
// cache two ways: the Zipf-skew sweep (hit ratio and per-class latency
// under realistic mixed traffic) and the hot/cold repeated-query
// headline at top-m.
func E11Cache(baseDir string, docs int, scale float64, seed int64, topM int) (*Table, *CacheBenchReport, error) {
	const (
		cacheBytes = 8 << 20
		poolSize   = 32
		requests   = 400
		shards     = 4
	)
	e := xrank.NewEngine(&xrank.Config{
		IndexDir:        baseDir,
		Shards:          shards,
		SkipNaive:       true,
		CacheBytes:      cacheBytes,
		CoalesceQueries: true,
	})
	for d, x := range shardCorpus(docs, scale, seed) {
		if err := e.AddXML(fmt.Sprintf("xmark%02d", d), strings.NewReader(x)); err != nil {
			return nil, nil, err
		}
	}
	info, err := e.Build()
	if err != nil {
		return nil, nil, err
	}
	defer e.Close()

	pool := cacheBenchPool(poolSize)
	rep := &CacheBenchReport{
		Corpus:     "xmark",
		Docs:       docs,
		Elements:   info.NumElements,
		Shards:     shards,
		Workers:    runtime.GOMAXPROCS(0),
		TopM:       topM,
		CacheBytes: cacheBytes,
		Pool:       poolSize,
	}
	t := &Table{
		Title:  fmt.Sprintf("E11 (extension): result cache on a Zipfian query mix, %d distinct queries, top-%d", poolSize, topM),
		Header: []string{"zipf s", "requests", "hit ratio", "avg hit", "avg miss"},
		Comment: "One engine, result cache + coalescing on. Each row replays a fresh Zipfian request\n" +
			"stream over the same query pool against an emptied cache: the more skewed the stream,\n" +
			"the more of it is absorbed by whole-result reuse. A hit costs a key build and a copy;\n" +
			"a miss runs the full sharded merge.",
	}

	// Warm the OS page cache and buffer pools once so the sweep measures
	// merge work against cache work, not first-touch I/O.
	for _, q := range pool {
		if _, _, err := e.SearchDetailed(q, xrank.SearchOptions{TopM: topM, Algorithm: xrank.AlgoDIL}); err != nil {
			return nil, nil, fmt.Errorf("bench: cache warmup %q: %w", q, err)
		}
	}

	for _, s := range []float64{1.07, 1.5, 2.5} {
		// A fresh cache per row: ratios describe this stream only.
		e.ConfigureResultCache(cacheBytes)
		rng := rand.New(rand.NewSource(seed + int64(s*100)))
		zipf := rand.NewZipf(rng, s, 1, poolSize-1)
		run := CacheBenchRun{ZipfS: s, Requests: requests}
		var hitWall, missWall time.Duration
		var misses int64
		for i := 0; i < requests; i++ {
			q := pool[zipf.Uint64()]
			_, stats, err := e.SearchDetailed(q, xrank.SearchOptions{TopM: topM, Algorithm: xrank.AlgoDIL})
			if err != nil {
				return nil, nil, fmt.Errorf("bench: cache sweep s=%.2f %q: %w", s, q, err)
			}
			if stats.Cached {
				run.Hits++
				hitWall += stats.WallTime
			} else {
				misses++
				missWall += stats.WallTime
			}
		}
		run.HitRatio = float64(run.Hits) / float64(requests)
		if run.Hits > 0 {
			run.AvgHitMicros = hitWall.Microseconds() / run.Hits
		}
		if misses > 0 {
			run.AvgMissMicros = missWall.Microseconds() / misses
		}
		cs := e.CacheStats()
		run.BytesResident = cs.Bytes
		run.EntriesResident = cs.Entries
		rep.Runs = append(rep.Runs, run)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", s),
			fmt.Sprintf("%d", requests),
			fmt.Sprintf("%.1f%%", 100*run.HitRatio),
			fmt.Sprintf("%dµs", run.AvgHitMicros),
			fmt.Sprintf("%dµs", run.AvgMissMicros),
		})
	}

	// The hot/cold headline. Cold: the cache disabled outright, so every
	// repetition runs the full merge with warm buffer pools — the honest
	// baseline (an opts.ColdCache run would also pay first-touch I/O and
	// flatter the cache). Hot: one priming pass, then pure hits.
	const headQueries, coldReps, hotReps = 8, 5, 50
	e.ConfigureResultCache(0)
	var coldWall time.Duration
	for _, q := range pool[:headQueries] {
		for r := 0; r < coldReps; r++ {
			_, stats, err := e.SearchDetailed(q, xrank.SearchOptions{TopM: topM, Algorithm: xrank.AlgoDIL})
			if err != nil {
				return nil, nil, fmt.Errorf("bench: cold %q: %w", q, err)
			}
			if stats.Cached {
				return nil, nil, fmt.Errorf("bench: cold rep of %q was served from a disabled cache", q)
			}
			coldWall += stats.WallTime
		}
	}
	e.ConfigureResultCache(cacheBytes)
	var hotWall time.Duration
	for _, q := range pool[:headQueries] {
		if _, _, err := e.SearchDetailed(q, xrank.SearchOptions{TopM: topM, Algorithm: xrank.AlgoDIL}); err != nil {
			return nil, nil, fmt.Errorf("bench: prime %q: %w", q, err)
		}
		for r := 0; r < hotReps; r++ {
			_, stats, err := e.SearchDetailed(q, xrank.SearchOptions{TopM: topM, Algorithm: xrank.AlgoDIL})
			if err != nil {
				return nil, nil, fmt.Errorf("bench: hot %q: %w", q, err)
			}
			if !stats.Cached {
				return nil, nil, fmt.Errorf("bench: hot rep of %q missed the cache", q)
			}
			hotWall += stats.WallTime
		}
	}
	rep.ColdMicros = coldWall.Microseconds() / (headQueries * coldReps)
	rep.HotMicros = hotWall.Microseconds() / (headQueries * hotReps)
	if rep.HotMicros < 1 {
		rep.HotMicros = 1
	}
	rep.HotSpeedup = float64(rep.ColdMicros) / float64(rep.HotMicros)
	t.Rows = append(t.Rows, []string{"hot/cold", fmt.Sprintf("%dq×%d", headQueries, hotReps),
		fmt.Sprintf("%.0fx", rep.HotSpeedup),
		fmt.Sprintf("%dµs", rep.HotMicros),
		fmt.Sprintf("%dµs", rep.ColdMicros)})
	return t, rep, nil
}
