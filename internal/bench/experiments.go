package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"xrank"
	"xrank/internal/datagen/dblp"
	"xrank/internal/elemrank"
	"xrank/internal/xmldoc"
)

// Engines bundles the two benchmark corpora.
type Engines struct {
	DBLP      *xrank.Engine
	DBLPInfo  *xrank.BuildInfo
	XMark     *xrank.Engine
	XMarkInfo *xrank.BuildInfo
}

// BuildAll builds both corpora under baseDir at the given scale.
func BuildAll(baseDir string, scale float64, seed int64) (*Engines, error) {
	es := &Engines{}
	var err error
	es.DBLP, es.DBLPInfo, err = BuildEngine(CorpusSpec{Name: "dblp", Scale: scale, Seed: seed}, baseDir+"/dblp")
	if err != nil {
		return nil, err
	}
	es.XMark, es.XMarkInfo, err = BuildEngine(CorpusSpec{Name: "xmark", Scale: scale, Seed: seed}, baseDir+"/xmark")
	if err != nil {
		es.DBLP.Close()
		return nil, err
	}
	return es, nil
}

// Close releases both engines.
func (es *Engines) Close() {
	if es.DBLP != nil {
		es.DBLP.Close()
	}
	if es.XMark != nil {
		es.XMark.Close()
	}
}

// E1ElemRank reproduces the Section 3.2 measurements: ElemRank
// convergence on both datasets (the paper reports convergence within 10
// and 5 minutes on 143MB/113MB; we report iterations and time at harness
// scale — the shape claim is that element-granularity ranking converges in
// tens of iterations and is an offline cost).
func E1ElemRank(es *Engines) *Table {
	t := &Table{
		Title:  "E1 (Section 3.2): ElemRank computation",
		Header: []string{"dataset", "docs", "elements", "links", "iterations", "converged", "time"},
		Comment: "Paper: d1=0.35 d2=0.25 d3=0.25, threshold 2e-5; DBLP(143MB) ~10min, XMark(113MB) ~5min.\n" +
			"Shape to match: converges in a few dozen power iterations, offline, independent of query latency.",
	}
	row := func(name string, e *xrank.Engine, info *xrank.BuildInfo) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", info.NumDocs),
			fmt.Sprintf("%d", info.NumElements),
			fmt.Sprintf("%d", info.ResolvedLinks),
			fmt.Sprintf("%d", info.ElemRankIterations),
			fmt.Sprintf("%v", info.ElemRankConverged),
			info.ElemRankTime.Round(1e6).String(),
		})
	}
	row("DBLP-shape", es.DBLP, es.DBLPInfo)
	row("XMark-shape", es.XMark, es.XMarkInfo)
	return t
}

// E2Space reproduces Table 1: inverted list and index sizes for the five
// approaches on both datasets.
func E2Space(es *Engines) *Table {
	t := &Table{
		Title:  "E2 (Table 1): space requirements",
		Header: []string{"approach", "DBLP inv.list", "DBLP index", "XMARK inv.list", "XMARK index"},
		Comment: "Paper shape: Naive lists ≈1.8× DIL on DBLP and ≈3.4× on XMark (deeper nesting ⇒ more ancestor\n" +
			"replication); RDIL list = DIL list; HDIL index tiny vs RDIL index (leaf level reused); HDIL list\n" +
			"slightly over DIL (rank-ordered prefix).",
	}
	d, x := es.DBLPInfo.Sizes, es.XMarkInfo.Sizes
	t.Rows = [][]string{
		{"Naive-ID", mb(d.NaiveIDList), "N/A", mb(x.NaiveIDList), "N/A"},
		{"Naive-Rank", mb(d.NaiveRankList), mb(d.NaiveIndex), mb(x.NaiveRankList), mb(x.NaiveIndex)},
		{"DIL", mb(d.DILList), "N/A", mb(x.DILList), "N/A"},
		{"RDIL", mb(d.RDILList), mb(d.RDILIndex), mb(x.RDILList), mb(x.RDILIndex)},
		{"HDIL", mb(d.DILList + d.HDILRank), mb(d.HDILIndex), mb(x.DILList + x.HDILRank), mb(x.HDILIndex)},
	}
	return t
}

// E2bCompression measures the prefix-compression extension: rebuild both
// corpora with CompressDewey and compare the Dewey-ordered list sizes.
// (An extension beyond the paper's Table 1; the paper's own space
// argument in Section 4.2.1 — Dewey components are small — is what makes
// suffix-only storage effective.)
func E2bCompression(baseDir string, scale float64, seed int64, es *Engines) (*Table, error) {
	t := &Table{
		Title:  "E2b (extension): prefix-compressed Dewey lists",
		Header: []string{"dataset", "DIL plain", "DIL compressed", "saving"},
		Comment: "Savings grow with nesting depth (longer shared prefixes): the deep XMark shape\n" +
			"compresses better than the shallow DBLP shape.",
	}
	if scale <= 0 {
		scale = 1.0
	}
	for _, spec := range []CorpusSpec{
		{Name: "dblp", Scale: scale, Seed: seed},
		{Name: "xmark", Scale: scale, Seed: seed},
	} {
		e := xrank.NewEngine(&xrank.Config{
			IndexDir:      fmt.Sprintf("%s/%s-comp", baseDir, spec.Name),
			SkipNaive:     true,
			CompressDewey: true,
		})
		if err := addCorpus(e, spec); err != nil {
			return nil, err
		}
		info, err := e.Build()
		if err != nil {
			return nil, err
		}
		plain := es.DBLPInfo.Sizes.DILList
		if spec.Name == "xmark" {
			plain = es.XMarkInfo.Sizes.DILList
		}
		comp := info.Sizes.DILList
		t.Rows = append(t.Rows, []string{
			spec.Name,
			mb(plain),
			mb(comp),
			fmt.Sprintf("%.1f%%", 100*(1-float64(comp)/float64(plain))),
		})
		e.Close()
	}
	return t, nil
}

var fig10Algos = []xrank.Algorithm{
	xrank.AlgoNaiveID, xrank.AlgoNaiveRank, xrank.AlgoDIL, xrank.AlgoRDIL, xrank.AlgoHDIL,
}

var fig11Algos = []xrank.Algorithm{xrank.AlgoDIL, xrank.AlgoRDIL, xrank.AlgoHDIL}

// E3Fig10 reproduces Figure 10: query time vs number of keywords under
// high keyword correlation, on the given engine.
func E3Fig10(e *xrank.Engine, corpus string, topM int) (*Table, error) {
	return correlationFigure(e, corpus, topM, true)
}

// E4Fig11 reproduces Figure 11: query time vs number of keywords under
// low keyword correlation.
func E4Fig11(e *xrank.Engine, corpus string, topM int) (*Table, error) {
	return correlationFigure(e, corpus, topM, false)
}

func correlationFigure(e *xrank.Engine, corpus string, topM int, high bool) (*Table, error) {
	algos := fig11Algos
	title := fmt.Sprintf("E4 (Figure 11): low keyword correlation, %s, top-%d", corpus, topM)
	comment := "Paper shape: RDIL degrades sharply with more keywords (unsuccessful random probes);\n" +
		"DIL stays near-flat (sequential scans); HDIL tracks DIL after switching."
	if high {
		algos = fig10Algos
		title = fmt.Sprintf("E3 (Figure 10): high keyword correlation, %s, top-%d", corpus, topM)
		comment = "Paper shape: RDIL ≈ HDIL ≪ DIL; Naive-ID worse than DIL and Naive-Rank worse than RDIL\n" +
			"(ancestor entries inflate every scan); HDIL occasionally slightly above both at k=2."
	}
	t := &Table{Title: title}
	t.Header = []string{"#keywords"}
	for _, a := range algos {
		t.Header = append(t.Header, a.String()+" sim", a.String()+" reads")
	}
	for k := 1; k <= markerWidth; k++ {
		var queries [][]string
		if high {
			queries = HighCorrQueries(k, perfGroups)
		} else {
			queries = LowCorrQueries(k, perfGroups)
		}
		row := []string{fmt.Sprintf("%d", k)}
		for _, a := range algos {
			m, err := MeasureQueries(e, a, queries, topM)
			if err != nil {
				return nil, err
			}
			label := ms(m.SimTime)
			if a == xrank.AlgoHDIL && m.Switched > 0 {
				label += fmt.Sprintf("(%d→DIL)", m.Switched)
			}
			row = append(row, label, fmt.Sprintf("%d", m.Reads))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Comment = comment
	return t, nil
}

// E5TopM reproduces the Section 5.4 top-m sweep (detailed in the paper's
// technical report [18]): DIL is flat in m, RDIL grows.
func E5TopM(e *xrank.Engine, corpus string) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("E5 (Section 5.4 / [18]): query time vs desired results m, %s, 2 keywords", corpus),
		Header: []string{"m", "DIL sim", "RDIL sim", "HDIL sim"},
		Comment: "Paper shape: DIL constant (always scans whole lists); RDIL/HDIL grow with m\n" +
			"(must scan deeper into the rank-ordered lists before the threshold is met).",
	}
	queries := HighCorrQueries(2, perfGroups)
	for _, m := range []int{5, 10, 20, 40, 80} {
		row := []string{fmt.Sprintf("%d", m)}
		for _, a := range fig11Algos {
			meas, err := MeasureQueries(e, a, queries, m)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(meas.SimTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E6Quality reproduces the Section 5.2 anecdotes. It returns one table
// per query, plus a verdict row describing whether the paper's observation
// holds.
func E6Quality(es *Engines) ([]*Table, error) {
	var out []*Table
	type anecdote struct {
		engine *xrank.Engine
		query  string
		check  func([]xrank.SearchResult) string
	}
	anecdotes := []anecdote{
		{es.DBLP, "gray", func(rs []xrank.SearchResult) string {
			authors, titles := 0, 0
			for _, r := range rs {
				switch r.Tag {
				case "author":
					authors++
				case "title":
					titles++
				}
			}
			return fmt.Sprintf("verdict: %d author elements (cited papers) and %d title elements ('gray codes') in top-%d — paper observed both kinds", authors, titles, len(rs))
		}},
		{es.DBLP, "author gray", func(rs []xrank.SearchResult) string {
			if len(rs) > 0 && rs[0].Tag == "author" {
				return "verdict: top result is an <author> element — title-only matches dropped, as the paper observed (two-dimensional proximity)"
			}
			return "verdict: UNEXPECTED — top result is not an author element"
		}},
		{es.XMark, "stained mirror", func(rs []xrank.SearchResult) string {
			if len(rs) > 0 && strings.Contains(rs[0].Path, "item") {
				return "verdict: top result is the heavily referenced item named 'stained' with 'mirror' in its description, as in the paper"
			}
			return "verdict: UNEXPECTED — planted item not on top"
		}},
	}
	for _, a := range anecdotes {
		rs, _, err := a.engine.SearchDetailed(a.query, xrank.SearchOptions{TopM: 8, Algorithm: xrank.AlgoDIL})
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:  fmt.Sprintf("E6 (Section 5.2): query %q", a.query),
			Header: []string{"rank", "score", "tag", "path", "doc"},
		}
		for i, r := range rs {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%.3g", r.Score),
				r.Tag,
				truncate(r.Path, 60),
				r.Doc,
			})
		}
		t.Comment = a.check(rs)
		out = append(out, t)
	}
	return out, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// E7AblationVariants compares the ElemRank formula refinements of
// Section 3.1 on a small DBLP-shaped corpus: overlap of each variant's
// top-20 elements with the final formula's, plus where ranks concentrate.
func E7AblationVariants(seed int64) (*Table, error) {
	docs := dblp.Generate(dblp.Params{Seed: seed, Docs: 8, PapersPerDoc: 60, PlantAnecdotes: true})
	c := xmldoc.NewCollection()
	for _, d := range docs {
		if _, err := c.AddXML(d.Name, strings.NewReader(d.XML), nil); err != nil {
			return nil, err
		}
	}
	g, _ := elemrank.BuildGraph(c)
	variants := []elemrank.Variant{
		elemrank.VariantFinal, elemrank.VariantPageRank,
		elemrank.VariantBidirectional, elemrank.VariantDiscriminated,
	}
	top := func(scores []float64, k int) []int {
		idx := make([]int, len(scores))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
		return idx[:k]
	}
	var finalTop map[int]bool
	t := &Table{
		Title:  "E7a (Section 3.1 ablation): ElemRank formula variants",
		Header: []string{"variant", "iterations", "top-20 overlap with final", "top-1 element"},
		Comment: "The refinement series changes which elements concentrate importance: the PageRank strawman\n" +
			"starves sub-elements of papers with many references; the final formula keeps them ranked.",
	}
	for _, v := range variants {
		p := elemrank.DefaultParams()
		p.Variant = v
		res, err := elemrank.Compute(g, p)
		if err != nil {
			return nil, err
		}
		t20 := top(res.Scores, 20)
		if v == elemrank.VariantFinal {
			finalTop = make(map[int]bool, 20)
			for _, i := range t20 {
				finalTop[i] = true
			}
		}
		overlap := 0
		for _, i := range t20 {
			if finalTop[i] {
				overlap++
			}
		}
		topEl := c.ElementByGlobalIndex(t20[0])
		t.Rows = append(t.Rows, []string{
			v.String(),
			fmt.Sprintf("%d", res.Iterations),
			fmt.Sprintf("%d/20", overlap),
			truncate(xmldoc.Path(topEl), 50),
		})
	}
	return t, nil
}

// E7AblationDecay measures how the decay parameter trades specificity:
// with decay=1 ancestors are not penalized, so shallow results climb the
// ranking; with small decay only deep, specific elements remain on top.
// Run on the deep XMark corpus with frequent vocabulary words, whose
// conjunctive co-occurrences exist at many depths.
func E7AblationDecay(e *xrank.Engine) (*Table, error) {
	t := &Table{
		Title:  "E7b: decay ablation (average result depth, top-10, frequent-word pairs, XMark-shape)",
		Header: []string{"decay", "avg depth", "results"},
		Comment: "Smaller decay penalizes unspecific (shallow) results more, pushing deep, specific\n" +
			"elements up — the result-specificity property of Section 2.3.1.",
	}
	var queries [][]string
	for i := 0; i < 6; i++ {
		queries = append(queries, []string{fmt.Sprintf("w%d", i), fmt.Sprintf("w%d", i+1)})
	}
	for _, decay := range []float64{1.0, 0.75, 0.5, 0.25} {
		var depthSum float64
		var n int
		for _, q := range queries {
			rs, _, err := e.SearchDetailed(strings.Join(q, " "), xrank.SearchOptions{
				TopM: 10, Algorithm: xrank.AlgoDIL, Decay: decay,
			})
			if err != nil {
				return nil, err
			}
			for _, r := range rs {
				depthSum += float64(strings.Count(r.Path, "/"))
				n++
			}
		}
		if n == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", decay),
			fmt.Sprintf("%.2f", depthSum/float64(n)),
			fmt.Sprintf("%d", n),
		})
	}
	return t, nil
}

// E8Crossover sweeps the inverted-list length (corpus blocks) at fixed
// k=2, m=10, high correlation, exposing the regime boundary the paper's
// Section 4.3/4.4 argument rests on: DIL's sequential scan grows linearly
// with list length while RDIL's probe cost is roughly constant, so RDIL
// overtakes DIL once lists span enough pages.
func E8Crossover(baseDir string, blockCounts []int, seed int64) (*Table, error) {
	t := &Table{
		Title:  "E8: DIL/RDIL crossover vs inverted-list length (2 keywords, high correlation, top-10)",
		Header: []string{"blocks", "list entries", "list pages", "DIL sim", "RDIL sim", "HDIL sim", "DIL reads", "RDIL reads"},
		Comment: "Paper claim (Section 4.3): \"If inverted lists are long ... even the cost of a single scan\n" +
			"can be expensive\" — RDIL wins above the crossover, DIL below it. HDIL should track the winner.",
	}
	for _, blocks := range blockCounts {
		dir := fmt.Sprintf("%s/perf%d", baseDir, blocks)
		e, _, err := BuildPerfEngine(dir, blocks, seed)
		if err != nil {
			return nil, err
		}
		queries := HighCorrQueries(2, perfGroups)
		var meas [3]Measurement
		for i, a := range []xrank.Algorithm{xrank.AlgoDIL, xrank.AlgoRDIL, xrank.AlgoHDIL} {
			m, err := MeasureQueries(e, a, queries, 10)
			if err != nil {
				e.Close()
				return nil, err
			}
			meas[i] = m
		}
		e.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", blocks),
			fmt.Sprintf("%d", blocks/perfGroups),
			fmt.Sprintf("%d", meas[0].Reads), // DIL reads ≈ total list pages
			ms(meas[0].SimTime),
			ms(meas[1].SimTime),
			ms(meas[2].SimTime),
			fmt.Sprintf("%d", meas[0].Reads),
			fmt.Sprintf("%d", meas[1].Reads),
		})
	}
	return t, nil
}

// E9WarmCache contrasts cold- and warm-cache query costs (the paper's
// main results are cold-cache; warm results are in its technical report
// [18]): with the buffer pools populated, every algorithm collapses to
// near-CPU cost and the ordering differences vanish.
func E9WarmCache(e *xrank.Engine) (*Table, error) {
	t := &Table{
		Title:  "E9 ([18]): cold vs warm cache, 2 keywords, high correlation, top-10",
		Header: []string{"algorithm", "cold sim", "cold reads", "warm sim", "warm device reads"},
		Comment: "Warm runs repeat the identical query without resetting the buffer pools. The ranked\n" +
			"strategies' few-dozen-page working sets fit in the pool and drop to zero device reads;\n" +
			"a DIL scan larger than the pool stays disk-bound even when warm.",
	}
	queries := HighCorrQueries(2, perfGroups)
	for _, a := range fig11Algos {
		cold, err := MeasureQueries(e, a, queries, 10)
		if err != nil {
			return nil, err
		}
		// Warm: run the same queries again without ColdCache.
		var warmSim time.Duration
		var warmReads int64
		for _, q := range queries {
			// Prime.
			if _, _, err := e.SearchDetailed(strings.Join(q, " "), xrank.SearchOptions{TopM: 10, Algorithm: a}); err != nil {
				return nil, err
			}
			_, stats, err := e.SearchDetailed(strings.Join(q, " "), xrank.SearchOptions{TopM: 10, Algorithm: a})
			if err != nil {
				return nil, err
			}
			warmSim += stats.SimulatedTime
			warmReads += stats.IO.Reads
		}
		n := time.Duration(len(queries))
		t.Rows = append(t.Rows, []string{
			a.String(),
			ms(cold.SimTime),
			fmt.Sprintf("%d", cold.Reads),
			ms(warmSim / n),
			fmt.Sprintf("%d", warmReads/int64(len(queries))),
		})
	}
	return t, nil
}

// E7AblationDs varies the navigation probabilities d1/d2/d3, checking the
// paper's Section 3.2 claim that they shift relative weighting but do not
// materially affect convergence time.
func E7AblationDs(seed int64) (*Table, error) {
	docs := dblp.Generate(dblp.Params{Seed: seed, Docs: 8, PapersPerDoc: 60})
	c := xmldoc.NewCollection()
	for _, d := range docs {
		if _, err := c.AddXML(d.Name, strings.NewReader(d.XML), nil); err != nil {
			return nil, err
		}
	}
	g, _ := elemrank.BuildGraph(c)
	t := &Table{
		Title:  "E7d (Section 3.2): ElemRank convergence vs d1/d2/d3",
		Header: []string{"d1", "d2", "d3", "iterations", "converged"},
		Comment: "Paper: \"while it changes the relative weighting of hyperlinks and containment edges,\n" +
			"it does not have a significant effect on algorithm convergence time.\"",
	}
	for _, ds := range [][3]float64{
		{0.35, 0.25, 0.25}, // paper setting
		{0.55, 0.15, 0.15},
		{0.15, 0.45, 0.25},
		{0.15, 0.25, 0.45},
		{0.05, 0.45, 0.45},
	} {
		p := elemrank.DefaultParams()
		p.D1, p.D2, p.D3 = ds[0], ds[1], ds[2]
		res, err := elemrank.Compute(g, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", ds[0]), fmt.Sprintf("%.2f", ds[1]), fmt.Sprintf("%.2f", ds[2]),
			fmt.Sprintf("%d", res.Iterations), fmt.Sprintf("%v", res.Converged),
		})
	}
	return t, nil
}

// E7AblationProximity measures how often disabling the proximity factor
// changes the top result.
func E7AblationProximity(e *xrank.Engine) (*Table, error) {
	t := &Table{
		Title:  "E7c: proximity ablation (top-1 changes when the proximity factor is disabled)",
		Header: []string{"query set", "queries", "top-1 changed"},
	}
	sets := map[string][][]string{
		"high-corr 2kw": HighCorrQueries(2, markerGroups),
		"low-corr 2kw":  LowCorrQueries(2, markerGroups),
	}
	names := make([]string, 0, len(sets))
	for n := range sets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		queries := sets[name]
		changed := 0
		for _, q := range queries {
			qs := strings.Join(q, " ")
			a, _, err := e.SearchDetailed(qs, xrank.SearchOptions{TopM: 1, Algorithm: xrank.AlgoDIL})
			if err != nil {
				return nil, err
			}
			b, _, err := e.SearchDetailed(qs, xrank.SearchOptions{TopM: 1, Algorithm: xrank.AlgoDIL, ProximityOff: true})
			if err != nil {
				return nil, err
			}
			if len(a) > 0 && len(b) > 0 && a[0].DeweyID != b[0].DeweyID {
				changed++
			}
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%d", len(queries)), fmt.Sprintf("%d", changed)})
	}
	return t, nil
}
