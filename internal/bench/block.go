package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"xrank"
	"xrank/internal/datagen/perfgen"
)

// The block-pruning experiment (E13, an extension beyond the paper): the
// same long-list performance corpus indexed twice — once with the v1
// per-entry postings and once with the v2 block postings — and the same
// ranked queries run against both. The block format's skip indexes let
// RDIL/HDIL abandon whole blocks after the threshold-algorithm stop and
// let Dewey probes and DIL's merge jump over block ranges that cannot
// matter, so the v2 arm should decode strictly fewer blocks and answer
// faster while returning bit-identical results (the differential harness
// guards the identity; this experiment measures the price of v1 and the
// win of v2). High- and low-correlation query sets are reported
// separately: on low correlation HDIL switches to DIL in both arms, and
// mixing the two would hide the threshold-algorithm improvement the
// experiment exists to show. The headline metric is wall-clock p50: the
// block format's win is mostly CPU — in-memory binary search over skip
// refs replaces the v1 B+-tree probe walks, and skipped blocks are
// never entry-decoded — which the page-count-driven simulated disk
// model barely sees (both formats touch a similar number of pages; the
// deterministic sim figures ride along as the noise-free cross-check).
// Results are serialized to BENCH_block.json for CI trend tracking.

// BlockRun is the v1-vs-v2 measurement for one algorithm, correlation
// regime and top-m.
type BlockRun struct {
	Algo string `json:"algo"`
	Corr string `json:"corr"` // "hicorr" or "locorr"
	TopM int    `json:"top_m"`

	// Median simulated cold-cache disk time across the query set
	// (deterministic: same corpus + seed → same numbers).
	V1SimP50Micros int64 `json:"v1_sim_p50_micros"`
	V2SimP50Micros int64 `json:"v2_sim_p50_micros"`
	// SimSpeedup is v1/v2 on that metric (>1 means the block format won).
	SimSpeedup float64 `json:"sim_speedup"`

	// Wall-clock p50/p99 across every measured rep, machine-dependent.
	V1WallP50Micros int64   `json:"v1_wall_p50_micros"`
	V1WallP99Micros int64   `json:"v1_wall_p99_micros"`
	V2WallP50Micros int64   `json:"v2_wall_p50_micros"`
	V2WallP99Micros int64   `json:"v2_wall_p99_micros"`
	WallSpeedup     float64 `json:"wall_speedup"`

	// Block traffic of the v2 arm (the v1 arm has no blocks to count).
	BlocksDecoded int64   `json:"blocks_decoded"`
	BlocksSkipped int64   `json:"blocks_skipped"`
	SkipPct       float64 `json:"skip_pct"` // skipped / (decoded + skipped)
}

// BlockReport is the JSON artifact (BENCH_block.json) of the experiment.
type BlockReport struct {
	Corpus  string     `json:"corpus"`
	Blocks  int        `json:"blocks"` // perfgen corpus size parameter
	Workers int        `json:"workers"`
	Queries int        `json:"queries"` // per correlation regime
	Reps    int        `json:"reps"`
	Runs    []BlockRun `json:"runs"`
	// RDILTop10Speedup and HDILTop10Speedup surface the headline numbers:
	// the wall-clock p50 speedup of the block format on the threshold
	// algorithms, high correlation, top-10.
	RDILTop10Speedup float64 `json:"rdil_top10_speedup"`
	HDILTop10Speedup float64 `json:"hdil_top10_speedup"`
}

// WriteJSON writes the report to path, indented.
func (r *BlockReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// blockBenchReps is how many measured repetitions E13 runs per query;
// the wall-clock quantiles pool all of them.
const blockBenchReps = 5

// quantileMicros returns the q-th quantile of the samples, in
// microseconds (nearest-rank on the sorted slice).
func quantileMicros(samples []time.Duration, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i].Microseconds()
}

// E13BlockPruning builds the perfgen corpus with and without block
// postings and measures RDIL/HDIL/DIL at top-10 and top-100, high and
// low correlation, on both.
func E13BlockPruning(baseDir string, blocks int, seed int64) (*Table, *BlockReport, error) {
	docs := perfgen.Generate(perfgen.Params{Seed: seed, Blocks: blocks, Groups: perfGroups, Width: markerWidth})
	build := func(dir string, blockPostings bool) (*xrank.Engine, error) {
		e := xrank.NewEngine(&xrank.Config{IndexDir: dir, BlockPostings: blockPostings, SkipNaive: true})
		for _, d := range docs {
			if err := e.AddXML(d.Name, strings.NewReader(d.XML)); err != nil {
				e.Close()
				return nil, err
			}
		}
		if _, err := e.Build(); err != nil {
			e.Close()
			return nil, err
		}
		return e, nil
	}
	v1, err := build(baseDir+"/v1", false)
	if err != nil {
		return nil, nil, err
	}
	defer v1.Close()
	v2, err := build(baseDir+"/v2", true)
	if err != nil {
		return nil, nil, err
	}
	defer v2.Close()

	querySets := []struct {
		corr    string
		queries [][]string
	}{
		{"hicorr", HighCorrQueries(2, perfGroups)},
		{"locorr", LowCorrQueries(2, perfGroups)},
	}
	rep := &BlockReport{
		Corpus:  "perfgen",
		Blocks:  blocks,
		Workers: runtime.GOMAXPROCS(0),
		Queries: perfGroups,
		Reps:    blockBenchReps,
	}
	t := &Table{
		Title:  fmt.Sprintf("E13 (extension): block-max pruning, perf corpus ×%d blocks, 2-keyword queries", blocks),
		Header: []string{"algo", "corr", "top-m", "v1 wall p50", "v2 wall p50", "speedup", "v1 sim p50", "v2 sim p50", "blocks dec", "blocks skip", "skip%"},
		Comment: "Same corpus, same queries, bit-identical results on both arms (TestBlockPostingsDifferential\n" +
			"guards that). The v2 arm's skip refs replace the v1 B+-tree probe walks with an in-memory\n" +
			"binary search and let the threshold algorithms drop every unread block at the stopping point,\n" +
			"so decode work and wall time fall on the ranked strategies; on uncorrelated keywords HDIL\n" +
			"switches to DIL in both arms and the formats tie. Sim = the page-count-driven cold-cache\n" +
			"disk model (deterministic cross-check; it barely moves because both formats touch a similar\n" +
			"number of pages — the win is CPU).",
	}

	// measure runs every query reps times against e and returns the
	// simulated-time median, wall p50/p99, and summed block traffic.
	measure := func(e *xrank.Engine, queries [][]string, algo xrank.Algorithm, topM int) (simP50, wallP50, wallP99 int64, dec, skip int64, err error) {
		// One unmeasured warmup pass (page cache, allocator) per cell.
		for _, q := range queries {
			if _, _, err = e.SearchDetailed(strings.Join(q, " "), xrank.SearchOptions{
				TopM: topM, Algorithm: algo, ColdCache: true,
			}); err != nil {
				return
			}
		}
		runtime.GC()
		var sims, walls []time.Duration
		for _, q := range queries {
			for r := 0; r < blockBenchReps; r++ {
				var stats *xrank.QueryStats
				if _, stats, err = e.SearchDetailed(strings.Join(q, " "), xrank.SearchOptions{
					TopM: topM, Algorithm: algo, ColdCache: true,
				}); err != nil {
					return
				}
				walls = append(walls, stats.WallTime)
				if r == 0 {
					// Deterministic per query: one sample is the value.
					sims = append(sims, stats.SimulatedTime)
					dec += stats.IO.BlocksDecoded
					skip += stats.IO.BlocksSkipped
				}
			}
		}
		simP50 = quantileMicros(sims, 0.5)
		wallP50 = quantileMicros(walls, 0.5)
		wallP99 = quantileMicros(walls, 0.99)
		return
	}

	for _, algo := range []xrank.Algorithm{xrank.AlgoRDIL, xrank.AlgoHDIL, xrank.AlgoDIL} {
		for _, qs := range querySets {
			for _, topM := range []int{10, 100} {
				sim1, wall1p50, wall1p99, d1, s1, err := measure(v1, qs.queries, algo, topM)
				if err != nil {
					return nil, nil, err
				}
				if d1 != 0 || s1 != 0 {
					return nil, nil, fmt.Errorf("bench: v1 arm reported block traffic (%d decoded, %d skipped)", d1, s1)
				}
				sim2, wall2p50, wall2p99, dec, skip, err := measure(v2, qs.queries, algo, topM)
				if err != nil {
					return nil, nil, err
				}
				run := BlockRun{
					Algo: algo.String(), Corr: qs.corr, TopM: topM,
					V1SimP50Micros: sim1, V2SimP50Micros: sim2,
					V1WallP50Micros: wall1p50, V1WallP99Micros: wall1p99,
					V2WallP50Micros: wall2p50, V2WallP99Micros: wall2p99,
					BlocksDecoded: dec, BlocksSkipped: skip,
				}
				if sim2 > 0 {
					run.SimSpeedup = float64(sim1) / float64(sim2)
				}
				if wall2p50 > 0 {
					run.WallSpeedup = float64(wall1p50) / float64(wall2p50)
				}
				if tot := dec + skip; tot > 0 {
					run.SkipPct = 100 * float64(skip) / float64(tot)
				}
				rep.Runs = append(rep.Runs, run)
				if topM == 10 && qs.corr == "hicorr" {
					switch algo {
					case xrank.AlgoRDIL:
						rep.RDILTop10Speedup = run.WallSpeedup
					case xrank.AlgoHDIL:
						rep.HDILTop10Speedup = run.WallSpeedup
					}
				}
				t.Rows = append(t.Rows, []string{
					algo.String(),
					qs.corr,
					fmt.Sprintf("%d", topM),
					us(run.V1WallP50Micros), us(run.V2WallP50Micros),
					fmt.Sprintf("%.2fx", run.WallSpeedup),
					us(run.V1SimP50Micros), us(run.V2SimP50Micros),
					fmt.Sprintf("%d", run.BlocksDecoded),
					fmt.Sprintf("%d", run.BlocksSkipped),
					fmt.Sprintf("%.1f%%", run.SkipPct),
				})
			}
		}
	}
	return t, rep, nil
}

func us(micros int64) string {
	return ms(time.Duration(micros) * time.Microsecond)
}
