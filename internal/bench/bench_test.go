package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"xrank"
)

// The bench package's own tests run everything at miniature scale — they
// assert that the harness produces the right table structure and that the
// robust qualitative shapes hold even when tiny. The recorded large-scale
// numbers live in EXPERIMENTS.md.

func buildSmall(t *testing.T) *Engines {
	t.Helper()
	es, err := BuildAll(t.TempDir(), 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(es.Close)
	return es
}

func TestE1E2Tables(t *testing.T) {
	es := buildSmall(t)
	t1 := E1ElemRank(es)
	if len(t1.Rows) != 2 {
		t.Fatalf("E1 rows = %d", len(t1.Rows))
	}
	for _, r := range t1.Rows {
		if r[5] != "true" {
			t.Errorf("ElemRank did not converge: %v", r)
		}
	}
	t2 := E2Space(es)
	if len(t2.Rows) != 5 {
		t.Fatalf("E2 rows = %d", len(t2.Rows))
	}
	var buf bytes.Buffer
	t2.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Naive-ID", "DIL", "RDIL", "HDIL", "MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestPerfFiguresShape(t *testing.T) {
	if testing.Short() {
		t.Skip("perf corpus build is slow")
	}
	dir := t.TempDir()
	e, info, err := BuildPerfEngine(dir+"/perf", 12000, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if info.NumElements < 20000 {
		t.Fatalf("perf corpus too small: %+v", info)
	}
	f10, err := E3Fig10(e, "test", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Rows) != 4 {
		t.Fatalf("fig10 rows = %d", len(f10.Rows))
	}
	f11, err := E4Fig11(e, "test", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11.Rows) != 4 {
		t.Fatalf("fig11 rows = %d", len(f11.Rows))
	}
	top, err := E5TopM(e, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Rows) != 5 {
		t.Fatalf("E5 rows = %d", len(top.Rows))
	}
	// Robust shape at any scale: the ranked strategies read far fewer
	// pages than DIL on correlated keywords...
	dil, err := MeasureQueries(e, xrank.AlgoDIL, HighCorrQueries(2, perfGroups), 10)
	if err != nil {
		t.Fatal(err)
	}
	rdil, err := MeasureQueries(e, xrank.AlgoRDIL, HighCorrQueries(2, perfGroups), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rdil.Reads >= dil.Reads {
		t.Errorf("high correlation: RDIL reads (%d) should be below DIL reads (%d)", rdil.Reads, dil.Reads)
	}
	// ...and far more on uncorrelated ones.
	dilLo, err := MeasureQueries(e, xrank.AlgoDIL, LowCorrQueries(2, perfGroups), 10)
	if err != nil {
		t.Fatal(err)
	}
	rdilLo, err := MeasureQueries(e, xrank.AlgoRDIL, LowCorrQueries(2, perfGroups), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rdilLo.Reads <= dilLo.Reads {
		t.Errorf("low correlation: RDIL reads (%d) should exceed DIL reads (%d)", rdilLo.Reads, dilLo.Reads)
	}
}

func TestQualityAnecdotes(t *testing.T) {
	es := buildSmall(t)
	tables, err := E6Quality(es)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("E6 tables = %d", len(tables))
	}
	for _, tb := range tables {
		if strings.Contains(tb.Comment, "UNEXPECTED") {
			t.Errorf("%s: %s", tb.Title, tb.Comment)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s returned no results", tb.Title)
		}
	}
}

func TestAblations(t *testing.T) {
	es := buildSmall(t)
	tv, err := E7AblationVariants(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.Rows) != 4 {
		t.Fatalf("E7a rows = %d", len(tv.Rows))
	}
	// The final variant trivially overlaps itself fully.
	if tv.Rows[0][2] != "20/20" {
		t.Errorf("final variant self-overlap = %s", tv.Rows[0][2])
	}
	td, err := E7AblationDecay(es.XMark)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Rows) != 4 {
		t.Fatalf("E7b rows = %d", len(td.Rows))
	}
	tp, err := E7AblationProximity(es.DBLP)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Rows) != 2 {
		t.Fatalf("E7c rows = %d", len(tp.Rows))
	}
}

func TestE2bCompression(t *testing.T) {
	es := buildSmall(t)
	tb, err := E2bCompression(t.TempDir(), 0.15, 7, es)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("E2b rows = %d", len(tb.Rows))
	}
	// XMark (deep) must compress at least as well as DBLP (shallow).
	var save [2]float64
	for i, r := range tb.Rows {
		fmt.Sscanf(r[3], "%f%%", &save[i])
	}
	if save[1] < save[0] {
		t.Errorf("deep corpus should compress better: dblp %.1f%% vs xmark %.1f%%", save[0], save[1])
	}
}

func TestDsAblation(t *testing.T) {
	tb, err := E7AblationDs(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("E7d rows = %d", len(tb.Rows))
	}
	// Convergence must hold for every setting, and iteration counts must
	// stay in the same ballpark (the paper's claim).
	var lo, hi int
	for i, r := range tb.Rows {
		if r[4] != "true" {
			t.Errorf("setting %v did not converge", r)
		}
		var it int
		fmt.Sscanf(r[3], "%d", &it)
		if i == 0 || it < lo {
			lo = it
		}
		if it > hi {
			hi = it
		}
	}
	if hi > 6*lo {
		t.Errorf("convergence varies too widely: %d..%d iterations", lo, hi)
	}
}

func TestWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("perf corpus build is slow")
	}
	dir := t.TempDir()
	e, _, err := BuildPerfEngine(dir+"/perf", 9000, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tb, err := E9WarmCache(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("E9 rows = %d", len(tb.Rows))
	}
	// Warm device reads must be (near) zero for every algorithm.
	for _, r := range tb.Rows {
		var warm int64
		fmt.Sscanf(r[4], "%d", &warm)
		var cold int64
		fmt.Sscanf(r[2], "%d", &cold)
		if warm > cold/4 {
			t.Errorf("%s: warm reads %d not far below cold %d", r[0], warm, cold)
		}
	}
}

func TestShardExperimentShape(t *testing.T) {
	dir := t.TempDir()
	tb, rep, err := E10Shard(dir, []int{1, 2, 4}, 4, 0.08, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 || len(rep.Runs) != 3 {
		t.Fatalf("E10 rows = %d, runs = %d", len(tb.Rows), len(rep.Runs))
	}
	base := rep.Runs[0]
	if base.Shards != 1 || base.AvgLatencyMicros <= 0 || base.AvgResults == 0 {
		t.Fatalf("bad baseline run: %+v", base)
	}
	// Shard pruning may only shrink the page accesses; growth is bounded
	// by boundary rounding (each shard's list is a whole number of pages,
	// at most keywords extra partial pages per shard).
	for _, r := range rep.Runs[1:] {
		if r.AvgReads > base.AvgReads+int64(rep.Keywords*r.Shards) {
			t.Errorf("%d shards: %d avg reads, baseline %d", r.Shards, r.AvgReads, base.AvgReads)
		}
	}
	// The JSON artifact must round-trip.
	path := dir + "/BENCH_shard.json"
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Corpus != "xmark" || len(back.Runs) != 3 {
		t.Errorf("round-tripped report = %+v", back)
	}
}

func TestQueryGenerators(t *testing.T) {
	qs := HighCorrQueries(3, 2)
	if len(qs) != 2 || len(qs[0]) != 3 || qs[0][0] != "hicorr0k0" {
		t.Errorf("HighCorrQueries = %v", qs)
	}
	lo := LowCorrQueries(9, 1) // k clamped to markerWidth
	if len(lo[0]) != markerWidth {
		t.Errorf("k not clamped: %v", lo)
	}
}
