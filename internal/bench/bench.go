// Package bench is the experiment harness that regenerates the paper's
// evaluation artifacts (Guo et al., SIGMOD 2003, Sections 3.2 and 5):
// Table 1 (space), Figure 10 (high keyword correlation), Figure 11 (low
// correlation), the ElemRank convergence measurements, the top-m sweep
// described in Section 5.4, the Section 5.2 ranking-quality anecdotes, and
// the ablation of the Section 3.1 formula refinements. The experiment
// index lives in DESIGN.md; cmd/xrank-bench and the root bench_test.go
// both drive this package.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"xrank"
	"xrank/internal/datagen/dblp"
	"xrank/internal/datagen/perfgen"
	"xrank/internal/datagen/xmark"
)

// markerGroups is how many high/low correlation marker groups the corpora
// plant; queries draw from them.
const markerGroups = 6

// markerWidth is keywords per marker group (supports up to 4-keyword
// queries, the Figure 10/11 x-axis).
const markerWidth = 4

// CorpusSpec describes one benchmark corpus.
type CorpusSpec struct {
	Name  string  // "dblp" or "xmark"
	Scale float64 // 1.0 = harness default size (a laptop-scale stand-in for the paper's 143MB/113MB datasets)
	Seed  int64
}

// BuildEngine generates the corpus and builds a fully indexed engine in
// dir. The DBLP corpus is many shallow hyperlinked documents; the XMark
// corpus is one deep document (Section 5.1's reasons for choosing them).
func BuildEngine(spec CorpusSpec, dir string) (*xrank.Engine, *xrank.BuildInfo, error) {
	e := xrank.NewEngine(&xrank.Config{IndexDir: dir})
	if err := addCorpus(e, spec); err != nil {
		return nil, nil, err
	}
	info, err := e.Build()
	if err != nil {
		return nil, nil, err
	}
	return e, info, nil
}

// addCorpus generates spec's corpus and feeds it into e.
func addCorpus(e *xrank.Engine, spec CorpusSpec) error {
	if spec.Scale <= 0 {
		spec.Scale = 1.0
	}
	switch spec.Name {
	case "dblp":
		docs := dblp.Generate(dblp.Params{
			Seed:              spec.Seed,
			Docs:              int(30 * spec.Scale),
			PapersPerDoc:      int(120 * spec.Scale),
			CorrelationGroups: markerGroups,
			CorrelationWidth:  markerWidth,
			PlantRate:         0.25,
			PlantAnecdotes:    true,
		})
		for _, d := range docs {
			if err := e.AddXML(d.Name, strings.NewReader(d.XML)); err != nil {
				return err
			}
		}
	case "xmark":
		doc := xmark.Generate(xmark.Params{
			Seed:              spec.Seed,
			Items:             int(1200 * spec.Scale),
			People:            int(700 * spec.Scale),
			OpenAuctions:      int(800 * spec.Scale),
			ClosedAuctions:    int(500 * spec.Scale),
			Categories:        int(60 * spec.Scale),
			CorrelationGroups: markerGroups,
			CorrelationWidth:  markerWidth,
			PlantRate:         0.25,
			PlantAnecdotes:    true,
		})
		if err := e.AddXML("xmark", strings.NewReader(doc)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("bench: unknown corpus %q", spec.Name)
	}
	return nil
}

// perfGroups is the marker-group count of the performance corpus.
const perfGroups = 3

// BuildPerfEngine generates the long-list performance corpus (see
// perfgen) and builds a fully indexed engine in dir. blocks controls the
// marker inverted-list lengths: each high-correlation keyword occurs in
// blocks/3 elements, each low-correlation keyword in blocks/4.
func BuildPerfEngine(dir string, blocks int, seed int64) (*xrank.Engine, *xrank.BuildInfo, error) {
	docs := perfgen.Generate(perfgen.Params{Seed: seed, Blocks: blocks, Groups: perfGroups, Width: markerWidth})
	e := xrank.NewEngine(&xrank.Config{IndexDir: dir})
	for _, d := range docs {
		if err := e.AddXML(d.Name, strings.NewReader(d.XML)); err != nil {
			return nil, nil, err
		}
	}
	info, err := e.Build()
	if err != nil {
		return nil, nil, err
	}
	return e, info, nil
}

// HighCorrQueries returns count queries of k keywords each, drawn from the
// planted high-correlation marker groups (keywords that co-occur in the
// same element).
func HighCorrQueries(k, count int) [][]string {
	return markerQueries("hicorr", k, count)
}

// LowCorrQueries returns count queries of k keywords each, drawn from the
// low-correlation groups (each keyword frequent, but co-occurring only at
// coarse ancestors).
func LowCorrQueries(k, count int) [][]string {
	return markerQueries("locorr", k, count)
}

func markerQueries(prefix string, k, count int) [][]string {
	if k > markerWidth {
		k = markerWidth
	}
	out := make([][]string, 0, count)
	for g := 0; g < count; g++ {
		q := make([]string, k)
		for i := 0; i < k; i++ {
			q[i] = fmt.Sprintf("%s%dk%d", prefix, g, i)
		}
		out = append(out, q)
	}
	return out
}

// Measurement is the averaged cost of a query batch under one algorithm.
type Measurement struct {
	Algo      xrank.Algorithm
	Keywords  int
	Queries   int
	SimTime   time.Duration // avg simulated cold-cache disk time (primary metric)
	WallTime  time.Duration // avg wall time on this machine
	Reads     int64         // avg device page reads
	SeqReads  int64
	RandReads int64
	Results   float64 // avg result count
	Switched  int     // HDIL: how many queries switched to DIL
}

// MeasureQueries runs each query cold-cache under algo and averages.
func MeasureQueries(e *xrank.Engine, algo xrank.Algorithm, queries [][]string, topM int) (Measurement, error) {
	m := Measurement{Algo: algo, Queries: len(queries)}
	if len(queries) == 0 {
		return m, fmt.Errorf("bench: no queries")
	}
	m.Keywords = len(queries[0])
	var simSum, wallSum time.Duration
	var reads, seq, rnd int64
	var results float64
	for _, q := range queries {
		rs, stats, err := e.SearchDetailed(strings.Join(q, " "), xrank.SearchOptions{
			TopM:      topM,
			Algorithm: algo,
			ColdCache: true,
		})
		if err != nil {
			return m, fmt.Errorf("bench: %v %v: %w", algo, q, err)
		}
		simSum += stats.SimulatedTime
		wallSum += stats.WallTime
		reads += stats.IO.Reads
		seq += stats.IO.SeqReads
		rnd += stats.IO.RandReads
		results += float64(len(rs))
		if stats.SwitchedToDIL {
			m.Switched++
		}
	}
	n := time.Duration(len(queries))
	m.SimTime = simSum / n
	m.WallTime = wallSum / n
	m.Reads = reads / int64(len(queries))
	m.SeqReads = seq / int64(len(queries))
	m.RandReads = rnd / int64(len(queries))
	m.Results = results / float64(len(queries))
	return m, nil
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Comment string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Comment != "" {
		fmt.Fprintf(w, "%s\n", t.Comment)
	}
}

func mb(n int64) string { return fmt.Sprintf("%.2fMB", float64(n)/(1<<20)) }

func ms(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000) }
