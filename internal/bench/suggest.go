package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"xrank"
	"xrank/internal/ingest"
	"xrank/internal/loadgen"
	"xrank/internal/suggest"
)

// The autosuggest experiment (E15, an extension beyond the paper): the
// suggest subsystem answers prefix completions by best-first search
// over per-segment radix tries with subtree-max summaries, so latency
// should grow far slower than the dictionary — the pruning bound, not
// the term count, is what a keystroke pays for. This experiment sweeps
// the dictionary size with synthetic Zipf-weighted terms, measuring
// completion p50/p99, nodes visited, and trie memory (ApproxBytes);
// then it ingests the committed Wikipedia-abstract fixture through the
// streaming parser into a real engine and prices the same completion
// workload over an organic dictionary. Results go to BENCH_suggest.json
// for CI trend tracking (non-gating: wall times on shared runners are
// noise; the artifact history shows latency and memory drift).

// SuggestSizeRun is the measurement at one dictionary size.
type SuggestSizeRun struct {
	Terms        int     `json:"terms"`
	TrieBytes    int64   `json:"trie_bytes"`
	BytesPerTerm float64 `json:"bytes_per_term"`
	Queries      int     `json:"queries"`
	P50Micros    int64   `json:"p50_micros"`
	P99Micros    int64   `json:"p99_micros"`
	AvgNodes     float64 `json:"avg_nodes_visited"`
}

// SuggestBenchReport is the JSON artifact (BENCH_suggest.json) of E15.
type SuggestBenchReport struct {
	Seed int64            `json:"seed"`
	K    int              `json:"k"`
	Runs []SuggestSizeRun `json:"runs"`

	// The fixture section: the committed abstracts dump streamed into an
	// engine, then completed against.
	FixturePath         string  `json:"fixture_path,omitempty"`
	FixtureDocs         int     `json:"fixture_docs,omitempty"`
	FixtureIngestMillis int64   `json:"fixture_ingest_millis,omitempty"`
	FixtureDocsPerSec   float64 `json:"fixture_docs_per_sec,omitempty"`
	FixtureTerms        int     `json:"fixture_terms,omitempty"`
	FixtureQueries      int     `json:"fixture_queries,omitempty"`
	FixtureP50Micros    int64   `json:"fixture_p50_micros,omitempty"`
	FixtureP99Micros    int64   `json:"fixture_p99_micros,omitempty"`
}

// WriteJSON writes the report to path, indented.
func (r *SuggestBenchReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// suggestSyllables compose synthetic dictionary terms: base-16 digits
// of the term index map to syllables, so nearby indexes share prefixes
// the way organic vocabularies do (the trie actually compresses, and
// prefix queries have real fan-out to prune).
var suggestSyllables = [16]string{
	"ba", "re", "ko", "li", "ma", "nu", "so", "ti",
	"va", "de", "go", "pi", "ra", "te", "mo", "shi",
}

func syntheticTerm(i int) string {
	var b []byte
	for {
		b = append(b, suggestSyllables[i&15]...)
		i >>= 4
		if i == 0 {
			return string(b)
		}
	}
}

// buildSyntheticTrie builds a trie over n distinct terms with
// Zipf-shaped weights, returning the trie and the term list.
func buildSyntheticTrie(n int) (*suggest.Trie, []string) {
	terms := make([]string, n)
	b := suggest.NewBuilder()
	for i := 0; i < n; i++ {
		terms[i] = syntheticTerm(i)
		b.Add(terms[i], 1/float64(i+1))
	}
	return b.Build(), terms
}

// suggestPrefixWorkload samples nq terms and emits every proper prefix
// of each — the request stream one user typing those terms produces.
func suggestPrefixWorkload(rng *rand.Rand, terms []string, nq int) []string {
	var qs []string
	for i := 0; i < nq; i++ {
		t := terms[rng.Intn(len(terms))]
		for cut := 1; cut <= len(t); cut++ {
			qs = append(qs, t[:cut])
		}
	}
	return qs
}

// measureTrieWorkload times one TopK call per prefix against the tries.
func measureTrieWorkload(tries []*suggest.Trie, qs []string, k int) (p50, p99 int64, avgNodes float64) {
	lats := make([]int64, 0, len(qs))
	var nodes int64
	for _, q := range qs {
		t0 := time.Now()
		_, st := suggest.TopK(tries, q, k)
		lats = append(lats, time.Since(t0).Microseconds())
		nodes += int64(st.NodesVisited)
	}
	return loadgen.Percentile(lats, 0.5), loadgen.Percentile(lats, 0.99),
		float64(nodes) / float64(len(qs))
}

// E15Suggest sweeps the synthetic dictionary sizes, then (when fixture
// is non-empty) streams the committed abstracts fixture into an engine
// under baseDir and completes against its organic dictionary.
func E15Suggest(baseDir string, sizes []int, k int, seed int64, fixture string) (*Table, *SuggestBenchReport, error) {
	const queriesPerSize = 160 // terms sampled; every prefix of each is one query
	rep := &SuggestBenchReport{Seed: seed, K: k}
	t := &Table{
		Title:  fmt.Sprintf("E15 (extension): autosuggest latency vs dictionary size, top-%d", k),
		Header: []string{"terms", "trie bytes", "B/term", "queries", "p50", "p99", "avg nodes"},
		Comment: "Each query is one keystroke: a prefix completion over the max-score-pruned radix\n" +
			"trie. The claim to check: p50/p99 stay near-flat as the dictionary grows (the\n" +
			"best-first search visits O(k·depth) nodes, not O(terms)), while memory grows\n" +
			"linearly at a small constant per term. The fixture rows replay the same workload\n" +
			"over the committed Wikipedia-abstract corpus streamed in through xrank-ingest's\n" +
			"parser, pricing an organic dictionary end-to-end (ingest throughput included).",
	}
	for _, n := range sizes {
		tr, terms := buildSyntheticTrie(n)
		rng := rand.New(rand.NewSource(seed))
		qs := suggestPrefixWorkload(rng, terms, queriesPerSize)
		p50, p99, avgNodes := measureTrieWorkload([]*suggest.Trie{tr}, qs, k)
		run := SuggestSizeRun{
			Terms:        tr.Terms(),
			TrieBytes:    tr.ApproxBytes(),
			BytesPerTerm: float64(tr.ApproxBytes()) / float64(tr.Terms()),
			Queries:      len(qs),
			P50Micros:    p50,
			P99Micros:    p99,
			AvgNodes:     avgNodes,
		}
		rep.Runs = append(rep.Runs, run)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", run.Terms),
			fmt.Sprintf("%d", run.TrieBytes),
			fmt.Sprintf("%.1f", run.BytesPerTerm),
			fmt.Sprintf("%d", run.Queries),
			fmt.Sprintf("%dµs", run.P50Micros),
			fmt.Sprintf("%dµs", run.P99Micros),
			fmt.Sprintf("%.1f", run.AvgNodes),
		})
	}

	if fixture == "" {
		return t, rep, nil
	}
	f, err := os.Open(fixture)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: suggest fixture: %w", err)
	}
	defer f.Close()
	e := xrank.NewEngine(&xrank.Config{IndexDir: baseDir + "/fixture", SkipNaive: true})
	defer e.Close()
	t0 := time.Now()
	p := ingest.NewParser(f)
	docs := 0
	for {
		a, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("bench: suggest fixture parse: %w", err)
		}
		if err := e.AddXML(ingest.DocName(int64(docs)), bytes.NewReader(a.DocXML())); err != nil {
			return nil, nil, err
		}
		docs++
	}
	if _, err := e.Build(); err != nil {
		return nil, nil, err
	}
	ingestWall := time.Since(t0)
	rep.FixturePath = fixture
	rep.FixtureDocs = docs
	rep.FixtureIngestMillis = ingestWall.Milliseconds()
	if s := ingestWall.Seconds(); s > 0 {
		rep.FixtureDocsPerSec = float64(docs) / s
	}
	rep.FixtureTerms = e.SuggestTerms()

	// The organic workload: every prefix of the fixture dictionary's
	// own top terms, through the engine (snapshot lock, multi-trie merge
	// and metrics included).
	top, _, err := e.Suggest("", 32)
	if err != nil {
		return nil, nil, err
	}
	var lats []int64
	for _, s := range top {
		for cut := 1; cut <= len(s.Term); cut++ {
			q0 := time.Now()
			if _, _, err := e.Suggest(s.Term[:cut], k); err != nil {
				return nil, nil, err
			}
			lats = append(lats, time.Since(q0).Microseconds())
		}
	}
	rep.FixtureQueries = len(lats)
	rep.FixtureP50Micros = loadgen.Percentile(lats, 0.5)
	rep.FixtureP99Micros = loadgen.Percentile(lats, 0.99)
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("fixture:%d", rep.FixtureTerms), "-", "-",
		fmt.Sprintf("%d", rep.FixtureQueries),
		fmt.Sprintf("%dµs", rep.FixtureP50Micros),
		fmt.Sprintf("%dµs", rep.FixtureP99Micros),
		fmt.Sprintf("%d docs @ %.0f docs/s", rep.FixtureDocs, rep.FixtureDocsPerSec),
	})
	return t, rep, nil
}
