package bench

import (
	"math"
	"path/filepath"
	"testing"
)

func report(lat map[int]int64) *ShardReport {
	r := &ShardReport{}
	for _, sc := range []int{1, 2, 4, 8} {
		if l, ok := lat[sc]; ok {
			r.Runs = append(r.Runs, ShardRun{Shards: sc, AvgLatencyMicros: l})
		}
	}
	return r
}

func TestCompareShardReports(t *testing.T) {
	base := report(map[int]int64{1: 1000, 2: 600, 4: 400, 8: 350})

	// Unchanged performance: ratio 1, no regression.
	g, err := CompareShardReports(base, report(map[int]int64{1: 1000, 2: 600, 4: 400, 8: 350}))
	if err != nil {
		t.Fatal(err)
	}
	if g.Regressed || math.Abs(g.MedianRatio-1) > 1e-9 {
		t.Errorf("identical reports: %+v", g)
	}

	// One noisy shard count must not trip the guard: the median ignores it.
	g, err = CompareShardReports(base, report(map[int]int64{1: 1000, 2: 600, 4: 400, 8: 3500}))
	if err != nil {
		t.Fatal(err)
	}
	if g.Regressed {
		t.Errorf("single outlier tripped the guard: %+v", g)
	}

	// A across-the-board 30% slowdown must trip it.
	g, err = CompareShardReports(base, report(map[int]int64{1: 1300, 2: 780, 4: 520, 8: 455}))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Regressed || g.MedianRatio < 1.29 || g.MedianRatio > 1.31 {
		t.Errorf("uniform 1.3x slowdown: %+v", g)
	}

	// Getting faster is never a regression.
	g, err = CompareShardReports(base, report(map[int]int64{1: 500, 2: 300, 4: 200, 8: 175}))
	if err != nil {
		t.Fatal(err)
	}
	if g.Regressed {
		t.Errorf("speedup flagged as regression: %+v", g)
	}

	// Partial overlap compares only the common shard counts.
	g, err = CompareShardReports(base, report(map[int]int64{1: 1000, 16: 100}))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Ratios) != 1 || g.Shards[0] != 1 {
		t.Errorf("partial overlap: %+v", g)
	}

	// Incomparable inputs are errors, not verdicts.
	if _, err := CompareShardReports(&ShardReport{}, base); err == nil {
		t.Error("empty baseline accepted")
	}
	if _, err := CompareShardReports(base, report(map[int]int64{16: 100})); err == nil {
		t.Error("disjoint shard counts accepted")
	}
	if _, err := CompareShardReports(base, report(map[int]int64{1: 0})); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestReadShardReportRoundTrip(t *testing.T) {
	r := report(map[int]int64{1: 1000, 2: 600})
	r.Corpus = "xmark"
	path := filepath.Join(t.TempDir(), "BENCH_shard.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShardReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Corpus != "xmark" || len(got.Runs) != 2 || got.Runs[1].AvgLatencyMicros != 600 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := ReadShardReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
