// Package xmldoc defines the hyperlinked XML data model of XRANK (Guo et
// al., SIGMOD 2003, Section 2.1) and parsers that build it from XML and
// HTML input.
//
// A collection of documents is a directed graph G = (N, CE, HE): N is the
// set of element and value nodes, CE the containment edges, and HE the
// hyperlink edges (IDREFs within a document, XLinks across documents). As
// in the paper, attributes are modeled as sub-elements, and element tag
// names and attribute names are treated as values (so keyword queries can
// match them — the paper's 'author gray' anecdote depends on this).
package xmldoc

import (
	"fmt"

	"xrank/internal/dewey"
)

// Kind distinguishes how an element node arose.
type Kind uint8

const (
	// KindElement is a regular XML element.
	KindElement Kind = iota
	// KindAttr is an attribute materialized as a sub-element (Section 2.1:
	// "we treat attributes as though they are sub-elements").
	KindAttr
	// KindHTMLRoot is the single element representing an entire HTML
	// document with presentation tags stripped (Section 2.2).
	KindHTMLRoot
)

func (k Kind) String() string {
	switch k {
	case KindElement:
		return "element"
	case KindAttr:
		return "attr"
	case KindHTMLRoot:
		return "htmlroot"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Token is one keyword occurrence directly contained by an element. Pos is
// the token's offset in a single position space covering the whole
// document in document order, which is what makes the smallest-window
// proximity metric (Section 2.3.2.2) meaningful across sibling elements.
type Token struct {
	Term string
	Pos  uint32
}

// RefKind distinguishes hyperlink flavors. Both are treated uniformly as
// hyperlink edges (HE); the distinction is kept for diagnostics.
type RefKind uint8

const (
	// RefIDREF is an intra-document reference to an element's ID attribute.
	RefIDREF RefKind = iota
	// RefXLink is an inter-document reference "docname" or "docname#id".
	RefXLink
)

// Ref is an unresolved outgoing hyperlink recorded during parsing.
type Ref struct {
	Kind   RefKind
	Target string // IDREF: element id; XLink: "doc" or "doc#id"
}

// Element is an element node. Value nodes are not materialized as separate
// structs: an element's directly contained text is kept in Tokens/Text,
// which is equivalent for every algorithm in the paper (value nodes have
// ElemRank 0 and never appear in query results; only their parent elements
// do).
type Element struct {
	Tag    string
	Kind   Kind
	Parent *Element
	// Doc is the owning document.
	Doc *Document
	// Ord is the element's ordinal among its parent's sub-elements; it is
	// the element's final Dewey component.
	Ord uint32
	// Index is the element's position in Document.Elements (document order).
	Index int32
	// Children are sub-elements in document order, attribute pseudo-elements
	// first (they precede content in the serialized form).
	Children []*Element
	// Tokens are the keyword occurrences directly contained by this element:
	// its tag name, then for attribute pseudo-elements the attribute value,
	// then direct text. Positions are document-global.
	Tokens []Token
	// Text is the concatenated directly contained character data, kept for
	// snippets; it does not include the tag name.
	Text string
	// XMLID is the element's id attribute value, if any ("" otherwise).
	XMLID string
	// Refs are unresolved outgoing hyperlinks parsed from this element.
	Refs []Ref
}

// Document is one parsed XML or HTML document.
type Document struct {
	ID   uint32 // first Dewey component of every element in the document
	Name string // collection-unique name, used as XLink target
	// Base is the document's offset in the collection-wide element
	// numbering (set by Collection); element e has global index
	// Base + int(e.Index).
	Base int
	Root *Element
	// Elements lists all element nodes (including attribute pseudo-elements)
	// in document order; Elements[e.Index] == e.
	Elements []*Element
	// NumTokens is the total number of tokens assigned positions in this
	// document; positions are in [0, NumTokens).
	NumTokens uint32
}

// NumElements returns N_de for the document: the number of element nodes
// it contains (used by the ElemRank random-jump term).
func (d *Document) NumElements() int { return len(d.Elements) }

// DeweyID returns the Dewey ID of e, with the document ID as the first
// component (Section 4.2.1). The root element's ID is just [docID].
func (e *Element) DeweyID() dewey.ID {
	depth := 0
	for p := e; p.Parent != nil; p = p.Parent {
		depth++
	}
	id := make(dewey.ID, depth+1)
	id[0] = e.Doc.ID
	for p, i := e, depth; p.Parent != nil; p, i = p.Parent, i-1 {
		id[i] = p.Ord
	}
	return id
}

// ElementAt resolves a Dewey ID (which must belong to this document) to its
// element, or nil if the path does not exist.
func (d *Document) ElementAt(id dewey.ID) *Element {
	if len(id) == 0 || id[0] != d.ID || d.Root == nil {
		return nil
	}
	e := d.Root
	for _, ord := range id[1:] {
		if int(ord) >= len(e.Children) {
			return nil
		}
		e = e.Children[int(ord)]
	}
	return e
}

// IsAncestorOrSelf reports whether a is e or one of e's ancestors.
func IsAncestorOrSelf(a, e *Element) bool {
	for p := e; p != nil; p = p.Parent {
		if p == a {
			return true
		}
	}
	return false
}

// ContainsTerm reports whether e directly or indirectly contains the term
// (the paper's contains* predicate). It is a reference implementation used
// by tests and the naive query processor; indexes answer this much faster.
func ContainsTerm(e *Element, term string) bool {
	for _, t := range e.Tokens {
		if t.Term == term {
			return true
		}
	}
	for _, c := range e.Children {
		if ContainsTerm(c, term) {
			return true
		}
	}
	return false
}

// DirectTerms returns the set of terms directly contained by e.
func DirectTerms(e *Element) map[string]bool {
	m := make(map[string]bool, len(e.Tokens))
	for _, t := range e.Tokens {
		m[t.Term] = true
	}
	return m
}

// Walk calls fn for every element in the subtree rooted at e, in document
// order (pre-order). It stops early if fn returns false.
func Walk(e *Element, fn func(*Element) bool) bool {
	if e == nil {
		return true
	}
	if !fn(e) {
		return false
	}
	for _, c := range e.Children {
		if !Walk(c, fn) {
			return false
		}
	}
	return true
}

// Path returns the slash-separated tag path from the root to e, e.g.
// "workshop/proceedings/paper/title", for display purposes.
func Path(e *Element) string {
	if e == nil {
		return ""
	}
	if e.Parent == nil {
		return e.Tag
	}
	return Path(e.Parent) + "/" + e.Tag
}
