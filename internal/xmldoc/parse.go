package xmldoc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"xrank/internal/text"
)

// ParseOptions configure how documents are turned into the XRANK data
// model.
type ParseOptions struct {
	// IndexTagNames controls whether element tag names and attribute names
	// are indexed as values, per Section 2.1 ("we treat element tag names
	// and attribute names also as values"). Default true.
	IndexTagNames bool
	// KeepText retains the raw character data of each element for snippet
	// generation. Default true; large batch index builds can turn it off.
	KeepText bool
	// MaxDepth bounds element nesting to defend against pathological input.
	// Zero means the default of 512.
	MaxDepth int
}

// DefaultParseOptions returns the options used when nil is passed to the
// parse functions.
func DefaultParseOptions() ParseOptions {
	return ParseOptions{IndexTagNames: true, KeepText: true, MaxDepth: 512}
}

// Attribute-name conventions for hyperlinks, following the paper's Figure 1
// (<cite ref="2">, <cite xlink="/paper/xmlql/">). Attributes in linkAttrs
// become hyperlink edges rather than value sub-elements; "id" anchors the
// element for IDREF targets.
var linkAttrs = map[string]RefKind{
	"ref":   RefIDREF,
	"idref": RefIDREF,
	"xlink": RefXLink,
	"href":  RefXLink,
}

// multiLinkAttrs hold whitespace-separated lists of targets, matching the
// XML IDREFS attribute type.
var multiLinkAttrs = map[string]RefKind{
	"refs":   RefIDREF,
	"idrefs": RefIDREF,
	"xlinks": RefXLink,
}

// ParseXML parses one XML document into the data model. docID becomes the
// first Dewey component; name is the collection-unique document name used
// to resolve XLink targets. A nil opts uses DefaultParseOptions.
func ParseXML(docID uint32, name string, r io.Reader, opts *ParseOptions) (*Document, error) {
	o := DefaultParseOptions()
	if opts != nil {
		o = *opts
		if o.MaxDepth == 0 {
			o.MaxDepth = 512
		}
	}
	doc := &Document{ID: docID, Name: name}
	dec := xml.NewDecoder(r)
	dec.Strict = true

	var (
		stack  []*Element
		tokBuf []string
	)
	pos := uint32(0)

	addTokens := func(e *Element, s string) {
		tokBuf = tokBuf[:0]
		text.AppendTokens(&tokBuf, s)
		for _, term := range tokBuf {
			e.Tokens = append(e.Tokens, Token{Term: term, Pos: pos})
			pos++
		}
	}

	newElement := func(tag string, kind Kind, parent *Element) *Element {
		e := &Element{Tag: tag, Kind: kind, Parent: parent, Doc: doc, Index: int32(len(doc.Elements))}
		if parent != nil {
			e.Ord = uint32(len(parent.Children))
			parent.Children = append(parent.Children, e)
		}
		doc.Elements = append(doc.Elements, e)
		return e
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) >= o.MaxDepth {
				return nil, fmt.Errorf("xmldoc: parse %s: nesting exceeds %d", name, o.MaxDepth)
			}
			var parent *Element
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			} else if doc.Root != nil {
				return nil, fmt.Errorf("xmldoc: parse %s: multiple root elements", name)
			}
			e := newElement(t.Name.Local, KindElement, parent)
			if parent == nil {
				doc.Root = e
			}
			if o.IndexTagNames {
				addTokens(e, t.Name.Local)
			}
			for _, a := range t.Attr {
				aname := strings.ToLower(a.Name.Local)
				if a.Name.Space == "xmlns" || aname == "xmlns" {
					continue
				}
				if aname == "id" {
					e.XMLID = a.Value
					continue
				}
				if kind, ok := linkAttrs[aname]; ok {
					e.Refs = append(e.Refs, Ref{Kind: kind, Target: a.Value})
					continue
				}
				if kind, ok := multiLinkAttrs[aname]; ok {
					for _, target := range strings.Fields(a.Value) {
						e.Refs = append(e.Refs, Ref{Kind: kind, Target: target})
					}
					continue
				}
				// Attribute as sub-element (Section 2.1).
				ae := newElement(a.Name.Local, KindAttr, e)
				if o.IndexTagNames {
					addTokens(ae, a.Name.Local)
				}
				addTokens(ae, a.Value)
				if o.KeepText {
					ae.Text = a.Value
				}
			}
			stack = append(stack, e)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // whitespace outside the root
			}
			e := stack[len(stack)-1]
			s := string(t)
			addTokens(e, s)
			if o.KeepText {
				if trimmed := strings.TrimSpace(s); trimmed != "" {
					if e.Text != "" {
						e.Text += " "
					}
					e.Text += trimmed
				}
			}
		default:
			// Comments, directives and processing instructions carry no
			// values in the data model.
		}
	}
	if doc.Root == nil {
		return nil, fmt.Errorf("xmldoc: parse %s: no root element", name)
	}
	doc.NumTokens = pos
	return doc, nil
}
