package xmldoc

import (
	"strings"
	"testing"
)

func TestWriteXMLRoundTrip(t *testing.T) {
	src := `<paper id="1" kind="full"><title>A &amp; B</title><body><sec>text</sec><sec/></body><cite ref="2">x</cite></paper>`
	doc, err := ParseXML(0, "d", strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteXML(&b, doc.Root, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`<paper id="1" kind="full">`, "<title>A &amp; B</title>",
		"<sec>text</sec>", "<sec/>", `<cite ref="2">x</cite>`, "</paper>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized output missing %q:\n%s", want, out)
		}
	}
	// The serialized form must reparse to an isomorphic tree.
	doc2, err := ParseXML(0, "d2", strings.NewReader(out), nil)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if len(doc2.Elements) != len(doc.Elements) {
		t.Errorf("reparse element count %d != %d", len(doc2.Elements), len(doc.Elements))
	}
}

func TestWriteXMLDepthLimit(t *testing.T) {
	doc, err := ParseXML(0, "d", strings.NewReader("<a><b><c><d>deep</d></c></b></a>"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteXML(&b, doc.Root, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "<c>") {
		t.Errorf("depth limit not applied: %s", out)
	}
	if !strings.Contains(out, "…") {
		t.Errorf("ellipsis marker missing: %s", out)
	}
}

func TestWriteXMLHTMLRoot(t *testing.T) {
	doc, err := ParseHTML(0, "p", strings.NewReader("<html><body>hi <b>there</b></body></html>"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteXML(&b, doc.Root, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hi there") {
		t.Errorf("html serialization: %s", b.String())
	}
}
