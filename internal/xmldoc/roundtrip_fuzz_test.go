package xmldoc

import (
	"strings"
	"testing"
)

// FuzzXMLRoundTrip checks parse → serialize → parse against two
// invariants:
//
//   - WriteXML output is always well-formed: whatever ParseXML accepted
//     must be parseable again, and the reparse preserves the tree shape
//     (tags, kinds, ids, hyperlinks, child structure — hence Dewey IDs).
//   - serialization is a fixpoint after one round. Token positions may
//     legitimately shift on the first round trip (WriteXML emits an
//     element's concatenated text before its children, see its doc
//     comment), but a second round trip must change nothing at all.
func FuzzXMLRoundTrip(f *testing.F) {
	seeds := []string{
		figure1,
		// XMark-shaped
		`<site><regions><europe><item id="item0"><name>gold watch</name>` +
			`<description><text>fine craftsmanship</text></description>` +
			`<incategory refs="cat1 cat2"/></item></europe></regions></site>`,
		// DBLP-shaped
		`<dblp><article key="journals/GuoSBS03"><author>Lin Guo</author>` +
			`<title>Ranked Keyword Search over XML</title><year>2003</year>` +
			`<cite ref="2"/><cite xlink="xql#intro">XQL</cite></article></dblp>`,
		// HTML-shaped markup (parsed as XML here)
		`<html><body><h1>Workshop</h1><p>xml search <a href="xmark#item0">link</a></p></body></html>`,
		// attribute / entity / interleaved-text torture
		`<a id="1" ref="2" xlink="doc#frag"><b k="v&amp;w">x &lt; y</b><c/>tail &quot;q&quot;</a>`,
		`<a><b/>between<b/></a>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		doc1, err := ParseXML(7, "fuzz", strings.NewReader(s), nil)
		if err != nil {
			return
		}
		x1 := mustSerialize(t, doc1)
		doc2, err := ParseXML(7, "fuzz", strings.NewReader(x1), nil)
		if err != nil {
			t.Fatalf("serialized form does not reparse: %v\ninput: %q\nserialized: %q", err, s, x1)
		}
		sameShape(t, doc1.Root, doc2.Root, "/")

		x2 := mustSerialize(t, doc2)
		doc3, err := ParseXML(7, "fuzz", strings.NewReader(x2), nil)
		if err != nil {
			t.Fatalf("second serialization does not reparse: %v\nserialized: %q", err, x2)
		}
		if x3 := mustSerialize(t, doc3); x2 != x3 {
			t.Fatalf("serialization is not a fixpoint:\nround 2: %q\nround 3: %q", x2, x3)
		}
		sameExact(t, doc2.Root, doc3.Root, "/")
	})
}

func mustSerialize(t *testing.T, doc *Document) string {
	t.Helper()
	var b strings.Builder
	if err := WriteXML(&b, doc.Root, 0); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// sameShape asserts the reparse preserved everything except token
// positions and text layout.
func sameShape(t *testing.T, a, b *Element, where string) {
	t.Helper()
	if a.Tag != b.Tag || a.Kind != b.Kind || a.XMLID != b.XMLID || a.Ord != b.Ord {
		t.Fatalf("%s: element drifted: %s/%v/%q/%d vs %s/%v/%q/%d",
			where, a.Tag, a.Kind, a.XMLID, a.Ord, b.Tag, b.Kind, b.XMLID, b.Ord)
	}
	if len(a.Refs) != len(b.Refs) {
		t.Fatalf("%s: %d refs vs %d", where, len(a.Refs), len(b.Refs))
	}
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			t.Fatalf("%s: ref %d: %+v vs %+v", where, i, a.Refs[i], b.Refs[i])
		}
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("%s: %d children vs %d", where, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		sameShape(t, a.Children[i], b.Children[i], where+a.Tag+"/")
	}
}

// sameExact additionally requires identical text, tokens, and token
// positions — the full data model.
func sameExact(t *testing.T, a, b *Element, where string) {
	t.Helper()
	sameShape(t, a, b, where)
	if a.Text != b.Text {
		t.Fatalf("%s: text %q vs %q", where, a.Text, b.Text)
	}
	if len(a.Tokens) != len(b.Tokens) {
		t.Fatalf("%s: %d tokens vs %d", where, len(a.Tokens), len(b.Tokens))
	}
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] {
			t.Fatalf("%s: token %d: %+v vs %+v", where, i, a.Tokens[i], b.Tokens[i])
		}
	}
	for i := range a.Children {
		sameExact(t, a.Children[i], b.Children[i], where+a.Tag+"/")
	}
}
