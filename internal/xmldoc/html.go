package xmldoc

import (
	"fmt"
	"io"
	"strings"

	"xrank/internal/text"
)

// ParseHTML parses an HTML page into a single-element document, the
// degenerate two-level case of the XRANK data model (Section 2.2: "For
// HTML documents, we define only the root to be an answer node. Thus, we
// ignore all of the HTML tags used for presentation purposes, and only
// return entire documents like in standard HTML keyword search").
//
// The parser is deliberately tolerant — real HTML is rarely well-formed
// XML. It extracts text (outside script/style), and records <a href="...">
// targets as XLink hyperlink edges so that ElemRank degenerates to
// PageRank over HTML pages.
func ParseHTML(docID uint32, name string, r io.Reader, opts *ParseOptions) (*Document, error) {
	o := DefaultParseOptions()
	if opts != nil {
		o = *opts
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmldoc: read html %s: %w", name, err)
	}
	doc := &Document{ID: docID, Name: name}
	root := &Element{Tag: "html", Kind: KindHTMLRoot, Doc: doc}
	doc.Root = root
	doc.Elements = []*Element{root}

	var (
		textParts []string
		pos       uint32
		tokBuf    []string
	)
	addText := func(s string) {
		tokBuf = tokBuf[:0]
		text.AppendTokens(&tokBuf, s)
		for _, term := range tokBuf {
			root.Tokens = append(root.Tokens, Token{Term: term, Pos: pos})
			pos++
		}
		if o.KeepText {
			if t := strings.TrimSpace(s); t != "" {
				textParts = append(textParts, t)
			}
		}
	}

	s := string(raw)
	i := 0
	for i < len(s) {
		lt := strings.IndexByte(s[i:], '<')
		if lt < 0 {
			addText(s[i:])
			break
		}
		if lt > 0 {
			addText(s[i : i+lt])
		}
		i += lt
		gt := strings.IndexByte(s[i:], '>')
		if gt < 0 {
			// Unterminated tag: treat the rest as text, tolerant mode.
			addText(s[i+1:])
			break
		}
		tag := s[i+1 : i+gt]
		i += gt + 1
		isClose := strings.HasPrefix(tag, "/")
		name, attrs := splitTag(tag)
		if isClose {
			continue
		}
		switch name {
		case "script", "style":
			// Skip to the matching close tag, case-insensitively.
			end := strings.Index(strings.ToLower(s[i:]), "</"+name)
			if end < 0 {
				i = len(s)
			} else {
				i += end
			}
		case "a":
			if href, ok := attrValue(attrs, "href"); ok && href != "" && !strings.HasPrefix(href, "#") {
				root.Refs = append(root.Refs, Ref{Kind: RefXLink, Target: href})
			}
		}
	}
	if o.KeepText {
		root.Text = strings.Join(textParts, " ")
	}
	doc.NumTokens = pos
	return doc, nil
}

// splitTag splits the inside of a tag ("a href=\"x\" class=y") into the
// lowercase tag name and the attribute string.
func splitTag(tag string) (name, attrs string) {
	tag = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(tag, "/"), "/"))
	if tag == "" {
		return "", ""
	}
	if j := strings.IndexAny(tag, " \t\r\n"); j >= 0 {
		return strings.ToLower(tag[:j]), tag[j+1:]
	}
	return strings.ToLower(tag), ""
}

// attrValue extracts the value of the named attribute from a raw attribute
// string, handling single-, double- and un-quoted forms.
func attrValue(attrs, name string) (string, bool) {
	low := strings.ToLower(attrs)
	idx := 0
	for {
		j := strings.Index(low[idx:], name)
		if j < 0 {
			return "", false
		}
		j += idx
		// Must be a word boundary followed by '='.
		if j > 0 && isWordByte(low[j-1]) {
			idx = j + len(name)
			continue
		}
		k := j + len(name)
		for k < len(attrs) && (attrs[k] == ' ' || attrs[k] == '\t') {
			k++
		}
		if k >= len(attrs) || attrs[k] != '=' {
			idx = j + len(name)
			continue
		}
		k++
		for k < len(attrs) && (attrs[k] == ' ' || attrs[k] == '\t') {
			k++
		}
		if k >= len(attrs) {
			return "", true
		}
		switch attrs[k] {
		case '"', '\'':
			q := attrs[k]
			end := strings.IndexByte(attrs[k+1:], q)
			if end < 0 {
				return attrs[k+1:], true
			}
			return attrs[k+1 : k+1+end], true
		default:
			end := strings.IndexAny(attrs[k:], " \t\r\n")
			if end < 0 {
				return attrs[k:], true
			}
			return attrs[k : k+end], true
		}
	}
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b == '-' || b == '_'
}
