package xmldoc

import (
	"strings"
	"testing"
)

// FuzzParseXML checks that arbitrary input never panics the parser and
// that accepted documents satisfy the model invariants.
func FuzzParseXML(f *testing.F) {
	f.Add("<a><b ref='x'>hi</b></a>")
	f.Add(figure1)
	f.Add("<a>")
	f.Add("text only")
	f.Add(`<a id="1" xlink="d#f" refs="a b"><c name="n"/></a>`)
	f.Fuzz(func(t *testing.T, s string) {
		doc, err := ParseXML(3, "fuzz", strings.NewReader(s), nil)
		if err != nil {
			return
		}
		if doc.Root == nil {
			t.Fatal("accepted document without root")
		}
		// Invariants: pre-order indexes, parent/child consistency, Dewey
		// round trips.
		for i, e := range doc.Elements {
			if int(e.Index) != i {
				t.Fatalf("element %d has Index %d", i, e.Index)
			}
			if doc.ElementAt(e.DeweyID()) != e {
				t.Fatalf("Dewey round trip failed at element %d", i)
			}
			for j, c := range e.Children {
				if c.Parent != e || int(c.Ord) != j {
					t.Fatalf("child linkage broken at element %d child %d", i, j)
				}
			}
		}
	})
}

// FuzzParseHTML checks the tolerant HTML scanner never panics and always
// produces a single-element document.
func FuzzParseHTML(f *testing.F) {
	f.Add("<html><body>hi<a href='x'>l</a></body></html>")
	f.Add("<script>var x = '<'</script>ok")
	f.Add("<<<>>>")
	f.Add("<a href=")
	f.Add("<style>")
	f.Fuzz(func(t *testing.T, s string) {
		doc, err := ParseHTML(0, "fuzz", strings.NewReader(s), nil)
		if err != nil {
			t.Fatalf("HTML parser must not fail: %v", err)
		}
		if doc.Root == nil || len(doc.Elements) != 1 {
			t.Fatalf("HTML doc shape wrong: %d elements", len(doc.Elements))
		}
		for i, tok := range doc.Root.Tokens {
			if tok.Term == "" {
				t.Fatalf("empty token at %d", i)
			}
		}
	})
}
