package xmldoc

import (
	"fmt"
	"io"
	"strings"
)

// WriteXML serializes the subtree rooted at e back to XML, for displaying
// result fragments. Attribute pseudo-elements are rendered back as
// attributes. One approximation is inherent to the data model: an
// element's direct character data is stored concatenated, so text that
// originally interleaved with child elements is emitted before them.
// maxDepth bounds the rendered depth (0 = unlimited); deeper content is
// elided with an ellipsis comment.
func WriteXML(w io.Writer, e *Element, maxDepth int) error {
	return writeXML(w, e, maxDepth, 0)
}

func writeXML(w io.Writer, e *Element, maxDepth, depth int) error {
	if e.Kind == KindHTMLRoot {
		// HTML documents keep no structure; emit the text.
		_, err := fmt.Fprintf(w, "<html>%s</html>", escapeText(e.Text))
		return err
	}
	var attrs, children []*Element
	for _, c := range e.Children {
		if c.Kind == KindAttr {
			attrs = append(attrs, c)
		} else {
			children = append(children, c)
		}
	}
	if _, err := fmt.Fprintf(w, "<%s", e.Tag); err != nil {
		return err
	}
	if e.XMLID != "" {
		if _, err := fmt.Fprintf(w, ` id="%s"`, escapeAttr(e.XMLID)); err != nil {
			return err
		}
	}
	for _, a := range attrs {
		if _, err := fmt.Fprintf(w, ` %s="%s"`, a.Tag, escapeAttr(a.Text)); err != nil {
			return err
		}
	}
	for _, r := range e.Refs {
		name := "ref"
		if r.Kind == RefXLink {
			name = "xlink"
		}
		if _, err := fmt.Fprintf(w, ` %s="%s"`, name, escapeAttr(r.Target)); err != nil {
			return err
		}
	}
	if e.Text == "" && len(children) == 0 {
		_, err := io.WriteString(w, "/>")
		return err
	}
	if _, err := io.WriteString(w, ">"); err != nil {
		return err
	}
	if e.Text != "" {
		if _, err := io.WriteString(w, escapeText(e.Text)); err != nil {
			return err
		}
	}
	if maxDepth > 0 && depth+1 >= maxDepth && len(children) > 0 {
		if _, err := io.WriteString(w, "<!-- … -->"); err != nil {
			return err
		}
	} else {
		for _, c := range children {
			if err := writeXML(w, c, maxDepth, depth+1); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "</%s>", e.Tag)
	return err
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

func escapeText(s string) string { return textEscaper.Replace(s) }

// escapeAttr escapes a double-quoted attribute value. Go's %q escaping
// is not XML escaping: a quote in the value would terminate the
// attribute early on reparse.
var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")

func escapeAttr(s string) string { return attrEscaper.Replace(s) }
