package xmldoc

import (
	"fmt"
	"io"
	"strings"
)

// Collection is a set of hyperlinked XML/HTML documents — the graph
// G = (N, CE, HE) of Section 2.1. Containment edges are implicit in the
// element trees; hyperlink edges are materialized by ResolveLinks.
type Collection struct {
	Docs   []*Document
	byName map[string]*Document
	total  int
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{byName: make(map[string]*Document)}
}

// AddXML parses an XML document from r and adds it under the given
// collection-unique name. The document ID is assigned sequentially.
func (c *Collection) AddXML(name string, r io.Reader, opts *ParseOptions) (*Document, error) {
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("xmldoc: duplicate document name %q", name)
	}
	doc, err := ParseXML(uint32(len(c.Docs)), name, r, opts)
	if err != nil {
		return nil, err
	}
	c.attach(doc)
	return doc, nil
}

// AddHTML parses an HTML document from r and adds it under the given name.
func (c *Collection) AddHTML(name string, r io.Reader, opts *ParseOptions) (*Document, error) {
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("xmldoc: duplicate document name %q", name)
	}
	doc, err := ParseHTML(uint32(len(c.Docs)), name, r, opts)
	if err != nil {
		return nil, err
	}
	c.attach(doc)
	return doc, nil
}

func (c *Collection) attach(doc *Document) {
	doc.Base = c.total
	c.total += len(doc.Elements)
	c.Docs = append(c.Docs, doc)
	c.byName[doc.Name] = doc
}

// AddXMLVersion parses an XML document from r and appends it even when
// the name already exists: the new document shadows the old one in
// DocByName while the old one keeps its ID and Dewey space. Segmented
// engines use this for document replacement — the shadowed version is
// tombstoned, not renumbered.
func (c *Collection) AddXMLVersion(name string, r io.Reader, opts *ParseOptions) (*Document, error) {
	doc, err := ParseXML(uint32(len(c.Docs)), name, r, opts)
	if err != nil {
		return nil, err
	}
	c.attach(doc)
	return doc, nil
}

// AddHTMLVersion is AddXMLVersion for HTML content.
func (c *Collection) AddHTMLVersion(name string, r io.Reader, opts *ParseOptions) (*Document, error) {
	doc, err := ParseHTML(uint32(len(c.Docs)), name, r, opts)
	if err != nil {
		return nil, err
	}
	c.attach(doc)
	return doc, nil
}

// Clone returns a shallow copy sharing the (immutable) documents but
// owning its own Docs slice and name map, so versions can be appended
// without disturbing readers of the original.
func (c *Collection) Clone() *Collection {
	nc := &Collection{
		Docs:   make([]*Document, len(c.Docs)),
		byName: make(map[string]*Document, len(c.byName)),
		total:  c.total,
	}
	copy(nc.Docs, c.Docs)
	// Rebuild in attach order so the newest version of a name wins.
	for _, d := range nc.Docs {
		nc.byName[d.Name] = d
	}
	return nc
}

// DocByName returns the document with the given name, or nil.
func (c *Collection) DocByName(name string) *Document { return c.byName[name] }

// NumDocs returns N_d, the number of documents.
func (c *Collection) NumDocs() int { return len(c.Docs) }

// NumElements returns N_e, the total number of element nodes across all
// documents.
func (c *Collection) NumElements() int { return c.total }

// GlobalIndex returns the collection-wide dense index of element e.
func (c *Collection) GlobalIndex(e *Element) int { return e.Doc.Base + int(e.Index) }

// ElementByGlobalIndex is the inverse of GlobalIndex. Documents are
// attached in Base order, so the owning document is found by binary
// search.
func (c *Collection) ElementByGlobalIndex(g int) *Element {
	if g < 0 || g >= c.total {
		return nil
	}
	lo, hi := 0, len(c.Docs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.Docs[mid].Base <= g {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	d := c.Docs[lo]
	return d.Elements[g-d.Base]
}

// LinkStats summarizes hyperlink resolution.
type LinkStats struct {
	Resolved  int // hyperlink edges added to HE
	Dangling  int // references whose target does not exist
	SelfLinks int // references resolving to the referencing element itself (dropped)
}

// ResolveLinks resolves every Ref in the collection into hyperlink edges
// and returns the adjacency list indexed by global element index:
// out[g] lists the global indexes of elements hyperlinked from element g.
//
// IDREF targets are element IDs in the same document. XLink targets take
// the form "docname" (the target document's root) or "docname#id" (an
// identified element in that document). Dangling references are counted
// and dropped, like dead links on the web.
func (c *Collection) ResolveLinks() ([][]int32, LinkStats) {
	var stats LinkStats
	// Per-document id -> element maps, built lazily.
	idMaps := make([]map[string]*Element, len(c.Docs))
	idMap := func(d *Document) map[string]*Element {
		if idMaps[d.ID] == nil {
			m := make(map[string]*Element)
			for _, e := range d.Elements {
				if e.XMLID != "" {
					m[e.XMLID] = e
				}
			}
			idMaps[d.ID] = m
		}
		return idMaps[d.ID]
	}

	out := make([][]int32, c.total)
	for _, d := range c.Docs {
		for _, e := range d.Elements {
			for _, ref := range e.Refs {
				var target *Element
				switch ref.Kind {
				case RefIDREF:
					target = idMap(d)[ref.Target]
				case RefXLink:
					docName, frag, hasFrag := strings.Cut(ref.Target, "#")
					td := c.byName[docName]
					if td == nil {
						break
					}
					if hasFrag && frag != "" {
						target = idMap(td)[frag]
					} else {
						target = td.Root
					}
				}
				if target == nil {
					stats.Dangling++
					continue
				}
				if target == e {
					stats.SelfLinks++
					continue
				}
				g := c.GlobalIndex(e)
				out[g] = append(out[g], int32(c.GlobalIndex(target)))
				stats.Resolved++
			}
		}
	}
	return out, stats
}
