package xmldoc

import (
	"strings"
	"testing"

	"xrank/internal/dewey"
)

// figure1 reconstructs the paper's Figure 1 example document.
const figure1 = `<workshop date="28 July 2000">
  <title>XML and IR: A SIGIR 2000 Workshop</title>
  <editors>David Carmel, Yoelle Maarek, Aya Soffer</editors>
  <proceedings>
    <paper id="1">
      <title>XQL and Proximal Nodes</title>
      <author>Ricardo Baeza-Yates</author>
      <author>Gonzalo Navarro</author>
      <abstract>We consider the recently proposed language XQL</abstract>
      <body>
        <section name="Introduction">Searching on structured text is more important</section>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">At first sight, the XQL query language looks</subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
        <cite xlink="webdoc#xmlql">A Query Language for XML</cite>
      </body>
    </paper>
    <paper id="2">
      <title>Querying XML in Xyleme</title>
    </paper>
  </proceedings>
</workshop>`

func parseFig1(t *testing.T) *Document {
	t.Helper()
	doc, err := ParseXML(5, "sigir2000", strings.NewReader(figure1), nil)
	if err != nil {
		t.Fatalf("ParseXML: %v", err)
	}
	return doc
}

func findByTag(d *Document, tag string) []*Element {
	var out []*Element
	for _, e := range d.Elements {
		if e.Tag == tag {
			out = append(out, e)
		}
	}
	return out
}

func TestParseFigure1Structure(t *testing.T) {
	doc := parseFig1(t)
	if doc.Root == nil || doc.Root.Tag != "workshop" {
		t.Fatalf("root = %v", doc.Root)
	}
	// Attribute "date" materializes as the first sub-element of workshop.
	if len(doc.Root.Children) != 4 {
		t.Fatalf("workshop children = %d, want 4 (date attr, title, editors, proceedings)", len(doc.Root.Children))
	}
	date := doc.Root.Children[0]
	if date.Kind != KindAttr || date.Tag != "date" {
		t.Errorf("first child = %v %q, want attr date", date.Kind, date.Tag)
	}
	if date.Text != "28 July 2000" {
		t.Errorf("date text = %q", date.Text)
	}
	papers := findByTag(doc, "paper")
	if len(papers) != 2 {
		t.Fatalf("papers = %d", len(papers))
	}
	if papers[0].XMLID != "1" || papers[1].XMLID != "2" {
		t.Errorf("paper ids = %q, %q", papers[0].XMLID, papers[1].XMLID)
	}
	subs := findByTag(doc, "subsection")
	if len(subs) != 1 {
		t.Fatalf("subsections = %d", len(subs))
	}
	if !ContainsTerm(subs[0], "xql") || !ContainsTerm(subs[0], "language") {
		t.Errorf("subsection should contain the 'XQL language' keywords")
	}
}

func TestDeweyIDsAndElementAt(t *testing.T) {
	doc := parseFig1(t)
	if got := doc.Root.DeweyID(); !dewey.Equal(got, dewey.ID{5}) {
		t.Errorf("root DeweyID = %v", got)
	}
	title := doc.Root.Children[1]
	if got := title.DeweyID(); !dewey.Equal(got, dewey.ID{5, 1}) {
		t.Errorf("title DeweyID = %v, want 5.1", got)
	}
	for _, e := range doc.Elements {
		id := e.DeweyID()
		if got := doc.ElementAt(id); got != e {
			t.Fatalf("ElementAt(%v) = %v, want %s", id, got, Path(e))
		}
		if id[0] != 5 {
			t.Fatalf("doc component = %d", id[0])
		}
	}
	if doc.ElementAt(dewey.ID{5, 99}) != nil {
		t.Errorf("ElementAt of nonexistent path should be nil")
	}
	if doc.ElementAt(dewey.ID{6}) != nil {
		t.Errorf("ElementAt of wrong doc should be nil")
	}
	if doc.ElementAt(nil) != nil {
		t.Errorf("ElementAt(nil) should be nil")
	}
}

func TestTokenPositionsIncreaseInDocumentOrder(t *testing.T) {
	doc := parseFig1(t)
	last := int64(-1)
	count := 0
	Walk(doc.Root, func(e *Element) bool {
		for _, tok := range e.Tokens {
			// Positions within one element's direct tokens increase, and an
			// element that starts after another element's direct tokens in
			// document order gets later positions. (Interleaving of a
			// parent's trailing text with child text means we only check
			// the per-element first position is after the parent's tag
			// token.)
			if tok.Term == "" {
				t.Fatalf("empty token term in %s", Path(e))
			}
			count++
		}
		if len(e.Tokens) > 0 {
			first := int64(e.Tokens[0].Pos)
			if first <= last && e.Kind == KindElement {
				t.Fatalf("element %s first pos %d not after previous element start %d", Path(e), first, last)
			}
			last = first
		}
		return true
	})
	if uint32(count) != doc.NumTokens {
		t.Errorf("NumTokens = %d, counted %d", doc.NumTokens, count)
	}
}

func TestTagNamesAreValues(t *testing.T) {
	doc := parseFig1(t)
	// The 'author gray' anecdote depends on tag names being indexed.
	authors := findByTag(doc, "author")
	if len(authors) != 2 {
		t.Fatalf("authors = %d", len(authors))
	}
	if !ContainsTerm(authors[0], "author") {
		t.Errorf("tag name should be a value of the element")
	}
	// And it can be disabled.
	doc2, err := ParseXML(0, "x", strings.NewReader("<a><b>hi</b></a>"), &ParseOptions{KeepText: true})
	if err != nil {
		t.Fatal(err)
	}
	if ContainsTerm(doc2.Root, "b") {
		t.Errorf("IndexTagNames=false should not index tag names")
	}
	if !ContainsTerm(doc2.Root, "hi") {
		t.Errorf("text should still be indexed")
	}
}

func TestRefsRecorded(t *testing.T) {
	doc := parseFig1(t)
	cites := findByTag(doc, "cite")
	if len(cites) != 2 {
		t.Fatalf("cites = %d", len(cites))
	}
	if len(cites[0].Refs) != 1 || cites[0].Refs[0].Kind != RefIDREF || cites[0].Refs[0].Target != "2" {
		t.Errorf("cite[0].Refs = %v", cites[0].Refs)
	}
	if len(cites[1].Refs) != 1 || cites[1].Refs[0].Kind != RefXLink || cites[1].Refs[0].Target != "webdoc#xmlql" {
		t.Errorf("cite[1].Refs = %v", cites[1].Refs)
	}
	// Link attributes must not become value sub-elements.
	for _, c := range cites {
		for _, ch := range c.Children {
			if ch.Kind == KindAttr {
				t.Errorf("link attr materialized as sub-element: %v", ch.Tag)
			}
		}
	}
}

func TestCollectionResolveLinks(t *testing.T) {
	c := NewCollection()
	d1, err := c.AddXML("sigir2000", strings.NewReader(figure1), nil)
	if err != nil {
		t.Fatal(err)
	}
	webXML := `<paper id="xmlql"><title>A Query Language for XML</title><cite xlink="sigir2000">workshop link</cite><cite xlink="nowhere#x">dead</cite></paper>`
	d2, err := c.AddXML("webdoc", strings.NewReader(webXML), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d", c.NumDocs())
	}
	if c.NumElements() != len(d1.Elements)+len(d2.Elements) {
		t.Fatalf("NumElements = %d", c.NumElements())
	}
	out, stats := c.ResolveLinks()
	if stats.Dangling != 1 {
		t.Errorf("dangling = %d, want 1 (nowhere#x)", stats.Dangling)
	}
	// IDREF: first cite in d1 -> paper id=2 in d1.
	cites := findByTag(d1, "cite")
	papers := findByTag(d1, "paper")
	g := c.GlobalIndex(cites[0])
	want := int32(c.GlobalIndex(papers[1]))
	if len(out[g]) != 1 || out[g][0] != want {
		t.Errorf("IDREF edge = %v, want [%d]", out[g], want)
	}
	// XLink with fragment: second cite in d1 -> root of d2 (id "xmlql").
	g2 := c.GlobalIndex(cites[1])
	want2 := int32(c.GlobalIndex(d2.Root))
	if len(out[g2]) != 1 || out[g2][0] != want2 {
		t.Errorf("XLink edge = %v, want [%d]", out[g2], want2)
	}
	// XLink without fragment: d2's first cite -> d1 root.
	cites2 := findByTag(d2, "cite")
	g3 := c.GlobalIndex(cites2[0])
	want3 := int32(c.GlobalIndex(d1.Root))
	if len(out[g3]) != 1 || out[g3][0] != want3 {
		t.Errorf("XLink-to-doc edge = %v, want [%d]", out[g3], want3)
	}
	if stats.Resolved != 3 {
		t.Errorf("resolved = %d, want 3", stats.Resolved)
	}
	// Round trip global indexes.
	for _, d := range c.Docs {
		for _, e := range d.Elements {
			if c.ElementByGlobalIndex(c.GlobalIndex(e)) != e {
				t.Fatalf("global index round trip failed for %s", Path(e))
			}
		}
	}
}

func TestCollectionDuplicateName(t *testing.T) {
	c := NewCollection()
	if _, err := c.AddXML("a", strings.NewReader("<x>one</x>"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("a", strings.NewReader("<x>two</x>"), nil); err == nil {
		t.Errorf("duplicate name should fail")
	}
	if _, err := c.AddHTML("a", strings.NewReader("<p>x</p>"), nil); err == nil {
		t.Errorf("duplicate name should fail for HTML too")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"<a><b></a></b>",
		"<a></a><b></b>", // multiple roots
		"no markup at all",
	} {
		if _, err := ParseXML(0, "bad", strings.NewReader(bad), nil); err == nil {
			t.Errorf("ParseXML(%q) should fail", bad)
		}
	}
}

func TestParseDepthLimit(t *testing.T) {
	deep := strings.Repeat("<a>", 20) + "x" + strings.Repeat("</a>", 20)
	if _, err := ParseXML(0, "deep", strings.NewReader(deep), &ParseOptions{MaxDepth: 10}); err == nil {
		t.Errorf("depth limit should trigger")
	}
	if _, err := ParseXML(0, "deep", strings.NewReader(deep), &ParseOptions{MaxDepth: 30}); err != nil {
		t.Errorf("depth within limit should parse: %v", err)
	}
}

func TestParseHTML(t *testing.T) {
	html := `<html><head><title>My Page</title>
<script>var x = "ignored tokens";</script>
<style>.c { color: red }</style></head>
<body><h1>Hello World</h1>
<p>Some <b>bold</b> text.</p>
<a href="other.html">link text</a>
<a href="#frag">intra-page fragment anchor</a>
<a href='single.html'>single quoted</a>
</body></html>`
	doc, err := ParseHTML(3, "page", strings.NewReader(html), nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Kind != KindHTMLRoot {
		t.Errorf("root kind = %v", doc.Root.Kind)
	}
	if len(doc.Elements) != 1 {
		t.Errorf("HTML doc should have exactly one element, got %d", len(doc.Elements))
	}
	if !ContainsTerm(doc.Root, "hello") || !ContainsTerm(doc.Root, "bold") {
		t.Errorf("text not extracted")
	}
	if ContainsTerm(doc.Root, "ignored") || ContainsTerm(doc.Root, "color") {
		t.Errorf("script/style content leaked into tokens")
	}
	var targets []string
	for _, r := range doc.Root.Refs {
		targets = append(targets, r.Target)
	}
	if len(targets) != 2 || targets[0] != "other.html" || targets[1] != "single.html" {
		t.Errorf("hrefs = %v", targets)
	}
	if !strings.Contains(doc.Root.Text, "Hello World") {
		t.Errorf("Text = %q", doc.Root.Text)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	doc := parseFig1(t)
	n := 0
	Walk(doc.Root, func(e *Element) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("Walk visited %d, want early stop at 3", n)
	}
	if !Walk(nil, func(*Element) bool { return false }) {
		t.Errorf("Walk(nil) should be true")
	}
}

func TestPathAndAncestor(t *testing.T) {
	doc := parseFig1(t)
	sub := findByTag(doc, "subsection")[0]
	p := Path(sub)
	if p != "workshop/proceedings/paper/body/section/subsection" {
		t.Errorf("Path = %q", p)
	}
	if !IsAncestorOrSelf(doc.Root, sub) || !IsAncestorOrSelf(sub, sub) {
		t.Errorf("ancestor-or-self failed")
	}
	title := doc.Root.Children[1]
	if IsAncestorOrSelf(title, sub) {
		t.Errorf("title is not ancestor of subsection")
	}
}

func TestDirectTerms(t *testing.T) {
	doc := parseFig1(t)
	eds := findByTag(doc, "editors")[0]
	terms := DirectTerms(eds)
	for _, w := range []string{"editors", "david", "carmel", "soffer"} {
		if !terms[w] {
			t.Errorf("editors should directly contain %q; has %v", w, terms)
		}
	}
	if terms["xql"] {
		t.Errorf("editors should not contain xql")
	}
}

func TestAttrValueForms(t *testing.T) {
	cases := []struct {
		attrs, name, want string
		ok                bool
	}{
		{`href="a.html"`, "href", "a.html", true},
		{`href='a.html'`, "href", "a.html", true},
		{`href=a.html class=x`, "href", "a.html", true},
		{`class="x" href = "b.html"`, "href", "b.html", true},
		{`xhref="no"`, "href", "", false},
		{`class="x"`, "href", "", false},
		{`data-href="no" href="yes"`, "href", "yes", true},
	}
	for _, c := range cases {
		got, ok := attrValue(c.attrs, c.name)
		if ok != c.ok || got != c.want {
			t.Errorf("attrValue(%q, %q) = %q,%v want %q,%v", c.attrs, c.name, got, ok, c.want, c.ok)
		}
	}
}
