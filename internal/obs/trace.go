package obs

import (
	"sort"
	"sync"
	"time"
)

// Span is one timed stage of a query: a name, when it started, and how
// long it ran. Spans from parallel shard workers overlap in time; the
// trace records them all, so wall-clock accounting must look at the
// engine-level stages (which are sequential) rather than summing every
// span.
type Span struct {
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
}

// Trace collects the spans of one query. It is safe for concurrent use:
// parallel shard workers record into the same trace through the query's
// ExecContext family. Trace implements the storage.SpanRecorder
// interface structurally (no import — storage must not depend on obs).
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace creates an empty trace.
func NewTrace() *Trace { return &Trace{} }

// RecordSpan appends one finished span.
func (t *Trace) RecordSpan(name string, start time.Time, d time.Duration) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: d})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans ordered by start time
// (ties keep record order).
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// SumByName aggregates span durations by name — the per-stage rollup
// that feeds the engine's stage histograms and the slow-query log
// display.
func SumByName(spans []Span) map[string]time.Duration {
	m := make(map[string]time.Duration, len(spans))
	for _, s := range spans {
		m[s.Name] += s.Dur
	}
	return m
}
