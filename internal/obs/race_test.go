package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one registry from writer goroutines
// (counters, gauges, histograms, slow log) while reader goroutines
// scrape the Prometheus exposition and snapshot the slow log — the
// serve-time access pattern. Run under -race this proves the registry
// needs no external locking; afterwards the totals must be exact (no
// lost increments).
func TestRegistryConcurrency(t *testing.T) {
	const (
		writers = 16
		perG    = 500
	)
	r := NewRegistry()
	l := NewSlowLog(64, 0)
	tr := NewTrace()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: scrape until the writers finish.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				_ = l.Entries()
				_ = l.Total()
				_ = tr.Spans()
				r.FindHistogram("xrank_race_seconds").Snapshot()
			}
		}()
	}

	// Register before the writers race so FindHistogram above never sees nil.
	h := r.Histogram("xrank_race_seconds", "", DefaultLatencyBuckets())
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			c := r.Counter("xrank_race_total", "")
			ga := r.Gauge("xrank_race_gauge", "")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i) * 1e-5)
				tr.RecordSpan("stage", time.Now(), time.Microsecond)
				l.Observe(SlowLogEntry{Query: "q", Wall: time.Millisecond})
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got := r.Counter("xrank_race_total", "").Value(); got != writers*perG {
		t.Errorf("counter = %d, want %d", got, writers*perG)
	}
	if got := r.Gauge("xrank_race_gauge", "").Value(); got != writers*perG {
		t.Errorf("gauge = %d, want %d", got, writers*perG)
	}
	if got := h.Snapshot().Count; got != writers*perG {
		t.Errorf("histogram count = %d, want %d", got, writers*perG)
	}
	if got := l.Total(); got != writers*perG {
		t.Errorf("slowlog total = %d, want %d", got, writers*perG)
	}
	if got := len(tr.Spans()); got != writers*perG {
		t.Errorf("trace spans = %d, want %d", got, writers*perG)
	}
}
