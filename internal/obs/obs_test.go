package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("xrank_test_total", "help", "algo", "DIL")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("xrank_test_total", "help", "algo", "DIL"); again != c {
		t.Errorf("re-registration returned a different handle")
	}
	if other := r.Counter("xrank_test_total", "help", "algo", "RDIL"); other == c {
		t.Errorf("different labels returned the same handle")
	}
	g := r.Gauge("xrank_test_gauge", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	for i := 0; i < 100; i++ {
		h.Observe(0.005) // lands in the (0.001, 0.01] bucket
	}
	h.Observe(5) // +Inf bucket
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-(100*0.005+5)) > 1e-9 {
		t.Errorf("sum = %v", s.Sum)
	}
	if s.Counts[1] != 100 || s.Counts[3] != 1 {
		t.Errorf("bucket counts = %v", s.Counts)
	}
	// The median falls inside the second bucket; interpolation stays
	// within its bounds.
	q := s.Quantile(0.5)
	if q <= 0.001 || q > 0.01 {
		t.Errorf("p50 = %v, want in (0.001, 0.01]", q)
	}
	// Values in the +Inf bucket clamp to the top finite bound.
	if q := s.Quantile(1); q != 0.1 {
		t.Errorf("p100 = %v, want clamp to 0.1", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	h := newHistogram(DefaultLatencyBuckets())
	h.Observe(0.002)
	before := h.Snapshot()
	h.Observe(0.003)
	h.Observe(0.004)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 {
		t.Errorf("interval count = %d", d.Count)
	}
	if math.Abs(d.Sum-0.007) > 1e-9 {
		t.Errorf("interval sum = %v", d.Sum)
	}
	if math.Abs(d.Mean()-0.0035) > 1e-9 {
		t.Errorf("interval mean = %v", d.Mean())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("xrank_queries_total", "Queries served.", "algo", "DIL").Add(3)
	r.Counter("xrank_queries_total", "Queries served.", "algo", "HDIL").Add(2)
	r.Gauge("xrank_index_shards", "Index partitions.").Set(4)
	r.Histogram("xrank_query_latency_seconds", "Latency.", []float64{0.001, 0.01}, "algo", "DIL").Observe(0.002)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP xrank_queries_total Queries served.",
		"# TYPE xrank_queries_total counter",
		`xrank_queries_total{algo="DIL"} 3`,
		`xrank_queries_total{algo="HDIL"} 2`,
		"# TYPE xrank_index_shards gauge",
		"xrank_index_shards 4",
		"# TYPE xrank_query_latency_seconds histogram",
		`xrank_query_latency_seconds_bucket{algo="DIL",le="0.001"} 0`,
		`xrank_query_latency_seconds_bucket{algo="DIL",le="0.01"} 1`,
		`xrank_query_latency_seconds_bucket{algo="DIL",le="+Inf"} 1`,
		`xrank_query_latency_seconds_sum{algo="DIL"} 0.002`,
		`xrank_query_latency_seconds_count{algo="DIL"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with several series.
	if n := strings.Count(out, "# TYPE xrank_queries_total"); n != 1 {
		t.Errorf("family header emitted %d times", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("xrank_esc_total", "", "q", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `xrank_esc_total{q="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaped series missing %q:\n%s", want, b.String())
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	t0 := time.Now()
	tr.RecordSpan("merge", t0.Add(time.Millisecond), 2*time.Millisecond)
	tr.RecordSpan("open", t0, time.Millisecond)
	tr.RecordSpan("merge", t0.Add(3*time.Millisecond), time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 3 || spans[0].Name != "open" {
		t.Fatalf("spans = %+v", spans)
	}
	sums := SumByName(spans)
	if sums["merge"] != 3*time.Millisecond || sums["open"] != time.Millisecond {
		t.Errorf("SumByName = %v", sums)
	}
}

func TestSlowLogRingAndThreshold(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	if l.Observe(SlowLogEntry{Query: "fast", Wall: time.Millisecond}) {
		t.Errorf("below-threshold query logged")
	}
	for i, q := range []string{"a", "b", "c", "d", "e"} {
		if !l.Observe(SlowLogEntry{Query: q, Wall: time.Duration(11+i) * time.Millisecond}) {
			t.Errorf("slow query %q not logged", q)
		}
	}
	got := l.Entries()
	if len(got) != 3 || got[0].Query != "e" || got[1].Query != "d" || got[2].Query != "c" {
		t.Fatalf("entries = %+v", got)
	}
	if l.Total() != 5 {
		t.Errorf("total = %d", l.Total())
	}
	// Negative threshold disables logging entirely.
	l.SetThreshold(-1)
	if l.Observe(SlowLogEntry{Query: "x", Wall: time.Hour}) {
		t.Errorf("disabled log accepted an entry")
	}
	// Zero threshold logs everything.
	l.SetThreshold(0)
	if !l.Observe(SlowLogEntry{Query: "y"}) {
		t.Errorf("zero threshold rejected an entry")
	}
}
