// Package obs is the engine's observability kit: a stdlib-only metrics
// registry (atomic counters, gauges and fixed-bucket latency histograms
// with Prometheus text exposition), lightweight per-query span tracing,
// and a bounded slow-query ring log. Everything is safe for concurrent
// use: queries record while scrapers read.
//
// The registry deliberately implements the small subset of the
// Prometheus data model the engine needs — no dependency, no metric
// expiry, no exemplars. Metrics are identified by name plus an ordered
// label list; registering the same identity twice returns the same
// handle, so hot paths can resolve handles once and callers elsewhere
// (tests, the bench harness) can look the same metric up by name.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Bucket bounds are upper bounds
// in ascending order; an implicit +Inf bucket catches the rest. Observe
// is lock-free (atomic adds); Snapshot is a consistent-enough read for
// monitoring (each field is atomically read, the set need not be a
// single instant).
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, per-bucket (non-cumulative)
	count  atomic.Int64
	sumBit atomic.Uint64 // math.Float64bits of the running sum
}

// DefaultLatencyBuckets spans 100µs to 10s, the range of a page-cached
// merge up to a cold multi-shard scan, with roughly 2.5x steps (values
// in seconds).
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBit.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBit.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // ascending upper bounds; Counts has one extra +Inf slot
	Counts []int64   // per-bucket counts (non-cumulative)
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current state. A nil receiver (e.g.
// from FindHistogram on an unregistered name) yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBit.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns s minus earlier, for measuring an interval between two
// snapshots of the same histogram.
func (s HistogramSnapshot) Sub(earlier HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - earlier.Count,
		Sum:    s.Sum - earlier.Sum,
	}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i]
		if i < len(earlier.Counts) {
			d.Counts[i] -= earlier.Counts[i]
		}
	}
	return d
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation within the bucket that contains it — the standard
// histogram_quantile estimate. Values in the +Inf bucket clamp to the
// highest finite bound. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: clamp
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantiles returns Quantile(q) for every q in qs, in order — the
// percentile-snapshot call sites (the bench harness, xrank-loadgen's
// /metrics scrape) report p50/p90/p99/p99.9 from one snapshot with it.
func (s HistogramSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.Quantile(q)
	}
	return out
}

// metricKind discriminates what a registry slot holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered time series: a metric family name plus one
// concrete label set.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels string // rendered {k="v",...} or ""

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds all metrics of one engine. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric // key: name + labels
	order   []string           // insertion order of keys, for stable output
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// renderLabels turns ["k","v","k2","v2"] into `{k="v",k2="v2"}`.
// Panics on an odd-length list — label sets are compile-time shapes, not
// runtime data.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %v", labels))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// lookup returns the slot for name+labels, creating it with mk if absent.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, mk func(*metric)) *metric {
	key := name + renderLabels(labels)
	r.mu.RLock()
	m := r.metrics[key]
	r.mu.RUnlock()
	if m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as a different kind", key))
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.metrics[key]; m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as a different kind", key))
		}
		return m
	}
	m = &metric{name: name, help: help, kind: kind, labels: renderLabels(labels)}
	mk(m)
	r.metrics[key] = m
	r.order = append(r.order, key)
	return m
}

// Counter returns the counter for name+labels, registering it on first
// use. labels is an ordered key,value,... list.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, kindCounter, labels, func(m *metric) {
		m.counter = &Counter{}
	}).counter
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, kindGauge, labels, func(m *metric) {
		m.gauge = &Gauge{}
	}).gauge
}

// Histogram returns the histogram for name+labels, registering it on
// first use with the given bucket bounds. If the identity already
// exists, the existing histogram is returned and bounds are ignored —
// bucket layout is fixed at first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.lookup(name, help, kindHistogram, labels, func(m *metric) {
		m.hist = newHistogram(bounds)
	}).hist
}

// FindHistogram returns the histogram registered under name+labels, or
// nil — the read-only lookup the bench harness and tests use.
func (r *Registry) FindHistogram(name string, labels ...string) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if m := r.metrics[name+renderLabels(labels)]; m != nil && m.kind == kindHistogram {
		return m.hist
	}
	return nil
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4). Families are emitted in first-registration
// order with one HELP/TYPE header each; series within a family are
// sorted by label set, so the output is deterministic even when label
// values were first observed in map-iteration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	ms := make([]*metric, 0, len(r.order))
	for _, k := range r.order {
		ms = append(ms, r.metrics[k])
	}
	r.mu.RUnlock()

	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		if !seen[m.name] {
			seen[m.name] = true
			typ := map[metricKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[m.kind]
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
				return err
			}
			// Emit every series of this family here, keeping families
			// contiguous even when registrations interleaved.
			var fam []*metric
			for _, s := range ms {
				if s.name == m.name {
					fam = append(fam, s)
				}
			}
			sort.Slice(fam, func(i, j int) bool { return fam[i].labels < fam[j].labels })
			for _, s := range fam {
				if err := writeSeries(w, s); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.gauge.Value())
		return err
	case kindHistogram:
		s := m.hist.Snapshot()
		cum := int64(0)
		for i, bound := range s.Bounds {
			cum += s.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				m.name, mergeLabels(m.labels, fmt.Sprintf(`le="%s"`, formatBound(bound))), cum); err != nil {
				return err
			}
		}
		cum += s.Counts[len(s.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, mergeLabels(m.labels, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", m.name, m.labels, s.Sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, s.Count)
		return err
	}
	return nil
}

// mergeLabels appends extra (a rendered k="v" pair) to an existing
// rendered label set.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest float representation.
func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}
