package obs

import (
	"math"
	"testing"
)

// snap builds a HistogramSnapshot directly, so the tests pin the
// interpolation arithmetic without going through Observe's atomics.
func snap(bounds []float64, counts []int64) HistogramSnapshot {
	var total int64
	for _, c := range counts {
		total += c
	}
	return HistogramSnapshot{Bounds: bounds, Counts: counts, Count: total}
}

func TestQuantileEmpty(t *testing.T) {
	for _, s := range []HistogramSnapshot{
		{},
		snap([]float64{1, 2}, []int64{0, 0, 0}),
		snap(nil, []int64{5}), // no finite bounds at all: nothing to interpolate against
	} {
		for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
			if got := s.Quantile(q); got != 0 {
				t.Errorf("empty/boundless snapshot Quantile(%v) = %v, want 0", q, got)
			}
		}
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All four observations in the sole finite bucket (0, 10]: quantiles
	// interpolate linearly across the bucket.
	s := snap([]float64{10}, []int64{4, 0})
	cases := []struct{ q, want float64 }{
		{0, 0}, {0.25, 2.5}, {0.5, 5}, {0.75, 7.5}, {1, 10},
		{-0.5, 0}, {1.5, 10}, // out-of-range q clamps to [0,1]
	}
	for _, tc := range cases {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// Everything beyond the last finite bound: every quantile clamps to
	// that bound — the histogram cannot see further.
	s := snap([]float64{1, 2}, []int64{0, 0, 7})
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := s.Quantile(q); got != 2 {
			t.Errorf("all-overflow Quantile(%v) = %v, want 2 (clamped)", q, got)
		}
	}
	// Mixed: half the mass in (1,2], half in +Inf. Quantiles at or below
	// the finite half interpolate; above it they clamp.
	s = snap([]float64{1, 2}, []int64{0, 5, 5})
	if got := s.Quantile(0.25); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("mixed Quantile(0.25) = %v, want 1.5", got)
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("mixed Quantile(0.5) = %v, want 2 (top of last finite bucket)", got)
	}
	if got := s.Quantile(0.99); got != 2 {
		t.Errorf("mixed Quantile(0.99) = %v, want 2 (clamped)", got)
	}
}

func TestQuantileP999Edges(t *testing.T) {
	// 1000 observations: 999 in (0,1], one in (1,2]. The p99.9 rank is
	// exactly the boundary — top of the first bucket — and anything past
	// it interpolates into the single-observation tail bucket.
	s := snap([]float64{1, 2}, []int64{999, 1, 0})
	if got := s.Quantile(0.999); math.Abs(got-1) > 1e-12 {
		t.Errorf("Quantile(0.999) = %v, want 1 (exact bucket boundary)", got)
	}
	if got := s.Quantile(0.9995); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Quantile(0.9995) = %v, want 1.5 (half into the tail observation)", got)
	}
	if got := s.Quantile(1); math.Abs(got-2) > 1e-12 {
		t.Errorf("Quantile(1) = %v, want 2", got)
	}
	// A single observation: every quantile lands in its bucket.
	s = snap([]float64{1, 2}, []int64{0, 1, 0})
	if got := s.Quantile(0.999); got <= 1 || got > 2 {
		t.Errorf("single-observation Quantile(0.999) = %v, want within (1,2]", got)
	}
}

func TestQuantileSkipsZeroBuckets(t *testing.T) {
	// A zero-count bucket between two populated ones: ranks landing past
	// the first bucket must interpolate inside the far bucket, never
	// inside the empty gap.
	s := snap([]float64{1, 2, 3, 4}, []int64{5, 0, 0, 3, 0})
	// rank 5 = exact top of bucket 0.
	if got := s.Quantile(0.625); math.Abs(got-1) > 1e-12 {
		t.Errorf("Quantile(0.625) = %v, want 1", got)
	}
	// rank 6.5: 1.5 observations into bucket (3,4].
	if got := s.Quantile(0.8125); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("Quantile(0.8125) = %v, want 3.5 (skipping the empty buckets)", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0 (bottom of first populated bucket)", got)
	}
}

func TestQuantileObserveRoundTrip(t *testing.T) {
	// Through the real Observe path: values on exact bucket bounds land
	// in the bucket they bound (le semantics), and interval Sub quantiles
	// see only the interval's observations.
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.0} {
		h.Observe(v)
	}
	before := h.Snapshot()
	if got := before.Quantile(0.5); got <= 0 || got > 2 {
		t.Errorf("p50 = %v, want within (0,2]", got)
	}
	// Observe a burst into the top finite bucket and diff.
	for i := 0; i < 10; i++ {
		h.Observe(3.5)
	}
	interval := h.Snapshot().Sub(before)
	if interval.Count != 10 {
		t.Fatalf("interval count = %d, want 10", interval.Count)
	}
	if got := interval.Quantile(0.5); got <= 2 || got > 4 {
		t.Errorf("interval p50 = %v, want within (2,4]", got)
	}
	if got, want := interval.Mean(), 3.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("interval mean = %v, want %v", got, want)
	}
}

func TestQuantilesBatch(t *testing.T) {
	s := snap([]float64{10}, []int64{4, 0})
	got := s.Quantiles(0.5, 0.9, 0.99, 0.999)
	want := []float64{5, 9, 9.9, 9.99}
	if len(got) != len(want) {
		t.Fatalf("Quantiles len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := (HistogramSnapshot{}).Quantiles(); len(out) != 0 {
		t.Errorf("no-arg Quantiles = %v, want empty", out)
	}
}
