package obs

import (
	"sync"
	"time"
)

// SlowLogEntry is one logged slow query.
type SlowLogEntry struct {
	Time      time.Time     `json:"time"`
	Query     string        `json:"query"`
	Algorithm string        `json:"algorithm"`
	Shards    int           `json:"shards"` // index partitions the query fanned out over
	Wall      time.Duration `json:"wall_ns"`
	Reads     int64         `json:"io_reads"`
	CacheHits int64         `json:"cache_hits"`
	Degraded  bool          `json:"degraded,omitempty"` // served with shards excluded
	Cached    bool          `json:"cached,omitempty"`   // served from the result cache
	Coalesced bool          `json:"coalesced,omitempty"` // shared another caller's execution
	Err       string        `json:"error,omitempty"`
	Spans     []Span        `json:"spans,omitempty"`
}

// SlowLog is a bounded ring buffer of the slowest-path evidence: every
// query whose wall time reaches the threshold is recorded with its
// per-stage trace. Concurrent queries append while HTTP readers snapshot;
// when the ring is full the oldest entry is overwritten.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration // <0 disables; 0 logs everything
	buf       []SlowLogEntry
	next      int // ring write position
	full      bool
	total     int64 // entries ever logged (including overwritten ones)
}

// NewSlowLog creates a slow-query log holding up to capacity entries
// (minimum 1) with the given initial threshold.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{buf: make([]SlowLogEntry, capacity), threshold: threshold}
}

// SetThreshold changes the logging threshold: queries at or above it are
// logged. Negative disables logging; zero logs every query.
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.mu.Lock()
	l.threshold = d
	l.mu.Unlock()
}

// Threshold returns the current threshold.
func (l *SlowLog) Threshold() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.threshold
}

// Observe logs e if its wall time reaches the threshold, reporting
// whether it was logged.
func (l *SlowLog) Observe(e SlowLogEntry) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.threshold < 0 || e.Wall < l.threshold {
		return false
	}
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.total++
	return true
}

// Entries returns the retained entries, newest first.
func (l *SlowLog) Entries() []SlowLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]SlowLogEntry, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent write.
		j := l.next - 1 - i
		if j < 0 {
			j += len(l.buf)
		}
		out = append(out, l.buf[j])
	}
	return out
}

// Total returns how many queries have been logged since creation,
// including entries since overwritten by the ring.
func (l *SlowLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
