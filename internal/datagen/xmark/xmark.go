// Package xmark generates an XMark-shaped synthetic corpus: a single deep
// document following the XML Benchmark auction schema (Schmidt et al.
// [31]) — site → regions/categories/people/open_auctions/closed_auctions,
// items with nested description parlists, depth ≈ 10, and intra-document
// references (itemref, personref, incategory) — the structural profile of
// the 113MB scale-1.0 XMark dataset in the paper's experiments
// (Section 5.1: "XMark data is relatively deep with a depth of 10 ...
// mostly intra-document references ... a single XML document").
package xmark

import (
	"fmt"
	"math/rand"
	"strings"

	"xrank/internal/text"
)

// Params scale the document. The defaults give a small but structurally
// faithful instance; Items ≈ 2000 approximates a scale-0.1 XMark.
type Params struct {
	Seed           int64
	Items          int // default 400
	People         int // default 200
	OpenAuctions   int // default 150
	ClosedAuctions int // default 100
	Categories     int // default 40
	VocabSize      int // default 5000
	ZipfS          float64
	// CorrelationGroups / CorrelationWidth / PlantRate mirror the DBLP
	// generator: marker keywords for the correlation experiments.
	CorrelationGroups int
	CorrelationWidth  int
	PlantRate         float64
	// PlantAnecdotes seeds the Section 5.2 'stained mirror' anecdote: an
	// item named "stained" whose description mentions "mirror", referenced
	// by many auctions.
	PlantAnecdotes bool
}

func (p *Params) fill() {
	if p.Items <= 0 {
		p.Items = 400
	}
	if p.People <= 0 {
		p.People = 200
	}
	if p.OpenAuctions <= 0 {
		p.OpenAuctions = 150
	}
	if p.ClosedAuctions <= 0 {
		p.ClosedAuctions = 100
	}
	if p.Categories <= 0 {
		p.Categories = 40
	}
	if p.VocabSize <= 0 {
		p.VocabSize = 5000
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 1.25
	}
	if p.CorrelationWidth <= 0 {
		p.CorrelationWidth = 4
	}
	if p.PlantRate <= 0 {
		p.PlantRate = 0.2
	}
}

var regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

var cities = []string{"lisbon", "osaka", "lagos", "quito", "perth", "oslo", "austin", "pune"}

// Generate produces the single XMark-shaped document.
func Generate(p Params) string {
	p.fill()
	r := rand.New(rand.NewSource(p.Seed))
	z := text.NewZipf(r, text.SyntheticVocab(p.VocabSize), p.ZipfS)
	var planter *text.CorrelatedPlanter
	if p.CorrelationGroups > 0 {
		planter = text.NewCorrelatedPlanter(r, p.CorrelationGroups, p.CorrelationWidth, p.PlantRate)
	}
	var words []string
	sentence := func(n int) string {
		words = z.Sentence(words[:0], n)
		if planter != nil {
			words = planter.Plant(words)
		}
		return strings.Join(words, " ")
	}

	var b strings.Builder
	b.Grow(1 << 20)
	b.WriteString("<site>\n")

	// Categories.
	b.WriteString(" <categories>\n")
	for c := 0; c < p.Categories; c++ {
		fmt.Fprintf(&b, `  <category id="category%d"><name>%s</name><description><text>%s</text></description></category>`+"\n",
			c, sentence(2), sentence(8))
	}
	b.WriteString(" </categories>\n <catgraph>\n")
	for c := 1; c < p.Categories; c++ {
		fmt.Fprintf(&b, `  <edge from="category%d" to="category%d"/>`+"\n", r.Intn(c), c)
	}
	b.WriteString(" </catgraph>\n")

	// Regions with items. Deep structure: site/regions/africa/item/
	// description/parlist/listitem/parlist/listitem/text ≈ depth 10.
	b.WriteString(" <regions>\n")
	itemRegion := make([]int, p.Items)
	perRegion := make([][]int, len(regions))
	for i := 0; i < p.Items; i++ {
		reg := r.Intn(len(regions))
		itemRegion[i] = reg
		perRegion[reg] = append(perRegion[reg], i)
	}
	for reg, items := range perRegion {
		fmt.Fprintf(&b, "  <%s>\n", regions[reg])
		for _, i := range items {
			name := sentence(2)
			descWords1, descWords2 := sentence(10), sentence(10)
			if p.PlantAnecdotes && i == 0 {
				name = "stained"
				descWords1 = "antique mirror " + descWords1
			}
			fmt.Fprintf(&b, `   <item id="item%d">`+"\n", i)
			fmt.Fprintf(&b, "    <location>%s</location>\n", cities[r.Intn(len(cities))])
			fmt.Fprintf(&b, "    <quantity>%d</quantity>\n", 1+r.Intn(5))
			fmt.Fprintf(&b, "    <name>%s</name>\n", name)
			fmt.Fprintf(&b, "    <payment>%s</payment>\n", []string{"creditcard", "money order", "cash"}[r.Intn(3)])
			b.WriteString("    <description>\n     <parlist>\n")
			fmt.Fprintf(&b, "      <listitem><text>%s</text></listitem>\n", descWords1)
			fmt.Fprintf(&b, "      <listitem>\n       <parlist>\n        <listitem><text>%s</text></listitem>\n       </parlist>\n      </listitem>\n", descWords2)
			b.WriteString("     </parlist>\n    </description>\n")
			fmt.Fprintf(&b, "    <shipping>%s</shipping>\n", sentence(4))
			for c := 0; c < 1+r.Intn(3); c++ {
				fmt.Fprintf(&b, `    <incategory ref="category%d"/>`+"\n", r.Intn(p.Categories))
			}
			// Mailbox with a nested mail thread (more depth).
			fmt.Fprintf(&b, "    <mailbox>\n     <mail>\n      <from>%s</from>\n      <to>%s</to>\n      <date>%02d/%02d/2000</date>\n      <text>%s</text>\n     </mail>\n    </mailbox>\n",
				sentence(2), sentence(2), 1+r.Intn(12), 1+r.Intn(28), sentence(12))
			b.WriteString("   </item>\n")
		}
		fmt.Fprintf(&b, "  </%s>\n", regions[reg])
	}
	b.WriteString(" </regions>\n")

	// People.
	b.WriteString(" <people>\n")
	for i := 0; i < p.People; i++ {
		fmt.Fprintf(&b, `  <person id="person%d">`+"\n", i)
		fmt.Fprintf(&b, "   <name>%s</name>\n   <emailaddress>mailto:u%d@example.net</emailaddress>\n", sentence(2), i)
		fmt.Fprintf(&b, "   <address><street>%d main</street><city>%s</city><country>gen</country><zipcode>%05d</zipcode></address>\n",
			1+r.Intn(99), cities[r.Intn(len(cities))], r.Intn(99999))
		fmt.Fprintf(&b, "   <profile><interest ref=\"category%d\"/><education>%s</education><income>%d</income></profile>\n",
			r.Intn(p.Categories), []string{"high school", "college", "graduate school"}[r.Intn(3)], 20000+r.Intn(80000))
		b.WriteString("  </person>\n")
	}
	b.WriteString(" </people>\n")

	// Open auctions. The anecdote item (item0) is referenced by many
	// auctions, giving it a high ElemRank through hyperlink awareness.
	pickItem := func(k int) int {
		if p.PlantAnecdotes && k%4 == 0 {
			return 0
		}
		return r.Intn(p.Items)
	}
	b.WriteString(" <open_auctions>\n")
	for i := 0; i < p.OpenAuctions; i++ {
		fmt.Fprintf(&b, `  <open_auction id="open%d">`+"\n", i)
		fmt.Fprintf(&b, "   <initial>%d.%02d</initial>\n", 1+r.Intn(200), r.Intn(100))
		for bd := 0; bd < 1+r.Intn(4); bd++ {
			fmt.Fprintf(&b, "   <bidder>\n    <date>%02d/%02d/2000</date>\n    <personref ref=\"person%d\"/>\n    <increase>%d.00</increase>\n   </bidder>\n",
				1+r.Intn(12), 1+r.Intn(28), r.Intn(p.People), 1+r.Intn(30))
		}
		fmt.Fprintf(&b, "   <itemref ref=\"item%d\"/>\n", pickItem(i))
		fmt.Fprintf(&b, "   <seller ref=\"person%d\"/>\n", r.Intn(p.People))
		fmt.Fprintf(&b, "   <annotation><description><text>%s</text></description></annotation>\n", sentence(10))
		fmt.Fprintf(&b, "   <quantity>%d</quantity>\n   <type>regular</type>\n", 1+r.Intn(3))
		fmt.Fprintf(&b, "   <interval><start>01/01/2000</start><end>12/31/2000</end></interval>\n")
		b.WriteString("  </open_auction>\n")
	}
	b.WriteString(" </open_auctions>\n")

	// Closed auctions.
	b.WriteString(" <closed_auctions>\n")
	for i := 0; i < p.ClosedAuctions; i++ {
		fmt.Fprintf(&b, "  <closed_auction>\n   <seller ref=\"person%d\"/>\n   <buyer ref=\"person%d\"/>\n",
			r.Intn(p.People), r.Intn(p.People))
		fmt.Fprintf(&b, "   <itemref ref=\"item%d\"/>\n", pickItem(i))
		fmt.Fprintf(&b, "   <price>%d.%02d</price>\n   <date>%02d/%02d/2000</date>\n", 1+r.Intn(500), r.Intn(100), 1+r.Intn(12), 1+r.Intn(28))
		fmt.Fprintf(&b, "   <quantity>%d</quantity>\n   <type>regular</type>\n", 1+r.Intn(3))
		fmt.Fprintf(&b, "   <annotation><description><text>%s</text></description></annotation>\n", sentence(10))
		b.WriteString("  </closed_auction>\n")
	}
	b.WriteString(" </closed_auctions>\n</site>\n")
	return b.String()
}
