package xmark

import (
	"strings"
	"testing"

	"xrank/internal/xmldoc"
)

func parse(t *testing.T, p Params) *xmldoc.Collection {
	t.Helper()
	xml := Generate(p)
	c := xmldoc.NewCollection()
	if _, err := c.AddXML("xmark", strings.NewReader(xml), nil); err != nil {
		t.Fatalf("generated XMark does not parse: %v", err)
	}
	return c
}

func TestGenerateParsesDeep(t *testing.T) {
	c := parse(t, Params{Seed: 1, Items: 50, People: 30, OpenAuctions: 20, ClosedAuctions: 15, Categories: 10})
	d := c.Docs[0]
	if d.Root.Tag != "site" {
		t.Fatalf("root = %s", d.Root.Tag)
	}
	maxDepth := 0
	for _, e := range d.Elements {
		if dep := e.DeweyID().Depth(); dep > maxDepth {
			maxDepth = dep
		}
	}
	// Deep profile (the paper quotes depth about 10 for XMark).
	if maxDepth < 7 {
		t.Errorf("XMark-shape depth = %d, want >= 7", maxDepth)
	}
	// Single-document, intra-document references only.
	_, stats := c.ResolveLinks()
	if stats.Resolved == 0 || stats.Dangling > 0 {
		t.Errorf("reference resolution: %+v", stats)
	}
}

func TestSchemaSections(t *testing.T) {
	xml := Generate(Params{Seed: 2, Items: 20, People: 10, OpenAuctions: 8, ClosedAuctions: 5, Categories: 5})
	for _, tag := range []string{
		"<regions>", "<categories>", "<catgraph>", "<people>",
		"<open_auctions>", "<closed_auctions>", "<parlist>", "<listitem>",
		"<mailbox>", "<bidder>", "<itemref", "<personref", "<incategory",
	} {
		if !strings.Contains(xml, tag) {
			t.Errorf("schema section %s missing", tag)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Params{Seed: 5, Items: 30})
	b := Generate(Params{Seed: 5, Items: 30})
	if a != b {
		t.Fatalf("generation not deterministic")
	}
	if c := Generate(Params{Seed: 6, Items: 30}); a == c {
		t.Errorf("different seeds gave identical output")
	}
}

func TestStainedMirrorAnecdote(t *testing.T) {
	xml := Generate(Params{Seed: 3, Items: 40, OpenAuctions: 40, PlantAnecdotes: true})
	if !strings.Contains(xml, "<name>stained</name>") {
		t.Errorf("'stained' item not planted")
	}
	if !strings.Contains(xml, "antique mirror") {
		t.Errorf("'mirror' description not planted")
	}
	// The planted item must be referenced by many auctions.
	refs := strings.Count(xml, `<itemref ref="item0"/>`)
	if refs < 5 {
		t.Errorf("anecdote item referenced only %d times", refs)
	}
}

func TestCorrelationMarkers(t *testing.T) {
	xml := Generate(Params{Seed: 4, Items: 200, CorrelationGroups: 2, CorrelationWidth: 2, PlantRate: 0.5})
	if !strings.Contains(xml, "hicorr0k0 hicorr0k1") {
		t.Errorf("high-correlation group missing")
	}
	if !strings.Contains(xml, "locorr1k0") && !strings.Contains(xml, "locorr1k1") {
		t.Errorf("low-correlation markers missing")
	}
}
