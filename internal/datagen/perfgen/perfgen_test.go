package perfgen

import (
	"strings"
	"testing"

	"xrank/internal/xmldoc"
)

func TestGenerateParsesAndPlants(t *testing.T) {
	docs := Generate(Params{Seed: 1, Blocks: 3000, BlocksPerDoc: 500})
	if len(docs) != 6 {
		t.Fatalf("docs = %d", len(docs))
	}
	c := xmldoc.NewCollection()
	blocks := 0
	for _, d := range docs {
		doc, err := c.AddXML(d.Name, strings.NewReader(d.XML), nil)
		if err != nil {
			t.Fatalf("parse %s: %v", d.Name, err)
		}
		for _, e := range doc.Elements {
			if e.Tag == "rec" {
				blocks++
			}
		}
	}
	if blocks != 3000 {
		t.Errorf("blocks = %d", blocks)
	}
	_, stats := c.ResolveLinks()
	if stats.Dangling > 0 {
		t.Errorf("dangling refs: %+v", stats)
	}
	if stats.Resolved == 0 {
		t.Errorf("no citation refs resolved")
	}
}

func TestMarkerListLengths(t *testing.T) {
	docs := Generate(Params{Seed: 2, Blocks: 1200, Groups: 3, Width: 4})
	joined := strings.Builder{}
	for _, d := range docs {
		joined.WriteString(d.XML)
	}
	s := joined.String()
	// Each high group appears in blocks/groups records (the phrase opens
	// the <t> element exactly once per planted record).
	hi := strings.Count(s, "<t>hicorr0k0")
	if hi != 400 {
		t.Errorf("hicorr group 0 plantings = %d, want 400", hi)
	}
	// Low members rotate: each in ~blocks/width records, never together.
	lo := strings.Count(s, "locorr0k0")
	if lo < 200 {
		t.Errorf("locorr0k0 occurrences = %d", lo)
	}
	if strings.Contains(s, "locorr0k0 locorr0k1") || strings.Contains(s, "locorr0k1 locorr0k0") {
		t.Errorf("low-correlation members co-occur")
	}
}

func TestRepeatFattensPosLists(t *testing.T) {
	docs := Generate(Params{Seed: 3, Blocks: 10, BlocksPerDoc: 10, Repeat: 5})
	if n := strings.Count(docs[0].XML, "hicorr0k0"); n < 5 {
		t.Errorf("repeat not applied: %d occurrences in first doc", n)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Params{Seed: 9, Blocks: 100})
	b := Generate(Params{Seed: 9, Blocks: 100})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic")
		}
	}
}
