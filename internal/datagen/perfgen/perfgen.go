// Package perfgen generates the query-performance corpus behind the
// Figure 10/11 and top-m experiments. The paper runs those on frequent
// keywords over 143MB/113MB datasets, where a single inverted list spans
// thousands of disk pages; what matters to the experiments is the *list
// length* of the query keywords, not the bulk of unrelated text. This
// generator therefore emits lightweight records whose text is dominated
// by planted marker keywords, reaching paper-scale list lengths at a
// tractable corpus size:
//
//   - every record carries one complete high-correlation group
//     (hicorr<g>k<i> — keywords that co-occur, adjacent, in the same
//     element: the Figure 10 regime), and
//   - one member of each low-correlation group (locorr<g>k<i> — keywords
//     individually frequent but co-occurring only at coarse ancestors:
//     the Figure 11 regime),
//
// plus a little Zipfian filler and a sprinkling of citation references so
// ElemRanks are not degenerate.
package perfgen

import (
	"fmt"
	"math/rand"
	"strings"

	"xrank/internal/text"
)

// Doc is one generated document.
type Doc struct {
	Name string
	XML  string
}

// Params size the corpus.
type Params struct {
	Seed int64
	// Blocks is the total number of records; each plants one full
	// high-correlation group and one member per low-correlation group.
	// Default 100000.
	Blocks int
	// BlocksPerDoc is records per document. Default 400.
	BlocksPerDoc int
	// Groups is the number of marker groups (both kinds). Default 3.
	Groups int
	// Width is keywords per group. Default 4.
	Width int
	// Repeat is occurrences per planted keyword per record; it fattens
	// posLists the way frequent words repeat inside large text elements.
	// Default 6.
	Repeat int
	// FillerVocab is the size of the background vocabulary. Default 200.
	FillerVocab int
}

func (p *Params) fill() {
	if p.Blocks <= 0 {
		p.Blocks = 100000
	}
	if p.BlocksPerDoc <= 0 {
		p.BlocksPerDoc = 400
	}
	if p.Groups <= 0 {
		p.Groups = 3
	}
	if p.Width <= 0 {
		p.Width = 4
	}
	if p.Repeat <= 0 {
		p.Repeat = 6
	}
	if p.FillerVocab <= 0 {
		p.FillerVocab = 200
	}
}

// Generate produces the corpus.
func Generate(p Params) []Doc {
	p.fill()
	r := rand.New(rand.NewSource(p.Seed))
	z := text.NewZipf(r, text.SyntheticVocab(p.FillerVocab), 1.3)

	// Pre-render the marker phrases: interleaved repetitions keep every
	// pair of group members adjacent somewhere (proximity 1).
	hiPhrase := make([]string, p.Groups)
	for g := 0; g < p.Groups; g++ {
		var sb strings.Builder
		for rep := 0; rep < p.Repeat; rep++ {
			for k := 0; k < p.Width; k++ {
				if sb.Len() > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "hicorr%dk%d", g, k)
			}
		}
		hiPhrase[g] = sb.String()
	}
	loWord := func(g, k int) string {
		var sb strings.Builder
		for rep := 0; rep < p.Repeat; rep++ {
			if rep > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "locorr%dk%d", g, k)
		}
		return sb.String()
	}
	loPhrases := make([][]string, p.Groups)
	for g := range loPhrases {
		loPhrases[g] = make([]string, p.Width)
		for k := 0; k < p.Width; k++ {
			loPhrases[g][k] = loWord(g, k)
		}
	}

	nDocs := (p.Blocks + p.BlocksPerDoc - 1) / p.BlocksPerDoc
	docs := make([]Doc, 0, nDocs)
	loCursor := make([]int, p.Groups)
	blk := 0
	for d := 0; d < nDocs; d++ {
		var b strings.Builder
		b.Grow(p.BlocksPerDoc * 160)
		b.WriteString("<proc>\n")
		for i := 0; i < p.BlocksPerDoc && blk < p.Blocks; i++ {
			hi := blk % p.Groups
			fmt.Fprintf(&b, ` <rec id="r%d"`, blk)
			if i > 0 && r.Intn(5) == 0 {
				// Intra-document citation for rank variety; the target is a
				// record earlier in the same document.
				first := blk - i
				fmt.Fprintf(&b, ` ref="r%d"`, first+r.Intn(i))
			}
			b.WriteString("><t>")
			b.WriteString(hiPhrase[hi])
			for g := 0; g < p.Groups; g++ {
				b.WriteByte(' ')
				b.WriteString(loPhrases[g][loCursor[g]%p.Width])
				loCursor[g]++
			}
			fmt.Fprintf(&b, " %s %s", z.Next(), z.Next())
			b.WriteString("</t></rec>\n")
			blk++
		}
		b.WriteString("</proc>\n")
		docs = append(docs, Doc{Name: fmt.Sprintf("perf%05d.xml", d), XML: b.String()})
	}
	return docs
}
