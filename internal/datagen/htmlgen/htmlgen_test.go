package htmlgen

import (
	"strings"
	"testing"

	"xrank/internal/xmldoc"
)

func TestGenerateParsesAndLinks(t *testing.T) {
	docs := Generate(Params{Seed: 1, Pages: 30})
	if len(docs) != 30 {
		t.Fatalf("pages = %d", len(docs))
	}
	c := xmldoc.NewCollection()
	for _, d := range docs {
		if _, err := c.AddHTML(d.Name, strings.NewReader(d.HTML), nil); err != nil {
			t.Fatalf("AddHTML(%s): %v", d.Name, err)
		}
	}
	// Two-level model: one element per page.
	if c.NumElements() != 30 {
		t.Errorf("elements = %d, want 30", c.NumElements())
	}
	_, stats := c.ResolveLinks()
	if stats.Resolved == 0 {
		t.Errorf("no links resolved")
	}
	if stats.Dangling > 0 {
		t.Errorf("dangling links: %+v", stats)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Params{Seed: 2, Pages: 5})
	b := Generate(Params{Seed: 2, Pages: 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic")
		}
	}
}
