// Package htmlgen generates a small synthetic web: HTML pages with
// Zipfian text and preferentially attached hyperlinks. It exists to
// exercise XRANK's design goal of generalizing an HTML search engine
// (Section 1): on these two-level documents ElemRank reduces to PageRank
// and whole pages are returned.
package htmlgen

import (
	"fmt"
	"math/rand"
	"strings"

	"xrank/internal/text"
)

// Doc is one generated page.
type Doc struct {
	Name string
	HTML string
}

// Params scale the web.
type Params struct {
	Seed      int64
	Pages     int     // default 50
	VocabSize int     // default 2000
	ZipfS     float64 // default 1.25
	MaxLinks  int     // default 6
}

func (p *Params) fill() {
	if p.Pages <= 0 {
		p.Pages = 50
	}
	if p.VocabSize <= 0 {
		p.VocabSize = 2000
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 1.25
	}
	if p.MaxLinks <= 0 {
		p.MaxLinks = 6
	}
}

// Generate produces the pages. Links point to already generated pages
// with probability proportional to their in-degree + 1.
func Generate(p Params) []Doc {
	p.fill()
	r := rand.New(rand.NewSource(p.Seed))
	z := text.NewZipf(r, text.SyntheticVocab(p.VocabSize), p.ZipfS)
	docs := make([]Doc, 0, p.Pages)
	var endpoints []int
	var words []string
	for i := 0; i < p.Pages; i++ {
		name := fmt.Sprintf("page%04d.html", i)
		var b strings.Builder
		words = z.Sentence(words[:0], 4)
		fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n", strings.Join(words, " "))
		for par := 0; par < 2+r.Intn(4); par++ {
			words = z.Sentence(words[:0], 20+r.Intn(30))
			fmt.Fprintf(&b, "<p>%s</p>\n", strings.Join(words, " "))
		}
		if len(endpoints) > 0 {
			for l := 0; l < r.Intn(p.MaxLinks+1); l++ {
				t := endpoints[r.Intn(len(endpoints))]
				endpoints = append(endpoints, t)
				fmt.Fprintf(&b, `<a href="page%04d.html">related</a>`+"\n", t)
			}
		}
		b.WriteString("</body></html>\n")
		docs = append(docs, Doc{Name: name, HTML: b.String()})
		endpoints = append(endpoints, i)
	}
	return docs
}
