package dblp

import (
	"strings"
	"testing"

	"xrank/internal/xmldoc"
)

func genCollection(t *testing.T, p Params) (*xmldoc.Collection, []Doc) {
	t.Helper()
	docs := Generate(p)
	c := xmldoc.NewCollection()
	for _, d := range docs {
		if _, err := c.AddXML(d.Name, strings.NewReader(d.XML), nil); err != nil {
			t.Fatalf("generated XML does not parse (%s): %v", d.Name, err)
		}
	}
	return c, docs
}

func TestGenerateParsesAndScales(t *testing.T) {
	p := Params{Seed: 1, Docs: 5, PapersPerDoc: 30}
	c, docs := genCollection(t, p)
	if len(docs) != 5 {
		t.Fatalf("docs = %d", len(docs))
	}
	if c.NumElements() < 5*30*5 {
		t.Errorf("too few elements: %d", c.NumElements())
	}
	// Shallow profile: depth about 4 (proceedings/inproceedings/field,
	// attributes add one more).
	maxDepth := 0
	for _, d := range c.Docs {
		for _, e := range d.Elements {
			if dep := e.DeweyID().Depth(); dep > maxDepth {
				maxDepth = dep
			}
		}
	}
	if maxDepth < 2 || maxDepth > 5 {
		t.Errorf("DBLP-shape depth = %d, want ~2-5", maxDepth)
	}
}

func TestCitationsResolveAndSkew(t *testing.T) {
	c, _ := genCollection(t, Params{Seed: 2, Docs: 6, PapersPerDoc: 40, MaxCites: 6})
	out, stats := c.ResolveLinks()
	if stats.Resolved == 0 {
		t.Fatalf("no citations resolved: %+v", stats)
	}
	if stats.Dangling > 0 {
		t.Errorf("generator produced dangling citations: %+v", stats)
	}
	// Preferential attachment produces skewed in-degrees.
	in := make(map[int32]int)
	for _, targets := range out {
		for _, v := range targets {
			in[v]++
		}
	}
	maxIn := 0
	for _, n := range in {
		if n > maxIn {
			maxIn = n
		}
	}
	if maxIn < 5 {
		t.Errorf("citation skew too flat: max in-degree %d", maxIn)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Params{Seed: 7, Docs: 2, PapersPerDoc: 10})
	b := Generate(Params{Seed: 7, Docs: 2, PapersPerDoc: 10})
	for i := range a {
		if a[i].XML != b[i].XML || a[i].Name != b[i].Name {
			t.Fatalf("generation not deterministic at doc %d", i)
		}
	}
	c := Generate(Params{Seed: 8, Docs: 2, PapersPerDoc: 10})
	if a[0].XML == c[0].XML {
		t.Errorf("different seeds gave identical output")
	}
}

func TestCorrelationMarkers(t *testing.T) {
	docs := Generate(Params{Seed: 3, Docs: 4, PapersPerDoc: 50, CorrelationGroups: 2, CorrelationWidth: 2, PlantRate: 0.5})
	joined := ""
	for _, d := range docs {
		joined += d.XML
	}
	// High-correlation markers always co-occur in one text block.
	if !strings.Contains(joined, "hicorr0k0 hicorr0k1") {
		t.Errorf("high-correlation group not planted together")
	}
	if !strings.Contains(joined, "locorr0k0") || !strings.Contains(joined, "locorr0k1") {
		t.Errorf("low-correlation members missing")
	}
	if strings.Contains(joined, "locorr0k0 locorr0k1") {
		t.Errorf("low-correlation members planted together")
	}
}

func TestGrayAnecdotePlanted(t *testing.T) {
	docs := Generate(Params{Seed: 4, Docs: 6, PapersPerDoc: 60, PlantAnecdotes: true})
	gray, codes := false, false
	for _, d := range docs {
		if strings.Contains(d.XML, "<author>jim gray</author>") {
			gray = true
		}
		if strings.Contains(d.XML, "gray codes") {
			codes = true
		}
	}
	if !gray {
		t.Errorf("'jim gray' author not planted in cited papers")
	}
	if !codes {
		t.Errorf("'gray codes' titles not planted")
	}
}
