// Package dblp generates a DBLP-shaped synthetic corpus: many shallow
// documents (venue-year proceedings of paper records, depth ≈ 4) densely
// cross-linked by citation references — the structural profile of the real
// 143MB DBLP dataset used in the paper's experiments (Section 5.1: "DBLP
// data is relatively shallow with a depth of about 4 ... has many
// inter-document references (in the form of bibliographic citations)").
//
// The real dataset is not redistributable here; the experiments only
// depend on its shape (nesting depth, fan-out, citation graph skew, and
// Zipfian text), which the generator reproduces at any scale. See
// DESIGN.md, "Substitutions".
package dblp

import (
	"fmt"
	"math/rand"
	"strings"

	"xrank/internal/text"
)

// Doc is one generated document.
type Doc struct {
	Name string
	XML  string
}

// Params scale and shape the corpus.
type Params struct {
	// Seed makes generation deterministic.
	Seed int64
	// Docs is the number of venue-year proceedings documents. Default 20.
	Docs int
	// PapersPerDoc is the number of paper records per document. Default 100.
	PapersPerDoc int
	// VocabSize is the title/abstract vocabulary size. Default 5000.
	VocabSize int
	// ZipfS is the vocabulary skew exponent (>1). Default 1.25.
	ZipfS float64
	// MaxCites bounds citations per paper. Default 8. Citations prefer
	// already-cited papers (preferential attachment), giving the skewed
	// in-link distribution that makes ElemRank interesting.
	MaxCites int
	// CorrelationGroups plants marker keyword groups for the Figure 10/11
	// experiments: that many high-correlation and low-correlation groups
	// of CorrelationWidth keywords each. Zero disables planting.
	CorrelationGroups int
	// CorrelationWidth is keywords per group. Default 4.
	CorrelationWidth int
	// PlantRate is the probability a paper receives a marker planting.
	// Default 0.2.
	PlantRate float64
	// PlantAnecdotes seeds the Section 5.2 anecdote: an author "gray"
	// in heavily cited papers, and "gray codes" titles in ordinary ones.
	PlantAnecdotes bool
}

func (p *Params) fill() {
	if p.Docs <= 0 {
		p.Docs = 20
	}
	if p.PapersPerDoc <= 0 {
		p.PapersPerDoc = 100
	}
	if p.VocabSize <= 0 {
		p.VocabSize = 5000
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 1.25
	}
	if p.MaxCites <= 0 {
		p.MaxCites = 8
	}
	if p.CorrelationWidth <= 0 {
		p.CorrelationWidth = 4
	}
	if p.PlantRate <= 0 {
		p.PlantRate = 0.2
	}
}

var venues = []string{"sigmod", "vldb", "icde", "sigir", "www", "pods", "kdd", "cikm"}

var surnames = []string{
	"smith", "chen", "garcia", "kumar", "ivanov", "tanaka", "muller",
	"johnson", "lee", "patel", "rossi", "silva", "novak", "kim",
	"papadopoulos", "anders", "moreau", "blake", "olsen", "haas",
}

var givens = []string{
	"alice", "bob", "carol", "david", "erika", "frank", "grace",
	"henry", "irene", "jack", "karin", "liam", "maria", "nils",
}

// paperRef tracks one generated paper for citation selection.
type paperRef struct {
	doc   string
	id    string
	cites int
}

// Generate produces the corpus.
func Generate(p Params) []Doc {
	p.fill()
	r := rand.New(rand.NewSource(p.Seed))
	z := text.NewZipf(r, text.SyntheticVocab(p.VocabSize), p.ZipfS)
	var planter *text.CorrelatedPlanter
	if p.CorrelationGroups > 0 {
		planter = text.NewCorrelatedPlanter(r, p.CorrelationGroups, p.CorrelationWidth, p.PlantRate)
	}

	var all []paperRef
	// endpoints implements preferential attachment in O(1) per pick: every
	// paper appears once at creation and once per received citation, so a
	// uniform draw selects with probability proportional to cites+1.
	var endpoints []int

	pickCitation := func() *paperRef {
		if len(endpoints) == 0 {
			return nil
		}
		i := endpoints[r.Intn(len(endpoints))]
		endpoints = append(endpoints, i)
		all[i].cites++
		return &all[i]
	}

	docs := make([]Doc, 0, p.Docs)
	paperSeq := 0
	var words []string
	for d := 0; d < p.Docs; d++ {
		venue := venues[d%len(venues)]
		year := 1990 + d/len(venues)
		// The name carries the .xml extension so that XLink targets match
		// the file basenames when the corpus is written to disk and
		// indexed per file.
		name := fmt.Sprintf("%s%d.xml", venue, year)
		var b strings.Builder
		fmt.Fprintf(&b, `<proceedings venue="%s" year="%d">`, venue, year)
		fmt.Fprintf(&b, "\n  <title>proceedings of the %s conference %d</title>\n", venue, year)
		for i := 0; i < p.PapersPerDoc; i++ {
			paperSeq++
			pid := fmt.Sprintf("p%d", paperSeq)
			fmt.Fprintf(&b, `  <inproceedings id="%s">`+"\n", pid)
			// Authors.
			nAuth := 1 + r.Intn(3)
			for a := 0; a < nAuth; a++ {
				fmt.Fprintf(&b, "    <author>%s %s</author>\n", givens[r.Intn(len(givens))], surnames[r.Intn(len(surnames))])
			}
			// Title: Zipf words plus optional markers.
			words = z.Sentence(words[:0], 4+r.Intn(6))
			if planter != nil {
				words = planter.Plant(words)
			}
			if p.PlantAnecdotes && r.Intn(97) == 0 {
				words = append(words, "gray", "codes")
			}
			fmt.Fprintf(&b, "    <title>%s</title>\n", strings.Join(words, " "))
			fmt.Fprintf(&b, "    <year>%d</year>\n    <pages>%d-%d</pages>\n", year, 1+r.Intn(400), 401+r.Intn(40))
			// Abstract.
			words = z.Sentence(words[:0], 15+r.Intn(25))
			if planter != nil {
				words = planter.Plant(words)
			}
			fmt.Fprintf(&b, "    <abstract>%s</abstract>\n", strings.Join(words, " "))
			// Citations.
			nCites := r.Intn(p.MaxCites + 1)
			for c := 0; c < nCites; c++ {
				target := pickCitation()
				if target == nil {
					break
				}
				if target.doc == name {
					fmt.Fprintf(&b, `    <cite ref="%s">see also</cite>`+"\n", target.id)
				} else {
					fmt.Fprintf(&b, `    <cite xlink="%s#%s">see also</cite>`+"\n", target.doc, target.id)
				}
			}
			b.WriteString("  </inproceedings>\n")
			all = append(all, paperRef{doc: name, id: pid})
			endpoints = append(endpoints, len(all)-1)
		}
		b.WriteString("</proceedings>\n")
		docs = append(docs, Doc{Name: name, XML: b.String()})
	}

	if p.PlantAnecdotes {
		docs = plantGrayAuthor(docs, all)
	}
	return docs
}

// plantGrayAuthor rewrites the three most-cited papers to carry the
// author "jim gray", reproducing the paper's 'gray' ranking anecdote: the
// <author> elements of heavily referenced papers outrank the <title>
// elements about gray codes.
func plantGrayAuthor(docs []Doc, all []paperRef) []Doc {
	// Find top-3 cited papers.
	type top struct {
		doc, id string
		cites   int
	}
	var best [3]top
	for _, p := range all {
		for i := 0; i < 3; i++ {
			if p.cites > best[i].cites {
				copy(best[i+1:], best[i:2])
				best[i] = top{doc: p.doc, id: p.id, cites: p.cites}
				break
			}
		}
	}
	for di := range docs {
		for _, b := range best {
			if b.doc != docs[di].Name || b.id == "" {
				continue
			}
			marker := fmt.Sprintf(`<inproceedings id="%s">`, b.id)
			replacement := marker + "\n    <author>jim gray</author>"
			docs[di].XML = strings.Replace(docs[di].XML, marker, replacement, 1)
		}
	}
	return docs
}
