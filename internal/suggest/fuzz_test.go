package suggest

import (
	"errors"
	"reflect"
	"testing"

	"xrank/internal/storage"
)

// FuzzSuggestPrefix feeds arbitrary byte prefixes — including torn
// UTF-8 sequences — through both search paths and demands exact
// agreement and no panics. The dictionary mixes ASCII, multi-byte UTF-8
// and shared prefixes so mid-label and child-boundary descents are both
// exercised.
func FuzzSuggestPrefix(f *testing.F) {
	a := NewBuilder()
	for term, w := range map[string]float64{
		"data": 5, "database": 9, "databases": 2, "datum": 4,
		"naïve": 3, "naïveté": 6, "日本": 8, "日本語": 1, "d": 0.5,
	} {
		a.Add(term, w)
	}
	b := NewBuilder()
	for term, w := range map[string]float64{
		"data": 1, "date": 7, "naïve": 2, "日": 4, "xql": 3,
	} {
		b.Add(term, w)
	}
	tries := []*Trie{a.Build(), b.Build()}

	f.Add("da")
	f.Add("naï")
	f.Add("日")
	f.Add(string([]byte{0xc3}))       // first byte of a split UTF-8 pair
	f.Add(string([]byte{0xff, 0xfe})) // invalid UTF-8
	f.Add("")
	f.Fuzz(func(t *testing.T, prefix string) {
		for _, k := range []int{1, 3, 100} {
			got, _ := TopK(tries, prefix, k)
			want := ScanTopK(tries, prefix, k)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("prefix %q k %d: TopK=%v Scan=%v", prefix, k, got, want)
			}
		}
	})
}

// FuzzSuggestUnmarshal feeds arbitrary payloads to the trie parser: it
// must either reject them with an ErrCorrupt-wrapping error or produce
// a trie whose invariants hold — and must never panic.
func FuzzSuggestUnmarshal(f *testing.F) {
	b := NewBuilder()
	b.Add("data", 5)
	b.Add("database", 9)
	b.Add("dog", 2)
	f.Add(b.Build().Marshal())
	f.Add(NewBuilder().Build().Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		tr, err := Unmarshal(payload)
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted payloads must behave: enumeration agrees with the
		// recorded term count and the two search paths agree.
		all, _ := TopK([]*Trie{tr}, "", tr.Terms()+1)
		if len(all) != tr.Terms() {
			t.Fatalf("TopK enumerated %d terms, header says %d", len(all), tr.Terms())
		}
		if want := ScanTopK([]*Trie{tr}, "", tr.Terms()+1); !reflect.DeepEqual(all, want) {
			t.Fatalf("TopK=%v Scan=%v", all, want)
		}
	})
}
