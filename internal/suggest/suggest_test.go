package suggest

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"xrank/internal/storage"
)

func buildTrie(t *testing.T, w map[string]float64) *Trie {
	t.Helper()
	b := NewBuilder()
	for term, score := range w {
		b.Add(term, score)
	}
	return b.Build()
}

func TestTopKBasic(t *testing.T) {
	tr := buildTrie(t, map[string]float64{
		"data": 5, "database": 9, "databases": 2, "datum": 4, "dog": 7, "query": 1,
	})
	got, _ := TopK([]*Trie{tr}, "dat", 2)
	want := []Suggestion{{Term: "database", Score: 9}, {Term: "data", Score: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK(dat, 2) = %v, want %v", got, want)
	}
	got, _ = TopK([]*Trie{tr}, "", 3)
	want = []Suggestion{{Term: "database", Score: 9}, {Term: "dog", Score: 7}, {Term: "data", Score: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK('', 3) = %v, want %v", got, want)
	}
	if got, _ := TopK([]*Trie{tr}, "zebra", 5); len(got) != 0 {
		t.Fatalf("TopK(zebra) = %v, want empty", got)
	}
	if got, _ := TopK([]*Trie{tr}, "dat", 0); got != nil {
		t.Fatalf("TopK(k=0) = %v, want nil", got)
	}
}

func TestTopKTieOrder(t *testing.T) {
	tr := buildTrie(t, map[string]float64{"ab": 3, "aa": 3, "ac": 3, "a": 3})
	got, _ := TopK([]*Trie{tr}, "a", 4)
	want := []Suggestion{{Term: "a", Score: 3}, {Term: "aa", Score: 3}, {Term: "ab", Score: 3}, {Term: "ac", Score: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tie order = %v, want %v", got, want)
	}
}

func TestTopKMultiTrie(t *testing.T) {
	a := buildTrie(t, map[string]float64{"xml": 2, "xql": 1, "xpath": 5})
	b := buildTrie(t, map[string]float64{"xml": 4, "xquery": 3})
	got, _ := TopK([]*Trie{a, b, nil}, "x", 10)
	want := ScanTopK([]*Trie{a, b, nil}, "x", 10)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK = %v, ScanTopK = %v", got, want)
	}
	if got[0].Term != "xml" || got[0].Score != 6 {
		t.Fatalf("cross-trie sum: got %v, want xml with score 6", got[0])
	}
}

// TestTopKMatchesScanRandom cross-checks the best-first search against
// the brute-force scan over random weighted dictionaries, including
// prefixes that land mid-label and multi-trie merges.
func TestTopKMatchesScanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{"a", "b", "ab", "ba", "abc", "z"}
	for round := 0; round < 50; round++ {
		var tries []*Trie
		for ti := 0; ti < 1+rng.Intn(3); ti++ {
			b := NewBuilder()
			for i := 0; i < 1+rng.Intn(40); i++ {
				var sb strings.Builder
				for j := 0; j < 1+rng.Intn(4); j++ {
					sb.WriteString(alphabet[rng.Intn(len(alphabet))])
				}
				b.Add(sb.String(), float64(rng.Intn(10)))
			}
			tries = append(tries, b.Build())
		}
		for _, prefix := range []string{"", "a", "ab", "abc", "b", "ba", "z", "q", "abab"} {
			for _, k := range []int{1, 3, 10, 1000} {
				got, _ := TopK(tries, prefix, k)
				want := ScanTopK(tries, prefix, k)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d prefix %q k %d: TopK=%v Scan=%v", round, prefix, k, got, want)
				}
			}
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	w := map[string]float64{
		"data": 5, "database": 9, "db": 2, "d": 1, "xml": 0, "x": 3.5,
	}
	tr := buildTrie(t, w)
	got, err := Unmarshal(tr.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Terms() != tr.Terms() || got.Nodes() != tr.Nodes() {
		t.Fatalf("roundtrip terms/nodes = %d/%d, want %d/%d", got.Terms(), got.Nodes(), tr.Terms(), tr.Nodes())
	}
	a, _ := TopK([]*Trie{tr}, "", 100)
	b, _ := TopK([]*Trie{got}, "", 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("roundtrip changed results: %v vs %v", a, b)
	}

	empty := NewBuilder().Build()
	got, err = Unmarshal(empty.Marshal())
	if err != nil {
		t.Fatalf("empty roundtrip: %v", err)
	}
	if got.Terms() != 0 {
		t.Fatalf("empty roundtrip terms = %d", got.Terms())
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	tr := buildTrie(t, map[string]float64{"data": 5, "database": 9, "dog": 1})
	good := tr.Marshal()
	if _, err := Unmarshal(good); err != nil {
		t.Fatalf("pristine payload rejected: %v", err)
	}
	// Every single-byte mutation must either parse to a structurally
	// valid trie or report corruption — never panic. (On disk the blob
	// CRC catches these first; this guards the direct-parse path.)
	for i := range good {
		for _, delta := range []byte{1, 0x80} {
			mut := append([]byte(nil), good...)
			mut[i] ^= delta
			tr2, err := Unmarshal(mut)
			if err == nil {
				// Structurally valid by luck: invariants must still hold.
				if got, _ := TopK([]*Trie{tr2}, "", 1000); len(got) != tr2.Terms() {
					t.Fatalf("byte %d: valid parse but inconsistent trie", i)
				}
			} else if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("byte %d: error does not wrap ErrCorrupt: %v", i, err)
			}
		}
	}
	// Truncations too.
	for n := 0; n < len(good); n++ {
		if _, err := Unmarshal(good[:n]); err != nil && !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("truncation at %d: %v", n, err)
		}
	}
}

func TestBuilderIgnoresJunk(t *testing.T) {
	b := NewBuilder()
	b.Add("", 5)
	b.Add("ok", -1)
	b.Add("ok", 2)
	tr := b.Build()
	if tr.Terms() != 1 {
		t.Fatalf("terms = %d, want 1", tr.Terms())
	}
	got, _ := TopK([]*Trie{tr}, "", 5)
	if len(got) != 1 || got[0].Score != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestWalkOrder(t *testing.T) {
	tr := buildTrie(t, map[string]float64{"b": 1, "a": 2, "ab": 3, "abc": 4})
	var terms []string
	tr.Walk(func(term string, _ float64) { terms = append(terms, term) })
	want := []string{"a", "ab", "abc", "b"}
	if !reflect.DeepEqual(terms, want) {
		t.Fatalf("Walk order = %v, want %v", terms, want)
	}
}
