// Package suggest implements weighted top-k prefix autosuggestion over
// the corpus term dictionary: a compact radix trie in which every node
// carries the maximum completion score of its subtree, so top-k
// completion can prune exactly — the same block-max idea the block
// postings format uses for inverted lists, applied to the lexicon.
//
// One trie is built per index segment, scored by ElemRank-weighted term
// frequency (each occurrence of a term contributes its containing
// element's ElemRank), serialized through the engine's checksummed-blob
// protocol, and merged at query time: TopK runs a synchronized
// best-first search across any number of tries, summing per-trie scores
// so the result is exactly what a single trie over the union dictionary
// would return. ScanTopK is the brute-force reference the differential
// harness compares against.
package suggest

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"xrank/internal/storage"
)

// node is one radix-trie node. label holds the bytes consumed by moving
// from the parent to this node (at least one byte except at the root);
// children are ordered by strictly increasing first label byte. max is
// the maximum score over the node's whole subtree including itself, the
// summary that makes best-first completion prune exactly.
type node struct {
	label    []byte
	children []*node
	score    float64 // meaningful only when terminal
	max      float64
	terminal bool
}

// Trie is an immutable weighted term dictionary supporting exact top-k
// prefix completion. Build one with a Builder or Unmarshal.
type Trie struct {
	root  *node
	terms int
	nodes int
}

// Terms returns the number of distinct terms in the dictionary.
func (t *Trie) Terms() int {
	if t == nil {
		return 0
	}
	return t.terms
}

// Nodes returns the number of radix nodes (excluding the root).
func (t *Trie) Nodes() int {
	if t == nil {
		return 0
	}
	return t.nodes
}

// ApproxBytes estimates the in-memory footprint of the trie.
func (t *Trie) ApproxBytes() int64 {
	if t == nil {
		return 0
	}
	var b int64
	var walk func(n *node)
	walk = func(n *node) {
		// struct + label bytes + child-pointer slots.
		b += 56 + int64(len(n.label)) + 8*int64(len(n.children))
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return b
}

// Builder accumulates term weights before freezing them into a Trie.
// Adding the same term repeatedly sums the weights.
type Builder struct {
	w map[string]float64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{w: make(map[string]float64)} }

// Add accumulates weight for term. Empty terms and non-finite or
// negative weights are ignored (scores are sums of ElemRanks, which are
// finite and non-negative by construction).
func (b *Builder) Add(term string, weight float64) {
	if term == "" || math.IsNaN(weight) || math.IsInf(weight, 0) || weight < 0 {
		return
	}
	b.w[term] += weight
}

// Len returns the number of distinct terms accumulated so far.
func (b *Builder) Len() int { return len(b.w) }

// Build freezes the accumulated weights into a Trie. The construction
// is deterministic: terms are sorted and the radix structure is fully
// determined by the sorted term set.
func (b *Builder) Build() *Trie {
	terms := make([]string, 0, len(b.w))
	for t := range b.w {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	t := &Trie{root: &node{}, terms: len(terms)}
	t.root.children = buildNodes(t, terms, b.w, 0)
	t.root.max = childMax(t.root)
	return t
}

// buildNodes builds the radix children for the group of sorted terms
// that all share a common prefix of length depth.
func buildNodes(t *Trie, terms []string, w map[string]float64, depth int) []*node {
	var out []*node
	for i := 0; i < len(terms); {
		b := terms[i][depth]
		j := i + 1
		for j < len(terms) && terms[j][depth] == b {
			j++
		}
		group := terms[i:j]
		// Longest common prefix of the group starting at depth.
		lcp := len(group[0]) - depth
		for _, s := range group[1:] {
			l := 0
			for l < lcp && depth+l < len(s) && s[depth+l] == group[0][depth+l] {
				l++
			}
			lcp = l
		}
		n := &node{label: []byte(group[0][depth : depth+lcp])}
		end := depth + lcp
		rest := group
		if len(group[0]) == end {
			n.terminal = true
			n.score = w[group[0]]
			rest = group[1:]
		}
		n.children = buildNodes(t, rest, w, end)
		n.max = childMax(n)
		if n.terminal && n.score > n.max {
			n.max = n.score
		}
		t.nodes++
		out = append(out, n)
		i = j
	}
	return out
}

func childMax(n *node) float64 {
	m := 0.0
	if n.terminal {
		m = n.score
	}
	for _, c := range n.children {
		if c.max > m {
			m = c.max
		}
	}
	return m
}

// Serialization. The payload (framed by storage.WriteBlobAtomic's
// magic/version/CRC envelope, so bit flips are caught before parsing) is
//
//	uvarint termCount
//	preorder nodes, each:
//	  uvarint labelLen | label | flags(1) | [score f64 LE if terminal]
//	  max f64 LE | uvarint childCount
//
// with the root serialized first (labelLen 0). Unmarshal validates the
// full set of structural invariants — label non-empty below the root,
// children strictly ordered by first byte, radix compaction (a
// non-terminal non-root node has >= 2 children), max equal to the
// recomputed subtree maximum, term count matching — so a manipulated
// payload that passes the CRC still cannot produce a trie that violates
// the pruning argument.

const flagTerminal = 1

// Marshal serializes the trie payload.
func (t *Trie) Marshal() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(t.terms))
	var enc func(n *node)
	enc = func(n *node) {
		buf = binary.AppendUvarint(buf, uint64(len(n.label)))
		buf = append(buf, n.label...)
		var flags byte
		if n.terminal {
			flags |= flagTerminal
		}
		buf = append(buf, flags)
		if n.terminal {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.score))
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.max))
		buf = binary.AppendUvarint(buf, uint64(len(n.children)))
		for _, c := range n.children {
			enc(c)
		}
	}
	enc(t.root)
	return buf
}

// corrupt wraps a parse failure in storage.ErrCorrupt so callers treat a
// damaged suggest artifact exactly like any other damaged artifact.
func corrupt(format string, args ...interface{}) error {
	return fmt.Errorf("%w suggest trie: %s", storage.ErrCorrupt, fmt.Sprintf(format, args...))
}

// Unmarshal parses and validates a payload produced by Marshal. Any
// structural violation returns an error wrapping storage.ErrCorrupt;
// it never panics on arbitrary input.
func Unmarshal(payload []byte) (*Trie, error) {
	p := payload
	wantTerms, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, corrupt("bad term count varint")
	}
	p = p[n:]
	if wantTerms > uint64(len(payload)) {
		return nil, corrupt("term count %d exceeds payload size", wantTerms)
	}

	t := &Trie{}
	gotTerms := 0

	// Iterative preorder parse: an explicit stack of parents still
	// expecting children keeps adversarially deep payloads from
	// overflowing the goroutine stack.
	type frame struct {
		n    *node
		left uint64 // children still to parse
	}
	var stack []frame
	root := true
	for {
		nd := &node{}
		ll, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, corrupt("bad label length varint")
		}
		p = p[n:]
		if ll > uint64(len(p)) {
			return nil, corrupt("label length %d exceeds remaining payload", ll)
		}
		if root && ll != 0 {
			return nil, corrupt("root node has a non-empty label")
		}
		if !root && ll == 0 {
			return nil, corrupt("non-root node has an empty label")
		}
		nd.label = append([]byte(nil), p[:ll]...)
		p = p[ll:]
		if len(p) < 1 {
			return nil, corrupt("truncated before flags")
		}
		flags := p[0]
		p = p[1:]
		if flags&^byte(flagTerminal) != 0 {
			return nil, corrupt("unknown flag bits %02x", flags)
		}
		nd.terminal = flags&flagTerminal != 0
		if root && nd.terminal {
			return nil, corrupt("terminal root would encode the empty term")
		}
		if nd.terminal {
			if len(p) < 8 {
				return nil, corrupt("truncated before score")
			}
			nd.score = math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
			if math.IsNaN(nd.score) || math.IsInf(nd.score, 0) || nd.score < 0 {
				return nil, corrupt("score %v is not finite and non-negative", nd.score)
			}
			gotTerms++
		}
		if len(p) < 8 {
			return nil, corrupt("truncated before max")
		}
		nd.max = math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
		if math.IsNaN(nd.max) || math.IsInf(nd.max, 0) || nd.max < 0 {
			return nil, corrupt("max %v is not finite and non-negative", nd.max)
		}
		cc, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, corrupt("bad child count varint")
		}
		p = p[n:]
		if cc > uint64(len(p))+1 {
			return nil, corrupt("child count %d exceeds remaining payload", cc)
		}
		if root {
			t.root = nd
			root = false
		} else {
			t.nodes++
			parent := stack[len(stack)-1].n
			if len(parent.children) > 0 {
				prev := parent.children[len(parent.children)-1]
				if prev.label[0] >= nd.label[0] {
					return nil, corrupt("children out of order (%02x then %02x)", prev.label[0], nd.label[0])
				}
			}
			parent.children = append(parent.children, nd)
		}
		stack = append(stack, frame{n: nd, left: cc})
		// Unwind every completed frame, validating its invariants now
		// that the whole subtree is known.
		for len(stack) > 0 && stack[len(stack)-1].left == 0 {
			done := stack[len(stack)-1].n
			stack = stack[:len(stack)-1]
			if done != t.root && !done.terminal && len(done.children) < 2 {
				return nil, corrupt("non-terminal node with %d children breaks radix compaction", len(done.children))
			}
			if m := childMax(done); done.max != m {
				return nil, corrupt("max summary %v != recomputed subtree max %v", done.max, m)
			}
			if len(stack) > 0 {
				stack[len(stack)-1].left--
			}
		}
		if len(stack) == 0 {
			break
		}
	}
	if len(p) != 0 {
		return nil, corrupt("%d trailing bytes after the root subtree", len(p))
	}
	if uint64(gotTerms) != wantTerms {
		return nil, corrupt("header declares %d terms, payload holds %d", wantTerms, gotTerms)
	}
	t.terms = gotTerms
	return t, nil
}

// cursor is a position inside one trie during prefix descent: off bytes
// of n.label have been consumed (off == len(label) means "at n").
type cursor struct {
	n   *node
	off int
}

// descend advances from the root through prefix, returning false when
// the trie contains no term with that prefix.
func (t *Trie) descend(prefix []byte) (cursor, bool) {
	if t == nil || t.root == nil {
		return cursor{}, false
	}
	c := cursor{n: t.root}
	for i := 0; i < len(prefix); i++ {
		b := prefix[i]
		if c.off < len(c.n.label) {
			if c.n.label[c.off] != b {
				return cursor{}, false
			}
			c.off++
			continue
		}
		ch := findChild(c.n, b)
		if ch == nil {
			return cursor{}, false
		}
		c = cursor{n: ch, off: 1}
	}
	return c, true
}

func findChild(n *node, b byte) *node {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.children[mid].label[0] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.children) && n.children[lo].label[0] == b {
		return n.children[lo]
	}
	return nil
}

// Suggestion is one completion: the full term and its summed score.
type Suggestion struct {
	Term  string  `json:"term"`
	Score float64 `json:"score"`
}

// Stats reports the work one TopK call did.
type Stats struct {
	// NodesVisited counts heap expansions — the pruning-effectiveness
	// measure (brute force visits the whole prefix subtree).
	NodesVisited int
	// Candidates counts terms whose exact score was materialized.
	Candidates int
}

// heap item: either an internal prefix with an admissible score bound
// (term == false) or a fully materialized term with its exact score.
type hitem struct {
	key   string
	score float64
	curs  []cursor
	term  bool
}

// itemLess orders the best-first frontier: higher score first, then
// lexicographically smaller key, then term items before node items.
// With admissible bounds this pops terms in exactly the final result
// order (score desc, term asc) — see the exactness argument in
// DESIGN.md.
func itemLess(a, b *hitem) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.term && !b.term
}

type itemHeap []*hitem

func (h itemHeap) Len() int           { return len(h) }
func (h itemHeap) Less(i, j int) bool { return itemLess(h[i], h[j]) }
func (h itemHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) push(x *hitem)     { *h = append(*h, x); h.up(len(*h) - 1) }
func (h itemHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.Less(i, p) {
			return
		}
		h.Swap(i, p)
		i = p
	}
}
func (h *itemHeap) pop() *hitem {
	old := *h
	n := len(old)
	old.Swap(0, n-1)
	it := old[n-1]
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	return it
}
func (h itemHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.Less(l, small) {
			small = l
		}
		if r < n && h.Less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.Swap(i, small)
		i = small
	}
}

// TopK returns the k highest-scored terms with the given byte prefix
// across all tries, scores summed per term across tries, ordered by
// score descending with ties broken by term ascending — exactly the
// order ScanTopK produces. Nil tries in the slice are skipped. The
// search is best-first over (prefix, bound) frontier items, where a
// prefix's bound is the sum of the per-trie subtree maxima: admissible
// and monotone, so the first k term pops are the exact answer.
func TopK(tries []*Trie, prefix string, k int) ([]Suggestion, Stats) {
	var st Stats
	if k <= 0 {
		return nil, st
	}
	start := make([]cursor, 0, len(tries))
	var bound float64
	for _, t := range tries {
		if c, ok := t.descend([]byte(prefix)); ok {
			start = append(start, c)
			bound += c.n.max
		}
	}
	if len(start) == 0 {
		return nil, st
	}
	h := itemHeap{&hitem{key: prefix, score: bound, curs: start}}
	var out []Suggestion
	for len(h) > 0 && len(out) < k {
		it := h.pop()
		if it.term {
			out = append(out, Suggestion{Term: it.key, Score: it.score})
			continue
		}
		st.NodesVisited++
		// Expand: collect the exact score if any cursor sits on a
		// terminal, and group cursor advancements by next byte. Summation
		// runs in trie order in both paths, so exact scores are
		// bit-identical to ScanTopK's accumulation.
		var exact float64
		hasTerm := false
		var next [256][]cursor
		for _, c := range it.curs {
			if c.off < len(c.n.label) {
				b := c.n.label[c.off]
				next[b] = append(next[b], cursor{n: c.n, off: c.off + 1})
				continue
			}
			if c.n.terminal {
				exact += c.n.score
				hasTerm = true
			}
			for _, ch := range c.n.children {
				next[ch.label[0]] = append(next[ch.label[0]], cursor{n: ch, off: 1})
			}
		}
		if hasTerm {
			st.Candidates++
			h.push(&hitem{key: it.key, score: exact, term: true})
		}
		for b := 0; b < 256; b++ {
			curs := next[b]
			if curs == nil {
				continue
			}
			var bd float64
			for _, c := range curs {
				bd += c.n.max
			}
			// Raw byte append: string(byte) would UTF-8-encode values
			// above 0x7f and corrupt multi-byte terms.
			h.push(&hitem{key: it.key + string([]byte{byte(b)}), score: bd, curs: curs})
		}
	}
	return out, st
}

// ScanTopK is the brute-force reference: enumerate every term with the
// prefix by walking the whole subtree of each trie, sum scores per term
// in trie order, sort (score desc, term asc), take k. The differential
// harness and the fuzz target compare TopK against it.
func ScanTopK(tries []*Trie, prefix string, k int) []Suggestion {
	if k <= 0 {
		return nil
	}
	sums := make(map[string]float64)
	var order []string
	for _, t := range tries {
		t.scan([]byte(prefix), func(term string, score float64) {
			if _, ok := sums[term]; !ok {
				order = append(order, term)
			}
			sums[term] += score
		})
	}
	sort.Strings(order)
	out := make([]Suggestion, 0, len(order))
	for _, term := range order {
		out = append(out, Suggestion{Term: term, Score: sums[term]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if len(out) > k {
		out = out[:k]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// scan invokes fn for every (term, score) in the trie with the given
// prefix, in lexicographic term order.
func (t *Trie) scan(prefix []byte, fn func(term string, score float64)) {
	c, ok := t.descend(prefix)
	if !ok {
		return
	}
	// The start cursor may sit mid-label; the remaining label bytes are
	// part of every term below it.
	base := append([]byte(nil), prefix...)
	base = append(base, c.n.label[c.off:]...)
	var dfs func(n *node, acc []byte)
	dfs = func(n *node, acc []byte) {
		if n.terminal {
			fn(string(acc), n.score)
		}
		for _, ch := range n.children {
			dfs(ch, append(acc, ch.label...))
		}
	}
	dfs(c.n, base)
}

// Walk invokes fn for every (term, score) in lexicographic order — the
// full-dictionary enumeration the bench harness uses.
func (t *Trie) Walk(fn func(term string, score float64)) {
	if t == nil || t.root == nil {
		return
	}
	t.scan(nil, fn)
}
