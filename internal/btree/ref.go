// Package btree implements the disk-resident B+-trees that XRANK builds
// over its inverted lists (Guo et al., SIGMOD 2003, Sections 4.3 and 4.4).
//
// Keys are arbitrary byte strings compared with bytes.Compare; XRANK uses
// the order-preserving encoding of Dewey IDs, so tree order is document
// order and the paper's getLongestCommonPrefix probe (Figure 7) reduces to
// a successor/predecessor pair of descents.
//
// Two departures from a textbook B+-tree implement the paper's space
// optimizations:
//
//   - Nodes are variable-size byte regions packed into pages, so many
//     small trees (over short inverted lists) share a single disk page
//     (Section 4.3.1: "we store multiple B+-trees ... on the same disk
//     page").
//   - A tree can be built with *external* leaves: the sorted inverted
//     list itself serves as the leaf level and only internal nodes are
//     stored (Section 4.4.1, the HDIL layout).
//
// Trees are bulk-loaded from sorted input and read-only thereafter, which
// matches the paper's usage (indexes are rebuilt on document-granularity
// updates, Section 4.5).
package btree

import (
	"encoding/binary"

	"xrank/internal/storage"
)

// Ref addresses a node: a byte region [Off, Off+Len) within a page.
type Ref struct {
	Page storage.PageID
	Off  uint16
	Len  uint16
}

// RefSize is the encoded size of a Ref in bytes.
const RefSize = 8

// NilRef is the zero-length reference used for empty trees.
var NilRef = Ref{Page: storage.InvalidPage}

// IsNil reports whether r is the nil reference.
func (r Ref) IsNil() bool { return r.Len == 0 && r.Page == storage.InvalidPage }

// AppendTo appends the 8-byte encoding of r to buf.
func (r Ref) AppendTo(buf []byte) []byte {
	var tmp [RefSize]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(r.Page))
	binary.LittleEndian.PutUint16(tmp[4:], r.Off)
	binary.LittleEndian.PutUint16(tmp[6:], r.Len)
	return append(buf, tmp[:]...)
}

// DecodeRef decodes a Ref from the first 8 bytes of buf.
func DecodeRef(buf []byte) Ref {
	return Ref{
		Page: storage.PageID(binary.LittleEndian.Uint32(buf[0:])),
		Off:  binary.LittleEndian.Uint16(buf[4:]),
		Len:  binary.LittleEndian.Uint16(buf[6:]),
	}
}
