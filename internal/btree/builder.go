package btree

import (
	"bytes"
	"fmt"

	"xrank/internal/storage"
)

// Builder bulk-loads one B+-tree from key-sorted input. Keys must be added
// in strictly increasing byte order. The tree is laid out bottom-up: leaves
// stream out as they fill, inner levels accumulate and flush behind them,
// so memory use is O(height), not O(n).
type Builder struct {
	w          *PageWriter
	targetSize int

	leaf    *nodeBuf
	levels  []*levelState
	last    []byte
	n       int
	extMode bool
	done    bool
}

type levelState struct {
	nb  *nodeBuf
	typ byte
}

// NewBuilder returns a builder writing nodes through w. targetSize bounds
// the serialized node size; 0 means a full page, which makes large-tree
// nodes page-sized while small trees still pack tightly with their
// neighbors.
func NewBuilder(w *PageWriter, targetSize int) *Builder {
	if targetSize <= 0 || targetSize > MaxBlobSize {
		targetSize = MaxBlobSize
	}
	return &Builder{w: w, targetSize: targetSize, leaf: newNodeBuf(nodeLeaf)}
}

// NewExternalBuilder returns a builder for a tree whose leaf level is
// external: the caller supplies (firstKey, pageID) pairs via AddLeafPage —
// the inverted-list pages themselves — and only inner levels are stored
// (the HDIL layout of Section 4.4.1).
func NewExternalBuilder(w *PageWriter, targetSize int) *Builder {
	b := NewBuilder(w, targetSize)
	b.extMode = true
	b.leaf = nil
	return b
}

func (b *Builder) checkKey(key []byte) error {
	if b.done {
		return fmt.Errorf("btree: Add after Finish")
	}
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if b.last != nil && bytes.Compare(key, b.last) <= 0 {
		return fmt.Errorf("btree: keys out of order: %x after %x", key, b.last)
	}
	b.last = append(b.last[:0], key...)
	b.n++
	return nil
}

// Add appends a leaf entry. Only valid on internal-leaf builders.
func (b *Builder) Add(key, val []byte) error {
	if b.extMode {
		return fmt.Errorf("btree: Add on an external-leaf builder")
	}
	if err := b.checkKey(key); err != nil {
		return err
	}
	sz := leafEntrySize(key, val)
	if nodeHeader+sz > b.targetSize {
		return fmt.Errorf("btree: entry of %d bytes exceeds node size %d", sz, b.targetSize)
	}
	if b.leaf.size()+sz > b.targetSize {
		if err := b.flushLeaf(); err != nil {
			return err
		}
	}
	b.leaf.addLeaf(key, val)
	return nil
}

// AddLeafPage registers an external leaf: the inverted-list page starting
// with firstKey. Only valid on external builders.
func (b *Builder) AddLeafPage(firstKey []byte, page storage.PageID) error {
	if !b.extMode {
		return fmt.Errorf("btree: AddLeafPage on an internal-leaf builder")
	}
	if err := b.checkKey(firstKey); err != nil {
		return err
	}
	return b.push(0, firstKey, Ref{}, page, nodeExtInner)
}

func (b *Builder) flushLeaf() error {
	if b.leaf.count == 0 {
		return nil
	}
	firstKey := append([]byte(nil), b.leaf.firstKey...)
	ref, err := b.w.Write(b.leaf.finish())
	if err != nil {
		return err
	}
	b.leaf.reset(nodeLeaf)
	return b.push(0, firstKey, ref, 0, nodeInner)
}

// push adds an entry to inner level i (0 = level directly above leaves),
// flushing that level's node upward if full. typ tells how the level
// stores children (nodeInner for Ref children, nodeExtInner for external
// pages; only level 0 can be nodeExtInner).
func (b *Builder) push(i int, key []byte, child Ref, ext storage.PageID, typ byte) error {
	for len(b.levels) <= i {
		b.levels = append(b.levels, &levelState{nb: newNodeBuf(typ), typ: typ})
	}
	lv := b.levels[i]
	var sz int
	if lv.typ == nodeExtInner {
		sz = extEntrySize(key)
	} else {
		sz = innerEntrySize(key)
	}
	if nodeHeader+sz > b.targetSize {
		return fmt.Errorf("btree: inner entry of %d bytes exceeds node size %d", sz, b.targetSize)
	}
	if lv.nb.size()+sz > b.targetSize {
		if err := b.flushLevel(i); err != nil {
			return err
		}
	}
	if lv.typ == nodeExtInner {
		lv.nb.addExt(key, ext)
	} else {
		lv.nb.addInner(key, child)
	}
	return nil
}

func (b *Builder) flushLevel(i int) error {
	lv := b.levels[i]
	if lv.nb.count == 0 {
		return nil
	}
	firstKey := append([]byte(nil), lv.nb.firstKey...)
	ref, err := b.w.Write(lv.nb.finish())
	if err != nil {
		return err
	}
	lv.nb.reset(lv.typ)
	return b.push(i+1, firstKey, ref, 0, nodeInner)
}

// Finish completes the tree and returns its root Ref, plus the number of
// entries added. An empty tree yields NilRef.
func (b *Builder) Finish() (Ref, int, error) {
	if b.done {
		return NilRef, 0, fmt.Errorf("btree: Finish called twice")
	}
	b.done = true
	if b.n == 0 {
		return NilRef, 0, nil
	}
	if !b.extMode {
		// A tree that fits one leaf: the leaf is the root.
		if len(b.levels) == 0 {
			ref, err := b.w.Write(b.leaf.finish())
			return ref, b.n, err
		}
		if err := b.flushLeaf(); err != nil {
			return NilRef, 0, err
		}
	}
	// Collapse pending levels upward. The topmost level with exactly one
	// pending node and nothing above becomes the root.
	for i := 0; ; i++ {
		lv := b.levels[i]
		isTop := i == len(b.levels)-1
		if isTop && lv.nb.count == 1 && lv.typ == nodeInner {
			// A single-child inner node is redundant; its child is the root.
			// (Never true for nodeExtInner: an external page cannot be a
			// root, we need at least one inner node to map keys to pages.)
			n, err := parseNode(lv.nb.finish())
			if err != nil {
				return NilRef, 0, err
			}
			return n.kids[0], b.n, nil
		}
		if isTop {
			ref, err := b.w.Write(lv.nb.finish())
			return ref, b.n, err
		}
		if err := b.flushLevel(i); err != nil {
			return NilRef, 0, err
		}
	}
}
