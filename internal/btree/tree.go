package btree

import (
	"bytes"
	"fmt"

	"xrank/internal/storage"
)

// Tree reads a bulk-loaded B+-tree through a buffer pool.
type Tree struct {
	pool *storage.BufferPool
	root Ref
	ec   *storage.ExecContext
}

// NewTree opens the tree rooted at root.
func NewTree(pool *storage.BufferPool, root Ref) *Tree {
	return NewTreeExec(pool, root, nil)
}

// NewTreeExec opens the tree rooted at root with a per-query execution
// context: every node fetch is attributed to ec and honours its
// cancellation and budget. A nil ec is NewTree.
func NewTreeExec(pool *storage.BufferPool, root Ref, ec *storage.ExecContext) *Tree {
	return &Tree{pool: pool, root: root, ec: ec}
}

// Root returns the root Ref (for persisting in a lexicon).
func (t *Tree) Root() Ref { return t.root }

// readNode fetches and parses the node at ref. The node bytes are copied
// out of the buffer-pool frame so the frame can be released immediately;
// nodes are small and queries touch O(height) of them per probe.
func (t *Tree) readNode(ref Ref) (parsedNode, error) {
	fr, err := t.pool.GetExec(t.ec, ref.Page)
	if err != nil {
		return parsedNode{}, err
	}
	end := int(ref.Off) + int(ref.Len)
	if end > len(fr.Data) {
		fr.Release()
		return parsedNode{}, fmt.Errorf("btree: node ref %+v beyond page", ref)
	}
	data := make([]byte, ref.Len)
	copy(data, fr.Data[ref.Off:end])
	fr.Release()
	return parseNode(data)
}

// Cursor iterates leaf entries in key order. It keeps the descent path so
// Next can cross leaf boundaries without sibling pointers.
type Cursor struct {
	t     *Tree
	stack []pathLevel // root .. leaf parent
	leaf  parsedNode
	idx   int
	valid bool
}

type pathLevel struct {
	n   parsedNode
	idx int
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current entry's key. Valid only while the cursor is.
func (c *Cursor) Key() []byte { return c.leaf.keys[c.idx] }

// Value returns the current entry's value.
func (c *Cursor) Value() []byte { return c.leaf.vals[c.idx] }

// Next advances to the following entry in key order, invalidating the
// cursor at the end of the tree.
func (c *Cursor) Next() error {
	if !c.valid {
		return fmt.Errorf("btree: Next on invalid cursor")
	}
	c.idx++
	if c.idx < len(c.leaf.keys) {
		return nil
	}
	// Climb to the deepest ancestor with a following sibling.
	for lvl := len(c.stack) - 1; lvl >= 0; lvl-- {
		pl := &c.stack[lvl]
		if pl.idx+1 < len(pl.n.keys) {
			pl.idx++
			c.stack = c.stack[:lvl+1]
			return c.descendLeftmost(pl.n.kids[pl.idx])
		}
	}
	c.valid = false
	return nil
}

func (c *Cursor) descendLeftmost(ref Ref) error {
	for {
		n, err := c.t.readNode(ref)
		if err != nil {
			return err
		}
		if n.typ == nodeLeaf {
			c.leaf = n
			c.idx = 0
			c.valid = len(n.keys) > 0
			return nil
		}
		if n.typ != nodeInner {
			return fmt.Errorf("btree: unexpected node type %d during leaf descent", n.typ)
		}
		c.stack = append(c.stack, pathLevel{n: n, idx: 0})
		ref = n.kids[0]
	}
}

// First positions a cursor at the smallest entry.
func (t *Tree) First() (*Cursor, error) {
	c := &Cursor{t: t}
	if t.root.IsNil() {
		return c, nil
	}
	if err := c.descendLeftmost(t.root); err != nil {
		return nil, err
	}
	return c, nil
}

// Seek positions a cursor at the first entry with key >= target (the
// B+-tree range-scan entry point used by the RDIL probe, Section 4.3.2).
func (t *Tree) Seek(target []byte) (*Cursor, error) {
	c := &Cursor{t: t}
	if t.root.IsNil() {
		return c, nil
	}
	ref := t.root
	for {
		n, err := t.readNode(ref)
		if err != nil {
			return nil, err
		}
		switch n.typ {
		case nodeLeaf:
			c.leaf = n
			c.idx = len(n.keys)
			for i, k := range n.keys {
				if bytes.Compare(k, target) >= 0 {
					c.idx = i
					break
				}
			}
			c.valid = true
			if c.idx == len(n.keys) {
				// All entries in this leaf are < target; the successor (if
				// any) is the first entry of the next leaf.
				c.idx = len(n.keys) - 1
				return c, c.Next()
			}
			return c, nil
		case nodeInner:
			// Largest child whose first key <= target; child 0 if target
			// precedes everything.
			i := 0
			for j := 1; j < len(n.keys); j++ {
				if bytes.Compare(n.keys[j], target) <= 0 {
					i = j
				} else {
					break
				}
			}
			c.stack = append(c.stack, pathLevel{n: n, idx: i})
			ref = n.kids[i]
		default:
			return nil, fmt.Errorf("btree: Seek in external tree")
		}
	}
}

// SeekBefore positions a cursor at the last entry with key < target, or an
// invalid cursor if none exists. Together with Seek it yields the
// predecessor/successor pair that determines the longest common prefix of
// target present in the tree (Figure 7, lines 11-16).
func (t *Tree) SeekBefore(target []byte) (*Cursor, error) {
	c := &Cursor{t: t}
	if t.root.IsNil() {
		return c, nil
	}
	ref := t.root
	for {
		n, err := t.readNode(ref)
		if err != nil {
			return nil, err
		}
		switch n.typ {
		case nodeLeaf:
			c.leaf = n
			c.idx = -1
			for i, k := range n.keys {
				if bytes.Compare(k, target) < 0 {
					c.idx = i
				} else {
					break
				}
			}
			c.valid = c.idx >= 0
			return c, nil
		case nodeInner:
			// Largest child whose first key < target. If none, no entry
			// precedes target anywhere in this tree.
			i := -1
			for j := 0; j < len(n.keys); j++ {
				if bytes.Compare(n.keys[j], target) < 0 {
					i = j
				} else {
					break
				}
			}
			if i < 0 {
				return c, nil
			}
			c.stack = append(c.stack, pathLevel{n: n, idx: i})
			ref = n.kids[i]
		default:
			return nil, fmt.Errorf("btree: SeekBefore in external tree")
		}
	}
}

// FindLeafPage returns the external leaf page that would contain target:
// the last page whose first key is <= target, or the first page when
// target precedes all keys. ok is false for an empty tree. Used by HDIL,
// where the Dewey-sorted inverted list is the leaf level (Section 4.4.1).
func (t *Tree) FindLeafPage(target []byte) (page storage.PageID, ok bool, err error) {
	if t.root.IsNil() {
		return 0, false, nil
	}
	ref := t.root
	for {
		n, err := t.readNode(ref)
		if err != nil {
			return 0, false, err
		}
		i := 0
		for j := 1; j < len(n.keys); j++ {
			if bytes.Compare(n.keys[j], target) <= 0 {
				i = j
			} else {
				break
			}
		}
		switch n.typ {
		case nodeExtInner:
			return n.ext[i], true, nil
		case nodeInner:
			ref = n.kids[i]
		default:
			return 0, false, fmt.Errorf("btree: FindLeafPage in internal-leaf tree")
		}
	}
}
