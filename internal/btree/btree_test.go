package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"xrank/internal/storage"
)

type testEnv struct {
	pf   *storage.PageFile
	w    *PageWriter
	pool *storage.BufferPool
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	pf, err := storage.CreatePageFile(filepath.Join(t.TempDir(), "tree.pages"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return &testEnv{pf: pf, w: NewPageWriter(pf), pool: storage.NewBufferPool(pf, 64)}
}

// buildTree constructs a tree over the given sorted keys with value =
// "v:"+key and returns it opened for reading.
func buildTree(t *testing.T, env *testEnv, keys [][]byte, targetSize int) *Tree {
	t.Helper()
	b := NewBuilder(env.w, targetSize)
	for _, k := range keys {
		if err := b.Add(k, append([]byte("v:"), k...)); err != nil {
			t.Fatalf("Add(%q): %v", k, err)
		}
	}
	root, n, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if n != len(keys) {
		t.Fatalf("Finish count = %d, want %d", n, len(keys))
	}
	if err := env.w.Flush(); err != nil {
		t.Fatal(err)
	}
	return NewTree(env.pool, root)
}

func sortedKeys(n int, r *rand.Rand) [][]byte {
	set := make(map[string]bool)
	for len(set) < n {
		k := fmt.Sprintf("k%06d", r.Intn(n*10))
		set[k] = true
	}
	keys := make([][]byte, 0, n)
	for k := range set {
		keys = append(keys, []byte(k))
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	return keys
}

func collectAll(t *testing.T, tr *Tree) [][]byte {
	t.Helper()
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for c.Valid() {
		out = append(out, append([]byte(nil), c.Key()...))
		wantVal := append([]byte("v:"), c.Key()...)
		if !bytes.Equal(c.Value(), wantVal) {
			t.Fatalf("value mismatch for %q: %q", c.Key(), c.Value())
		}
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestSingleLeafTree(t *testing.T) {
	env := newEnv(t)
	keys := [][]byte{[]byte("apple"), []byte("banana"), []byte("cherry")}
	tr := buildTree(t, env, keys, 0)
	got := collectAll(t, tr)
	if len(got) != 3 {
		t.Fatalf("iterated %d entries", len(got))
	}
	c, err := tr.Seek([]byte("banana"))
	if err != nil || !c.Valid() || string(c.Key()) != "banana" {
		t.Errorf("Seek exact failed: %v %v", c.Valid(), err)
	}
	c, _ = tr.Seek([]byte("b"))
	if !c.Valid() || string(c.Key()) != "banana" {
		t.Errorf("Seek between: %q", c.Key())
	}
	c, _ = tr.Seek([]byte("a"))
	if !c.Valid() || string(c.Key()) != "apple" {
		t.Errorf("Seek before all: %q", c.Key())
	}
	c, _ = tr.Seek([]byte("zzz"))
	if c.Valid() {
		t.Errorf("Seek past end should be invalid")
	}
	c, _ = tr.SeekBefore([]byte("banana"))
	if !c.Valid() || string(c.Key()) != "apple" {
		t.Errorf("SeekBefore: %v", c.Valid())
	}
	c, _ = tr.SeekBefore([]byte("apple"))
	if c.Valid() {
		t.Errorf("SeekBefore first key should be invalid")
	}
}

func TestEmptyTree(t *testing.T) {
	env := newEnv(t)
	b := NewBuilder(env.w, 0)
	root, n, err := b.Finish()
	if err != nil || n != 0 || !root.IsNil() {
		t.Fatalf("empty Finish: %v %d %v", root, n, err)
	}
	tr := NewTree(env.pool, root)
	if c, err := tr.First(); err != nil || c.Valid() {
		t.Errorf("First on empty tree")
	}
	if c, err := tr.Seek([]byte("x")); err != nil || c.Valid() {
		t.Errorf("Seek on empty tree")
	}
	if c, err := tr.SeekBefore([]byte("x")); err != nil || c.Valid() {
		t.Errorf("SeekBefore on empty tree")
	}
}

func TestLargeTreeIterationAndSeek(t *testing.T) {
	env := newEnv(t)
	r := rand.New(rand.NewSource(1))
	keys := sortedKeys(5000, r)
	// Small node size forces several levels.
	tr := buildTree(t, env, keys, 256)
	got := collectAll(t, tr)
	if len(got) != len(keys) {
		t.Fatalf("iterated %d, want %d", len(got), len(keys))
	}
	for i := range got {
		if !bytes.Equal(got[i], keys[i]) {
			t.Fatalf("entry %d = %q, want %q", i, got[i], keys[i])
		}
	}
	// Seek every key exactly, and a nonexistent key between each pair.
	for i, k := range keys {
		c, err := tr.Seek(k)
		if err != nil || !c.Valid() || !bytes.Equal(c.Key(), k) {
			t.Fatalf("Seek(%q): valid=%v key=%q err=%v", k, c.Valid(), c.Key(), err)
		}
		mid := append(append([]byte(nil), k...), '!')
		c, err = tr.Seek(mid)
		if err != nil {
			t.Fatal(err)
		}
		if i+1 < len(keys) {
			if !c.Valid() || !bytes.Equal(c.Key(), keys[i+1]) {
				t.Fatalf("Seek(%q) = %q, want %q", mid, c.Key(), keys[i+1])
			}
		} else if c.Valid() {
			t.Fatalf("Seek past last should be invalid")
		}
	}
}

func TestSeekBeforeMatchesReference(t *testing.T) {
	env := newEnv(t)
	r := rand.New(rand.NewSource(2))
	keys := sortedKeys(2000, r)
	tr := buildTree(t, env, keys, 200)
	probe := func(target []byte) {
		c, err := tr.SeekBefore(target)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: last key < target.
		i := sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], target) >= 0 })
		if i == 0 {
			if c.Valid() {
				t.Fatalf("SeekBefore(%q) should be invalid, got %q", target, c.Key())
			}
			return
		}
		if !c.Valid() || !bytes.Equal(c.Key(), keys[i-1]) {
			t.Fatalf("SeekBefore(%q) = %q (valid=%v), want %q", target, c.Key(), c.Valid(), keys[i-1])
		}
		// And Next from the predecessor must land on the successor.
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
		if i < len(keys) {
			if !c.Valid() || !bytes.Equal(c.Key(), keys[i]) {
				t.Fatalf("Next after SeekBefore(%q) = %q, want %q", target, c.Key(), keys[i])
			}
		} else if c.Valid() {
			t.Fatalf("Next after SeekBefore(%q) should exhaust", target)
		}
	}
	for _, k := range keys {
		probe(k)
		probe(append(append([]byte(nil), k...), 0))
	}
	probe([]byte("")) // before everything? empty target
	probe([]byte("zzzzzzzz"))
}

func TestManySmallTreesSharePages(t *testing.T) {
	env := newEnv(t)
	const nTrees = 200
	roots := make([]Ref, nTrees)
	for i := 0; i < nTrees; i++ {
		b := NewBuilder(env.w, 0)
		for j := 0; j < 3; j++ {
			k := []byte(fmt.Sprintf("t%03d-k%d", i, j))
			if err := b.Add(k, []byte("val")); err != nil {
				t.Fatal(err)
			}
		}
		root, _, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		roots[i] = root
	}
	if err := env.w.Flush(); err != nil {
		t.Fatal(err)
	}
	// 200 trees of ~60 bytes each must share pages: far fewer than one
	// page per tree (the Section 4.3.1 optimization).
	if np := env.pf.NumPages(); np > 5 {
		t.Errorf("%d pages for %d tiny trees; packing broken", np, nTrees)
	}
	// Every tree must still be independently readable.
	for i, root := range roots {
		tr := NewTree(env.pool, root)
		c, err := tr.First()
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for c.Valid() {
			count++
			c.Next()
		}
		if count != 3 {
			t.Fatalf("tree %d has %d entries", i, count)
		}
	}
}

func TestExternalLeafTree(t *testing.T) {
	env := newEnv(t)
	// Simulate 50 inverted-list pages with known first keys.
	b := NewExternalBuilder(env.w, 128)
	type leaf struct {
		key  []byte
		page storage.PageID
	}
	var leaves []leaf
	for i := 0; i < 50; i++ {
		l := leaf{key: []byte(fmt.Sprintf("p%04d", i*10)), page: storage.PageID(1000 + i)}
		leaves = append(leaves, l)
		if err := b.AddLeafPage(l.key, l.page); err != nil {
			t.Fatal(err)
		}
	}
	root, n, err := b.Finish()
	if err != nil || n != 50 {
		t.Fatalf("Finish: %d %v", n, err)
	}
	if err := env.w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr := NewTree(env.pool, root)
	probe := func(target string, want storage.PageID) {
		got, ok, err := tr.FindLeafPage([]byte(target))
		if err != nil || !ok || got != want {
			t.Errorf("FindLeafPage(%q) = %d,%v,%v want %d", target, got, ok, err, want)
		}
	}
	probe("p0000", 1000) // exact first
	probe("a", 1000)     // before all -> first page
	probe("p0005", 1000) // inside first page's range
	probe("p0010", 1001) // exact second
	probe("p0495", 1049) // inside last
	probe("zzzz", 1049)  // after all -> last page
	probe("p0123", 1012) // p0120 <= p0123 < p0130
	// Internal ops must be rejected on external trees.
	if _, err := tr.Seek([]byte("x")); err == nil {
		t.Errorf("Seek on external tree should fail")
	}
	// And vice versa.
	it := buildTree(t, env, [][]byte{[]byte("k")}, 0)
	if _, _, err := it.FindLeafPage([]byte("k")); err == nil {
		t.Errorf("FindLeafPage on internal tree should fail")
	}
}

func TestBuilderErrors(t *testing.T) {
	env := newEnv(t)
	b := NewBuilder(env.w, 0)
	if err := b.Add([]byte("b"), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]byte("a"), nil); err == nil {
		t.Errorf("out-of-order Add should fail")
	}
	if err := b.Add([]byte("b"), nil); err == nil {
		t.Errorf("duplicate Add should fail")
	}
	if err := b.Add(nil, nil); err == nil {
		t.Errorf("empty key should fail")
	}
	if err := b.Add([]byte("c"), make([]byte, storage.PageSize)); err == nil {
		t.Errorf("oversized value should fail")
	}
	if err := b.AddLeafPage([]byte("x"), 1); err == nil {
		t.Errorf("AddLeafPage on internal builder should fail")
	}
	if _, _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Finish(); err == nil {
		t.Errorf("double Finish should fail")
	}
	if err := b.Add([]byte("z"), nil); err == nil {
		t.Errorf("Add after Finish should fail")
	}
	eb := NewExternalBuilder(env.w, 0)
	if err := eb.Add([]byte("x"), nil); err == nil {
		t.Errorf("Add on external builder should fail")
	}
}

func TestPageWriterErrors(t *testing.T) {
	env := newEnv(t)
	if _, err := env.w.Write(nil); err == nil {
		t.Errorf("empty blob should fail")
	}
	if _, err := env.w.Write(make([]byte, storage.PageSize+1)); err == nil {
		t.Errorf("oversized blob should fail")
	}
	// A full-page blob is fine.
	if _, err := env.w.Write(make([]byte, storage.PageSize)); err != nil {
		t.Errorf("page-sized blob: %v", err)
	}
}

func TestRefRoundTrip(t *testing.T) {
	r := Ref{Page: 123456, Off: 789, Len: 4321}
	got := DecodeRef(r.AppendTo(nil))
	if got != r {
		t.Errorf("ref round trip: %+v != %+v", got, r)
	}
	if !NilRef.IsNil() || r.IsNil() {
		t.Errorf("IsNil wrong")
	}
}

func TestQuickSeekMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pf, err := storage.CreatePageFile(filepath.Join(t.TempDir(), fmt.Sprintf("q%d.pages", seed)))
		if err != nil {
			return false
		}
		defer pf.Close()
		w := NewPageWriter(pf)
		n := 1 + r.Intn(300)
		keys := sortedKeys(n, r)
		b := NewBuilder(w, 64+r.Intn(400))
		for _, k := range keys {
			if b.Add(k, k) != nil {
				return false
			}
		}
		root, _, err := b.Finish()
		if err != nil || w.Flush() != nil {
			return false
		}
		tr := NewTree(storage.NewBufferPool(pf, 32), root)
		for trial := 0; trial < 30; trial++ {
			target := []byte(fmt.Sprintf("k%06d", r.Intn(n*10)))
			i := sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], target) >= 0 })
			c, err := tr.Seek(target)
			if err != nil {
				return false
			}
			if i == len(keys) {
				if c.Valid() {
					return false
				}
			} else if !c.Valid() || !bytes.Equal(c.Key(), keys[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
