package btree

import (
	"encoding/binary"
	"fmt"

	"xrank/internal/storage"
)

// Node wire format. A node is a blob placed by PageWriter:
//
//	byte 0:     type (nodeLeaf, nodeInner, nodeExtInner)
//	bytes 1..2: entry count (uint16 LE)
//	entries:
//	  leaf:     { u16 keyLen, u16 valLen, key, val }
//	  inner:    { u16 keyLen, key, Ref(8) }          child = node
//	  extInner: { u16 keyLen, key, u32 page }        child = external page
//
// Inner keys are the first (smallest) key of the child's subtree.
const (
	nodeLeaf     = 0
	nodeInner    = 1
	nodeExtInner = 2

	nodeHeader = 3
)

// parsedNode is a decoded node. Its slices alias the copied node buffer,
// which the cursor owns, so they stay valid for the cursor's lifetime.
type parsedNode struct {
	typ  byte
	keys [][]byte
	vals [][]byte         // leaf only
	kids []Ref            // inner only
	ext  []storage.PageID // extInner only
}

func parseNode(data []byte) (parsedNode, error) {
	var n parsedNode
	if len(data) < nodeHeader {
		return n, fmt.Errorf("btree: node blob too short (%d bytes)", len(data))
	}
	n.typ = data[0]
	count := int(binary.LittleEndian.Uint16(data[1:3]))
	p := nodeHeader
	n.keys = make([][]byte, 0, count)
	switch n.typ {
	case nodeLeaf:
		n.vals = make([][]byte, 0, count)
		for i := 0; i < count; i++ {
			if p+4 > len(data) {
				return n, fmt.Errorf("btree: truncated leaf entry header")
			}
			kl := int(binary.LittleEndian.Uint16(data[p:]))
			vl := int(binary.LittleEndian.Uint16(data[p+2:]))
			p += 4
			if p+kl+vl > len(data) {
				return n, fmt.Errorf("btree: truncated leaf entry body")
			}
			n.keys = append(n.keys, data[p:p+kl])
			n.vals = append(n.vals, data[p+kl:p+kl+vl])
			p += kl + vl
		}
	case nodeInner:
		n.kids = make([]Ref, 0, count)
		for i := 0; i < count; i++ {
			if p+2 > len(data) {
				return n, fmt.Errorf("btree: truncated inner entry header")
			}
			kl := int(binary.LittleEndian.Uint16(data[p:]))
			p += 2
			if p+kl+RefSize > len(data) {
				return n, fmt.Errorf("btree: truncated inner entry body")
			}
			n.keys = append(n.keys, data[p:p+kl])
			n.kids = append(n.kids, DecodeRef(data[p+kl:]))
			p += kl + RefSize
		}
	case nodeExtInner:
		n.ext = make([]storage.PageID, 0, count)
		for i := 0; i < count; i++ {
			if p+2 > len(data) {
				return n, fmt.Errorf("btree: truncated ext entry header")
			}
			kl := int(binary.LittleEndian.Uint16(data[p:]))
			p += 2
			if p+kl+4 > len(data) {
				return n, fmt.Errorf("btree: truncated ext entry body")
			}
			n.keys = append(n.keys, data[p:p+kl])
			n.ext = append(n.ext, storage.PageID(binary.LittleEndian.Uint32(data[p+kl:])))
			p += kl + 4
		}
	default:
		return n, fmt.Errorf("btree: unknown node type %d", n.typ)
	}
	return n, nil
}

// nodeBuf incrementally serializes one node.
type nodeBuf struct {
	buf      []byte
	count    int
	firstKey []byte
}

func newNodeBuf(typ byte) *nodeBuf {
	nb := &nodeBuf{buf: make([]byte, nodeHeader, 512)}
	nb.buf[0] = typ
	return nb
}

func (nb *nodeBuf) reset(typ byte) {
	nb.buf = nb.buf[:nodeHeader]
	nb.buf[0] = typ
	nb.count = 0
	nb.firstKey = nb.firstKey[:0]
}

func (nb *nodeBuf) noteFirst(key []byte) {
	if nb.count == 0 {
		nb.firstKey = append(nb.firstKey[:0], key...)
	}
	nb.count++
}

func (nb *nodeBuf) addLeaf(key, val []byte) {
	nb.noteFirst(key)
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(val)))
	nb.buf = append(nb.buf, hdr[:]...)
	nb.buf = append(nb.buf, key...)
	nb.buf = append(nb.buf, val...)
}

func (nb *nodeBuf) addInner(key []byte, child Ref) {
	nb.noteFirst(key)
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(key)))
	nb.buf = append(nb.buf, hdr[:]...)
	nb.buf = append(nb.buf, key...)
	nb.buf = child.AppendTo(nb.buf)
}

func (nb *nodeBuf) addExt(key []byte, page storage.PageID) {
	nb.noteFirst(key)
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(key)))
	nb.buf = append(nb.buf, hdr[:2]...)
	nb.buf = append(nb.buf, key...)
	binary.LittleEndian.PutUint32(hdr[2:], uint32(page))
	nb.buf = append(nb.buf, hdr[2:6]...)
}

func (nb *nodeBuf) finish() []byte {
	binary.LittleEndian.PutUint16(nb.buf[1:3], uint16(nb.count))
	return nb.buf
}

func (nb *nodeBuf) size() int { return len(nb.buf) }

// leafEntrySize returns the serialized size of a leaf entry.
func leafEntrySize(key, val []byte) int { return 4 + len(key) + len(val) }

// innerEntrySize returns the serialized size of an inner entry.
func innerEntrySize(key []byte) int { return 2 + len(key) + RefSize }

// extEntrySize returns the serialized size of an external-child entry.
func extEntrySize(key []byte) int { return 2 + len(key) + 4 }
