package btree

import (
	"fmt"

	"xrank/internal/storage"
)

// PageWriter packs variable-size node blobs into fixed-size pages of a
// PageFile. Blobs never span pages; a blob that does not fit in the
// remaining space of the current page starts a new one. Sharing one
// PageWriter across many trees is what co-locates small trees on shared
// pages.
type PageWriter struct {
	pf   *storage.PageFile
	page []byte
	used int
	// pageID of the buffered page once flushed; pages are appended
	// sequentially so the buffered page's ID is the current page count.
	dirty bool
}

// NewPageWriter returns a writer appending to pf.
func NewPageWriter(pf *storage.PageFile) *PageWriter {
	return &PageWriter{pf: pf, page: make([]byte, storage.PageSize)}
}

// MaxBlobSize is the largest blob a PageWriter accepts.
const MaxBlobSize = storage.PageSize

// Write places blob into the file and returns its Ref. Blobs larger than
// MaxBlobSize are rejected.
func (w *PageWriter) Write(blob []byte) (Ref, error) {
	if len(blob) == 0 {
		return NilRef, fmt.Errorf("btree: empty blob")
	}
	if len(blob) > MaxBlobSize {
		return NilRef, fmt.Errorf("btree: blob of %d bytes exceeds page size %d", len(blob), storage.PageSize)
	}
	if w.used+len(blob) > storage.PageSize {
		if err := w.flush(); err != nil {
			return NilRef, err
		}
	}
	ref := Ref{Page: storage.PageID(w.pf.NumPages()), Off: uint16(w.used), Len: uint16(len(blob))}
	copy(w.page[w.used:], blob)
	w.used += len(blob)
	w.dirty = true
	return ref, nil
}

func (w *PageWriter) flush() error {
	if !w.dirty {
		return nil
	}
	for i := w.used; i < storage.PageSize; i++ {
		w.page[i] = 0
	}
	if _, err := w.pf.AppendPage(w.page); err != nil {
		return err
	}
	w.used = 0
	w.dirty = false
	return nil
}

// Flush writes out the partially filled current page, if any. Call after
// the last tree has been built. Refs handed out earlier remain valid.
func (w *PageWriter) Flush() error { return w.flush() }
