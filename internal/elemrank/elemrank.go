package elemrank

import (
	"fmt"
	"math"
)

// Variant selects which formula from the Section 3.1 refinement series to
// compute. The final formula is the paper's contribution; the earlier ones
// exist for the ablation experiment (E7 in DESIGN.md).
type Variant int

const (
	// VariantFinal is the paper's final four-term formula: separate
	// navigation probabilities for hyperlinks (d1), forward containment
	// (d2) and reverse containment (d3), aggregate (un-normalized) reverse
	// propagation, and a random-jump term scaled by document size.
	VariantFinal Variant = iota
	// VariantPageRank naively maps every element to a document and every
	// edge (hyperlink and containment alike) to a directed hyperlink —
	// the first strawman of Section 3.1.
	VariantPageRank
	// VariantBidirectional adds reverse containment edges but treats all
	// three edge classes uniformly: e(u)/(Nh+Nc+1) to each neighbor.
	VariantBidirectional
	// VariantDiscriminated distinguishes hyperlinks (d1) from containment
	// (d2, both directions, normalized by Nc+1) but does not yet treat
	// reverse containment as aggregate.
	VariantDiscriminated
)

func (v Variant) String() string {
	switch v {
	case VariantFinal:
		return "final"
	case VariantPageRank:
		return "pagerank"
	case VariantBidirectional:
		return "bidirectional"
	case VariantDiscriminated:
		return "discriminated"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Params are the ElemRank computation parameters. The defaults are the
// paper's Section 3.2 experimental settings.
type Params struct {
	// D1, D2, D3 are the probabilities of navigating a hyperlink, a
	// forward containment edge, and a reverse containment edge. For the
	// single-d variants (PageRank, Bidirectional), D1+D2+D3 is used as d.
	D1, D2, D3 float64
	// Epsilon is the convergence threshold on the L1 norm of the score
	// change between iterations.
	Epsilon float64
	// MaxIters bounds the iteration count; 0 means 1000.
	MaxIters int
	// Variant selects the formula; zero value is VariantFinal.
	Variant Variant
}

// DefaultParams returns the paper's settings: d1=0.35, d2=0.25, d3=0.25,
// convergence threshold 0.00002.
func DefaultParams() Params {
	return Params{D1: 0.35, D2: 0.25, D3: 0.25, Epsilon: 0.00002, MaxIters: 1000}
}

func (p Params) validate() error {
	if p.D1 < 0 || p.D2 < 0 || p.D3 < 0 {
		return fmt.Errorf("elemrank: negative navigation probability")
	}
	if s := p.D1 + p.D2 + p.D3; s <= 0 || s >= 1 {
		return fmt.Errorf("elemrank: d1+d2+d3 = %v must be in (0, 1)", s)
	}
	if p.Epsilon <= 0 {
		return fmt.Errorf("elemrank: epsilon must be positive")
	}
	return nil
}

// Result holds the computed ElemRanks.
type Result struct {
	// Scores[g] is the ElemRank of the element with global index g. Scores
	// form a probability distribution (they sum to 1): the stationary
	// probability of the Section 3.1 random surfer being at the element.
	Scores []float64
	// Iterations is the number of power iterations performed.
	Iterations int
	// Converged reports whether the L1 delta fell below Epsilon before
	// MaxIters.
	Converged bool
	// Delta is the final L1 change.
	Delta float64
}

// Compute runs the ElemRank power iteration on g.
func Compute(g *Graph, p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if g.N == 0 {
		return &Result{Converged: true}, nil
	}
	maxIters := p.MaxIters
	if maxIters == 0 {
		maxIters = 1000
	}

	// jump[v] is the random-jump distribution q(v). For the final variant
	// it is 1/(N_d * N_de(v)) — pick a document uniformly, then an element
	// within it uniformly — so small documents are not swamped by large
	// ones. The earlier variants use the uniform 1/N_e.
	jump := make([]float64, g.N)
	if p.Variant == VariantFinal {
		for v := 0; v < g.N; v++ {
			jump[v] = 1 / (float64(g.Docs) * float64(g.DocSize[v]))
		}
	} else {
		u := 1 / float64(g.N)
		for v := range jump {
			jump[v] = u
		}
	}

	dNav := p.D1 + p.D2 + p.D3
	cur := make([]float64, g.N)
	next := make([]float64, g.N)
	copy(cur, jump) // start from the jump distribution

	res := &Result{}
	for iter := 1; iter <= maxIters; iter++ {
		dangling := pushIteration(g, p, dNav, cur, next)
		// Dangling mass (elements with no usable out-edges) is re-injected
		// through the jump distribution, preserving total probability mass.
		base := 1 - dNav + dNav*dangling
		delta := 0.0
		for v := 0; v < g.N; v++ {
			nv := next[v] + base*jump[v]
			delta += math.Abs(nv - cur[v])
			cur[v] = nv
		}
		res.Iterations = iter
		res.Delta = delta
		if delta < p.Epsilon {
			res.Converged = true
			break
		}
	}
	res.Scores = cur
	return res, nil
}

// pushIteration distributes cur along the graph edges into next (which it
// zeroes first) according to the selected variant, and returns the total
// dangling probability mass.
func pushIteration(g *Graph, p Params, dNav float64, cur, next []float64) (dangling float64) {
	for i := range next {
		next[i] = 0
	}
	switch p.Variant {
	case VariantPageRank:
		// All edges directed: hyperlinks and forward containment only.
		for u := 0; u < g.N; u++ {
			nOut := g.NumHLinks(int32(u)) + g.NumChildren(int32(u))
			if nOut == 0 {
				dangling += cur[u]
				continue
			}
			w := dNav * cur[u] / float64(nOut)
			for _, v := range g.HLinks(int32(u)) {
				next[v] += w
			}
			for _, v := range g.Children(int32(u)) {
				next[v] += w
			}
		}
	case VariantBidirectional:
		// Uniform over hyperlinks, children and parent: e(u)/(Nh+Nc+1).
		for u := 0; u < g.N; u++ {
			n := float64(g.NumHLinks(int32(u)) + g.NumChildren(int32(u)))
			hasParent := g.Parent[u] >= 0
			if hasParent {
				n++
			}
			if n == 0 {
				dangling += cur[u]
				continue
			}
			w := dNav * cur[u] / n
			for _, v := range g.HLinks(int32(u)) {
				next[v] += w
			}
			for _, v := range g.Children(int32(u)) {
				next[v] += w
			}
			if hasParent {
				next[g.Parent[u]] += w
			}
		}
	case VariantDiscriminated:
		// d1 over hyperlinks; d2 over containment in both directions,
		// normalized by Nc+1. Probabilities re-split when a class is absent.
		for u := 0; u < g.N; u++ {
			nh := g.NumHLinks(int32(u))
			nc := g.NumChildren(int32(u))
			hasParent := g.Parent[u] >= 0
			contDeg := int(nc)
			if hasParent {
				contDeg++
			}
			denom := 0.0
			if nh > 0 {
				denom += p.D1
			}
			if contDeg > 0 {
				denom += p.D2 + p.D3
			}
			if denom == 0 {
				dangling += cur[u]
				continue
			}
			scale := dNav / denom
			if nh > 0 {
				w := scale * p.D1 * cur[u] / float64(nh)
				for _, v := range g.HLinks(int32(u)) {
					next[v] += w
				}
			}
			if contDeg > 0 {
				w := scale * (p.D2 + p.D3) * cur[u] / float64(contDeg)
				for _, v := range g.Children(int32(u)) {
					next[v] += w
				}
				if hasParent {
					next[g.Parent[u]] += w
				}
			}
		}
	default: // VariantFinal
		// d1 over hyperlinks (split by Nh), d2 over children (split by Nc),
		// d3 to the parent in full (aggregate reverse propagation). When an
		// element lacks an edge class, the navigation probability is
		// proportionally split among the available ones (Section 3.1).
		for u := 0; u < g.N; u++ {
			nh := g.NumHLinks(int32(u))
			nc := g.NumChildren(int32(u))
			hasParent := g.Parent[u] >= 0
			denom := 0.0
			if nh > 0 {
				denom += p.D1
			}
			if nc > 0 {
				denom += p.D2
			}
			if hasParent {
				denom += p.D3
			}
			if denom == 0 {
				dangling += cur[u]
				continue
			}
			scale := dNav / denom
			if nh > 0 {
				w := scale * p.D1 * cur[u] / float64(nh)
				for _, v := range g.HLinks(int32(u)) {
					next[v] += w
				}
			}
			if nc > 0 {
				w := scale * p.D2 * cur[u] / float64(nc)
				for _, v := range g.Children(int32(u)) {
					next[v] += w
				}
			}
			if hasParent {
				next[g.Parent[u]] += scale * p.D3 * cur[u]
			}
		}
	}
	return dangling
}
