// Package elemrank computes ElemRank — the XRANK measure of the objective
// importance of an XML element (Guo et al., SIGMOD 2003, Section 3).
// ElemRank generalizes PageRank to element granularity: importance flows
// along hyperlink edges (like PageRank), forward along containment edges
// (an important paper makes its sections important), and in aggregate
// backward along reverse containment edges (a workshop with many important
// papers is important).
//
// The package implements the paper's final formula and, for ablation, the
// three intermediate refinements developed in Section 3.1.
package elemrank

import (
	"xrank/internal/xmldoc"
)

// Graph is the element-granularity link graph of a collection in a compact
// array form: elements are identified by their collection-wide global
// index (xmldoc.Collection.GlobalIndex).
type Graph struct {
	N    int // number of element nodes
	Docs int // N_d, number of documents

	// Parent[v] is the global index of v's parent element, or -1 for
	// document roots. Reverse containment edges are v -> Parent[v].
	Parent []int32

	// Children in CSR form: children of u are
	// ChildList[ChildOff[u]:ChildOff[u+1]].
	ChildOff  []int32
	ChildList []int32

	// Hyperlinks in CSR form: hyperlink targets of u are
	// HLinkList[HLinkOff[u]:HLinkOff[u+1]].
	HLinkOff  []int32
	HLinkList []int32

	// DocSize[v] is N_de(v): the number of elements in v's document.
	DocSize []int32
}

// BuildGraph extracts the ElemRank graph from a parsed collection,
// resolving hyperlinks. The returned LinkStats reports dropped references.
func BuildGraph(c *xmldoc.Collection) (*Graph, xmldoc.LinkStats) {
	n := c.NumElements()
	g := &Graph{
		N:       n,
		Docs:    c.NumDocs(),
		Parent:  make([]int32, n),
		DocSize: make([]int32, n),
	}
	hout, stats := c.ResolveLinks()

	// Count children to size the CSR arrays.
	childCount := make([]int32, n)
	totalChildren := 0
	totalLinks := 0
	for _, d := range c.Docs {
		for _, e := range d.Elements {
			gi := d.Base + int(e.Index)
			g.DocSize[gi] = int32(len(d.Elements))
			if e.Parent == nil {
				g.Parent[gi] = -1
			} else {
				g.Parent[gi] = int32(d.Base + int(e.Parent.Index))
			}
			childCount[gi] = int32(len(e.Children))
			totalChildren += len(e.Children)
			totalLinks += len(hout[gi])
		}
	}
	g.ChildOff = make([]int32, n+1)
	g.ChildList = make([]int32, 0, totalChildren)
	g.HLinkOff = make([]int32, n+1)
	g.HLinkList = make([]int32, 0, totalLinks)
	for _, d := range c.Docs {
		for _, e := range d.Elements {
			gi := d.Base + int(e.Index)
			g.ChildOff[gi+1] = g.ChildOff[gi] + childCount[gi]
			for _, ch := range e.Children {
				g.ChildList = append(g.ChildList, int32(d.Base+int(ch.Index)))
			}
			g.HLinkOff[gi+1] = g.HLinkOff[gi] + int32(len(hout[gi]))
			g.HLinkList = append(g.HLinkList, hout[gi]...)
		}
	}
	return g, stats
}

// NumChildren returns N_c(u).
func (g *Graph) NumChildren(u int32) int32 { return g.ChildOff[u+1] - g.ChildOff[u] }

// NumHLinks returns N_h(u).
func (g *Graph) NumHLinks(u int32) int32 { return g.HLinkOff[u+1] - g.HLinkOff[u] }

// Children returns the child slice of u (shared storage; do not mutate).
func (g *Graph) Children(u int32) []int32 { return g.ChildList[g.ChildOff[u]:g.ChildOff[u+1]] }

// HLinks returns the hyperlink-target slice of u (shared storage).
func (g *Graph) HLinks(u int32) []int32 { return g.HLinkList[g.HLinkOff[u]:g.HLinkOff[u+1]] }
