package elemrank

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xrank/internal/xmldoc"
)

func buildCollection(t *testing.T, docs map[string]string) *xmldoc.Collection {
	t.Helper()
	c := xmldoc.NewCollection()
	// Deterministic order: sort names.
	names := make([]string, 0, len(docs))
	for n := range docs {
		names = append(names, n)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		if _, err := c.AddXML(n, strings.NewReader(docs[n]), nil); err != nil {
			t.Fatalf("AddXML(%s): %v", n, err)
		}
	}
	return c
}

func computeAll(t *testing.T, c *xmldoc.Collection, v Variant) *Result {
	t.Helper()
	g, _ := BuildGraph(c)
	p := DefaultParams()
	p.Variant = v
	res, err := Compute(g, p)
	if err != nil {
		t.Fatalf("Compute(%v): %v", v, err)
	}
	if !res.Converged {
		t.Fatalf("Compute(%v) did not converge in %d iters (delta %g)", v, res.Iterations, res.Delta)
	}
	return res
}

func scoreOf(c *xmldoc.Collection, res *Result, e *xmldoc.Element) float64 {
	return res.Scores[c.GlobalIndex(e)]
}

const simpleDoc = `<r><a>one</a><b>two</b></r>`

func TestMassConservationAllVariants(t *testing.T) {
	c := buildCollection(t, map[string]string{
		"d1": `<w><p id="x"><s>text</s><s>more</s></p><p><cite ref="x">c</cite></p></w>`,
		"d2": `<w><p><cite xlink="d1#x">external</cite></p></w>`,
		"d3": simpleDoc,
	})
	for _, v := range []Variant{VariantFinal, VariantPageRank, VariantBidirectional, VariantDiscriminated} {
		res := computeAll(t, c, v)
		sum := 0.0
		for _, s := range res.Scores {
			if s < 0 {
				t.Errorf("%v: negative score %g", v, s)
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v: scores sum to %g, want 1", v, sum)
		}
	}
}

func TestScoresPositiveFinal(t *testing.T) {
	c := buildCollection(t, map[string]string{"d": simpleDoc})
	res := computeAll(t, c, VariantFinal)
	for g, s := range res.Scores {
		if s <= 0 {
			t.Errorf("element %d has non-positive ElemRank %g", g, s)
		}
	}
}

func TestHyperlinkAwareness(t *testing.T) {
	// Two structurally identical papers; one is cited by many others.
	// Desired property 3 (Section 2.3.1): widely referenced papers rank
	// higher.
	doc := `<proc>
	  <paper id="pop"><title>popular paper</title></paper>
	  <paper id="obscure"><title>obscure paper</title></paper>
	  <paper><cite ref="pop">x</cite></paper>
	  <paper><cite ref="pop">y</cite></paper>
	  <paper><cite ref="pop">z</cite></paper>
	</proc>`
	c := buildCollection(t, map[string]string{"d": doc})
	d := c.Docs[0]
	var pop, obs *xmldoc.Element
	for _, e := range d.Elements {
		switch e.XMLID {
		case "pop":
			pop = e
		case "obscure":
			obs = e
		}
	}
	res := computeAll(t, c, VariantFinal)
	if scoreOf(c, res, pop) <= scoreOf(c, res, obs) {
		t.Errorf("cited paper %g should outrank uncited twin %g",
			scoreOf(c, res, pop), scoreOf(c, res, obs))
	}
	// Forward propagation: the popular paper's title outranks the obscure
	// paper's title.
	if scoreOf(c, res, pop.Children[0]) <= scoreOf(c, res, obs.Children[0]) {
		t.Errorf("title of cited paper should outrank title of uncited twin")
	}
}

func TestReverseAggregatePropagation(t *testing.T) {
	// A workshop containing many cited papers should outrank a workshop
	// containing one. Both workshops have the same number of children so
	// forward split is equal.
	doc := `<root>
	  <workshop id="big">
	    <paper id="b1">a</paper><paper id="b2">b</paper><paper id="b3">c</paper>
	  </workshop>
	  <workshop id="small">
	    <paper id="s1">a</paper><paper>b</paper><paper>c</paper>
	  </workshop>
	  <refs>
	    <cite ref="b1">1</cite><cite ref="b2">2</cite><cite ref="b3">3</cite>
	    <cite ref="b1">4</cite><cite ref="b2">5</cite><cite ref="b3">6</cite>
	    <cite ref="s1">7</cite>
	  </refs>
	</root>`
	c := buildCollection(t, map[string]string{"d": doc})
	var big, small *xmldoc.Element
	for _, e := range c.Docs[0].Elements {
		switch e.XMLID {
		case "big":
			big = e
		case "small":
			small = e
		}
	}
	res := computeAll(t, c, VariantFinal)
	if scoreOf(c, res, big) <= scoreOf(c, res, small) {
		t.Errorf("workshop with many cited papers (%g) should outrank one with few (%g)",
			scoreOf(c, res, big), scoreOf(c, res, small))
	}
}

func TestSectionNotDilutedByReferences(t *testing.T) {
	// Section 3.1's motivation for discriminating edge classes: adding many
	// references to a paper must not depress its sections' ranks under the
	// final formula, but does under the uniform bidirectional formula.
	// The document always has 20 potential reference targets; only the
	// refs= IDREFS list on the paper varies, so containment structure is
	// identical between the few/many cases and only hyperlink fan-out
	// changes.
	mk := func(ncites int) string {
		var b strings.Builder
		refs := make([]string, ncites)
		for i := range refs {
			refs[i] = fmt.Sprintf("t%d", i)
		}
		fmt.Fprintf(&b, `<proc><paper id="p" refs="%s"><section>content words</section></paper>`,
			strings.Join(refs, " "))
		for i := 0; i < 20; i++ {
			fmt.Fprintf(&b, `<target id="t%d">tgt</target>`, i)
		}
		b.WriteString(`</proc>`)
		return b.String()
	}
	sectionScore := func(t *testing.T, ncites int, v Variant) float64 {
		c := buildCollection(t, map[string]string{"main": mk(ncites)})
		var sec *xmldoc.Element
		for _, e := range c.DocByName("main").Elements {
			if e.Tag == "section" {
				sec = e
			}
		}
		res := computeAll(t, c, v)
		return scoreOf(c, res, sec)
	}
	// Under the final formula, hyperlink fan-out must not starve the
	// section: d2 flows to children regardless of N_h.
	few := sectionScore(t, 1, VariantFinal)
	many := sectionScore(t, 20, VariantFinal)
	if many < 0.7*few {
		t.Errorf("final formula: 20 cites starved section: %g -> %g", few, many)
	}
	// The PageRank strawman splits rank across all out-edges (hyperlinks
	// and containment alike), so the same change collapses the section's
	// score — that contrast is the point of the refinement series.
	fewPR := sectionScore(t, 1, VariantPageRank)
	manyPR := sectionScore(t, 20, VariantPageRank)
	if !(many/few > 1.2*manyPR/fewPR) {
		t.Errorf("final formula should preserve section rank far better than strawman: final %g->%g, strawman %g->%g",
			few, many, fewPR, manyPR)
	}
}

// TestHTMLGeneralizesToPageRank checks the paper's design goal (Section 1):
// on a two-level collection (HTML documents with hyperlinks), ElemRank
// reduces exactly to PageRank with d = d1+d2+d3.
func TestHTMLGeneralizesToPageRank(t *testing.T) {
	c := xmldoc.NewCollection()
	pages := map[string][]string{
		"a": {"b", "c"},
		"b": {"c"},
		"c": {"a"},
		"d": {"c", "a", "b"},
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		var b strings.Builder
		b.WriteString("<html><body>page " + name)
		for _, tgt := range pages[name] {
			fmt.Fprintf(&b, `<a href="%s">link</a>`, tgt)
		}
		b.WriteString("</body></html>")
		if _, err := c.AddHTML(name, strings.NewReader(b.String()), nil); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := BuildGraph(c)
	p := DefaultParams()
	res, err := Compute(g, p)
	if err != nil || !res.Converged {
		t.Fatalf("Compute: %v converged=%v", err, res.Converged)
	}

	// Independent straightforward PageRank computation.
	d := p.D1 + p.D2 + p.D3
	names := []string{"a", "b", "c", "d"}
	idx := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	pr := []float64{0.25, 0.25, 0.25, 0.25}
	for iter := 0; iter < 200; iter++ {
		nxt := []float64{0, 0, 0, 0}
		for _, n := range names {
			out := pages[n]
			share := d * pr[idx[n]] / float64(len(out))
			for _, tgt := range out {
				nxt[idx[tgt]] += share
			}
		}
		for i := range nxt {
			nxt[i] += (1 - d) / 4
		}
		pr = nxt
	}
	for _, n := range names {
		got := res.Scores[c.GlobalIndex(c.DocByName(n).Root)]
		if math.Abs(got-pr[idx[n]]) > 1e-4 {
			t.Errorf("page %s: ElemRank %g != PageRank %g", n, got, pr[idx[n]])
		}
	}
}

func TestDeterminism(t *testing.T) {
	docs := map[string]string{
		"d1": `<w><p id="x"><s>a</s></p><p><cite ref="x">c</cite></p></w>`,
		"d2": simpleDoc,
	}
	r1 := computeAll(t, buildCollection(t, docs), VariantFinal)
	r2 := computeAll(t, buildCollection(t, docs), VariantFinal)
	for i := range r1.Scores {
		if r1.Scores[i] != r2.Scores[i] {
			t.Fatalf("non-deterministic score at %d", i)
		}
	}
}

func TestParamValidation(t *testing.T) {
	g := &Graph{N: 1, Docs: 1, Parent: []int32{-1}, ChildOff: []int32{0, 0}, HLinkOff: []int32{0, 0}, DocSize: []int32{1}}
	bad := []Params{
		{D1: 0.5, D2: 0.5, D3: 0.2, Epsilon: 1e-5},  // sums > 1
		{D1: -0.1, D2: 0.5, D3: 0.2, Epsilon: 1e-5}, // negative
		{D1: 0, D2: 0, D3: 0, Epsilon: 1e-5},        // zero navigation
		{D1: 0.3, D2: 0.3, D3: 0.2, Epsilon: 0},     // no epsilon
	}
	for _, p := range bad {
		if _, err := Compute(g, p); err == nil {
			t.Errorf("Params %+v should be rejected", p)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Compute(&Graph{}, DefaultParams())
	if err != nil || !res.Converged {
		t.Fatalf("empty graph: %v %v", res, err)
	}
}

func TestSingleElementCollection(t *testing.T) {
	c := buildCollection(t, map[string]string{"d": `<only>word</only>`})
	res := computeAll(t, c, VariantFinal)
	if math.Abs(res.Scores[0]-1) > 1e-9 {
		t.Errorf("sole element should hold all mass, got %g", res.Scores[0])
	}
}

// randomTreeXML builds a random small document for property testing.
func randomTreeXML(r *rand.Rand) string {
	var b strings.Builder
	var gen func(depth int)
	n := 0
	gen = func(depth int) {
		n++
		tag := fmt.Sprintf("t%d", n)
		fmt.Fprintf(&b, "<%s>w%d", tag, r.Intn(50))
		if depth < 4 {
			for i := 0; i < r.Intn(4); i++ {
				gen(depth + 1)
			}
		}
		fmt.Fprintf(&b, "</%s>", tag)
	}
	gen(0)
	return b.String()
}

func TestQuickMassConservationRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := xmldoc.NewCollection()
		nd := 1 + r.Intn(3)
		for i := 0; i < nd; i++ {
			if _, err := c.AddXML(fmt.Sprintf("doc%d", i), strings.NewReader(randomTreeXML(r)), nil); err != nil {
				return false
			}
		}
		g, _ := BuildGraph(c)
		for _, v := range []Variant{VariantFinal, VariantBidirectional, VariantDiscriminated, VariantPageRank} {
			p := DefaultParams()
			p.Variant = v
			res, err := Compute(g, p)
			if err != nil || !res.Converged {
				return false
			}
			sum := 0.0
			for _, s := range res.Scores {
				if s < -1e-12 {
					return false
				}
				sum += s
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGraphAccessors(t *testing.T) {
	c := buildCollection(t, map[string]string{"d": `<r><a>x</a><b><c>y</c></b></r>`})
	g, stats := BuildGraph(c)
	if stats.Resolved != 0 {
		t.Errorf("unexpected links: %+v", stats)
	}
	root := int32(c.GlobalIndex(c.Docs[0].Root))
	if g.NumChildren(root) != 2 {
		t.Errorf("root children = %d", g.NumChildren(root))
	}
	if g.Parent[root] != -1 {
		t.Errorf("root parent = %d", g.Parent[root])
	}
	for _, ch := range g.Children(root) {
		if g.Parent[ch] != root {
			t.Errorf("child %d parent = %d, want %d", ch, g.Parent[ch], root)
		}
	}
	if g.NumHLinks(root) != 0 {
		t.Errorf("root hlinks = %d", g.NumHLinks(root))
	}
}
