package text

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTokenize drives the query tokenizer path with arbitrary byte
// strings — malformed UTF-8, empty input, giant terms, mixed scripts —
// and checks the invariants the query layer depends on. Note that
// tokenization is NOT idempotent in general: Unicode lowercasing can
// emit non-letter runes ('İ' U+0130 lowercases to "i" + combining dot
// U+0307), so re-tokenizing a token may split it; the invariants below
// are the ones that actually hold.
func FuzzTokenize(f *testing.F) {
	f.Add("")
	f.Add("xql language")
	f.Add("  leading   and\ttrailing\nseparators  ")
	f.Add("don't stop-word über naïve 数据库 поиск")
	f.Add("İstanbul DİL")                                 // dotted capital I: lowercasing grows the rune count
	f.Add(string([]byte{0xff, 0xfe, 'a', 0x80, 'b'}))     // malformed UTF-8
	f.Add(strings.Repeat("x", 1<<16))                     // one giant term
	f.Add(strings.Repeat("v7 ", 2000))                    // many tiny terms
	f.Add("0.2.1 4294967295 id'entifier O'Brien ''' 'a'") // digits and apostrophes
	f.Add("<rec><t>alpha beta filler0 gamma</t></rec>")   // markup as text
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			// The query layer rejects empty keywords; the tokenizer must
			// never produce one.
			if tok == "" {
				t.Fatalf("Tokenize(%q) produced an empty token", s)
			}
			// Tokens are slices of lowercased input runs; lowercasing valid
			// input keeps them valid UTF-8.
			if utf8.ValidString(s) && !utf8.ValidString(tok) {
				t.Fatalf("Tokenize(%q) produced invalid UTF-8 token %q", s, tok)
			}
		}
		// Separator padding is invariant: separators only delimit.
		padded := Tokenize(" " + s + "\t")
		if len(padded) != len(toks) {
			t.Fatalf("Tokenize(%q): %d tokens, %d with separator padding", s, len(toks), len(padded))
		}
		for i := range toks {
			if toks[i] != padded[i] {
				t.Fatalf("Tokenize(%q): token %d is %q, %q with separator padding", s, i, toks[i], padded[i])
			}
		}
		// AppendTokens is Tokenize's allocation-free twin; they must agree.
		var appended []string
		AppendTokens(&appended, s)
		if len(appended) != len(toks) {
			t.Fatalf("AppendTokens(%q): %d tokens, Tokenize: %d", s, len(appended), len(toks))
		}
		// NormalizeTerm (the query-keyword path) is first-token-or-empty.
		norm := NormalizeTerm(s)
		if len(toks) == 0 {
			if norm != "" {
				t.Fatalf("NormalizeTerm(%q) = %q for tokenless input", s, norm)
			}
		} else if norm != toks[0] {
			t.Fatalf("NormalizeTerm(%q) = %q, want first token %q", s, norm, toks[0])
		}
	})
}
