package text

import (
	"fmt"
	"math/rand"
)

// SyntheticVocab generates deterministic pseudo-words ("w0", "w1", ...) for
// synthetic corpora, plus optional seeded "marker" words that generators
// use to plant known answers for quality experiments.
func SyntheticVocab(n int) []string {
	words := make([]string, n)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	return words
}

// Zipf samples word indexes with the classic rank-frequency skew of natural
// text: the i-th most frequent word has probability proportional to
// 1/(i+1)^s. It wraps math/rand.Zipf with corpus-generation defaults.
type Zipf struct {
	z     *rand.Zipf
	words []string
}

// NewZipf builds a sampler over words with exponent s (s>1; 1.2 is a good
// natural-text default) driven by r.
func NewZipf(r *rand.Rand, words []string, s float64) *Zipf {
	if len(words) == 0 {
		panic("text: empty vocabulary")
	}
	return &Zipf{
		z:     rand.NewZipf(r, s, 1, uint64(len(words)-1)),
		words: words,
	}
}

// Next returns the next sampled word.
func (z *Zipf) Next() string { return z.words[z.z.Uint64()] }

// Sentence appends n sampled words to dst and returns it.
func (z *Zipf) Sentence(dst []string, n int) []string {
	for i := 0; i < n; i++ {
		dst = append(dst, z.Next())
	}
	return dst
}

// CorrelatedPlanter plants pairs (or larger groups) of marker keywords into
// generated text with controlled co-occurrence, so experiments can sample
// keyword sets with known high or low correlation (Section 5.4: "the
// correlation between the keywords" is a primary performance factor).
//
// Markers come in groups. A high-correlation group's words are always
// planted together in the same element's text; a low-correlation group's
// words are individually frequent but planted into disjoint elements, so
// they rarely (never, within the planted occurrences) co-occur.
type CorrelatedPlanter struct {
	r *rand.Rand
	// HighGroups[i] is a set of keywords planted together.
	HighGroups [][]string
	// LowGroups[i] is a set of keywords planted apart.
	LowGroups [][]string
	// Rate is the probability that a given text block receives a planting.
	Rate float64
	low  int // round-robin cursor over low-group members
}

// NewCorrelatedPlanter builds a planter with nGroups high- and low-
// correlation groups of the given width (keywords per group).
func NewCorrelatedPlanter(r *rand.Rand, nGroups, width int, rate float64) *CorrelatedPlanter {
	p := &CorrelatedPlanter{r: r, Rate: rate}
	for g := 0; g < nGroups; g++ {
		var hi, lo []string
		for w := 0; w < width; w++ {
			hi = append(hi, fmt.Sprintf("hicorr%dk%d", g, w))
			lo = append(lo, fmt.Sprintf("locorr%dk%d", g, w))
		}
		p.HighGroups = append(p.HighGroups, hi)
		p.LowGroups = append(p.LowGroups, lo)
	}
	return p
}

// Plant possibly appends marker keywords to a text block's words. High
// groups are appended whole; low groups contribute a single member chosen
// round-robin, so each member is common but members never co-occur.
func (p *CorrelatedPlanter) Plant(words []string) []string {
	if p.r.Float64() >= p.Rate {
		return words
	}
	if p.r.Intn(2) == 0 && len(p.HighGroups) > 0 {
		g := p.HighGroups[p.r.Intn(len(p.HighGroups))]
		words = append(words, g...)
	} else if len(p.LowGroups) > 0 {
		g := p.LowGroups[p.r.Intn(len(p.LowGroups))]
		words = append(words, g[p.low%len(g)])
		p.low++
	}
	return words
}
