package text

import "sort"

// Vocabulary interns terms to dense integer IDs. Index builders use it to
// key per-term postings without hashing strings repeatedly.
type Vocabulary struct {
	ids   map[string]uint32
	terms []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]uint32)}
}

// Intern returns the ID for term, assigning the next free ID on first use.
func (v *Vocabulary) Intern(term string) uint32 {
	if id, ok := v.ids[term]; ok {
		return id
	}
	id := uint32(len(v.terms))
	v.ids[term] = id
	v.terms = append(v.terms, term)
	return id
}

// Lookup returns the ID for term and whether it is known.
func (v *Vocabulary) Lookup(term string) (uint32, bool) {
	id, ok := v.ids[term]
	return id, ok
}

// Term returns the term with the given ID; it panics on an unknown ID,
// which always indicates a programming error.
func (v *Vocabulary) Term(id uint32) string { return v.terms[id] }

// Len returns the number of distinct terms.
func (v *Vocabulary) Len() int { return len(v.terms) }

// Terms returns all interned terms sorted lexicographically (a copy).
func (v *Vocabulary) Terms() []string {
	out := make([]string, len(v.terms))
	copy(out, v.terms)
	sort.Strings(out)
	return out
}
