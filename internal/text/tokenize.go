// Package text provides the lexical substrate for XRANK: tokenization of
// element text, term vocabularies, and Zipf-distributed synthetic text
// generation with controllable keyword correlation (used to drive the
// paper's high-/low-correlation query performance experiments, Figures 10
// and 11).
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens. A token is a maximal run of
// letters, digits and apostrophes; everything else separates tokens. This
// mirrors the simple lexer of classic inverted-list engines (Salton [29]).
func Tokenize(s string) []string {
	var out []string
	AppendTokens(&out, s)
	return out
}

// AppendTokens appends the tokens of s to *dst, avoiding per-call slice
// allocation in parsing loops.
func AppendTokens(dst *[]string, s string) {
	start := -1
	flush := func(end int) {
		if start >= 0 {
			*dst = append(*dst, strings.ToLower(s[start:end]))
			start = -1
		}
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(s))
}

// NormalizeTerm lowercases a query keyword using the same rules as
// Tokenize, so queries and index agree on term form.
func NormalizeTerm(s string) string {
	toks := Tokenize(s)
	if len(toks) == 0 {
		return ""
	}
	return toks[0]
}

// NormalizePrefix folds a raw autosuggest input into the prefix being
// completed: the last token of s under the exact Tokenize rules
// (earlier, already-completed keywords are dropped). Running the input
// through Tokenize itself — rather than a separate lowercasing path —
// guarantees the prefix is case-folded bit-identically to index-time
// tokenization. Returns "" when s contains no token characters.
func NormalizePrefix(s string) string {
	toks := Tokenize(s)
	if len(toks) == 0 {
		return ""
	}
	return toks[len(toks)-1]
}
