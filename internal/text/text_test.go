package text

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"XQL and Proximal Nodes", []string{"xql", "and", "proximal", "nodes"}},
		{"Baeza-Yates", []string{"baeza", "yates"}},
		{"don't stop", []string{"don't", "stop"}},
		{"28 July 2000", []string{"28", "july", "2000"}},
		{"a,b;c", []string{"a", "b", "c"}},
		{"trailing word!", []string{"trailing", "word"}},
		{"ünïcode Gräy", []string{"ünïcode", "gräy"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAppendTokensAccumulates(t *testing.T) {
	var dst []string
	AppendTokens(&dst, "one two")
	AppendTokens(&dst, "three")
	want := []string{"one", "two", "three"}
	if !reflect.DeepEqual(dst, want) {
		t.Errorf("AppendTokens accumulated %v, want %v", dst, want)
	}
}

func TestNormalizeTerm(t *testing.T) {
	if got := NormalizeTerm("  XQL! "); got != "xql" {
		t.Errorf("NormalizeTerm = %q", got)
	}
	if got := NormalizeTerm("!!"); got != "" {
		t.Errorf("NormalizeTerm of punctuation = %q", got)
	}
}

func TestNormalizePrefix(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ranked Key", "key"},            // completes the last keyword, case-folded
		{"XQuery", "xquery"},             // single keyword
		{"foo bar, baz", "baz"},          // punctuation separates like Tokenize
		{"Naïve", "naïve"},               // multi-byte folding matches Tokenize
		{"!!", ""},                       // no token characters
		{"", ""},                         // empty input
		{string([]byte{0xff, 0xfe}), ""}, // invalid UTF-8 never panics
		{"don't", "don't"},               // apostrophes are token characters
	}
	for _, c := range cases {
		if got := NormalizePrefix(c.in); got != c.want {
			t.Errorf("NormalizePrefix(%q) = %q, want %q", c.in, got, c.want)
		}
		// Bit-identical to index-time tokenization by construction: the
		// result must be exactly the last Tokenize token.
		toks := Tokenize(c.in)
		want := ""
		if len(toks) > 0 {
			want = toks[len(toks)-1]
		}
		if got := NormalizePrefix(c.in); got != want {
			t.Errorf("NormalizePrefix(%q) = %q, Tokenize last = %q", c.in, got, want)
		}
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("alpha")
	b := v.Intern("beta")
	if a == b {
		t.Fatalf("distinct terms shared an ID")
	}
	if got := v.Intern("alpha"); got != a {
		t.Errorf("re-intern changed ID: %d != %d", got, a)
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d", v.Len())
	}
	if v.Term(a) != "alpha" || v.Term(b) != "beta" {
		t.Errorf("Term round trip failed")
	}
	if _, ok := v.Lookup("gamma"); ok {
		t.Errorf("Lookup of unknown term succeeded")
	}
	terms := v.Terms()
	if !reflect.DeepEqual(terms, []string{"alpha", "beta"}) {
		t.Errorf("Terms = %v", terms)
	}
}

func TestQuickTokenizeLowercaseNoSeparators(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r == ' ' || r == '\t' || r == ',' || r == '.' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	words := SyntheticVocab(1000)
	z := NewZipf(r, words, 1.3)
	counts := make(map[string]int)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	// Rank-0 word must dominate a mid-rank word by a wide margin.
	if counts["w0"] < 10*counts["w100"]+1 {
		t.Errorf("zipf not skewed: w0=%d w100=%d", counts["w0"], counts["w100"])
	}
}

func TestCorrelatedPlanter(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := NewCorrelatedPlanter(r, 2, 2, 1.0) // always plant
	sawHigh := false
	lowSeen := map[string]int{}
	for i := 0; i < 500; i++ {
		words := p.Plant(nil)
		if len(words) == 0 {
			t.Fatalf("rate 1.0 planter planted nothing")
		}
		if len(words) == 2 {
			// High group: both members of one group, together.
			g, k := words[0], words[1]
			if g[:2] != "hi" || k[:2] != "hi" {
				t.Fatalf("two-word planting should be a high group, got %v", words)
			}
			sawHigh = true
		} else if len(words) == 1 {
			lowSeen[words[0]]++
		}
	}
	if !sawHigh {
		t.Errorf("never planted a high-correlation group")
	}
	if len(lowSeen) < 3 {
		t.Errorf("low-correlation members not spread: %v", lowSeen)
	}
}

func TestZipfEmptyVocabPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewZipf with empty vocab should panic")
		}
	}()
	NewZipf(rand.New(rand.NewSource(1)), nil, 1.2)
}
