package query

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"xrank/internal/dewey"
	"xrank/internal/elemrank"
	"xrank/internal/index"
	"xrank/internal/storage"
	"xrank/internal/xmldoc"
)

// fixture bundles a parsed collection, its ranks and an opened index.
type fixture struct {
	c     *xmldoc.Collection
	ranks []float64
	ix    *index.Index
}

func newFixture(t *testing.T, docs []string, opts index.BuildOptions) *fixture {
	t.Helper()
	c := xmldoc.NewCollection()
	for i, s := range docs {
		if _, err := c.AddXML(fmt.Sprintf("doc%03d", i), strings.NewReader(s), nil); err != nil {
			t.Fatalf("AddXML doc%03d: %v", i, err)
		}
	}
	g, _ := elemrank.BuildGraph(c)
	res, err := elemrank.Compute(g, elemrank.DefaultParams())
	if err != nil || !res.Converged {
		t.Fatalf("elemrank: %v", err)
	}
	dir := t.TempDir()
	if _, err := index.Build(c, res.Scores, dir, opts); err != nil {
		t.Fatalf("Build: %v", err)
	}
	ix, err := index.Open(dir, index.OpenOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { ix.Close() })
	return &fixture{c: c, ranks: res.Scores, ix: ix}
}

const figure1 = `<workshop date="28 July 2000">
  <title>XML and IR a SIGIR 2000 Workshop</title>
  <editors>David Carmel, Yoelle Maarek, Aya Soffer</editors>
  <proceedings>
    <paper id="1">
      <title>XQL and Proximal Nodes</title>
      <author>Ricardo Baeza-Yates</author>
      <author>Gonzalo Navarro</author>
      <abstract>We consider the recently proposed language</abstract>
      <body>
        <section name="Introduction">Searching on structured text is more important</section>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">At first sight the XQL query language looks</subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
      </body>
    </paper>
    <paper id="2">
      <title>Querying XML in Xyleme</title>
    </paper>
  </proceedings>
</workshop>`

func elementByPath(t *testing.T, c *xmldoc.Collection, path string) *xmldoc.Element {
	t.Helper()
	for _, d := range c.Docs {
		var found *xmldoc.Element
		xmldoc.Walk(d.Root, func(e *xmldoc.Element) bool {
			if xmldoc.Path(e) == path {
				found = e
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	t.Fatalf("no element at %s", path)
	return nil
}

func containsID(rs []Result, id dewey.ID) bool {
	for _, r := range rs {
		if dewey.Equal(r.ID, id) {
			return true
		}
	}
	return false
}

// TestFigure1Semantics walks the paper's worked example (Section 2.2): the
// query 'XQL language' returns the <subsection> (most specific), does NOT
// return its <section>/<body> ancestors whose only occurrences are in the
// subsection... except <body> also holds no independent occurrences, while
// <paper> does (title and abstract), so <paper> IS a result.
func TestFigure1Semantics(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	results, err := DIL(fx.ix, []string{"xql", "language"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sub := elementByPath(t, fx.c, "workshop/proceedings/paper/body/section/subsection")
	sec := sub.Parent
	body := sec.Parent
	paper := body.Parent
	if !containsID(results, sub.DeweyID()) {
		t.Errorf("subsection should be a result")
	}
	if containsID(results, sec.DeweyID()) {
		t.Errorf("section is spurious (only occurrence is the subsection result)")
	}
	if containsID(results, body.DeweyID()) {
		t.Errorf("body is spurious")
	}
	if !containsID(results, paper.DeweyID()) {
		t.Errorf("paper should be a result (independent occurrences in title and abstract)")
	}
}

// TestSofferXQLTwoDimensionalProximity checks the paper's introduction
// example: for 'Soffer XQL' the keywords are close in the raw text (lines
// 3 and 6 of Figure 1) but their deepest common ancestor is the whole
// <workshop>, so the result exists yet ranks far below a truly specific
// result — the ancestor-distance dimension of proximity at work via the
// decay factor.
func TestSofferXQLTwoDimensionalProximity(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	opts := DefaultOptions()
	opts.TopM = 100
	wide, err := DIL(fx.ix, []string{"soffer", "xql"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide) != 1 {
		t.Fatalf("'soffer xql' results = %d, want exactly the workshop root", len(wide))
	}
	root := fx.c.Docs[0].Root
	if !dewey.Equal(wide[0].ID, root.DeweyID()) {
		t.Fatalf("'soffer xql' result = %v, want workshop root", wide[0].ID)
	}
	narrow, err := DIL(fx.ix, []string{"xql", "language"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sub := elementByPath(t, fx.c, "workshop/proceedings/paper/body/section/subsection")
	var subScore float64
	for _, r := range narrow {
		if dewey.Equal(r.ID, sub.DeweyID()) {
			subScore = r.Score
		}
	}
	if subScore == 0 {
		t.Fatalf("subsection missing from 'xql language' results")
	}
	if wide[0].Score >= subScore/2 {
		t.Errorf("unspecific workshop result (%g) should score far below the specific subsection (%g)",
			wide[0].Score, subScore)
	}
}

func sameResults(t *testing.T, name string, got, want []Result, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\n got: %v\nwant: %v", name, len(got), len(want), got, want)
	}
	for i := range got {
		if !dewey.Equal(got[i].ID, want[i].ID) {
			t.Fatalf("%s: result %d ID %v, want %v (scores %g vs %g)", name, i, got[i].ID, want[i].ID, got[i].Score, want[i].Score)
		}
		if d := math.Abs(got[i].Score - want[i].Score); d > tol*(math.Abs(want[i].Score)+1e-300) && d > 1e-15 {
			t.Fatalf("%s: result %d (%v) score %g, want %g", name, i, got[i].ID, got[i].Score, want[i].Score)
		}
	}
}

func TestDILMatchesBruteForce(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	for _, q := range [][]string{
		{"xql", "language"},
		{"xml", "workshop"},
		{"soffer", "xql"},
		{"querying", "xyleme"},
		{"xql"},
		{"xml"},
		{"ricardo", "xql"},
		{"xml", "xql", "language"},
	} {
		opts := DefaultOptions()
		opts.TopM = 1000
		want, err := BruteForce(fx.c, fx.ranks, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DIL(fx.ix, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("DIL(%v)", q), got, want, 1e-9)
	}
}

// randomCorpus builds nd random documents with nested structure, a 40-word
// vocabulary (dense co-occurrence) and occasional references.
func randomCorpus(r *rand.Rand, nd int) []string {
	docs := make([]string, nd)
	for d := 0; d < nd; d++ {
		var b strings.Builder
		var gen func(depth int)
		id := 0
		gen = func(depth int) {
			id++
			tag := fmt.Sprintf("e%d", id%7)
			fmt.Fprintf(&b, "<%s>", tag)
			nWords := r.Intn(5)
			for w := 0; w < nWords; w++ {
				fmt.Fprintf(&b, " v%d", r.Intn(40))
			}
			if depth < 5 {
				for c := 0; c < r.Intn(4); c++ {
					gen(depth + 1)
				}
			}
			fmt.Fprintf(&b, "</%s>", tag)
		}
		b.WriteString("<root>")
		gen(0)
		gen(0)
		b.WriteString("</root>")
		docs[d] = b.String()
	}
	return docs
}

func TestAllAlgorithmsAgreeOnRandomCorpora(t *testing.T) {
	cm := storage.DefaultCostModel()
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		fx := newFixture(t, randomCorpus(r, 3), index.BuildOptions{MinRankPrefix: 4, RankFraction: 0.2})
		for trial := 0; trial < 12; trial++ {
			nk := 1 + r.Intn(3)
			q := make([]string, nk)
			for i := range q {
				q[i] = fmt.Sprintf("v%d", r.Intn(40))
			}
			opts := DefaultOptions()
			opts.TopM = 5
			// Ground truth: brute force, truncated to top-m.
			all, err := BruteForce(fx.c, fx.ranks, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := all
			if len(want) > opts.TopM {
				want = want[:opts.TopM]
			}
			gotDIL, err := DIL(fx.ix, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, fmt.Sprintf("seed%d DIL(%v)", seed, q), gotDIL, want, 1e-9)

			gotRDIL, err := RDIL(fx.ix, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, fmt.Sprintf("seed%d RDIL(%v)", seed, q), gotRDIL, want, 1e-9)

			gotHDIL, _, err := HDIL(fx.ix, q, opts, cm)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, fmt.Sprintf("seed%d HDIL(%v)", seed, q), gotHDIL, want, 1e-9)
		}
	}
}

func TestNaiveIDReturnsR0(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	q := []string{"xql", "language"}
	wantElems, err := BruteForceR0(fx.c, q)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TopM = 1000
	got, err := NaiveID(fx.ix, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantElems) {
		t.Fatalf("NaiveID: %d results, want %d (R0)", len(got), len(wantElems))
	}
	gotSet := map[int32]bool{}
	for _, r := range got {
		e, err := ElemFromResultID(r)
		if err != nil {
			t.Fatal(err)
		}
		gotSet[e] = true
	}
	for _, e := range wantElems {
		if !gotSet[e] {
			t.Errorf("NaiveID missing R0 element %d", e)
		}
	}
	// The naive result set must include spurious ancestors that DIL prunes:
	// strictly more results than Result(Q) here.
	dil, err := DIL(fx.ix, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) <= len(dil) {
		t.Errorf("naive should return spurious ancestors: naive %d <= dil %d", len(got), len(dil))
	}
}

func TestNaiveRankMatchesNaiveID(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	fx := newFixture(t, randomCorpus(r, 3), index.BuildOptions{})
	for trial := 0; trial < 10; trial++ {
		nk := 1 + r.Intn(2)
		q := make([]string, nk)
		for i := range q {
			q[i] = fmt.Sprintf("v%d", r.Intn(40))
		}
		opts := DefaultOptions()
		opts.TopM = 5
		a, err := NaiveID(fx.ix, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NaiveRank(fx.ix, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("naive(%v)", q), b, a, 1e-9)
	}
}

func TestMissingKeywordEmptiesConjunction(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	cm := storage.DefaultCostModel()
	q := []string{"xql", "zzzznotthere"}
	if rs, err := DIL(fx.ix, q, DefaultOptions()); err != nil || rs != nil {
		t.Errorf("DIL: %v %v", rs, err)
	}
	if rs, err := RDIL(fx.ix, q, DefaultOptions()); err != nil || rs != nil {
		t.Errorf("RDIL: %v %v", rs, err)
	}
	if rs, _, err := HDIL(fx.ix, q, DefaultOptions(), cm); err != nil || rs != nil {
		t.Errorf("HDIL: %v %v", rs, err)
	}
	if rs, err := NaiveID(fx.ix, q, DefaultOptions()); err != nil || rs != nil {
		t.Errorf("NaiveID: %v %v", rs, err)
	}
	if rs, err := NaiveRank(fx.ix, q, DefaultOptions()); err != nil || rs != nil {
		t.Errorf("NaiveRank: %v %v", rs, err)
	}
}

func TestAggSumSupport(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	opts := DefaultOptions()
	opts.Agg = AggSum
	opts.TopM = 100
	want, err := BruteForce(fx.c, fx.ranks, []string{"xql", "language"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DIL(fx.ix, []string{"xql", "language"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "DIL sum", got, want, 1e-9)
	// The threshold algorithms must reject AggSum.
	if _, err := RDIL(fx.ix, []string{"xql", "language"}, opts); err == nil {
		t.Errorf("RDIL should reject AggSum")
	}
	if _, _, err := HDIL(fx.ix, []string{"xql", "language"}, opts, storage.DefaultCostModel()); err == nil {
		t.Errorf("HDIL should reject AggSum")
	}
	if _, err := NaiveRank(fx.ix, []string{"xql", "language"}, opts); err == nil {
		t.Errorf("NaiveRank should reject AggSum")
	}
}

func TestProximityOffMatchesBruteForce(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	opts := DefaultOptions()
	opts.UseProximity = false
	opts.TopM = 100
	q := []string{"xml", "workshop"}
	want, _ := BruteForce(fx.c, fx.ranks, q, opts)
	got, err := DIL(fx.ix, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "DIL no-prox", got, want, 1e-9)
}

func TestProximityFunction(t *testing.T) {
	cases := []struct {
		lists [][]uint32
		want  float64
	}{
		{[][]uint32{{5}, {6}}, 1},                        // adjacent
		{[][]uint32{{5}, {9}}, 2.0 / 5.0},                // window 5
		{[][]uint32{{0, 100}, {101}}, 1},                 // best window uses 100,101
		{[][]uint32{{1}, {2}, {3}}, 1},                   // 3 adjacent
		{[][]uint32{{1}, {2}, {12}}, 3.0 / 12.0},         // window 1..12
		{[][]uint32{{7}}, 1},                             // single keyword
		{[][]uint32{{1}, {}}, 0},                         // missing keyword
		{[][]uint32{}, 0},                                // no keywords
		{[][]uint32{{4}, {4}}, 1},                        // duplicate positions clamp
		{[][]uint32{{0, 50}, {60, 200}, {55}}, 3. / 11.}, // window 50..60
	}
	for _, c := range cases {
		if got := Proximity(c.lists); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Proximity(%v) = %g, want %g", c.lists, got, c.want)
		}
	}
}

func TestResultHeapTopM(t *testing.T) {
	h := newResultHeap(3)
	for i := 0; i < 10; i++ {
		h.offer(Result{ID: dewey.ID{uint32(i)}, Score: float64(i % 7)})
	}
	out := h.sorted()
	if len(out) != 3 {
		t.Fatalf("heap kept %d", len(out))
	}
	if out[0].Score != 6 || out[1].Score != 5 || out[2].Score != 4 {
		t.Errorf("heap top = %v", out)
	}
	// Ties: with equal scores, the smallest IDs are kept, in ID order.
	h2 := newResultHeap(2)
	for i := 5; i >= 1; i-- {
		h2.offer(Result{ID: dewey.ID{uint32(i)}, Score: 1.0})
	}
	out2 := h2.sorted()
	if len(out2) != 2 || out2[0].ID[0] != 1 || out2[1].ID[0] != 2 {
		t.Errorf("tie handling = %v", out2)
	}
}

func TestInvalidOptions(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	opts := DefaultOptions()
	opts.Decay = 1.5
	if _, err := DIL(fx.ix, []string{"xml"}, opts); err == nil {
		t.Errorf("decay > 1 should be rejected")
	}
	if _, err := DIL(fx.ix, nil, DefaultOptions()); err == nil {
		t.Errorf("empty query should be rejected")
	}
	if _, err := DIL(fx.ix, []string{""}, DefaultOptions()); err == nil {
		t.Errorf("empty keyword should be rejected")
	}
}

func TestDuplicateKeywordsDeduped(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	a, err := DIL(fx.ix, []string{"xql", "xql"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := DIL(fx.ix, []string{"xql"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "dedup", a, b, 0)
}

// TestHDILSwitches builds a corpus with frequent-but-uncorrelated
// keywords, where the ranked strategy cannot find m results and must
// switch to DIL (the Figure 11 regime).
func TestHDILSwitches(t *testing.T) {
	var docs []string
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 800; i++ {
		// 'alpha' and 'beta' are each frequent but never co-occur in any
		// element except the root.
		if i%2 == 0 {
			fmt.Fprintf(&b, "<item>alpha filler f%d</item>", i%31)
		} else {
			fmt.Fprintf(&b, "<item>beta filler f%d</item>", i%31)
		}
	}
	b.WriteString("</root>")
	docs = append(docs, b.String())
	fx := newFixture(t, docs, index.BuildOptions{MinRankPrefix: 8, RankFraction: 0.02})
	opts := DefaultOptions()
	opts.TopM = 10
	want, err := DIL(fx.ix, []string{"alpha", "beta"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, trace, err := HDIL(fx.ix, []string{"alpha", "beta"}, opts, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if !trace.SwitchedToDIL {
		t.Errorf("HDIL should have switched on uncorrelated keywords (trace %+v)", trace)
	}
	sameResults(t, "HDIL switched", got, want, 1e-9)
}

// TestRDILStopsEarly verifies the point of RDIL: on highly correlated
// keywords it terminates after reading far fewer entries than the list
// length (Figure 10's regime).
func TestRDILStopsEarly(t *testing.T) {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 2000; i++ {
		// gamma and delta always co-occur.
		fmt.Fprintf(&b, "<item>gamma delta filler f%d</item>", i%31)
	}
	b.WriteString("</root>")
	fx := newFixture(t, []string{b.String()}, index.BuildOptions{})
	if err := fx.ix.ColdCache(); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TopM = 5
	rs, err := RDIL(fx.ix, []string{"gamma", "delta"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("RDIL returned %d results", len(rs))
	}
	rdilStats := fx.ix.IOStats()

	if err := fx.ix.ColdCache(); err != nil {
		t.Fatal(err)
	}
	want, err := DIL(fx.ix, []string{"gamma", "delta"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	dilStats := fx.ix.IOStats()
	sameResults(t, "rdil-early", rs, want, 1e-9)
	if rdilStats.Reads >= dilStats.Reads {
		t.Errorf("on correlated keywords RDIL (%d reads) should touch fewer pages than DIL (%d)",
			rdilStats.Reads, dilStats.Reads)
	}
}
