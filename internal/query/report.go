package query

import (
	"errors"
	"sort"
	"sync"

	"xrank/internal/storage"
)

// ShardReport accumulates degraded-execution facts across the algorithm
// invocations that share it (the engine's over-fetch loop can run the
// same query several times). All methods are safe for concurrent use and
// nil-safe, so call sites never need to guard.
type ShardReport struct {
	mu      sync.Mutex
	failed  map[int]string // shard → last post-retry error
	retries int
	probes  int
}

// noteRetries adds n retry attempts to the report.
func (r *ShardReport) noteRetries(n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.retries += n
	r.mu.Unlock()
}

// noteProbe records one half-open trial granted to an unhealthy shard.
func (r *ShardReport) noteProbe() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.probes++
	r.mu.Unlock()
}

// noteFailed records that shard s was excluded from a merge — either it
// failed after retries or it was already unhealthy and skipped up front.
func (r *ShardReport) noteFailed(s int, err error) {
	if r == nil {
		return
	}
	msg := "skipped: marked unhealthy"
	if err != nil {
		msg = err.Error()
	}
	r.mu.Lock()
	if r.failed == nil {
		r.failed = make(map[int]string)
	}
	r.failed[s] = msg
	r.mu.Unlock()
}

// Degraded reports whether any merge this report observed excluded at
// least one shard.
func (r *ShardReport) Degraded() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.failed) > 0
}

// FailedShards returns the sorted set of shards excluded from at least
// one merge.
func (r *ShardReport) FailedShards() []int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.failed))
	for s := range r.failed {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Retries returns the total retry attempts across all invocations.
func (r *ShardReport) Retries() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// Probes returns the half-open trials granted across all invocations.
func (r *ShardReport) Probes() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.probes
}

// retryable reports whether a shard error is worth retrying or degrading
// around: only device-level I/O faults (storage.ErrIO) qualify.
// Cancellation, deadline expiry, budget exhaustion and semantic errors
// would fail identically on every attempt and every shard.
func retryable(err error) bool {
	return errors.Is(err, storage.ErrIO)
}
