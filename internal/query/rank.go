// Package query implements XRANK's keyword query processors (Guo et al.,
// SIGMOD 2003, Section 4): the single-pass DIL Dewey-stack merge
// (Figure 5), the RDIL threshold algorithm with B+-tree probing
// (Figure 7), the adaptive HDIL strategy (Section 4.4.2), and the two
// naive baselines (Section 4.1 / 5.1), together with the ranking
// functions of Section 2.3.
package query

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"xrank/internal/dewey"
	"xrank/internal/index"
	"xrank/internal/storage"
)

// Agg selects the aggregation function f over multiple relevant
// occurrences of one keyword (Section 2.3.2.1). The default is max.
type Agg int

const (
	// AggMax takes the best occurrence. It keeps the overall rank monotone
	// in the per-entry ElemRanks, which the RDIL/Naive-Rank threshold
	// bound relies on.
	AggMax Agg = iota
	// AggSum adds occurrences. Supported by DIL and Naive-ID (full-scan
	// algorithms); the threshold algorithms reject it because their
	// stopping rule would no longer guarantee the top-m.
	AggSum
)

func (a Agg) combine(x, y float64) float64 {
	if a == AggSum {
		return x + y
	}
	if y > x {
		return y
	}
	return x
}

// Scoring selects how an occurrence's base rank is computed.
type Scoring int

const (
	// ScoreElemRank uses the stored ElemRank of the directly containing
	// element (the paper's ranking, Section 2.3.2).
	ScoreElemRank Scoring = iota
	// ScoreTFIDF replaces ElemRank with a tf-idf weight computed from the
	// entry's posList length and the keyword's document frequency — the
	// "other ranking functions (e.g., tf-idf)" extension the paper lists
	// as future work (Section 7). Because the rank-ordered lists are
	// sorted by ElemRank, only the full-scan processors (DIL, Naive-ID)
	// support it.
	ScoreTFIDF
)

// Options configure query evaluation.
type Options struct {
	// TopM is the number of results to return (m in the paper). Default 10.
	TopM int
	// Decay scales a keyword's rank down per containment level between the
	// occurrence and the result element (Section 2.3.2.1), in (0, 1].
	// Default 0.75.
	Decay float64
	// Agg is the occurrence aggregation function f. Default AggMax.
	Agg Agg
	// UseProximity multiplies the overall rank by the smallest-window
	// keyword proximity (Section 2.3.2.2). When false the proximity factor
	// is the constant 1, the paper's recommendation for highly structured
	// data.
	UseProximity bool
	// Weights optionally assigns per-keyword weights (Section 2.3.2.2:
	// "users may also wish to assign different weights to different
	// keywords"). When non-nil its length must equal the number of
	// distinct keywords; nil means all 1.
	Weights []float64
	// Scoring selects the base rank function. Default ScoreElemRank.
	Scoring Scoring
	// DFs optionally overrides the per-keyword document frequencies used
	// by ScoreTFIDF, indexed by deduplicated-keyword position. The
	// algorithms default to each inverted list's own length, which is the
	// right df on a monolithic index but only a shard's share of it on a
	// partitioned one; the sharded executors pass the collection-global
	// counts here so scores stay identical across shard counts.
	DFs []int
	// NumElements optionally overrides the element count N_e used by
	// ScoreTFIDF's idf term. Defaults to the index's own Meta.NumElements;
	// segmented engines pass the collection-global count so tf-idf scores
	// stay identical to an unsegmented build.
	NumElements int
	// Rank optionally overrides the ElemRank read from each posting. A
	// segmented engine sets it on segments whose baked ranks predate the
	// newest ElemRank computation, substituting the current global value.
	// Only the full-scan processors (DIL, Naive-ID, Disjunctive) accept
	// it: the threshold algorithms traverse rank-ordered lists whose order
	// the override would silently invalidate.
	Rank func(p *index.Posting) float64
	// Exec optionally attaches a per-query execution context. Every
	// algorithm passes it down to its cursors, probers and lookups (so
	// the query's I/O is attributed to exactly this query even under
	// concurrency) and checks it at merge-loop boundaries (so a
	// cancelled, deadline-expired or over-budget query aborts promptly
	// mid-merge). Nil disables per-query control: I/O lands only in the
	// index's engine-global counters.
	Exec *storage.ExecContext
	// Retries is how many times a shard execution is retried after a
	// transient device fault (an error wrapping storage.ErrIO). 0 means
	// the default of 2; negative disables retries. Cancellation, deadline
	// and budget errors are never retried.
	Retries int
	// RetryBackoff caps the wait before the first retry; the cap doubles
	// per attempt and the actual wait is drawn uniformly from [0, cap]
	// (full jitter, so synchronized queries can't stampede a recovering
	// device in lockstep). The wait aborts early if the query is
	// cancelled. 0 means the default cap of 5ms.
	RetryBackoff time.Duration
	// RetrySeed seeds the jittered backoff schedule. The draw stream is
	// deterministic per (seed, shard), so tests replay identical waits.
	// 0 selects seed 1.
	RetrySeed int64
	// FailureThreshold is the consecutive post-retry failure count at
	// which a shard is marked unhealthy and excluded from subsequent
	// queries (until index.Sharded.ResetHealth). 0 means the default of
	// 3; negative disables marking.
	FailureThreshold int
	// ProbeInterval enables half-open recovery for sticky-unhealthy
	// shards: once per interval an unhealthy shard is granted one trial
	// execution inside a regular query, and a successful trial revives
	// it. 0 (the default) keeps exclusion sticky until ResetHealth.
	ProbeInterval time.Duration
	// Report, when non-nil, accumulates degraded-execution facts — which
	// shards were skipped or failed, how many retries ran — across every
	// algorithm invocation that shares it. The engine attaches one per
	// query and surfaces it as QueryStats.Degraded.
	Report *ShardReport
}

// DefaultOptions returns the defaults described on Options.
func DefaultOptions() Options {
	return Options{TopM: 10, Decay: 0.75, Agg: AggMax, UseProximity: true}
}

func (o *Options) fill() error {
	if o.TopM <= 0 {
		o.TopM = 10
	}
	if o.Decay == 0 {
		o.Decay = 0.75
	}
	if o.Decay < 0 || o.Decay > 1 {
		return fmt.Errorf("query: decay %v outside (0, 1]", o.Decay)
	}
	for _, w := range o.Weights {
		if w < 0 {
			return fmt.Errorf("query: negative keyword weight %v", w)
		}
	}
	return nil
}

// retries resolves Options.Retries (0 = default 2, negative = none).
func (o *Options) retries() int {
	if o.Retries < 0 {
		return 0
	}
	if o.Retries == 0 {
		return 2
	}
	return o.Retries
}

// retryBackoff resolves Options.RetryBackoff (0 = default 5ms).
func (o *Options) retryBackoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return 5 * time.Millisecond
	}
	return o.RetryBackoff
}

// retrySeed resolves Options.RetrySeed (0 = seed 1).
func (o *Options) retrySeed() int64 {
	if o.RetrySeed == 0 {
		return 1
	}
	return o.RetrySeed
}

// failureThreshold resolves Options.FailureThreshold (0 = default 3;
// negative values pass through, disabling unhealthy-marking).
func (o *Options) failureThreshold() int {
	if o.FailureThreshold == 0 {
		return 3
	}
	return o.FailureThreshold
}

// weight returns the weight of keyword i.
func (o *Options) weight(i int) float64 {
	if o.Weights == nil {
		return 1
	}
	return o.Weights[i]
}

// checkWeights validates Weights and DFs against the deduplicated
// keyword count.
func (o *Options) checkWeights(n int) error {
	if o.Weights != nil && len(o.Weights) != n {
		return fmt.Errorf("query: %d weights for %d distinct keywords", len(o.Weights), n)
	}
	if o.DFs != nil && len(o.DFs) != n {
		return fmt.Errorf("query: %d document-frequency overrides for %d distinct keywords", len(o.DFs), n)
	}
	return nil
}

// dfsOr returns the caller-supplied global document frequencies when set
// (sharded execution), else the locally observed list lengths.
func (o *Options) dfsOr(local []int) []int {
	if o.DFs != nil {
		return o.DFs
	}
	return local
}

// numElements returns the caller-supplied global element count when set
// (segmented execution), else the index's own.
func (o *Options) numElements(local int) int {
	if o.NumElements > 0 {
		return o.NumElements
	}
	return local
}

// Result is one ranked query result.
type Result struct {
	// ID identifies the result element.
	ID dewey.ID
	// Score is the overall rank R(v, Q) of Section 2.3.2.2.
	Score float64
}

// SortResults orders results by descending score, ties broken by Dewey ID
// for determinism.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return dewey.Compare(rs[i].ID, rs[j].ID) < 0
	})
}

// resultHeap keeps the top-m results seen so far (a min-heap on score so
// the weakest kept result is at the root).
type resultHeap struct {
	items []Result
	m     int
}

func newResultHeap(m int) *resultHeap { return &resultHeap{m: m} }

func (h *resultHeap) Len() int { return len(h.items) }
func (h *resultHeap) Less(i, j int) bool {
	if h.items[i].Score != h.items[j].Score {
		return h.items[i].Score < h.items[j].Score
	}
	// Among equal scores evict the larger ID, keeping results stable.
	return dewey.Compare(h.items[i].ID, h.items[j].ID) > 0
}
func (h *resultHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *resultHeap) Push(x interface{}) { h.items = append(h.items, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// offer inserts a result, evicting the weakest if the heap is full.
func (h *resultHeap) offer(r Result) {
	if len(h.items) < h.m {
		heap.Push(h, r)
		return
	}
	if h.items[0].Score < r.Score ||
		(h.items[0].Score == r.Score && dewey.Compare(h.items[0].ID, r.ID) > 0) {
		h.items[0] = r
		heap.Fix(h, 0)
	}
}

// kthScore returns the m-th best score so far, or -1 if fewer than m
// results are held (so any positive threshold keeps the scan going).
func (h *resultHeap) kthScore() float64 {
	if len(h.items) < h.m {
		return -1
	}
	return h.items[0].Score
}

// sorted drains the heap into descending-score order.
func (h *resultHeap) sorted() []Result {
	out := make([]Result, len(h.items))
	copy(out, h.items)
	SortResults(out)
	return out
}

// Proximity computes the keyword proximity p(v, k1..kn): n divided by the
// size of the smallest text window containing at least one relevant
// occurrence of every keyword. It is 1 when the keywords are adjacent and
// tends to 0 as they spread apart; 0 if some keyword has no occurrence.
// Each perKeyword[i] must be ascending (posLists are stored ascending).
func Proximity(perKeyword [][]uint32) float64 {
	n := len(perKeyword)
	if n == 0 {
		return 0
	}
	for _, ps := range perKeyword {
		if len(ps) == 0 {
			return 0
		}
	}
	if n == 1 {
		return 1
	}
	// Classic smallest-window sweep: repeatedly advance the keyword whose
	// current position is smallest; every state covers all keywords, so
	// the window max-min+1 is a candidate.
	idx := make([]int, n)
	best := ^uint32(0)
	for {
		lo, hi := uint32(^uint32(0)), uint32(0)
		loK := 0
		for k := 0; k < n; k++ {
			p := perKeyword[k][idx[k]]
			if p < lo {
				lo, loK = p, k
			}
			if p > hi {
				hi = p
			}
		}
		if w := hi - lo + 1; w < best {
			best = w
		}
		idx[loK]++
		if idx[loK] >= len(perKeyword[loK]) {
			break
		}
	}
	if best < uint32(n) {
		// Overlapping positions (the same token counted for two keywords
		// cannot happen, but duplicate positions across keywords can if a
		// token matches both) — clamp so proximity stays <= 1.
		best = uint32(n)
	}
	return float64(n) / float64(best)
}
