package query

import (
	"math"
	"sort"

	"xrank/internal/text"
	"xrank/internal/xmldoc"
)

// BruteForce evaluates a conjunctive keyword query directly from the
// Section 2.2 / 2.3 definitions over the in-memory collection, with no
// index. It exists as an executable specification: the index-based
// processors are tested against it. It returns every result (not just
// top-m), sorted by descending score.
//
// ranks holds ElemRank by global element index; scores are computed at
// float32 precision for the per-element rank (as the indexes store them)
// to keep comparisons exact.
func BruteForce(c *xmldoc.Collection, ranks []float64, keywords []string, opts Options) ([]Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	kws, err := normalizeKeywords(keywords)
	if err != nil {
		return nil, err
	}
	n := len(kws)
	if err := opts.checkWeights(n); err != nil {
		return nil, err
	}
	kwIdx := make(map[string]int, n)
	for i, k := range kws {
		kwIdx[text.NormalizeTerm(k)] = i
	}

	// Inverse element frequencies for the tf-idf scoring mode: df is the
	// number of elements directly containing the keyword.
	idfs := make([]float64, n)
	if opts.Scoring == ScoreTFIDF {
		dfs := make([]int, n)
		total := 0
		for _, d := range c.Docs {
			total += len(d.Elements)
			for _, e := range d.Elements {
				seen := map[int]bool{}
				for _, tok := range e.Tokens {
					if i, ok := kwIdx[tok.Term]; ok && !seen[i] {
						seen[i] = true
						dfs[i]++
					}
				}
			}
		}
		for i, df := range dfs {
			if df > 0 {
				idfs[i] = math.Log(1 + float64(total)/float64(df))
			}
		}
	}

	var results []Result
	for _, d := range c.Docs {
		// R0 membership: contains*(v, ki) for all i, per element.
		containsAll := make([]bool, len(d.Elements))
		var computeContains func(e *xmldoc.Element) []bool
		containsKw := make([][]bool, len(d.Elements))
		computeContains = func(e *xmldoc.Element) []bool {
			has := make([]bool, n)
			for _, tok := range e.Tokens {
				if i, ok := kwIdx[tok.Term]; ok {
					has[i] = true
				}
			}
			for _, ch := range e.Children {
				sub := computeContains(ch)
				for i := range has {
					has[i] = has[i] || sub[i]
				}
			}
			all := true
			for i := range has {
				all = all && has[i]
			}
			containsAll[e.Index] = all
			containsKw[e.Index] = has
			return has
		}
		computeContains(d.Root)

		// For each element, collect relevant occurrences: direct
		// occurrences in descendants reachable without passing through an
		// R0 element strictly below v. An "occurrence" is element-
		// granularity, matching the inverted-list entries the algorithms
		// aggregate (one entry per directly containing element, with its
		// posList).
		for _, v := range d.Elements {
			rel := make([][]occ, n)
			var collect func(u *xmldoc.Element, depth int)
			collect = func(u *xmldoc.Element, depth int) {
				posOf := make(map[int][]uint32, 2)
				for _, tok := range u.Tokens {
					if i, ok := kwIdx[tok.Term]; ok {
						posOf[i] = append(posOf[i], tok.Pos)
					}
				}
				for i, ps := range posOf {
					g := d.Base + int(u.Index)
					rel[i] = append(rel[i], occ{
						rank:  float64(float32(ranks[g])),
						depth: depth,
						pos:   ps,
					})
				}
				for _, ch := range u.Children {
					if containsAll[ch.Index] {
						continue // blocked: the subtree is a more specific result
					}
					collect(ch, depth+1)
				}
			}
			collect(v, 0)
			ok := true
			for i := 0; i < n; i++ {
				if len(rel[i]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Per-keyword rank: f over occurrences of base * decay^depth,
			// decayed by repeated multiplication as the stack merge does.
			score := 0.0
			prox := make([][]uint32, n)
			for i := 0; i < n; i++ {
				ri := 0.0
				var ps []uint32
				for _, o := range rel[i] {
					r := o.rank
					if opts.Scoring == ScoreTFIDF {
						r = (1 + math.Log(1+float64(len(o.pos)))) * idfs[i]
					}
					for k := 0; k < o.depth; k++ {
						r *= opts.Decay
					}
					ri = opts.Agg.combine(ri, r)
					ps = append(ps, o.pos...)
				}
				score += opts.weight(i) * ri
				sort.Slice(ps, func(a, b int) bool { return ps[a] < ps[b] })
				prox[i] = ps
			}
			if opts.UseProximity && n > 1 {
				score *= Proximity(prox)
			}
			results = append(results, Result{ID: v.DeweyID(), Score: score})
		}
	}
	SortResults(results)
	return results, nil
}

type occ struct {
	rank  float64
	depth int
	pos   []uint32
}

// BruteForceDisjunctive is the executable specification for Disjunctive:
// every element *directly* containing at least one keyword, scored by the
// weighted sum of the element's own (undecayed) per-keyword base ranks
// times the proximity over the keywords present. It returns every result
// sorted by descending score.
func BruteForceDisjunctive(c *xmldoc.Collection, ranks []float64, keywords []string, opts Options) ([]Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	kws, err := normalizeKeywords(keywords)
	if err != nil {
		return nil, err
	}
	n := len(kws)
	if err := opts.checkWeights(n); err != nil {
		return nil, err
	}
	kwIdx := make(map[string]int, n)
	for i, k := range kws {
		kwIdx[text.NormalizeTerm(k)] = i
	}

	// df = elements directly containing the keyword, exactly the inverted
	// list length the index-based processor uses on a flat index.
	idfs := make([]float64, n)
	if opts.Scoring == ScoreTFIDF {
		dfs := make([]int, n)
		total := 0
		for _, d := range c.Docs {
			total += len(d.Elements)
			for _, e := range d.Elements {
				seen := map[int]bool{}
				for _, tok := range e.Tokens {
					if i, ok := kwIdx[tok.Term]; ok && !seen[i] {
						seen[i] = true
						dfs[i]++
					}
				}
			}
		}
		for i, df := range dfs {
			if df > 0 {
				idfs[i] = math.Log(1 + float64(total)/float64(df))
			}
		}
	}

	var results []Result
	for _, d := range c.Docs {
		for _, e := range d.Elements {
			perKw := make([][]uint32, n)
			for _, tok := range e.Tokens {
				if i, ok := kwIdx[tok.Term]; ok {
					perKw[i] = append(perKw[i], tok.Pos)
				}
			}
			score := 0.0
			var prox [][]uint32
			for i := 0; i < n; i++ {
				if len(perKw[i]) == 0 {
					continue
				}
				r := float64(float32(ranks[d.Base+int(e.Index)]))
				if opts.Scoring == ScoreTFIDF {
					r = (1 + math.Log(1+float64(len(perKw[i])))) * idfs[i]
				}
				score += opts.weight(i) * r
				prox = append(prox, perKw[i])
			}
			if len(prox) == 0 {
				continue
			}
			if opts.UseProximity && len(prox) > 1 {
				score *= Proximity(prox)
			}
			results = append(results, Result{ID: e.DeweyID(), Score: score})
		}
	}
	SortResults(results)
	return results, nil
}

// BruteForceR0 returns the global element indexes of R0 — every element
// that contains* all keywords — which is exactly the (spurious-including)
// result set of the naive approaches. Sorted ascending.
func BruteForceR0(c *xmldoc.Collection, keywords []string) ([]int32, error) {
	kws, err := normalizeKeywords(keywords)
	if err != nil {
		return nil, err
	}
	var out []int32
	for _, d := range c.Docs {
		for _, e := range d.Elements {
			all := true
			for _, k := range kws {
				if !xmldoc.ContainsTerm(e, text.NormalizeTerm(k)) {
					all = false
					break
				}
			}
			if all {
				out = append(out, int32(c.GlobalIndex(e)))
			}
		}
	}
	return out, nil
}
