package query

import (
	"sort"

	"xrank/internal/dewey"
	"xrank/internal/index"
)

// postingStream is a Dewey-ordered stream of one keyword's postings. The
// head posting stays valid until the stream is advanced.
type postingStream interface {
	// head returns the current posting, or ok=false when exhausted.
	head() (*index.Posting, bool)
	// advance consumes the current posting.
	advance() error
}

// cursorStream adapts an index.ListCursor (disk-backed list).
type cursorStream struct {
	cur  *index.ListCursor
	p    *index.Posting
	done bool
}

func (s *cursorStream) head() (*index.Posting, bool) { return s.p, !s.done }

// close releases the cursor's pinned page. Safe to call repeatedly, and
// required on every exit path once a stream exists: a cancellation or
// budget error can abandon a stream mid-list with a page still pinned.
func (s *cursorStream) close() { s.cur.Close() }

func (s *cursorStream) advance() error {
	p, ok, err := s.cur.Next()
	if err != nil {
		return err
	}
	if !ok {
		s.done = true
		s.p = nil
		s.cur.Close()
		return nil
	}
	s.p = p
	return nil
}

// skipToDoc moves the stream forward until its head posting's document is
// >= doc (or the list ends). Block-format cursors first drop every whole
// block whose document range ends before doc without decoding it; the
// remainder of the current block is stepped through entry by entry, so the
// stream observes exactly the same postings a plain advance loop would.
func (s *cursorStream) skipToDoc(doc uint32) error {
	if s.done {
		return nil
	}
	s.cur.SkipBlocksBelowDoc(doc)
	for !s.done && s.p != nil && s.p.ID.Doc() < doc {
		if err := s.advance(); err != nil {
			return err
		}
	}
	return nil
}

// terminate abandons the remainder of the list: the caller has proved no
// further posting from this stream can contribute to a result. Block-format
// cursors record the dropped blocks as skipped; the pinned page is
// released either way.
func (s *cursorStream) terminate() {
	if s.done {
		return
	}
	s.cur.SkipRemainingBlocks()
	s.done = true
	s.p = nil
	s.cur.Close()
}

// sliceStream adapts an in-memory posting slice (used by RDIL to evaluate
// the postings under one candidate ancestor).
type sliceStream struct {
	posts []index.Posting
	i     int
}

func (s *sliceStream) head() (*index.Posting, bool) {
	if s.i >= len(s.posts) {
		return nil, false
	}
	return &s.posts[s.i], true
}

func (s *sliceStream) advance() error { s.i++; return nil }

// mnode is one Dewey-stack level during the merge (Figure 6): the
// aggregated per-keyword ranks and posLists of the element identified by
// the stack prefix ending at this component.
type mnode struct {
	ranks       []float64
	pos         [][]uint32
	containsAll bool
}

func (nd *mnode) reset(n int) {
	if cap(nd.ranks) < n {
		nd.ranks = make([]float64, n)
		nd.pos = make([][]uint32, n)
	}
	nd.ranks = nd.ranks[:n]
	nd.pos = nd.pos[:n]
	for i := 0; i < n; i++ {
		nd.ranks[i] = 0
		nd.pos[i] = nd.pos[i][:0]
	}
	nd.containsAll = false
}

// merger runs the single-pass Dewey-stack merge of Figure 5 over n
// keyword streams, emitting every element of Result(Q) with its overall
// rank. It is the DIL query processor's engine, and — run over the small
// in-memory posting sets below a candidate ancestor — the result
// evaluator inside RDIL/HDIL.
type merger struct {
	opts    Options
	n       int
	streams []postingStream
	// base computes an occurrence's undecayed rank from its entry; the
	// default is the stored ElemRank, and the tf-idf scoring mode plugs in
	// a different function.
	base func(stream int, p *index.Posting) float64

	stack []*mnode
	curID dewey.ID
	free  []*mnode

	proxBuf [][]uint32
}

func newMerger(streams []postingStream, opts Options) *merger {
	base := func(_ int, p *index.Posting) float64 { return float64(p.Rank) }
	if opts.Rank != nil {
		rank := opts.Rank
		base = func(_ int, p *index.Posting) float64 { return rank(p) }
	}
	return &merger{
		opts:    opts,
		n:       len(streams),
		streams: streams,
		base:    base,
	}
}

func (m *merger) node() *mnode {
	if k := len(m.free); k > 0 {
		nd := m.free[k-1]
		m.free = m.free[:k-1]
		nd.reset(m.n)
		return nd
	}
	nd := &mnode{}
	nd.reset(m.n)
	return nd
}

// cancelCheckInterval throttles merge-loop cancellation checks: page
// reads already check every page, so the loop-level check only has to
// bound the latency of long fully-cached stretches. Checking every
// iteration would put a mutex acquisition on the per-posting hot path.
const cancelCheckInterval = 64

// run performs the merge, calling emit for every result element in
// post-order (descendants before ancestors within a path).
func (m *merger) run(emit func(id dewey.ID, score float64)) error {
	// lastDoc is the document of the most recently consumed posting; the
	// document leapfrog below may only discard postings in documents
	// strictly beyond it (postings in lastDoc itself can still complete
	// the element stack built so far).
	var lastDoc uint32
	lastDocSet := false
	for iter := 0; ; iter++ {
		if iter%cancelCheckInterval == 0 {
			if err := m.opts.Exec.Err(); err != nil {
				return err
			}
		}
		// Pick the stream with the smallest head Dewey ID (Figure 5
		// lines 7-9), also noting the largest head document and whether
		// any stream has run out — the inputs to the document leapfrog.
		var best *index.Posting
		bestIdx := -1
		exhausted := false
		live := 0
		var dmax uint32
		for i, s := range m.streams {
			p, ok := s.head()
			if !ok {
				exhausted = true
				continue
			}
			if d := p.ID.Doc(); live == 0 || d > dmax {
				dmax = d
			}
			live++
			if best == nil || dewey.Compare(p.ID, best.ID) < 0 {
				best, bestIdx = p, i
			}
		}
		if bestIdx < 0 {
			break
		}
		// Document leapfrog. A result element must contain every keyword,
		// and rank propagation never crosses a document boundary (the
		// stack pops to the root between documents), so with n >= 2:
		//
		//   - once any stream is exhausted, no document beyond lastDoc
		//     can produce a result — the other streams' tails are dead
		//     weight and can be dropped wholesale;
		//   - otherwise, documents strictly between lastDoc and dmax
		//     cannot produce a result (the dmax stream has no postings
		//     there), so streams heading into that gap may leap to dmax.
		//
		// Either way the discarded postings could only ever have filled
		// stack nodes that pop without emitting, so the emitted elements
		// and scores are bit-identical to the plain merge. Block-format
		// cursors turn the leap into whole-block skips.
		if m.n >= 2 {
			if exhausted {
				closed := false
				for _, s := range m.streams {
					cs, ok := s.(*cursorStream)
					if !ok || cs.done {
						continue
					}
					if !lastDocSet || cs.p.ID.Doc() > lastDoc {
						cs.terminate()
						closed = true
					}
				}
				if closed {
					continue // re-pick: best may have been dropped
				}
			} else if bd := best.ID.Doc(); bd < dmax && (!lastDocSet || bd > lastDoc) {
				skipped := false
				for _, s := range m.streams {
					cs, ok := s.(*cursorStream)
					if !ok || cs.done {
						continue
					}
					if d := cs.p.ID.Doc(); d < dmax && (!lastDocSet || d > lastDoc) {
						if err := cs.skipToDoc(dmax); err != nil {
							return err
						}
						skipped = true
					}
				}
				if skipped {
					continue // re-pick with the advanced heads
				}
			}
		}
		// Longest common prefix with the current stack (lines 10-11).
		lcp := dewey.CommonPrefixLen(m.curID, best.ID)
		// Pop non-matching components (lines 12-24).
		for len(m.stack) > lcp {
			m.popTop(emit)
		}
		// Push the new components (lines 25-28).
		for len(m.stack) < len(best.ID) {
			m.stack = append(m.stack, m.node())
			m.curID = append(m.curID, best.ID[len(m.curID)])
		}
		// Record the entry at the top (lines 29-31).
		top := m.stack[len(m.stack)-1]
		top.ranks[bestIdx] = m.opts.Agg.combine(top.ranks[bestIdx], m.base(bestIdx, best))
		top.pos[bestIdx] = append(top.pos[bestIdx], best.Positions...)
		doc := best.ID.Doc()
		if err := m.streams[bestIdx].advance(); err != nil {
			return err
		}
		lastDoc, lastDocSet = doc, true
	}
	// Drain the stack (line 33).
	for len(m.stack) > 0 {
		m.popTop(emit)
	}
	return nil
}

// popTop pops the deepest stack component, emitting it if it is a result
// and otherwise propagating its decayed ranks and posLists to its parent
// (Figure 5 lines 13-24).
func (m *merger) popTop(emit func(id dewey.ID, score float64)) {
	depth := len(m.stack)
	nd := m.stack[depth-1]
	m.stack = m.stack[:depth-1]
	var parent *mnode
	if depth >= 2 {
		parent = m.stack[depth-2]
	}

	all := true
	for i := 0; i < m.n; i++ {
		if len(nd.pos[i]) == 0 {
			all = false
			break
		}
	}
	switch {
	case all:
		nd.containsAll = true
		emit(m.curID[:depth].Clone(), m.score(nd))
	case !nd.containsAll && parent != nil:
		for i := 0; i < m.n; i++ {
			if len(nd.pos[i]) == 0 {
				continue
			}
			parent.ranks[i] = m.opts.Agg.combine(parent.ranks[i], nd.ranks[i]*m.opts.Decay)
			parent.pos[i] = append(parent.pos[i], nd.pos[i]...)
		}
	}
	if nd.containsAll && parent != nil {
		parent.containsAll = true
	}
	m.curID = m.curID[:depth-1]
	m.free = append(m.free, nd)
}

// score computes the overall rank of Section 2.3.2.2 for a node whose
// posLists are all non-empty.
func (m *merger) score(nd *mnode) float64 {
	sum := 0.0
	for i := 0; i < m.n; i++ {
		sum += m.opts.weight(i) * nd.ranks[i]
	}
	if !m.opts.UseProximity || m.n == 1 {
		return sum
	}
	// posLists may be unsorted after propagation (a parent's direct text
	// interleaves with its children's in document order); sort before the
	// window sweep.
	if cap(m.proxBuf) < m.n {
		m.proxBuf = make([][]uint32, m.n)
	}
	m.proxBuf = m.proxBuf[:m.n]
	for i := 0; i < m.n; i++ {
		ps := nd.pos[i]
		if !sort.SliceIsSorted(ps, func(a, b int) bool { return ps[a] < ps[b] }) {
			sort.Slice(ps, func(a, b int) bool { return ps[a] < ps[b] })
		}
		m.proxBuf[i] = ps
	}
	return sum * Proximity(m.proxBuf)
}
