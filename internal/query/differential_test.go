package query

// The differential correctness harness for sharded execution: randomized
// corpora from the internal/datagen generators, every query processor run
// at shard counts 1, 2 and 8, all checked against the brute-force
// executable specification — same result set, same tie-break order, same
// scores within epsilon. This is the test that guards the central
// sharding claim: shard count is invisible in query results.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"xrank/internal/datagen/dblp"
	"xrank/internal/datagen/xmark"
	"xrank/internal/elemrank"
	"xrank/internal/index"
	"xrank/internal/storage"
	"xrank/internal/xmldoc"
)

// shardCounts are the partition counts the harness covers. 1 is the flat
// layout (direct call, no fan-out), 2 exercises the merge, and 8 exceeds
// both GOMAXPROCS on small machines (worker-pool queuing) and the
// document count of the smallest corpora (empty shards).
var shardCounts = []int{1, 2, 8}

// shardedFixture holds one collection indexed at several shard counts.
type shardedFixture struct {
	c       *xmldoc.Collection
	ranks   []float64
	sharded map[int]*index.Sharded
}

func newShardedFixture(t *testing.T, docs []string, opts index.BuildOptions, counts []int) *shardedFixture {
	t.Helper()
	c := xmldoc.NewCollection()
	for i, s := range docs {
		if _, err := c.AddXML(fmt.Sprintf("doc%03d", i), strings.NewReader(s), nil); err != nil {
			t.Fatalf("AddXML doc%03d: %v", i, err)
		}
	}
	g, _ := elemrank.BuildGraph(c)
	res, err := elemrank.Compute(g, elemrank.DefaultParams())
	if err != nil || !res.Converged {
		t.Fatalf("elemrank: %v", err)
	}
	fx := &shardedFixture{c: c, ranks: res.Scores, sharded: make(map[int]*index.Sharded)}
	for _, sc := range counts {
		dir := t.TempDir()
		if _, err := index.BuildSharded(c, res.Scores, dir, opts, sc); err != nil {
			t.Fatalf("BuildSharded(%d): %v", sc, err)
		}
		sh, err := index.OpenSharded(dir, index.OpenOptions{})
		if err != nil {
			t.Fatalf("OpenSharded(%d): %v", sc, err)
		}
		t.Cleanup(func() { sh.Close() })
		fx.sharded[sc] = sh
	}
	return fx
}

// datagenCorpus produces a multi-document corpus from the DBLP generator
// (many small documents, so shards get real spread) plus one XMark-shaped
// document for structural depth. The vocabulary is kept small so random
// conjunctive queries actually co-occur.
func datagenCorpus(seed int64) []string {
	var out []string
	for _, d := range dblp.Generate(dblp.Params{
		Seed:         seed,
		Docs:         10,
		PapersPerDoc: 6,
		VocabSize:    150,
	}) {
		out = append(out, d.XML)
	}
	out = append(out, xmark.Generate(xmark.Params{
		Seed:           seed + 1,
		Items:          25,
		People:         15,
		OpenAuctions:   20,
		ClosedAuctions: 12,
		Categories:     6,
		VocabSize:      150,
	}))
	return out
}

// corpusVocab returns the terms occurring in at least two documents and
// at least four times overall — the candidates from which random queries
// are drawn — in deterministic order.
func corpusVocab(c *xmldoc.Collection) []string {
	total := map[string]int{}
	docsWith := map[string]map[int]bool{}
	for di, d := range c.Docs {
		for _, e := range d.Elements {
			for _, tok := range e.Tokens {
				total[tok.Term]++
				m := docsWith[tok.Term]
				if m == nil {
					m = map[int]bool{}
					docsWith[tok.Term] = m
				}
				m[di] = true
			}
		}
	}
	var vocab []string
	for term, n := range total {
		if n >= 4 && len(docsWith[term]) >= 2 {
			vocab = append(vocab, term)
		}
	}
	sort.Strings(vocab)
	return vocab
}

func truncated(rs []Result, m int) []Result {
	if len(rs) > m {
		rs = rs[:m]
	}
	return rs
}

// TestShardedDifferentialAllAlgorithms is the property-based harness: for
// random queries over datagen corpora, DIL, RDIL, HDIL and Disjunctive
// must return exactly the brute-force reference ranking at every shard
// count, and the naive pair must be shard-count-invariant and mutually
// consistent.
func TestShardedDifferentialAllAlgorithms(t *testing.T) {
	cm := storage.DefaultCostModel()
	for seed := int64(0); seed < 2; seed++ {
		fx := newShardedFixture(t, datagenCorpus(seed),
			index.BuildOptions{MinRankPrefix: 4, RankFraction: 0.2}, shardCounts)
		vocab := corpusVocab(fx.c)
		if len(vocab) < 10 {
			t.Fatalf("seed %d: only %d query-candidate terms", seed, len(vocab))
		}
		r := rand.New(rand.NewSource(seed*31 + 7))
		for trial := 0; trial < 10; trial++ {
			nk := 1 + r.Intn(3)
			q := make([]string, nk)
			for i := range q {
				q[i] = vocab[r.Intn(len(vocab))]
			}
			if trial == 9 {
				// One query with a keyword absent from the corpus: the
				// conjunction must come back empty at every shard count.
				q[0] = "zqx9absent"
			}
			opts := DefaultOptions()
			opts.TopM = 8

			want, err := BruteForce(fx.c, fx.ranks, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			want = truncated(want, opts.TopM)
			wantDisj, err := BruteForceDisjunctive(fx.c, fx.ranks, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantDisj = truncated(wantDisj, opts.TopM)
			// The naive pair has its own (ancestor-including, undecayed)
			// semantics; the flat index is their reference, and 2- and
			// 8-shard runs must reproduce it exactly.
			naiveWant, err := NaiveIDSharded(fx.sharded[1], q, opts, 0)
			if err != nil {
				t.Fatal(err)
			}

			for _, sc := range shardCounts {
				sh := fx.sharded[sc]
				name := func(algo string) string {
					return fmt.Sprintf("seed%d trial%d %s(%v)@%dshards", seed, trial, algo, q, sc)
				}
				got, err := DILSharded(sh, q, opts, 0)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, name("DIL"), got, want, 1e-9)

				got, err = RDILSharded(sh, q, opts, 0)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, name("RDIL"), got, want, 1e-9)

				got, _, err = HDILSharded(sh, q, opts, 0, cm)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, name("HDIL"), got, want, 1e-9)

				got, err = DisjunctiveSharded(sh, q, opts, 0)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, name("Disjunctive"), got, wantDisj, 1e-9)

				got, err = NaiveIDSharded(sh, q, opts, 0)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, name("NaiveID"), got, naiveWant, 1e-9)

				got, err = NaiveRankSharded(sh, q, opts, 0)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, name("NaiveRank"), got, naiveWant, 1e-9)
			}
		}
	}
}

// TestShardedDifferentialTFIDF pins the global document-frequency
// override: with tf-idf scoring, per-shard list lengths differ from the
// collection-global dfs, so without Options.DFs the sharded runs would
// score differently at different shard counts. The brute-force reference
// uses global dfs by construction.
func TestShardedDifferentialTFIDF(t *testing.T) {
	fx := newShardedFixture(t, datagenCorpus(3),
		index.BuildOptions{}, shardCounts)
	vocab := corpusVocab(fx.c)
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		nk := 1 + r.Intn(2)
		q := make([]string, nk)
		for i := range q {
			q[i] = vocab[r.Intn(len(vocab))]
		}
		opts := DefaultOptions()
		opts.TopM = 8
		opts.Scoring = ScoreTFIDF

		want, err := BruteForce(fx.c, fx.ranks, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		want = truncated(want, opts.TopM)
		wantDisj, err := BruteForceDisjunctive(fx.c, fx.ranks, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantDisj = truncated(wantDisj, opts.TopM)
		naiveWant, err := NaiveIDSharded(fx.sharded[1], q, opts, 0)
		if err != nil {
			t.Fatal(err)
		}

		for _, sc := range shardCounts {
			sh := fx.sharded[sc]
			name := func(algo string) string {
				return fmt.Sprintf("trial%d tfidf %s(%v)@%dshards", trial, algo, q, sc)
			}
			got, err := DILSharded(sh, q, opts, 0)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, name("DIL"), got, want, 1e-9)

			got, err = DisjunctiveSharded(sh, q, opts, 0)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, name("Disjunctive"), got, wantDisj, 1e-9)

			got, err = NaiveIDSharded(sh, q, opts, 0)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, name("NaiveID"), got, naiveWant, 1e-9)
		}
	}
}
