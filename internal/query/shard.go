package query

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"xrank/internal/index"
	"xrank/internal/storage"
)

// Sharded execution runs one instance of an algorithm per index shard and
// merges the per-shard top-m's. Correctness rests on two facts:
//
//   - Scores are shard-invariant. Every scoring decision is
//     intra-document (the Dewey-stack merge never carries state across a
//     document boundary, RDIL/HDIL probes stay inside one document's
//     subtree, and naive closures follow parent chains within a
//     document), documents are partitioned whole, and shards keep the
//     global element-ID/Dewey spaces and — via Options.DFs — the global
//     tf-idf document frequencies. A result therefore gets the same
//     score from its shard as it would from a monolithic index.
//
//   - Top-m composes. Under the strict total order (score descending,
//     Dewey ID ascending) the global top-m of a disjoint union is a
//     subset of the concatenated per-shard top-m's, so MergeTopM loses
//     nothing. The threshold-algorithm stopping rule survives sharding:
//     shard s stops once its threshold T_s falls to its local m-th score
//     k_s, and since shard s's candidates are a subset of the
//     collection's, k_s ≤ the global m-th score k — so every shard's
//     stopping point satisfies the paper's global rule max_s T_s ≤ k
//     without any cross-shard coordination.
//
// Each shard worker runs under a child of the query's ExecContext:
// cancellation, deadlines and the page-read budget fan out (one shared
// pool), per-shard I/O aggregates back into the parent's Stats, and a
// failing shard poisons the family so its siblings abort at their next
// page access instead of running to completion.

// shardWorkers bounds the worker pool: the caller's preference (0 means
// "one per shard"), clamped to the shard count and GOMAXPROCS.
func shardWorkers(requested, shards int) int {
	w := requested
	if w <= 0 || w > shards {
		w = shards
	}
	if gp := runtime.GOMAXPROCS(0); w > gp {
		w = gp
	}
	if w < 1 {
		w = 1
	}
	return w
}

// JitterBackoff returns the wait before retry attempt (0-based): a draw
// uniform in [0, base<<attempt] — exponential cap with full jitter, so a
// fleet of queries retrying against one recovering device spreads out
// instead of stampeding in lockstep. The shift is clamped so the cap
// cannot overflow. The cluster coordinator reuses the same schedule for
// replica failover.
func JitterBackoff(rng *rand.Rand, base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt > 20 {
		attempt = 20
	}
	cap := int64(base) << attempt
	return time.Duration(rng.Int63n(cap + 1))
}

// runShardAttempts invokes run on one shard with bounded
// retry-with-backoff: a transient device fault (an error wrapping
// storage.ErrIO) is retried up to opts.retries() times with seeded
// full-jitter exponential backoff (see JitterBackoff), aborting early if
// the query is cancelled. It returns the last result plus how many retry
// attempts were consumed.
func runShardAttempts(s int, ix *index.Index, so Options,
	run func(s int, ix *index.Index, so Options) ([]Result, error)) ([]Result, error, int) {
	base := so.retryBackoff()
	maxRetries := so.retries()
	var rng *rand.Rand // created on first retry; most attempts never pay for it
	for attempt := 0; ; attempt++ {
		rs, err := run(s, ix, so)
		if err == nil || !retryable(err) || attempt >= maxRetries {
			return rs, err, attempt
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(so.retrySeed() + int64(s)*1315423911))
		}
		t := time.NewTimer(JitterBackoff(rng, base, attempt))
		select {
		case <-so.Exec.Context().Done():
			t.Stop()
			return nil, so.Exec.Context().Err(), attempt
		case <-t.C:
		}
	}
}

// runSharded fans run out over the healthy shards under a bounded worker
// pool and merges the per-shard top-m's. run receives the shard number,
// the shard index and a per-shard Options whose Exec is a child of
// opts.Exec. With a single shard it degenerates to a direct call on the
// caller's goroutine — no pool, no child context (retries still apply).
//
// Degraded mode: shards already marked unhealthy are skipped up front —
// unless opts.ProbeInterval grants one a half-open trial, in which case
// it executes normally and a success revives it. A shard whose execution
// still fails with a device fault after retries is excluded from this
// merge (and counted toward its unhealthy threshold) while the query
// completes over the remaining shards, recording the exclusions in
// opts.Report. Non-device errors — cancellation, deadline, budget,
// semantic — stay fatal and poison the ExecContext family so sibling
// shards abort promptly. Only when every shard is excluded does the
// query fail.
func runSharded(sh *index.Sharded, opts Options, workers int,
	run func(s int, ix *index.Index, so Options) ([]Result, error)) ([]Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	shards := sh.Shards()
	threshold := opts.failureThreshold()
	if len(shards) == 1 {
		// A flat index has nothing to degrade to: retry transient faults,
		// then surface the error. Health is still recorded so /api/shards
		// shows the failing device, but the shard is never skipped.
		rs, err, retries := runShardAttempts(0, shards[0], opts, run)
		opts.Report.noteRetries(retries)
		if err != nil && retryable(err) {
			sh.RecordShardFailure(0, err, threshold)
		} else if err == nil {
			sh.RecordShardSuccess(0)
		}
		return rs, err
	}
	workers = shardWorkers(workers, len(shards))
	sem := make(chan struct{}, workers)
	perShard := make([][]Result, len(shards))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		fatalErr error             // non-device error: fails the whole query
		excluded = map[int]error{} // shard → why it is absent from the merge
	)
	for s, ix := range shards {
		probe := false
		if !sh.ShardHealthy(s) {
			if !sh.TryProbe(s, opts.ProbeInterval) {
				excluded[s] = nil // skipped up front; nil marks "already unhealthy"
				continue
			}
			// Half-open trial: the shard executes like any other; success
			// below revives it, failure re-arms the probe interval.
			probe = true
			opts.Report.noteProbe()
		}
		wg.Add(1)
		go func(s int, ix *index.Index, probe bool) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			failed := fatalErr != nil
			mu.Unlock()
			if failed {
				return // the query is already doomed; don't start new work
			}
			so := opts
			so.Exec = opts.Exec.Child()
			endShard := so.Exec.StartSpan(fmt.Sprintf("shard%02d.exec", s))
			rs, err, retries := runShardAttempts(s, ix, so, run)
			endShard()
			mu.Lock()
			defer mu.Unlock()
			opts.Report.noteRetries(retries)
			if err != nil {
				if retryable(err) {
					// Transient fault that survived retries: exclude the
					// shard from this merge, count it toward the unhealthy
					// threshold, and let the siblings finish.
					excluded[s] = err
					sh.RecordShardFailure(s, err, threshold)
					return
				}
				if fatalErr == nil {
					fatalErr = err
				}
				// Poison the family so running siblings abort at their
				// next page access rather than completing a doomed query.
				opts.Exec.Fail(err)
				return
			}
			if probe {
				sh.Revive(s)
			}
			sh.RecordShardSuccess(s)
			perShard[s] = rs
		}(s, ix, probe)
	}
	wg.Wait()
	if fatalErr != nil {
		return nil, fatalErr
	}
	if len(excluded) == len(shards) {
		for s, err := range excluded {
			if err != nil {
				return nil, fmt.Errorf("query: all %d shards failed, shard %d: %w", len(shards), s, err)
			}
		}
		return nil, fmt.Errorf("query: all %d shards are marked unhealthy", len(shards))
	}
	for s, err := range excluded {
		opts.Report.noteFailed(s, err)
	}
	endMerge := opts.Exec.StartSpan("merge.topk")
	out := MergeTopM(perShard, opts.TopM)
	endMerge()
	return out, nil
}

// MergeTopM combines per-shard ranked prefixes into the global top-m:
// concatenate, re-sort under the total order, truncate. Each input slice
// must be that shard's top-m (or more) under the same order.
func MergeTopM(perShard [][]Result, topM int) []Result {
	n := 0
	for _, rs := range perShard {
		n += len(rs)
	}
	all := make([]Result, 0, n)
	for _, rs := range perShard {
		all = append(all, rs...)
	}
	SortResults(all)
	if len(all) > topM {
		all = all[:topM]
	}
	return all
}

// globalDFs fills opts.DFs with collection-global document frequencies
// when tf-idf scoring would otherwise see per-shard list lengths. count
// maps a keyword to its global list length.
func globalDFs(opts *Options, keywords []string, count func(kw string) int) error {
	if opts.Scoring != ScoreTFIDF || opts.DFs != nil {
		return nil
	}
	kws, err := normalizeKeywords(keywords)
	if err != nil {
		return err
	}
	dfs := make([]int, len(kws))
	for i, kw := range kws {
		dfs[i] = count(kw)
	}
	opts.DFs = dfs
	return nil
}

// DILSharded evaluates DIL on every shard in parallel and merges the
// per-shard top-m's; see the package notes above for why the result is
// identical to DIL over a monolithic index.
func DILSharded(sh *index.Sharded, keywords []string, opts Options, workers int) ([]Result, error) {
	if err := globalDFs(&opts, keywords, sh.DILCount); err != nil {
		return nil, err
	}
	return runSharded(sh, opts, workers, func(_ int, ix *index.Index, so Options) ([]Result, error) {
		return DIL(ix, keywords, so)
	})
}

// RDILSharded evaluates RDIL on every shard in parallel. Each shard's
// threshold algorithm terminates on its own: its stopping rule is
// strictly stronger than the global one (see the package notes).
func RDILSharded(sh *index.Sharded, keywords []string, opts Options, workers int) ([]Result, error) {
	return runSharded(sh, opts, workers, func(_ int, ix *index.Index, so Options) ([]Result, error) {
		return RDIL(ix, keywords, so)
	})
}

// HDILSharded evaluates HDIL on every shard in parallel. The adaptive
// switch decision is per shard — one shard with unlucky rank prefixes can
// fall back to DIL while the others stay ranked. The returned trace
// aggregates: SwitchedToDIL if any shard switched (first switcher's
// reason), entries-read summed.
func HDILSharded(sh *index.Sharded, keywords []string, opts Options, workers int, cm storage.CostModel) ([]Result, *HDILTrace, error) {
	traces := make([]*HDILTrace, sh.NumShards())
	rs, err := runSharded(sh, opts, workers, func(s int, ix *index.Index, so Options) ([]Result, error) {
		res, tr, err := HDIL(ix, keywords, so, cm)
		traces[s] = tr // one writer per slot; no lock needed
		return res, err
	})
	agg := &HDILTrace{}
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		if tr.SwitchedToDIL && !agg.SwitchedToDIL {
			agg.SwitchedToDIL = true
			agg.SwitchReason = tr.SwitchReason
		}
		agg.RankedEntriesRead += tr.RankedEntriesRead
	}
	return rs, agg, err
}

// NaiveIDSharded evaluates Naive-ID on every shard in parallel. Naive
// closures follow parent chains within one document, so partitioning by
// document keeps them intact.
func NaiveIDSharded(sh *index.Sharded, keywords []string, opts Options, workers int) ([]Result, error) {
	if err := globalDFs(&opts, keywords, sh.NaiveCount); err != nil {
		return nil, err
	}
	return runSharded(sh, opts, workers, func(_ int, ix *index.Index, so Options) ([]Result, error) {
		return NaiveID(ix, keywords, so)
	})
}

// NaiveRankSharded evaluates Naive-Rank on every shard in parallel; the
// per-shard TA stopping rule composes exactly as RDIL's does.
func NaiveRankSharded(sh *index.Sharded, keywords []string, opts Options, workers int) ([]Result, error) {
	return runSharded(sh, opts, workers, func(_ int, ix *index.Index, so Options) ([]Result, error) {
		return NaiveRank(ix, keywords, so)
	})
}

// DisjunctiveSharded evaluates the disjunctive processor on every shard
// in parallel. A keyword absent from one shard contributes nothing there
// but still scores on the shards that hold it.
func DisjunctiveSharded(sh *index.Sharded, keywords []string, opts Options, workers int) ([]Result, error) {
	if err := globalDFs(&opts, keywords, sh.DILCount); err != nil {
		return nil, err
	}
	return runSharded(sh, opts, workers, func(_ int, ix *index.Index, so Options) ([]Result, error) {
		return Disjunctive(ix, keywords, so)
	})
}
