package query

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"xrank/internal/dewey"
	"xrank/internal/index"
	"xrank/internal/storage"
	"xrank/internal/xmldoc"
)

// Tests for the paper's extension features: keyword weights
// (Section 2.3.2.2), tf-idf scoring (Section 7), and disjunctive
// semantics (Section 2.2).

func TestWeightsMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	fx := newFixture(t, randomCorpus(r, 3), index.BuildOptions{})
	for trial := 0; trial < 8; trial++ {
		q := []string{fmt.Sprintf("v%d", r.Intn(40)), fmt.Sprintf("v%d", (r.Intn(39)+1+r.Intn(1))%40)}
		if q[0] == q[1] {
			continue
		}
		opts := DefaultOptions()
		opts.TopM = 200
		opts.Weights = []float64{0.2 + r.Float64(), 0.2 + r.Float64()}
		want, err := BruteForce(fx.c, fx.ranks, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DIL(fx.ix, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("weighted DIL(%v)", q), got, want, 1e-9)

		opts.TopM = 5
		wantTop := want
		if len(wantTop) > 5 {
			wantTop = wantTop[:5]
		}
		gotR, err := RDIL(fx.ix, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("weighted RDIL(%v)", q), gotR, wantTop, 1e-9)
	}
}

func TestWeightsValidation(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	opts := DefaultOptions()
	opts.Weights = []float64{1} // wrong arity for 2 keywords
	if _, err := DIL(fx.ix, []string{"xql", "language"}, opts); err == nil {
		t.Errorf("weight arity mismatch should fail")
	}
	opts.Weights = []float64{-1, 1}
	if _, err := DIL(fx.ix, []string{"xql", "language"}, opts); err == nil {
		t.Errorf("negative weight should fail")
	}
	// Zero weight effectively mutes a keyword's contribution but keeps the
	// conjunctive filter.
	opts.Weights = []float64{0, 1}
	rs, err := DIL(fx.ix, []string{"xql", "language"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Errorf("zero-weight query should still return conjunctive results")
	}
}

func TestTFIDFMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	fx := newFixture(t, randomCorpus(r, 3), index.BuildOptions{})
	for trial := 0; trial < 8; trial++ {
		nk := 1 + r.Intn(2)
		q := make([]string, nk)
		for i := range q {
			q[i] = fmt.Sprintf("v%d", r.Intn(40))
		}
		opts := DefaultOptions()
		opts.TopM = 200
		opts.Scoring = ScoreTFIDF
		want, err := BruteForce(fx.c, fx.ranks, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DIL(fx.ix, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("tfidf DIL(%v)", q), got, want, 1e-9)
	}
}

func TestTFIDFFavorsRareTerms(t *testing.T) {
	// Two documents: "rare" occurs once in the whole corpus, "common"
	// everywhere. Under tf-idf the rare keyword's results outrank equally
	// placed common ones.
	docs := []string{
		`<r><a>rare common</a><b>common</b><c>common</c><d>common</d></r>`,
		`<r><a>common</a><b>common</b></r>`,
	}
	fx := newFixture(t, docs, index.BuildOptions{})
	opts := DefaultOptions()
	opts.Scoring = ScoreTFIDF
	rare, err := DIL(fx.ix, []string{"rare"}, opts)
	if err != nil || len(rare) == 0 {
		t.Fatalf("rare: %v %v", rare, err)
	}
	common, err := DIL(fx.ix, []string{"common"}, opts)
	if err != nil || len(common) == 0 {
		t.Fatalf("common: %v %v", common, err)
	}
	if rare[0].Score <= common[0].Score {
		t.Errorf("idf should favor the rare term: %g vs %g", rare[0].Score, common[0].Score)
	}
}

func TestTFIDFRejectedByRankedAlgorithms(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	opts := DefaultOptions()
	opts.Scoring = ScoreTFIDF
	if _, err := RDIL(fx.ix, []string{"xql", "language"}, opts); err == nil {
		t.Errorf("RDIL should reject tf-idf")
	}
	if _, _, err := HDIL(fx.ix, []string{"xql", "language"}, opts, storage.DefaultCostModel()); err == nil {
		t.Errorf("HDIL should reject tf-idf")
	}
	if _, err := NaiveRank(fx.ix, []string{"xql", "language"}, opts); err == nil {
		t.Errorf("NaiveRank should reject tf-idf")
	}
	if _, err := NaiveID(fx.ix, []string{"xql", "language"}, opts); err != nil {
		t.Errorf("NaiveID should accept tf-idf: %v", err)
	}
}

// disjunctiveReference recomputes the disjunctive semantics directly from
// the collection: every element directly containing at least one keyword,
// scored by the weighted sum of its per-keyword ElemRanks times proximity
// over the present keywords.
func disjunctiveReference(c *xmldoc.Collection, ranks []float64, kws []string, opts Options) []Result {
	var out []Result
	for _, d := range c.Docs {
		for _, e := range d.Elements {
			perKw := make([][]uint32, len(kws))
			present := 0
			for _, tok := range e.Tokens {
				for i, k := range kws {
					if tok.Term == k {
						if len(perKw[i]) == 0 {
							present++
						}
						perKw[i] = append(perKw[i], tok.Pos)
					}
				}
			}
			if present == 0 {
				continue
			}
			score := 0.0
			var prox [][]uint32
			for i := range kws {
				if len(perKw[i]) > 0 {
					score += opts.weight(i) * float64(float32(ranks[d.Base+int(e.Index)]))
					prox = append(prox, perKw[i])
				}
			}
			if opts.UseProximity && len(prox) > 1 {
				score *= Proximity(prox)
			}
			out = append(out, Result{ID: e.DeweyID(), Score: score})
		}
	}
	SortResults(out)
	return out
}

func TestDisjunctiveMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	fx := newFixture(t, randomCorpus(r, 3), index.BuildOptions{})
	for trial := 0; trial < 10; trial++ {
		nk := 1 + r.Intn(3)
		q := make([]string, nk)
		seen := map[string]bool{}
		for i := range q {
			for {
				q[i] = fmt.Sprintf("v%d", r.Intn(40))
				if !seen[q[i]] {
					seen[q[i]] = true
					break
				}
			}
		}
		opts := DefaultOptions()
		opts.TopM = 10000
		want := disjunctiveReference(fx.c, fx.ranks, q, opts)
		got, err := Disjunctive(fx.ix, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("disjunctive(%v): %d results, want %d", q, len(got), len(want))
		}
		for i := range got {
			if !dewey.Equal(got[i].ID, want[i].ID) || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
				t.Fatalf("disjunctive(%v)[%d]: %v/%g, want %v/%g", q, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
}

func TestDisjunctiveSupersetsConjunctive(t *testing.T) {
	fx := newFixture(t, []string{figure1}, index.BuildOptions{})
	opts := DefaultOptions()
	opts.TopM = 1000
	dis, err := Disjunctive(fx.ix, []string{"xql", "xyleme"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every element directly containing either keyword appears.
	if len(dis) < 4 {
		t.Fatalf("disjunctive results = %d", len(dis))
	}
	// An absent keyword does not empty the result.
	dis2, err := Disjunctive(fx.ix, []string{"xql", "notinthecorpus"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(dis2) == 0 {
		t.Errorf("disjunctive with one absent keyword should still match")
	}
	// All absent: empty.
	dis3, err := Disjunctive(fx.ix, []string{"nope", "alsonope"}, opts)
	if err != nil || dis3 != nil {
		t.Errorf("all-absent disjunctive = %v, %v", dis3, err)
	}
}
