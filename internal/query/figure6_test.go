package query

import (
	"math"
	"testing"

	"xrank/internal/dewey"
	"xrank/internal/index"
)

// TestFigure6WalkThrough replays the paper's Section 4.2.2 worked example
// on the exact Figure 4 data: the query 'XQL Ricardo' over the DIL with
//
//	XQL:     5.0.3.0.0 (paper 1's title), 6.0.3.8.3
//	Ricardo: 5.0.3.0.1 (paper 1's first author)
//
// The Dewey stack merges 5.0.3.0.0 and 5.0.3.0.1 into their deepest
// common ancestor 5.0.3.0 — the <paper> element — which is the only
// result: 6.0.3.8.3's subtree never sees 'Ricardo' (Figure 6's states
// (a)-(c)).
func TestFigure6WalkThrough(t *testing.T) {
	const (
		rTitle  = 0.004 // ElemRank of 5.0.3.0.0
		rAuthor = 0.003 // ElemRank of 5.0.3.0.1
		rOther  = 0.009 // ElemRank of 6.0.3.8.3
	)
	xql := []index.Posting{
		{ID: dewey.ID{5, 0, 3, 0, 0}, Rank: rTitle, Positions: []uint32{10}},
		{ID: dewey.ID{6, 0, 3, 8, 3}, Rank: rOther, Positions: []uint32{99}},
	}
	ricardo := []index.Posting{
		{ID: dewey.ID{5, 0, 3, 0, 1}, Rank: rAuthor, Positions: []uint32{14}},
	}
	opts := DefaultOptions()
	opts.TopM = 10
	if err := opts.fill(); err != nil {
		t.Fatal(err)
	}
	m := newMerger([]postingStream{
		&sliceStream{posts: xql},
		&sliceStream{posts: ricardo},
	}, opts)
	var got []Result
	if err := m.run(func(id dewey.ID, score float64) {
		got = append(got, Result{ID: id.Clone(), Score: score})
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("results = %v, want exactly the paper element 5.0.3.0", got)
	}
	if !dewey.Equal(got[0].ID, dewey.ID{5, 0, 3, 0}) {
		t.Fatalf("result = %v, want 5.0.3.0", got[0].ID)
	}
	// Both occurrences are one containment level below the result, so each
	// keyword rank is scaled by decay once (Section 2.3.2.1), and the
	// proximity window spans positions 10..14 (Section 2.3.2.2). Entry
	// ranks are stored as float32, so the expectation converts through
	// float32 like the index does.
	wantScore := (float64(float32(rTitle))*opts.Decay + float64(float32(rAuthor))*opts.Decay) * (2.0 / 5.0)
	if math.Abs(got[0].Score-wantScore) > 1e-12 {
		t.Errorf("score = %g, want %g", got[0].Score, wantScore)
	}
}

// TestFigure6NoSpuriousAncestors extends the walk-through: entries whose
// deepest common ancestor is a result must not leak their ranks to
// higher ancestors — 5.0.3 (the <proceedings>) gets the ContainsAll flag
// but no posLists, so it is not emitted (Figure 5 lines 19-24).
func TestFigure6NoSpuriousAncestors(t *testing.T) {
	xql := []index.Posting{
		{ID: dewey.ID{5, 0, 3, 0, 0}, Rank: 0.004, Positions: []uint32{10}},
		{ID: dewey.ID{5, 0, 3, 1, 0}, Rank: 0.002, Positions: []uint32{50}},
	}
	ricardo := []index.Posting{
		{ID: dewey.ID{5, 0, 3, 0, 1}, Rank: 0.003, Positions: []uint32{14}},
		{ID: dewey.ID{5, 0, 3, 1, 1}, Rank: 0.001, Positions: []uint32{55}},
	}
	opts := DefaultOptions()
	if err := opts.fill(); err != nil {
		t.Fatal(err)
	}
	m := newMerger([]postingStream{
		&sliceStream{posts: xql},
		&sliceStream{posts: ricardo},
	}, opts)
	var ids []string
	if err := m.run(func(id dewey.ID, _ float64) {
		ids = append(ids, id.String())
	}); err != nil {
		t.Fatal(err)
	}
	// Two sibling papers are results; their common ancestors are not.
	if len(ids) != 2 || ids[0] != "5.0.3.0" || ids[1] != "5.0.3.1" {
		t.Fatalf("results = %v, want [5.0.3.0 5.0.3.1]", ids)
	}
}
