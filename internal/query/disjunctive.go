package query

import (
	"xrank/internal/dewey"
	"xrank/internal/index"
)

// Disjunctive evaluates the query under disjunctive keyword semantics
// (Section 2.2: "elements that contain at least one of the query keywords
// are returned"), combined with XRANK's most-specific-result principle:
// the returned elements are the ones *directly* containing a keyword —
// their ancestors contain the keywords only through them and are
// suppressed exactly as in the conjunctive case.
//
// The score is the weighted sum of the per-keyword ranks of the keywords
// present, times the proximity over those keywords. A single sequential
// merge of the Dewey-ordered lists suffices: entries for the same element
// are adjacent across lists.
func Disjunctive(ix *index.Index, keywords []string, opts Options) ([]Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	keywords, err := normalizeKeywords(keywords)
	if err != nil {
		return nil, err
	}
	if err := opts.checkWeights(len(keywords)); err != nil {
		return nil, err
	}
	n := len(keywords)
	streams := make([]*cursorStream, 0, n)
	// A cancellation, budget, or I/O error can abandon streams mid-list
	// with pages pinned; close is idempotent, so the drained ones are fine.
	defer func() {
		for _, s := range streams {
			s.close()
		}
	}()
	weights := make([]float64, 0, n)
	dfs := make([]int, 0, n)
	endOpen := opts.Exec.StartSpan("disj.open")
	for i, kw := range keywords {
		cur, ok := ix.DILCursorExec(opts.Exec, kw)
		if !ok {
			continue // absent keywords simply contribute nothing
		}
		if opts.DFs != nil {
			dfs = append(dfs, opts.DFs[i])
		} else {
			dfs = append(dfs, cur.Count())
		}
		cs := &cursorStream{cur: cur}
		streams = append(streams, cs)
		weights = append(weights, opts.weight(i))
		if err := cs.advance(); err != nil {
			return nil, err
		}
	}
	endOpen()
	if len(streams) == 0 {
		return nil, nil
	}
	base := func(_ int, p *index.Posting) float64 { return float64(p.Rank) }
	if opts.Rank != nil {
		rank := opts.Rank
		base = func(_ int, p *index.Posting) float64 { return rank(p) }
	}
	if opts.Scoring == ScoreTFIDF {
		base = tfidfBase(opts.numElements(ix.Meta.NumElements), dfs)
	}

	h := newResultHeap(opts.TopM)
	prox := make([][]uint32, 0, len(streams))
	// The merge runs until the function returns, so a deferred end covers it.
	defer opts.Exec.StartSpan("disj.merge")()
	for iter := 0; ; iter++ {
		if iter%cancelCheckInterval == 0 {
			if err := opts.Exec.Err(); err != nil {
				return nil, err
			}
		}
		// Smallest head ID across the still-live streams.
		var minID dewey.ID
		for _, s := range streams {
			p, ok := s.head()
			if !ok {
				continue
			}
			if minID == nil || dewey.Compare(p.ID, minID) < 0 {
				minID = p.ID
			}
		}
		if minID == nil {
			break
		}
		minID = minID.Clone() // heads are invalidated by advance below
		score := 0.0
		prox = prox[:0]
		for si, s := range streams {
			p, ok := s.head()
			if !ok || !dewey.Equal(p.ID, minID) {
				continue
			}
			score += weights[si] * base(si, p)
			prox = append(prox, append([]uint32(nil), p.Positions...))
			if err := s.advance(); err != nil {
				return nil, err
			}
		}
		if opts.UseProximity && len(prox) > 1 {
			score *= Proximity(prox)
		}
		h.offer(Result{ID: minID, Score: score})
	}
	return h.sorted(), nil
}
