package query

import (
	"fmt"
	"math"
	"time"

	"xrank/internal/index"
	"xrank/internal/storage"
)

// HDILTrace reports what the adaptive strategy did, for experiments and
// debugging.
type HDILTrace struct {
	// SwitchedToDIL is true when the estimator (or rank-prefix exhaustion)
	// abandoned the ranked strategy.
	SwitchedToDIL bool
	// SwitchReason explains the switch ("estimate", "prefix-exhausted"),
	// empty if no switch happened.
	SwitchReason string
	// RankedEntriesRead counts entries consumed before stopping/switching.
	RankedEntriesRead int
}

// estimateCheckInterval is how many consumed entries pass between
// re-estimations of RDIL's remaining time (Section 4.4.2 "periodically
// monitor its performance").
const estimateCheckInterval = 8

// HDIL evaluates the query with the hybrid strategy of Section 4.4: start
// with the RDIL algorithm over the short rank-ordered prefix lists, and
// periodically compare the estimated remaining time (m-r)*t/r against the
// a-priori DIL estimate; switch to DIL when RDIL looks slower (or when a
// rank prefix runs out). Cost is measured with the simulated disk model
// over the index's I/O statistics, matching the paper's cold-cache
// setting.
func HDIL(ix *index.Index, keywords []string, opts Options, cm storage.CostModel) ([]Result, *HDILTrace, error) {
	trace := &HDILTrace{}
	if err := opts.fill(); err != nil {
		return nil, trace, err
	}
	if opts.Agg != AggMax {
		return nil, trace, fmt.Errorf("query: HDIL requires AggMax for a sound stopping threshold")
	}
	if opts.Scoring == ScoreTFIDF {
		return nil, trace, fmt.Errorf("query: HDIL's ranked lists are ElemRank-ordered; tf-idf scoring needs DIL or Naive-ID")
	}
	if opts.Rank != nil {
		return nil, trace, fmt.Errorf("query: HDIL's ranked lists are ordered by their stored ranks; a rank override needs DIL")
	}
	keywords, err := normalizeKeywords(keywords)
	if err != nil {
		return nil, trace, err
	}
	if err := opts.checkWeights(len(keywords)); err != nil {
		return nil, trace, err
	}
	if len(keywords) == 1 {
		cur, ok := ix.HDILRankCursorExec(opts.Exec, keywords[0])
		if !ok {
			return nil, trace, nil
		}
		if cur.Count() >= opts.TopM {
			res, err := singleKeywordTopM(cur, opts)
			return res, trace, err
		}
		// Rank prefix shorter than m: fall back to the full list via DIL.
		cur.Close()
		trace.SwitchedToDIL = true
		trace.SwitchReason = "prefix-exhausted"
		opts.Exec.StartSpan("hdil.switch")() // zero-length marker
		res, err := DIL(ix, keywords, opts)
		return res, trace, err
	}

	sources := make([]*rankedSource, 0, len(keywords))
	// Early termination — and any cancellation, budget, or I/O error,
	// including during this init loop — leaves cursors mid-list with
	// pages pinned.
	defer func() {
		for _, s := range sources {
			s.stream.close()
		}
	}()
	endOpen := opts.Exec.StartSpan("hdil.open")
	dilPages := int64(0)
	for _, kw := range keywords {
		cur, okc := ix.HDILRankCursorExec(opts.Exec, kw)
		if !okc {
			endOpen()
			return nil, trace, nil
		}
		prober, okp := ix.HDILProberExec(opts.Exec, kw)
		if !okp {
			cur.Close()
			endOpen()
			return nil, trace, nil
		}
		cs := &cursorStream{cur: cur}
		sources = append(sources, &rankedSource{stream: cs, prober: prober, lastRank: math.Inf(1)})
		if err := cs.advance(); err != nil {
			return nil, trace, err
		}
		dilPages += ix.DILListBytes(kw)/storage.PageSize + 1
	}
	endOpen()
	// A-priori DIL cost: a sequential scan of every keyword's full list
	// (Section 4.4.2: "the expected time for DIL is relatively easy to
	// compute a priori ... it mainly depends on ... the size of each query
	// keyword inverted list").
	dilEstimate := time.Duration(dilPages) * cm.SeqRead

	// The adaptive estimator monitors this query's own I/O. With an
	// execution context that is its private accumulator — under
	// concurrency the engine-global counters mix every query's traffic
	// and would make the switch decision depend on unrelated load.
	ioStats := func() storage.Stats {
		if opts.Exec != nil {
			return opts.Exec.Stats()
		}
		return ix.IOStats()
	}
	startStats := ioStats()
	ta := newTAState(opts, sources)
	endRounds := opts.Exec.StartSpan("hdil.rounds")
	switchToDIL := func(reason string) ([]Result, *HDILTrace, error) {
		endRounds()
		opts.Exec.StartSpan("hdil.switch")() // zero-length marker
		trace.SwitchedToDIL = true
		trace.SwitchReason = reason
		trace.RankedEntriesRead = ta.entriesRead
		res, err := DIL(ix, keywords, opts)
		return res, trace, err
	}

	for !ta.done() {
		for i := range sources {
			ok, err := ta.step(i)
			if err != nil {
				return nil, trace, err
			}
			if !ok {
				// The rank-ordered prefix ran out before the threshold was
				// met; the full ranked list does not exist in HDIL, so DIL
				// must finish the query.
				return switchToDIL("prefix-exhausted")
			}
			if ta.done() {
				break
			}
		}
		if ta.done() {
			break
		}
		if ta.entriesRead%estimateCheckInterval == 0 && ta.entriesRead > 0 {
			t := cm.SimulatedTime(ioStats().Sub(startStats))
			r := ta.resultsAboveThreshold()
			var estRemaining time.Duration
			if r == 0 {
				estRemaining = math.MaxInt64 // no progress signal yet
			} else {
				estRemaining = t * time.Duration(opts.TopM-r) / time.Duration(r)
			}
			if estRemaining > dilEstimate && ta.entriesRead >= 2*estimateCheckInterval {
				return switchToDIL("estimate")
			}
		}
	}
	// Threshold stop (the loop's only other exits switch to DIL): the
	// unread rank-prefix tails are provably irrelevant to the top-m.
	ta.finish()
	endRounds()
	trace.RankedEntriesRead = ta.entriesRead
	return ta.heap.sorted(), trace, nil
}
