package query

import (
	"fmt"
	"math"
	"strconv"

	"xrank/internal/index"
)

// NaiveID evaluates the query against the naive element-granularity
// inverted lists ordered by element ID (Section 4.1 / 5.1, "Naive-ID"): a
// plain n-way equality merge join. Because naive lists replicate every
// ancestor, the result set contains every element that contains* all
// keywords — including the spurious ancestors the Dewey algorithms
// suppress — and ranking ignores result specificity (no decay).
func NaiveID(ix *index.Index, keywords []string, opts Options) ([]Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if !ix.Meta.HasNaive {
		return nil, fmt.Errorf("query: index was built without the naive baselines (SkipNaive)")
	}
	keywords, err := normalizeKeywords(keywords)
	if err != nil {
		return nil, err
	}
	if err := opts.checkWeights(len(keywords)); err != nil {
		return nil, err
	}
	n := len(keywords)
	curs := make([]*index.ListCursor, n)
	heads := make([]*index.Posting, n)
	dfs := make([]int, n)
	endOpen := opts.Exec.StartSpan("naiveid.open")
	for i, kw := range keywords {
		cur, ok := ix.NaiveIDCursorExec(opts.Exec, kw)
		if !ok {
			for j := 0; j < i; j++ {
				curs[j].Close()
			}
			endOpen()
			return nil, nil
		}
		curs[i] = cur
		defer cur.Close()
		dfs[i] = cur.Count()
		p, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			endOpen()
			return nil, nil
		}
		heads[i] = p
	}
	endOpen()
	base := func(_ int, p *index.Posting) float64 { return float64(p.Rank) }
	if opts.Rank != nil {
		rank := opts.Rank
		base = func(_ int, p *index.Posting) float64 { return rank(p) }
	}
	if opts.Scoring == ScoreTFIDF {
		base = tfidfBase(opts.numElements(ix.Meta.NumElements), opts.dfsOr(dfs))
	}
	h := newResultHeap(opts.TopM)
	prox := make([][]uint32, n)
	// The merge runs until the function returns, so a deferred end covers it.
	defer opts.Exec.StartSpan("naiveid.merge")()
	for iter := 0; ; iter++ {
		if iter%cancelCheckInterval == 0 {
			if err := opts.Exec.Err(); err != nil {
				return nil, err
			}
		}
		// Find the largest head; advance all lists to it (equality merge).
		maxElem := heads[0].Elem
		for i := 1; i < n; i++ {
			if heads[i].Elem > maxElem {
				maxElem = heads[i].Elem
			}
		}
		allEqual := true
		for i := 0; i < n; i++ {
			for heads[i].Elem < maxElem {
				p, ok, err := curs[i].Next()
				if err != nil {
					return nil, err
				}
				if !ok {
					return h.sorted(), nil
				}
				heads[i] = p
			}
			if heads[i].Elem != maxElem {
				allEqual = false
			}
		}
		if !allEqual {
			continue
		}
		// Match: every list holds an entry for maxElem.
		score := 0.0
		for i := 0; i < n; i++ {
			score += opts.weight(i) * base(i, heads[i])
			prox[i] = heads[i].Positions
		}
		if opts.UseProximity && n > 1 {
			score *= Proximity(prox)
		}
		h.offer(Result{ID: elemResultID(maxElem), Score: score})
		// Advance all lists past the match.
		for i := 0; i < n; i++ {
			p, ok, err := curs[i].Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return h.sorted(), nil
			}
			heads[i] = p
		}
	}
}

// elemResultID encodes a naive result (a global element index) as a
// single-component pseudo Dewey ID so both families share the Result
// type; callers translate it back with ElemFromResultID.
func elemResultID(elem int32) []uint32 { return []uint32{uint32(elem)} }

// ElemFromResultID recovers the global element index from a naive result.
func ElemFromResultID(r Result) (int32, error) {
	if len(r.ID) != 1 {
		return 0, fmt.Errorf("query: result %v is not a naive element result", r.ID)
	}
	return int32(r.ID[0]), nil
}

// NaiveRank evaluates the query against the rank-ordered naive lists with
// the Threshold Algorithm, using each keyword's hash index for the random
// equality lookups (Section 5.1, "Naive-Rank"). Requires AggMax.
func NaiveRank(ix *index.Index, keywords []string, opts Options) ([]Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if !ix.Meta.HasNaive {
		return nil, fmt.Errorf("query: index was built without the naive baselines (SkipNaive)")
	}
	if opts.Agg != AggMax {
		return nil, fmt.Errorf("query: NaiveRank requires AggMax for a sound stopping threshold")
	}
	if opts.Scoring == ScoreTFIDF {
		return nil, fmt.Errorf("query: Naive-Rank lists are ElemRank-ordered; tf-idf scoring needs DIL or Naive-ID")
	}
	if opts.Rank != nil {
		return nil, fmt.Errorf("query: Naive-Rank lists are ordered by their stored ranks; a rank override needs Naive-ID")
	}
	keywords, err := normalizeKeywords(keywords)
	if err != nil {
		return nil, err
	}
	if err := opts.checkWeights(len(keywords)); err != nil {
		return nil, err
	}
	n := len(keywords)
	curs := make([]*index.ListCursor, n)
	endOpen := opts.Exec.StartSpan("naiverank.open")
	for i, kw := range keywords {
		cur, ok := ix.NaiveRankCursorExec(opts.Exec, kw)
		if !ok {
			for j := 0; j < i; j++ {
				curs[j].Close()
			}
			endOpen()
			return nil, nil
		}
		curs[i] = cur
		defer cur.Close()
	}
	endOpen()
	if n == 1 {
		out := make([]Result, 0, opts.TopM)
		for len(out) < opts.TopM {
			p, ok, err := curs[0].Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			out = append(out, Result{ID: elemResultID(p.Elem), Score: opts.weight(0) * float64(p.Rank)})
		}
		SortResults(out)
		return out, nil
	}

	h := newResultHeap(opts.TopM)
	seen := make(map[int32]bool)
	lastRank := make([]float64, n)
	for i := range lastRank {
		lastRank[i] = math.Inf(1)
	}
	prox := make([][]uint32, n)
	lookup := make([]index.Posting, n)
	threshold := func() float64 {
		t := 0.0
		for i, r := range lastRank {
			t += opts.weight(i) * r
		}
		return t
	}
	// The TA rounds run until the function returns, so a deferred end
	// covers them.
	defer opts.Exec.StartSpan("naiverank.rounds")()
	for {
		if err := opts.Exec.Err(); err != nil {
			return nil, err
		}
		progressed := false
		for i := 0; i < n; i++ {
			p, ok, err := curs[i].Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				// One list fully consumed: standard TA terminates (every
				// remaining candidate was already seen via this list).
				return h.sorted(), nil
			}
			progressed = true
			lastRank[i] = float64(p.Rank)
			if seen[p.Elem] {
				continue
			}
			seen[p.Elem] = true
			score := opts.weight(i) * float64(p.Rank)
			prox[i] = p.Positions
			found := true
			for j := 0; j < n && found; j++ {
				if j == i {
					continue
				}
				ok, err := ix.NaiveLookupExec(opts.Exec, keywords[j], p.Elem, &lookup[j])
				if err != nil {
					return nil, err
				}
				if !ok {
					found = false
					break
				}
				score += opts.weight(j) * float64(lookup[j].Rank)
				prox[j] = lookup[j].Positions
			}
			if found {
				if opts.UseProximity {
					score *= Proximity(prox)
				}
				h.offer(Result{ID: elemResultID(p.Elem), Score: score})
			}
			if k := h.kthScore(); k >= 0 && k >= threshold() {
				return h.sorted(), nil
			}
		}
		if !progressed {
			return h.sorted(), nil
		}
	}
}

// NaiveResultString renders a naive result for diagnostics.
func NaiveResultString(r Result) string {
	return "elem#" + strconv.FormatInt(int64(r.ID[0]), 10)
}
