package query

import (
	"fmt"
	"math"

	"xrank/internal/dewey"
	"xrank/internal/index"
)

// normalizeKeywords deduplicates the query keywords (conjunctive
// semantics make duplicates redundant) while preserving order.
func normalizeKeywords(keywords []string) ([]string, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("query: empty keyword list")
	}
	seen := make(map[string]bool, len(keywords))
	out := keywords[:0:0]
	for _, k := range keywords {
		if k == "" {
			return nil, fmt.Errorf("query: empty keyword")
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out, nil
}

// NormalizeKeywords exposes the canonical keyword normalization —
// deduplication preserving first appearance — so callers aligning
// per-keyword data (e.g. an engine summing global document frequencies
// across index segments for Options.DFs) index it exactly as the query
// processors do.
func NormalizeKeywords(keywords []string) ([]string, error) {
	return normalizeKeywords(keywords)
}

// tfidfBase builds the per-occurrence rank function for ScoreTFIDF: a
// sublinear term-frequency weight times the keyword's inverse element
// frequency. df is the per-keyword list length (elements directly
// containing the keyword); n is the collection element count.
func tfidfBase(n int, dfs []int) func(stream int, p *index.Posting) float64 {
	idf := make([]float64, len(dfs))
	for i, df := range dfs {
		if df > 0 {
			idf[i] = math.Log(1 + float64(n)/float64(df))
		}
	}
	return func(stream int, p *index.Posting) float64 {
		return (1 + math.Log(1+float64(len(p.Positions)))) * idf[stream]
	}
}

// DIL evaluates the query with the Dewey Inverted List algorithm
// (Figure 5): a single sequential pass over every keyword's Dewey-ordered
// inverted list, merging on the Dewey stack. It returns the top-m results.
func DIL(ix *index.Index, keywords []string, opts Options) ([]Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	keywords, err := normalizeKeywords(keywords)
	if err != nil {
		return nil, err
	}
	if err := opts.checkWeights(len(keywords)); err != nil {
		return nil, err
	}
	streams := make([]postingStream, len(keywords))
	curs := make([]*cursorStream, 0, len(keywords))
	// Any exit — absent keyword, cancellation, budget exhaustion, I/O
	// error — must unpin whatever pages the opened cursors still hold.
	defer func() {
		for _, cs := range curs {
			cs.close()
		}
	}()
	// Spans: open (cursor setup + first advance per list) and merge (the
	// Dewey-stack loop). An error abandons the in-flight span unrecorded;
	// the engine's error counters carry that signal instead.
	endOpen := opts.Exec.StartSpan("dil.open")
	dfs := make([]int, len(keywords))
	for i, kw := range keywords {
		cur, ok := ix.DILCursorExec(opts.Exec, kw)
		if !ok {
			// A keyword absent from the corpus empties the conjunction.
			endOpen()
			return nil, nil
		}
		dfs[i] = cur.Count()
		cs := &cursorStream{cur: cur}
		curs = append(curs, cs)
		streams[i] = cs
		if err := cs.advance(); err != nil {
			return nil, err
		}
	}
	endOpen()
	h := newResultHeap(opts.TopM)
	m := newMerger(streams, opts)
	if opts.Scoring == ScoreTFIDF {
		m.base = tfidfBase(opts.numElements(ix.Meta.NumElements), opts.dfsOr(dfs))
	}
	endMerge := opts.Exec.StartSpan("dil.merge")
	if err := m.run(func(id dewey.ID, score float64) {
		h.offer(Result{ID: id, Score: score})
	}); err != nil {
		return nil, err
	}
	endMerge()
	return h.sorted(), nil
}
