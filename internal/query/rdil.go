package query

import (
	"fmt"
	"math"

	"xrank/internal/dewey"
	"xrank/internal/index"
)

// rankedSource abstracts "a rank-ordered entry stream plus a Dewey-ordered
// probe structure" for one keyword — RDIL's per-term B+-tree'd list, or
// HDIL's rank prefix over the shared Dewey file. The threshold loop below
// is written against this so RDIL and HDIL share it.
type rankedSource struct {
	stream *cursorStream
	prober index.DeweyProber
	// lastRank is the rank of the most recently consumed entry; +Inf until
	// the first entry is read, so the threshold cannot trigger early.
	lastRank float64
}

// taState runs the threshold-algorithm loop of Figure 7 over n ranked
// sources.
type taState struct {
	opts    Options
	sources []*rankedSource
	heap    *resultHeap
	seen    map[string]bool
	// aboveThreshold counts results currently at or above the threshold —
	// the r of the HDIL estimator (Section 4.4.2).
	entriesRead int
	exhausted   bool // some source ran out of ranked entries
}

func newTAState(opts Options, sources []*rankedSource) *taState {
	return &taState{
		opts:    opts,
		sources: sources,
		heap:    newResultHeap(opts.TopM),
		seen:    make(map[string]bool),
	}
}

// threshold is the weighted sum of the last ElemRanks consumed per list
// (Figure 7 line 27). Decay and proximity are at most 1, so this
// overestimates any undiscovered result's score.
func (ta *taState) threshold() float64 {
	t := 0.0
	for i, s := range ta.sources {
		t += ta.opts.weight(i) * s.lastRank
	}
	return t
}

// done reports whether the top-m is guaranteed complete (line 28).
func (ta *taState) done() bool {
	k := ta.heap.kthScore()
	return k >= 0 && k >= ta.threshold()
}

// BlockSkipInfo describes one ranked list being abandoned after the
// threshold-algorithm stopping rule fired, for DebugBlockSkip.
type BlockSkipInfo struct {
	// Source is the list's index within the query's keyword sources.
	Source int
	// Cursor is the list's cursor, still positioned where the stop
	// occurred: RemainingBlockRefs reports the blocks about to be
	// skipped, and DecodeBlockMaxRank can audit any of them.
	Cursor *index.ListCursor
	// LastRank is the rank of the last entry consumed from this list;
	// every unread entry (hence every skipped block's true maximum) is
	// bounded by it, because the list is rank-descending.
	LastRank float64
	// Threshold is the weighted sum of all sources' LastRanks — the upper
	// bound on any undiscovered result's score.
	Threshold float64
	// KthScore is the current m-th best score; Threshold <= KthScore is
	// what justified the stop.
	KthScore float64
}

// DebugBlockSkip, when non-nil, is called once per ranked source at every
// threshold-algorithm stop, before the source's remaining blocks are
// skipped. Tests install it to prove pruning soundness: no skipped block
// can contain an entry that would change the top-m. Nil in production.
var DebugBlockSkip func(info BlockSkipInfo)

// finish records the pruning outcome of a threshold-algorithm stop: every
// block still unread in the ranked lists is provably unable to change the
// top-m, so the lists are dropped wholesale — block-format cursors count
// the unread blocks as skipped without decoding them. Call only when
// done() is true.
func (ta *taState) finish() {
	for i, src := range ta.sources {
		if DebugBlockSkip != nil && !src.stream.done {
			DebugBlockSkip(BlockSkipInfo{
				Source:    i,
				Cursor:    src.stream.cur,
				LastRank:  src.lastRank,
				Threshold: ta.threshold(),
				KthScore:  ta.heap.kthScore(),
			})
		}
		src.stream.terminate()
	}
}

// resultsAboveThreshold counts held results scoring at or above the
// current threshold (the r of the HDIL time estimator).
func (ta *taState) resultsAboveThreshold() int {
	t := ta.threshold()
	n := 0
	for _, r := range ta.heap.items {
		if r.Score >= t {
			n++
		}
	}
	return n
}

// step consumes one entry from source i and evaluates its deepest common
// ancestor across all keywords (Figure 7 lines 10-25). It returns false
// when that source is exhausted.
func (ta *taState) step(i int) (bool, error) {
	// One threshold-loop boundary per step: probes and scans below also
	// check per page, but a step served entirely from cache must still
	// notice cancellation.
	if err := ta.opts.Exec.Err(); err != nil {
		return false, err
	}
	src := ta.sources[i]
	p, ok := src.stream.head()
	if !ok {
		ta.exhausted = true
		return false, nil
	}
	src.lastRank = float64(p.Rank)
	ta.entriesRead++
	// If this entry's own element was already evaluated as a deepest
	// common ancestor, probing is redundant: the lcp derived from an ID
	// that is itself a known lcp is that ID (all lists have entries under
	// it, and no prefix of it is longer). On correlated keywords this
	// skips the probes for every list after the first.
	ownKey := string(dewey.Encode(p.ID))
	if ta.seen[ownKey] {
		return true, src.stream.advance()
	}
	// Find the longest prefix of p.ID containing all query keywords
	// (lines 11-16).
	lcp := p.ID.Clone()
	for j := range ta.sources {
		if j == i {
			continue
		}
		n, err := ta.sources[j].prober.ProbeLCP(lcp)
		if err != nil {
			return false, err
		}
		lcp = lcp[:n]
		if len(lcp) == 0 {
			break
		}
	}
	if err := src.stream.advance(); err != nil {
		return false, err
	}
	if len(lcp) == 0 {
		return true, nil
	}
	key := string(dewey.Encode(lcp))
	if ta.seen[key] {
		return true, nil
	}
	ta.seen[key] = true
	score, isResult, err := ta.evaluate(lcp)
	if err != nil {
		return false, err
	}
	if isResult {
		ta.heap.offer(Result{ID: lcp, Score: score})
	}
	return true, nil
}

// evaluate collects the postings below lcp from every keyword's Dewey
// structure and determines whether lcp itself is a result — excluding
// sub-elements that already contain all keywords (Figure 7 lines 17-24) —
// and its overall rank. This reuses the Dewey-stack merge: run it over the
// in-memory posting sets under lcp and keep the emission whose ID is lcp.
func (ta *taState) evaluate(lcp dewey.ID) (float64, bool, error) {
	streams := make([]postingStream, len(ta.sources))
	for j, src := range ta.sources {
		var posts []index.Posting
		if err := src.prober.ScanPrefix(lcp, func(p *index.Posting) error {
			posts = append(posts, index.Posting{
				ID:        p.ID.Clone(),
				Rank:      p.Rank,
				Positions: append([]uint32(nil), p.Positions...),
			})
			return nil
		}); err != nil {
			return 0, false, err
		}
		if len(posts) == 0 {
			// Probes guaranteed entries under lcp for every list; an empty
			// scan means lcp was only the *probe* lcp for another list.
			return 0, false, nil
		}
		streams[j] = &sliceStream{posts: posts}
	}
	var score float64
	found := false
	m := newMerger(streams, ta.opts)
	err := m.run(func(id dewey.ID, s float64) {
		if dewey.Equal(id, lcp) {
			score, found = s, true
		}
	})
	return score, found, err
}

// singleKeywordTopM implements the n=1 special case: the first m entries
// of the rank-ordered list are exactly the top-m results (Section 4.3).
func singleKeywordTopM(cur *index.ListCursor, opts Options) ([]Result, error) {
	defer cur.Close()
	w := opts.weight(0)
	out := make([]Result, 0, opts.TopM)
	lastRank := math.Inf(1)
	for len(out) < opts.TopM {
		p, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		lastRank = float64(p.Rank)
		out = append(out, Result{ID: p.ID.Clone(), Score: w * float64(p.Rank)})
	}
	if len(out) == opts.TopM {
		// The list is rank-descending, so everything past the cutoff is
		// provably outside the top-m; block-format cursors count the
		// unread blocks as skipped without decoding them.
		if DebugBlockSkip != nil {
			DebugBlockSkip(BlockSkipInfo{
				Cursor:    cur,
				LastRank:  lastRank,
				Threshold: w * lastRank,
				KthScore:  out[len(out)-1].Score,
			})
		}
		cur.SkipRemainingBlocks()
	}
	SortResults(out)
	return out, nil
}

// RDIL evaluates the query with the Ranked Dewey Inverted List algorithm
// (Figure 7): rank-ordered lists consumed round-robin, B+-tree probes to
// find deepest common ancestors, and the threshold-algorithm stopping
// rule. Requires AggMax (the threshold bound does not hold for AggSum).
func RDIL(ix *index.Index, keywords []string, opts Options) ([]Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if opts.Agg != AggMax {
		return nil, fmt.Errorf("query: RDIL requires AggMax for a sound stopping threshold")
	}
	if opts.Scoring == ScoreTFIDF {
		return nil, fmt.Errorf("query: RDIL lists are ElemRank-ordered; tf-idf scoring needs DIL or Naive-ID")
	}
	if opts.Rank != nil {
		return nil, fmt.Errorf("query: RDIL lists are ordered by their stored ranks; a rank override needs DIL")
	}
	keywords, err := normalizeKeywords(keywords)
	if err != nil {
		return nil, err
	}
	if err := opts.checkWeights(len(keywords)); err != nil {
		return nil, err
	}
	if len(keywords) == 1 {
		cur, ok := ix.RDILRankCursorExec(opts.Exec, keywords[0])
		if !ok {
			return nil, nil
		}
		return singleKeywordTopM(cur, opts)
	}
	sources := make([]*rankedSource, 0, len(keywords))
	// Early termination — and any cancellation, budget, or I/O error,
	// including during this init loop — leaves cursors mid-list with
	// pages pinned.
	defer func() {
		for _, s := range sources {
			s.stream.close()
		}
	}()
	endOpen := opts.Exec.StartSpan("rdil.open")
	for _, kw := range keywords {
		cur, okc := ix.RDILRankCursorExec(opts.Exec, kw)
		if !okc {
			endOpen()
			return nil, nil
		}
		prober, okp := ix.RDILProberExec(opts.Exec, kw)
		if !okp {
			cur.Close()
			endOpen()
			return nil, nil
		}
		cs := &cursorStream{cur: cur}
		sources = append(sources, &rankedSource{stream: cs, prober: prober, lastRank: math.Inf(1)})
		if err := cs.advance(); err != nil {
			return nil, err
		}
	}
	endOpen()
	ta := newTAState(opts, sources)
	endRounds := opts.Exec.StartSpan("rdil.rounds")
	for !ta.exhausted && !ta.done() {
		for i := range sources {
			ok, err := ta.step(i)
			if err != nil {
				return nil, err
			}
			if !ok || ta.done() {
				break
			}
		}
	}
	if ta.done() {
		// Threshold stop: the unread tails (whole blocks, in the block
		// format) are provably irrelevant to the top-m.
		ta.finish()
	}
	endRounds()
	return ta.heap.sorted(), nil
}
