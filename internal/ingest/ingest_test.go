package ingest

import (
	"encoding/xml"
	"errors"
	"io"
	"os"
	"reflect"
	"strings"
	"testing"

	"xrank/internal/storage"
)

func unmarshalXML(s string, v interface{}) error { return xml.Unmarshal([]byte(s), v) }

// readAll drains a parser, recording each document and the offset
// checkpointed after it.
func readAll(t *testing.T, p *Parser) (docs []Abstract, offsets []int64) {
	t.Helper()
	for {
		a, err := p.Next()
		if err == io.EOF {
			return docs, offsets
		}
		if err != nil {
			t.Fatalf("Next after %d docs: %v", len(docs), err)
		}
		docs = append(docs, *a)
		offsets = append(offsets, p.InputOffset())
	}
}

func TestParseFixture(t *testing.T) {
	f, err := os.Open("testdata/abstracts.xml")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	docs, _ := readAll(t, NewParser(f))
	if len(docs) != 40 {
		t.Fatalf("parsed %d docs, want 40", len(docs))
	}
	first := docs[0]
	if first.Title != "Anarchism" {
		t.Errorf("sitename prefix not stripped: %q", first.Title)
	}
	if !strings.Contains(first.URL, "wikipedia.org/wiki/Anarchism") {
		t.Errorf("url = %q", first.URL)
	}
	if !strings.Contains(first.Abstract, "political philosophy") {
		t.Errorf("abstract = %q", first.Abstract)
	}
	for _, d := range docs {
		// <links> subtrees are skipped, never folded into fields.
		if strings.Contains(d.Abstract, "See also") || strings.Contains(d.Abstract, "sublink") {
			t.Fatalf("links content leaked into abstract: %q", d.Abstract)
		}
	}
}

// TestResumeAtEveryOffset restarts the parse at the offset checkpointed
// after each document and demands the tail match the straight-through
// parse exactly — the property a crash-resumed ingest relies on.
func TestResumeAtEveryOffset(t *testing.T) {
	raw, err := os.ReadFile("testdata/abstracts.xml")
	if err != nil {
		t.Fatal(err)
	}
	docs, offsets := readAll(t, NewParser(strings.NewReader(string(raw))))
	for i, off := range offsets {
		p := ResumeParser(strings.NewReader(string(raw[off:])), off)
		tail, tailOffs := readAll(t, p)
		want, wantOffs := docs[i+1:], offsets[i+1:]
		if len(tail) != len(want) {
			t.Fatalf("resume after doc %d: %d docs, want %d", i, len(tail), len(want))
		}
		for j := range tail {
			if tail[j] != want[j] {
				t.Fatalf("resume after doc %d: doc %d diverged: %+v vs %+v", i, j, tail[j], want[j])
			}
			// Offsets keep reporting true stream positions across the resume.
			if tailOffs[j] != wantOffs[j] {
				t.Fatalf("resume after doc %d: offset %d diverged: %d vs %d", i, j, tailOffs[j], wantOffs[j])
			}
		}
	}
}

func TestParserBoundedFields(t *testing.T) {
	big := strings.Repeat("x", maxFieldBytes+4096)
	feed := "<feed><doc><title>t</title><abstract>" + big + "</abstract></doc></feed>"
	docs, _ := readAll(t, NewParser(strings.NewReader(feed)))
	if len(docs) != 1 {
		t.Fatalf("parsed %d docs", len(docs))
	}
	if len(docs[0].Abstract) != maxFieldBytes {
		t.Fatalf("oversized field kept %d bytes, cap is %d", len(docs[0].Abstract), maxFieldBytes)
	}
}

func TestParserTruncatedDump(t *testing.T) {
	for _, cut := range []string{
		"<feed><doc><title>t</title>",
		"<feed><doc><abstract>half",
	} {
		if _, err := NewParser(strings.NewReader(cut)).Next(); err == nil {
			t.Errorf("truncated dump %q parsed cleanly", cut)
		}
	}
}

func TestDocXML(t *testing.T) {
	a := Abstract{Title: "A & B", URL: "https://e/x?a=1&b=2", Abstract: "uses <tags> & \"quotes\""}
	x := string(a.DocXML())
	if strings.Contains(x, "&b=2\"") || strings.Contains(x, "<tags>") {
		t.Fatalf("unescaped markup in %q", x)
	}
	// The rendered document must round-trip through an XML parser.
	var back struct {
		Title string `xml:"title"`
		URL   string `xml:"url"`
		Text  string `xml:"text"`
	}
	if err := unmarshalXML(x, &back); err != nil {
		t.Fatalf("DocXML output unparseable: %v\n%s", err, x)
	}
	if back.Title != a.Title || back.URL != a.URL || back.Text != a.Abstract {
		t.Fatalf("round trip changed content: %+v", back)
	}
}

func TestDocName(t *testing.T) {
	if got := DocName(0); got != "wiki-00000000.xml" {
		t.Errorf("DocName(0) = %q", got)
	}
	if got := DocName(123456); got != "wiki-00123456.xml" {
		t.Errorf("DocName(123456) = %q", got)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	fs := storage.DefaultFS(nil)
	path := t.TempDir() + "/ingest.checkpoint"
	if cp, err := LoadCheckpoint(fs, path); err != nil || cp != nil {
		t.Fatalf("missing checkpoint: %v, %v (want nil, nil)", cp, err)
	}
	want := &Checkpoint{Source: "abstracts.xml", SourceSize: 14644, Docs: 21, Offset: 7337, Batches: 3}
	if err := SaveCheckpoint(fs, path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
	// A torn checkpoint is corruption, not a silent fresh start.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(fs, path); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("torn checkpoint: %v, want ErrCorrupt", err)
	}
}
