// Package ingest streams Wikipedia-abstract XML dumps into the engine.
//
// The dump format (enwiki-abstract*.xml) is a flat feed:
//
//	<feed>
//	  <doc>
//	    <title>Wikipedia: Anarchism</title>
//	    <url>https://en.wikipedia.org/wiki/Anarchism</url>
//	    <abstract>Anarchism is a political philosophy ...</abstract>
//	    <links>...</links>
//	  </doc>
//	  ...
//	</feed>
//
// Parser walks it with an encoding/xml token loop — one <doc> resident
// at a time, unknown elements skipped wholesale — so memory stays
// bounded no matter how large the dump is. After each document the
// parser exposes the byte offset just past its </doc>; a Checkpoint
// records that offset after every committed batch, and ResumeParser
// restarts a seekable stream there (a synthetic <feed> root keeps the
// decoder's view well-formed). Non-seekable streams (gzip) resume by
// re-reading and discarding the first Checkpoint.Docs documents.
package ingest

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"

	"xrank/internal/storage"
)

// maxFieldBytes caps one title/url/abstract field. Real abstracts are a
// few hundred bytes; the cap keeps a malformed dump from buffering
// without bound. Excess text is truncated, not an error.
const maxFieldBytes = 1 << 20

// Abstract is one document of the dump.
type Abstract struct {
	Title    string
	URL      string
	Abstract string
}

// DocXML renders the abstract as the XML document fed to the engine:
// a three-element tree, so title terms and body terms get distinct
// ElemRanks and the suggest dictionary sees real structure.
func (a *Abstract) DocXML() []byte {
	var b bytes.Buffer
	b.WriteString("<abstract>")
	writeElem(&b, "title", a.Title)
	writeElem(&b, "url", a.URL)
	writeElem(&b, "text", a.Abstract)
	b.WriteString("</abstract>")
	return b.Bytes()
}

func writeElem(b *bytes.Buffer, tag, text string) {
	fmt.Fprintf(b, "<%s>", tag)
	xml.EscapeText(b, []byte(text))
	fmt.Fprintf(b, "</%s>", tag)
}

// DocName returns the deterministic engine name of the i-th document of
// a dump (0-based): resuming a checkpointed ingest reproduces exactly
// the names a one-shot run would have used.
func DocName(i int64) string { return fmt.Sprintf("wiki-%08d.xml", i) }

// Parser streams one dump.
type Parser struct {
	d    *xml.Decoder
	base int64 // offset of the reader's first byte within the original stream
}

// NewParser reads a dump from its start.
func NewParser(r io.Reader) *Parser { return &Parser{d: xml.NewDecoder(r)} }

// resumeRoot is the synthetic root prepended when resuming mid-feed.
const resumeRoot = "<feed>"

// ResumeParser reads a dump whose reader is positioned at offset — a
// value InputOffset returned after a committed document. The synthetic
// <feed> root keeps the decoder's view well-formed; base arithmetic
// keeps InputOffset reporting true stream offsets.
func ResumeParser(r io.Reader, offset int64) *Parser {
	return &Parser{
		d:    xml.NewDecoder(io.MultiReader(strings.NewReader(resumeRoot), r)),
		base: offset - int64(len(resumeRoot)),
	}
}

// InputOffset returns the stream offset the decoder has consumed up to.
// Read after Next returns a document, it is just past that </doc> —
// the value to checkpoint and later hand to ResumeParser.
func (p *Parser) InputOffset() int64 { return p.base + p.d.InputOffset() }

// Next returns the next document, or io.EOF at the end of the feed.
func (p *Parser) Next() (*Abstract, error) {
	for {
		tok, err := p.d.Token()
		if err != nil {
			return nil, err // io.EOF at end of input
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch se.Name.Local {
		case "feed":
			// Descend into the root.
		case "doc":
			return p.parseDoc()
		default:
			if err := p.d.Skip(); err != nil {
				return nil, err
			}
		}
	}
}

// parseDoc consumes one <doc> subtree (the start tag already read).
func (p *Parser) parseDoc() (*Abstract, error) {
	var a Abstract
	for {
		tok, err := p.d.Token()
		if err != nil {
			if err == io.EOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "title":
				a.Title, err = p.text()
			case "url":
				a.URL, err = p.text()
			case "abstract":
				a.Abstract, err = p.text()
			default:
				err = p.d.Skip() // <links> etc: skipped, never buffered
			}
			if err != nil {
				return nil, err
			}
		case xml.EndElement:
			// Dump titles carry a "Wikipedia: " sitename prefix.
			a.Title = strings.TrimPrefix(a.Title, "Wikipedia: ")
			return &a, nil
		}
	}
}

// text collects the character data of the element whose start tag was
// just read, through its end tag, capped at maxFieldBytes.
func (p *Parser) text() (string, error) {
	var sb strings.Builder
	depth := 1
	for depth > 0 {
		tok, err := p.d.Token()
		if err != nil {
			if err == io.EOF {
				return "", io.ErrUnexpectedEOF
			}
			return "", err
		}
		switch t := tok.(type) {
		case xml.CharData:
			if n := maxFieldBytes - sb.Len(); n > 0 {
				if len(t) > n {
					t = t[:n]
				}
				sb.Write(t)
			}
		case xml.StartElement:
			depth++
		case xml.EndElement:
			depth--
		}
	}
	return strings.TrimSpace(sb.String()), nil
}

// Checkpoint records durable ingest progress: everything before it is
// committed in the target (an engine segment or an acknowledged HTTP
// upload), so a killed ingest restarts exactly after the last committed
// batch. Written through the checksummed-manifest protocol — a torn
// checkpoint is detected at load, not silently resumed from.
type Checkpoint struct {
	// Source is the dump the checkpoint belongs to (base name); a resume
	// against a different dump is refused.
	Source string `json:"source"`
	// SourceSize guards against the dump changing underneath a resume
	// (0 when the size is unknown, e.g. a pipe).
	SourceSize int64 `json:"source_size"`
	// Docs counts committed documents; the next document is DocName(Docs).
	Docs int64 `json:"docs"`
	// Offset is the stream offset just past the last committed </doc>
	// (uncompressed bytes; the ResumeParser target).
	Offset int64 `json:"offset"`
	// Batches counts committed batches.
	Batches int64 `json:"batches"`
}

// SaveCheckpoint durably writes cp.
func SaveCheckpoint(fs storage.FS, path string, cp *Checkpoint) error {
	return storage.WriteManifestAtomic(fs, path, cp)
}

// LoadCheckpoint reads a checkpoint; a missing file returns (nil, nil)
// — a fresh ingest — while a corrupt one is an error.
func LoadCheckpoint(fs storage.FS, path string) (*Checkpoint, error) {
	var cp Checkpoint
	if err := storage.ReadManifest(fs, path, &cp); err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return &cp, nil
}
