package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyDigest keeps a bounded ring of recent winning-attempt
// latencies and answers quantile queries over it. The coordinator
// derives its hedge delay from the p99 of this ring, so the hedge
// threshold tracks the cluster's actual tail instead of a guess.
type latencyDigest struct {
	mu   sync.Mutex
	ring []time.Duration
	next int
	full bool
}

// digestSize bounds the ring; 512 samples is enough for a stable p99
// while staying cheap to copy and sort on read.
const digestSize = 512

// digestMinSamples gates quantile answers: below it the tail estimate
// is noise and callers should use their fallback delay.
const digestMinSamples = 16

func newLatencyDigest() *latencyDigest {
	return &latencyDigest{ring: make([]time.Duration, digestSize)}
}

func (d *latencyDigest) observe(v time.Duration) {
	d.mu.Lock()
	d.ring[d.next] = v
	d.next++
	if d.next == len(d.ring) {
		d.next, d.full = 0, true
	}
	d.mu.Unlock()
}

// quantile returns the q-quantile of the recorded samples, or ok=false
// while fewer than digestMinSamples have been observed.
func (d *latencyDigest) quantile(q float64) (time.Duration, bool) {
	d.mu.Lock()
	n := d.next
	if d.full {
		n = len(d.ring)
	}
	if n < digestMinSamples {
		d.mu.Unlock()
		return 0, false
	}
	samples := append([]time.Duration(nil), d.ring[:n]...)
	d.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return samples[idx], true
}
