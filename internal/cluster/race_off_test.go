//go:build !race

package cluster

const raceEnabled = false
