package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"xrank/internal/cache"
	"xrank/internal/httpapi"
	"xrank/internal/loadgen"
)

// vocabShardDir builds an index over the loadgen synthetic vocabulary
// w0..w31, so every generated "wI wJ" query matches real postings.
func vocabShardDir(t *testing.T) string {
	t.Helper()
	docs := make(map[string]string)
	for d := 0; d < 12; d++ {
		var b strings.Builder
		b.WriteString("<doc><body>")
		for i := 0; i < 32; i++ {
			fmt.Fprintf(&b, "w%d ", (d*7+i)%32)
		}
		b.WriteString("</body></doc>")
		docs[fmt.Sprintf("doc-%02d.xml", d)] = b.String()
	}
	return buildShardDir(t, docs)
}

// TestClusterOverloadSLO is the issue's acceptance run: the open-loop
// load generator drives an overload arm at a coordinator while one of
// the two replicas is chaos-stalled the whole time. The arm must
// complete like a healthy single-node overload run — visible 429
// shedding, nonzero accepted traffic, and accepted-request p99 under
// the SLO — because the breaker routes around the stalled replica and
// hedged requests cover the window before it opens.
func TestClusterOverloadSLO(t *testing.T) {
	if raceEnabled {
		// The gate measures real replica-timeout dynamics: under the race
		// detector's slowdown even the healthy replica's instant 429s can
		// blow the attempt deadline, opening its breaker. The slo-smoke
		// CI job runs this test without -race.
		t.Skip("SLO timing gate is not meaningful under the race detector")
	}
	dir := vocabShardDir(t)

	// Replica A gets stalled; replica B carries the load behind a tight
	// admission gate so saturation sheds rather than queues unboundedly.
	repA := startReplica(t, map[int]string{0: dir}, httpapi.Options{
		Metrics: true, Admission: cache.NewAdmission(2, 4),
	})
	// No wait queue on B: over-capacity requests shed as instant 429s
	// (a breaker Success) instead of queueing until the coordinator's
	// attempt deadline, which would read as replica timeouts and open
	// B's breaker too — turning backpressure into a false outage.
	admB := cache.NewAdmission(1, -1)
	repB := startReplica(t, map[int]string{0: dir}, httpapi.Options{
		Metrics: true, Admission: admB,
	})
	// Every connection to A stalls past the replica timeout. The
	// timeout (250ms vs the 500ms stall) leaves generous headroom for
	// B's instant responses on a loaded CI machine — only the stalled
	// replica may trip the attempt deadline, or B's breaker opens too
	// and backpressure turns into a false outage — while still letting
	// a request's failover chain resolve inside the saturation window
	// below so A's breaker opens early in the arm.
	stall := proxied(t, repA)
	stall.SlowDelay = 500 * time.Millisecond
	stall.SetSchedule([]ChaosMode{ChaosSlow})

	// Saturation is forced, not raced-for (a CI runner serves this tiny
	// corpus too fast to saturate organically): hold B's only execution
	// slot for the first stretch of the arm, standing in for a slow
	// in-flight query. With A stalled and B full, arrivals must shed.
	if err := admB.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	timer := time.AfterFunc(700*time.Millisecond, func() {
		admB.Release()
		close(released)
	})
	defer func() {
		if timer.Stop() {
			admB.Release()
		}
	}()

	_, coord := startCoordinator(t, CoordinatorConfig{
		Shards:           [][]string{{stall.URL(), repB.URL}},
		ReplicaTimeout:   250 * time.Millisecond,
		FailureThreshold: 3,
		ProbeInterval:    5 * time.Second,
		HedgeDelay:       60 * time.Millisecond,
		Metrics:          true,
	})

	w, err := loadgen.Generate(loadgen.ArmSpec{
		Kind: loadgen.KindOverload, RPS: 900, Duration: 1400 * time.Millisecond,
		Vocab: 32, Algo: "dil", TopM: 5,
	}, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.RunArm(context.Background(), coord.URL, w, loadgen.RunOptions{
		MaxOutstanding: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-released
	a := loadgen.BuildArmReport(res)
	t.Logf("overload through stalled cluster: %+v", res.Counts)
	for _, fam := range []string{"xrank_coord_requests_total", "xrank_replica_attempts_total",
		"xrank_replica_failures_total", "xrank_replica_backpressure_total",
		"xrank_hedged_requests_total", "xrank_replica_retries_total"} {
		t.Logf("  %s delta %.0f", fam, loadgen.FamilyDelta(res.MetricsBefore, res.MetricsAfter, fam))
	}

	if err := loadgen.CheckOverload(a, time.Second); err != nil {
		t.Fatalf("overload SLO gate failed with one replica stalled: %v", err)
	}
	if stall.Accepted() == 0 {
		t.Fatal("the stalled replica was never dialed — the fault was not exercised")
	}
	// Every dispatched request resolved to exactly one bucket even with
	// the coordinator hedging and failing over mid-run.
	if c := res.Counts; c.Resolved() != c.Sent {
		t.Fatalf("resolved %d != sent %d (counts %+v)", c.Resolved(), c.Sent, c)
	}
}
