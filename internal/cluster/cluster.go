// Package cluster turns the single-node XRANK engine into a serving
// cluster: a shard server (xrank-shardd) hosts one or more shard
// replicas behind the existing internal/httpapi handler stack plus a
// small internal surface (/internal/shard/search, /internal/health,
// /internal/snapshot), and a coordinator (xrank-coordinator) fans a
// query out to one replica per shard, merges the per-shard top-m pages
// into a global top-m, and degrades — exactly the way the single-node
// engine degrades around a failed local shard — when every replica of
// a shard is unreachable.
//
// Placement is rendezvous (highest-random-weight) hashing: each
// (shard, replica) pair hashes to a weight and a shard's replicas are
// tried in descending-weight order. Adding or removing one replica
// reshuffles only the pairs that involve it, and every coordinator
// computes the same order with no shared state.
//
// Fault handling composes three layers, mirroring the intra-node
// design (see internal/index/health.go and internal/query/shard.go):
//
//   - retries with seeded full-jitter exponential backoff for
//     transient faults (transport errors, timeouts, 500/502);
//   - a per-replica circuit breaker that opens after a configurable
//     run of consecutive failures and thereafter admits one half-open
//     probe per interval;
//   - hedged second requests after a p99-derived delay, with
//     exactly-once accounting (a cancelled hedge loser touches neither
//     the breaker nor the metrics).
//
// Backpressure statuses (429, 503, 504) are not replica faults: the
// replica is alive and asking for relief, so the coordinator fails
// over without charging the breaker and, when every shard is
// backpressured, passes the status and Retry-After header through to
// the client unchanged.
package cluster

import (
	"hash/fnv"
	"sort"
)

// rendezvousWeight hashes one (shard, replica) pair with FNV-1a 64.
// The separator keeps ("1", "0x") and ("10", "x") apart.
func rendezvousWeight(shard int, replica string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	v := uint64(shard)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte{'|'})
	h.Write([]byte(replica))
	return h.Sum64()
}

// PlacementOrder returns the shard's replicas in descending
// rendezvous-hash order: index 0 is the primary, the rest is the
// failover (and hedging) order. The input slice is not modified; ties
// break by URL so the order is total and deterministic.
func PlacementOrder(shard int, replicas []string) []string {
	out := append([]string(nil), replicas...)
	sort.SliceStable(out, func(i, j int) bool {
		wi, wj := rendezvousWeight(shard, out[i]), rendezvousWeight(shard, out[j])
		if wi != wj {
			return wi > wj
		}
		return out[i] < out[j]
	})
	return out
}
