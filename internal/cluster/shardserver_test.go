package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xrank"
	"xrank/internal/cache"
	"xrank/internal/httpapi"
)

func TestShardServerEndpoints(t *testing.T) {
	dir0 := buildShardDir(t, clusterCorpus(0, 3))
	dir1 := buildShardDir(t, clusterCorpus(1, 3))
	rep := startReplica(t, map[int]string{0: dir0, 1: dir1}, muxOpts())
	client := serialClient()

	// Health lists the hosted shards.
	st, _, body := get(t, client, rep.URL+"/internal/health")
	if st != http.StatusOK {
		t.Fatalf("health: %d", st)
	}
	var health struct {
		Status string `json:"status"`
		Shards []int  `json:"shards"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Shards) != 2 || health.Shards[0] != 0 || health.Shards[1] != 1 {
		t.Fatalf("health = %+v", health)
	}

	// /internal/shard/search delegates into the shard's own httpapi
	// stack: same results as a dedicated single-shard server, and the
	// stack's Server-Timing header comes along.
	st, hdr, internal := get(t, client, rep.URL+"/internal/shard/search?shard=1&q=common&m=10&algo=dil")
	if st != http.StatusOK {
		t.Fatalf("internal search: %d: %s", st, internal)
	}
	if !strings.Contains(hdr.Get("Server-Timing"), "search;dur=") {
		t.Fatalf("internal search lost the httpapi stack's Server-Timing header: %q", hdr.Get("Server-Timing"))
	}
	solo := startReplica(t, map[int]string{1: dir1}, muxOpts())
	_, _, direct := get(t, client, solo.URL+"/api/search?q=common&m=10&algo=dil")
	if results(t, internal) != results(t, direct) {
		t.Fatalf("delegated search differs from direct /api/search:\n%s\nvs\n%s",
			results(t, internal), results(t, direct))
	}

	// The default (lowest) shard serves at the root like `xrank serve`.
	st, _, root := get(t, client, rep.URL+"/api/search?q=common&m=10&algo=dil")
	if st != http.StatusOK {
		t.Fatalf("root search: %d", st)
	}
	solo0 := startReplica(t, map[int]string{0: dir0}, muxOpts())
	_, _, direct0 := get(t, client, solo0.URL+"/api/search?q=common&m=10&algo=dil")
	if results(t, root) != results(t, direct0) {
		t.Fatal("root mount does not serve the default shard")
	}

	// Unknown shards and validation failures map to the right statuses.
	if st, _, _ := get(t, client, rep.URL+"/internal/shard/search?shard=9&q=common"); st != http.StatusNotFound {
		t.Fatalf("unknown shard: %d, want 404", st)
	}
	if st, _, _ := get(t, client, rep.URL+"/internal/shard/search?shard=1"); st != http.StatusBadRequest {
		t.Fatalf("missing q: %d, want 400", st)
	}
	if st, _, _ := get(t, client, rep.URL+"/internal/snapshot?shard=9"); st != http.StatusNotFound {
		t.Fatalf("unknown snapshot shard: %d, want 404", st)
	}
}

// TestHedgedAdmissionExactlyOnce hammers an admission-limited replica
// pair through an aggressively hedging coordinator and then audits the
// books: every search request that reached a replica handler was
// counted exactly once as admitted, shed, or expired — including
// hedge duplicates whose client vanished mid-queue. Run under -race
// this is also the concurrency test for the whole fan-out path.
func TestHedgedAdmissionExactlyOnce(t *testing.T) {
	dir := buildShardDir(t, clusterCorpus(0, 4))

	type countedReplica struct {
		srv     *httptest.Server
		engine  *xrank.Engine
		arrived *int64
	}
	mk := func() countedReplica {
		e, err := xrank.OpenEngine(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		ss := NewShardServer()
		// A tight admission gate (1 slot, queue of 2) forces queueing and
		// shedding under the concurrent driver below.
		if err := ss.Mount(0, e, dir, httpapi.Options{
			Metrics: true, Admission: cache.NewAdmission(1, 2),
		}); err != nil {
			t.Fatal(err)
		}
		arrived := new(int64)
		h := ss.Handler()
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Count arrivals on the search path only, before any handler
			// logic runs; the admission counters must match this exactly.
			if r.URL.Path == "/internal/shard/search" {
				atomic.AddInt64(arrived, 1)
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		return countedReplica{srv: srv, engine: e, arrived: arrived}
	}
	ra, rb := mk(), mk()

	_, coord := startCoordinator(t, CoordinatorConfig{
		Shards:         [][]string{{ra.srv.URL, rb.srv.URL}},
		ReplicaTimeout: 2 * time.Second,
		RetryBackoff:   time.Millisecond,
		HedgeDelay:     time.Millisecond, // hedge almost every request
	})

	const workers, perWorker = 8, 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := serialClient()
			for i := 0; i < perWorker; i++ {
				resp, err := client.Get(fmt.Sprintf(
					"%s/api/search?q=common+token%d&m=5&algo=dil", coord.URL, i%3))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()

	for i, r := range []countedReplica{ra, rb} {
		reg := r.engine.Metrics()
		mv := func(name string) int64 { return metricValue(t, reg.WritePrometheus, name) }
		admitted := mv("xrank_admission_admitted_total")
		shed := mv("xrank_admission_shed_total")
		expired := mv("xrank_admission_expired_total")
		arrived := atomic.LoadInt64(r.arrived)
		if admitted+shed+expired != arrived {
			t.Errorf("replica %d: admitted %d + shed %d + expired %d != arrived %d",
				i, admitted, shed, expired, arrived)
		}
		if queued := mv("xrank_admission_queued"); queued != 0 {
			t.Errorf("replica %d: admission queue gauge stuck at %d after drain", i, queued)
		}
	}
	total := atomic.LoadInt64(ra.arrived) + atomic.LoadInt64(rb.arrived)
	if total < workers*perWorker {
		t.Fatalf("replicas saw %d arrivals for %d client requests", total, workers*perWorker)
	}
}
