package cluster

import (
	"bytes"
	"context"
	iofs "io/fs"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xrank"
)

// findParts collects every .part file under dir.
func findParts(t *testing.T, dir string) []string {
	t.Helper()
	var parts []string
	err := filepath.WalkDir(dir, func(p string, d iofs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(p, partSuffix) {
			parts = append(parts, p)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

// fetchTo runs FetchSnapshot for shard 0 through the given proxy.
func fetchTo(t *testing.T, p *ChaosProxy, dst string) (*SnapshotManifest, error) {
	t.Helper()
	return FetchSnapshot(context.Background(), serialClient(), p.URL(), 0, dst)
}

// assertBitIdentical compares every manifest file in dst against src.
func assertBitIdentical(t *testing.T, man *SnapshotManifest, src, dst string) {
	t.Helper()
	for _, f := range man.Files {
		rel := filepath.FromSlash(f.Path)
		want, err := os.ReadFile(filepath.Join(src, rel))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dst, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("snapshot file %s differs from source", f.Path)
		}
	}
}

// openAndSearch opens a snapshot directory and runs the shared query.
func openAndSearch(t *testing.T, dir string) []xrank.SearchResult {
	t.Helper()
	e, err := xrank.OpenEngine(dir)
	if err != nil {
		t.Fatalf("snapshot dir does not open: %v", err)
	}
	defer e.Close()
	res, err := e.Search("common")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSnapshotBootstrap(t *testing.T) {
	src := buildShardDir(t, clusterCorpus(0, 4))
	rep := startReplica(t, map[int]string{0: src}, muxOpts())
	p := proxied(t, rep)

	dst := t.TempDir()
	man, err := fetchTo(t, p, dst)
	if err != nil {
		t.Fatalf("clean fetch: %v", err)
	}
	if len(man.Files) < 3 {
		t.Fatalf("manifest suspiciously small: %+v", man.Files)
	}
	assertBitIdentical(t, man, src, dst)

	want := openAndSearch(t, src)
	got := openAndSearch(t, dst)
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("snapshot serves %d results, source %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}

	// Re-fetch into the same directory: everything verifies in place,
	// nothing breaks.
	if _, err := fetchTo(t, p, dst); err != nil {
		t.Fatalf("idempotent re-fetch: %v", err)
	}
}

// TestSnapshotResumeAfterReset interrupts the transfer mid-file with a
// connection reset, checks the half-fetched directory cannot activate,
// then resumes: the second run continues from the partial byte offset
// and the result is bit-identical.
func TestSnapshotResumeAfterReset(t *testing.T) {
	src := buildShardDir(t, clusterCorpus(0, 4))
	rep := startReplica(t, map[int]string{0: src}, muxOpts())
	p := proxied(t, rep)
	// Let the manifest and the first file through, then cut the second
	// file transfer after 4 KiB of response — inside the body of any
	// corpus document (each is >6 KiB of XML).
	p.ResetAfter = 4096
	p.SetSchedule([]ChaosMode{ChaosPass, ChaosPass, ChaosReset})

	dst := t.TempDir()
	if _, err := fetchTo(t, p, dst); err == nil {
		t.Fatal("reset mid-transfer did not surface an error")
	}
	// Activation gate: the torn directory must not open (the commit
	// manifests ship last).
	if _, err := xrank.OpenEngine(dst); err == nil {
		t.Fatal("half-fetched snapshot directory opened")
	}
	// The interrupted file left a resumable partial.
	parts := findParts(t, dst)
	var partial string
	for _, q := range parts {
		if st, err := os.Stat(q); err == nil && st.Size() > 0 {
			partial = q
		}
	}
	if partial == "" {
		t.Fatalf("no nonzero partial to resume (parts: %v)", parts)
	}
	partSize := func() int64 {
		st, err := os.Stat(partial)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}()

	// Resume with a healthy link: the partial completes from its
	// offset rather than restarting.
	p.SetSchedule(nil)
	man, err := fetchTo(t, p, dst)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	final := strings.TrimSuffix(partial, partSuffix)
	st, err := os.Stat(final)
	if err != nil {
		t.Fatalf("resumed file missing: %v", err)
	}
	if st.Size() <= partSize {
		t.Fatalf("resume did not extend the partial: %d -> %d bytes", partSize, st.Size())
	}
	assertBitIdentical(t, man, src, dst)
	openAndSearch(t, dst)
}

// TestSnapshotRefetchesCorruptPartial tampers with a partial download;
// the resumed file fails its checksum and is refetched from scratch
// exactly once rather than activated corrupt.
func TestSnapshotRefetchesCorruptPartial(t *testing.T) {
	src := buildShardDir(t, clusterCorpus(0, 4))
	rep := startReplica(t, map[int]string{0: src}, muxOpts())
	p := proxied(t, rep)
	p.ResetAfter = 4096
	p.SetSchedule([]ChaosMode{ChaosPass, ChaosPass, ChaosReset})

	dst := t.TempDir()
	if _, err := fetchTo(t, p, dst); err == nil {
		t.Fatal("reset mid-transfer did not surface an error")
	}
	parts := findParts(t, dst)
	tampered := false
	for _, q := range parts {
		data, err := os.ReadFile(q)
		if err != nil || len(data) == 0 {
			continue
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(q, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tampered = true
	}
	if !tampered {
		t.Fatal("no partial to tamper with")
	}

	p.SetSchedule(nil)
	man, err := fetchTo(t, p, dst)
	if err != nil {
		t.Fatalf("fetch after tamper: %v", err)
	}
	assertBitIdentical(t, man, src, dst)
	openAndSearch(t, dst)
}

// TestSnapshotManifestSkipsJunk: leftover temporaries and partials in
// the source directory never enter a manifest.
func TestSnapshotManifestSkipsJunk(t *testing.T) {
	src := buildShardDir(t, clusterCorpus(0, 2))
	for _, junk := range []string{"stray.tmp", "old.bin" + partSuffix} {
		if err := os.WriteFile(filepath.Join(src, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	man, err := buildManifest(0, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range man.Files {
		if strings.HasSuffix(f.Path, ".tmp") || strings.HasSuffix(f.Path, partSuffix) {
			t.Fatalf("manifest picked up junk file %s", f.Path)
		}
	}
	// Commit files sort last in fetch order.
	if !commitFile("engine.json") || !commitFile("segments.json") || commitFile("ranks.bin") {
		t.Fatal("commitFile misclassifies")
	}
}

// TestSnapshotPathSafety: the file endpoint refuses traversal and the
// client refuses manifests that point outside the target.
func TestSnapshotPathSafety(t *testing.T) {
	src := buildShardDir(t, clusterCorpus(0, 2))
	rep := startReplica(t, map[int]string{0: src}, muxOpts())
	client := serialClient()
	for _, bad := range []string{"../engine.json", "/etc/passwd", "a/../../b"} {
		st, _, _ := get(t, client, rep.URL+"/internal/snapshot/file?shard=0&path="+url.QueryEscape(bad))
		if st != http.StatusBadRequest {
			t.Fatalf("path %q: status %d, want 400", bad, st)
		}
	}
	for _, tc := range []struct {
		rel  string
		safe bool
	}{
		{"engine.json", true}, {"docs/000000.xml", true},
		{"", false}, {"../x", false}, {"/abs", false}, {"a/../../b", false}, {`a\..\b`, false},
	} {
		if got := safeRel(tc.rel); got != tc.safe {
			t.Fatalf("safeRel(%q) = %v, want %v", tc.rel, got, tc.safe)
		}
	}
}
