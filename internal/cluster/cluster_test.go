package cluster

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestPlacementOrderDeterministic(t *testing.T) {
	replicas := []string{"http://a:1", "http://b:2", "http://c:3"}
	got := PlacementOrder(7, replicas)
	if len(got) != 3 {
		t.Fatalf("placement dropped replicas: %v", got)
	}
	// Permutation-independence: the order depends on the set, not the
	// input arrangement.
	perm := []string{"http://c:3", "http://a:1", "http://b:2"}
	if !reflect.DeepEqual(PlacementOrder(7, perm), got) {
		t.Fatalf("placement depends on input order: %v vs %v", PlacementOrder(7, perm), got)
	}
	if !reflect.DeepEqual(PlacementOrder(7, replicas), got) {
		t.Fatal("placement is not deterministic")
	}
	// The input must not be mutated.
	if !reflect.DeepEqual(replicas, []string{"http://a:1", "http://b:2", "http://c:3"}) {
		t.Fatal("PlacementOrder mutated its input")
	}
	// Different shards should not all share one primary (rendezvous
	// spreads load); with 64 shards over 3 replicas each replica should
	// be primary somewhere.
	primaries := map[string]int{}
	for s := 0; s < 64; s++ {
		primaries[PlacementOrder(s, replicas)[0]]++
	}
	if len(primaries) != 3 {
		t.Fatalf("rendezvous placement starved a replica of primaries: %v", primaries)
	}
	// Removing one replica must not reshuffle the relative order of the
	// survivors (the minimal-disruption property).
	without := PlacementOrder(7, []string{"http://a:1", "http://c:3"})
	var survivors []string
	for _, u := range got {
		if u != "http://b:2" {
			survivors = append(survivors, u)
		}
	}
	if !reflect.DeepEqual(without, survivors) {
		t.Fatalf("removing a replica reshuffled survivors: %v vs %v", without, survivors)
	}
}

func TestBreakerThresholdAndProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(3, time.Minute, clk.now)
	u := "http://r:1"
	errBoom := errors.New("boom")
	for i := 0; i < 2; i++ {
		b.Failure(u, errBoom)
		if ok, _ := b.Allow(u); !ok {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	b.Failure(u, errBoom)
	if ok, _ := b.Allow(u); ok {
		t.Fatal("breaker still closed after 3 consecutive failures")
	}
	if !b.Open(u) || b.OpenCount() != 1 {
		t.Fatal("breaker state not visible as open")
	}
	// A success run interrupted by the threshold being reached resets
	// nothing until a probe is admitted: within the interval the replica
	// stays excluded.
	clk.advance(30 * time.Second)
	if ok, _ := b.Allow(u); ok {
		t.Fatal("probe admitted before the interval elapsed")
	}
	clk.advance(31 * time.Second)
	ok, probe := b.Allow(u)
	if !ok || !probe {
		t.Fatalf("interval elapsed: Allow = (%v, %v), want probe", ok, probe)
	}
	// The probe consumed this interval's trial.
	if ok, _ := b.Allow(u); ok {
		t.Fatal("second probe admitted within one interval")
	}
	// Probe failure re-arms; probe success closes.
	b.Failure(u, errBoom)
	clk.advance(61 * time.Second)
	if ok, probe := b.Allow(u); !ok || !probe {
		t.Fatal("probe not re-admitted after a failed probe plus interval")
	}
	b.Success(u)
	if ok, probe := b.Allow(u); !ok || probe {
		t.Fatalf("after probe success: Allow = (%v, %v), want plain admit", ok, probe)
	}
	h := b.Health([]string{u})
	if !h[0].Healthy || h[0].Failures != 0 {
		t.Fatalf("health after recovery: %+v", h[0])
	}
}

func TestBreakerStickyWithoutInterval(t *testing.T) {
	b := NewBreaker(1, 0, nil)
	b.Failure("u", errors.New("x"))
	if ok, _ := b.Allow("u"); ok {
		t.Fatal("threshold-1 breaker did not open")
	}
	// No probe interval: open means open until Reset.
	if ok, _ := b.Allow("u"); ok {
		t.Fatal("sticky breaker admitted a probe")
	}
	b.Reset()
	if ok, _ := b.Allow("u"); !ok {
		t.Fatal("Reset did not close the breaker")
	}
}

func TestLatencyDigestQuantile(t *testing.T) {
	d := newLatencyDigest()
	if _, ok := d.quantile(0.99); ok {
		t.Fatal("empty digest answered a quantile")
	}
	for i := 1; i <= 100; i++ {
		d.observe(time.Duration(i) * time.Millisecond)
	}
	p99, ok := d.quantile(0.99)
	if !ok {
		t.Fatal("populated digest refused a quantile")
	}
	if p99 < 95*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 of 1..100ms = %v", p99)
	}
	p50, _ := d.quantile(0.50)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Fatalf("p50 of 1..100ms = %v", p50)
	}
	// The ring drops the oldest samples once full.
	for i := 0; i < digestSize; i++ {
		d.observe(time.Millisecond)
	}
	if p99, _ := d.quantile(0.99); p99 != time.Millisecond {
		t.Fatalf("ring retained stale samples: p99 = %v", p99)
	}
}

func TestDeweyLessAndMerge(t *testing.T) {
	if !deweyLess("1.2", "1.10") {
		t.Fatal("dewey comparison is lexicographic, want numeric")
	}
	if !deweyLess("1.2", "1.2.1") {
		t.Fatal("prefix must sort before its extension")
	}
	if deweyLess("2.1", "2.1") {
		t.Fatal("deweyLess not irreflexive")
	}
	pages := []*shardPage{
		{Results: []wireResult{
			{DeweyID: "1.10", Score: 0.5, Doc: "b"},
			{DeweyID: "1.1", Score: 0.9, Doc: "b"},
		}},
		{Results: []wireResult{
			{DeweyID: "1.2", Score: 0.5, Doc: "a"},
			{DeweyID: "1.2", Score: 0.5, Doc: "b"},
		}},
	}
	got := mergeResults(pages, 3)
	want := []wireResult{
		{DeweyID: "1.1", Score: 0.9, Doc: "b"},
		{DeweyID: "1.2", Score: 0.5, Doc: "a"},
		{DeweyID: "1.2", Score: 0.5, Doc: "b"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order:\n got %+v\nwant %+v", got, want)
	}
	if out := mergeResults(nil, 5); out == nil || len(out) != 0 {
		t.Fatalf("empty merge must be an empty array, got %#v", out)
	}
}
