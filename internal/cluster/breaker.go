package cluster

import (
	"sync"
	"time"
)

// Breaker tracks per-replica health with the same sticky-unhealthy
// semantics the engine applies to its local shards: a replica is
// excluded after `threshold` consecutive failed attempts and stays
// excluded until either an operator reset or a successful half-open
// probe. While open, one trial request is admitted per probe interval;
// its success closes the breaker, its failure re-arms the interval.
//
// The clock is injectable so tests can step probe intervals without
// sleeping. All methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	interval  time.Duration // half-open probe spacing; <=0 disables probes
	now       func() time.Time
	state     map[string]*replicaState
}

type replicaState struct {
	failures    int
	open        bool
	lastAttempt time.Time
	lastErr     string
}

// ReplicaHealth is one replica's breaker state, for /api/cluster and
// tests.
type ReplicaHealth struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Failures  int    `json:"consecutive_failures"`
	LastError string `json:"last_error,omitempty"`
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures (minimum 1) and admits one probe per interval once open
// (interval <= 0: open replicas stay excluded until Reset).
func NewBreaker(threshold int, interval time.Duration, now func() time.Time) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{
		threshold: threshold,
		interval:  interval,
		now:       now,
		state:     make(map[string]*replicaState),
	}
}

// Allow reports whether an attempt against url may proceed. For an
// open breaker it grants at most one probe per interval; the probe
// return distinguishes that trial so callers can count it.
func (b *Breaker) Allow(url string) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.state[url]
	if s == nil || !s.open {
		return true, false
	}
	if b.interval <= 0 {
		return false, false
	}
	now := b.now()
	if now.Sub(s.lastAttempt) < b.interval {
		return false, false
	}
	s.lastAttempt = now
	return true, true
}

// Success records a completed attempt and closes the breaker.
func (b *Breaker) Success(url string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s := b.state[url]; s != nil {
		s.failures, s.open, s.lastErr = 0, false, ""
	}
}

// Failure records one failed attempt; the run of consecutive failures
// reaching the threshold opens the breaker.
func (b *Breaker) Failure(url string, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.state[url]
	if s == nil {
		s = &replicaState{}
		b.state[url] = s
	}
	s.failures++
	s.lastAttempt = b.now()
	if err != nil {
		s.lastErr = err.Error()
	}
	if s.failures >= b.threshold {
		s.open = true
	}
}

// Open reports whether url's breaker is currently open.
func (b *Breaker) Open(url string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.state[url]
	return s != nil && s.open
}

// OpenCount returns the number of replicas with an open breaker.
func (b *Breaker) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, s := range b.state {
		if s.open {
			n++
		}
	}
	return n
}

// Health reports the breaker state for each given replica, in order.
// Replicas the breaker has never seen report healthy.
func (b *Breaker) Health(urls []string) []ReplicaHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ReplicaHealth, len(urls))
	for i, u := range urls {
		out[i] = ReplicaHealth{URL: u, Healthy: true}
		if s := b.state[u]; s != nil {
			out[i].Healthy = !s.open
			out[i].Failures = s.failures
			out[i].LastError = s.lastErr
		}
	}
	return out
}

// Reset clears all breaker state (operator recovery).
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = make(map[string]*replicaState)
}
