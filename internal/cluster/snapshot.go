package cluster

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"xrank/internal/storage"

	"encoding/json"
)

// Snapshot shipping bootstraps a new replica from a serving one: the
// source walks its engine directory into a manifest of
// {path, size, crc32} entries, the client fetches each file (resuming
// a torn download from its current byte offset) and verifies every
// CRC before the directory is allowed to open. The engine's own
// durability story does the rest — engine.json / segments.json are the
// commit points OpenEngine keys off, so they are fetched and renamed
// into place last, and OpenEngine re-verifies every artifact checksum
// on activation anyway. A snapshot is therefore either complete and
// bit-identical to the source or it does not open.

// SnapshotFile describes one file of an engine directory.
type SnapshotFile struct {
	Path  string `json:"path"` // slash-separated, relative to the engine dir
	Size  int64  `json:"size"`
	CRC32 uint32 `json:"crc32"`
}

// SnapshotManifest is the /internal/snapshot response body.
type SnapshotManifest struct {
	Shard int            `json:"shard"`
	Files []SnapshotFile `json:"files"`
}

// partSuffix marks an in-progress download; a crashed fetch leaves
// .part files behind and a re-run resumes them from their size.
const partSuffix = ".part"

// buildManifest walks dir and checksums every regular file. Leftover
// atomic-write temporaries and download partials are skipped: they are
// not part of any committed engine state.
func buildManifest(shard int, dir string) (*SnapshotManifest, error) {
	m := &SnapshotManifest{Shard: shard, Files: []SnapshotFile{}}
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasSuffix(p, ".tmp") || strings.HasSuffix(p, partSuffix) {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		m.Files = append(m.Files, SnapshotFile{
			Path:  filepath.ToSlash(rel),
			Size:  int64(len(data)),
			CRC32: storage.Checksum(data),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(m.Files, func(i, j int) bool { return m.Files[i].Path < m.Files[j].Path })
	return m, nil
}

// commitFile reports whether rel is an open-entry-point file that must
// land last so a half-fetched directory can never open.
func commitFile(rel string) bool {
	return rel == "engine.json" || rel == "segments.json"
}

// safeRel rejects manifest/request paths that would escape the target
// directory.
func safeRel(rel string) bool {
	if rel == "" || path.IsAbs(rel) || strings.Contains(rel, "\\") {
		return false
	}
	clean := path.Clean(rel)
	return clean == rel && clean != ".." && !strings.HasPrefix(clean, "../")
}

// FetchSnapshot bootstraps dstDir from the shard's snapshot endpoints
// at baseURL (a shard server root, e.g. "http://host:port"). Files
// already present with the manifest's size and checksum are kept;
// partial downloads resume at their current offset. Every file's CRC
// is verified before it is renamed into place (a corrupt transfer is
// refetched once from scratch), the commit-point manifests land last,
// and a final pass re-verifies the whole directory before the function
// reports success — the activation gate OpenEngine then enforces a
// second time.
func FetchSnapshot(ctx context.Context, client *http.Client, baseURL string, shard int, dstDir string) (*SnapshotManifest, error) {
	if client == nil {
		client = http.DefaultClient
	}
	man, err := fetchManifest(ctx, client, baseURL, shard)
	if err != nil {
		return nil, err
	}
	files := append([]SnapshotFile(nil), man.Files...)
	sort.SliceStable(files, func(i, j int) bool {
		ci, cj := commitFile(files[i].Path), commitFile(files[j].Path)
		if ci != cj {
			return !ci
		}
		return files[i].Path < files[j].Path
	})
	for _, f := range files {
		if !safeRel(f.Path) {
			return nil, fmt.Errorf("cluster: snapshot manifest escapes target dir: %q", f.Path)
		}
		if err := fetchFile(ctx, client, baseURL, shard, f, dstDir); err != nil {
			return nil, err
		}
	}
	// Activation gate: nothing is allowed to open this directory until
	// every byte on disk matches the manifest.
	for _, f := range man.Files {
		if err := verifyLocal(filepath.Join(dstDir, filepath.FromSlash(f.Path)), f); err != nil {
			return nil, err
		}
	}
	return man, nil
}

func fetchManifest(ctx context.Context, client *http.Client, baseURL string, shard int) (*SnapshotManifest, error) {
	u := fmt.Sprintf("%s/internal/snapshot?shard=%d", strings.TrimSuffix(baseURL, "/"), shard)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: snapshot manifest: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var man SnapshotManifest
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		return nil, fmt.Errorf("cluster: snapshot manifest: %w", err)
	}
	return &man, nil
}

// fetchFile brings one manifest entry to its final path in dstDir,
// resuming and verifying as documented on FetchSnapshot.
func fetchFile(ctx context.Context, client *http.Client, baseURL string, shard int, f SnapshotFile, dstDir string) error {
	final := filepath.Join(dstDir, filepath.FromSlash(f.Path))
	if verifyLocal(final, f) == nil {
		return nil // already fetched and intact (resume across restarts)
	}
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return err
	}
	part := final + partSuffix
	for attempt := 0; ; attempt++ {
		err := downloadPart(ctx, client, baseURL, shard, f, part)
		if err == nil {
			break
		}
		// A CRC mismatch means the resumed bytes and the source diverged
		// (e.g. the source compacted mid-fetch): throw the partial away
		// and refetch once from offset zero before giving up.
		if attempt == 0 && strings.Contains(err.Error(), "checksum") {
			os.Remove(part)
			continue
		}
		return err
	}
	return os.Rename(part, final)
}

// downloadPart appends the remainder of f to the .part file and
// verifies the completed bytes against the manifest checksum.
func downloadPart(ctx context.Context, client *http.Client, baseURL string, shard int, f SnapshotFile, part string) error {
	var offset int64
	if st, err := os.Stat(part); err == nil {
		offset = st.Size()
	}
	if offset > f.Size {
		// The partial is longer than the manifest says the file is: it
		// can only be garbage from an older snapshot generation.
		os.Remove(part)
		offset = 0
	}
	if offset < f.Size {
		u := fmt.Sprintf("%s/internal/snapshot/file?shard=%d&path=%s&offset=%d",
			strings.TrimSuffix(baseURL, "/"), shard, url.QueryEscape(f.Path), offset)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("cluster: snapshot fetch %s: %w", f.Path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("cluster: snapshot fetch %s: %s: %s", f.Path, resp.Status, strings.TrimSpace(string(body)))
		}
		w, err := os.OpenFile(part, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		_, cpErr := io.Copy(w, resp.Body)
		syncErr := w.Sync()
		closeErr := w.Close()
		if cpErr != nil {
			return fmt.Errorf("cluster: snapshot fetch %s: %w", f.Path, cpErr)
		}
		if syncErr != nil {
			return syncErr
		}
		if closeErr != nil {
			return closeErr
		}
	}
	return verifyLocal(part, f)
}

// verifyLocal checks one on-disk file against its manifest entry.
func verifyLocal(p string, f SnapshotFile) error {
	data, err := os.ReadFile(p)
	if err != nil {
		return err
	}
	if int64(len(data)) != f.Size {
		return fmt.Errorf("cluster: snapshot %s: size %d, manifest says %d", f.Path, len(data), f.Size)
	}
	if crc := storage.Checksum(data); crc != f.CRC32 {
		return fmt.Errorf("cluster: snapshot %s: checksum %08x, manifest says %08x", f.Path, crc, f.CRC32)
	}
	return nil
}

// serveSnapshotFile streams one manifest file from offset; the shard
// server mounts it at /internal/snapshot/file.
func serveSnapshotFile(w http.ResponseWriter, r *http.Request, dir string) {
	rel := r.URL.Query().Get("path")
	if !safeRel(rel) {
		http.Error(w, "bad \"path\" parameter", http.StatusBadRequest)
		return
	}
	var offset int64
	if qo := r.URL.Query().Get("offset"); qo != "" {
		v, err := strconv.ParseInt(qo, 10, 64)
		if err != nil || v < 0 {
			http.Error(w, "bad \"offset\" parameter", http.StatusBadRequest)
			return
		}
		offset = v
	}
	f, err := os.Open(filepath.Join(dir, filepath.FromSlash(rel)))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if offset > st.Size() {
		http.Error(w, "offset past end of file", http.StatusRequestedRangeNotSatisfiable)
		return
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(st.Size()-offset, 10))
	io.Copy(w, f)
}
