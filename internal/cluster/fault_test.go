package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xrank/internal/httpapi"
)

// faultMatrixQueries is the query set every fault-matrix run replays;
// results must come back byte-identical regardless of which replica
// answered or what faults were in the way.
var faultMatrixQueries = []string{
	"common",
	"common+token1",
	"common+shard0",
	"unique+doc2",
}

// searchURL builds a coordinator search request for one query.
func searchURL(base, q string) string {
	return fmt.Sprintf("%s/api/search?q=%s&m=10&algo=dil", base, q)
}

// TestClusterFaultMatrix drives every chaos mode against the primary
// replica of a single-shard, two-replica cluster and asserts the
// coordinator fails over to a byte-identical answer. Placement is
// computed up front so the fault always lands on the replica the
// coordinator tries first — the matrix never silently tests the
// no-fault path.
func TestClusterFaultMatrix(t *testing.T) {
	dir := buildShardDir(t, clusterCorpus(0, 6))
	repA := startReplica(t, map[int]string{0: dir}, muxOpts())
	repB := startReplica(t, map[int]string{0: dir}, muxOpts())
	pA, pB := proxied(t, repA), proxied(t, repB)

	order := PlacementOrder(0, []string{pA.URL(), pB.URL()})
	prim, sec := pA, pB
	if order[0] == pB.URL() {
		prim, sec = pB, pA
	}

	newCoord := func() (*Coordinator, *httptest.Server) {
		return startCoordinator(t, CoordinatorConfig{
			Shards:         [][]string{{pA.URL(), pB.URL()}},
			ReplicaTimeout: 400 * time.Millisecond, // bounds the blackhole arm
			RetryBackoff:   time.Millisecond,
			HedgeDelay:     -1, // hedging has its own test; keep one code path per mode
		})
	}
	client := serialClient()

	_, base := newCoord()
	status, _, body := get(t, client, searchURL(base.URL, "common"))
	if status != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", status, body)
	}
	baseline := make(map[string]string, len(faultMatrixQueries))
	for _, q := range faultMatrixQueries {
		st, _, b := get(t, client, searchURL(base.URL, q))
		if st != http.StatusOK {
			t.Fatalf("baseline %q: status %d: %s", q, st, b)
		}
		if res := results(t, b); res == "[]" && q == "common" {
			t.Fatalf("baseline %q returned no results", q)
		}
		baseline[q] = results(t, b)
	}

	modes := []struct {
		name string
		mode ChaosMode
	}{
		{"refuse", ChaosRefuse},
		{"blackhole", ChaosBlackhole},
		{"reset", ChaosReset},
		{"slow", ChaosSlow},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			prim.SetSchedule([]ChaosMode{m.mode})
			sec.SetSchedule(nil)
			prim.SlowDelay = 150 * time.Millisecond // < ReplicaTimeout: slow succeeds late
			defer prim.SetSchedule(nil)

			_, coord := newCoord()
			before := prim.Accepted()
			for _, q := range faultMatrixQueries {
				st, _, b := get(t, client, searchURL(coord.URL, q))
				if st != http.StatusOK {
					t.Fatalf("%s %q: status %d: %s", m.name, q, st, b)
				}
				page := searchJSON(t, b)
				if string(page["degraded"]) != "false" {
					t.Fatalf("%s %q: single-replica fault degraded the response: %s", m.name, q, b)
				}
				if got := results(t, b); got != baseline[q] {
					t.Fatalf("%s %q: results diverged from fault-free baseline\n got %s\nwant %s",
						m.name, q, got, baseline[q])
				}
			}
			if m.mode != ChaosSlow && prim.Accepted() == before {
				t.Fatalf("%s: fault never exercised (primary proxy saw no connections)", m.name)
			}
		})
	}
}

// TestClusterDegradedAndFailOnDegraded: losing every replica of one
// shard degrades the merge exactly like the single-node engine losing
// a local shard — and refuses with 503 under FailOnDegraded. Losing
// every shard answers 502.
func TestClusterDegradedAndFailOnDegraded(t *testing.T) {
	dir0 := buildShardDir(t, clusterCorpus(0, 4))
	dir1 := buildShardDir(t, clusterCorpus(1, 4))
	rep0 := startReplica(t, map[int]string{0: dir0}, muxOpts())
	rep1 := startReplica(t, map[int]string{1: dir1}, muxOpts())
	p0, p1 := proxied(t, rep0), proxied(t, rep1)
	client := serialClient()

	cfg := CoordinatorConfig{
		Shards:         [][]string{{p0.URL()}, {p1.URL()}},
		ReplicaTimeout: 300 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
		HedgeDelay:     -1,
	}
	_, full := startCoordinator(t, cfg)
	st, _, fullBody := get(t, client, searchURL(full.URL, "common"))
	if st != http.StatusOK || string(searchJSON(t, fullBody)["degraded"]) != "false" {
		t.Fatalf("healthy cluster: status %d body %s", st, fullBody)
	}

	// Shard 1's only replica refuses: the answer shrinks to shard 0's
	// contribution and says so.
	p1.SetSchedule([]ChaosMode{ChaosRefuse})
	_, degr := startCoordinator(t, cfg)
	st, _, body := get(t, client, searchURL(degr.URL, "common"))
	if st != http.StatusOK {
		t.Fatalf("degraded query: status %d: %s", st, body)
	}
	page := searchJSON(t, body)
	if string(page["degraded"]) != "true" || string(page["failed_shards"]) != "[1]" {
		t.Fatalf("want degraded over shard 1, got %s", body)
	}
	// The surviving results must be exactly the shard-0-only answer.
	_, only0 := startCoordinator(t, CoordinatorConfig{
		Shards: [][]string{{p0.URL()}}, HedgeDelay: -1,
	})
	_, _, want := get(t, client, searchURL(only0.URL, "common"))
	if results(t, body) != results(t, want) {
		t.Fatalf("degraded results differ from the surviving shard's answer\n got %s\nwant %s",
			results(t, body), results(t, want))
	}

	// Strict mode refuses the partial answer.
	strict := cfg
	strict.FailOnDegraded = true
	_, sc := startCoordinator(t, strict)
	st, _, body = get(t, client, searchURL(sc.URL, "common"))
	if st != http.StatusServiceUnavailable || !strings.Contains(string(body), "degraded") {
		t.Fatalf("FailOnDegraded: status %d body %s, want 503", st, body)
	}

	// Every shard down: 502, not a silent empty answer.
	p0.SetSchedule([]ChaosMode{ChaosRefuse})
	_, dead := startCoordinator(t, cfg)
	st, _, body = get(t, client, searchURL(dead.URL, "common"))
	if st != http.StatusBadGateway {
		t.Fatalf("all shards down: status %d body %s, want 502", st, body)
	}
}

// TestHedgedRequestExactlyOnce stalls the primary long enough for the
// hedge to fire and win, then checks the accounting invariants: the
// response is byte-identical to the fault-free answer, the hedge is
// counted once, and the cancelled primary charges neither the failure
// counters nor the breaker.
func TestHedgedRequestExactlyOnce(t *testing.T) {
	dir := buildShardDir(t, clusterCorpus(0, 4))
	repA := startReplica(t, map[int]string{0: dir}, muxOpts())
	repB := startReplica(t, map[int]string{0: dir}, muxOpts())
	pA, pB := proxied(t, repA), proxied(t, repB)
	order := PlacementOrder(0, []string{pA.URL(), pB.URL()})
	prim, sec := pA, pB
	if order[0] == pB.URL() {
		prim, sec = pB, pA
	}
	client := serialClient()

	cfg := CoordinatorConfig{
		Shards:         [][]string{{pA.URL(), pB.URL()}},
		ReplicaTimeout: 2 * time.Second,
		HedgeDelay:     30 * time.Millisecond,
	}
	_, baseSrv := startCoordinator(t, cfg)
	_, _, baseBody := get(t, client, searchURL(baseSrv.URL, "common"))
	want := results(t, baseBody)

	prim.SlowDelay = 600 * time.Millisecond
	prim.SetSchedule([]ChaosMode{ChaosSlow})
	sec.SetSchedule(nil)
	c, coord := startCoordinator(t, cfg)
	t0 := time.Now()
	st, _, body := get(t, client, searchURL(coord.URL, "common"))
	wall := time.Since(t0)
	if st != http.StatusOK {
		t.Fatalf("hedged query: status %d: %s", st, body)
	}
	if got := results(t, body); got != want {
		t.Fatalf("hedged results diverged:\n got %s\nwant %s", got, want)
	}
	if wall >= prim.SlowDelay {
		t.Fatalf("hedge never rescued the query: wall %v >= stall %v", wall, prim.SlowDelay)
	}
	mv := func(name string) int64 { return metricValue(t, c.Metrics().WritePrometheus, name) }
	if got := mv("xrank_hedged_requests_total"); got != 1 {
		t.Fatalf("hedges issued = %d, want 1", got)
	}
	if got := mv("xrank_hedge_wins_total"); got != 1 {
		t.Fatalf("hedge wins = %d, want 1", got)
	}
	// Exactly-once: the cancelled primary is not an attempt, a failure,
	// a retry, or a breaker charge.
	if got := mv("xrank_replica_failures_total"); got != 0 {
		t.Fatalf("cancelled hedge loser counted as %d replica failures", got)
	}
	if got := mv("xrank_replica_attempts_total"); got != 1 {
		t.Fatalf("replica attempts = %d, want 1 (the hedge winner)", got)
	}
	if got := mv("xrank_replica_retries_total"); got != 0 {
		t.Fatalf("hedge counted as %d retries", got)
	}
	for _, h := range c.Breaker().Health([]string{pA.URL(), pB.URL()}) {
		if !h.Healthy || h.Failures != 0 {
			t.Fatalf("hedge race charged a breaker: %+v", h)
		}
	}
}

// TestReplicaBreakerOpensAndProbes walks the cluster-level health
// state machine: consecutive failures open the primary's breaker, an
// open breaker keeps the replica out of the request path, and after
// the probe interval one half-open trial revives it.
func TestReplicaBreakerOpensAndProbes(t *testing.T) {
	dir := buildShardDir(t, clusterCorpus(0, 4))
	repA := startReplica(t, map[int]string{0: dir}, muxOpts())
	repB := startReplica(t, map[int]string{0: dir}, muxOpts())
	pA, pB := proxied(t, repA), proxied(t, repB)
	order := PlacementOrder(0, []string{pA.URL(), pB.URL()})
	prim, _ := pA, pB
	if order[0] == pB.URL() {
		prim = pB
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	client := serialClient()

	c, coord := startCoordinator(t, CoordinatorConfig{
		Shards:           [][]string{{pA.URL(), pB.URL()}},
		ReplicaTimeout:   300 * time.Millisecond,
		RetryBackoff:     time.Millisecond,
		FailureThreshold: 2,
		ProbeInterval:    time.Minute,
		HedgeDelay:       -1,
		Now:              clk.now,
	})
	prim.SetSchedule([]ChaosMode{ChaosRefuse})
	query := func() map[string]json.RawMessage {
		st, _, body := get(t, client, searchURL(coord.URL, "common"))
		if st != http.StatusOK {
			t.Fatalf("status %d: %s", st, body)
		}
		return searchJSON(t, body)
	}
	query() // failure 1 on primary, served by secondary
	query() // failure 2: breaker opens
	if !c.Breaker().Open(order[0]) {
		t.Fatal("primary breaker not open after 2 consecutive failures")
	}
	seen := prim.Accepted()
	query() // must not touch the open primary
	if prim.Accepted() != seen {
		t.Fatal("open breaker did not keep the primary out of the request path")
	}
	mv := func(name string) int64 { return metricValue(t, c.Metrics().WritePrometheus, name) }
	if got := mv("xrank_replica_probes_total"); got != 0 {
		t.Fatalf("probes before the interval: %d", got)
	}

	// Primary heals; after the interval one probe is admitted and
	// closes the breaker. (SetSchedule restarts the proxy's connection
	// counter, so re-baseline.)
	prim.SetSchedule(nil)
	seen = prim.Accepted()
	clk.advance(61 * time.Second)
	query()
	if got := mv("xrank_replica_probes_total"); got != 1 {
		t.Fatalf("probes after interval = %d, want 1", got)
	}
	if c.Breaker().Open(order[0]) {
		t.Fatal("successful probe did not close the breaker")
	}
	if prim.Accepted() != seen+1 {
		t.Fatalf("probe connections = %d, want %d", prim.Accepted()-seen, 1)
	}
	// Recovered primary serves again.
	seen = prim.Accepted()
	query()
	if prim.Accepted() != seen+1 {
		t.Fatal("recovered primary not back in the request path")
	}
}

// TestBackpressurePassthrough: when every replica of every shard sheds
// (429/503/504), the coordinator relays the status, the Retry-After
// header and the body unchanged instead of inventing a 5xx of its own
// — and sheds do not charge the breaker.
func TestBackpressurePassthrough(t *testing.T) {
	cases := []struct {
		status     int
		retryAfter string
		body       string
	}{
		{http.StatusTooManyRequests, "7", `{"error":"admission queue full","retry_after_seconds":7}` + "\n"},
		{http.StatusServiceUnavailable, "2", `{"error":"deadline expired in queue","retry_after_seconds":2}` + "\n"},
		{http.StatusGatewayTimeout, "", "shard query timed out\n"},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprint(tc.status), func(t *testing.T) {
			stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.retryAfter != "" {
					w.Header().Set("Retry-After", tc.retryAfter)
				}
				w.WriteHeader(tc.status)
				w.Write([]byte(tc.body))
			}))
			defer stub.Close()
			c, coord := startCoordinator(t, CoordinatorConfig{
				Shards:       [][]string{{stub.URL}},
				RetryBackoff: time.Millisecond,
				HedgeDelay:   -1,
			})
			st, hdr, body := get(t, serialClient(), searchURL(coord.URL, "common"))
			if st != tc.status {
				t.Fatalf("status %d, want %d passthrough", st, tc.status)
			}
			wantRA := tc.retryAfter
			if wantRA == "" {
				wantRA = "1" // coordinator supplies a floor when the shard did not
			}
			if got := hdr.Get("Retry-After"); got != wantRA {
				t.Fatalf("Retry-After %q, want %q", got, wantRA)
			}
			if string(body) != tc.body {
				t.Fatalf("body not preserved:\n got %q\nwant %q", body, tc.body)
			}
			if h := c.Breaker().Health([]string{stub.URL}); !h[0].Healthy || h[0].Failures != 0 {
				t.Fatalf("backpressure charged the breaker: %+v", h[0])
			}
			mv := func(name string) int64 { return metricValue(t, c.Metrics().WritePrometheus, name) }
			if got := mv("xrank_replica_backpressure_total"); got == 0 {
				t.Fatal("backpressure attempts not counted")
			}
			if got := mv("xrank_replica_failures_total"); got != 0 {
				t.Fatalf("backpressure counted as %d failures", got)
			}
		})
	}
}

// muxOpts is the standard replica handler configuration for tests:
// metrics on, no admission limit (admission-specific tests build their
// own).
func muxOpts() httpapi.Options {
	return httpapi.Options{Metrics: true}
}
