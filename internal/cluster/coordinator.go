package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xrank/internal/httpapi"
	"xrank/internal/obs"
	"xrank/internal/query"
)

// CoordinatorConfig describes one coordinator: the shard → replica-URL
// topology and the fault-handling knobs. Zero values select the
// defaults documented per field.
type CoordinatorConfig struct {
	// Shards lists the replica base URLs for each shard; index is the
	// shard id. Every shard needs at least one replica.
	Shards [][]string

	// Client issues replica requests (nil: http.DefaultClient). Tests
	// inject clients with DisableKeepAlives so chaos schedules see one
	// connection per request.
	Client *http.Client

	// ReplicaTimeout bounds one replica attempt (default 2s). It is
	// also forwarded to the replica as timeout_ms so the shard engine
	// self-cancels instead of burning I/O on an abandoned request.
	ReplicaTimeout time.Duration

	// Retries is the number of extra passes over a shard's admitted
	// replica list after the first (default 1; negative: none).
	Retries int

	// RetryBackoff is the base of the full-jitter exponential backoff
	// between attempts, sharing query.JitterBackoff's cap semantics:
	// attempt k waits uniform in [0, base<<k] (default 2ms).
	RetryBackoff time.Duration

	// RetrySeed makes backoff waits reproducible; 0 means seed 1,
	// matching the engine's shard-retry convention.
	RetrySeed int64

	// FailureThreshold opens a replica's breaker after this many
	// consecutive failed attempts (default 3 — the engine's
	// ShardFailureThreshold default).
	FailureThreshold int

	// ProbeInterval spaces half-open trials against an open breaker;
	// 0 keeps breakers sticky-open until Reset.
	ProbeInterval time.Duration

	// HedgeDelay controls hedged second requests on a shard's first
	// attempt: >0 is a fixed delay, 0 derives the delay from the p99 of
	// recent winning latencies, negative disables hedging.
	HedgeDelay time.Duration

	// FailOnDegraded answers 503 instead of serving a partial merge
	// when at least one shard is down, mirroring the engine option.
	FailOnDegraded bool

	// Metrics mounts /metrics on the coordinator handler.
	Metrics bool

	// Now is the breaker clock (nil: time.Now). Injectable for tests.
	Now func() time.Time
}

// coordinator defaults.
const (
	defaultReplicaTimeout   = 2 * time.Second
	defaultRetries          = 1
	defaultRetryBackoff     = 2 * time.Millisecond
	defaultFailureThreshold = 3
	defaultHedgeDelay       = 50 * time.Millisecond // until the digest has samples
	minHedgeDelay           = time.Millisecond
)

// Coordinator fans /api/search out to one replica per shard and merges
// the per-shard pages into a global top-m. See the package comment for
// the fault model.
type Coordinator struct {
	cfg        CoordinatorConfig
	client     *http.Client
	placements [][]string // per shard, rendezvous order
	breaker    *Breaker
	digest     *latencyDigest
	reg        *obs.Registry

	requests     *obs.Counter
	reqErrors    *obs.Counter
	degradedTot  *obs.Counter
	attempts     *obs.Counter
	failures     *obs.Counter
	retries      *obs.Counter
	probes       *obs.Counter
	backpressure *obs.Counter
	hedges       *obs.Counter
	hedgeWins    *obs.Counter
	openGauge    *obs.Gauge
}

// NewCoordinator validates the topology and builds a coordinator.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard")
	}
	for s, reps := range cfg.Shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", s)
		}
	}
	if cfg.ReplicaTimeout <= 0 {
		cfg.ReplicaTimeout = defaultReplicaTimeout
	}
	if cfg.Retries == 0 {
		cfg.Retries = defaultRetries
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = defaultRetryBackoff
	}
	if cfg.RetrySeed == 0 {
		cfg.RetrySeed = 1
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = defaultFailureThreshold
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	placements := make([][]string, len(cfg.Shards))
	for s, reps := range cfg.Shards {
		placements[s] = PlacementOrder(s, reps)
	}
	reg := obs.NewRegistry()
	c := &Coordinator{
		cfg:        cfg,
		client:     client,
		placements: placements,
		breaker:    NewBreaker(cfg.FailureThreshold, cfg.ProbeInterval, cfg.Now),
		digest:     newLatencyDigest(),
		reg:        reg,

		requests:     reg.Counter("xrank_coord_requests_total", "Search requests the coordinator accepted for fan-out."),
		reqErrors:    reg.Counter("xrank_coord_errors_total", "Coordinator search requests that ended in a non-2xx response."),
		degradedTot:  reg.Counter("xrank_coord_degraded_total", "Coordinator responses served with at least one shard missing."),
		attempts:     reg.Counter("xrank_replica_attempts_total", "Replica requests issued (hedges included, cancelled losers excluded)."),
		failures:     reg.Counter("xrank_replica_failures_total", "Replica attempts that failed (transport error, timeout, or 5xx)."),
		retries:      reg.Counter("xrank_replica_retries_total", "Replica attempts issued after a jittered backoff wait."),
		probes:       reg.Counter("xrank_replica_probes_total", "Half-open trials admitted against open replica breakers."),
		backpressure: reg.Counter("xrank_replica_backpressure_total", "Replica attempts answered 429/503/504 (failover without a breaker charge)."),
		hedges:       reg.Counter("xrank_hedged_requests_total", "Hedged second requests issued after the hedge delay."),
		hedgeWins:    reg.Counter("xrank_hedge_wins_total", "Hedged requests whose second attempt produced the winning response."),
		openGauge:    reg.Gauge("xrank_replica_open", "Replicas with an open circuit breaker."),
	}
	return c, nil
}

// Metrics returns the coordinator's registry.
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// Breaker exposes the replica breaker (operator reset, tests).
func (c *Coordinator) Breaker() *Breaker { return c.breaker }

// wireResult mirrors xrank.SearchResult's JSON encoding; the
// coordinator re-emits the fields verbatim after the merge.
type wireResult struct {
	DeweyID string
	Score   float64
	Doc     string
	Path    string
	Tag     string
	Snippet string
}

// shardPage is the subset of a shard's /api/search response the
// coordinator consumes.
type shardPage struct {
	Results   []wireResult `json:"results"`
	IOReads   int64        `json:"io_reads"`
	CacheHits int64        `json:"cache_hits"`
	Degraded  bool         `json:"degraded"`
	Algorithm string       `json:"algorithm"`
}

// attempt classification.
type attemptClass int

const (
	classSuccess attemptClass = iota
	classBackpressure             // 429/503/504: alive, failover without breaker charge
	classFailure                  // transport error, timeout, 5xx, bad payload
	classCanceled                 // hedge loser or dying request: no accounting
)

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	class      attemptClass
	page       *shardPage
	status     int
	retryAfter string
	body       []byte
	err        error
	latency    time.Duration
	url        string
	hedged     bool // produced by the hedge branch
}

// backpressureStatus reports whether an HTTP status means "alive but
// shedding": the replica answered, so failing over is right and
// charging the breaker is wrong.
func backpressureStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// doAttempt issues one replica request. It classifies but does not
// account — accounting is centralized in issueAccounted so a cancelled
// hedge loser can be discarded without touching breaker or metrics.
func (c *Coordinator) doAttempt(ctx context.Context, shard int, replica string, params url.Values) attemptResult {
	timeout := c.cfg.ReplicaTimeout
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < timeout {
			timeout = rem
		}
	}
	if timeout <= 0 {
		return attemptResult{class: classCanceled, err: ctx.Err(), url: replica}
	}
	p := url.Values{}
	for k, vs := range params {
		p[k] = vs
	}
	p.Set("shard", strconv.Itoa(shard))
	p.Set("timeout_ms", strconv.FormatInt(int64(timeout/time.Millisecond)+1, 10))
	u := strings.TrimSuffix(replica, "/") + "/internal/shard/search?" + p.Encode()
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, u, nil)
	if err != nil {
		return attemptResult{class: classFailure, err: err, url: replica}
	}
	t0 := time.Now()
	resp, err := c.client.Do(req)
	lat := time.Since(t0)
	if err != nil {
		if ctx.Err() != nil {
			// The parent was cancelled — a hedge winner elsewhere or a
			// dying request, not a replica fault.
			return attemptResult{class: classCanceled, err: err, latency: lat, url: replica}
		}
		return attemptResult{class: classFailure, err: err, latency: lat, url: replica}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var page shardPage
		if derr := json.NewDecoder(resp.Body).Decode(&page); derr != nil {
			return attemptResult{class: classFailure, status: resp.StatusCode,
				err: fmt.Errorf("shard %d via %s: bad payload: %w", shard, replica, derr), latency: lat, url: replica}
		}
		return attemptResult{class: classSuccess, page: &page, status: resp.StatusCode, latency: lat, url: replica}
	case backpressureStatus(resp.StatusCode):
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return attemptResult{class: classBackpressure, status: resp.StatusCode,
			retryAfter: resp.Header.Get("Retry-After"), body: body,
			err:     fmt.Errorf("shard %d via %s: %s", shard, replica, resp.Status),
			latency: lat, url: replica}
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return attemptResult{class: classFailure, status: resp.StatusCode,
			err: fmt.Errorf("shard %d via %s: %s: %s", shard, replica, resp.Status,
				strings.TrimSpace(string(body))),
			latency: lat, url: replica}
	}
}

// issueAccounted runs one attempt and applies exactly-once accounting:
// breaker transitions, attempt/failure/backpressure counters and the
// latency digest. A classCanceled result touches none of them.
func (c *Coordinator) issueAccounted(ctx context.Context, shard int, replica string, params url.Values) attemptResult {
	res := c.doAttempt(ctx, shard, replica, params)
	switch res.class {
	case classCanceled:
		return res
	case classSuccess:
		c.attempts.Inc()
		c.breaker.Success(replica)
		c.digest.observe(res.latency)
	case classBackpressure:
		c.attempts.Inc()
		c.backpressure.Inc()
		// Alive and answering: a shedding replica closes its breaker.
		c.breaker.Success(replica)
	case classFailure:
		c.attempts.Inc()
		c.failures.Inc()
		c.breaker.Failure(replica, res.err)
	}
	c.openGauge.Set(int64(c.breaker.OpenCount()))
	return res
}

// hedgeDelay resolves the configured hedging policy to a concrete
// delay; ok=false disables hedging.
func (c *Coordinator) hedgeDelay() (time.Duration, bool) {
	switch {
	case c.cfg.HedgeDelay < 0:
		return 0, false
	case c.cfg.HedgeDelay > 0:
		return c.cfg.HedgeDelay, true
	}
	d, ok := c.digest.quantile(0.99)
	if !ok {
		d = defaultHedgeDelay
	}
	if max := c.cfg.ReplicaTimeout / 2; d > max {
		d = max
	}
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	return d, true
}

// hedgedIssue races a primary attempt against a delayed secondary.
// Each branch runs under its own cancellable context and accounts for
// itself through issueAccounted; when one branch wins the other is
// cancelled and — arriving as classCanceled — discarded unaccounted.
// Preference order when both complete: success > backpressure >
// failure, so a slow success still beats a fast shed.
func (c *Coordinator) hedgedIssue(ctx context.Context, shard int, primary, secondary string, delay time.Duration, params url.Values) attemptResult {
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	ch := make(chan attemptResult, 2)
	go func() { ch <- c.issueAccounted(pctx, shard, primary, params) }()

	timer := time.NewTimer(delay)
	defer timer.Stop()
	var scancel context.CancelFunc
	launched := false
	outstanding := 1
	var best *attemptResult
	better := func(a, b *attemptResult) *attemptResult {
		if b == nil || a.class < b.class {
			return a
		}
		return b
	}
	for outstanding > 0 {
		select {
		case res := <-ch:
			outstanding--
			if res.class == classSuccess {
				pcancel()
				if scancel != nil {
					scancel()
				}
				if res.hedged {
					c.hedgeWins.Inc()
				}
				return res
			}
			if res.class != classCanceled {
				best = better(&res, best)
			}
			if outstanding == 0 && !launched {
				// Primary failed before the hedge fired: hand the failure to
				// the caller's retry loop instead of hedging a lost cause.
				return res
			}
		case <-timer.C:
			if !launched && ctx.Err() == nil {
				launched = true
				var sctx context.Context
				sctx, scancel = context.WithCancel(ctx)
				defer scancel()
				outstanding++
				c.hedges.Inc()
				go func() {
					r := c.issueAccounted(sctx, shard, secondary, params)
					r.hedged = true
					ch <- r
				}()
			}
		}
	}
	if best != nil {
		return *best
	}
	return attemptResult{class: classCanceled, err: ctx.Err()}
}

// shardOutcome is one shard's contribution to the merge.
type shardOutcome struct {
	shard        int
	page         *shardPage
	err          error
	backpressure *attemptResult // last 429/503/504, for passthrough
}

// queryShard walks the shard's breaker-admitted replicas in placement
// order — hedging the first attempt, backing off with seeded full
// jitter between the rest — until one attempt succeeds or the attempt
// budget is spent.
func (c *Coordinator) queryShard(ctx context.Context, shard int, params url.Values) shardOutcome {
	out := shardOutcome{shard: shard}
	var cands []string
	for _, u := range c.placements[shard] {
		ok, probe := c.breaker.Allow(u)
		if !ok {
			continue
		}
		if probe {
			c.probes.Inc()
		}
		cands = append(cands, u)
	}
	if len(cands) == 0 {
		out.err = fmt.Errorf("shard %d: all %d replicas have open breakers", shard, len(c.placements[shard]))
		return out
	}
	rng := rand.New(rand.NewSource(c.cfg.RetrySeed + int64(shard)*1315423911))
	maxAttempts := len(cands) * (1 + c.cfg.Retries)
	delay, hedge := c.hedgeDelay()
	for i := 0; i < maxAttempts; i++ {
		if ctx.Err() != nil {
			out.err = ctx.Err()
			return out
		}
		if i > 0 {
			wait := query.JitterBackoff(rng, c.cfg.RetryBackoff, i-1)
			if wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					out.err = ctx.Err()
					return out
				}
			}
			c.retries.Inc()
		}
		var res attemptResult
		if i == 0 && hedge && len(cands) > 1 {
			res = c.hedgedIssue(ctx, shard, cands[0], cands[1], delay, params)
		} else {
			res = c.issueAccounted(ctx, shard, cands[i%len(cands)], params)
		}
		switch res.class {
		case classSuccess:
			out.page = res.page
			return out
		case classCanceled:
			out.err = ctx.Err()
			if out.err == nil {
				out.err = res.err
			}
			return out
		case classBackpressure:
			bp := res
			out.backpressure = &bp
			out.err = res.err
		case classFailure:
			out.err = res.err
		}
	}
	return out
}

// deweyLess orders dotted Dewey IDs numerically component by
// component, mirroring the engine's merge order.
func deweyLess(a, b string) bool {
	as, bs := strings.Split(a, "."), strings.Split(b, ".")
	for i := 0; i < len(as) && i < len(bs); i++ {
		ai, aerr := strconv.Atoi(as[i])
		bi, berr := strconv.Atoi(bs[i])
		if aerr != nil || berr != nil {
			if as[i] != bs[i] {
				return as[i] < bs[i]
			}
			continue
		}
		if ai != bi {
			return ai < bi
		}
	}
	return len(as) < len(bs)
}

// mergeResults composes per-shard top-m pages into the global top-m.
// Shard-invariant scoring makes this exact: every global top-m element
// is in its shard's local top-m. The order — score descending, then
// document name, then Dewey ID — is total and replica-independent, so
// which replica answered never changes a byte of the response.
func mergeResults(pages []*shardPage, m int) []wireResult {
	var all []wireResult
	for _, p := range pages {
		all = append(all, p.Results...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		if all[i].Doc != all[j].Doc {
			return all[i].Doc < all[j].Doc
		}
		return deweyLess(all[i].DeweyID, all[j].DeweyID)
	})
	if len(all) > m {
		all = all[:m]
	}
	if all == nil {
		all = []wireResult{}
	}
	return all
}

// Handler builds the coordinator's HTTP surface: /api/search,
// /api/cluster (topology + breaker health), /internal/health, and —
// with cfg.Metrics — /metrics.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/search", c.serveSearch)
	mux.HandleFunc("/api/cluster", func(w http.ResponseWriter, r *http.Request) {
		shards := make([]map[string]interface{}, len(c.placements))
		for s, reps := range c.placements {
			shards[s] = map[string]interface{}{
				"shard":    s,
				"replicas": c.breaker.Health(reps),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"num_shards": len(c.placements),
			"shards":     shards,
		})
	})
	mux.HandleFunc("/internal/health", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"status":     "ok",
			"num_shards": len(c.placements),
		})
	})
	if c.cfg.Metrics {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			c.reg.WritePrometheus(w)
		})
	}
	return mux
}

// serveSearch validates exactly what the single-node handler
// validates, fans out, merges, and answers with the single-node
// response shape (plus the same degraded/failed_shards markers).
func (c *Coordinator) serveSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, `missing "q" parameter`, http.StatusBadRequest)
		return
	}
	m := 10
	if ms := r.URL.Query().Get("m"); ms != "" {
		v, err := strconv.Atoi(ms)
		if err != nil || v < 1 || v > 1000 {
			http.Error(w, `bad "m" parameter`, http.StatusBadRequest)
			return
		}
		m = v
	}
	algoName := "HDIL"
	if as := r.URL.Query().Get("algo"); as != "" {
		a, err := httpapi.ParseAlgo(as)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		algoName = a.String()
	}
	ctx := r.Context()
	if ts := r.URL.Query().Get("timeout_ms"); ts != "" {
		v, err := strconv.Atoi(ts)
		if err != nil || v < 1 {
			http.Error(w, `bad "timeout_ms" parameter`, http.StatusBadRequest)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(v)*time.Millisecond)
		defer cancel()
	}
	params := url.Values{}
	params.Set("q", q)
	params.Set("m", strconv.Itoa(m))
	if as := r.URL.Query().Get("algo"); as != "" {
		params.Set("algo", as)
	}
	if bs := r.URL.Query().Get("budget"); bs != "" {
		if v, err := strconv.ParseInt(bs, 10, 64); err != nil || v < 1 {
			http.Error(w, `bad "budget" parameter`, http.StatusBadRequest)
			return
		}
		params.Set("budget", bs)
	}
	c.requests.Inc()
	t0 := time.Now()

	outcomes := make([]shardOutcome, len(c.placements))
	var wg sync.WaitGroup
	for s := range c.placements {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			outcomes[s] = c.queryShard(ctx, s, params)
		}(s)
	}
	wg.Wait()

	var pages []*shardPage
	var failed []int
	var firstBP *attemptResult
	innerDegraded := false
	var ioReads, cacheHits int64
	for _, o := range outcomes {
		if o.page != nil {
			pages = append(pages, o.page)
			ioReads += o.page.IOReads
			cacheHits += o.page.CacheHits
			if o.page.Degraded {
				// The replica itself served a partial answer (local device
				// trouble): the cluster response is degraded too.
				innerDegraded = true
			}
			continue
		}
		failed = append(failed, o.shard)
		if o.backpressure != nil && firstBP == nil {
			firstBP = o.backpressure
		}
	}
	sort.Ints(failed)

	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		c.reqErrors.Inc()
		http.Error(w, "cluster: request timed out", http.StatusGatewayTimeout)
		return
	}
	if len(pages) == 0 {
		c.reqErrors.Inc()
		if firstBP != nil {
			// Every shard is alive but shedding: pass the backpressure
			// through so clients keep their retry discipline.
			ra := firstBP.retryAfter
			if ra == "" {
				ra = "1"
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", ra)
			w.WriteHeader(firstBP.status)
			if len(firstBP.body) > 0 {
				w.Write(firstBP.body)
			} else {
				json.NewEncoder(w).Encode(map[string]interface{}{"error": firstBP.err.Error()})
			}
			return
		}
		msgs := make([]string, 0, len(outcomes))
		for _, o := range outcomes {
			if o.err != nil {
				msgs = append(msgs, o.err.Error())
			}
		}
		http.Error(w, "cluster: all shards failed: "+strings.Join(msgs, "; "), http.StatusBadGateway)
		return
	}
	degraded := innerDegraded || len(failed) > 0
	if degraded {
		c.degradedTot.Inc()
		if c.cfg.FailOnDegraded {
			c.reqErrors.Inc()
			http.Error(w, fmt.Sprintf("cluster: degraded results refused (failed shards %v)", failed),
				http.StatusServiceUnavailable)
			return
		}
	}
	results := mergeResults(pages, m)
	algorithm := algoName
	for _, p := range pages {
		if p.Algorithm != "" {
			algorithm = p.Algorithm
			break
		}
	}
	wall := time.Since(t0)
	c.reg.Histogram("xrank_coord_latency_seconds",
		"End-to-end wall time of successful coordinator searches.",
		obs.DefaultLatencyBuckets()).Observe(wall.Seconds())
	w.Header().Set("Content-Type", "application/json")
	resp := map[string]interface{}{
		"query":      q,
		"algorithm":  algorithm,
		"wall_us":    wall.Microseconds(),
		"io_reads":   ioReads,
		"cache_hits": cacheHits,
		"shards":     len(c.placements),
		"degraded":   degraded,
		"results":    results,
	}
	if degraded {
		resp["failed_shards"] = failed
	}
	json.NewEncoder(w).Encode(resp)
}
