package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"xrank"
	"xrank/internal/httpapi"
)

// ShardServer hosts one or more shard replicas in a single process.
// Each shard is a complete engine directory mounted behind its own
// internal/httpapi handler stack — admission control, Server-Timing,
// error statuses and metrics are byte-for-byte the single-node serving
// path, which is what makes coordinator-level accounting tests
// meaningful. On top of that it adds the cluster-internal surface:
//
//	/internal/shard/search?shard=N&...  — /api/search of shard N
//	/internal/health                    — liveness + hosted shard set
//	/internal/snapshot?shard=N          — snapshot manifest
//	/internal/snapshot/file?shard=N&path=P&offset=K — ranged file bytes
//
// The lowest-numbered hosted shard is additionally mounted at "/", so
// a single-shard replica behaves exactly like `xrank serve` for
// clients (and for xrank-loadgen) that talk to it directly.
type ShardServer struct {
	shards map[int]*shardMount
}

type shardMount struct {
	engine *xrank.Engine
	dir    string
	mux    http.Handler
}

// NewShardServer returns an empty server; Mount each hosted shard,
// then serve Handler.
func NewShardServer() *ShardServer {
	return &ShardServer{shards: make(map[int]*shardMount)}
}

// Mount registers one hosted shard: its engine, the directory the
// engine was opened from (served as the snapshot source), and the
// httpapi options its handler stack runs with.
func (s *ShardServer) Mount(id int, e *xrank.Engine, dir string, opts httpapi.Options) error {
	if id < 0 {
		return fmt.Errorf("cluster: shard id %d out of range", id)
	}
	if _, dup := s.shards[id]; dup {
		return fmt.Errorf("cluster: shard %d mounted twice", id)
	}
	s.shards[id] = &shardMount{engine: e, dir: dir, mux: httpapi.NewMux(e, opts)}
	return nil
}

// ShardIDs returns the hosted shard ids in ascending order.
func (s *ShardServer) ShardIDs() []int {
	ids := make([]int, 0, len(s.shards))
	for id := range s.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Engine returns the engine hosting shard id, or nil.
func (s *ShardServer) Engine(id int) *xrank.Engine {
	if m := s.shards[id]; m != nil {
		return m.engine
	}
	return nil
}

// lookup resolves the shard query parameter (defaulting to the lowest
// hosted shard when absent).
func (s *ShardServer) lookup(r *http.Request) (int, *shardMount, error) {
	ids := s.ShardIDs()
	if len(ids) == 0 {
		return 0, nil, fmt.Errorf("no shards mounted")
	}
	id := ids[0]
	if qs := r.URL.Query().Get("shard"); qs != "" {
		v, err := strconv.Atoi(qs)
		if err != nil {
			return 0, nil, fmt.Errorf("bad \"shard\" parameter")
		}
		id = v
	}
	m := s.shards[id]
	if m == nil {
		return 0, nil, fmt.Errorf("shard %d not hosted here (have %v)", id, ids)
	}
	return id, m, nil
}

// Handler builds the replica's full HTTP surface.
func (s *ShardServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/internal/shard/search", func(w http.ResponseWriter, r *http.Request) {
		_, m, err := s.lookup(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		// Delegate into the shard's own httpapi mux by path rewrite: the
		// admission gate, Server-Timing header and error-status mapping
		// all apply to internal traffic exactly as to external traffic.
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/api/search"
		m.mux.ServeHTTP(w, r2)
	})
	mux.HandleFunc("/internal/health", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"status": "ok",
			"shards": s.ShardIDs(),
		})
	})
	mux.HandleFunc("/internal/snapshot", func(w http.ResponseWriter, r *http.Request) {
		id, m, err := s.lookup(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if m.dir == "" {
			http.Error(w, "shard has no snapshot directory", http.StatusNotFound)
			return
		}
		man, err := buildManifest(id, m.dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(man)
	})
	mux.HandleFunc("/internal/snapshot/file", func(w http.ResponseWriter, r *http.Request) {
		_, m, err := s.lookup(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if m.dir == "" {
			http.Error(w, "shard has no snapshot directory", http.StatusNotFound)
			return
		}
		serveSnapshotFile(w, r, m.dir)
	})
	if ids := s.ShardIDs(); len(ids) > 0 {
		mux.Handle("/", s.shards[ids[0]].mux)
	}
	return mux
}
