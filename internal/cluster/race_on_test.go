//go:build race

package cluster

// raceEnabled reports whether the race detector is compiled in. The
// SLO acceptance test keys off it: its shedding dynamics depend on real
// wall-clock replica timeouts, which the detector's slowdown distorts
// past the point of measuring anything.
const raceEnabled = true
