package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"xrank"
	"xrank/internal/httpapi"
)

// Test harness: build per-shard engine directories, serve them behind
// ShardServer instances (optionally through chaos proxies), and stand
// up coordinators over the resulting topology. HTTP clients disable
// keep-alives so each request opens one proxied connection, which is
// what makes chaos schedules (indexed by connection) deterministic.

// clusterCorpus gives every document the shared term "common" plus
// shard- and doc-unique tokens, with enough body that a mid-file
// connection reset during snapshot shipping leaves a useful partial.
func clusterCorpus(shard, n int) map[string]string {
	docs := make(map[string]string)
	for i := 0; i < n; i++ {
		var pad strings.Builder
		for j := 0; j < 300; j++ {
			fmt.Fprintf(&pad, "<i>filler s%dd%dw%d</i>", shard, i, j)
		}
		docs[fmt.Sprintf("s%dd%d.xml", shard, i)] = fmt.Sprintf(
			`<r><t>common shared term token%d</t><p>unique shard%d doc%d</p>%s</r>`,
			i, shard, i, pad.String())
	}
	return docs
}

// buildShardDir builds one engine over docs into a fresh directory and
// closes it; replicas reopen the directory read-only.
func buildShardDir(t *testing.T, docs map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	e := xrank.NewEngine(&xrank.Config{IndexDir: dir})
	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := e.AddXML(name, strings.NewReader(docs[name])); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// startReplica opens every given shard directory into one ShardServer
// process and serves it on a loopback listener.
func startReplica(t *testing.T, dirs map[int]string, opts httpapi.Options) *httptest.Server {
	t.Helper()
	srv := NewShardServer()
	for id, dir := range dirs {
		e, err := xrank.OpenEngine(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		if err := srv.Mount(id, e, dir, opts); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// proxied wraps a replica server in a chaos proxy (initially passing).
func proxied(t *testing.T, ts *httptest.Server) *ChaosProxy {
	t.Helper()
	p, err := NewChaosProxy(strings.TrimPrefix(ts.URL, "http://"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// serialClient issues one connection per request (no keep-alive), so
// request k is the proxy's connection k.
func serialClient() *http.Client {
	return &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
}

// startCoordinator builds a fresh coordinator (fresh breakers) over the
// topology and serves it.
func startCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Client == nil {
		cfg.Client = serialClient()
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

// get fetches a URL and returns status, headers and body.
func get(t *testing.T, client *http.Client, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

// searchJSON decodes a search response body into its top-level keys,
// keeping values raw so tests can compare them byte-for-byte.
func searchJSON(t *testing.T, body []byte) map[string]json.RawMessage {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad search response %q: %v", body, err)
	}
	return m
}

// results extracts the raw "results" array for bit-identical
// comparisons (wall_us and friends are nondeterministic; the ranked
// answer must not be).
func results(t *testing.T, body []byte) string {
	t.Helper()
	r, ok := searchJSON(t, body)["results"]
	if !ok {
		t.Fatalf("search response without results: %s", body)
	}
	return string(r)
}

// metricValue parses one label-free series out of a registry's
// Prometheus exposition.
func metricValue(t *testing.T, write func(io.Writer) error, name string) int64 {
	t.Helper()
	var sb strings.Builder
	if err := write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%d", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// fakeClock is an injectable breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
