package cluster

import (
	"io"
	"net"
	"sync"
	"time"
)

// ChaosMode is the fault one proxied connection experiences.
type ChaosMode int

const (
	// ChaosPass relays the connection untouched.
	ChaosPass ChaosMode = iota
	// ChaosRefuse closes the accepted connection immediately — the
	// client sees a connection that dies before a byte arrives.
	ChaosRefuse
	// ChaosBlackhole accepts and then neither reads nor writes until
	// the proxy closes; the client's timeout is the only way out.
	ChaosBlackhole
	// ChaosReset relays the request upstream but cuts the connection
	// (RST via SO_LINGER 0) after a fixed prefix of the response, so
	// the client fails mid-body.
	ChaosReset
	// ChaosSlow delays the relay by the proxy's slow delay, then
	// passes — the replica answers correctly but late, the shape that
	// hedging exists for.
	ChaosSlow
)

// ChaosProxy is a deterministic TCP fault injector in front of one
// replica. The fault schedule is indexed by accepted-connection count:
// connection k gets schedule[k % len(schedule)] (an empty schedule
// passes everything). With an HTTP client that disables keep-alives
// and issues requests serially, request k maps to connection k, which
// is what makes cluster fault-matrix tests reproducible.
type ChaosProxy struct {
	ln     net.Listener
	target string

	mu       sync.Mutex
	schedule []ChaosMode
	accepted int
	conns    map[net.Conn]struct{}

	// SlowDelay is ChaosSlow's added latency (default 100ms) and
	// ResetAfter the response-byte prefix ChaosReset relays before
	// cutting (default 64). Set both before the first connection.
	SlowDelay  time.Duration
	ResetAfter int64

	closed chan struct{}
	wg     sync.WaitGroup
}

// NewChaosProxy listens on a fresh loopback port and forwards to
// target ("host:port") under the given schedule.
func NewChaosProxy(target string, schedule []ChaosMode) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{
		ln:         ln,
		target:     target,
		schedule:   append([]ChaosMode(nil), schedule...),
		conns:      make(map[net.Conn]struct{}),
		SlowDelay:  100 * time.Millisecond,
		ResetAfter: 64,
		closed:     make(chan struct{}),
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address ("127.0.0.1:port").
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL for HTTP clients.
func (p *ChaosProxy) URL() string { return "http://" + p.Addr() }

// SetSchedule swaps the fault schedule and restarts the connection
// counter, so a test can re-aim faults mid-run deterministically.
func (p *ChaosProxy) SetSchedule(schedule []ChaosMode) {
	p.mu.Lock()
	p.schedule = append([]ChaosMode(nil), schedule...)
	p.accepted = 0
	p.mu.Unlock()
}

// Accepted returns how many connections the proxy has accepted.
func (p *ChaosProxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// Close stops the listener and tears down every live connection
// (releasing any black-holed clients).
func (p *ChaosProxy) Close() {
	select {
	case <-p.closed:
		return
	default:
	}
	close(p.closed)
	p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *ChaosProxy) serve() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		mode := ChaosPass
		if len(p.schedule) > 0 {
			mode = p.schedule[p.accepted%len(p.schedule)]
		}
		p.accepted++
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn, mode)
			p.mu.Lock()
			delete(p.conns, conn)
			p.mu.Unlock()
		}()
	}
}

func (p *ChaosProxy) handle(client net.Conn, mode ChaosMode) {
	defer client.Close()
	switch mode {
	case ChaosRefuse:
		rst(client)
		return
	case ChaosBlackhole:
		<-p.closed
		return
	case ChaosSlow:
		t := time.NewTimer(p.SlowDelay)
		select {
		case <-t.C:
		case <-p.closed:
			t.Stop()
			return
		}
	}
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer upstream.Close()
	p.mu.Lock()
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, upstream)
		p.mu.Unlock()
	}()

	done := make(chan struct{}, 2)
	go func() {
		io.Copy(upstream, client)
		done <- struct{}{}
	}()
	if mode == ChaosReset {
		io.CopyN(client, upstream, p.ResetAfter)
		rst(client)
		upstream.Close()
		<-done
		return
	}
	go func() {
		io.Copy(client, upstream)
		done <- struct{}{}
	}()
	// Either direction closing ends the relay; Close on both conns
	// unblocks the other copy.
	select {
	case <-done:
	case <-p.closed:
	}
}

// rst closes a TCP connection abruptly (linger 0 → RST) so the peer
// sees a reset rather than an orderly FIN.
func rst(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}
