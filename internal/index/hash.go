package index

import (
	"encoding/binary"
	"fmt"

	"xrank/internal/storage"
)

// Static disk-resident hash tables over element IDs, one per term: the
// random-lookup index of Naive-Rank (Section 5.1: "Naive-Rank has a hash
// index built on the ID field for random equality lookups"). Each slot
// maps an element ID to the location of that element's entry in the
// term's rank-ordered naive list.
//
// Layout: a table of nSlots 12-byte slots with linear probing at a load
// factor <= 2/3. Small tables are packed into shared pages (like small
// B+-trees); large tables are page-aligned, slotsPerPage slots per page,
// so a slot never spans pages.

const (
	hashSlotSize   = 12
	slotsPerPage   = storage.PageSize / hashSlotSize
	hashAlignedOff = 0xFFFF // HashMeta.Off sentinel for page-aligned tables
	slotOccupied   = 1
)

type hashEntry struct {
	elem int32
	page storage.PageID
	off  uint16
}

func hashSlotFor(elem int32, nSlots uint32) uint32 {
	return uint32(uint64(uint32(elem))*2654435761%uint64(nSlots)) % nSlots
}

func putSlot(tab []byte, s uint32, e hashEntry) {
	p := s * hashSlotSize
	binary.LittleEndian.PutUint32(tab[p:], uint32(e.elem))
	binary.LittleEndian.PutUint32(tab[p+4:], uint32(e.page))
	binary.LittleEndian.PutUint16(tab[p+8:], e.off)
	binary.LittleEndian.PutUint16(tab[p+10:], slotOccupied)
}

// hashBuilder packs hash tables into a PageFile.
type hashBuilder struct {
	pf   *storage.PageFile
	page []byte
	used int
}

func newHashBuilder(pf *storage.PageFile) *hashBuilder {
	return &hashBuilder{pf: pf, page: make([]byte, storage.PageSize)}
}

// build writes a table for the given entries and returns its metadata.
func (hb *hashBuilder) build(entries []hashEntry) (HashMeta, error) {
	n := uint32(len(entries))
	nSlots := n + n/2 + 2 // load factor <= 2/3
	tab := make([]byte, nSlots*hashSlotSize)
	for _, e := range entries {
		s := hashSlotFor(e.elem, nSlots)
		for binary.LittleEndian.Uint16(tab[s*hashSlotSize+10:]) == slotOccupied {
			s = (s + 1) % nSlots
		}
		putSlot(tab, s, e)
	}
	if len(tab) <= storage.PageSize-hb.used {
		// Pack into the shared page.
		meta := HashMeta{Page: storage.PageID(hb.pf.NumPages()), Off: uint16(hb.used), NSlots: nSlots}
		copy(hb.page[hb.used:], tab)
		hb.used += len(tab)
		return meta, nil
	}
	if len(tab) <= storage.PageSize {
		// Fits a page but not the current one: flush and retry cleanly.
		if err := hb.flushShared(); err != nil {
			return HashMeta{}, err
		}
		return hb.build(entries)
	}
	// Page-aligned multi-page table.
	if err := hb.flushShared(); err != nil {
		return HashMeta{}, err
	}
	meta := HashMeta{Page: storage.PageID(hb.pf.NumPages()), Off: hashAlignedOff, NSlots: nSlots}
	pageBuf := make([]byte, storage.PageSize)
	for s := uint32(0); s < nSlots; s += slotsPerPage {
		end := s + slotsPerPage
		if end > nSlots {
			end = nSlots
		}
		for i := range pageBuf {
			pageBuf[i] = 0
		}
		copy(pageBuf, tab[s*hashSlotSize:end*hashSlotSize])
		if _, err := hb.pf.AppendPage(pageBuf); err != nil {
			return HashMeta{}, err
		}
	}
	return meta, nil
}

func (hb *hashBuilder) flushShared() error {
	if hb.used == 0 {
		return nil
	}
	for i := hb.used; i < storage.PageSize; i++ {
		hb.page[i] = 0
	}
	if _, err := hb.pf.AppendPage(hb.page); err != nil {
		return err
	}
	hb.used = 0
	return nil
}

// flush writes out any pending shared page.
func (hb *hashBuilder) flush() error { return hb.flushShared() }

// hashLookup probes the table for elem, returning the location of its
// entry in the postings file. Slot-page fetches are attributed to ec
// (nil for no per-query accounting).
func hashLookup(ec *storage.ExecContext, pool *storage.BufferPool, meta HashMeta, elem int32) (page storage.PageID, off uint16, ok bool, err error) {
	if meta.NSlots == 0 {
		return 0, 0, false, nil
	}
	s := hashSlotFor(elem, meta.NSlots)
	for probes := uint32(0); probes < meta.NSlots; probes++ {
		var slotPage storage.PageID
		var slotOff uint32
		if meta.Off == hashAlignedOff {
			slotPage = meta.Page + storage.PageID(s/slotsPerPage)
			slotOff = (s % slotsPerPage) * hashSlotSize
		} else {
			slotPage = meta.Page
			slotOff = uint32(meta.Off) + s*hashSlotSize
		}
		fr, err := pool.GetExec(ec, slotPage)
		if err != nil {
			return 0, 0, false, err
		}
		slot := fr.Data[slotOff : slotOff+hashSlotSize]
		occupied := binary.LittleEndian.Uint16(slot[10:]) == slotOccupied
		id := int32(binary.LittleEndian.Uint32(slot))
		ep := storage.PageID(binary.LittleEndian.Uint32(slot[4:]))
		eo := binary.LittleEndian.Uint16(slot[8:])
		fr.Release()
		if !occupied {
			return 0, 0, false, nil
		}
		if id == elem {
			return ep, eo, true, nil
		}
		s = (s + 1) % meta.NSlots
	}
	return 0, 0, false, fmt.Errorf("index: hash table full cycle without empty slot")
}
