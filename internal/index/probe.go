package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"xrank/internal/btree"
	"xrank/internal/dewey"
	"xrank/internal/storage"
)

// DeweyProber is the Dewey-ordered side of a ranked index: the operations
// the RDIL query algorithm (Figure 7) needs against each keyword's list.
// RDIL implements it with a per-term B+-tree whose leaves hold the
// entries; HDIL implements it with an external-leaf B+-tree over the
// shared Dewey-ordered postings file.
type DeweyProber interface {
	// ProbeLCP returns the length (in Dewey components) of the longest
	// prefix of target that is an ancestor-or-self of some entry in the
	// list (Figure 7, getLongestCommonPrefix). Zero means no overlap even
	// at document granularity.
	ProbeLCP(target dewey.ID) (int, error)
	// ScanPrefix invokes fn for each entry whose Dewey ID has the given
	// prefix, in Dewey order. The *Posting is reused across calls.
	ScanPrefix(prefix dewey.ID, fn func(p *Posting) error) error
}

// lcpAgainst returns the component-level common prefix of target and the
// entry key enc (an encoded Dewey ID).
func lcpAgainst(target dewey.ID, enc []byte, scratch *dewey.ID) (int, error) {
	id, err := dewey.DecodeInto(*scratch, enc)
	if err != nil {
		return 0, err
	}
	*scratch = id
	return dewey.CommonPrefixLen(target, id), nil
}

// RDILProber probes one term's RDIL B+-tree.
type RDILProber struct {
	tree    *btree.Tree
	scratch dewey.ID
	post    Posting
}

// RDILProber returns the prober for term; ok is false for unknown terms.
func (ix *Index) RDILProber(term string) (DeweyProber, bool) {
	return ix.RDILProberExec(nil, term)
}

// RDILProberExec is RDILProber under a per-query execution context: every
// page the probes touch is attributed to ec and honours its cancellation,
// deadline and read budget. A nil ec is RDILProber. In a block-format
// index the probes run against the DIL skip index (an in-memory binary
// search over block ranges plus at most one block decode) instead of the
// per-term B+-tree; the answers are identical because both structures
// index the same entry set.
func (ix *Index) RDILProberExec(ec *storage.ExecContext, term string) (DeweyProber, bool) {
	m, ok := ix.rdil[term]
	if !ok {
		return nil, false
	}
	if ix.blockFormat() {
		return ix.newBlockProber(ec, term), true
	}
	return &RDILProber{tree: btree.NewTreeExec(ix.rdilTreePool, m.Root, ec)}, true
}

// ProbeLCP implements DeweyProber. The successor (smallest entry >= d) and
// its predecessor are the only two candidates for the deepest ancestor
// overlap (Section 4.3.2).
func (r *RDILProber) ProbeLCP(target dewey.ID) (int, error) {
	key := dewey.Encode(target)
	best := 0
	succ, err := r.tree.Seek(key)
	if err != nil {
		return 0, err
	}
	if succ.Valid() {
		n, err := lcpAgainst(target, succ.Key(), &r.scratch)
		if err != nil {
			return 0, err
		}
		if n > best {
			best = n
		}
	}
	pred, err := r.tree.SeekBefore(key)
	if err != nil {
		return 0, err
	}
	if pred.Valid() {
		n, err := lcpAgainst(target, pred.Key(), &r.scratch)
		if err != nil {
			return 0, err
		}
		if n > best {
			best = n
		}
	}
	return best, nil
}

// ScanPrefix implements DeweyProber via a B+-tree range scan.
func (r *RDILProber) ScanPrefix(prefix dewey.ID, fn func(p *Posting) error) error {
	encPrefix := dewey.Encode(prefix)
	c, err := r.tree.Seek(encPrefix)
	if err != nil {
		return err
	}
	for c.Valid() && bytes.HasPrefix(c.Key(), encPrefix) {
		id, err := dewey.DecodeInto(r.post.ID, c.Key())
		if err != nil {
			return err
		}
		r.post.ID = id
		if err := decodeTreeValue(c.Value(), &r.post); err != nil {
			return err
		}
		if err := fn(&r.post); err != nil {
			return err
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

// HDILProber probes one term's external-leaf B+-tree, whose leaf level is
// the term's slice of the shared Dewey-ordered postings file
// (Section 4.4.1).
type HDILProber struct {
	ix      *Index
	meta    HDILMeta
	tree    *btree.Tree
	ec      *storage.ExecContext
	scratch dewey.ID
	post    Posting
	prev    dewey.ID // per-page compression chain during scans
}

// HDILProber returns the prober for term; ok is false for unknown terms.
func (ix *Index) HDILProber(term string) (DeweyProber, bool) {
	return ix.HDILProberExec(nil, term)
}

// HDILProberExec is HDILProber under a per-query execution context: tree
// descents and leaf-page scans are attributed to ec and honour its
// cancellation, deadline and read budget. A nil ec is HDILProber. In a
// block-format index HDIL shares the DIL skip-index prober with RDIL
// (the external-leaf B+-tree cannot walk block pages entry-wise, and the
// skip index answers the same probes from memory).
func (ix *Index) HDILProberExec(ec *storage.ExecContext, term string) (DeweyProber, bool) {
	m, ok := ix.hdil[term]
	if !ok {
		return nil, false
	}
	if ix.blockFormat() {
		return ix.newBlockProber(ec, term), true
	}
	return &HDILProber{ix: ix, meta: m, tree: btree.NewTreeExec(ix.hdilTreePool, m.Root, ec), ec: ec}, true
}

// pageVisit receives each decoded entry during a leaf-page scan. The
// Posting is reused across calls; clone anything retained.
type pageVisit func(p *Posting) (stop bool, err error)

// scanLeafPage walks the term's entries within one postings page, calling
// visit with each decoded entry. Entries outside the term's byte range
// are never visited because the range is contiguous: the scan starts at
// the term's start offset on its first page and stops at the end offset
// on its last page. Prefix-compression chains reset per page (and the
// term's first entry is self-contained), so a mid-list page scan always
// decodes correctly.
func (h *HDILProber) scanLeafPage(page storage.PageID, visit pageVisit) (stopped bool, err error) {
	if page > h.meta.EndPage {
		return false, nil
	}
	fr, err := h.ix.dilPool.GetExec(h.ec, page)
	if err != nil {
		return false, err
	}
	defer fr.Release()
	off := 0
	if page == h.meta.DilLoc.Page {
		off = int(h.meta.DilLoc.Off)
	}
	end := storage.PageSize
	if page == h.meta.EndPage {
		end = int(h.meta.EndOff)
	}
	compressed := h.ix.Meta.CompressDewey
	h.prev = h.prev[:0]
	for off+entryLenSize <= end {
		ln := binary.LittleEndian.Uint16(fr.Data[off:])
		if ln == padEntry {
			break
		}
		start := off + entryLenSize
		stop := start + int(ln)
		if stop > storage.PageSize {
			return false, fmt.Errorf("index: corrupt entry at page %d off %d", page, off)
		}
		if stop > end {
			break
		}
		body := fr.Data[start:stop]
		if compressed {
			err = DecodeDeweyEntryCompressed(body, h.prev, &h.post)
			h.prev = append(h.prev[:0], h.post.ID...)
		} else {
			err = DecodeDeweyEntry(body, &h.post)
		}
		if err != nil {
			return false, fmt.Errorf("index: entry at page %d off %d: %w", page, off, err)
		}
		stopScan, err := visit(&h.post)
		if err != nil || stopScan {
			return stopScan, err
		}
		off = stop
	}
	return false, nil
}

// ProbeLCP implements DeweyProber: find the leaf page via the external
// B+-tree, then locate the predecessor/successor of target within the
// term's entries on that page (and, for the successor, possibly the next
// page).
func (h *HDILProber) ProbeLCP(target dewey.ID) (int, error) {
	if h.meta.DilLoc.Count == 0 {
		return 0, nil
	}
	page, ok, err := h.tree.FindLeafPage(dewey.Encode(target))
	if err != nil || !ok {
		return 0, err
	}
	var pred, succ dewey.ID
	havePred, haveSucc := false, false
	_, err = h.scanLeafPage(page, func(p *Posting) (bool, error) {
		if dewey.Compare(p.ID, target) < 0 {
			pred = append(pred[:0], p.ID...)
			havePred = true
			return false, nil
		}
		succ = append(succ[:0], p.ID...)
		haveSucc = true
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	if !haveSucc {
		// All of this page's entries precede target; the successor, if
		// any, is the first term entry on a following page.
		for next := page + 1; next <= h.meta.EndPage && !haveSucc; next++ {
			_, err = h.scanLeafPage(next, func(p *Posting) (bool, error) {
				succ = append(succ[:0], p.ID...)
				haveSucc = true
				return true, nil
			})
			if err != nil {
				return 0, err
			}
		}
	}
	best := 0
	if havePred {
		if n := dewey.CommonPrefixLen(target, pred); n > best {
			best = n
		}
	}
	if haveSucc {
		if n := dewey.CommonPrefixLen(target, succ); n > best {
			best = n
		}
	}
	return best, nil
}

// ScanPrefix implements DeweyProber by locating the first entry with the
// prefix and scanning forward across the term's postings pages.
func (h *HDILProber) ScanPrefix(prefix dewey.ID, fn func(p *Posting) error) error {
	if h.meta.DilLoc.Count == 0 {
		return nil
	}
	page, ok, err := h.tree.FindLeafPage(dewey.Encode(prefix))
	if err != nil || !ok {
		return err
	}
	done := false
	for ; page <= h.meta.EndPage && !done; page++ {
		started := false
		_, err := h.scanLeafPage(page, func(p *Posting) (bool, error) {
			if !started && dewey.Compare(p.ID, prefix) < 0 {
				return false, nil // still before the prefix range
			}
			started = true
			if !prefix.IsPrefixOf(p.ID) {
				done = true
				return true, nil
			}
			return false, fn(p)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// TotalCount returns the full list length (not just the rank prefix).
func (h *HDILProber) TotalCount() int { return int(h.meta.DilLoc.Count) }

// blockProber answers Dewey probes for one term of a block-format index
// from the DIL skip index: block ranges are located with a zero-copy
// binary search over the encoded first IDs (bytes.Compare on the
// order-preserving encoding equals dewey.Compare), and at most the one
// candidate block is decoded. RDIL and HDIL share it — the entry set is
// exactly the term's DIL list, which is what the v1 B+-trees index too.
type blockProber struct {
	pool    *storage.BufferPool
	refs    []BlockRef
	ec      *storage.ExecContext
	key     []byte
	post    Posting
	scratch dewey.ID
}

func (ix *Index) newBlockProber(ec *storage.ExecContext, term string) *blockProber {
	return &blockProber{pool: ix.dilPool, refs: ix.dilSkip[term], ec: ec}
}

// scanBlock decodes ref's block, calling visit with each entry.
func (bp *blockProber) scanBlock(ref *BlockRef, visit pageVisit) error {
	fr, body, err := blockBody(bp.pool, bp.ec, ref)
	if err != nil {
		return err
	}
	defer fr.Release()
	var rd blockReader
	if err := rd.init(body); err != nil {
		return err
	}
	if rd.n != int(ref.Count) {
		return fmt.Errorf("index: %w block at page %d off %d: %d entries, skip ref says %d",
			storage.ErrCorrupt, ref.Page, ref.Off, rd.n, ref.Count)
	}
	for {
		ok, err := rd.next(&bp.post)
		if err != nil || !ok {
			return err
		}
		stop, err := visit(&bp.post)
		if err != nil || stop {
			return err
		}
	}
}

// ProbeLCP implements DeweyProber. The candidate entries are the
// predecessor and successor of target; both live in the block whose
// first ID is the greatest one <= target, except that the successor may
// instead be the NEXT block's first ID — available from the skip index
// without decoding anything.
func (bp *blockProber) ProbeLCP(target dewey.ID) (int, error) {
	if len(bp.refs) == 0 {
		return 0, nil
	}
	bp.key = dewey.Append(bp.key[:0], target)
	i := sort.Search(len(bp.refs), func(j int) bool {
		return bytes.Compare(bp.refs[j].FirstID, bp.key) >= 0
	})
	best := 0
	if i < len(bp.refs) {
		n, err := lcpAgainst(target, bp.refs[i].FirstID, &bp.scratch)
		if err != nil {
			return 0, err
		}
		if n > best {
			best = n
		}
	}
	if i > 0 {
		// The longest common prefix with a sorted list is achieved at the
		// predecessor or successor of target; maxing over the whole
		// candidate block (stopping at the first entry >= target) covers
		// both without tracking them separately.
		err := bp.scanBlock(&bp.refs[i-1], func(p *Posting) (bool, error) {
			if n := dewey.CommonPrefixLen(target, p.ID); n > best {
				best = n
			}
			return dewey.Compare(p.ID, target) >= 0, nil
		})
		if err != nil {
			return 0, err
		}
	}
	return best, nil
}

// ScanPrefix implements DeweyProber: decode only the blocks whose
// [FirstID, LastID] range can intersect the prefix's descendant range
// (an encoded descendant always has the encoded prefix as a byte
// prefix), stopping at the first block past it.
func (bp *blockProber) ScanPrefix(prefix dewey.ID, fn func(p *Posting) error) error {
	if len(bp.refs) == 0 {
		return nil
	}
	bp.key = dewey.Append(bp.key[:0], prefix)
	i := sort.Search(len(bp.refs), func(j int) bool {
		return bytes.Compare(bp.refs[j].FirstID, bp.key) >= 0
	})
	if i > 0 {
		i--
	}
	done := false
	for ; i < len(bp.refs) && !done; i++ {
		ref := &bp.refs[i]
		if bytes.Compare(ref.LastID, bp.key) < 0 {
			continue // wholly before the prefix range
		}
		if bytes.Compare(ref.FirstID, bp.key) > 0 && !bytes.HasPrefix(ref.FirstID, bp.key) {
			break // wholly past it, as is every later block
		}
		err := bp.scanBlock(ref, func(p *Posting) (bool, error) {
			if dewey.Compare(p.ID, prefix) < 0 {
				return false, nil
			}
			if !prefix.IsPrefixOf(p.ID) {
				done = true
				return true, nil
			}
			return false, fn(p)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

var (
	_ DeweyProber = (*RDILProber)(nil)
	_ DeweyProber = (*HDILProber)(nil)
	_ DeweyProber = (*blockProber)(nil)
)
