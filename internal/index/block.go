package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"xrank/internal/dewey"
	"xrank/internal/storage"
)

// Block-encoded postings (format 2).
//
// Instead of one length-prefixed entry per posting, a format-2 Dewey
// list packs up to blockMaxEntries postings into one postings-file
// entry (a "block"). Within a block every posting after the first is
// delta-coded against its predecessor (the AppendDeweyEntryCompressed
// wire format), and blocks never span pages, so any block is decodable
// from its single page without context. A per-term skip index — built
// alongside the lexicon and loaded fully into memory at Open — records
// each block's location, entry count, byte length, maximum ElemRank and
// first/last Dewey ID, which is what lets query loops skip whole blocks
// (by document range, or the remainder of a rank-ordered list once the
// threshold algorithm's stop condition holds) without reading them.
//
// Block body layout (the bytes after the postings-file length prefix):
//
//	u16 count
//	count × compressed dewey entry (u16 len, u8 lcp, uvarint suffixLen,
//	        suffix, f32 rank, posList) — the first entry has lcp 0 and
//	        carries the full ID
const (
	// BlockPostingsFormat is Meta.PostingsFormat for block-encoded
	// directories. Zero (or absent) is the per-entry v1 format.
	BlockPostingsFormat = 2

	// blockMaxEntries caps postings per block. 128 keeps the decode unit
	// small enough that partially-needed blocks cost little, while the
	// skip index stays ~1/128th of the list.
	blockMaxEntries = 128

	// blockBodyLimit is the largest block body that still fits in one
	// page alongside its length prefix.
	blockBodyLimit = storage.PageSize - entryLenSize
)

// BlockRef summarizes one block for the skip index. FirstID/LastID hold
// the order-preserving Dewey encodings of the block's first and last
// posting, so range tests are zero-copy byte comparisons.
type BlockRef struct {
	Page    storage.PageID
	Off     uint16
	Count   uint16
	Bytes   uint16 // body length (the postings-file entry's u16 length value)
	MaxRank float32
	FirstID []byte
	LastID  []byte
	// LastDoc is the document (first Dewey component) of LastID, derived
	// at build/load time: the doc-range skip test needs it without
	// decoding.
	LastDoc uint32
}

// blockReader iterates the entries of one block body.
type blockReader struct {
	body []byte
	n    int
	i    int
	prev dewey.ID
}

func (r *blockReader) init(body []byte) error {
	if len(body) < 2 {
		return fmt.Errorf("index: %w block body too short", storage.ErrCorrupt)
	}
	r.n = int(binary.LittleEndian.Uint16(body))
	r.body = body[2:]
	r.i = 0
	r.prev = r.prev[:0]
	return nil
}

func (r *blockReader) next(p *Posting) (bool, error) {
	if r.i >= r.n {
		if len(r.body) != 0 {
			return false, fmt.Errorf("index: %w block has %d trailing bytes after %d entries",
				storage.ErrCorrupt, len(r.body), r.n)
		}
		return false, nil
	}
	if len(r.body) < entryLenSize {
		return false, fmt.Errorf("index: %w block truncated at entry %d/%d", storage.ErrCorrupt, r.i, r.n)
	}
	ln := int(binary.LittleEndian.Uint16(r.body))
	if ln == padEntry || entryLenSize+ln > len(r.body) {
		return false, fmt.Errorf("index: %w block entry %d/%d has bad length %d",
			storage.ErrCorrupt, r.i, r.n, ln)
	}
	if err := DecodeDeweyEntryCompressed(r.body[entryLenSize:entryLenSize+ln], r.prev, p); err != nil {
		return false, err
	}
	r.prev = append(r.prev[:0], p.ID...)
	r.body = r.body[entryLenSize+ln:]
	r.i++
	return true, nil
}

// encodeBlock builds a standalone block body from posts (tests and fuzz
// seeds; the build path encodes incrementally via blockListWriter).
func encodeBlock(posts []Posting) []byte {
	out := binary.LittleEndian.AppendUint16(nil, uint16(len(posts)))
	var prev dewey.ID
	for i := range posts {
		out = AppendDeweyEntryCompressed(out, prev, posts[i].ID, posts[i].Rank, posts[i].Positions)
		prev = posts[i].ID
	}
	return out
}

// blockListWriter streams one term's postings into blocks through a
// postWriter, accumulating the skip refs and HDIL page boundaries.
type blockListWriter struct {
	w *postWriter

	body    []byte // current block: u16 length patch, u16 count patch, entries
	n       int
	prev    dewey.ID
	first   []byte
	last    []byte
	lastDoc uint32
	maxRank float32

	refs     []BlockRef
	bounds   []pageBoundary
	lastPage storage.PageID
	loc      Loc
	scratch  []byte
}

func newBlockListWriter(w *postWriter) *blockListWriter {
	return &blockListWriter{w: w, lastPage: storage.InvalidPage}
}

func (bw *blockListWriter) add(id dewey.ID, rank float32, positions []uint32) error {
	if bw.n > 0 {
		bw.scratch = AppendDeweyEntryCompressed(bw.scratch[:0], bw.prev, id, rank, positions)
		if bw.n >= blockMaxEntries || len(bw.body)+len(bw.scratch) > storage.PageSize {
			if err := bw.flushBlock(); err != nil {
				return err
			}
		}
	}
	if bw.n == 0 {
		// First entry of a block is self-contained.
		bw.scratch = AppendDeweyEntryCompressed(bw.scratch[:0], nil, id, rank, positions)
		if entryLenSize+2+len(bw.scratch) > storage.PageSize {
			return fmt.Errorf("index: posting of %d bytes exceeds page size", len(bw.scratch))
		}
		bw.body = append(bw.body[:0], 0, 0, 0, 0) // length + count patch slots
		bw.first = dewey.Append(bw.first[:0], id)
		bw.maxRank = rank
	}
	bw.body = append(bw.body, bw.scratch...)
	if rank > bw.maxRank {
		bw.maxRank = rank
	}
	bw.last = dewey.Append(bw.last[:0], id)
	bw.lastDoc = id.Doc()
	bw.prev = append(bw.prev[:0], id...)
	bw.n++
	return nil
}

func (bw *blockListWriter) flushBlock() error {
	if bw.n == 0 {
		return nil
	}
	binary.LittleEndian.PutUint16(bw.body, uint16(len(bw.body)-entryLenSize))
	binary.LittleEndian.PutUint16(bw.body[entryLenSize:], uint16(bw.n))
	page, off, err := bw.w.writeEntry(bw.body)
	if err != nil {
		return err
	}
	if len(bw.refs) == 0 {
		bw.loc.Page, bw.loc.Off = page, off
	}
	if page != bw.lastPage {
		bw.bounds = append(bw.bounds, pageBoundary{page: page, firstKey: append([]byte(nil), bw.first...)})
		bw.lastPage = page
	}
	bw.refs = append(bw.refs, BlockRef{
		Page:    page,
		Off:     off,
		Count:   uint16(bw.n),
		Bytes:   uint16(len(bw.body) - entryLenSize),
		MaxRank: bw.maxRank,
		FirstID: append([]byte(nil), bw.first...),
		LastID:  append([]byte(nil), bw.last...),
		LastDoc: bw.lastDoc,
	})
	bw.loc.Bytes += uint32(len(bw.body))
	bw.loc.Count += uint32(bw.n)
	bw.n = 0
	return nil
}

func (bw *blockListWriter) finish() (Loc, []pageBoundary, []BlockRef, error) {
	if err := bw.flushBlock(); err != nil {
		return Loc{}, nil, nil, err
	}
	return bw.loc, bw.bounds, bw.refs, nil
}

// Skip-index file format ("XSKP"):
//
//	u32 magic, u32 version, u32 nTerms
//	per term (lexicon order): u16 termLen, term, u32 nBlocks
//	per block: u32 page, u16 off, u16 count, u16 bytes, f32 maxRank,
//	           u16 firstLen, firstID, u16 lastLen, lastID
const (
	skipMagic   = 0x504B5358 // "XSKP" little-endian
	skipVersion = 1
)

// writeSkipIndex persists the per-term block refs with the atomic write
// protocol, returning the file's size and checksum for meta.json.
func writeSkipIndex(fs storage.FS, path string, terms []string, refs map[string][]BlockRef) (storage.FileSum, error) {
	out := make([]byte, 0, 12+len(terms)*64)
	out = binary.LittleEndian.AppendUint32(out, skipMagic)
	out = binary.LittleEndian.AppendUint32(out, skipVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(terms)))
	for _, t := range terms {
		if len(t) > 0xFFFF {
			return storage.FileSum{}, fmt.Errorf("index: term too long (%d bytes)", len(t))
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(t)))
		out = append(out, t...)
		rs := refs[t]
		out = binary.LittleEndian.AppendUint32(out, uint32(len(rs)))
		for i := range rs {
			r := &rs[i]
			out = binary.LittleEndian.AppendUint32(out, uint32(r.Page))
			out = binary.LittleEndian.AppendUint16(out, r.Off)
			out = binary.LittleEndian.AppendUint16(out, r.Count)
			out = binary.LittleEndian.AppendUint16(out, r.Bytes)
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(r.MaxRank))
			out = binary.LittleEndian.AppendUint16(out, uint16(len(r.FirstID)))
			out = append(out, r.FirstID...)
			out = binary.LittleEndian.AppendUint16(out, uint16(len(r.LastID)))
			out = append(out, r.LastID...)
		}
	}
	if err := storage.WriteFileAtomic(fs, path, out); err != nil {
		return storage.FileSum{}, fmt.Errorf("index: write skip index %s: %w", path, err)
	}
	return storage.FileSum{Size: int64(len(out)), CRC32: storage.Checksum(out)}, nil
}

// decodeSkipIndex parses a skip-index file, validating every structural
// invariant a cursor later relies on; damage is reported as a
// storage.ErrCorrupt-wrapping error, never as wrong refs. ordered states
// the underlying list's sort order: Dewey-ordered lists (dil.post) must
// have non-decreasing IDs across and within blocks — the invariant the
// document-range skip and the block prober rely on — while rank-ordered
// lists (rdil.post, hdil.rank) must instead have non-increasing block
// MaxRanks, the invariant the threshold-stop skip relies on.
func decodeSkipIndex(b []byte, ordered bool) (map[string][]BlockRef, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("index: %w skip index: %s", storage.ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(b) < 12 {
		return nil, corrupt("truncated header")
	}
	if binary.LittleEndian.Uint32(b) != skipMagic {
		return nil, corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != skipVersion {
		return nil, corrupt("version %d, this build understands %d", v, skipVersion)
	}
	nTerms := binary.LittleEndian.Uint32(b[8:])
	b = b[12:]
	need := func(n int) bool { return len(b) >= n }
	// Counts are attacker-controlled until proven against the remaining
	// bytes — never preallocate from them (a fabricated 4G count would
	// balloon memory before the truncation check fires).
	out := make(map[string][]BlockRef, min(int(nTerms), 1024))
	for ti := uint32(0); ti < nTerms; ti++ {
		if !need(2) {
			return nil, corrupt("truncated at term %d", ti)
		}
		tl := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if !need(tl + 4) {
			return nil, corrupt("truncated term %d", ti)
		}
		term := string(b[:tl])
		b = b[tl:]
		nBlocks := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if nBlocks == 0 {
			return nil, corrupt("term %q has zero blocks", term)
		}
		refs := make([]BlockRef, 0, min(int(nBlocks), 1024))
		var prevLast []byte
		for bi := uint32(0); bi < nBlocks; bi++ {
			if !need(16) {
				return nil, corrupt("term %q: truncated block %d", term, bi)
			}
			r := BlockRef{
				Page:    storage.PageID(binary.LittleEndian.Uint32(b)),
				Off:     binary.LittleEndian.Uint16(b[4:]),
				Count:   binary.LittleEndian.Uint16(b[6:]),
				Bytes:   binary.LittleEndian.Uint16(b[8:]),
				MaxRank: math.Float32frombits(binary.LittleEndian.Uint32(b[10:])),
			}
			fl := int(binary.LittleEndian.Uint16(b[14:]))
			b = b[16:]
			if !need(fl + 2) {
				return nil, corrupt("term %q block %d: truncated first ID", term, bi)
			}
			r.FirstID = append([]byte(nil), b[:fl]...)
			b = b[fl:]
			ll := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			if !need(ll) {
				return nil, corrupt("term %q block %d: truncated last ID", term, bi)
			}
			r.LastID = append([]byte(nil), b[:ll]...)
			b = b[ll:]
			if r.Count == 0 || len(r.FirstID) == 0 || len(r.LastID) == 0 {
				return nil, corrupt("term %q block %d: empty block or ID", term, bi)
			}
			if int(r.Off)+entryLenSize+int(r.Bytes) > storage.PageSize {
				return nil, corrupt("term %q block %d: spans page boundary", term, bi)
			}
			if ordered {
				if bytes.Compare(r.FirstID, r.LastID) > 0 {
					return nil, corrupt("term %q block %d: first ID after last ID", term, bi)
				}
				if prevLast != nil && bytes.Compare(prevLast, r.FirstID) > 0 {
					return nil, corrupt("term %q block %d: refs out of order", term, bi)
				}
			} else if bi > 0 && r.MaxRank > refs[bi-1].MaxRank {
				return nil, corrupt("term %q block %d: max rank rises in a rank-ordered list", term, bi)
			}
			prevLast = r.LastID
			last, err := dewey.Decode(r.LastID)
			if err != nil {
				return nil, corrupt("term %q block %d: last ID: %v", term, bi, err)
			}
			if _, err := dewey.Decode(r.FirstID); err != nil {
				return nil, corrupt("term %q block %d: first ID: %v", term, bi, err)
			}
			r.LastDoc = last.Doc()
			refs = append(refs, r)
		}
		out[term] = refs
	}
	if len(b) != 0 {
		return nil, corrupt("%d trailing bytes", len(b))
	}
	return out, nil
}

func readSkipIndex(fs storage.FS, path string, ordered bool) (map[string][]BlockRef, error) {
	b, err := storage.DefaultFS(fs).ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("index: open skip index: %w", err)
	}
	refs, err := decodeSkipIndex(b, ordered)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return refs, nil
}

// blockBody pins ref's page and returns the block body, cross-checking
// the on-page length prefix against the skip ref (the cheap structural
// guard that catches a skip index pointing into the wrong bytes).
// Callers release fr after they finish with the body.
func blockBody(pool *storage.BufferPool, ec *storage.ExecContext, ref *BlockRef) (*storage.Frame, []byte, error) {
	fr, err := pool.GetExec(ec, ref.Page)
	if err != nil {
		return nil, nil, err
	}
	off := int(ref.Off)
	if off+entryLenSize > storage.PageSize {
		fr.Release()
		return nil, nil, fmt.Errorf("index: %w block ref beyond page %d", storage.ErrCorrupt, ref.Page)
	}
	ln := int(binary.LittleEndian.Uint16(fr.Data[off:]))
	if ln != int(ref.Bytes) || off+entryLenSize+ln > storage.PageSize {
		fr.Release()
		return nil, nil, fmt.Errorf("index: %w block at page %d off %d: length %d does not match skip ref %d",
			storage.ErrCorrupt, ref.Page, ref.Off, ln, ref.Bytes)
	}
	ec.CountBlocks(1, 0)
	return fr, fr.Data[off+entryLenSize : off+entryLenSize+ln], nil
}

// blockCursor iterates a block-encoded list through its in-memory skip
// refs, one pinned page at a time. It is the format-2 counterpart of
// postCursor + per-entry decode, with two extra moves the v1 cursor
// cannot make: dropping every not-yet-loaded block whose document range
// ends before a target doc, and dropping the whole remainder of the
// list once a rank-ordered consumer's stop condition holds.
type blockCursor struct {
	pool  *storage.BufferPool
	ec    *storage.ExecContext
	refs  []BlockRef
	count uint32 // total entries across all blocks

	bi    int // next ref to load
	frame *storage.Frame
	rd    blockReader
	post  Posting
}

func newBlockCursor(pool *storage.BufferPool, refs []BlockRef, count uint32, ec *storage.ExecContext) *blockCursor {
	return &blockCursor{pool: pool, refs: refs, count: count, ec: ec}
}

func (c *blockCursor) next() (*Posting, bool, error) {
	for c.rd.i >= c.rd.n {
		if c.bi >= len(c.refs) {
			c.close()
			return nil, false, nil
		}
		if err := c.loadBlock(&c.refs[c.bi]); err != nil {
			c.close()
			return nil, false, err
		}
		c.bi++
	}
	if _, err := c.rd.next(&c.post); err != nil {
		c.close()
		return nil, false, err
	}
	return &c.post, true, nil
}

func (c *blockCursor) loadBlock(ref *BlockRef) error {
	if c.frame != nil {
		c.frame.Release()
		c.frame = nil
	}
	fr, body, err := blockBody(c.pool, c.ec, ref)
	if err != nil {
		return err
	}
	if err := c.rd.init(body); err != nil {
		fr.Release()
		return err
	}
	if c.rd.n != int(ref.Count) {
		fr.Release()
		return fmt.Errorf("index: %w block at page %d off %d: %d entries, skip ref says %d",
			storage.ErrCorrupt, ref.Page, ref.Off, c.rd.n, ref.Count)
	}
	c.frame = fr
	return nil
}

// skipBlocksBelowDoc drops every not-yet-loaded block whose entries all
// belong to documents before doc. The current (loaded) block is never
// touched — its remaining entries drain entry-wise, bounded by the
// block size. Idempotent; callers are responsible for only invoking it
// when the dropped entries provably cannot contribute.
func (c *blockCursor) skipBlocksBelowDoc(doc uint32) {
	n := int64(0)
	for c.bi < len(c.refs) && c.refs[c.bi].LastDoc < doc {
		c.bi++
		n++
	}
	if n > 0 {
		c.ec.CountBlocks(0, n)
	}
}

// skipRemainingBlocks drops every not-yet-loaded block (a threshold-
// algorithm stop or a top-m cutoff made the rest of the list dead).
func (c *blockCursor) skipRemainingBlocks() {
	if n := int64(len(c.refs) - c.bi); n > 0 {
		c.ec.CountBlocks(0, n)
		c.bi = len(c.refs)
	}
}

func (c *blockCursor) exhausted() bool {
	return c.bi >= len(c.refs) && c.rd.i >= c.rd.n
}

func (c *blockCursor) close() {
	if c.frame != nil {
		c.frame.Release()
		c.frame = nil
	}
}
