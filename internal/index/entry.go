// Package index implements XRANK's inverted-list index family (Guo et
// al., SIGMOD 2003, Section 4): the naive element inverted lists
// (Naive-ID, Naive-Rank), the Dewey Inverted List (DIL), the Ranked Dewey
// Inverted List (RDIL) and the Hybrid Dewey Inverted List (HDIL), all
// disk-resident over the storage substrate.
//
// On-disk inverted lists are streams of entries packed into fixed-size
// pages (entries never span pages), so sequential scans touch consecutive
// pages — the access pattern that makes DIL cheap — while B+-trees and
// hash indexes provide the random entry points that RDIL and Naive-Rank
// rely on.
package index

import (
	"encoding/binary"
	"fmt"
	"math"

	"xrank/internal/dewey"
)

// Posting is one decoded inverted-list entry: a keyword's occurrences in
// one element that directly contains it, with the element's ElemRank
// (Section 4.2.1, Figure 4).
type Posting struct {
	// ID is the element's Dewey ID (Dewey-family indexes). nil for naive
	// entries.
	ID dewey.ID
	// Elem is the element's collection-global index (naive-family indexes;
	// also populated for Dewey entries at build time).
	Elem int32
	// Rank is the element's ElemRank.
	Rank float32
	// Positions is the posList: document-global token offsets of the
	// keyword in the element, ascending.
	Positions []uint32
}

// Entry wire formats. Every entry starts with a uint16 total length of the
// body (everything after the length field), so scans can skip entries
// without decoding them. A length of padEntry marks page padding.
//
//	dewey entry body:  u16 idLen, id bytes, f32 rank, uvarint nPos, uvarint pos deltas
//	naive entry body:  uvarint elemID, f32 rank, uvarint nPos, uvarint pos deltas
const (
	entryLenSize = 2
	padEntry     = 0xFFFF
)

// MaxPositionsDefault caps the posList length stored per entry. Extremely
// long posLists (a stopword in a huge HTML page) would otherwise overflow
// a page; the cap preserves the first occurrences, which is what window
// proximity needs most. The true total is not needed by any algorithm in
// the paper.
const MaxPositionsDefault = 1024

// AppendDeweyEntry appends the encoded Dewey entry to buf.
func AppendDeweyEntry(buf []byte, p *Posting) []byte {
	start := len(buf)
	buf = append(buf, 0, 0) // total length patch slot
	idBytes := dewey.EncodedLen(p.ID)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(idBytes))
	buf = dewey.Append(buf, p.ID)
	buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p.Rank))
	buf = appendPositions(buf, p.Positions)
	binary.LittleEndian.PutUint16(buf[start:], uint16(len(buf)-start-entryLenSize))
	return buf
}

// AppendDeweyEntryCompressed appends a prefix-compressed Dewey entry: the
// ID is stored as (number of leading components shared with prev, encoded
// suffix). Compression chains reset at page boundaries and at the start
// of each term's list (pass prev = nil), keeping every page
// self-decodable — which is what lets HDIL treat postings pages as
// B+-tree leaves even when compressed. Enabled by
// BuildOptions.CompressDewey; an optional space extension beyond the
// paper (its Section 4.2.1 space argument, taken one step further).
//
// Body layout: u8 lcp, uvarint suffixLen, suffix, f32 rank, posList.
func AppendDeweyEntryCompressed(buf []byte, prev, id dewey.ID, rank float32, positions []uint32) []byte {
	lcp := dewey.CommonPrefixLen(prev, id)
	if lcp > 255 {
		lcp = 255
	}
	start := len(buf)
	buf = append(buf, 0, 0) // total length patch slot
	buf = append(buf, byte(lcp))
	suffix := id[lcp:]
	buf = binary.AppendUvarint(buf, uint64(dewey.EncodedLen(suffix)))
	buf = dewey.Append(buf, suffix)
	buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(rank))
	buf = appendPositions(buf, positions)
	binary.LittleEndian.PutUint16(buf[start:], uint16(len(buf)-start-entryLenSize))
	return buf
}

// DecodeDeweyEntryCompressed decodes a compressed entry body into p,
// reconstructing the full ID from prev (the previous entry's ID on the
// same page, or nil for the first entry of a page or list). On error, p
// is reset to a zero posting (slices keep their capacity): callers chain
// decoded IDs as the next entry's prev, so a partially-written posting
// must never escape.
func DecodeDeweyEntryCompressed(body []byte, prev dewey.ID, p *Posting) error {
	if err := decodeDeweyEntryCompressed(body, prev, p); err != nil {
		p.ID = p.ID[:0]
		p.Positions = p.Positions[:0]
		p.Elem = 0
		p.Rank = 0
		return err
	}
	return nil
}

func decodeDeweyEntryCompressed(body []byte, prev dewey.ID, p *Posting) error {
	if len(body) < 2 {
		return fmt.Errorf("index: compressed dewey entry too short")
	}
	lcp := int(body[0])
	sl, n := binary.Uvarint(body[1:])
	if n <= 0 {
		return fmt.Errorf("index: compressed dewey entry suffix length corrupt")
	}
	suffixLen := int(sl)
	body = body[1+n:]
	if lcp > len(prev) {
		return fmt.Errorf("index: compressed entry lcp %d exceeds previous ID length %d", lcp, len(prev))
	}
	if len(body) < suffixLen+4 {
		return fmt.Errorf("index: compressed dewey entry truncated")
	}
	p.ID = append(p.ID[:0], prev[:lcp]...)
	var err error
	p.ID, err = dewey.AppendDecoded(p.ID, body[:suffixLen])
	if err != nil {
		return err
	}
	body = body[suffixLen:]
	p.Rank = math.Float32frombits(binary.LittleEndian.Uint32(body))
	p.Elem = -1
	return decodePositions(body[4:], p)
}

// AppendNaiveEntry appends the encoded naive entry to buf.
func AppendNaiveEntry(buf []byte, p *Posting) []byte {
	start := len(buf)
	buf = append(buf, 0, 0)
	buf = binary.AppendUvarint(buf, uint64(p.Elem))
	buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p.Rank))
	buf = appendPositions(buf, p.Positions)
	binary.LittleEndian.PutUint16(buf[start:], uint16(len(buf)-start-entryLenSize))
	return buf
}

func appendPositions(buf []byte, pos []uint32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(pos)))
	prev := uint32(0)
	for i, p := range pos {
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(p))
		} else {
			buf = binary.AppendUvarint(buf, uint64(p-prev))
		}
		prev = p
	}
	return buf
}

// DecodeDeweyEntry decodes a Dewey entry body (after the length prefix)
// into p, reusing p's slices. It returns an error on corruption.
func DecodeDeweyEntry(body []byte, p *Posting) error {
	if len(body) < 2 {
		return fmt.Errorf("index: dewey entry too short")
	}
	idLen := int(binary.LittleEndian.Uint16(body))
	body = body[2:]
	if len(body) < idLen+4 {
		return fmt.Errorf("index: dewey entry truncated (idLen %d)", idLen)
	}
	var err error
	p.ID, err = dewey.DecodeInto(p.ID, body[:idLen])
	if err != nil {
		return err
	}
	body = body[idLen:]
	p.Rank = math.Float32frombits(binary.LittleEndian.Uint32(body))
	body = body[4:]
	p.Elem = -1
	return decodePositions(body, p)
}

// DecodeNaiveEntry decodes a naive entry body into p.
func DecodeNaiveEntry(body []byte, p *Posting) error {
	elem, n := binary.Uvarint(body)
	if n <= 0 {
		return fmt.Errorf("index: naive entry elem id corrupt")
	}
	body = body[n:]
	if len(body) < 4 {
		return fmt.Errorf("index: naive entry truncated")
	}
	p.Elem = int32(elem)
	p.ID = p.ID[:0]
	p.Rank = math.Float32frombits(binary.LittleEndian.Uint32(body))
	return decodePositions(body[4:], p)
}

func decodePositions(body []byte, p *Posting) error {
	nPos, n := binary.Uvarint(body)
	if n <= 0 {
		return fmt.Errorf("index: posList count corrupt")
	}
	body = body[n:]
	if cap(p.Positions) < int(nPos) {
		p.Positions = make([]uint32, 0, nPos)
	}
	p.Positions = p.Positions[:0]
	prev := uint64(0)
	for i := uint64(0); i < nPos; i++ {
		d, n := binary.Uvarint(body)
		if n <= 0 {
			return fmt.Errorf("index: posList truncated at %d/%d", i, nPos)
		}
		body = body[n:]
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		p.Positions = append(p.Positions, uint32(prev))
	}
	return nil
}
