package index

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"xrank/internal/storage"
)

func newHashEnv(t *testing.T) (*storage.PageFile, *storage.BufferPool, *hashBuilder) {
	t.Helper()
	pf, err := storage.CreatePageFile(filepath.Join(t.TempDir(), "hash.pages"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf, storage.NewBufferPool(pf, 32), newHashBuilder(pf)
}

func buildAndProbe(t *testing.T, n int) {
	t.Helper()
	pf, pool, hb := newHashEnv(t)
	r := rand.New(rand.NewSource(int64(n)))
	entries := make([]hashEntry, n)
	used := map[int32]bool{}
	for i := range entries {
		var e int32
		for {
			e = int32(r.Intn(n * 20))
			if !used[e] {
				used[e] = true
				break
			}
		}
		entries[i] = hashEntry{elem: e, page: storage.PageID(i / 7), off: uint16(i % 4096)}
	}
	meta, err := hb.build(entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := hb.flush(); err != nil {
		t.Fatal(err)
	}
	if pf.NumPages() == 0 {
		t.Fatalf("nothing written")
	}
	for _, want := range entries {
		page, off, ok, err := hashLookup(nil, pool, meta, want.elem)
		if err != nil || !ok {
			t.Fatalf("n=%d lookup(%d): %v %v", n, want.elem, ok, err)
		}
		if page != want.page || off != want.off {
			t.Fatalf("n=%d lookup(%d) = (%d,%d), want (%d,%d)", n, want.elem, page, off, want.page, want.off)
		}
	}
	// Misses.
	for i := 0; i < 100; i++ {
		e := int32(n*20 + i)
		_, _, ok, err := hashLookup(nil, pool, meta, e)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("n=%d lookup of absent %d succeeded", n, e)
		}
	}
}

func TestHashPackedSmallTable(t *testing.T) { buildAndProbe(t, 20) }

// TestHashPageAlignedLargeTable exceeds one page of slots (682), forcing
// the aligned multi-page layout and cross-page linear probing.
func TestHashPageAlignedLargeTable(t *testing.T) { buildAndProbe(t, 3000) }

func TestHashBoundaryJustFits(t *testing.T) {
	// Around the one-page capacity boundary, both layouts must work.
	for _, n := range []int{440, 460, 500} {
		buildAndProbe(t, n)
	}
}

func TestHashManySmallTablesSharePages(t *testing.T) {
	pf, pool, hb := newHashEnv(t)
	type tbl struct {
		meta HashMeta
		e    hashEntry
	}
	var tables []tbl
	for i := 0; i < 150; i++ {
		e := hashEntry{elem: int32(i), page: storage.PageID(i), off: uint16(i)}
		meta, err := hb.build([]hashEntry{e})
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tbl{meta: meta, e: e})
	}
	if err := hb.flush(); err != nil {
		t.Fatal(err)
	}
	if np := pf.NumPages(); np > 2 {
		t.Errorf("150 tiny hash tables used %d pages; packing broken", np)
	}
	for _, tb := range tables {
		page, off, ok, err := hashLookup(nil, pool, tb.meta, tb.e.elem)
		if err != nil || !ok || page != tb.e.page || off != tb.e.off {
			t.Fatalf("shared-page lookup(%d) = (%d,%d,%v,%v)", tb.e.elem, page, off, ok, err)
		}
	}
}

func TestHashEmptyTable(t *testing.T) {
	_, pool, hb := newHashEnv(t)
	meta, err := hb.build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := hb.flush(); err != nil {
		t.Fatal(err)
	}
	_, _, ok, err := hashLookup(nil, pool, HashMeta{}, 5)
	if err != nil || ok {
		t.Errorf("zero-slot lookup: %v %v", ok, err)
	}
	_, _, ok, err = hashLookup(nil, pool, meta, 5)
	if err != nil || ok {
		t.Errorf("empty-table lookup: %v %v", ok, err)
	}
}

func TestPostWriterPaddingBoundaries(t *testing.T) {
	pf, err := storage.CreatePageFile(filepath.Join(t.TempDir(), "post.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	pool := storage.NewBufferPool(pf, 8)
	w := newPostWriter(pf)

	// Entries sized so the second one exactly fills the remainder of the
	// page and the third forces padding.
	mk := func(n int) []byte {
		e := make([]byte, n+entryLenSize)
		e[0] = byte(n)
		e[1] = byte(n >> 8)
		for i := entryLenSize; i < len(e); i++ {
			e[i] = 0xAB
		}
		return e
	}
	var loc Loc
	sizes := []int{1000, storage.PageSize - 1000 - 2*entryLenSize - 2, 5000, 8000, 3}
	for i, n := range sizes {
		page, off, err := w.writeEntry(mk(n))
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if i == 0 {
			loc = Loc{Page: page, Off: off}
		}
		loc.Bytes += uint32(n + entryLenSize)
		loc.Count++
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	c := newPostCursor(pool, loc, nil)
	for i, n := range sizes {
		ok, err := c.next()
		if err != nil || !ok {
			t.Fatalf("cursor entry %d: %v %v", i, ok, err)
		}
		if len(c.body) != n {
			t.Fatalf("entry %d body = %d bytes, want %d", i, len(c.body), n)
		}
		for _, b := range c.body {
			if b != 0xAB {
				t.Fatalf("entry %d corrupted", i)
			}
		}
	}
	if ok, _ := c.next(); ok {
		t.Errorf("cursor overran")
	}
	c.close()
	c.close() // idempotent

	// Oversized entries are rejected.
	if _, _, err := w.writeEntry(make([]byte, storage.PageSize+1)); err == nil {
		t.Errorf("oversized entry accepted")
	}
}

func TestEntryCodecsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		want := Posting{
			ID:   make([]uint32, 1+r.Intn(8)),
			Elem: int32(r.Intn(1 << 30)),
			Rank: r.Float32(),
		}
		for i := range want.ID {
			want.ID[i] = uint32(r.Intn(1 << 16))
		}
		pos := uint32(0)
		for i := 0; i < r.Intn(20); i++ {
			pos += uint32(1 + r.Intn(500))
			want.Positions = append(want.Positions, pos)
		}
		// Dewey entry.
		enc := AppendDeweyEntry(nil, &want)
		var got Posting
		if err := DecodeDeweyEntry(enc[entryLenSize:], &got); err != nil {
			t.Fatal(err)
		}
		if got.ID.String() != want.ID.String() || got.Rank != want.Rank || len(got.Positions) != len(want.Positions) {
			t.Fatalf("dewey round trip: %+v != %+v", got, want)
		}
		for i := range got.Positions {
			if got.Positions[i] != want.Positions[i] {
				t.Fatalf("dewey positions differ at %d", i)
			}
		}
		// Naive entry.
		encN := AppendNaiveEntry(nil, &want)
		var gotN Posting
		if err := DecodeNaiveEntry(encN[entryLenSize:], &gotN); err != nil {
			t.Fatal(err)
		}
		if gotN.Elem != want.Elem || gotN.Rank != want.Rank || len(gotN.Positions) != len(want.Positions) {
			t.Fatalf("naive round trip: %+v != %+v", gotN, want)
		}
	}
}

func TestDecodeCorruptEntries(t *testing.T) {
	var p Posting
	cases := [][]byte{
		{},
		{0x05},             // truncated idLen
		{0xFF, 0xFF, 0x00}, // idLen beyond buffer
		{0x01, 0x00},       // idLen=1 but no id bytes
	}
	for i, c := range cases {
		if err := DecodeDeweyEntry(c, &p); err == nil {
			t.Errorf("case %d: corrupt dewey entry accepted", i)
		}
	}
	if err := DecodeNaiveEntry(nil, &p); err == nil {
		t.Errorf("empty naive entry accepted")
	}
	if err := DecodeNaiveEntry([]byte{0x05, 0x00}, &p); err == nil {
		t.Errorf("truncated naive entry accepted")
	}
}

func TestListCursorExhaustedAndCount(t *testing.T) {
	_, _, ix := buildTestIndex(t, map[string]string{"d": smallDoc}, BuildOptions{})
	cur, ok := ix.DILCursor("sky")
	if !ok {
		t.Fatal("no cursor")
	}
	if cur.Exhausted() {
		t.Errorf("fresh cursor exhausted")
	}
	n := 0
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != cur.Count() || !cur.Exhausted() {
		t.Errorf("consumed %d of %d, exhausted=%v", n, cur.Count(), cur.Exhausted())
	}
	cur.Close()
	cur.Close() // idempotent
}

func ExampleAppendDeweyEntry() {
	p := Posting{ID: []uint32{5, 0, 3}, Rank: 0.5, Positions: []uint32{7, 9}}
	enc := AppendDeweyEntry(nil, &p)
	var out Posting
	_ = DecodeDeweyEntry(enc[2:], &out)
	fmt.Println(out.ID, out.Rank, out.Positions)
	// Output: 5.0.3 0.5 [7 9]
}
