package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"time"

	"xrank/internal/btree"
	"xrank/internal/dewey"
	"xrank/internal/storage"
	"xrank/internal/xmldoc"
)

// File names inside an index directory.
const (
	fileDILPost       = "dil.post"
	fileDILLex        = "dil.lex"
	fileRDILPost      = "rdil.post"
	fileRDILTree      = "rdil.btree"
	fileRDILLex       = "rdil.lex"
	fileHDILRank      = "hdil.rank"
	fileHDILTree      = "hdil.btree"
	fileHDILLex       = "hdil.lex"
	fileNaiveIDPost   = "naiveid.post"
	fileNaiveIDLex    = "naiveid.lex"
	fileNaiveRankPost = "naiverank.post"
	fileNaiveRankHash = "naiverank.hash"
	fileNaiveRankLex  = "naiverank.lex"
	fileMeta          = "meta.json"

	// Block-format skip indexes (PostingsFormat == BlockPostingsFormat).
	fileDILSkip      = "dil.skip"
	fileRDILSkip     = "rdil.skip"
	fileHDILRankSkip = "hdilrank.skip"
)

// BuildOptions configure index construction.
type BuildOptions struct {
	// RankFraction is the fraction of each inverted list stored rank-
	// ordered for HDIL (Section 4.4.1: "store only a small fraction of the
	// inverted list sorted by rank"). Default 0.10.
	RankFraction float64
	// MinRankPrefix is the minimum rank-prefix length per term (bounded by
	// the list length). Default 64.
	MinRankPrefix int
	// MaxPositions caps the posList stored per entry. Default
	// MaxPositionsDefault.
	MaxPositions int
	// SkipNaive omits the two naive baselines (they dominate build time
	// and space on big corpora, exactly as the paper argues).
	SkipNaive bool
	// CompressDewey prefix-compresses the Dewey IDs in all Dewey-ordered
	// and rank-ordered postings (an extension beyond the paper; see
	// AppendDeweyEntryCompressed). Query results are identical; lists
	// shrink further.
	CompressDewey bool
	// BlockPostings writes the Dewey-family lists (dil.post, rdil.post,
	// hdil.rank) in the block-encoded format (see block.go): delta-coded
	// blocks of up to 128 entries plus per-term skip indexes recording
	// each block's max ElemRank and Dewey range, which query loops use to
	// skip whole blocks. Naive lists and both B+-trees are unchanged.
	// Query results are bit-identical to the v1 format; CompressDewey is
	// ignored for block lists (blocks always delta-code internally).
	BlockPostings bool
	// DocFilter, when non-nil, restricts the index to the documents for
	// which it returns true (doc is the document's position in the
	// collection, i.e. the first Dewey component). Sharded builds pass the
	// shard's hash predicate here. The element-ID and Dewey spaces — and
	// Meta.NumDocs/NumElements — remain those of the FULL collection, so
	// ranks, tf-idf normalization and result IDs are identical whether a
	// document is scored from a shard or from a monolithic index.
	DocFilter func(doc uint32) bool
	// FS is the file system all index files are written through (nil = the
	// real file system). Fault-injection tests pass a storage.FaultFS.
	FS storage.FS
}

func (o *BuildOptions) fill() {
	if o.RankFraction <= 0 || o.RankFraction > 1 {
		o.RankFraction = 0.10
	}
	if o.MinRankPrefix <= 0 {
		o.MinRankPrefix = 64
	}
	if o.MaxPositions <= 0 {
		o.MaxPositions = MaxPositionsDefault
	}
}

// Meta is persisted to meta.json and reloaded by Open. It travels inside
// a checksummed manifest envelope (storage.WriteManifestAtomic) and is the
// index directory's commit point: it is written last, after every data
// file is synced, and records each file's size and CRC-32C in Files so
// Open can verify the whole directory before trusting any of it.
type Meta struct {
	NumDocs       int     `json:"num_docs"`
	NumElements   int     `json:"num_elements"`
	Terms         int     `json:"terms"`
	DeweyEntries  int     `json:"dewey_entries"`
	NaiveEntries  int     `json:"naive_entries"`
	RankFraction  float64 `json:"rank_fraction"`
	MaxPositions  int     `json:"max_positions"`
	HasNaive      bool    `json:"has_naive"`
	CompressDewey bool    `json:"compress_dewey,omitempty"`
	// PostingsFormat is the Dewey-list wire format: 0 (absent) is the
	// per-entry v1 layout, BlockPostingsFormat (2) the block-encoded
	// layout with skip indexes. Open rejects formats it does not know.
	PostingsFormat int   `json:"postings_format,omitempty"`
	BuildMillis    int64 `json:"build_millis"`
	// Files records the expected size and checksum of every data file in
	// the directory, keyed by file name.
	Files map[string]storage.FileSum `json:"files"`
}

// BuildStats reports per-component on-disk sizes in bytes, the data for
// Table 1.
type BuildStats struct {
	Meta          Meta
	DILList       int64 // dil.post — also the HDIL full list and B+-tree leaf level
	RDILList      int64 // rdil.post
	RDILIndex     int64 // rdil.btree
	HDILRank      int64 // hdil.rank (rank-ordered prefix)
	HDILIndex     int64 // hdil.btree (external inner nodes only)
	NaiveIDList   int64
	NaiveRankList int64
	NaiveIndex    int64 // naiverank.hash
}

// termData accumulates one term's direct postings during the scan phase.
type termData struct {
	posts []Posting
	els   []*xmldoc.Element
}

// Build constructs all index variants for the collection in dir, which is
// created if needed. ranks holds ElemRank scores by global element index.
func Build(c *xmldoc.Collection, ranks []float64, dir string, opts BuildOptions) (*BuildStats, error) {
	opts.fill()
	start := time.Now()
	fs := storage.DefaultFS(opts.FS)
	if len(ranks) != c.NumElements() {
		return nil, fmt.Errorf("index: %d ranks for %d elements", len(ranks), c.NumElements())
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("index: mkdir %s: %w", dir, err)
	}

	// Phase 1: collect direct postings per term.
	terms := make(map[string]*termData)
	perElem := make(map[string][]uint32, 16)
	for di, d := range c.Docs {
		if opts.DocFilter != nil && !opts.DocFilter(uint32(di)) {
			continue
		}
		for _, e := range d.Elements {
			if len(e.Tokens) == 0 {
				continue
			}
			for k := range perElem {
				delete(perElem, k)
			}
			for _, tok := range e.Tokens {
				perElem[tok.Term] = append(perElem[tok.Term], tok.Pos)
			}
			g := int32(c.GlobalIndex(e))
			id := e.DeweyID()
			for term, positions := range perElem {
				td := terms[term]
				if td == nil {
					td = &termData{}
					terms[term] = td
				}
				if len(positions) > opts.MaxPositions {
					positions = positions[:opts.MaxPositions]
				}
				td.posts = append(td.posts, Posting{
					ID:        id,
					Elem:      g,
					Rank:      float32(ranks[g]),
					Positions: append([]uint32(nil), positions...),
				})
				td.els = append(td.els, e)
			}
		}
	}
	sorted := make([]string, 0, len(terms))
	for t := range terms {
		sorted = append(sorted, t)
	}
	sort.Strings(sorted)

	// Phase 2: stream every variant term by term.
	b, err := newVariantBuilders(fs, dir, opts)
	if err != nil {
		return nil, err
	}
	defer b.closeAll()

	meta := Meta{
		NumDocs:       c.NumDocs(),
		NumElements:   c.NumElements(),
		Terms:         len(sorted),
		RankFraction:  opts.RankFraction,
		MaxPositions:  opts.MaxPositions,
		HasNaive:      !opts.SkipNaive,
		CompressDewey: opts.CompressDewey,
	}
	if opts.BlockPostings {
		meta.PostingsFormat = BlockPostingsFormat
	}
	for _, term := range sorted {
		td := terms[term]
		nNaive, err := b.addTerm(term, td, opts, ranks)
		if err != nil {
			return nil, fmt.Errorf("index: term %q: %w", term, err)
		}
		meta.DeweyEntries += len(td.posts)
		meta.NaiveEntries += nNaive
		delete(terms, term) // release memory as we go
	}
	files, err := b.finish(dir, sorted)
	if err != nil {
		return nil, err
	}
	meta.BuildMillis = time.Since(start).Milliseconds()
	meta.Files = files

	// meta.json is the commit point: everything above is synced, so once
	// this manifest lands atomically the directory opens; until then Open
	// reports the directory as absent or corrupt, never half-built.
	if err := storage.WriteManifestAtomic(fs, filepath.Join(dir, fileMeta), &meta); err != nil {
		return nil, err
	}

	stats := &BuildStats{
		Meta:      meta,
		DILList:   b.dilPF.Size(),
		RDILList:  b.rdilPF.Size(),
		RDILIndex: b.rdilTreePF.Size(),
		HDILRank:  b.hdilRankPF.Size(),
		HDILIndex: b.hdilTreePF.Size(),
	}
	if !opts.SkipNaive {
		stats.NaiveIDList = b.naiveIDPF.Size()
		stats.NaiveRankList = b.naiveRankPF.Size()
		stats.NaiveIndex = b.naiveHashPF.Size()
	}
	return stats, nil
}

// variantBuilders holds the open files and per-term metadata accumulated
// while streaming the index variants.
type variantBuilders struct {
	opts BuildOptions
	fs   storage.FS

	dilPF      *storage.PageFile
	rdilPF     *storage.PageFile
	rdilTreePF *storage.PageFile
	hdilRankPF *storage.PageFile
	hdilTreePF *storage.PageFile

	naiveIDPF   *storage.PageFile
	naiveRankPF *storage.PageFile
	naiveHashPF *storage.PageFile

	dilW       *postWriter
	rdilW      *postWriter
	hdilRankW  *postWriter
	naiveIDW   *postWriter
	naiveRankW *postWriter

	rdilTreeW *btree.PageWriter
	hdilTreeW *btree.PageWriter
	hashB     *hashBuilder

	dilMeta       map[string]DILMeta
	rdilMeta      map[string]RDILMeta
	hdilMeta      map[string]HDILMeta
	naiveIDMeta   map[string]NaiveMeta
	naiveRankMeta map[string]NaiveRankMeta

	// Per-term block refs (BlockPostings only), persisted as the skip
	// indexes in finish.
	dilSkip      map[string][]BlockRef
	rdilSkip     map[string][]BlockRef
	hdilRankSkip map[string][]BlockRef

	buf []byte
}

func newVariantBuilders(fs storage.FS, dir string, opts BuildOptions) (*variantBuilders, error) {
	b := &variantBuilders{
		opts:          opts,
		fs:            fs,
		dilMeta:       make(map[string]DILMeta),
		rdilMeta:      make(map[string]RDILMeta),
		hdilMeta:      make(map[string]HDILMeta),
		naiveIDMeta:   make(map[string]NaiveMeta),
		naiveRankMeta: make(map[string]NaiveRankMeta),
	}
	if opts.BlockPostings {
		b.dilSkip = make(map[string][]BlockRef)
		b.rdilSkip = make(map[string][]BlockRef)
		b.hdilRankSkip = make(map[string][]BlockRef)
	}
	var err error
	create := func(name string) *storage.PageFile {
		if err != nil {
			return nil
		}
		var pf *storage.PageFile
		pf, err = storage.CreatePageFileFS(fs, filepath.Join(dir, name))
		return pf
	}
	b.dilPF = create(fileDILPost)
	b.rdilPF = create(fileRDILPost)
	b.rdilTreePF = create(fileRDILTree)
	b.hdilRankPF = create(fileHDILRank)
	b.hdilTreePF = create(fileHDILTree)
	if !opts.SkipNaive {
		b.naiveIDPF = create(fileNaiveIDPost)
		b.naiveRankPF = create(fileNaiveRankPost)
		b.naiveHashPF = create(fileNaiveRankHash)
	}
	if err != nil {
		b.closeAll()
		return nil, err
	}
	b.dilW = newPostWriter(b.dilPF)
	b.rdilW = newPostWriter(b.rdilPF)
	b.hdilRankW = newPostWriter(b.hdilRankPF)
	b.rdilTreeW = btree.NewPageWriter(b.rdilTreePF)
	b.hdilTreeW = btree.NewPageWriter(b.hdilTreePF)
	if !opts.SkipNaive {
		b.naiveIDW = newPostWriter(b.naiveIDPF)
		b.naiveRankW = newPostWriter(b.naiveRankPF)
		b.hashB = newHashBuilder(b.naiveHashPF)
	}
	return b, nil
}

func (b *variantBuilders) closeAll() {
	for _, pf := range []*storage.PageFile{
		b.dilPF, b.rdilPF, b.rdilTreePF, b.hdilRankPF, b.hdilTreePF,
		b.naiveIDPF, b.naiveRankPF, b.naiveHashPF,
	} {
		if pf != nil {
			pf.Close()
		}
	}
}

// addTerm writes one term's postings into every variant. It returns the
// number of naive entries produced (the ancestor closure size).
func (b *variantBuilders) addTerm(term string, td *termData, opts BuildOptions, ranks []float64) (int, error) {
	posts := td.posts

	// --- DIL: Dewey order (the natural order postings were collected in).
	dilLoc, boundaries, err := b.writeList(b.dilW, posts, nil, term, b.dilSkip)
	if err != nil {
		return 0, err
	}
	endPage, endOff := b.dilW.pos()
	b.dilMeta[term] = DILMeta{Loc: dilLoc}

	// --- RDIL: rank order + per-term B+-tree keyed by Dewey ID.
	byRank := rankOrder(posts)
	rankLoc, _, err := b.writeList(b.rdilW, posts, byRank, term, b.rdilSkip)
	if err != nil {
		return 0, err
	}
	tb := btree.NewBuilder(b.rdilTreeW, 0)
	var key, val []byte
	for i := range posts {
		key = dewey.Append(key[:0], posts[i].ID)
		val = appendTreeValue(val[:0], posts[i].Rank, posts[i].Positions)
		if err := tb.Add(key, val); err != nil {
			return 0, err
		}
	}
	rdilRoot, _, err := tb.Finish()
	if err != nil {
		return 0, err
	}
	b.rdilMeta[term] = RDILMeta{RankLoc: rankLoc, Root: rdilRoot}

	// --- HDIL: rank-ordered prefix + external B+-tree over the DIL pages.
	prefixLen := int(math.Ceil(opts.RankFraction * float64(len(posts))))
	if prefixLen < opts.MinRankPrefix {
		prefixLen = opts.MinRankPrefix
	}
	if prefixLen > len(posts) {
		prefixLen = len(posts)
	}
	hdilRankLoc, _, err := b.writeList(b.hdilRankW, posts, byRank[:prefixLen], term, b.hdilRankSkip)
	if err != nil {
		return 0, err
	}
	eb := btree.NewExternalBuilder(b.hdilTreeW, 0)
	for _, bd := range boundaries {
		if err := eb.AddLeafPage(bd.firstKey, bd.page); err != nil {
			return 0, err
		}
	}
	hdilRoot, _, err := eb.Finish()
	if err != nil {
		return 0, err
	}
	b.hdilMeta[term] = HDILMeta{
		DilLoc:  dilLoc,
		EndPage: endPage,
		EndOff:  endOff,
		RankLoc: hdilRankLoc,
		Root:    hdilRoot,
	}

	if opts.SkipNaive {
		return 0, nil
	}

	// --- Naive closure: every ancestor repeats the entry (Section 4.1).
	closure := naiveClosure(td, opts.MaxPositions, ranks)

	idLoc, err := b.writeNaiveList(b.naiveIDW, closure, nil)
	if err != nil {
		return 0, err
	}
	b.naiveIDMeta[term] = NaiveMeta{Loc: idLoc}

	byRankN := naiveRankOrder(closure)
	rankNLoc, locs, err := b.writeNaiveListLocs(b.naiveRankW, closure, byRankN)
	if err != nil {
		return 0, err
	}
	hashEntries := make([]hashEntry, len(closure))
	for i, ci := range byRankN {
		hashEntries[i] = hashEntry{elem: closure[ci].Elem, page: locs[i].page, off: locs[i].off}
	}
	hm, err := b.hashB.build(hashEntries)
	if err != nil {
		return 0, err
	}
	b.naiveRankMeta[term] = NaiveRankMeta{Loc: rankNLoc, Hash: hm}
	return len(closure), nil
}

type pageBoundary struct {
	page     storage.PageID
	firstKey []byte
}

// writeList dispatches between the v1 per-entry layout and the block
// layout; with BlockPostings the term's block refs are recorded in skip
// (which finish persists as the component's skip index).
func (b *variantBuilders) writeList(w *postWriter, posts []Posting, perm []int, term string, skip map[string][]BlockRef) (Loc, []pageBoundary, error) {
	if !b.opts.BlockPostings {
		return b.writeDeweyList(w, posts, perm)
	}
	loc, bounds, refs, err := b.writeBlockList(w, posts, perm)
	if err != nil {
		return loc, nil, err
	}
	skip[term] = refs
	return loc, bounds, nil
}

// writeBlockList writes postings (in the order given by perm, or natural
// order when perm is nil) as delta-coded blocks, returning the list
// location, the page boundaries, and the per-block skip refs.
func (b *variantBuilders) writeBlockList(w *postWriter, posts []Posting, perm []int) (Loc, []pageBoundary, []BlockRef, error) {
	bw := newBlockListWriter(w)
	n := len(posts)
	if perm != nil {
		n = len(perm)
	}
	for i := 0; i < n; i++ {
		p := &posts[i]
		if perm != nil {
			p = &posts[perm[i]]
		}
		if err := bw.add(p.ID, p.Rank, p.Positions); err != nil {
			return Loc{}, nil, nil, err
		}
	}
	return bw.finish()
}

// writeDeweyList writes postings (in the order given by perm, or natural
// order when perm is nil) as Dewey entries, returning the list location
// and the page boundaries (first key of the term's entries on each page).
// With CompressDewey, an entry that stays on the current page stores only
// its suffix relative to the previous entry; entries that open a page are
// self-contained.
func (b *variantBuilders) writeDeweyList(w *postWriter, posts []Posting, perm []int) (Loc, []pageBoundary, error) {
	var loc Loc
	var bounds []pageBoundary
	lastPage := storage.InvalidPage
	var prev dewey.ID
	n := len(posts)
	if perm != nil {
		n = len(perm)
	}
	for i := 0; i < n; i++ {
		p := &posts[i]
		if perm != nil {
			p = &posts[perm[i]]
		}
		if b.opts.CompressDewey {
			b.buf = AppendDeweyEntryCompressed(b.buf[:0], prev, p.ID, p.Rank, p.Positions)
			if len(b.buf) > w.remaining() {
				// The entry opens a new page: it must not reference prev.
				b.buf = AppendDeweyEntryCompressed(b.buf[:0], nil, p.ID, p.Rank, p.Positions)
			}
			prev = append(prev[:0], p.ID...)
		} else {
			b.buf = AppendDeweyEntry(b.buf[:0], p)
		}
		page, off, err := w.writeEntry(b.buf)
		if err != nil {
			return loc, nil, err
		}
		if i == 0 {
			loc.Page, loc.Off = page, off
		}
		if page != lastPage {
			bounds = append(bounds, pageBoundary{page: page, firstKey: dewey.Encode(p.ID)})
			lastPage = page
		}
		loc.Bytes += uint32(len(b.buf))
	}
	loc.Count = uint32(n)
	return loc, bounds, nil
}

func (b *variantBuilders) writeNaiveList(w *postWriter, posts []Posting, perm []int) (Loc, error) {
	loc, _, err := b.writeNaiveListLocs(w, posts, perm)
	return loc, err
}

type entryLoc struct {
	page storage.PageID
	off  uint16
}

func (b *variantBuilders) writeNaiveListLocs(w *postWriter, posts []Posting, perm []int) (Loc, []entryLoc, error) {
	var loc Loc
	n := len(posts)
	if perm != nil {
		n = len(perm)
	}
	locs := make([]entryLoc, 0, n)
	for i := 0; i < n; i++ {
		p := &posts[i]
		if perm != nil {
			p = &posts[perm[i]]
		}
		b.buf = AppendNaiveEntry(b.buf[:0], p)
		page, off, err := w.writeEntry(b.buf)
		if err != nil {
			return loc, nil, err
		}
		if i == 0 {
			loc.Page, loc.Off = page, off
		}
		locs = append(locs, entryLoc{page: page, off: off})
		loc.Bytes += uint32(len(b.buf))
	}
	loc.Count = uint32(n)
	return loc, locs, nil
}

// rankOrder returns the permutation of posts by descending rank, ties
// broken by Dewey order for determinism.
func rankOrder(posts []Posting) []int {
	perm := make([]int, len(posts))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return posts[perm[a]].Rank > posts[perm[b]].Rank
	})
	return perm
}

func naiveRankOrder(posts []Posting) []int { return rankOrder(posts) }

// naiveClosure expands direct postings to every ancestor, merging
// posLists, producing entries sorted by global element index (= document
// order). Every entry carries the element's own ElemRank — the naive
// approach does not decay ranks by specificity (Section 4.1, limitation 3).
func naiveClosure(td *termData, maxPos int, ranks []float64) []Posting {
	m := make(map[int32][]uint32, len(td.posts)*2)
	for i := range td.posts {
		p := &td.posts[i]
		for e := td.els[i]; e != nil; e = e.Parent {
			g := int32(e.Doc.Base + int(e.Index))
			m[g] = append(m[g], p.Positions...)
		}
	}
	keys := make([]int32, 0, len(m))
	for g := range m {
		keys = append(keys, g)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Posting, 0, len(keys))
	for _, g := range keys {
		pos := m[g]
		sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
		if len(pos) > maxPos {
			pos = pos[:maxPos]
		}
		out = append(out, Posting{
			Elem:      g,
			Rank:      float32(ranks[g]),
			Positions: pos,
		})
	}
	return out
}

// appendTreeValue encodes the B+-tree leaf value: rank + posList.
func appendTreeValue(buf []byte, rank float32, pos []uint32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(rank))
	return appendPositions(buf, pos)
}

// decodeTreeValue decodes a B+-tree leaf value into p (Rank, Positions).
func decodeTreeValue(val []byte, p *Posting) error {
	if len(val) < 4 {
		return fmt.Errorf("index: tree value too short")
	}
	p.Rank = math.Float32frombits(binary.LittleEndian.Uint32(val))
	return decodePositions(val[4:], p)
}

// finish flushes all writers, syncs every page file, persists the
// lexicons atomically, and returns the size+checksum of every data file
// for the meta.json commit record.
func (b *variantBuilders) finish(dir string, terms []string) (map[string]storage.FileSum, error) {
	for _, w := range []*postWriter{b.dilW, b.rdilW, b.hdilRankW, b.naiveIDW, b.naiveRankW} {
		if w == nil {
			continue
		}
		if err := w.flush(); err != nil {
			return nil, err
		}
	}
	if err := b.rdilTreeW.Flush(); err != nil {
		return nil, err
	}
	if err := b.hdilTreeW.Flush(); err != nil {
		return nil, err
	}
	if b.hashB != nil {
		if err := b.hashB.flush(); err != nil {
			return nil, err
		}
	}
	files := make(map[string]storage.FileSum)
	// Fixed iteration order: fault injection numbers write boundaries by
	// execution order, so the sync sequence must be deterministic.
	pageFiles := []struct {
		name string
		pf   *storage.PageFile
	}{
		{fileDILPost, b.dilPF},
		{fileRDILPost, b.rdilPF},
		{fileRDILTree, b.rdilTreePF},
		{fileHDILRank, b.hdilRankPF},
		{fileHDILTree, b.hdilTreePF},
		{fileNaiveIDPost, b.naiveIDPF},
		{fileNaiveRankPost, b.naiveRankPF},
		{fileNaiveRankHash, b.naiveHashPF},
	}
	for _, ent := range pageFiles {
		name, pf := ent.name, ent.pf
		if pf == nil {
			continue
		}
		if err := pf.Sync(); err != nil {
			return nil, err
		}
		sum, err := pf.Checksum()
		if err != nil {
			return nil, err
		}
		files[name] = sum
	}
	if b.opts.BlockPostings {
		// Skip indexes land between the synced page files and the
		// lexicons — more atomic whole-file writes under the meta.json
		// commit point, in a fixed order for the fault matrix.
		skips := []struct {
			name string
			refs map[string][]BlockRef
		}{
			{fileDILSkip, b.dilSkip},
			{fileRDILSkip, b.rdilSkip},
			{fileHDILRankSkip, b.hdilRankSkip},
		}
		for _, sk := range skips {
			sum, err := writeSkipIndex(b.fs, filepath.Join(dir, sk.name), terms, sk.refs)
			if err != nil {
				return nil, err
			}
			files[sk.name] = sum
		}
	}
	lexicons := []struct {
		name string
		enc  func(t string, buf []byte) []byte
	}{
		{fileDILLex, func(t string, buf []byte) []byte { return b.dilMeta[t].encode(buf) }},
		{fileRDILLex, func(t string, buf []byte) []byte { return b.rdilMeta[t].encode(buf) }},
		{fileHDILLex, func(t string, buf []byte) []byte { return b.hdilMeta[t].encode(buf) }},
	}
	if b.naiveIDW != nil {
		lexicons = append(lexicons,
			struct {
				name string
				enc  func(t string, buf []byte) []byte
			}{fileNaiveIDLex, func(t string, buf []byte) []byte { return b.naiveIDMeta[t].encode(buf) }},
			struct {
				name string
				enc  func(t string, buf []byte) []byte
			}{fileNaiveRankLex, func(t string, buf []byte) []byte { return b.naiveRankMeta[t].encode(buf) }},
		)
	}
	for _, lx := range lexicons {
		sum, err := writeLexicon(b.fs, filepath.Join(dir, lx.name), terms, lx.enc)
		if err != nil {
			return nil, err
		}
		files[lx.name] = sum
	}
	return files, nil
}
