package index

import (
	"path/filepath"

	"xrank/internal/storage"
)

// RemoveFiles best-effort deletes the index's on-disk files — every
// pagefile and lexicon named in each shard's manifest, the per-shard
// meta.json commit points, and (for a sharded layout) shards.json and
// the shard directories. Errors are ignored: retirement runs after a
// manifest swap has already committed, so a crash mid-removal merely
// leaves orphan files that no manifest references. Call before Close
// (Close drops the shard handles); on POSIX unlinking open files is
// fine. The containing directory itself is left to the caller, which
// knows whether it holds anything else.
func (sh *Sharded) RemoveFiles(fs storage.FS) {
	fsys := storage.DefaultFS(fs)
	for _, ix := range sh.shards {
		if ix == nil {
			continue
		}
		for name := range ix.Meta.Files {
			fsys.Remove(filepath.Join(ix.Dir, name))
		}
		fsys.Remove(filepath.Join(ix.Dir, fileMeta))
	}
	if len(sh.shards) > 1 {
		fsys.Remove(filepath.Join(sh.Dir, fileShards))
		for s := range sh.shards {
			fsys.Remove(shardDir(sh.Dir, s))
		}
	}
}
