package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xrank/internal/dewey"
	"xrank/internal/elemrank"
	"xrank/internal/xmldoc"
)

// buildTestIndex parses the given documents, computes ElemRanks, builds
// all index variants in a temp dir and opens the result.
func buildTestIndex(t *testing.T, docs map[string]string, opts BuildOptions) (*xmldoc.Collection, []float64, *Index) {
	t.Helper()
	c := xmldoc.NewCollection()
	names := make([]string, 0, len(docs))
	for n := range docs {
		names = append(names, n)
	}
	// Sort names for deterministic doc IDs.
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		if _, err := c.AddXML(n, strings.NewReader(docs[n]), nil); err != nil {
			t.Fatalf("AddXML(%s): %v", n, err)
		}
	}
	g, _ := elemrank.BuildGraph(c)
	res, err := elemrank.Compute(g, elemrank.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Build(c, res.Scores, dir, opts); err != nil {
		t.Fatalf("Build: %v", err)
	}
	ix, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { ix.Close() })
	return c, res.Scores, ix
}

// referencePostings computes the expected direct postings per term from
// the collection: (element, positions) for elements directly containing
// the term, in document order.
func referencePostings(c *xmldoc.Collection) map[string][]Posting {
	ref := make(map[string][]Posting)
	for _, d := range c.Docs {
		for _, e := range d.Elements {
			byTerm := map[string][]uint32{}
			for _, tok := range e.Tokens {
				byTerm[tok.Term] = append(byTerm[tok.Term], tok.Pos)
			}
			for term, pos := range byTerm {
				ref[term] = append(ref[term], Posting{
					ID:        e.DeweyID(),
					Elem:      int32(c.GlobalIndex(e)),
					Positions: pos,
				})
			}
		}
	}
	return ref
}

const smallDoc = `<lib>
  <book id="b1"><title>deep blue sea</title><body><ch>blue whale song</ch><ch>sea and sky</ch></body></book>
  <book id="b2"><title>red sky</title><body><ch>crimson sky at night</ch></body><cite ref="b1">see blue</cite></book>
</lib>`

func TestBuildOpenRoundTrip(t *testing.T) {
	c, _, ix := buildTestIndex(t, map[string]string{"lib": smallDoc}, BuildOptions{})
	ref := referencePostings(c)
	if ix.Meta.Terms != len(ref) {
		t.Errorf("Terms = %d, want %d", ix.Meta.Terms, len(ref))
	}
	for term, want := range ref {
		if !ix.HasTerm(term) {
			t.Fatalf("missing term %q", term)
		}
		cur, ok := ix.DILCursor(term)
		if !ok {
			t.Fatalf("no DIL cursor for %q", term)
		}
		if cur.Count() != len(want) {
			t.Fatalf("term %q: count %d, want %d", term, cur.Count(), len(want))
		}
		for i := range want {
			p, ok, err := cur.Next()
			if err != nil || !ok {
				t.Fatalf("term %q entry %d: %v %v", term, i, ok, err)
			}
			if !dewey.Equal(p.ID, want[i].ID) {
				t.Errorf("term %q entry %d: ID %v, want %v", term, i, p.ID, want[i].ID)
			}
			if len(p.Positions) != len(want[i].Positions) {
				t.Errorf("term %q entry %d: %d positions, want %d", term, i, len(p.Positions), len(want[i].Positions))
			} else {
				for j := range p.Positions {
					if p.Positions[j] != want[i].Positions[j] {
						t.Errorf("term %q entry %d pos %d: %d != %d", term, i, j, p.Positions[j], want[i].Positions[j])
					}
				}
			}
			if p.Rank <= 0 {
				t.Errorf("term %q entry %d: rank %g", term, i, p.Rank)
			}
		}
		if _, ok, _ := cur.Next(); ok {
			t.Errorf("term %q: cursor overran", term)
		}
		cur.Close()
	}
	if _, ok := ix.DILCursor("nonexistentterm"); ok {
		t.Errorf("cursor for unknown term")
	}
}

func TestRDILRankOrdered(t *testing.T) {
	_, _, ix := buildTestIndex(t, map[string]string{"lib": smallDoc}, BuildOptions{})
	for _, term := range []string{"sky", "blue", "book"} {
		cur, ok := ix.RDILRankCursor(term)
		if !ok {
			t.Fatalf("no cursor for %q", term)
		}
		last := float32(2)
		for {
			p, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if p.Rank > last {
				t.Errorf("term %q: rank order violated: %g after %g", term, p.Rank, last)
			}
			last = p.Rank
		}
		cur.Close()
	}
}

// bigCorpus generates one document whose lists span multiple pages.
func bigCorpus(n int) map[string]string {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<item><name>common w%d</name><desc>filler text number %d</desc></item>", i%97, i)
	}
	b.WriteString("</root>")
	return map[string]string{"big": b.String()}
}

func TestMultiPageListAndProbers(t *testing.T) {
	c, _, ix := buildTestIndex(t, bigCorpus(3000), BuildOptions{MinRankPrefix: 8, RankFraction: 0.05})
	ref := referencePostings(c)
	want := ref["common"]
	if len(want) != 3000 {
		t.Fatalf("reference has %d entries", len(want))
	}
	cur, _ := ix.DILCursor("common")
	got := 0
	for {
		p, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if !dewey.Equal(p.ID, want[got].ID) {
			t.Fatalf("entry %d: %v != %v", got, p.ID, want[got].ID)
		}
		got++
	}
	cur.Close()
	if got != 3000 {
		t.Fatalf("scanned %d entries", got)
	}

	// HDIL rank prefix must be a strict prefix of the list.
	hc, _ := ix.HDILRankCursor("common")
	if hc.Count() >= 3000 || hc.Count() < 8 {
		t.Errorf("HDIL rank prefix = %d entries", hc.Count())
	}
	hc.Close()

	// Both probers must agree with the in-memory reference on LCP probes.
	rp, _ := ix.RDILProber("common")
	hp, _ := ix.HDILProber("common")
	refLCP := func(target dewey.ID) int {
		best := 0
		for i := range want {
			if n := dewey.CommonPrefixLen(target, want[i].ID); n > best {
				best = n
			}
		}
		return best
	}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var target dewey.ID
		switch trial % 4 {
		case 0: // exact existing ID
			target = want[r.Intn(len(want))].ID.Clone()
		case 1: // sibling path
			target = want[r.Intn(len(want))].ID.Clone()
			target[len(target)-1] += uint32(r.Intn(3)) + 1
		case 2: // deeper path
			target = want[r.Intn(len(want))].ID.Child(uint32(r.Intn(5)))
		default: // other document
			target = dewey.ID{uint32(r.Intn(3) + 5), uint32(r.Intn(4))}
		}
		wantLCP := refLCP(target)
		gotR, err := rp.ProbeLCP(target)
		if err != nil {
			t.Fatal(err)
		}
		gotH, err := hp.ProbeLCP(target)
		if err != nil {
			t.Fatal(err)
		}
		if gotR != wantLCP || gotH != wantLCP {
			t.Fatalf("ProbeLCP(%v): rdil=%d hdil=%d want=%d", target, gotR, gotH, wantLCP)
		}
	}

	// ScanPrefix must agree with reference filtering.
	for trial := 0; trial < 50; trial++ {
		base := want[r.Intn(len(want))].ID
		cut := 1 + r.Intn(len(base))
		prefix := base[:cut].Clone()
		var wantIDs []string
		for i := range want {
			if prefix.IsPrefixOf(want[i].ID) {
				wantIDs = append(wantIDs, want[i].ID.String())
			}
		}
		for name, prober := range map[string]DeweyProber{"rdil": rp, "hdil": hp} {
			var gotIDs []string
			err := prober.ScanPrefix(prefix, func(p *Posting) error {
				gotIDs = append(gotIDs, p.ID.String())
				if len(p.Positions) == 0 {
					return fmt.Errorf("empty posList")
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s ScanPrefix: %v", name, err)
			}
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("%s ScanPrefix(%v): %d entries, want %d", name, prefix, len(gotIDs), len(wantIDs))
			}
			for i := range gotIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("%s ScanPrefix(%v)[%d]: %s != %s", name, prefix, i, gotIDs[i], wantIDs[i])
				}
			}
		}
	}
}

func TestNaiveClosureCorrectness(t *testing.T) {
	c, _, ix := buildTestIndex(t, map[string]string{"lib": smallDoc}, BuildOptions{})
	// An element is in term's naive list iff it contains* the term.
	for _, term := range []string{"blue", "sky", "crimson"} {
		wantSet := map[int32]bool{}
		for _, d := range c.Docs {
			for _, e := range d.Elements {
				if xmldoc.ContainsTerm(e, term) {
					wantSet[int32(c.GlobalIndex(e))] = true
				}
			}
		}
		cur, ok := ix.NaiveIDCursor(term)
		if !ok {
			t.Fatalf("no naive cursor for %q", term)
		}
		var gotElems []int32
		for {
			p, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			gotElems = append(gotElems, p.Elem)
			if !wantSet[p.Elem] {
				t.Errorf("term %q: spurious naive entry for elem %d", term, p.Elem)
			}
			if p.Rank <= 0 {
				t.Errorf("term %q elem %d: naive rank %g", term, p.Elem, p.Rank)
			}
			if len(p.Positions) == 0 {
				t.Errorf("term %q elem %d: empty posList", term, p.Elem)
			}
		}
		cur.Close()
		if len(gotElems) != len(wantSet) {
			t.Errorf("term %q: %d naive entries, want %d", term, len(gotElems), len(wantSet))
		}
		for i := 1; i < len(gotElems); i++ {
			if gotElems[i] <= gotElems[i-1] {
				t.Errorf("term %q: naive IDs out of order", term)
			}
		}
	}
}

func TestNaiveLookup(t *testing.T) {
	c, _, ix := buildTestIndex(t, bigCorpus(1500), BuildOptions{})
	// Every element in the closure must be findable via the hash index.
	term := "common"
	cur, _ := ix.NaiveIDCursor(term)
	var all []Posting
	for {
		p, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		all = append(all, Posting{Elem: p.Elem, Rank: p.Rank, Positions: append([]uint32(nil), p.Positions...)})
	}
	cur.Close()
	if len(all) < 1500 {
		t.Fatalf("closure too small: %d", len(all))
	}
	var probe Posting
	for _, want := range all {
		ok, err := ix.NaiveLookup(term, want.Elem, &probe)
		if err != nil || !ok {
			t.Fatalf("NaiveLookup(%d): %v %v", want.Elem, ok, err)
		}
		if probe.Rank != want.Rank || len(probe.Positions) != len(want.Positions) {
			t.Fatalf("NaiveLookup(%d): wrong entry", want.Elem)
		}
	}
	// Misses: element IDs not in the closure.
	inClosure := map[int32]bool{}
	for _, p := range all {
		inClosure[p.Elem] = true
	}
	misses := 0
	for g := 0; g < c.NumElements() && misses < 50; g++ {
		if !inClosure[int32(g)] {
			misses++
			ok, err := ix.NaiveLookup(term, int32(g), &probe)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("NaiveLookup(%d) found an absent element", g)
			}
		}
	}
	if ok, err := ix.NaiveLookup("unknownterm", 0, &probe); ok || err != nil {
		t.Errorf("lookup on unknown term: %v %v", ok, err)
	}
}

func TestColdCacheAndStats(t *testing.T) {
	_, _, ix := buildTestIndex(t, bigCorpus(2000), BuildOptions{})
	if err := ix.ColdCache(); err != nil {
		t.Fatal(err)
	}
	cur, _ := ix.DILCursor("common")
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	cur.Close()
	s1 := ix.IOStats()
	if s1.Reads == 0 {
		t.Fatalf("no reads recorded")
	}
	if s1.SeqReads < s1.RandReads {
		t.Errorf("a DIL scan should be mostly sequential: %+v", s1)
	}
	// Re-scan warm: all hits, no new device reads.
	cur, _ = ix.DILCursor("common")
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	cur.Close()
	s2 := ix.IOStats()
	if s2.Reads != s1.Reads {
		t.Errorf("warm re-scan hit the device: %d -> %d", s1.Reads, s2.Reads)
	}
	if s2.CacheHits == s1.CacheHits {
		t.Errorf("warm re-scan produced no cache hits")
	}
	if err := ix.ColdCache(); err != nil {
		t.Fatal(err)
	}
	if s := ix.IOStats(); s.Reads != 0 {
		t.Errorf("ColdCache did not reset stats: %+v", s)
	}
}

func TestSkipNaive(t *testing.T) {
	c := xmldoc.NewCollection()
	if _, err := c.AddXML("d", strings.NewReader(smallDoc), nil); err != nil {
		t.Fatal(err)
	}
	g, _ := elemrank.BuildGraph(c)
	res, _ := elemrank.Compute(g, elemrank.DefaultParams())
	dir := t.TempDir()
	stats, err := Build(c, res.Scores, dir, BuildOptions{SkipNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NaiveIDList != 0 || stats.NaiveRankList != 0 {
		t.Errorf("SkipNaive built naive lists: %+v", stats)
	}
	ix, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, ok := ix.NaiveIDCursor("blue"); ok {
		t.Errorf("naive cursor on SkipNaive index")
	}
	if c, ok := ix.DILCursor("blue"); !ok {
		t.Errorf("DIL missing on SkipNaive index")
	} else {
		c.Close()
	}
}

func TestBuildValidation(t *testing.T) {
	c := xmldoc.NewCollection()
	if _, err := c.AddXML("d", strings.NewReader(smallDoc), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(c, []float64{1, 2, 3}, t.TempDir(), BuildOptions{}); err == nil {
		t.Errorf("rank/element mismatch should fail")
	}
}

func TestSpaceShapeNaiveVsDIL(t *testing.T) {
	// The Table 1 shape at miniature scale: naive lists replicate
	// ancestors, so they must be strictly larger than DIL.
	c := xmldoc.NewCollection()
	docs := bigCorpus(2000)
	for n, s := range docs {
		if _, err := c.AddXML(n, strings.NewReader(s), nil); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := elemrank.BuildGraph(c)
	res, _ := elemrank.Compute(g, elemrank.DefaultParams())
	stats, err := Build(c, res.Scores, t.TempDir(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NaiveIDList <= stats.DILList {
		t.Errorf("naive list (%d) should exceed DIL (%d)", stats.NaiveIDList, stats.DILList)
	}
	if stats.HDILIndex >= stats.RDILIndex {
		t.Errorf("HDIL external index (%d) should be smaller than RDIL full trees (%d)", stats.HDILIndex, stats.RDILIndex)
	}
	if stats.Meta.NaiveEntries <= stats.Meta.DeweyEntries {
		t.Errorf("naive entries (%d) should exceed dewey entries (%d)", stats.Meta.NaiveEntries, stats.Meta.DeweyEntries)
	}
}
