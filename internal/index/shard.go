package index

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"xrank/internal/storage"
	"xrank/internal/xmldoc"
)

// Sharding partitions the inverted index by the Dewey document-ID
// component: document d lives entirely in shard ShardOf(d, S). Every
// XRANK scoring decision is intra-document (the DIL stack merge never
// carries state across a document boundary, and RDIL/HDIL probe within
// one document's Dewey subtree), so per-shard merges produce exactly the
// scores a monolithic merge would, and a global top-k is the top-k of
// the concatenated per-shard top-k's. Element IDs, Dewey IDs and
// tf-idf's N stay those of the full collection (see
// BuildOptions.DocFilter), which keeps results bit-identical across
// shard counts.

const (
	fileShards = "shards.json"
	// shardHashName identifies the document→shard hash so an index built
	// with one placement function is never opened with another.
	shardHashName = "fnv1a32"
)

// ShardMeta is persisted to shards.json in a sharded index directory.
type ShardMeta struct {
	NumShards int    `json:"num_shards"`
	Hash      string `json:"hash"`
}

// ShardOf maps a document (its position in the collection, i.e. the
// first Dewey component) to a shard in [0, shards). FNV-1a over the
// little-endian bytes spreads the sequential document IDs a collection
// assigns, so consecutive documents land on different shards.
func ShardOf(doc uint32, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < 32; i += 8 {
		h ^= doc >> i & 0xff
		h *= 16777619
	}
	return int(h % uint32(shards))
}

func shardDir(dir string, s int) string {
	return filepath.Join(dir, fmt.Sprintf("shard%03d", s))
}

// Sharded is an opened index partitioned across one or more shards. A
// flat (unsharded) directory opens as a single-shard Sharded, so every
// caller goes through the same type regardless of layout.
type Sharded struct {
	Dir string
	// Meta aggregates across shards: NumDocs, NumElements, RankFraction,
	// MaxPositions, HasNaive and CompressDewey are shard-invariant and
	// copied from shard 0; Terms is the distinct-term union; DeweyEntries,
	// NaiveEntries and BuildMillis are sums.
	Meta Meta

	shards []*Index
	health []shardHealth
}

// BuildSharded constructs the index in dir partitioned into shards
// partitions (shards ≤ 1 builds the flat single-directory layout, which
// OpenSharded also accepts). Each shard holds the complete per-term
// structures — DIL/RDIL/HDIL postfiles, B+-trees and naive baselines —
// restricted to its documents.
func BuildSharded(c *xmldoc.Collection, ranks []float64, dir string, opts BuildOptions, shards int) (*BuildStats, error) {
	if shards <= 1 {
		return Build(c, ranks, dir, opts)
	}
	fs := storage.DefaultFS(opts.FS)
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("index: mkdir %s: %w", dir, err)
	}
	// A caller DocFilter (a segmented engine restricting the build to a
	// delta's documents) composes with the shard placement predicate.
	base := opts.DocFilter
	var total BuildStats
	for s := 0; s < shards; s++ {
		so := opts
		sn := s
		so.DocFilter = func(doc uint32) bool {
			return (base == nil || base(doc)) && ShardOf(doc, shards) == sn
		}
		st, err := Build(c, ranks, shardDir(dir, s), so)
		if err != nil {
			return nil, fmt.Errorf("index: shard %d: %w", s, err)
		}
		if s == 0 {
			total.Meta = st.Meta
			total.Meta.Terms = 0
		}
		total.Meta.DeweyEntries += st.Meta.DeweyEntries
		total.Meta.NaiveEntries += st.Meta.NaiveEntries
		total.Meta.BuildMillis += st.Meta.BuildMillis
		total.DILList += st.DILList
		total.RDILList += st.RDILList
		total.RDILIndex += st.RDILIndex
		total.HDILRank += st.HDILRank
		total.HDILIndex += st.HDILIndex
		total.NaiveIDList += st.NaiveIDList
		total.NaiveRankList += st.NaiveRankList
		total.NaiveIndex += st.NaiveIndex
	}
	total.Meta.Terms = countDistinctTerms(c, base)
	// shards.json is the sharded layout's commit point: every shard
	// directory above is fully durable (each ends with its own atomic
	// meta.json), so once this manifest lands the whole index opens.
	sm := ShardMeta{NumShards: shards, Hash: shardHashName}
	if err := storage.WriteManifestAtomic(fs, filepath.Join(dir, fileShards), &sm); err != nil {
		return nil, err
	}
	return &total, nil
}

// countDistinctTerms counts the vocabulary of the documents passing
// filter (per-shard term counts overlap, so the aggregate can't just sum
// them). A nil filter covers the whole collection.
func countDistinctTerms(c *xmldoc.Collection, filter func(doc uint32) bool) int {
	seen := make(map[string]struct{})
	for _, d := range c.Docs {
		if filter != nil && !filter(d.ID) {
			continue
		}
		for _, e := range d.Elements {
			for _, tok := range e.Tokens {
				seen[tok.Term] = struct{}{}
			}
		}
	}
	return len(seen)
}

// OpenSharded opens dir as a sharded index. A directory without
// shards.json is a flat index and opens as one shard, so indexes built
// before sharding existed keep working.
func OpenSharded(dir string, opts OpenOptions) (*Sharded, error) {
	fs := storage.DefaultFS(opts.FS)
	var sm ShardMeta
	err := storage.ReadManifest(fs, filepath.Join(dir, fileShards), &sm)
	if err != nil && errors.Is(err, os.ErrNotExist) {
		ix, err := Open(dir, opts)
		if err != nil {
			return nil, err
		}
		sh := &Sharded{Dir: dir, Meta: ix.Meta, shards: []*Index{ix}}
		sh.initHealth()
		return sh, nil
	}
	if err != nil {
		return nil, fmt.Errorf("index: open %s: %w", dir, err)
	}
	if sm.NumShards < 1 {
		return nil, fmt.Errorf("index: shards.json declares %d shards", sm.NumShards)
	}
	if sm.Hash != shardHashName {
		return nil, fmt.Errorf("index: shard hash %q, this build understands %q", sm.Hash, shardHashName)
	}
	sh := &Sharded{Dir: dir}
	for s := 0; s < sm.NumShards; s++ {
		ix, err := Open(shardDir(dir, s), opts)
		if err != nil {
			sh.Close()
			return nil, fmt.Errorf("index: shard %d: %w", s, err)
		}
		sh.shards = append(sh.shards, ix)
	}
	sh.Meta = sh.shards[0].Meta
	sh.Meta.Terms, sh.Meta.DeweyEntries, sh.Meta.NaiveEntries, sh.Meta.BuildMillis = 0, 0, 0, 0
	vocab := make(map[string]struct{})
	for _, ix := range sh.shards {
		for t := range ix.dil {
			vocab[t] = struct{}{}
		}
		sh.Meta.DeweyEntries += ix.Meta.DeweyEntries
		sh.Meta.NaiveEntries += ix.Meta.NaiveEntries
		sh.Meta.BuildMillis += ix.Meta.BuildMillis
	}
	sh.Meta.Terms = len(vocab)
	sh.initHealth()
	return sh, nil
}

// NumShards returns the number of partitions (1 for a flat index).
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Shards returns the per-shard indexes, in shard order. Callers must not
// modify the slice.
func (sh *Sharded) Shards() []*Index { return sh.shards }

// Shard returns partition s.
func (sh *Sharded) Shard(s int) *Index { return sh.shards[s] }

// ShardFor returns the partition holding doc.
func (sh *Sharded) ShardFor(doc uint32) *Index {
	return sh.shards[ShardOf(doc, len(sh.shards))]
}

// Close closes every shard, returning the first error.
func (sh *Sharded) Close() error {
	var first error
	for _, ix := range sh.shards {
		if ix == nil {
			continue
		}
		if err := ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	sh.shards = nil
	return first
}

// ColdCache drops every shard's buffer pools and zeroes their I/O
// statistics; see Index.ColdCache for the single-tenant caveats.
func (sh *Sharded) ColdCache() error {
	for _, ix := range sh.shards {
		if err := ix.ColdCache(); err != nil {
			return err
		}
	}
	return nil
}

// IOStats sums the engine-global counters across all shards.
func (sh *Sharded) IOStats() storage.Stats {
	var s storage.Stats
	for _, ix := range sh.shards {
		s.Add(ix.IOStats())
	}
	return s
}

// ShardIOStats returns the engine-global counters per shard, in shard
// order (the HTTP server's per-shard stats endpoint).
func (sh *Sharded) ShardIOStats() []storage.Stats {
	out := make([]storage.Stats, len(sh.shards))
	for i, ix := range sh.shards {
		out[i] = ix.IOStats()
	}
	return out
}

// HasTerm reports whether term occurs anywhere in the collection.
func (sh *Sharded) HasTerm(term string) bool {
	for _, ix := range sh.shards {
		if ix.HasTerm(term) {
			return true
		}
	}
	return false
}

// DILCount returns the term's global document-frequency surrogate: the
// total DIL entries across shards (equal to the flat index's DILCount).
func (sh *Sharded) DILCount(term string) int {
	n := 0
	for _, ix := range sh.shards {
		n += ix.DILCount(term)
	}
	return n
}

// NaiveCount returns the total naive-list entries for term across shards.
func (sh *Sharded) NaiveCount(term string) int {
	n := 0
	for _, ix := range sh.shards {
		n += ix.NaiveCount(term)
	}
	return n
}

// DILListBytes returns the total encoded DIL bytes for term across
// shards (HDIL's cost-model input).
func (sh *Sharded) DILListBytes(term string) int64 {
	var n int64
	for _, ix := range sh.shards {
		n += ix.DILListBytes(term)
	}
	return n
}
