package index

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xrank/internal/elemrank"
	"xrank/internal/storage"
	"xrank/internal/xmldoc"
)

func buildIndexDir(t *testing.T) string {
	t.Helper()
	c := xmldoc.NewCollection()
	doc := `<w><t>xml keyword search engines</t><p><t>ranked retrieval</t><b>xml query language</b></p></w>`
	if _, err := c.AddXML("d", strings.NewReader(doc), nil); err != nil {
		t.Fatal(err)
	}
	g, _ := elemrank.BuildGraph(c)
	res, err := elemrank.Compute(g, elemrank.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Build(c, res.Scores, dir, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestOpenDetectsCorruption flips one byte in every persisted index file
// in turn: each mutation must fail Open with an ErrCorrupt-wrapping
// error — never a panic, never a silent success over bad data.
func TestOpenDetectsCorruption(t *testing.T) {
	dir := buildIndexDir(t)
	if _, err := os.Stat(filepath.Join(dir, fileMeta)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			pristine, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(path, pristine, 0o644)
			mut := append([]byte{}, pristine...)
			mut[len(mut)/2] ^= 0x40
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			ix, err := Open(dir, OpenOptions{})
			if err == nil {
				ix.Close()
				t.Fatalf("Open succeeded over corrupted %s", name)
			}
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("corrupted %s: %v (want ErrCorrupt)", name, err)
			}
		})
	}
}

// TestOpenDetectsTruncation truncates each data file to half its length;
// size verification must reject every one.
func TestOpenDetectsTruncation(t *testing.T) {
	dir := buildIndexDir(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if ent.IsDir() || ent.Name() == fileMeta {
			continue // meta truncation is covered by the corruption test
		}
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			pristine, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(path, pristine, 0o644)
			if err := os.WriteFile(path, pristine[:len(pristine)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			ix, err := Open(dir, OpenOptions{})
			if err == nil {
				ix.Close()
				t.Fatalf("Open succeeded over truncated %s", name)
			}
		})
	}
}

// TestOpenRejectsMissingChecksum: a meta.json that lists no checksum for
// a required file (a hand-edited or older manifest) is corrupt, not
// trusted.
func TestOpenRejectsMissingChecksum(t *testing.T) {
	dir := buildIndexDir(t)
	var meta Meta
	if err := storage.ReadManifest(nil, filepath.Join(dir, fileMeta), &meta); err != nil {
		t.Fatal(err)
	}
	delete(meta.Files, fileDILPost)
	if err := storage.WriteManifestAtomic(nil, filepath.Join(dir, fileMeta), &meta); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, OpenOptions{})
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("missing checksum entry: %v (want ErrCorrupt)", err)
	}
}

// TestSkipVerifyStillOpens: the verification pass is skippable for
// tooling that wants a fast open of a trusted directory.
func TestSkipVerifyStillOpens(t *testing.T) {
	dir := buildIndexDir(t)
	ix, err := Open(dir, OpenOptions{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()
}
