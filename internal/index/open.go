package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"

	"xrank/internal/dewey"
	"xrank/internal/storage"
)

// OpenOptions configure an opened index.
type OpenOptions struct {
	// PoolPages is the buffer-pool capacity (in pages) per index file.
	// Default 128 (1MB per file): large enough for merge working sets,
	// small enough that "cold cache" experiments stay honest.
	PoolPages int
	// FS is the file system the index is read through (nil = the real
	// file system). Fault-injection tests pass a storage.FaultFS.
	FS storage.FS
	// SkipVerify disables the up-front size/checksum verification of every
	// data file against meta.json. Verification costs one sequential pass
	// over the index; leave it on anywhere correctness matters.
	SkipVerify bool
}

// Index is an opened on-disk index directory with one buffer pool per
// component file.
type Index struct {
	Dir  string
	Meta Meta

	files []*storage.PageFile

	dilPF       *storage.PageFile
	rdilPF      *storage.PageFile
	rdilTreePF  *storage.PageFile
	hdilRankPF  *storage.PageFile
	hdilTreePF  *storage.PageFile
	naiveIDPF   *storage.PageFile
	naiveRankPF *storage.PageFile
	naiveHashPF *storage.PageFile

	dilPool       *storage.BufferPool
	rdilPool      *storage.BufferPool
	rdilTreePool  *storage.BufferPool
	hdilRankPool  *storage.BufferPool
	hdilTreePool  *storage.BufferPool
	naiveIDPool   *storage.BufferPool
	naiveRankPool *storage.BufferPool
	naiveHashPool *storage.BufferPool

	dil       map[string]DILMeta
	rdil      map[string]RDILMeta
	hdil      map[string]HDILMeta
	naiveID   map[string]NaiveMeta
	naiveRank map[string]NaiveRankMeta

	// Per-term block skip refs (PostingsFormat == BlockPostingsFormat).
	dilSkip      map[string][]BlockRef
	rdilSkip     map[string][]BlockRef
	hdilRankSkip map[string][]BlockRef
}

// blockFormat reports whether the Dewey lists are block-encoded.
func (ix *Index) blockFormat() bool { return ix.Meta.PostingsFormat == BlockPostingsFormat }

// Open opens an index directory produced by Build. The meta.json manifest
// is read first (format and checksum verified), then every data file it
// lists is verified against its recorded size and CRC-32C before any of
// it is trusted: Open either succeeds on a consistent directory or fails
// with a precise "corrupt <file>" error.
func Open(dir string, opts OpenOptions) (*Index, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 128
	}
	fs := storage.DefaultFS(opts.FS)
	ix := &Index{Dir: dir}
	if err := storage.ReadManifest(fs, filepath.Join(dir, fileMeta), &ix.Meta); err != nil {
		return nil, fmt.Errorf("index: open %s: %w", dir, err)
	}
	if f := ix.Meta.PostingsFormat; f != 0 && f != BlockPostingsFormat {
		return nil, fmt.Errorf("index: open %s: %w meta.json: postings format %d, this build understands 0 and %d",
			dir, storage.ErrCorrupt, f, BlockPostingsFormat)
	}
	required := []string{
		fileDILPost, fileDILLex,
		fileRDILPost, fileRDILTree, fileRDILLex,
		fileHDILRank, fileHDILTree, fileHDILLex,
	}
	if ix.blockFormat() {
		required = append(required, fileDILSkip, fileRDILSkip, fileHDILRankSkip)
	}
	if ix.Meta.HasNaive {
		required = append(required,
			fileNaiveIDPost, fileNaiveIDLex,
			fileNaiveRankPost, fileNaiveRankHash, fileNaiveRankLex)
	}
	for _, name := range required {
		sum, ok := ix.Meta.Files[name]
		if !ok {
			return nil, fmt.Errorf("index: open %s: %w meta.json: no checksum recorded for %s",
				dir, storage.ErrCorrupt, name)
		}
		if opts.SkipVerify {
			continue
		}
		if err := storage.VerifyFile(fs, filepath.Join(dir, name), sum); err != nil {
			return nil, fmt.Errorf("index: open %s: %w", dir, err)
		}
	}

	var err error
	open := func(name string) (*storage.PageFile, *storage.BufferPool, error) {
		pf, err := storage.OpenPageFileFS(fs, filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		ix.files = append(ix.files, pf)
		return pf, storage.NewBufferPool(pf, opts.PoolPages), nil
	}
	if ix.dilPF, ix.dilPool, err = open(fileDILPost); err != nil {
		return nil, err
	}
	if ix.rdilPF, ix.rdilPool, err = open(fileRDILPost); err != nil {
		ix.Close()
		return nil, err
	}
	if ix.rdilTreePF, ix.rdilTreePool, err = open(fileRDILTree); err != nil {
		ix.Close()
		return nil, err
	}
	if ix.hdilRankPF, ix.hdilRankPool, err = open(fileHDILRank); err != nil {
		ix.Close()
		return nil, err
	}
	if ix.hdilTreePF, ix.hdilTreePool, err = open(fileHDILTree); err != nil {
		ix.Close()
		return nil, err
	}
	if ix.Meta.HasNaive {
		if ix.naiveIDPF, ix.naiveIDPool, err = open(fileNaiveIDPost); err != nil {
			ix.Close()
			return nil, err
		}
		if ix.naiveRankPF, ix.naiveRankPool, err = open(fileNaiveRankPost); err != nil {
			ix.Close()
			return nil, err
		}
		if ix.naiveHashPF, ix.naiveHashPool, err = open(fileNaiveRankHash); err != nil {
			ix.Close()
			return nil, err
		}
	}

	ix.dil = make(map[string]DILMeta, ix.Meta.Terms)
	if err := readLexicon(fs, filepath.Join(dir, fileDILLex), func(t string, m []byte) error {
		dm, err := decodeDILMeta(m)
		ix.dil[t] = dm
		return err
	}); err != nil {
		ix.Close()
		return nil, err
	}
	ix.rdil = make(map[string]RDILMeta, ix.Meta.Terms)
	if err := readLexicon(fs, filepath.Join(dir, fileRDILLex), func(t string, m []byte) error {
		rm, err := decodeRDILMeta(m)
		ix.rdil[t] = rm
		return err
	}); err != nil {
		ix.Close()
		return nil, err
	}
	ix.hdil = make(map[string]HDILMeta, ix.Meta.Terms)
	if err := readLexicon(fs, filepath.Join(dir, fileHDILLex), func(t string, m []byte) error {
		hm, err := decodeHDILMeta(m)
		ix.hdil[t] = hm
		return err
	}); err != nil {
		ix.Close()
		return nil, err
	}
	if ix.blockFormat() {
		load := func(name string, ordered bool, nTerms int, want func(term string) (Loc, bool)) (map[string][]BlockRef, error) {
			refs, err := readSkipIndex(fs, filepath.Join(dir, name), ordered)
			if err != nil {
				return nil, err
			}
			if len(refs) != nTerms {
				return nil, fmt.Errorf("index: %w %s: %d terms, lexicon has %d",
					storage.ErrCorrupt, name, len(refs), nTerms)
			}
			// The skip index must agree with the lexicon: same terms, and
			// per term the block counts must sum to the list's entry
			// count. A mismatch means the directory's artifacts are from
			// different builds — refuse rather than serve wrong data.
			for term, rs := range refs {
				loc, ok := want(term)
				if !ok {
					return nil, fmt.Errorf("index: %w %s: term %q not in lexicon", storage.ErrCorrupt, name, term)
				}
				total := uint32(0)
				for i := range rs {
					total += uint32(rs[i].Count)
				}
				if total != loc.Count {
					return nil, fmt.Errorf("index: %w %s: term %q has %d entries across blocks, lexicon says %d",
						storage.ErrCorrupt, name, term, total, loc.Count)
				}
			}
			return refs, nil
		}
		var err error
		if ix.dilSkip, err = load(fileDILSkip, true, len(ix.dil), func(t string) (Loc, bool) {
			m, ok := ix.dil[t]
			return m.Loc, ok
		}); err != nil {
			ix.Close()
			return nil, err
		}
		if ix.rdilSkip, err = load(fileRDILSkip, false, len(ix.rdil), func(t string) (Loc, bool) {
			m, ok := ix.rdil[t]
			return m.RankLoc, ok
		}); err != nil {
			ix.Close()
			return nil, err
		}
		if ix.hdilRankSkip, err = load(fileHDILRankSkip, false, len(ix.hdil), func(t string) (Loc, bool) {
			m, ok := ix.hdil[t]
			return m.RankLoc, ok
		}); err != nil {
			ix.Close()
			return nil, err
		}
	}
	if ix.Meta.HasNaive {
		ix.naiveID = make(map[string]NaiveMeta, ix.Meta.Terms)
		if err := readLexicon(fs, filepath.Join(dir, fileNaiveIDLex), func(t string, m []byte) error {
			nm, err := decodeNaiveMeta(m)
			ix.naiveID[t] = nm
			return err
		}); err != nil {
			ix.Close()
			return nil, err
		}
		ix.naiveRank = make(map[string]NaiveRankMeta, ix.Meta.Terms)
		if err := readLexicon(fs, filepath.Join(dir, fileNaiveRankLex), func(t string, m []byte) error {
			nm, err := decodeNaiveRankMeta(m)
			ix.naiveRank[t] = nm
			return err
		}); err != nil {
			ix.Close()
			return nil, err
		}
	}
	return ix, nil
}

// Close closes all component files.
func (ix *Index) Close() error {
	var first error
	for _, pf := range ix.files {
		if err := pf.Close(); err != nil && first == nil {
			first = err
		}
	}
	ix.files = nil
	return first
}

// ColdCache drops every buffer pool and zeroes I/O statistics, simulating
// the paper's cold-operating-system-cache measurement setup.
//
// ColdCache is engine-global, not per-query: it empties pools shared by
// every in-flight query and resets the global counters. It is a
// single-tenant measurement knob — concurrent queries see their pools
// vanish mid-merge (correct but slow) and the global counters lose the
// prefix of their I/O. Per-query measurement under concurrency uses
// storage.ExecContext instead, which is unaffected by ColdCache.
func (ix *Index) ColdCache() error {
	for _, bp := range []*storage.BufferPool{
		ix.dilPool, ix.rdilPool, ix.rdilTreePool, ix.hdilRankPool, ix.hdilTreePool,
		ix.naiveIDPool, ix.naiveRankPool, ix.naiveHashPool,
	} {
		if bp == nil {
			continue
		}
		if err := bp.Reset(); err != nil {
			return err
		}
	}
	for _, pf := range ix.files {
		pf.ResetStats()
	}
	return nil
}

// IOStats aggregates I/O statistics across all component files. These are
// the engine-global counters: they sum the traffic of every query since
// the last ColdCache. Diffing two snapshots around a query is only
// meaningful when the index serves one query at a time; concurrent
// queries attribute their I/O through a per-query storage.ExecContext
// passed to the *Exec cursor and prober constructors.
func (ix *Index) IOStats() storage.Stats {
	var s storage.Stats
	for _, pf := range ix.files {
		s.Add(pf.Stats())
	}
	return s
}

// HasTerm reports whether term occurs anywhere in the collection.
func (ix *Index) HasTerm(term string) bool {
	_, ok := ix.dil[term]
	return ok
}

// DILListBytes returns the encoded byte size of the term's DIL list (used
// for DIL cost estimation in the HDIL adaptive strategy).
func (ix *Index) DILListBytes(term string) int64 {
	return int64(ix.dil[term].Loc.Bytes)
}

// DILCount returns the number of entries in the term's DIL list.
func (ix *Index) DILCount(term string) int { return int(ix.dil[term].Loc.Count) }

// ListCursor decodes a sequential inverted list (either entry family).
// Dewey lists in a block-format index iterate through a blockCursor
// instead of the per-entry postCursor; naive lists always use the
// latter.
type ListCursor struct {
	pc         *postCursor
	blk        *blockCursor
	dewey      bool
	compressed bool
	post       Posting
	prev       dewey.ID
	prevPage   storage.PageID
}

func (lc *ListCursor) Next() (*Posting, bool, error) {
	if lc.blk != nil {
		return lc.blk.next()
	}
	ok, err := lc.pc.next()
	if err != nil || !ok {
		return nil, false, err
	}
	switch {
	case lc.dewey && lc.compressed:
		// Compression chains reset at page boundaries; so does prev.
		if lc.pc.page != lc.prevPage {
			lc.prev = lc.prev[:0]
			lc.prevPage = lc.pc.page
		}
		err = DecodeDeweyEntryCompressed(lc.pc.body, lc.prev, &lc.post)
		lc.prev = append(lc.prev[:0], lc.post.ID...)
	case lc.dewey:
		err = DecodeDeweyEntry(lc.pc.body, &lc.post)
	default:
		err = DecodeNaiveEntry(lc.pc.body, &lc.post)
	}
	if err != nil {
		return nil, false, err
	}
	return &lc.post, true, nil
}

// Count returns the total number of entries in the list.
func (lc *ListCursor) Count() int {
	if lc.blk != nil {
		return int(lc.blk.count)
	}
	return int(lc.pc.loc.Count)
}

// Exhausted reports whether the cursor consumed the entire list (blocks
// dropped by a skip call count as consumed).
func (lc *ListCursor) Exhausted() bool {
	if lc.blk != nil {
		return lc.blk.exhausted()
	}
	return lc.pc.exhausted()
}

// Close releases pinned pages. Safe to call multiple times.
func (lc *ListCursor) Close() {
	if lc.blk != nil {
		lc.blk.close()
		return
	}
	lc.pc.close()
}

// SkipBlocksBelowDoc drops every not-yet-loaded block whose entries all
// belong to documents before doc, without reading them. A no-op on v1
// lists and on naive lists; the caller owns the exactness argument (see
// the doc-leapfrog reasoning in internal/query/merge.go).
func (lc *ListCursor) SkipBlocksBelowDoc(doc uint32) {
	if lc.blk != nil {
		lc.blk.skipBlocksBelowDoc(doc)
	}
}

// SkipRemainingBlocks drops every not-yet-loaded block — the consumer
// proved it will not read further (threshold-algorithm stop, top-m
// cutoff). A no-op on v1 lists.
func (lc *ListCursor) SkipRemainingBlocks() {
	if lc.blk != nil {
		lc.blk.skipRemainingBlocks()
	}
}

// RemainingBlockRefs returns the skip refs of the blocks not yet loaded
// (nil on v1 lists). Debug/test instrumentation: the pruning-soundness
// check inspects what a skip call is about to drop.
func (lc *ListCursor) RemainingBlockRefs() []BlockRef {
	if lc.blk == nil {
		return nil
	}
	return lc.blk.refs[lc.blk.bi:]
}

// DecodeBlockMaxRank decodes ref's block out-of-band (its own page pin,
// no cursor state touched) and returns the true maximum rank among its
// entries. Debug/test instrumentation for the pruning-soundness check.
func (lc *ListCursor) DecodeBlockMaxRank(ref BlockRef) (float32, error) {
	if lc.blk == nil {
		return 0, fmt.Errorf("index: not a block cursor")
	}
	fr, body, err := blockBody(lc.blk.pool, lc.blk.ec, &ref)
	if err != nil {
		return 0, err
	}
	defer fr.Release()
	var rd blockReader
	if err := rd.init(body); err != nil {
		return 0, err
	}
	var p Posting
	max := float32(math.Inf(-1))
	for {
		ok, err := rd.next(&p)
		if err != nil {
			return 0, err
		}
		if !ok {
			return max, nil
		}
		if p.Rank > max {
			max = p.Rank
		}
	}
}

func (ix *Index) deweyCursor(pool *storage.BufferPool, loc Loc, refs []BlockRef, ec *storage.ExecContext) *ListCursor {
	if ix.blockFormat() {
		return &ListCursor{blk: newBlockCursor(pool, refs, loc.Count, ec), dewey: true}
	}
	return &ListCursor{
		pc:         newPostCursor(pool, loc, ec),
		dewey:      true,
		compressed: ix.Meta.CompressDewey,
		prevPage:   storage.InvalidPage,
	}
}

// DILCursor returns a Dewey-ordered scan of the term's DIL list; ok is
// false for unknown terms.
func (ix *Index) DILCursor(term string) (*ListCursor, bool) {
	return ix.DILCursorExec(nil, term)
}

// DILCursorExec is DILCursor under a per-query execution context: every
// page the scan touches is attributed to ec and honours its cancellation,
// deadline and read budget. A nil ec is DILCursor.
func (ix *Index) DILCursorExec(ec *storage.ExecContext, term string) (*ListCursor, bool) {
	m, ok := ix.dil[term]
	if !ok {
		return nil, false
	}
	return ix.deweyCursor(ix.dilPool, m.Loc, ix.dilSkip[term], ec), true
}

// RDILRankCursor returns a rank-ordered scan of the term's RDIL list.
func (ix *Index) RDILRankCursor(term string) (*ListCursor, bool) {
	return ix.RDILRankCursorExec(nil, term)
}

// RDILRankCursorExec is RDILRankCursor under a per-query execution
// context.
func (ix *Index) RDILRankCursorExec(ec *storage.ExecContext, term string) (*ListCursor, bool) {
	m, ok := ix.rdil[term]
	if !ok {
		return nil, false
	}
	return ix.deweyCursor(ix.rdilPool, m.RankLoc, ix.rdilSkip[term], ec), true
}

// HDILRankCursor returns the rank-ordered *prefix* scan of the term's
// HDIL list (shorter than the full list).
func (ix *Index) HDILRankCursor(term string) (*ListCursor, bool) {
	return ix.HDILRankCursorExec(nil, term)
}

// HDILRankCursorExec is HDILRankCursor under a per-query execution
// context.
func (ix *Index) HDILRankCursorExec(ec *storage.ExecContext, term string) (*ListCursor, bool) {
	m, ok := ix.hdil[term]
	if !ok {
		return nil, false
	}
	return ix.deweyCursor(ix.hdilRankPool, m.RankLoc, ix.hdilRankSkip[term], ec), true
}

// NaiveIDCursor returns an element-ID-ordered scan of the term's naive
// list.
func (ix *Index) NaiveIDCursor(term string) (*ListCursor, bool) {
	return ix.NaiveIDCursorExec(nil, term)
}

// NaiveIDCursorExec is NaiveIDCursor under a per-query execution context.
func (ix *Index) NaiveIDCursorExec(ec *storage.ExecContext, term string) (*ListCursor, bool) {
	m, ok := ix.naiveID[term]
	if !ok {
		return nil, false
	}
	return &ListCursor{pc: newPostCursor(ix.naiveIDPool, m.Loc, ec), dewey: false}, true
}

// NaiveRankCursor returns a rank-ordered scan of the term's naive list.
func (ix *Index) NaiveRankCursor(term string) (*ListCursor, bool) {
	return ix.NaiveRankCursorExec(nil, term)
}

// NaiveRankCursorExec is NaiveRankCursor under a per-query execution
// context.
func (ix *Index) NaiveRankCursorExec(ec *storage.ExecContext, term string) (*ListCursor, bool) {
	m, ok := ix.naiveRank[term]
	if !ok {
		return nil, false
	}
	return &ListCursor{pc: newPostCursor(ix.naiveRankPool, m.Loc, ec), dewey: false}, true
}

// NaiveLookup probes the term's hash index for an element ID, decoding the
// found entry (Naive-Rank's random equality lookup).
func (ix *Index) NaiveLookup(term string, elem int32, p *Posting) (bool, error) {
	return ix.NaiveLookupExec(nil, term, elem, p)
}

// NaiveLookupExec is NaiveLookup under a per-query execution context.
func (ix *Index) NaiveLookupExec(ec *storage.ExecContext, term string, elem int32, p *Posting) (bool, error) {
	m, ok := ix.naiveRank[term]
	if !ok {
		return false, nil
	}
	page, off, ok, err := hashLookup(ec, ix.naiveHashPool, m.Hash, elem)
	if err != nil || !ok {
		return false, err
	}
	fr, err := ix.naiveRankPool.GetExec(ec, page)
	if err != nil {
		return false, err
	}
	defer fr.Release()
	if int(off)+entryLenSize > len(fr.Data) {
		return false, fmt.Errorf("index: hash points beyond page")
	}
	ln := binary.LittleEndian.Uint16(fr.Data[off:])
	start := int(off) + entryLenSize
	end := start + int(ln)
	if ln == padEntry || end > len(fr.Data) {
		return false, fmt.Errorf("index: hash points at padding")
	}
	return true, DecodeNaiveEntry(fr.Data[start:end], p)
}

// NaiveCount returns the entry count of the term's naive list.
func (ix *Index) NaiveCount(term string) int { return int(ix.naiveID[term].Loc.Count) }
