package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"xrank/internal/btree"
	"xrank/internal/storage"
)

// Per-variant term metadata. Lexicons are loaded fully into memory at
// open time, the standard arrangement for inverted-list engines (the
// paper's size tables count inverted lists and indexes; lexicons are
// negligible beside them).

// DILMeta locates a term's Dewey-ordered inverted list.
type DILMeta struct {
	Loc Loc
}

// RDILMeta locates a term's rank-ordered inverted list and the root of
// its Dewey-keyed B+-tree (Section 4.3.1).
type RDILMeta struct {
	RankLoc Loc
	Root    btree.Ref
}

// HDILMeta describes a term in the hybrid layout (Section 4.4.1): the
// full Dewey-ordered list (shared with DIL, reused as the B+-tree leaf
// level), its end position, the short rank-ordered prefix, and the root
// of the external-leaf B+-tree.
type HDILMeta struct {
	DilLoc  Loc
	EndPage storage.PageID // position just after the last entry
	EndOff  uint16
	RankLoc Loc // rank-ordered prefix (RankLoc.Count <= DilLoc.Count)
	Root    btree.Ref
}

// NaiveMeta locates a term's naive (ancestor-replicating) inverted list.
type NaiveMeta struct {
	Loc Loc
}

// HashMeta locates a term's static hash table over element IDs
// (Naive-Rank's random-lookup index).
type HashMeta struct {
	Page   storage.PageID
	Off    uint16 // nonzero only for tables packed into a shared page
	NSlots uint32
}

// NaiveRankMeta locates a term's rank-ordered naive list and its hash
// index.
type NaiveRankMeta struct {
	Loc  Loc
	Hash HashMeta
}

const lexMagic = 0x584C4558 // "XLEX"

// lexVersion is the current lexicon format version.
const lexVersion = 1

// writeLexicon builds a lexicon file in memory — terms with fixed-format
// metadata blobs produced by enc — writes it with the atomic protocol,
// and returns its size and checksum for the meta.json commit record.
func writeLexicon(fs storage.FS, path string, terms []string, enc func(term string, buf []byte) []byte) (storage.FileSum, error) {
	out := make([]byte, 0, 12+len(terms)*32)
	out = binary.LittleEndian.AppendUint32(out, lexMagic)
	out = binary.LittleEndian.AppendUint32(out, lexVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(terms)))
	for _, t := range terms {
		if len(t) > 0xFFFF {
			return storage.FileSum{}, fmt.Errorf("index: term too long (%d bytes)", len(t))
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(t)))
		out = append(out, t...)
		meta := enc(t, nil)
		if len(meta) > 0xFFFF {
			return storage.FileSum{}, fmt.Errorf("index: metadata too long")
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(meta)))
		out = append(out, meta...)
	}
	if err := storage.WriteFileAtomic(fs, path, out); err != nil {
		return storage.FileSum{}, fmt.Errorf("index: write lexicon %s: %w", path, err)
	}
	return storage.FileSum{Size: int64(len(out)), CRC32: storage.Checksum(out)}, nil
}

// readLexicon reads a lexicon file, invoking dec for each (term, meta).
// Structural damage is reported as a storage.ErrCorrupt-wrapping error
// (the whole-file checksum in meta.json is verified before this runs, so
// in practice these errors indicate a format bug, not bit rot).
func readLexicon(fs storage.FS, path string, dec func(term string, meta []byte) error) error {
	b, err := storage.DefaultFS(fs).ReadFile(path)
	if err != nil {
		return fmt.Errorf("index: open lexicon: %w", err)
	}
	r := bytes.NewReader(b)
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("index: %w lexicon %s: truncated header", storage.ErrCorrupt, path)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != lexMagic {
		return fmt.Errorf("index: %w %s: not a lexicon file", storage.ErrCorrupt, path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != lexVersion {
		return fmt.Errorf("index: %w %s: lexicon version %d, this build understands %d",
			storage.ErrCorrupt, path, v, lexVersion)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	var buf []byte
	for i := uint32(0); i < n; i++ {
		var l16 [2]byte
		if _, err := io.ReadFull(r, l16[:]); err != nil {
			return fmt.Errorf("index: lexicon term %d: %w", i, err)
		}
		tl := int(binary.LittleEndian.Uint16(l16[:]))
		if cap(buf) < tl {
			buf = make([]byte, tl)
		}
		buf = buf[:tl]
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		term := string(buf)
		if _, err := io.ReadFull(r, l16[:]); err != nil {
			return err
		}
		ml := int(binary.LittleEndian.Uint16(l16[:]))
		meta := make([]byte, ml)
		if _, err := io.ReadFull(r, meta); err != nil {
			return err
		}
		if err := dec(term, meta); err != nil {
			return err
		}
	}
	return nil
}

// Fixed-size field encoders shared by the meta types.

func appendLoc(buf []byte, l Loc) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.Page))
	buf = binary.LittleEndian.AppendUint16(buf, l.Off)
	buf = binary.LittleEndian.AppendUint32(buf, l.Count)
	buf = binary.LittleEndian.AppendUint32(buf, l.Bytes)
	return buf
}

const locSize = 14

func decodeLoc(buf []byte) Loc {
	return Loc{
		Page:  storage.PageID(binary.LittleEndian.Uint32(buf[0:])),
		Off:   binary.LittleEndian.Uint16(buf[4:]),
		Count: binary.LittleEndian.Uint32(buf[6:]),
		Bytes: binary.LittleEndian.Uint32(buf[10:]),
	}
}

func (m DILMeta) encode(buf []byte) []byte { return appendLoc(buf, m.Loc) }

func decodeDILMeta(buf []byte) (DILMeta, error) {
	if len(buf) != locSize {
		return DILMeta{}, fmt.Errorf("index: bad DIL meta size %d", len(buf))
	}
	return DILMeta{Loc: decodeLoc(buf)}, nil
}

func (m RDILMeta) encode(buf []byte) []byte {
	buf = appendLoc(buf, m.RankLoc)
	return m.Root.AppendTo(buf)
}

func decodeRDILMeta(buf []byte) (RDILMeta, error) {
	if len(buf) != locSize+btree.RefSize {
		return RDILMeta{}, fmt.Errorf("index: bad RDIL meta size %d", len(buf))
	}
	return RDILMeta{RankLoc: decodeLoc(buf), Root: btree.DecodeRef(buf[locSize:])}, nil
}

func (m HDILMeta) encode(buf []byte) []byte {
	buf = appendLoc(buf, m.DilLoc)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.EndPage))
	buf = binary.LittleEndian.AppendUint16(buf, m.EndOff)
	buf = appendLoc(buf, m.RankLoc)
	return m.Root.AppendTo(buf)
}

func decodeHDILMeta(buf []byte) (HDILMeta, error) {
	if len(buf) != locSize+6+locSize+btree.RefSize {
		return HDILMeta{}, fmt.Errorf("index: bad HDIL meta size %d", len(buf))
	}
	m := HDILMeta{DilLoc: decodeLoc(buf)}
	buf = buf[locSize:]
	m.EndPage = storage.PageID(binary.LittleEndian.Uint32(buf))
	m.EndOff = binary.LittleEndian.Uint16(buf[4:])
	buf = buf[6:]
	m.RankLoc = decodeLoc(buf)
	m.Root = btree.DecodeRef(buf[locSize:])
	return m, nil
}

func (m NaiveMeta) encode(buf []byte) []byte { return appendLoc(buf, m.Loc) }

func decodeNaiveMeta(buf []byte) (NaiveMeta, error) {
	if len(buf) != locSize {
		return NaiveMeta{}, fmt.Errorf("index: bad naive meta size %d", len(buf))
	}
	return NaiveMeta{Loc: decodeLoc(buf)}, nil
}

func (m NaiveRankMeta) encode(buf []byte) []byte {
	buf = appendLoc(buf, m.Loc)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Hash.Page))
	buf = binary.LittleEndian.AppendUint16(buf, m.Hash.Off)
	buf = binary.LittleEndian.AppendUint32(buf, m.Hash.NSlots)
	return buf
}

func decodeNaiveRankMeta(buf []byte) (NaiveRankMeta, error) {
	if len(buf) != locSize+10 {
		return NaiveRankMeta{}, fmt.Errorf("index: bad naive-rank meta size %d", len(buf))
	}
	m := NaiveRankMeta{Loc: decodeLoc(buf)}
	buf = buf[locSize:]
	m.Hash.Page = storage.PageID(binary.LittleEndian.Uint32(buf))
	m.Hash.Off = binary.LittleEndian.Uint16(buf[4:])
	m.Hash.NSlots = binary.LittleEndian.Uint32(buf[6:])
	return m, nil
}
