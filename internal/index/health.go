package index

import (
	"sync"
	"time"
)

// Shard health: the degraded-mode state machine. Every shard starts
// healthy. The query layer records the outcome of each per-shard
// execution; a shard whose reads keep failing after bounded retries
// accumulates consecutive failures, and once they reach the caller's
// threshold the shard is marked unhealthy and excluded from subsequent
// queries until ResetHealth revives it (e.g. after an operator replaces
// the device). A success at any point zeroes the failure streak.
//
// Exclusion is sticky, with one escape hatch besides ResetHealth: a
// half-open probe. When the caller passes a probe interval, TryProbe
// admits one trial execution per interval for an unhealthy shard; the
// trial runs as a normal shard execution, and on success Revive returns
// the shard to service. A failed trial re-arms the interval, so a shard
// that is still broken costs at most one extra execution per interval.

// ShardHealth is a snapshot of one shard's availability, surfaced through
// the engine and the /api/shards endpoint.
type ShardHealth struct {
	Shard     int    `json:"shard"`
	Healthy   bool   `json:"healthy"`
	Failures  int    `json:"consecutive_failures"`
	LastError string `json:"last_error,omitempty"`
}

type shardHealth struct {
	mu        sync.Mutex
	failures  int
	unhealthy bool
	lastErr   string
	// lastAttempt is when the shard was last marked unhealthy or last
	// granted a half-open probe; TryProbe admits the next trial one
	// interval after it.
	lastAttempt time.Time
}

func (sh *Sharded) initHealth() {
	sh.health = make([]shardHealth, len(sh.shards))
}

// ShardHealthy reports whether shard s is currently serving queries.
// Out-of-range shards (and indexes opened before health tracking) read
// as healthy.
func (sh *Sharded) ShardHealthy(s int) bool {
	if s < 0 || s >= len(sh.health) {
		return true
	}
	h := &sh.health[s]
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.unhealthy
}

// RecordShardSuccess zeroes shard s's consecutive-failure streak. It does
// not revive an unhealthy shard — exclusion is sticky until ResetHealth —
// but an unhealthy shard is never queried, so in practice successes only
// arrive for healthy shards.
func (sh *Sharded) RecordShardSuccess(s int) {
	if s < 0 || s >= len(sh.health) {
		return
	}
	h := &sh.health[s]
	h.mu.Lock()
	if !h.unhealthy {
		h.failures = 0
		h.lastErr = ""
	}
	h.mu.Unlock()
}

// RecordShardFailure counts one post-retry failure against shard s and
// marks it unhealthy once the streak reaches threshold (<= 0 disables
// marking). It returns true if the shard is now (or already was)
// unhealthy.
func (sh *Sharded) RecordShardFailure(s int, err error, threshold int) bool {
	if s < 0 || s >= len(sh.health) {
		return false
	}
	h := &sh.health[s]
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failures++
	if err != nil {
		h.lastErr = err.Error()
	}
	if threshold > 0 && h.failures >= threshold {
		if !h.unhealthy {
			h.lastAttempt = time.Now()
		}
		h.unhealthy = true
	}
	return h.unhealthy
}

// TryProbe reports whether unhealthy shard s is due a half-open trial
// under the given probe interval, and reserves the trial slot: at most
// one caller per interval gets true, and a failed trial waits a full
// interval before the next. A healthy shard, an out-of-range s, or a
// non-positive interval never probes.
func (sh *Sharded) TryProbe(s int, interval time.Duration) bool {
	if interval <= 0 || s < 0 || s >= len(sh.health) {
		return false
	}
	h := &sh.health[s]
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.unhealthy {
		return false
	}
	now := time.Now()
	if now.Sub(h.lastAttempt) < interval {
		return false
	}
	h.lastAttempt = now
	return true
}

// Revive returns shard s to the healthy state after a successful
// half-open trial, zeroing its failure streak.
func (sh *Sharded) Revive(s int) {
	if s < 0 || s >= len(sh.health) {
		return
	}
	h := &sh.health[s]
	h.mu.Lock()
	h.failures, h.unhealthy, h.lastErr = 0, false, ""
	h.mu.Unlock()
}

// Health returns a snapshot of every shard's health, in shard order.
func (sh *Sharded) Health() []ShardHealth {
	out := make([]ShardHealth, len(sh.health))
	for i := range sh.health {
		h := &sh.health[i]
		h.mu.Lock()
		out[i] = ShardHealth{
			Shard:     i,
			Healthy:   !h.unhealthy,
			Failures:  h.failures,
			LastError: h.lastErr,
		}
		h.mu.Unlock()
	}
	return out
}

// UnhealthyCount returns how many shards are currently excluded.
func (sh *Sharded) UnhealthyCount() int {
	n := 0
	for i := range sh.health {
		h := &sh.health[i]
		h.mu.Lock()
		if h.unhealthy {
			n++
		}
		h.mu.Unlock()
	}
	return n
}

// ResetHealth returns every shard to the healthy state with a zero
// failure streak.
func (sh *Sharded) ResetHealth() {
	for i := range sh.health {
		h := &sh.health[i]
		h.mu.Lock()
		h.failures, h.unhealthy, h.lastErr = 0, false, ""
		h.mu.Unlock()
	}
}
