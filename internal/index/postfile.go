package index

import (
	"encoding/binary"
	"fmt"

	"xrank/internal/storage"
)

// Loc addresses the start of a term's list within a postings file.
type Loc struct {
	Page  storage.PageID
	Off   uint16
	Count uint32 // number of entries in the list
	Bytes uint32 // total encoded bytes including length prefixes and padding skips
}

// postWriter streams length-prefixed entries into pages of a PageFile.
// Entries never span pages: when an entry does not fit in the remainder of
// the current page, the remainder is marked as padding and the entry
// starts on the next page.
type postWriter struct {
	pf   *storage.PageFile
	page []byte
	used int
}

func newPostWriter(pf *storage.PageFile) *postWriter {
	return &postWriter{pf: pf, page: make([]byte, storage.PageSize)}
}

// pos returns the location the next entry will be written to.
func (w *postWriter) pos() (storage.PageID, uint16) {
	return storage.PageID(w.pf.NumPages()), uint16(w.used)
}

// remaining returns how many bytes fit in the current page before the
// next entry would be pushed to a fresh page. Prefix-compressing writers
// use it to decide whether the next entry stays on the page (and may
// reference the previous entry) or must be self-contained.
func (w *postWriter) remaining() int { return storage.PageSize - w.used }

// writeEntry writes one encoded entry (including its length prefix) and
// returns its location.
func (w *postWriter) writeEntry(entry []byte) (storage.PageID, uint16, error) {
	if len(entry) > storage.PageSize {
		return 0, 0, fmt.Errorf("index: entry of %d bytes exceeds page size", len(entry))
	}
	if w.used+len(entry) > storage.PageSize {
		if err := w.pad(); err != nil {
			return 0, 0, err
		}
	}
	page, off := w.pos()
	copy(w.page[w.used:], entry)
	w.used += len(entry)
	return page, off, nil
}

// pad fills the remainder of the current page with a padding marker and
// flushes it.
func (w *postWriter) pad() error {
	if w.used == 0 {
		return nil
	}
	if w.used+entryLenSize <= storage.PageSize {
		binary.LittleEndian.PutUint16(w.page[w.used:], padEntry)
	}
	for i := w.used + entryLenSize; i < storage.PageSize; i++ {
		w.page[i] = 0
	}
	if _, err := w.pf.AppendPage(w.page); err != nil {
		return err
	}
	w.used = 0
	return nil
}

// flush finalizes the file (pads out the last partial page).
func (w *postWriter) flush() error { return w.pad() }

// postCursor iterates a term's list sequentially, pinning one page at a
// time. It is the scan primitive behind DIL merges and RDIL round-robin
// reads.
type postCursor struct {
	pool *storage.BufferPool
	loc  Loc
	ec   *storage.ExecContext // per-query attribution/cancellation; may be nil

	frame *storage.Frame
	page  storage.PageID
	off   int
	read  uint32 // entries consumed so far
	body  []byte // current entry body (aliases the pinned frame)
}

func newPostCursor(pool *storage.BufferPool, loc Loc, ec *storage.ExecContext) *postCursor {
	return &postCursor{pool: pool, loc: loc, ec: ec, page: loc.Page, off: int(loc.Off)}
}

// next advances to the next entry, returning false at the end of the list.
// The returned body aliases the pinned page and is valid until the
// following next/close call.
func (c *postCursor) next() (bool, error) {
	if c.read >= c.loc.Count {
		c.close()
		return false, nil
	}
	for {
		if c.frame == nil {
			fr, err := c.pool.GetExec(c.ec, c.page)
			if err != nil {
				return false, err
			}
			c.frame = fr
		}
		if c.off+entryLenSize > storage.PageSize {
			c.advancePage()
			continue
		}
		ln := binary.LittleEndian.Uint16(c.frame.Data[c.off:])
		if ln == padEntry {
			c.advancePage()
			continue
		}
		start := c.off + entryLenSize
		end := start + int(ln)
		if end > storage.PageSize {
			c.close()
			return false, fmt.Errorf("index: corrupt entry length %d at page %d off %d", ln, c.page, c.off)
		}
		c.body = c.frame.Data[start:end]
		c.off = end
		c.read++
		return true, nil
	}
}

func (c *postCursor) advancePage() {
	if c.frame != nil {
		c.frame.Release()
		c.frame = nil
	}
	c.page++
	c.off = 0
}

// close releases the pinned page. Safe to call repeatedly.
func (c *postCursor) close() {
	if c.frame != nil {
		c.frame.Release()
		c.frame = nil
	}
}

// exhausted reports whether the cursor has consumed its whole list.
func (c *postCursor) exhausted() bool { return c.read >= c.loc.Count }
