package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xrank/internal/dewey"
	"xrank/internal/elemrank"
	"xrank/internal/xmldoc"
)

// Tests for the prefix-compressed Dewey entry extension.

func TestCompressedEntryCodec(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	var prev dewey.ID
	for trial := 0; trial < 500; trial++ {
		id := make(dewey.ID, 1+r.Intn(8))
		// Random but often sharing a prefix with prev, as real lists do.
		copyLen := 0
		if prev != nil {
			copyLen = r.Intn(len(prev) + 1)
			if copyLen > len(id) {
				copyLen = len(id)
			}
			copy(id, prev[:copyLen])
		}
		for i := copyLen; i < len(id); i++ {
			id[i] = uint32(r.Intn(1 << 14))
		}
		rank := r.Float32()
		var positions []uint32
		pos := uint32(0)
		for i := 0; i < r.Intn(6); i++ {
			pos += uint32(1 + r.Intn(99))
			positions = append(positions, pos)
		}
		enc := AppendDeweyEntryCompressed(nil, prev, id, rank, positions)
		var got Posting
		if err := DecodeDeweyEntryCompressed(enc[entryLenSize:], prev, &got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !dewey.Equal(got.ID, id) || got.Rank != rank || len(got.Positions) != len(positions) {
			t.Fatalf("trial %d: %v/%v != %v/%v", trial, got.ID, got.Rank, id, rank)
		}
		prev = id
	}
}

func TestCompressedCorrupt(t *testing.T) {
	var p Posting
	prev := dewey.ID{1, 2}
	cases := [][]byte{
		{},
		{9, 0, 0},       // lcp exceeds prev
		{1, 5, 0},       // suffixLen beyond buffer
		{0, 1, 0, 0x80}, // truncated suffix component
	}
	for i, c := range cases {
		if err := DecodeDeweyEntryCompressed(c, prev, &p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestCompressionEquivalenceAndSavings builds the same corpus with and
// without CompressDewey: every cursor and prober must yield identical
// postings, and the compressed list must be smaller.
func TestCompressionEquivalenceAndSavings(t *testing.T) {
	// A deep corpus (nested groups, like XMark): sibling entries share
	// long Dewey prefixes, which is where prefix compression pays.
	var b strings.Builder
	b.WriteString("<root>")
	for g := 0; g < 12; g++ {
		b.WriteString("<region><zone><grp>")
		for i := 0; i < 220; i++ {
			fmt.Fprintf(&b, "<item><name>common w%d</name><desc>filler text number %d</desc></item>", i%97, g*1000+i)
		}
		b.WriteString("</grp></zone></region>")
	}
	b.WriteString("</root>")
	c := xmldoc.NewCollection()
	if _, err := c.AddXML("big", strings.NewReader(b.String()), nil); err != nil {
		t.Fatal(err)
	}
	g, _ := elemrank.BuildGraph(c)
	res, err := elemrank.Compute(g, elemrank.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	open := func(compress bool) (*Index, *BuildStats) {
		dir := t.TempDir()
		stats, err := Build(c, res.Scores, dir, BuildOptions{CompressDewey: compress, MinRankPrefix: 8})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Open(dir, OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ix.Close() })
		return ix, stats
	}
	plain, plainStats := open(false)
	comp, compStats := open(true)

	if compStats.DILList >= plainStats.DILList {
		t.Errorf("compressed DIL (%d) not smaller than plain (%d)", compStats.DILList, plainStats.DILList)
	}

	// Every term's DIL scan must match entry for entry.
	for _, term := range []string{"common", "filler", "w13", "name", "item"} {
		a, okA := plain.DILCursor(term)
		b, okB := comp.DILCursor(term)
		if !okA || !okB {
			t.Fatalf("term %q missing (%v %v)", term, okA, okB)
		}
		for {
			pa, oka, err := a.Next()
			if err != nil {
				t.Fatal(err)
			}
			pb, okb, err := b.Next()
			if err != nil {
				t.Fatal(err)
			}
			if oka != okb {
				t.Fatalf("term %q: cursor lengths differ", term)
			}
			if !oka {
				break
			}
			if !dewey.Equal(pa.ID, pb.ID) || pa.Rank != pb.Rank || len(pa.Positions) != len(pb.Positions) {
				t.Fatalf("term %q: %v vs %v", term, pa, pb)
			}
		}
		a.Close()
		b.Close()
	}

	// Probers must agree on LCPs and prefix scans.
	hpPlain, _ := plain.HDILProber("common")
	hpComp, _ := comp.HDILProber("common")
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		target := dewey.ID{0, uint32(r.Intn(3000)), uint32(r.Intn(3))}
		a, err := hpPlain.ProbeLCP(target)
		if err != nil {
			t.Fatal(err)
		}
		b, err := hpComp.ProbeLCP(target)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("ProbeLCP(%v): %d vs %d", target, a, b)
		}
	}
	var idsA, idsB []string
	prefix := dewey.ID{0}
	if err := hpPlain.ScanPrefix(prefix, func(p *Posting) error {
		idsA = append(idsA, fmt.Sprintf("%v@%d", p.ID, len(p.Positions)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hpComp.ScanPrefix(prefix, func(p *Posting) error {
		idsB = append(idsB, fmt.Sprintf("%v@%d", p.ID, len(p.Positions)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(idsA) == 0 || len(idsA) != len(idsB) {
		t.Fatalf("ScanPrefix lengths: %d vs %d", len(idsA), len(idsB))
	}
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatalf("ScanPrefix[%d]: %s vs %s", i, idsA[i], idsB[i])
		}
	}
}
