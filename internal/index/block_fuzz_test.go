package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"xrank/internal/dewey"
	"xrank/internal/storage"
)

// fuzzPosts builds a small deterministic posting set for fuzz seeds.
func fuzzPosts() []Posting {
	return []Posting{
		{ID: dewey.ID{0, 1}, Rank: 0.9, Positions: []uint32{1, 5}},
		{ID: dewey.ID{0, 1, 3}, Rank: 0.5, Positions: []uint32{7}},
		{ID: dewey.ID{2, 0}, Rank: 0.25, Positions: []uint32{0, 2, 1000}},
	}
}

// FuzzBlockDecode feeds arbitrary bytes to the block reader: it must
// never panic and never loop forever — every input either decodes as a
// well-formed block or errors out.
func FuzzBlockDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 0, 3, 0, 0, 0, 0})
	f.Add(encodeBlock(fuzzPosts()))
	f.Fuzz(func(t *testing.T, body []byte) {
		var rd blockReader
		if err := rd.init(body); err != nil {
			return
		}
		var p Posting
		for i := 0; i <= len(body)+2; i++ {
			ok, err := rd.next(&p)
			if err != nil || !ok {
				return
			}
		}
		t.Fatalf("block reader yielded more entries than the input has bytes")
	})
}

// FuzzSkipIndex feeds arbitrary bytes to the skip-index decoder in both
// ordering modes: it must never panic, and every accepted input must
// satisfy the per-mode structural invariants the cursors rely on.
func FuzzSkipIndex(f *testing.F) {
	valid, err := writeSkipIndexBytes([]string{"kw"}, map[string][]BlockRef{
		"kw": {{Page: 0, Off: 0, Count: 3, Bytes: 64, MaxRank: 0.9,
			FirstID: dewey.Encode(dewey.ID{0, 1}), LastID: dewey.Encode(dewey.ID{2, 0})}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, true)
	f.Add(valid, false)
	f.Add([]byte{}, true)
	f.Add([]byte{0x58, 0x53, 0x4B, 0x50}, false)
	f.Fuzz(func(t *testing.T, b []byte, ordered bool) {
		refs, err := decodeSkipIndex(b, ordered)
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("rejection not wrapped in ErrCorrupt: %v", err)
			}
			return
		}
		for term, rs := range refs {
			if len(rs) == 0 {
				t.Fatalf("term %q accepted with zero blocks", term)
			}
			for i := range rs {
				r := &rs[i]
				if r.Count == 0 || len(r.FirstID) == 0 || len(r.LastID) == 0 {
					t.Fatalf("term %q block %d accepted empty: %+v", term, i, r)
				}
				if int(r.Off)+entryLenSize+int(r.Bytes) > storage.PageSize {
					t.Fatalf("term %q block %d accepted spanning a page: %+v", term, i, r)
				}
				if ordered {
					if bytes.Compare(r.FirstID, r.LastID) > 0 {
						t.Fatalf("term %q block %d accepted out of order: %+v", term, i, r)
					}
					if i > 0 && bytes.Compare(rs[i-1].LastID, r.FirstID) > 0 {
						t.Fatalf("term %q blocks %d/%d accepted out of order", term, i-1, i)
					}
				} else if i > 0 && r.MaxRank > rs[i-1].MaxRank {
					t.Fatalf("term %q block %d accepted with rising MaxRank", term, i)
				}
			}
		}
	})
}

// writeSkipIndexBytes is writeSkipIndex minus the file system — it
// produces the encoded bytes for in-memory round trips.
func writeSkipIndexBytes(terms []string, refs map[string][]BlockRef) ([]byte, error) {
	out := make([]byte, 0, 64)
	out = binary.LittleEndian.AppendUint32(out, skipMagic)
	out = binary.LittleEndian.AppendUint32(out, skipVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(terms)))
	for _, t := range terms {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(t)))
		out = append(out, t...)
		rs := refs[t]
		out = binary.LittleEndian.AppendUint32(out, uint32(len(rs)))
		for i := range rs {
			r := &rs[i]
			out = binary.LittleEndian.AppendUint32(out, uint32(r.Page))
			out = binary.LittleEndian.AppendUint16(out, r.Off)
			out = binary.LittleEndian.AppendUint16(out, r.Count)
			out = binary.LittleEndian.AppendUint16(out, r.Bytes)
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(r.MaxRank))
			out = binary.LittleEndian.AppendUint16(out, uint16(len(r.FirstID)))
			out = append(out, r.FirstID...)
			out = binary.LittleEndian.AppendUint16(out, uint16(len(r.LastID)))
			out = append(out, r.LastID...)
		}
	}
	return out, nil
}

// TestBlockRoundTrip pins encode→decode identity for a block: every
// posting comes back bit-identical, in order.
func TestBlockRoundTrip(t *testing.T) {
	posts := fuzzPosts()
	body := encodeBlock(posts)
	var rd blockReader
	if err := rd.init(body); err != nil {
		t.Fatal(err)
	}
	var p Posting
	for i := range posts {
		ok, err := rd.next(&p)
		if err != nil || !ok {
			t.Fatalf("entry %d: ok=%v err=%v", i, ok, err)
		}
		if !dewey.Equal(p.ID, posts[i].ID) || p.Rank != posts[i].Rank {
			t.Fatalf("entry %d decoded %v/%v, want %v/%v", i, p.ID, p.Rank, posts[i].ID, posts[i].Rank)
		}
		if len(p.Positions) != len(posts[i].Positions) {
			t.Fatalf("entry %d posList %v, want %v", i, p.Positions, posts[i].Positions)
		}
		for j := range p.Positions {
			if p.Positions[j] != posts[i].Positions[j] {
				t.Fatalf("entry %d posList %v, want %v", i, p.Positions, posts[i].Positions)
			}
		}
	}
	if ok, err := rd.next(&p); ok || err != nil {
		t.Fatalf("trailing entry: ok=%v err=%v", ok, err)
	}
}

// TestDecodeDeweyEntryCompressedResetsOnError is the regression test for
// the partial-write bug: on any decode error the out-posting must come
// back zeroed, because callers chain decoded IDs as the next entry's
// prev — a partially-written ID would corrupt every later entry on the
// page instead of surfacing the error's true position.
func TestDecodeDeweyEntryCompressedResetsOnError(t *testing.T) {
	prev := dewey.ID{1, 2, 3}
	good := AppendDeweyEntryCompressed(nil, prev, dewey.ID{1, 2, 4}, 0.5, []uint32{9})
	body := good[entryLenSize:]

	cases := map[string][]byte{
		"too short":     {3},
		"lcp too long":  {255, 1, 0x80},
		"truncated":     body[:len(body)-3],
		"bad posList":   append(append([]byte{}, body[:len(body)-1]...), 0xFF),
		"bad suffixLen": {1, 0xFF},
	}
	for name, mut := range cases {
		p := Posting{ID: dewey.ID{9, 9, 9}, Elem: 7, Rank: 3.5, Positions: []uint32{1, 2}}
		if err := DecodeDeweyEntryCompressed(mut, prev, &p); err == nil {
			t.Fatalf("%s: decode accepted corrupt body", name)
		}
		if len(p.ID) != 0 || len(p.Positions) != 0 || p.Elem != 0 || p.Rank != 0 {
			t.Fatalf("%s: error path left a partial posting: %+v", name, p)
		}
	}
}
