package loadgen

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Percentile returns the q-th percentile (q in [0,1]) of samples by
// linear interpolation between closest ranks; samples need not be
// sorted. Unlike the histogram estimate in internal/obs, this is exact:
// the load harness keeps every latency sample, so nothing is lost to
// bucket resolution.
func Percentile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i] + int64(frac*float64(s[i+1]-s[i]))
}

// ArmReport is the published measurement of one arm: the slice of
// BENCH_load.json the SLO gate compares, and one CSV row.
type ArmReport struct {
	Arm     string  `json:"arm"`
	Kind    string  `json:"kind"`
	Arrival string  `json:"arrival"`
	Algo    string  `json:"algo"`
	TopM    int     `json:"top_m"`
	Seed    int64   `json:"seed"`
	ZipfS   float64 `json:"zipf_s"`
	Vocab   int     `json:"vocab"`

	TargetRPS    float64 `json:"target_rps"`
	AchievedRPS  float64 `json:"achieved_rps"` // dispatched / wall
	DurationSecs float64 `json:"duration_secs"`

	Sent       int64 `json:"sent"`
	OK         int64 `json:"ok"`
	Shed429    int64 `json:"shed_429"`
	Expired503 int64 `json:"expired_503"`
	Timeout504 int64 `json:"timeout_504"`
	NotFound   int64 `json:"not_found_404"`
	Failed     int64 `json:"failed"`
	Dropped    int64 `json:"dropped_client"`

	// Accepted-search latency percentiles, measured from intended send
	// time (µs). These are the SLO numbers.
	P50Micros  int64 `json:"p50_micros"`
	P90Micros  int64 `json:"p90_micros"`
	P99Micros  int64 `json:"p99_micros"`
	P999Micros int64 `json:"p999_micros"`
	MeanMicros int64 `json:"mean_micros"`
	MaxMicros  int64 `json:"max_micros"`

	// Update-path latency (updates arm only).
	UpdateOK        int64 `json:"update_ok,omitempty"`
	UpdateP99Micros int64 `json:"update_p99_micros,omitempty"`

	// Server-Timing split over accepted searches (µs means).
	ServerQueueMeanMicros  int64 `json:"server_queue_mean_micros"`
	ServerSearchMeanMicros int64 `json:"server_search_mean_micros"`

	// Engine-side percentiles over the arm's interval, reconstructed
	// from the /metrics latency histogram (0 when metrics are off).
	EngineP50Micros int64 `json:"engine_p50_micros"`
	EngineP99Micros int64 `json:"engine_p99_micros"`

	// Server-side rates over the arm's interval, scraped from /metrics.
	ShedRate     float64 `json:"shed_rate"` // 429s / dispatched searches
	CacheHitRate float64 `json:"cache_hit_rate"`
	CoalesceRate float64 `json:"coalesce_rate"`
	DegradedRate float64 `json:"degraded_rate"`

	// Targets attributes the arm per base URL on a multi-target run
	// (requests round-robin across comma-separated -url targets); empty
	// for the single-target case.
	Targets []TargetReport `json:"targets,omitempty"`
}

// TargetReport is one target's share of a multi-target arm.
type TargetReport struct {
	URL        string `json:"url"`
	Sent       int64  `json:"sent"`
	OK         int64  `json:"ok"`
	Shed429    int64  `json:"shed_429"`
	Expired503 int64  `json:"expired_503"`
	Timeout504 int64  `json:"timeout_504"`
	NotFound   int64  `json:"not_found_404"`
	Failed     int64  `json:"failed"`
	P50Micros  int64  `json:"p50_micros"`
	P99Micros  int64  `json:"p99_micros"`
}

// Report is the BENCH_load.json artifact.
type Report struct {
	Seed     int64       `json:"seed"`
	Workers  int         `json:"workers"` // GOMAXPROCS at run time
	Corpus   string      `json:"corpus,omitempty"`
	Docs     int         `json:"docs,omitempty"`
	Elements int         `json:"elements,omitempty"`
	Arms     []ArmReport `json:"arms"`
}

// algoLabel maps the query parameter spelling to the engine's metric
// label (Algorithm.String()).
func algoLabel(algo string) string {
	switch algo {
	case "dil":
		return "DIL"
	case "rdil":
		return "RDIL"
	case "hdil":
		return "HDIL"
	case "naiveid":
		return "NaiveID"
	case "naiverank":
		return "NaiveRank"
	}
	return algo
}

// BuildArmReport condenses a raw run into the published arm report.
func BuildArmReport(res *ArmResult) ArmReport {
	s := res.Spec
	a := ArmReport{
		Arm: s.Name, Kind: s.Kind, Arrival: s.Arrival, Algo: s.Algo,
		TopM: s.TopM, Seed: res.Seed, ZipfS: s.ZipfS, Vocab: s.Vocab,
		TargetRPS:    s.RPS,
		DurationSecs: s.Duration.Seconds(),
		Sent:         res.Counts.Sent,
		OK:           res.Counts.OK,
		Shed429:      res.Counts.Shed429,
		Expired503:   res.Counts.Expired503,
		Timeout504:   res.Counts.Timeout504,
		NotFound:     res.Counts.NotFound,
		Failed:       res.Counts.Failed,
		Dropped:      res.Counts.Dropped,
	}
	if res.Wall > 0 {
		a.AchievedRPS = float64(res.Counts.Sent) / res.Wall.Seconds()
	}
	if n := len(res.SearchMicros); n > 0 {
		a.P50Micros = Percentile(res.SearchMicros, 0.50)
		a.P90Micros = Percentile(res.SearchMicros, 0.90)
		a.P99Micros = Percentile(res.SearchMicros, 0.99)
		a.P999Micros = Percentile(res.SearchMicros, 0.999)
		a.MaxMicros = Percentile(res.SearchMicros, 1)
		var sum int64
		for _, v := range res.SearchMicros {
			sum += v
		}
		a.MeanMicros = sum / int64(n)
	}
	if n := len(res.UpdateMicros); n > 0 {
		a.UpdateOK = int64(n)
		a.UpdateP99Micros = Percentile(res.UpdateMicros, 0.99)
	}
	if res.ServerTimed > 0 {
		a.ServerQueueMeanMicros = res.ServerQueueMicros / res.ServerTimed
		a.ServerSearchMeanMicros = res.ServerSearchMicros / res.ServerTimed
	}
	if res.Searches > 0 {
		a.ShedRate = float64(res.Counts.Shed429) / float64(res.Searches)
	}
	if res.MetricsBefore != nil && res.MetricsAfter != nil {
		hits := FamilyDelta(res.MetricsBefore, res.MetricsAfter, "xrank_cache_result_hits_total")
		misses := FamilyDelta(res.MetricsBefore, res.MetricsAfter, "xrank_cache_result_misses_total")
		if hits+misses > 0 {
			a.CacheHitRate = hits / (hits + misses)
		}
		queries := FamilyDelta(res.MetricsBefore, res.MetricsAfter, "xrank_queries_total")
		coalesced := FamilyDelta(res.MetricsBefore, res.MetricsAfter, "xrank_coalesced_queries_total")
		degraded := FamilyDelta(res.MetricsBefore, res.MetricsAfter, "xrank_degraded_queries_total")
		if queries > 0 {
			a.CoalesceRate = coalesced / queries
			a.DegradedRate = degraded / queries
		}
		lat := HistogramDelta(res.MetricsBefore, res.MetricsAfter,
			"xrank_query_latency_seconds", `algo="`+algoLabel(s.Algo)+`"`)
		if lat.Count > 0 {
			qs := lat.Quantiles(0.5, 0.99)
			a.EngineP50Micros = int64(qs[0] * 1e6)
			a.EngineP99Micros = int64(qs[1] * 1e6)
		}
	}
	for _, tr := range res.Targets {
		a.Targets = append(a.Targets, TargetReport{
			URL: tr.URL, Sent: tr.Counts.Sent, OK: tr.Counts.OK,
			Shed429: tr.Counts.Shed429, Expired503: tr.Counts.Expired503,
			Timeout504: tr.Counts.Timeout504, NotFound: tr.Counts.NotFound,
			Failed:    tr.Counts.Failed,
			P50Micros: Percentile(tr.SearchMicros, 0.50),
			P99Micros: Percentile(tr.SearchMicros, 0.99),
		})
	}
	return a
}

// WriteJSON writes the report to path, indented.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// csvHeader is the column order of the CSV report; one row per arm.
// The trailing target_* columns attribute a multi-target arm per base
// URL as pipe-joined lists (aligned with target_urls); a single-target
// arm leaves them empty.
var csvHeader = []string{
	"arm", "kind", "arrival", "algo", "top_m", "seed",
	"target_rps", "achieved_rps", "duration_secs",
	"sent", "ok", "shed_429", "expired_503", "timeout_504", "not_found_404", "failed", "dropped_client",
	"p50_micros", "p90_micros", "p99_micros", "p999_micros", "mean_micros", "max_micros",
	"update_ok", "update_p99_micros",
	"server_queue_mean_micros", "server_search_mean_micros",
	"engine_p50_micros", "engine_p99_micros",
	"shed_rate", "cache_hit_rate", "coalesce_rate", "degraded_rate",
	"targets", "target_urls", "target_sent", "target_ok", "target_backpressure", "target_failed", "target_p99_micros",
}

// targetColumns renders the pipe-joined attribution cells for one arm.
func targetColumns(targets []TargetReport) []string {
	n := len(targets)
	if n == 0 {
		n = 1
	}
	cols := []string{strconv.Itoa(n), "", "", "", "", "", ""}
	if len(targets) == 0 {
		return cols
	}
	join := func(pick func(TargetReport) string) string {
		parts := make([]string, len(targets))
		for i, tr := range targets {
			parts[i] = pick(tr)
		}
		return strings.Join(parts, "|")
	}
	d := func(v int64) string { return strconv.FormatInt(v, 10) }
	cols[1] = join(func(tr TargetReport) string { return tr.URL })
	cols[2] = join(func(tr TargetReport) string { return d(tr.Sent) })
	cols[3] = join(func(tr TargetReport) string { return d(tr.OK) })
	cols[4] = join(func(tr TargetReport) string { return d(tr.Shed429 + tr.Expired503 + tr.Timeout504) })
	cols[5] = join(func(tr TargetReport) string { return d(tr.Failed) })
	cols[6] = join(func(tr TargetReport) string { return d(tr.P99Micros) })
	return cols
}

// WriteCSV writes the percentile report as CSV, one row per arm.
func (r *Report) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	if err := w.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	d := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, a := range r.Arms {
		row := []string{
			a.Arm, a.Kind, a.Arrival, a.Algo, strconv.Itoa(a.TopM), d(a.Seed),
			f(a.TargetRPS), f(a.AchievedRPS), f(a.DurationSecs),
			d(a.Sent), d(a.OK), d(a.Shed429), d(a.Expired503), d(a.Timeout504), d(a.NotFound), d(a.Failed), d(a.Dropped),
			d(a.P50Micros), d(a.P90Micros), d(a.P99Micros), d(a.P999Micros), d(a.MeanMicros), d(a.MaxMicros),
			d(a.UpdateOK), d(a.UpdateP99Micros),
			d(a.ServerQueueMeanMicros), d(a.ServerSearchMeanMicros),
			d(a.EngineP50Micros), d(a.EngineP99Micros),
			f(a.ShedRate), f(a.CacheHitRate), f(a.CoalesceRate), f(a.DegradedRate),
		}
		row = append(row, targetColumns(a.Targets)...)
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// ReadReport loads a BENCH_load.json artifact.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	return &r, nil
}

// DefaultSLORatio is the tolerated p99 growth before the CI gate fails:
// the median across arms of new/baseline accepted-p99 ratios must stay
// at or below it. Tail latency on shared runners is noisier than the
// mean the shard guard uses, so the bar sits higher (2.5x) — the gate
// exists to catch step-function regressions (a lock added on the hot
// path, an accidental O(n) scan), not 20% drift.
const DefaultSLORatio = 2.5

// SLOResult is the verdict of one baseline comparison.
type SLOResult struct {
	Arms        []string  // arms compared, in the current report's order
	Ratios      []float64 // per-arm current/baseline accepted-p99 ratios
	MedianRatio float64
	Threshold   float64
	Regressed   bool
}

func (s *SLOResult) String() string {
	msg := fmt.Sprintf("median p99 ratio %.3f over arms %v (threshold %.2f)",
		s.MedianRatio, s.Arms, s.Threshold)
	if s.Regressed {
		return "REGRESSION: " + msg
	}
	return "ok: " + msg
}

// CompareReports gates a fresh load report against a committed
// baseline: for every arm name present in both, the ratio of accepted-
// request p99s, failing when the median ratio exceeds threshold
// (<=0 means DefaultSLORatio). An error means the reports cannot be
// compared at all — which should also fail the gate, loudly.
func CompareReports(baseline, current *Report, threshold float64) (*SLOResult, error) {
	if threshold <= 0 {
		threshold = DefaultSLORatio
	}
	if len(baseline.Arms) == 0 {
		return nil, fmt.Errorf("loadgen: baseline report has no arms")
	}
	base := make(map[string]int64, len(baseline.Arms))
	for _, a := range baseline.Arms {
		base[a.Arm] = a.P99Micros
	}
	s := &SLOResult{Threshold: threshold}
	for _, a := range current.Arms {
		b, ok := base[a.Arm]
		if !ok {
			continue
		}
		if b <= 0 || a.P99Micros <= 0 {
			return nil, fmt.Errorf("loadgen: non-positive p99 for arm %s (baseline %dµs, current %dµs)",
				a.Arm, b, a.P99Micros)
		}
		s.Arms = append(s.Arms, a.Arm)
		s.Ratios = append(s.Ratios, float64(a.P99Micros)/float64(b))
	}
	if len(s.Ratios) == 0 {
		return nil, fmt.Errorf("loadgen: no arms in common between baseline and current report")
	}
	sorted := append([]float64(nil), s.Ratios...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.MedianRatio = sorted[mid]
	} else {
		s.MedianRatio = (sorted[mid-1] + sorted[mid]) / 2
	}
	s.Regressed = s.MedianRatio > threshold
	return s, nil
}

// CheckOverload verifies the overload arm demonstrated admission
// control doing its job: the server visibly shed (429s observed) while
// the requests it *did* accept stayed within the absolute SLO — load
// shedding that protects nobody is indistinguishable from an outage.
func CheckOverload(a ArmReport, p99SLO time.Duration) error {
	if a.Kind != KindOverload {
		return fmt.Errorf("loadgen: arm %s is %s, not overload", a.Arm, a.Kind)
	}
	if a.Shed429 == 0 {
		return fmt.Errorf("loadgen: overload arm %s shed nothing (sent %d, ok %d) — target not saturated, raise the rate multiple or lower -max-inflight",
			a.Arm, a.Sent, a.OK)
	}
	if a.OK == 0 {
		return fmt.Errorf("loadgen: overload arm %s accepted nothing (sent %d, shed %d) — shedding everything is an outage, not admission control",
			a.Arm, a.Sent, a.Shed429)
	}
	if got := time.Duration(a.P99Micros) * time.Microsecond; got > p99SLO {
		return fmt.Errorf("loadgen: overload arm %s accepted-request p99 %v exceeds SLO %v", a.Arm, got, p99SLO)
	}
	return nil
}
