package loadgen

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func dumpString(t *testing.T, w *Workload) string {
	t.Helper()
	var b bytes.Buffer
	if err := w.Dump(&b); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	return b.String()
}

// TestGenerateDeterministic is the seed contract: the same (spec, seed)
// pair must materialize a byte-identical workload for every arm kind,
// and a different seed must not.
func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range []string{KindZipf, KindHotset, KindUpdates, KindOverload, KindSuggest} {
		for _, arrival := range []string{ArrivalPoisson, ArrivalUniform} {
			spec := ArmSpec{Kind: kind, Arrival: arrival, RPS: 200, Duration: 2 * time.Second, HotRotations: 3}
			a, err := Generate(spec, 42)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, arrival, err)
			}
			b, err := Generate(spec, 42)
			if err != nil {
				t.Fatal(err)
			}
			da, db := dumpString(t, a), dumpString(t, b)
			if da != db {
				t.Errorf("%s/%s: same seed produced different workloads", kind, arrival)
			}
			c, err := Generate(spec, 43)
			if err != nil {
				t.Fatal(err)
			}
			if dumpString(t, c) == da {
				t.Errorf("%s/%s: different seeds produced identical workloads", kind, arrival)
			}
			if len(a.Reqs) == 0 {
				t.Errorf("%s/%s: empty workload", kind, arrival)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	base := ArmSpec{Kind: KindZipf, RPS: 10, Duration: time.Second}
	bad := []ArmSpec{
		{Kind: KindZipf, Duration: time.Second},           // no RPS
		{Kind: KindZipf, RPS: 10},                         // no duration
		{Kind: "mystery", RPS: 10, Duration: time.Second}, // unknown kind
		func() ArmSpec { s := base; s.Arrival = "bursty"; return s }(),
	}
	for i, s := range bad {
		if _, err := Generate(s, 1); err == nil {
			t.Errorf("case %d: Generate(%+v) accepted an invalid spec", i, s)
		}
	}
	if _, err := Generate(base, 1); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestGenerateSchedule checks the arrival schedules: offsets are
// nondecreasing and inside the arm duration, and the uniform process
// hits the target count exactly.
func TestGenerateSchedule(t *testing.T) {
	w, err := Generate(ArmSpec{Kind: KindZipf, RPS: 100, Duration: time.Second, Arrival: ArrivalUniform}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Reqs); got != 99 { // first arrival at 10ms, last below 1s
		t.Errorf("uniform 100rps x 1s = %d requests, want 99", got)
	}
	var prev time.Duration
	for i, r := range w.Reqs {
		if r.At < prev || r.At >= w.Spec.Duration {
			t.Fatalf("req %d at %v out of order or past duration", i, r.At)
		}
		prev = r.At
	}

	// Poisson: the count is random but must concentrate near RPS×Duration.
	w, err = Generate(ArmSpec{Kind: KindZipf, RPS: 500, Duration: 2 * time.Second}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(w.Reqs); n < 800 || n > 1200 {
		t.Errorf("poisson 500rps x 2s = %d requests, want ~1000", n)
	}
}

// TestGenerateUpdatesLive checks the update-mix arm's bookkeeping:
// every delete names a document previously added and not yet deleted,
// so no scheduled delete is doomed to 404 by construction.
func TestGenerateUpdatesLive(t *testing.T) {
	w, err := Generate(ArmSpec{Kind: KindUpdates, RPS: 500, Duration: 4 * time.Second, UpdateFrac: 0.3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]bool{}
	var adds, dels, searches int
	for _, r := range w.Reqs {
		switch r.Op {
		case OpAdd:
			adds++
			if r.Body == "" || !strings.HasPrefix(r.Name, "loadgen-doc-") {
				t.Fatalf("add %+v missing body or name", r)
			}
			live[r.Name] = true
		case OpDelete:
			dels++
			if !live[r.Name] {
				t.Fatalf("delete of %q which is not live", r.Name)
			}
			delete(live, r.Name)
		default:
			searches++
		}
	}
	if adds == 0 || dels == 0 || searches == 0 {
		t.Fatalf("update mix missing an op kind: adds=%d dels=%d searches=%d", adds, dels, searches)
	}
}

// TestGenerateSuggestKeystrokes checks the keystroke simulation's
// shape: every request is a suggest op, and each query is either one
// more character of the previous prefix or the single first character
// of a fresh pool term (a completed term looks like w<digits>).
func TestGenerateSuggestKeystrokes(t *testing.T) {
	w, err := Generate(ArmSpec{Kind: KindSuggest, RPS: 500, Duration: 2 * time.Second, Vocab: 64}, 9)
	if err != nil {
		t.Fatal(err)
	}
	prev := ""
	restarts := 0
	for i, r := range w.Reqs {
		if r.Op != OpSuggest {
			t.Fatalf("req %d: op %v, want suggest", i, r.Op)
		}
		if r.TopM <= 0 {
			t.Fatalf("req %d: k = %d", i, r.TopM)
		}
		switch {
		case len(r.Query) == len(prev)+1 && strings.HasPrefix(r.Query, prev):
			// Next keystroke of the current term.
		case r.Query == "w":
			// First keystroke of a fresh term; the term just finished
			// must be a complete pool term.
			restarts++
			if prev != "" && !strings.HasPrefix(prev, "w") {
				t.Fatalf("req %d: term %q completed without pool shape", i, prev)
			}
		default:
			t.Fatalf("req %d: query %q is neither a keystroke of %q nor a fresh start", i, r.Query, prev)
		}
		prev = r.Query
	}
	if restarts < 10 {
		t.Fatalf("only %d terms typed across %d keystrokes", restarts, len(w.Reqs))
	}
}

// TestGenerateHotsetRotates checks that the popular head actually moves:
// with one rotation, the most frequent query of the first half must
// differ from the most frequent query of the second half.
func TestGenerateHotsetRotates(t *testing.T) {
	spec := ArmSpec{Kind: KindHotset, RPS: 1000, Duration: 2 * time.Second, HotRotations: 1, Vocab: 64}
	w, err := Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := func(lo, hi time.Duration) string {
		freq := map[string]int{}
		for _, r := range w.Reqs {
			if r.At >= lo && r.At < hi {
				freq[r.Query]++
			}
		}
		best, bestN := "", -1
		for q, n := range freq {
			if n > bestN {
				best, bestN = q, n
			}
		}
		return best
	}
	half := spec.Duration / 2
	if a, b := top(0, half), top(half, spec.Duration); a == b {
		t.Errorf("hot query identical across rotation: %q", a)
	}
}

// TestGenerateOverloadDiversity checks the cache-busting property: the
// overload arm's query stream must be far more diverse than the zipf
// arm's, since independent pair sampling is what defeats the result
// cache and makes overload reachable.
func TestGenerateOverloadDiversity(t *testing.T) {
	distinct := func(kind string) (int, int) {
		w, err := Generate(ArmSpec{Kind: kind, RPS: 1000, Duration: time.Second, Vocab: 512}, 5)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, r := range w.Reqs {
			seen[r.Query] = true
		}
		return len(seen), len(w.Reqs)
	}
	zd, zn := distinct(KindZipf)
	od, on := distinct(KindOverload)
	if float64(od)/float64(on) < 2*float64(zd)/float64(zn) {
		t.Errorf("overload distinct ratio %d/%d not clearly above zipf %d/%d", od, on, zd, zn)
	}
}
