package loadgen

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"xrank/internal/obs"
)

// scrapeRegistry renders an obs.Registry through its own Prometheus
// writer and parses it back — the exact pipeline the runner uses
// against a live /metrics endpoint.
func scrapeRegistry(t *testing.T, r *obs.Registry) map[string]float64 {
	t.Helper()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(&b)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseMetricsRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("demo_total", "plain counter").Add(7)
	r.Counter("demo_labeled_total", "labeled", "algo", "DIL").Add(3)
	r.Counter("demo_labeled_total", "labeled", "algo", "RDIL").Add(4)
	r.Gauge("demo_gauge", "gauge").Set(-2)
	h := r.Histogram("demo_seconds", "histogram", []float64{0.1, 1}, "algo", "DIL")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	m := scrapeRegistry(t, r)
	want := map[string]float64{
		"demo_total":                                7,
		`demo_labeled_total{algo="DIL"}`:            3,
		`demo_labeled_total{algo="RDIL"}`:           4,
		"demo_gauge":                                -2,
		`demo_seconds_bucket{algo="DIL",le="0.1"}`:  1,
		`demo_seconds_bucket{algo="DIL",le="1"}`:    2,
		`demo_seconds_bucket{algo="DIL",le="+Inf"}`: 3,
		`demo_seconds_count{algo="DIL"}`:            3,
	}
	for k, v := range want {
		if got, ok := m[k]; !ok || got != v {
			t.Errorf("parsed[%q] = %v (present=%v), want %v", k, got, ok, v)
		}
	}
	if got := m[`demo_seconds_sum{algo="DIL"}`]; math.Abs(got-5.55) > 1e-9 {
		t.Errorf("histogram sum = %v, want 5.55", got)
	}
}

func TestParseMetricsSkipsGarbage(t *testing.T) {
	in := strings.NewReader("# HELP x y\n# TYPE x counter\nx 1\n\nnonsense\nbadval NaNope\n")
	m, err := ParseMetrics(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m["x"] != 1 {
		t.Errorf("parsed = %v, want only x=1", m)
	}
}

func TestFamilyDelta(t *testing.T) {
	before := map[string]float64{
		`hits_total{algo="DIL"}`:  10,
		`hits_total{algo="RDIL"}`: 1,
		"hits_totally_unrelated":  50,
	}
	after := map[string]float64{
		`hits_total{algo="DIL"}`:  15,
		`hits_total{algo="RDIL"}`: 4,
		`hits_total{algo="HDIL"}`: 2, // series born mid-run
		"hits_totally_unrelated":  99,
	}
	if got := FamilyDelta(before, after, "hits_total"); got != 10 {
		t.Errorf("FamilyDelta = %v, want 10 (5+3+2, unrelated family excluded)", got)
	}
	// A counter reset (restart) clamps to zero rather than going negative.
	if got := FamilyDelta(map[string]float64{"c": 100}, map[string]float64{"c": 5}, "c"); got != 0 {
		t.Errorf("reset FamilyDelta = %v, want 0", got)
	}
	if got := FamilyDelta(before, after, "absent_total"); got != 0 {
		t.Errorf("absent FamilyDelta = %v, want 0", got)
	}
}

// TestHistogramDelta reconstructs an interval histogram from two scrapes
// and checks the quantiles match what the registry's own snapshot
// arithmetic reports for the same interval.
func TestHistogramDelta(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1}, "algo", "DIL")
	h.Observe(0.0005)
	h.Observe(0.05)
	before := scrapeRegistry(t, r)
	snapBefore := h.Snapshot()

	for i := 0; i < 8; i++ {
		h.Observe(0.005)
	}
	h.Observe(2) // overflow bucket
	after := scrapeRegistry(t, r)

	got := HistogramDelta(before, after, "lat_seconds", `algo="DIL"`)
	want := h.Snapshot().Sub(snapBefore)
	if got.Count != 9 || got.Count != want.Count {
		t.Fatalf("interval count = %d, want %d (9)", got.Count, want.Count)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if g, w := got.Quantile(q), want.Quantile(q); math.Abs(g-w) > 1e-9 {
			t.Errorf("Quantile(%v): scraped %v, in-process %v", q, g, w)
		}
	}
	if math.Abs(got.Sum-want.Sum) > 1e-6 {
		t.Errorf("interval sum = %v, want %v", got.Sum, want.Sum)
	}

	// Label filter: a family present but with no matching labels is empty.
	if s := HistogramDelta(before, after, "lat_seconds", `algo="RDIL"`); s.Count != 0 || len(s.Counts) != 0 {
		t.Errorf("non-matching label filter produced %+v, want empty", s)
	}
	// Nil before-scrape (metrics appeared mid-run): full histogram.
	if s := HistogramDelta(nil, after, "lat_seconds", ""); s.Count != 11 {
		t.Errorf("nil-before count = %d, want 11", s.Count)
	}
}

func TestParseServerTiming(t *testing.T) {
	h := map[string][]string{"Server-Timing": {"queue;dur=1.500, search;dur=0.250"}}
	q, s, ok := parseServerTiming(h)
	if !ok || q != 1500 || s != 250 {
		t.Errorf("parseServerTiming = %d, %d, %v; want 1500, 250, true", q, s, ok)
	}
	if _, _, ok := parseServerTiming(map[string][]string{}); ok {
		t.Error("missing header reported ok")
	}
	if _, _, ok := parseServerTiming(map[string][]string{"Server-Timing": {"cache;desc=hit"}}); ok {
		t.Error("unrelated timing entries reported ok")
	}
}
