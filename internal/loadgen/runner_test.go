package loadgen

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xrank"
	"xrank/internal/cache"
	"xrank/internal/httpapi"
)

// testServer stands up a real engine behind the real HTTP mux — the
// same handler stack `xrank serve` runs — over a loopback listener, so
// the runner is exercised end to end, admission control included. The
// admission controller is returned so tests can saturate it directly.
func testServer(t *testing.T, maxInflight, queue int) (*httptest.Server, *cache.Admission) {
	t.Helper()
	e := xrank.NewEngine(&xrank.Config{IndexDir: t.TempDir()})
	// A small corpus over the shared synthetic vocabulary w0..w31, so
	// every generated "wI wJ" query matches real postings.
	for d := 0; d < 16; d++ {
		var b strings.Builder
		b.WriteString("<doc><body>")
		for i := 0; i < 32; i++ {
			fmt.Fprintf(&b, "w%d ", (d*7+i)%32)
		}
		b.WriteString("</body></doc>")
		if err := e.AddXML(fmt.Sprintf("doc-%02d", d), strings.NewReader(b.String())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	var adm *cache.Admission
	if maxInflight > 0 {
		adm = cache.NewAdmission(maxInflight, queue)
	}
	srv := httptest.NewServer(httpapi.NewMux(e, httpapi.Options{
		Metrics: true, Updates: true, Admission: adm,
	}))
	t.Cleanup(srv.Close)
	return srv, adm
}

// checkAccounting asserts the bucket invariant: every dispatched
// request resolved to exactly one outcome, and the client's view agrees
// with the server's admission counters scraped from /metrics.
func checkAccounting(t *testing.T, res *ArmResult, scheduled int) {
	t.Helper()
	c := res.Counts
	if c.Sent+c.Dropped != int64(scheduled) {
		t.Errorf("sent %d + dropped %d != scheduled %d", c.Sent, c.Dropped, scheduled)
	}
	if got := c.Resolved(); got != c.Sent {
		t.Errorf("resolved %d != sent %d (counts %+v)", got, c.Sent, c)
	}
	if c.Failed != 0 {
		t.Errorf("%d transport/unexpected failures (counts %+v)", c.Failed, c)
	}
	if res.MetricsBefore == nil || res.MetricsAfter == nil {
		t.Fatal("metrics scrapes missing")
	}
	// Server-side admission accounting must mirror the client buckets:
	// searches only, since /api/docs bypasses the admission gate.
	searchOK := int64(len(res.SearchMicros))
	pairs := []struct {
		family string
		want   int64
	}{
		{"xrank_admission_admitted_total", searchOK},
		{"xrank_admission_shed_total", c.Shed429},
		{"xrank_admission_expired_total", c.Expired503},
	}
	for _, p := range pairs {
		if got := int64(FamilyDelta(res.MetricsBefore, res.MetricsAfter, p.family)); got != p.want {
			t.Errorf("%s delta = %d, want %d (client counts %+v)", p.family, got, p.want, c)
		}
	}
}

// TestRunArmOverloadAccounting drives the overload arm against a
// saturated admission controller and checks that every request is
// accounted exactly once on both sides of the wire. Saturation is
// forced, not raced-for: the test holds the server's only execution
// slot for the first part of the run (standing in for a slow in-flight
// query, which a single-CPU CI runner cannot produce organically), so
// arrivals meanwhile must queue or shed; after release the stream is
// accepted again. Run under -race in CI: the dispatcher, the
// per-request goroutines, and the result merge all touch shared state.
func TestRunArmOverloadAccounting(t *testing.T) {
	srv, adm := testServer(t, 1, 1)
	if err := adm.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	timer := time.AfterFunc(150*time.Millisecond, func() {
		adm.Release()
		close(released)
	})
	defer func() {
		if timer.Stop() {
			adm.Release()
		}
	}()

	w, err := Generate(ArmSpec{
		Kind: KindOverload, RPS: 1500, Duration: 500 * time.Millisecond, Vocab: 32,
	}, 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunArm(context.Background(), srv.URL, w, RunOptions{MaxOutstanding: 256})
	if err != nil {
		t.Fatal(err)
	}
	<-released
	t.Logf("counts: %+v", res.Counts)

	checkAccounting(t, res, len(w.Reqs))
	if res.Counts.Shed429 == 0 {
		t.Error("no 429 shedding while the admission slot was held")
	}
	if res.Counts.OK == 0 {
		t.Error("no accepted requests after the slot was released: shedding everything is an outage")
	}
	if res.ServerTimed == 0 {
		t.Error("no Server-Timing header captured on accepted searches")
	}
}

// TestRunArmUpdatesMix runs the update-mix arm end to end: interleaved
// /api/docs mutations must succeed against the live engine while the
// search stream keeps flowing, with the same exactly-once accounting.
// Deletes can legitimately race ahead of their own add in an open-loop
// schedule; those resolve as NotFound, which the invariant absorbs.
func TestRunArmUpdatesMix(t *testing.T) {
	srv, _ := testServer(t, 4, 8)
	w, err := Generate(ArmSpec{
		Kind: KindUpdates, RPS: 300, Duration: 500 * time.Millisecond,
		Vocab: 32, UpdateFrac: 0.3,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunArm(context.Background(), srv.URL, w, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts
	if c.Sent+c.Dropped != int64(len(w.Reqs)) || c.Resolved() != c.Sent {
		t.Errorf("accounting broken: scheduled %d, counts %+v", len(w.Reqs), c)
	}
	if res.Updates == 0 || len(res.UpdateMicros) == 0 {
		t.Errorf("no successful updates: dispatched %d, ok %d", res.Updates, len(res.UpdateMicros))
	}
	if len(res.SearchMicros) == 0 {
		t.Error("no successful searches alongside the update stream")
	}
	if c.Failed != 0 {
		t.Errorf("%d unexpected failures (counts %+v)", c.Failed, c)
	}
	if adds := int64(FamilyDelta(res.MetricsBefore, res.MetricsAfter, "xrank_queries_total")); adds == 0 {
		t.Error("no engine queries recorded in /metrics across the run")
	}
}

// TestRunArmMultiTarget fans one workload across two live servers via
// a comma-separated target list: the round-robin split must be even,
// per-target attribution must sum to the arm totals, and the report
// layer must carry the split into both artifacts.
func TestRunArmMultiTarget(t *testing.T) {
	srvA, _ := testServer(t, 0, 0)
	srvB, _ := testServer(t, 0, 0)
	w, err := Generate(ArmSpec{
		Kind: KindZipf, RPS: 400, Duration: 400 * time.Millisecond, Vocab: 32,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunArm(context.Background(),
		srvA.URL+" , "+srvB.URL+"/", w, RunOptions{}) // spaces and trailing slash are tolerated
	if err != nil {
		t.Fatal(err)
	}
	// The admission-metric cross-check doesn't apply here (the scrape
	// only covers the first target); the client-side invariant does.
	if c := res.Counts; c.Sent+c.Dropped != int64(len(w.Reqs)) || c.Resolved() != c.Sent || c.Failed != 0 {
		t.Errorf("accounting broken: scheduled %d, counts %+v", len(w.Reqs), c)
	}
	if len(res.Targets) != 2 {
		t.Fatalf("targets = %d, want 2", len(res.Targets))
	}
	if res.Targets[0].URL != srvA.URL || res.Targets[1].URL != srvB.URL {
		t.Fatalf("target URLs %q/%q, want %q/%q",
			res.Targets[0].URL, res.Targets[1].URL, srvA.URL, srvB.URL)
	}
	var sent, ok int64
	for _, tr := range res.Targets {
		if tr.Counts.Resolved() != tr.Counts.Sent {
			t.Errorf("target %s: resolved %d != sent %d", tr.URL, tr.Counts.Resolved(), tr.Counts.Sent)
		}
		sent += tr.Counts.Sent
		ok += tr.Counts.OK
	}
	if sent != res.Counts.Sent || ok != res.Counts.OK {
		t.Errorf("per-target sums (sent %d, ok %d) != arm totals (%d, %d)",
			sent, ok, res.Counts.Sent, res.Counts.OK)
	}
	if d := res.Targets[0].Counts.Sent - res.Targets[1].Counts.Sent; d < -1 || d > 1 {
		t.Errorf("round-robin split uneven: %d vs %d",
			res.Targets[0].Counts.Sent, res.Targets[1].Counts.Sent)
	}
	a := BuildArmReport(res)
	if len(a.Targets) != 2 || a.Targets[0].Sent != res.Targets[0].Counts.Sent {
		t.Errorf("report lost the target split: %+v", a.Targets)
	}
	if a.Targets[0].P99Micros <= 0 {
		t.Errorf("per-target p99 missing: %+v", a.Targets[0])
	}

	// Single-target runs stay free of attribution (goldens unchanged).
	res1, err := RunArm(context.Background(), srvA.URL, w, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Targets != nil || len(BuildArmReport(res1).Targets) != 0 {
		t.Errorf("single-target run grew a Targets split: %+v", res1.Targets)
	}
}

// TestRunArmBadTarget: harness errors are errors, not data.
func TestRunArmBadTarget(t *testing.T) {
	w, err := Generate(ArmSpec{Kind: KindZipf, RPS: 100, Duration: 50 * time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunArm(context.Background(), "http://\x00bad", w, RunOptions{}); err == nil {
		t.Error("bad base URL accepted")
	}
	// A cancelled context aborts the dispatch loop with an error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunArm(ctx, "http://127.0.0.1:0", w, RunOptions{}); err == nil {
		t.Error("cancelled context did not abort the run")
	}
	// An unreachable server resolves every request as Failed — still
	// exactly-once accounting, no hang.
	res, err := RunArm(context.Background(), "http://127.0.0.1:1", w, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Failed != res.Counts.Sent || res.Counts.Resolved() != res.Counts.Sent {
		t.Errorf("unreachable target counts %+v", res.Counts)
	}
}
