// Package loadgen is an open-loop load harness for a running xrank HTTP
// server: it fires /api/search (plus /api/suggest in the suggest arm
// and /api/docs in the update-mix arm) requests on a fixed-RPS arrival
// schedule and reports tail latency the
// way a population of independent clients would see it.
//
// Open-loop means the arrival schedule never waits for responses: each
// request has an *intended* send time drawn from the arrival process
// (Poisson or uniform) before the run starts, and its latency is
// measured from that intended time — a server that stalls for a second
// accrues a second of latency on every request scheduled meanwhile,
// instead of silently pausing the clock the way closed-loop harnesses
// do (coordinated omission). The schedule and the query stream are both
// derived deterministically from a seed, so two runs of the same spec
// replay byte-identical workloads and SLO comparisons are
// apples-to-apples.
//
// Workload arms:
//
//   - zipf: Zipf-distributed popularity over a fixed pool of conjunctive
//     queries — the cache-friendly steady state.
//   - hotset: the same, but the popular head remaps to a different pool
//     region at fixed rotation points mid-run — the cache-invalidation
//     stress (every rotation turns the hot set cold at once).
//   - updates: the zipf stream interleaved with a fraction of
//     /api/docs adds and deletes — the segment-flush and
//     cache-eviction stress.
//   - overload: near-uniform sampling over *pairs* of terms (a
//     quadratic combination space, so almost every request misses the
//     result cache and runs a real merge) at a multiple of the base
//     rate — the admission-control shedding demonstration.
//   - suggest: a keystroke simulation against /api/suggest — each
//     arrival types one more character of a Zipf-sampled pool term,
//     starting the next term when the current one completes, the way
//     an interactive search box drives the autosuggest path.
package loadgen

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"
)

// Op is the kind of one scheduled request.
type Op uint8

const (
	OpSearch Op = iota
	OpAdd
	OpDelete
	OpSuggest
)

func (o Op) String() string {
	switch o {
	case OpSearch:
		return "S"
	case OpAdd:
		return "A"
	case OpDelete:
		return "D"
	case OpSuggest:
		return "G"
	}
	return "?"
}

// mutates reports whether the op goes through /api/docs (the update
// path) rather than a read endpoint.
func (o Op) mutates() bool { return o == OpAdd || o == OpDelete }

// Request is one scheduled request: an intended send offset from arm
// start plus the operation payload.
type Request struct {
	At    time.Duration // intended send time, relative to arm start
	Op    Op
	Query string // OpSearch: the q parameter
	TopM  int    // OpSearch: the m parameter
	Name  string // OpAdd / OpDelete: document name
	Body  string // OpAdd: document XML
}

// Arm kinds.
const (
	KindZipf     = "zipf"
	KindHotset   = "hotset"
	KindUpdates  = "updates"
	KindOverload = "overload"
	KindSuggest  = "suggest"
)

// Arrival processes.
const (
	ArrivalPoisson = "poisson"
	ArrivalUniform = "uniform"
)

// ArmSpec parameterizes one workload arm. The zero values of the knob
// fields resolve to the defaults documented per field.
type ArmSpec struct {
	Name     string        // display name; defaults to Kind
	Kind     string        // zipf | hotset | updates | overload
	RPS      float64       // target arrival rate (required, > 0)
	Duration time.Duration // arm length (required, > 0)
	Arrival  string        // poisson (default) | uniform

	Vocab        int     // query-pool size / term universe (default 256)
	ZipfS        float64 // popularity skew, >1 (default 1.1; overload default 1.01)
	HotRotations int     // hotset: mid-run rotations of the popular head (default 1)
	UpdateFrac   float64 // updates: fraction of requests that mutate (default 0.05)
	Algo         string  // search algo parameter (default dil)
	TopM         int     // search m parameter; suggest arm: the k parameter (default 10)
	TimeoutMS    int     // per-request timeout_ms parameter (0: none)
}

// withDefaults resolves zero knobs.
func (s ArmSpec) withDefaults() ArmSpec {
	if s.Name == "" {
		s.Name = s.Kind
	}
	if s.Arrival == "" {
		s.Arrival = ArrivalPoisson
	}
	if s.Vocab <= 1 {
		s.Vocab = 256
	}
	if s.ZipfS <= 1 {
		if s.Kind == KindOverload {
			s.ZipfS = 1.01
		} else {
			s.ZipfS = 1.1
		}
	}
	if s.HotRotations <= 0 {
		s.HotRotations = 1
	}
	if s.UpdateFrac <= 0 {
		s.UpdateFrac = 0.05
	}
	if s.Algo == "" {
		s.Algo = "dil"
	}
	if s.TopM <= 0 {
		s.TopM = 10
	}
	return s
}

// Workload is a fully materialized arm: the resolved spec, the seed it
// was generated from, and the scheduled requests in send order.
type Workload struct {
	Spec ArmSpec
	Seed int64
	Reqs []Request
}

// Generate materializes the arrival schedule and request stream for one
// arm. The same (spec, seed) pair always yields a byte-identical
// workload (see Dump), which is what makes SLO gates reproducible.
func Generate(spec ArmSpec, seed int64) (*Workload, error) {
	spec = spec.withDefaults()
	if spec.RPS <= 0 {
		return nil, fmt.Errorf("loadgen: arm %s: RPS must be > 0", spec.Name)
	}
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: arm %s: Duration must be > 0", spec.Name)
	}
	switch spec.Kind {
	case KindZipf, KindHotset, KindUpdates, KindOverload, KindSuggest:
	default:
		return nil, fmt.Errorf("loadgen: unknown arm kind %q", spec.Kind)
	}
	switch spec.Arrival {
	case ArrivalPoisson, ArrivalUniform:
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q", spec.Arrival)
	}

	// One rng drives everything — arrival gaps, query sampling, update
	// choices — so the whole stream is a pure function of (spec, seed).
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Vocab-1))

	w := &Workload{Spec: spec, Seed: seed}
	// Hotset rotation: the sampled popularity rank is offset by a phase-
	// dependent stride, so the same skewed head lands on a different
	// region of the pool after each rotation point.
	phases := spec.HotRotations + 1
	stride := spec.Vocab / phases
	if stride == 0 {
		stride = 1
	}
	phaseLen := spec.Duration / time.Duration(phases)

	var at time.Duration
	var docSeq int
	var live []string // added-then-not-yet-deleted document names, in add order
	var typing string // suggest: the pool term currently being typed
	var typed int     // suggest: keystrokes of it sent so far
	for {
		// Next intended send time.
		switch spec.Arrival {
		case ArrivalUniform:
			at += time.Duration(float64(time.Second) / spec.RPS)
		case ArrivalPoisson:
			at += time.Duration(rng.ExpFloat64() * float64(time.Second) / spec.RPS)
		}
		if at >= spec.Duration {
			break
		}
		req := Request{At: at, Op: OpSearch, TopM: spec.TopM}
		switch spec.Kind {
		case KindUpdates:
			if rng.Float64() < spec.UpdateFrac {
				// 1-in-4 mutations deletes (when there is something to
				// delete); the rest add or replace documents.
				if len(live) > 0 && rng.Intn(4) == 0 {
					i := rng.Intn(len(live))
					req.Op, req.Name = OpDelete, live[i]
					live = append(live[:i], live[i+1:]...)
				} else {
					docSeq++
					req.Op = OpAdd
					req.Name = fmt.Sprintf("loadgen-doc-%06d", docSeq)
					req.Body = docBody(rng, zipf, spec.Vocab)
					live = append(live, req.Name)
				}
				w.Reqs = append(w.Reqs, req)
				continue
			}
			req.Query = adjacentPair(int(zipf.Uint64()), spec.Vocab)
		case KindOverload:
			// Two independent samples: the combination space is
			// quadratic in Vocab, so the result cache absorbs almost
			// nothing and every request costs a real merge.
			req.Query = fmt.Sprintf("w%d w%d", zipf.Uint64(), zipf.Uint64())
		case KindSuggest:
			// One keystroke per arrival: progressive prefixes of a
			// Zipf-sampled pool term, a fresh term once it completes.
			// The first keystroke of "w17" asks for "w", then "w1",
			// then "w17" — exactly the request stream a search box
			// emits, and a progressively narrowing trie descent.
			if typed >= len(typing) {
				typing = fmt.Sprintf("w%d", zipf.Uint64())
				typed = 0
			}
			typed++
			req.Op = OpSuggest
			req.Query = typing[:typed]
		case KindHotset:
			phase := int(at / phaseLen)
			if phase >= phases {
				phase = phases - 1
			}
			rank := (int(zipf.Uint64()) + phase*stride) % spec.Vocab
			req.Query = adjacentPair(rank, spec.Vocab)
		default: // KindZipf
			req.Query = adjacentPair(int(zipf.Uint64()), spec.Vocab)
		}
		w.Reqs = append(w.Reqs, req)
	}
	return w, nil
}

// adjacentPair renders the pool query at a popularity rank: two
// adjacent-frequency vocabulary terms, the same shape the E11 cache
// experiment uses, guaranteed non-empty on the synthetic corpora.
func adjacentPair(rank, vocab int) string {
	rank %= vocab
	return fmt.Sprintf("w%d w%d", rank, rank+1)
}

// docBody renders a small XML document whose text is sampled from the
// shared synthetic vocabulary, so added documents join the live term
// lists (and invalidate cached results that cite them).
func docBody(rng *rand.Rand, zipf *rand.Zipf, vocab int) string {
	var b strings.Builder
	b.WriteString("<doc><title>")
	for i := 0; i < 3; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "w%d", zipf.Uint64())
	}
	b.WriteString("</title><body>")
	n := 8 + rng.Intn(8)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "w%d", zipf.Uint64())
	}
	b.WriteString("</body></doc>")
	return b.String()
}

// Dump writes the workload in a line-oriented text form: a header line
// with every knob that shaped the stream, then one line per request
// (microsecond offset, op, payload). Two workloads are identical iff
// their dumps are byte-identical — the determinism test and the
// -dump CLI flag both rely on that.
func (w *Workload) Dump(out io.Writer) error {
	s := w.Spec
	if _, err := fmt.Fprintf(out,
		"# arm=%s kind=%s seed=%d rps=%g dur=%s arrival=%s vocab=%d zipfs=%g rotations=%d updatefrac=%g algo=%s m=%d timeoutms=%d reqs=%d\n",
		s.Name, s.Kind, w.Seed, s.RPS, s.Duration, s.Arrival, s.Vocab, s.ZipfS,
		s.HotRotations, s.UpdateFrac, s.Algo, s.TopM, s.TimeoutMS, len(w.Reqs)); err != nil {
		return err
	}
	for _, r := range w.Reqs {
		var payload string
		switch r.Op {
		case OpSearch:
			payload = fmt.Sprintf("m=%d %s", r.TopM, r.Query)
		case OpSuggest:
			payload = fmt.Sprintf("k=%d %s", r.TopM, r.Query)
		case OpAdd:
			payload = fmt.Sprintf("%s %s", r.Name, r.Body)
		case OpDelete:
			payload = r.Name
		}
		if _, err := fmt.Fprintf(out, "%d %s %s\n", r.At.Microseconds(), r.Op, payload); err != nil {
			return err
		}
	}
	return nil
}
