package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counts classifies every dispatched request's outcome. Exactly one
// bucket is incremented per dispatched request; the overload race test
// asserts Sent equals the bucket sum.
type Counts struct {
	Sent       int64 // requests actually dispatched
	OK         int64 // 2xx
	Shed429    int64 // admission shed (queue full)
	Expired503 int64 // deadline expired in queue / degraded refusal / budget
	Timeout504 int64 // engine deadline exceeded
	NotFound   int64 // update races (delete of an unadded doc): 404
	Failed     int64 // transport errors and any other status
	Dropped    int64 // never dispatched: client-side outstanding cap hit
}

// Resolved is the bucket sum that must equal Sent.
func (c Counts) Resolved() int64 {
	return c.OK + c.Shed429 + c.Expired503 + c.Timeout504 + c.NotFound + c.Failed
}

// ArmResult is the raw measurement of one arm run.
type ArmResult struct {
	Spec     ArmSpec
	Seed     int64
	Wall     time.Duration // elapsed from first intended send to last response
	Counts   Counts
	Searches int64 // dispatched OpSearch requests
	Updates  int64 // dispatched OpAdd/OpDelete requests

	// SearchMicros holds one latency per accepted (2xx) search,
	// measured from the request's *intended* send time — dispatcher
	// lateness and queueing count against the server, never for it.
	SearchMicros []int64
	// UpdateMicros is the same for accepted /api/docs mutations.
	UpdateMicros []int64

	// Server-Timing sums (µs) over accepted searches that carried the
	// header, splitting admission-queue wait from engine execution.
	ServerQueueMicros  int64
	ServerSearchMicros int64
	ServerTimed        int64

	// MetricsBefore/After are /metrics scrapes bracketing the first
	// target (nil when it exposes no /metrics).
	MetricsBefore, MetricsAfter map[string]float64

	// Targets attributes the arm per base URL when the run fans out over
	// several comma-separated targets (round-robin by dispatch order);
	// nil for a single-target run. Counts sum to the arm totals minus
	// client-side drops, which are charged before a target is picked.
	Targets []TargetResult
}

// TargetResult is one target's share of a multi-target arm.
type TargetResult struct {
	URL          string
	Counts       Counts
	SearchMicros []int64 // accepted-search latencies against this target
}

// RunOptions tune the client side of a run.
type RunOptions struct {
	// MaxOutstanding caps in-flight requests client-side so an
	// unresponsive server cannot accumulate unbounded goroutines;
	// requests over the cap are counted Dropped, never silently
	// blocked (blocking would re-introduce coordinated omission).
	// Default 1024.
	MaxOutstanding int
	// Client is the HTTP client; the default has no timeout (request
	// deadlines belong to the workload's TimeoutMS knob so every
	// outcome is an observed status code, not a client abort).
	Client *http.Client
}

func (o RunOptions) withDefaults() RunOptions {
	if o.MaxOutstanding <= 0 {
		o.MaxOutstanding = 1024
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		}}
	}
	return o
}

// targetAcc accumulates one target's outcomes. The counters are atomic
// (response goroutines race); sent is dispatcher-only.
type targetAcc struct {
	url                                          string
	sent                                         int64
	ok, shed, expired, timeout, notfound, failed atomic.Int64
	mu                                           sync.Mutex
	searchMicros                                 []int64
}

func (a *targetAcc) counts() Counts {
	return Counts{
		Sent: a.sent, OK: a.ok.Load(), Shed429: a.shed.Load(),
		Expired503: a.expired.Load(), Timeout504: a.timeout.Load(),
		NotFound: a.notfound.Load(), Failed: a.failed.Load(),
	}
}

// RunArm replays a workload on its open-loop schedule. baseURL names
// one target, or several comma-separated ones — a multi-target run
// round-robins requests across them by dispatch order and attributes
// outcomes per target in ArmResult.Targets. The returned error covers
// harness failures only (bad baseURL, ctx cancelled mid-run);
// per-request failures are data, not errors.
func RunArm(ctx context.Context, baseURL string, w *Workload, opts RunOptions) (*ArmResult, error) {
	opts = opts.withDefaults()
	var bases []*url.URL
	var accs []*targetAcc
	for _, raw := range strings.Split(baseURL, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		base, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad base URL %q: %v", raw, err)
		}
		bases = append(bases, base)
		accs = append(accs, &targetAcc{url: strings.TrimRight(raw, "/")})
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("loadgen: no target in base URL %q", baseURL)
	}
	res := &ArmResult{Spec: w.Spec, Seed: w.Seed}
	res.MetricsBefore, _ = scrapeQuiet(opts.Client, bases[0])

	var (
		mu       sync.Mutex // guards the update latencies and timing sums
		wg       sync.WaitGroup
		inflight = make(chan struct{}, opts.MaxOutstanding)
	)
	start := time.Now()
	for i := range w.Reqs {
		req := &w.Reqs[i]
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("loadgen: run cancelled after %d/%d requests: %w", i, len(w.Reqs), err)
		}
		intended := start.Add(req.At)
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		select {
		case inflight <- struct{}{}:
		default:
			res.Counts.Dropped++
			continue
		}
		// Round-robin by dispatch order: drops never consume a slot in
		// the rotation, so every target sees the same request mix.
		ti := int(res.Counts.Sent) % len(bases)
		base, acc := bases[ti], accs[ti]
		res.Counts.Sent++
		acc.sent++
		if req.Op.mutates() {
			res.Updates++
		} else {
			res.Searches++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			status, hdr, err := issue(opts.Client, base, &w.Spec, req)
			lat := time.Since(intended)
			switch {
			case err != nil:
				acc.failed.Add(1)
			case status >= 200 && status < 300:
				acc.ok.Add(1)
				// Reads (search and suggest) fill the arm's latency
				// percentiles; mutations fill the update buckets.
				if !req.Op.mutates() {
					acc.mu.Lock()
					acc.searchMicros = append(acc.searchMicros, lat.Microseconds())
					acc.mu.Unlock()
				}
				mu.Lock()
				if !req.Op.mutates() {
					if q, s, ok := parseServerTiming(hdr); ok {
						res.ServerQueueMicros += q
						res.ServerSearchMicros += s
						res.ServerTimed++
					}
				} else {
					res.UpdateMicros = append(res.UpdateMicros, lat.Microseconds())
				}
				mu.Unlock()
			case status == http.StatusTooManyRequests:
				acc.shed.Add(1)
			case status == http.StatusServiceUnavailable:
				acc.expired.Add(1)
			case status == http.StatusGatewayTimeout:
				acc.timeout.Add(1)
			case status == http.StatusNotFound:
				acc.notfound.Add(1)
			default:
				acc.failed.Add(1)
			}
		}()
	}
	wg.Wait()
	res.Wall = time.Since(start)
	for _, acc := range accs {
		c := acc.counts()
		res.Counts.OK += c.OK
		res.Counts.Shed429 += c.Shed429
		res.Counts.Expired503 += c.Expired503
		res.Counts.Timeout504 += c.Timeout504
		res.Counts.NotFound += c.NotFound
		res.Counts.Failed += c.Failed
		res.SearchMicros = append(res.SearchMicros, acc.searchMicros...)
	}
	if len(accs) > 1 {
		for _, acc := range accs {
			res.Targets = append(res.Targets, TargetResult{
				URL: acc.url, Counts: acc.counts(), SearchMicros: acc.searchMicros,
			})
		}
	}
	res.MetricsAfter, _ = scrapeQuiet(opts.Client, bases[0])
	return res, nil
}

// issue sends one request and returns the status code and headers. The
// body is drained so connections are reused.
func issue(client *http.Client, base *url.URL, spec *ArmSpec, r *Request) (int, http.Header, error) {
	var req *http.Request
	var err error
	switch r.Op {
	case OpSearch:
		q := url.Values{}
		q.Set("q", r.Query)
		q.Set("m", strconv.Itoa(r.TopM))
		q.Set("algo", spec.Algo)
		if spec.TimeoutMS > 0 {
			q.Set("timeout_ms", strconv.Itoa(spec.TimeoutMS))
		}
		u := *base
		u.Path = "/api/search"
		u.RawQuery = q.Encode()
		req, err = http.NewRequest(http.MethodGet, u.String(), nil)
	case OpSuggest:
		q := url.Values{}
		q.Set("q", r.Query)
		q.Set("k", strconv.Itoa(r.TopM))
		u := *base
		u.Path = "/api/suggest"
		u.RawQuery = q.Encode()
		req, err = http.NewRequest(http.MethodGet, u.String(), nil)
	case OpAdd:
		u := *base
		u.Path = "/api/docs"
		u.RawQuery = url.Values{"name": {r.Name}}.Encode()
		req, err = http.NewRequest(http.MethodPost, u.String(), strings.NewReader(r.Body))
	case OpDelete:
		u := *base
		u.Path = "/api/docs"
		u.RawQuery = url.Values{"name": {r.Name}}.Encode()
		req, err = http.NewRequest(http.MethodDelete, u.String(), nil)
	}
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header, nil
}

// parseServerTiming extracts the queue and search durations (µs) from
// the server's `queue;dur=…, search;dur=…` header (dur is in ms).
func parseServerTiming(h http.Header) (queueMicros, searchMicros int64, ok bool) {
	st := h.Get("Server-Timing")
	if st == "" {
		return 0, 0, false
	}
	for _, part := range strings.Split(st, ",") {
		part = strings.TrimSpace(part)
		name, rest, found := strings.Cut(part, ";")
		if !found {
			continue
		}
		durStr, found := strings.CutPrefix(strings.TrimSpace(rest), "dur=")
		if !found {
			continue
		}
		ms, err := strconv.ParseFloat(durStr, 64)
		if err != nil {
			continue
		}
		switch name {
		case "queue":
			queueMicros = int64(ms * 1000)
			ok = true
		case "search":
			searchMicros = int64(ms * 1000)
			ok = true
		}
	}
	return queueMicros, searchMicros, ok
}

// scrapeQuiet scrapes /metrics, returning nil on any failure — a target
// without metrics enabled still load-tests fine, it just reports no
// server-side rates.
func scrapeQuiet(client *http.Client, base *url.URL) (map[string]float64, error) {
	u := *base
	u.Path = "/metrics"
	u.RawQuery = ""
	return Scrape(client, u.String())
}
