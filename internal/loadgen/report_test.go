package loadgen

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestPercentile(t *testing.T) {
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty Percentile = %d, want 0", got)
	}
	if got := Percentile([]int64{7}, 0.99); got != 7 {
		t.Errorf("single-sample Percentile = %d, want 7", got)
	}
	s := []int64{40, 10, 30, 20} // unsorted on purpose
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 10}, {1, 40}, {-1, 10}, {2, 40},
		{0.5, 25},  // midpoint between ranks 1 and 2
		{0.25, 17}, // 0.75 of the way from 10 to 20
		{0.99, 39},
	}
	for _, tc := range cases {
		if got := Percentile(s, tc.q); got != tc.want {
			t.Errorf("Percentile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	// Input must not be mutated (the runner reuses the sample slices).
	if s[0] != 40 {
		t.Error("Percentile sorted the caller's slice")
	}
}

// goldenReport is a fixed two-arm report with every field populated, so
// the goldens pin the full CSV column set and JSON field names.
func goldenReport() *Report {
	return &Report{
		Seed: 42, Workers: 8, Corpus: "xmark", Docs: 400, Elements: 54321,
		Arms: []ArmReport{
			{
				Arm: "zipf", Kind: KindZipf, Arrival: ArrivalPoisson, Algo: "dil",
				TopM: 10, Seed: 42, ZipfS: 1.1, Vocab: 256,
				TargetRPS: 200, AchievedRPS: 199.25, DurationSecs: 10,
				Sent: 1993, OK: 1990, NotFound: 0, Failed: 3,
				P50Micros: 350, P90Micros: 900, P99Micros: 2100, P999Micros: 4800,
				MeanMicros: 450, MaxMicros: 5200,
				ServerQueueMeanMicros: 12, ServerSearchMeanMicros: 310,
				EngineP50Micros: 300, EngineP99Micros: 1900,
				CacheHitRate: 0.8215, CoalesceRate: 0.013, DegradedRate: 0,
			},
			{
				Arm: "overload", Kind: KindOverload, Arrival: ArrivalPoisson, Algo: "dil",
				TopM: 10, Seed: 42, ZipfS: 1.01, Vocab: 256,
				TargetRPS: 4000, AchievedRPS: 3980.5, DurationSecs: 10,
				Sent: 39805, OK: 9200, Shed429: 30000, Expired503: 400, Timeout504: 100,
				Failed: 105, Dropped: 250,
				P50Micros: 800, P90Micros: 2400, P99Micros: 9500, P999Micros: 21000,
				MeanMicros: 1300, MaxMicros: 30000,
				UpdateOK:              0,
				ServerQueueMeanMicros: 450, ServerSearchMeanMicros: 700,
				EngineP50Micros: 650, EngineP99Micros: 8000,
				ShedRate: 0.7537, CacheHitRate: 0.02, CoalesceRate: 0.001, DegradedRate: 0.004,
				// A multi-target arm (two coordinators) pins the per-target
				// attribution encoding in both artifacts.
				Targets: []TargetReport{
					{URL: "http://c0:9000", Sent: 19903, OK: 4650, Shed429: 14900,
						Expired503: 200, Timeout504: 50, Failed: 103, P50Micros: 810, P99Micros: 9400},
					{URL: "http://c1:9000", Sent: 19902, OK: 4550, Shed429: 15100,
						Expired503: 200, Timeout504: 50, Failed: 2, P50Micros: 790, P99Micros: 9600},
				},
			},
			{
				// The keystroke-simulation arm: /api/suggest reads fill the
				// same latency columns the search arms use.
				Arm: "suggest", Kind: KindSuggest, Arrival: ArrivalPoisson, Algo: "dil",
				TopM: 8, Seed: 42, ZipfS: 1.1, Vocab: 256,
				TargetRPS: 800, AchievedRPS: 798.4, DurationSecs: 10,
				Sent: 7984, OK: 7980, Failed: 4,
				P50Micros: 120, P90Micros: 300, P99Micros: 900, P999Micros: 2100,
				MeanMicros: 160, MaxMicros: 2600,
				ServerQueueMeanMicros: 8, ServerSearchMeanMicros: 95,
			},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestReportGoldenCSV(t *testing.T) {
	var b bytes.Buffer
	if err := goldenReport().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.csv", b.Bytes())
}

func TestReportGoldenJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_load.json")
	if err := goldenReport().WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "BENCH_load.json", got)

	// And the artifact must read back losslessly for the SLO gate.
	r, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Arms) != 3 || r.Arms[1].P99Micros != 9500 || r.Seed != 42 {
		t.Errorf("ReadReport round-trip lost data: %+v", r)
	}
}

func TestCompareReports(t *testing.T) {
	base := goldenReport()
	same, err := CompareReports(base, goldenReport(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if same.Regressed || same.MedianRatio != 1 || same.Threshold != DefaultSLORatio {
		t.Errorf("identical reports: %+v", same)
	}

	worse := goldenReport()
	for i := range worse.Arms {
		worse.Arms[i].P99Micros *= 3
	}
	res, err := CompareReports(base, worse, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed || res.MedianRatio != 3 {
		t.Errorf("3x p99 not flagged: %+v", res)
	}

	// One noisy arm among three must not fail the gate: the median
	// absorbs a single outlier.
	threeArms := func() *Report {
		r := goldenReport()
		extra := r.Arms[0]
		extra.Arm = "hotset"
		r.Arms = append(r.Arms, extra)
		return r
	}
	oneBad := threeArms()
	oneBad.Arms[0].P99Micros *= 10
	res, err = CompareReports(threeArms(), oneBad, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed || res.MedianRatio != 1 {
		t.Errorf("single noisy arm failed the median gate: %+v", res)
	}

	// Incomparable reports are loud errors, not silent passes.
	if _, err := CompareReports(&Report{}, goldenReport(), 0); err == nil {
		t.Error("empty baseline accepted")
	}
	renamed := goldenReport()
	for i := range renamed.Arms {
		renamed.Arms[i].Arm = fmt.Sprintf("x%d", i)
	}
	if _, err := CompareReports(base, renamed, 0); err == nil {
		t.Error("no common arms accepted")
	}
	zero := goldenReport()
	zero.Arms[0].P99Micros = 0
	if _, err := CompareReports(base, zero, 0); err == nil {
		t.Error("zero p99 accepted")
	}
}

func TestCheckOverload(t *testing.T) {
	good := goldenReport().Arms[1]
	if err := CheckOverload(good, 20*time.Millisecond); err != nil {
		t.Errorf("healthy overload arm rejected: %v", err)
	}
	if err := CheckOverload(goldenReport().Arms[0], time.Second); err == nil {
		t.Error("non-overload arm accepted")
	}
	noShed := good
	noShed.Shed429 = 0
	if err := CheckOverload(noShed, 20*time.Millisecond); err == nil {
		t.Error("no shedding accepted")
	}
	allShed := good
	allShed.OK = 0
	if err := CheckOverload(allShed, 20*time.Millisecond); err == nil {
		t.Error("total outage accepted")
	}
	if err := CheckOverload(good, 5*time.Millisecond); err == nil {
		t.Error("p99 over SLO accepted")
	}
}

func TestBuildArmReport(t *testing.T) {
	res := &ArmResult{
		Spec:              ArmSpec{Name: "zipf", Kind: KindZipf, RPS: 100, Duration: time.Second}.withDefaults(),
		Seed:              9,
		Wall:              2 * time.Second,
		Counts:            Counts{Sent: 200, OK: 197, Shed429: 2, Failed: 1},
		Searches:          200,
		SearchMicros:      []int64{100, 200, 300, 400},
		ServerQueueMicros: 40, ServerSearchMicros: 400, ServerTimed: 4,
		MetricsBefore: map[string]float64{
			"xrank_cache_result_hits_total":   10,
			"xrank_cache_result_misses_total": 10,
			`xrank_queries_total{algo="DIL"}`: 20,
		},
		MetricsAfter: map[string]float64{
			"xrank_cache_result_hits_total":   160,
			"xrank_cache_result_misses_total": 60,
			`xrank_queries_total{algo="DIL"}`: 220,
			`xrank_coalesced_queries_total`:   20,
			`xrank_degraded_queries_total`:    2,
		},
	}
	a := BuildArmReport(res)
	if a.AchievedRPS != 100 {
		t.Errorf("achieved rps = %v, want 100", a.AchievedRPS)
	}
	if a.P50Micros != 250 || a.MaxMicros != 400 || a.MeanMicros != 250 {
		t.Errorf("latency summary = p50 %d max %d mean %d", a.P50Micros, a.MaxMicros, a.MeanMicros)
	}
	if a.ServerQueueMeanMicros != 10 || a.ServerSearchMeanMicros != 100 {
		t.Errorf("server timing means = %d/%d", a.ServerQueueMeanMicros, a.ServerSearchMeanMicros)
	}
	if a.ShedRate != 0.01 {
		t.Errorf("shed rate = %v, want 0.01", a.ShedRate)
	}
	if a.CacheHitRate != 0.75 {
		t.Errorf("cache hit rate = %v, want 0.75 (150 hits / 200 lookups)", a.CacheHitRate)
	}
	if a.CoalesceRate != 0.1 || a.DegradedRate != 0.01 {
		t.Errorf("coalesce/degraded = %v/%v, want 0.1/0.01", a.CoalesceRate, a.DegradedRate)
	}
}
