package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"xrank/internal/obs"
)

// Scrape fetches and parses a Prometheus text exposition (/metrics).
// The result maps full series keys — `name` or `name{labels}` exactly
// as exposed — to values. The parser handles the subset the engine's
// own registry emits (counters, gauges, histogram series); unparsable
// lines are skipped rather than fatal, so a scrape never kills a run.
func Scrape(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s: status %d", url, resp.StatusCode)
	}
	return ParseMetrics(resp.Body)
}

// ParseMetrics parses a Prometheus text exposition into series → value.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; label values in
		// this exposition never contain raw spaces followed by nothing,
		// and the engine's own registry never emits timestamps.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// FamilyDelta sums the increase of every series of a metric family
// (exact name, or name{any labels}) between two scrapes. Missing
// series count as zero; a negative total (restarted server) clamps to
// zero so rates never go negative.
func FamilyDelta(before, after map[string]float64, name string) float64 {
	var d float64
	for k, v := range after {
		if k == name || strings.HasPrefix(k, name+"{") {
			d += v - before[k]
		}
	}
	if d < 0 {
		return 0
	}
	return d
}

// HistogramDelta reconstructs the interval histogram of one family+label
// subset between two scrapes, as an obs.HistogramSnapshot — the same
// percentile interpolation the engine uses internally then applies to
// the scraped buckets. match is a label fragment every series must
// contain (e.g. `algo="DIL"`); empty matches all series of the family.
func HistogramDelta(before, after map[string]float64, name, match string) obs.HistogramSnapshot {
	type bkt struct {
		le  float64
		cum float64
	}
	collect := func(m map[string]float64) ([]bkt, float64, float64) {
		var bs []bkt
		var count, sum float64
		for k, v := range m {
			if !strings.HasPrefix(k, name) {
				continue
			}
			rest := k[len(name):]
			if match != "" && !strings.Contains(rest, match) {
				continue
			}
			switch {
			case strings.HasPrefix(rest, "_bucket{"):
				le := leBound(rest)
				bs = append(bs, bkt{le, v})
			case strings.HasPrefix(rest, "_count"):
				count += v
			case strings.HasPrefix(rest, "_sum"):
				sum += v
			}
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		return bs, count, sum
	}
	b0, c0, s0 := collect(before)
	b1, c1, s1 := collect(after)
	if len(b1) == 0 {
		return obs.HistogramSnapshot{}
	}
	prior := make(map[float64]float64, len(b0))
	for _, b := range b0 {
		prior[b.le] = b.cum
	}
	snap := obs.HistogramSnapshot{Count: int64(c1 - c0), Sum: s1 - s0}
	// Decumulate: exposition buckets are cumulative, the snapshot's are
	// per-bucket; the +Inf bucket becomes the overflow slot.
	var prevCum float64
	for _, b := range b1 {
		d := (b.cum - prior[b.le]) - prevCum
		prevCum = b.cum - prior[b.le]
		if d < 0 {
			d = 0
		}
		if b.le == inf {
			snap.Counts = append(snap.Counts, int64(d))
		} else {
			snap.Bounds = append(snap.Bounds, b.le)
			snap.Counts = append(snap.Counts, int64(d))
		}
	}
	// A scrape without an explicit +Inf line (never the case for our
	// registry, but cheap to tolerate) gets an empty overflow slot.
	if len(snap.Counts) == len(snap.Bounds) {
		snap.Counts = append(snap.Counts, 0)
	}
	return snap
}

var inf = func() float64 {
	v, _ := strconv.ParseFloat("+Inf", 64)
	return v
}()

// leBound extracts the le="..." bound from a _bucket series suffix.
func leBound(rest string) float64 {
	i := strings.Index(rest, `le="`)
	if i < 0 {
		return inf
	}
	rest = rest[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return inf
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return inf
	}
	return v
}
