package cache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(2, -1) // no queue
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Saturated, no queue: immediate shed.
	if err := a.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire err = %v, want ErrQueueFull", err)
	}
	a.Release()
	if err := a.Acquire(ctx); err != nil {
		t.Fatalf("after release: %v", err)
	}
	st := a.Stats()
	if st.Admitted != 3 || st.ShedFull != 1 || st.Inflight != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	a := NewAdmission(1, 1)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- a.Acquire(context.Background()) }()
	// The queued request must be blocked, not failed.
	select {
	case err := <-got:
		t.Fatalf("queued request returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued request err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never admitted after release")
	}
}

func TestAdmissionQueueDeadline(t *testing.T) {
	a := NewAdmission(1, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- a.Acquire(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel() // the queued caller's own context dies
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued caller err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued caller never returned")
	}
	if st := a.Stats(); st.Expired != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The queue slot was freed: a fresh caller can still queue and win.
	a.Release()
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionDeadOnArrival(t *testing.T) {
	a := NewAdmission(4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-on-arrival err = %v", err)
	}
	if st := a.Stats(); st.Inflight != 0 || st.Admitted != 0 {
		t.Fatalf("dead request consumed a slot: %+v", st)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(1, 1)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(context.Background()) }()
	// Wait for the queue slot to be occupied.
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never occupied")
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-queue acquire err = %v, want ErrQueueFull", err)
	}
	a.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued caller err = %v", err)
	}
}

// TestAdmissionConcurrencyBound hammers the controller under -race and
// asserts the inflight bound is never exceeded.
func TestAdmissionConcurrencyBound(t *testing.T) {
	const bound = 4
	a := NewAdmission(bound, 1000)
	var (
		mu      sync.Mutex
		cur     int
		maxSeen int
	)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			cur++
			if cur > maxSeen {
				maxSeen = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			a.Release()
		}()
	}
	wg.Wait()
	if maxSeen > bound {
		t.Fatalf("observed %d concurrent holders, bound %d", maxSeen, bound)
	}
	if st := a.Stats(); st.Admitted != 64 || st.Inflight != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
