// Package cache implements the engine's whole-query reuse and overload
// protection layer: a sharded, byte-bounded LRU result cache keyed by a
// canonicalized query fingerprint and guarded by the engine's generation
// counter (Get/Put carry the generation, so bumping it invalidates every
// entry in O(1)); a singleflight group that coalesces concurrent
// identical queries into one execution; and an admission controller —
// a bounded concurrency semaphore with a deadline-aware wait queue —
// that sheds load instead of collapsing under burst traffic.
//
// The package is engine-agnostic: values are opaque `any` payloads with
// caller-supplied byte sizes, so the same machinery could cache postings
// fragments or materialized answer sets.
package cache

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// entry is one cached value on a shard's intrusive LRU list.
type entry struct {
	key        string
	val        any
	size       int64
	gen        uint64
	prev, next *entry // nil-terminated; head is most recently used
}

// lruShard is one lock-striped slice of the cache.
type lruShard struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	m        map[string]*entry
	head     *entry
	tail     *entry
}

func (s *lruShard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *lruShard) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *lruShard) remove(e *entry) {
	s.unlink(e)
	delete(s.m, e.key)
	s.bytes -= e.size
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Capacity  int64 `json:"capacity_bytes"`
	Bytes     int64 `json:"bytes"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"` // includes stale lookups
	Stale     int64 `json:"stale"`  // entries dropped on lookup after a generation bump
	Evictions int64 `json:"evictions"`
}

// Cache is a sharded, byte-bounded LRU map from canonical query keys to
// opaque values. All methods are safe for concurrent use. Entries carry
// the generation they were stored under; a lookup with a newer
// generation treats the entry as stale and drops it, so bumping the
// generation invalidates the whole cache without touching any entry.
type Cache struct {
	shards []*lruShard

	hits      atomic.Int64
	misses    atomic.Int64
	stale     atomic.Int64
	evictions atomic.Int64
}

// defaultShards is the lock-stripe count; capacity splits evenly.
const defaultShards = 16

// New creates a cache bounded to roughly capacity bytes, striped over
// nShards locks (<= 0 selects 16). Each stripe gets capacity/nShards
// bytes; a value larger than its stripe's bound is not stored.
func New(capacity int64, nShards int) *Cache {
	if nShards <= 0 {
		nShards = defaultShards
	}
	if capacity < int64(nShards) {
		capacity = int64(nShards)
	}
	c := &Cache{shards: make([]*lruShard, nShards)}
	for i := range c.shards {
		c.shards[i] = &lruShard{capacity: capacity / int64(nShards), m: make(map[string]*entry)}
	}
	return c
}

func (c *Cache) shardFor(key string) *lruShard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return c.shards[h.Sum64()%uint64(len(c.shards))]
}

// Get returns the value stored under key at generation gen. stale
// reports that an entry existed but was dropped because it predates gen
// (a generation bump invalidated it); stale lookups count as misses.
func (c *Cache) Get(key string, gen uint64) (val any, ok, stale bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e := s.m[key]
	switch {
	case e == nil:
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false, false
	case e.gen != gen:
		s.remove(e)
		s.mu.Unlock()
		c.stale.Add(1)
		c.misses.Add(1)
		return nil, false, true
	default:
		s.unlink(e)
		s.pushFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.val, true, false
	}
}

// Put stores val (of the given byte size) under key at generation gen,
// evicting least-recently-used entries on the key's stripe as needed,
// and returns how many entries were evicted. A value larger than the
// stripe's capacity is not stored (the cache would just thrash).
func (c *Cache) Put(key string, val any, size int64, gen uint64) (evicted int) {
	s := c.shardFor(key)
	if size > s.capacity {
		return 0
	}
	s.mu.Lock()
	if old := s.m[key]; old != nil {
		s.remove(old)
	}
	e := &entry{key: key, val: val, size: size, gen: gen}
	s.m[key] = e
	s.bytes += size
	s.pushFront(e)
	for s.bytes > s.capacity && s.tail != nil {
		s.remove(s.tail)
		evicted++
	}
	s.mu.Unlock()
	c.evictions.Add(int64(evicted))
	return evicted
}

// Delete removes the entry stored under key, reporting whether one
// existed. The removal counts as an eviction.
func (c *Cache) Delete(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	e := s.m[key]
	if e != nil {
		s.remove(e)
	}
	s.mu.Unlock()
	if e == nil {
		return false
	}
	c.evictions.Add(1)
	return true
}

// EvictMatching removes every entry for which pred returns true and
// returns how many were removed. The engine uses it for per-document
// invalidation: a DeleteDoc evicts only the cached results that mention
// the tombstoned document, leaving unrelated hot entries untouched.
// pred runs under the stripe lock and must not call back into the cache.
func (c *Cache) EvictMatching(pred func(key string, val any) bool) int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		var doomed []*entry
		for _, e := range s.m {
			if pred(e.key, e.val) {
				doomed = append(doomed, e)
			}
		}
		for _, e := range doomed {
			s.remove(e)
		}
		s.mu.Unlock()
		n += len(doomed)
	}
	if n > 0 {
		c.evictions.Add(int64(n))
	}
	return n
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache's counters and occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stale:     c.stale.Load(),
		Evictions: c.evictions.Load(),
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Capacity += s.capacity
		st.Bytes += s.bytes
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}
