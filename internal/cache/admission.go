package cache

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by Admission.Acquire when the concurrency
// limit is reached and the wait queue is at capacity: the request is
// shed immediately (HTTP layers answer 429 + Retry-After) instead of
// piling onto a server that is already saturated.
var ErrQueueFull = errors.New("cache: admission queue full")

// Admission is a bounded concurrency semaphore with a deadline-aware
// wait queue — the server's load-shedding valve. Up to maxInflight
// requests run at once; up to queue more wait for a slot, each honoring
// its own context (a queued request whose deadline expires leaves the
// queue with ctx.Err() rather than occupying it dead). Anything beyond
// that is rejected with ErrQueueFull.
//
// The state machine per request:
//
//	Acquire ── slot free ──────────────→ admitted ── Release → done
//	   │
//	   └─ saturated ─ queue has room ──→ queued ─ slot freed → admitted
//	   │                                   └─ ctx done → expired (503)
//	   └─ saturated ─ queue full ──────→ shed (429)
type Admission struct {
	slots    chan struct{}
	queueCap int64
	queued   atomic.Int64

	admitted atomic.Int64
	shedFull atomic.Int64
	expired  atomic.Int64
}

// NewAdmission creates a controller admitting maxInflight concurrent
// requests (minimum 1) with a wait queue of queue requests: 0 selects
// the default of 2×maxInflight, negative disables queueing (saturated
// means shed).
func NewAdmission(maxInflight, queue int) *Admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	switch {
	case queue == 0:
		queue = 2 * maxInflight
	case queue < 0:
		queue = 0
	}
	return &Admission{slots: make(chan struct{}, maxInflight), queueCap: int64(queue)}
}

// Acquire obtains an execution slot, waiting in the queue if the
// controller is saturated. It returns nil (caller must Release), an
// error wrapping ErrQueueFull (request shed), or ctx.Err() (the
// caller's deadline or cancellation fired while queued).
func (a *Admission) Acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		// Dead on arrival: don't occupy a slot for a request whose
		// client already gave up.
		a.expired.Add(1)
		return err
	}
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return nil
	default:
	}
	if q := a.queued.Add(1); q > a.queueCap {
		a.queued.Add(-1)
		a.shedFull.Add(1)
		return ErrQueueFull
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return nil
	case <-ctx.Done():
		a.expired.Add(1)
		return ctx.Err()
	}
}

// Release frees the slot obtained by a successful Acquire.
func (a *Admission) Release() { <-a.slots }

// AdmissionStats is a point-in-time snapshot of the controller.
type AdmissionStats struct {
	MaxInflight int   `json:"max_inflight"`
	QueueCap    int   `json:"queue_capacity"`
	Inflight    int   `json:"inflight"`
	Queued      int   `json:"queued"`
	Admitted    int64 `json:"admitted"`
	ShedFull    int64 `json:"shed_queue_full"`
	Expired     int64 `json:"shed_expired"`
}

// Stats snapshots the controller's counters and occupancy.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		MaxInflight: cap(a.slots),
		QueueCap:    int(a.queueCap),
		Inflight:    len(a.slots),
		Queued:      int(a.queued.Load()),
		Admitted:    a.admitted.Load(),
		ShedFull:    a.shedFull.Load(),
		Expired:     a.expired.Load(),
	}
}
