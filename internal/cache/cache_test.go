package cache

import (
	"fmt"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := New(1<<20, 4)
	if _, ok, stale := c.Get("a", 0); ok || stale {
		t.Fatalf("empty cache: ok=%v stale=%v", ok, stale)
	}
	c.Put("a", "va", 10, 0)
	v, ok, _ := c.Get("a", 0)
	if !ok || v.(string) != "va" {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// Replacement keeps one entry and the newest value.
	c.Put("a", "vb", 12, 0)
	if v, _, _ := c.Get("a", 0); v.(string) != "vb" {
		t.Fatalf("after replace: %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Bytes != 12 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheGenerationInvalidation(t *testing.T) {
	c := New(1<<20, 1)
	c.Put("k", 1, 8, 7)
	if _, ok, _ := c.Get("k", 7); !ok {
		t.Fatal("same generation should hit")
	}
	// A generation bump makes every prior entry stale in O(1): nothing
	// was touched, the lookup itself drops the entry.
	v, ok, stale := c.Get("k", 8)
	if ok || !stale || v != nil {
		t.Fatalf("stale lookup: v=%v ok=%v stale=%v", v, ok, stale)
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not dropped: Len=%d", c.Len())
	}
	// And the old-generation slot is simply gone, not resurrectable.
	if _, ok, stale := c.Get("k", 7); ok || stale {
		t.Fatalf("re-lookup at old gen: ok=%v stale=%v", ok, stale)
	}
	st := c.Stats()
	if st.Stale != 1 || st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheByteBoundEviction(t *testing.T) {
	// One stripe so LRU order is global and deterministic.
	c := New(100, 1)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 20, 0) // fills exactly
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
	// Touch k0 so k1 becomes the LRU victim.
	c.Get("k0", 0)
	if ev := c.Put("k5", 5, 20, 0); ev != 1 {
		t.Fatalf("evicted %d entries, want 1", ev)
	}
	if _, ok, _ := c.Get("k1", 0); ok {
		t.Fatal("k1 (LRU) should have been evicted")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4", "k5"} {
		if _, ok, _ := c.Get(k, 0); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if st := c.Stats(); st.Bytes != 100 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheOversizedValueNotStored(t *testing.T) {
	c := New(64, 1)
	if ev := c.Put("big", "x", 65, 0); ev != 0 {
		t.Fatalf("oversized put evicted %d", ev)
	}
	if c.Len() != 0 {
		t.Fatal("oversized value was stored")
	}
}

func TestCacheMultiEvictionOnLargePut(t *testing.T) {
	c := New(100, 1)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 20, 0)
	}
	// 100 resident + 90 incoming: every 20-byte entry must go before
	// the total fits under the 100-byte bound again.
	if ev := c.Put("wide", 9, 90, 0); ev != 5 {
		t.Fatalf("evicted %d entries, want 5", ev)
	}
	if _, ok, _ := c.Get("wide", 0); !ok {
		t.Fatal("wide entry missing")
	}
	if st := c.Stats(); st.Bytes > 100 {
		t.Fatalf("bytes %d over capacity", st.Bytes)
	}
}

func TestCacheStriping(t *testing.T) {
	// Many keys must spread over the stripes rather than piling onto one.
	c := New(1<<20, 8)
	for i := 0; i < 256; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i, 16, 0)
	}
	occupied := 0
	for _, s := range c.shards {
		s.mu.Lock()
		if len(s.m) > 0 {
			occupied++
		}
		s.mu.Unlock()
	}
	if occupied < 4 {
		t.Fatalf("256 keys landed on only %d/8 stripes", occupied)
	}
}
