package cache

import "testing"

func baseSpec() Spec {
	return Spec{
		Terms:     []string{"xml", "ranked", "search"},
		Algo:      "HDIL",
		TopM:      10,
		Decay:     0.75,
		Proximity: true,
	}
}

func TestKeyTermOrderAndDuplicates(t *testing.T) {
	want := baseSpec().Key()
	equivalent := []Spec{
		{Terms: []string{"search", "xml", "ranked"}, Algo: "HDIL", TopM: 10, Decay: 0.75, Proximity: true},
		{Terms: []string{"ranked", "xml", "xml", "search", "ranked"}, Algo: "HDIL", TopM: 10, Decay: 0.75, Proximity: true},
		{Terms: []string{"xml", "ranked", "search"}, Weights: []float64{1, 1, 1}, Algo: "HDIL", TopM: 10, Decay: 0.75, Proximity: true},
	}
	for i, s := range equivalent {
		if got := s.Key(); got != want {
			t.Errorf("equivalent spec %d: key %q != %q", i, got, want)
		}
	}
}

func TestKeyWeightsFollowTerms(t *testing.T) {
	a := baseSpec()
	a.Weights = []float64{2, 1, 3} // xml=2 ranked=1 search=3
	b := baseSpec()
	b.Terms = []string{"search", "ranked", "xml"}
	b.Weights = []float64{3, 1, 2} // same term→weight mapping
	if a.Key() != b.Key() {
		t.Errorf("reordered weighted query should collide:\n%q\n%q", a.Key(), b.Key())
	}
	c := baseSpec()
	c.Weights = []float64{3, 1, 2} // different mapping
	if a.Key() == c.Key() {
		t.Error("different weight assignment must not collide")
	}
}

func TestKeyDistinctOptionsDiffer(t *testing.T) {
	base := baseSpec()
	mutations := []func(*Spec){
		func(s *Spec) { s.Algo = "DIL" },
		func(s *Spec) { s.Algo = "Disjunctive" },
		func(s *Spec) { s.TopM = 11 },
		func(s *Spec) { s.Decay = 0.5 },
		func(s *Spec) { s.Proximity = false },
		func(s *Spec) { s.SumAgg = true },
		func(s *Spec) { s.TFIDF = true },
		func(s *Spec) { s.Terms = append([]string{"extra"}, s.Terms...) },
		func(s *Spec) { s.Weights = []float64{2, 1, 1} },
		func(s *Spec) { s.Weights = []float64{1, 1} }, // misaligned ≠ unweighted
	}
	seen := map[string]int{base.Key(): -1}
	for i, mutate := range mutations {
		s := baseSpec()
		s.Terms = append([]string(nil), s.Terms...)
		mutate(&s)
		k := s.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %d collides with %d: %q", i, prev, k)
		}
		seen[k] = i
	}
}

func TestKeyQuotingIsUnambiguous(t *testing.T) {
	// Terms containing the separators must not forge another spec's key.
	a := Spec{Terms: []string{`x|k="y"`}, Algo: "DIL", TopM: 10, Decay: 0.75}
	b := Spec{Terms: []string{"x", "y"}, Algo: "DIL", TopM: 10, Decay: 0.75}
	if a.Key() == b.Key() {
		t.Errorf("separator-bearing term forged a key: %q", a.Key())
	}
}
