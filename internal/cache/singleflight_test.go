package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalesceExactlyOnce is the coalescing contract under -race: many
// goroutines issue the same key while some waiters' contexts are
// cancelled mid-flight. The cancelled waiters get ctx.Err() promptly,
// every survivor gets the shared result, and the function ran exactly
// once.
func TestCoalesceExactlyOnce(t *testing.T) {
	var g Group
	var executions atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	fn := func(ctx context.Context) (any, error) {
		executions.Add(1)
		close(started)
		<-release
		return "answer", nil
	}

	const survivors, cancelled = 12, 5
	var wg sync.WaitGroup
	errs := make(chan error, survivors+cancelled)

	// The leader plus the surviving waiters.
	for i := 0; i < survivors; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, _ := g.Do(context.Background(), "q", fn)
			if err != nil || v.(string) != "answer" {
				errs <- errorsJoin("survivor", v, err)
			}
		}()
	}
	<-started // the flight is running; joiners from here on coalesce

	// Waiters whose own context dies while the flight is in progress.
	cancelCtx, cancel := context.WithCancel(context.Background())
	var cwg sync.WaitGroup
	for i := 0; i < cancelled; i++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			v, err, leader := g.Do(cancelCtx, "q", fn)
			if !errors.Is(err, context.Canceled) || v != nil || leader {
				errs <- errorsJoin("cancelled waiter", v, err)
			}
		}()
	}
	// Give the cancelled waiters time to join the flight, then cut them
	// loose while the flight is still blocked on release.
	time.Sleep(10 * time.Millisecond)
	cancel()
	cwg.Wait() // they must return without the flight completing

	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("flight ran %d times, want exactly 1", n)
	}

	// The key is free again: the next call starts a fresh flight.
	release = make(chan struct{})
	close(release)
	started = make(chan struct{}, 1)
	v, err, leader := g.Do(context.Background(), "q", func(ctx context.Context) (any, error) {
		executions.Add(1)
		return "second", nil
	})
	if err != nil || v.(string) != "second" || !leader {
		t.Fatalf("fresh flight: v=%v err=%v leader=%v", v, err, leader)
	}
	if n := executions.Load(); n != 2 {
		t.Fatalf("fresh flight did not execute (total %d)", n)
	}
}

func errorsJoin(who string, v any, err error) error {
	return errors.New(who + ": unexpected outcome: " + valString(v) + " / " + errString(err))
}

func valString(v any) string {
	if v == nil {
		return "<nil>"
	}
	if s, ok := v.(string); ok {
		return s
	}
	return "?"
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// TestCoalesceAbandonedFlightCancelled: when every caller abandons the
// flight, its execution context is cancelled so the work stops.
func TestCoalesceAbandonedFlightCancelled(t *testing.T) {
	var g Group
	flightDone := make(chan error, 1)
	started := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, err, _ := g.Do(ctx, "k", func(fctx context.Context) (any, error) {
			close(started)
			<-fctx.Done() // only an abandoned flight unblocks this
			flightDone <- fctx.Err()
			return nil, fctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("abandoning caller err = %v", err)
		}
	}()
	<-started
	cancel() // the only caller leaves → the flight must be cancelled
	select {
	case err := <-flightDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("flight context err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight context never cancelled after all callers left")
	}
}

// TestCoalesceAbandonedFlightUnpublished: once every caller has
// abandoned a flight, a NEW caller must start a fresh execution rather
// than join the doomed (already-cancelled) one and inherit its
// cancellation error.
func TestCoalesceAbandonedFlightUnpublished(t *testing.T) {
	var g Group
	started := make(chan struct{})
	doomedExited := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	abandonerDone := make(chan struct{})
	go func() {
		defer close(abandonerDone)
		_, err, _ := g.Do(ctx, "k", func(fctx context.Context) (any, error) {
			close(started)
			<-fctx.Done()
			close(doomedExited)
			return nil, fctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("abandoning caller err = %v", err)
		}
	}()
	<-started
	cancel()
	<-abandonerDone // the abandoner has unpublished and cancelled the flight

	v, err, leader := g.Do(context.Background(), "k", func(context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil || v.(string) != "fresh" || !leader {
		t.Fatalf("post-abandon caller: v=%v err=%v leader=%v (joined the doomed flight?)", v, err, leader)
	}
	select {
	case <-doomedExited:
	case <-time.After(5 * time.Second):
		t.Fatal("doomed flight never observed its cancellation")
	}
}

// TestCoalesceSharedError: a failing flight hands the same error to all
// coalesced callers.
func TestCoalesceSharedError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	results := make(chan error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, _ := g.Do(context.Background(), "k", func(context.Context) (any, error) {
			close(started)
			<-release
			return nil, boom
		})
		results <- err
	}()
	<-started
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// If this caller loses the race to join (the flight resolved
			// first), it legitimately starts a fresh flight — which fails
			// the same way, so the assertion below holds either way.
			_, err, _ := g.Do(context.Background(), "k", func(context.Context) (any, error) {
				return nil, boom
			})
			results <- err
		}()
	}
	// Let the three waiters join before the flight resolves; sharing is
	// still correct either way, but this exercises the coalesced path.
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()
	close(results)
	for err := range results {
		if !errors.Is(err, boom) {
			t.Errorf("caller err = %v, want boom", err)
		}
	}
}
