package cache

import (
	"context"
	"sync"
)

// flight is one in-progress shared execution.
type flight struct {
	done    chan struct{} // closed when val/err are set
	val     any
	err     error
	waiters int                // callers currently blocked on done
	cancel  context.CancelFunc // cancels the execution context
}

// Group coalesces concurrent calls with the same key into a single
// execution (singleflight). The zero value is ready to use.
//
// Cancellation is waiter-side: the execution runs under its own context
// detached from any caller's, so one caller's deadline expiring makes
// that caller return ctx.Err() without killing the shared flight. Only
// when every caller has abandoned the flight is its context cancelled —
// nobody wants the answer, so the execution aborts at its next
// cancellation check instead of burning I/O.
type Group struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// Do executes fn under key, coalescing with any in-progress call for
// the same key. fn receives the flight's own context (see Group).
//
// leader reports that this caller created the flight and carried it to
// completion: exactly one caller per execution returns leader=true, and
// only if it was not cancelled while waiting. Every other caller either
// shares the flight's outcome (val/err) or, if its own ctx ends first,
// returns ctx.Err() with leader=false.
func (g *Group) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (val any, err error, leader bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	f, ok := g.flights[key]
	created := false
	if !ok {
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{done: make(chan struct{}), cancel: cancel}
		g.flights[key] = f
		created = true
		go func() {
			v, e := fn(fctx)
			g.mu.Lock()
			f.val, f.err = v, e
			// Unpublish before completing: callers arriving after this
			// point start a fresh flight instead of reading a stale one.
			// Guarded by identity — an abandoned flight was already
			// unpublished, and the key may carry a successor by now.
			if g.flights[key] == f {
				delete(g.flights, key)
			}
			g.mu.Unlock()
			close(f.done)
			cancel()
		}()
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.val, f.err, created
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		if abandoned && g.flights[key] == f {
			// Unpublish before cancelling: the doomed execution is about
			// to abort with a cancellation error, and a caller arriving
			// later must start a fresh flight rather than inherit it.
			delete(g.flights, key)
		}
		g.mu.Unlock()
		if abandoned {
			// Last caller out: nobody is waiting for this execution
			// anymore, so cancel it.
			f.cancel()
		}
		return nil, ctx.Err(), false
	}
}
