package cache

import (
	"sort"
	"strconv"
	"strings"
)

// Spec is everything that determines a query's result set, in the form
// the engine resolved it (engine-level defaults already applied). Key
// canonicalizes it so that semantically identical queries collide:
//
//   - duplicate terms are redundant under both conjunctive and
//     disjunctive semantics (the processors deduplicate, keeping the
//     first occurrence), so they are dropped;
//   - term order never affects scores — per-keyword contributions are
//     summed and the proximity window is set-based — so terms sort
//     lexicographically, each keeping the weight that was aligned with
//     it (weights pair with distinct terms in order of first
//     appearance, exactly as query.Options.Weights is defined);
//   - an all-ones weight vector means the same as no weights at all.
//
// Every option that can change the result set is encoded unambiguously
// (quoted terms, exact hex floats), so distinct options never collide.
type Spec struct {
	// Terms are the tokenized keywords in query order, duplicates and all.
	Terms []string
	// Weights aligns with the distinct terms in order of first
	// appearance; nil (or all ones) means unweighted. A vector whose
	// length does not match the distinct-term count is encoded verbatim:
	// such a query fails validation anyway, and a malformed spec must
	// still never collide with a well-formed one.
	Weights []float64
	// Algo labels the processor ("DIL", "HDIL", ..., "Disjunctive").
	Algo string
	// TopM is the resolved result count.
	TopM int
	// Decay is the resolved per-level rank decay.
	Decay float64
	// Proximity is the resolved proximity-factor switch.
	Proximity bool
	// SumAgg selects f=sum occurrence aggregation.
	SumAgg bool
	// TFIDF selects tf-idf scoring.
	TFIDF bool
}

// Key renders the canonical cache key. Two Specs produce the same key
// iff they describe the same result computation.
func (s Spec) Key() string {
	terms, weights := s.canonicalTerms()
	var b strings.Builder
	b.Grow(64 + 16*len(terms))
	b.WriteString("q1|a=")
	b.WriteString(strconv.Quote(s.Algo))
	b.WriteString("|m=")
	b.WriteString(strconv.Itoa(s.TopM))
	b.WriteString("|d=")
	b.WriteString(strconv.FormatFloat(s.Decay, 'x', -1, 64))
	b.WriteString("|p=")
	b.WriteString(strconv.FormatBool(s.Proximity))
	b.WriteString("|s=")
	b.WriteString(strconv.FormatBool(s.SumAgg))
	b.WriteString("|t=")
	b.WriteString(strconv.FormatBool(s.TFIDF))
	for i, t := range terms {
		b.WriteString("|k=")
		b.WriteString(strconv.Quote(t))
		if weights != nil {
			b.WriteString(":")
			b.WriteString(strconv.FormatFloat(weights[i], 'x', -1, 64))
		}
	}
	return b.String()
}

// canonicalTerms deduplicates (first occurrence wins, pairing each
// distinct term with its weight) and sorts term/weight pairs by term.
// The returned weights slice is nil when the vector is absent,
// all-ones, or misaligned (misaligned vectors are appended verbatim by
// Key through a sentinel term so they cannot collide).
func (s Spec) canonicalTerms() ([]string, []float64) {
	type tw struct {
		term   string
		weight float64
	}
	seen := make(map[string]bool, len(s.Terms))
	pairs := make([]tw, 0, len(s.Terms))
	for _, t := range s.Terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		pairs = append(pairs, tw{term: t, weight: 1})
	}
	weighted := false
	if len(s.Weights) == len(pairs) && len(s.Weights) > 0 {
		for i := range pairs {
			pairs[i].weight = s.Weights[i]
			if s.Weights[i] != 1 {
				weighted = true
			}
		}
	} else if len(s.Weights) > 0 {
		// Misaligned vector: keep it distinguishable without pretending
		// it pairs with any term.
		weighted = true
		pairs = append(pairs, tw{term: "\x00misaligned", weight: float64(len(s.Weights))})
		for i, w := range s.Weights {
			pairs = append(pairs, tw{term: "\x00w" + strconv.Itoa(i), weight: w})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].term < pairs[j].term })
	terms := make([]string, len(pairs))
	var weights []float64
	if weighted {
		weights = make([]float64, len(pairs))
	}
	for i, p := range pairs {
		terms[i] = p.term
		if weighted {
			weights[i] = p.weight
		}
	}
	return terms, weights
}
