package cache

import (
	"math/rand"
	"strings"
	"testing"
)

// FuzzCacheKey drives the canonicalizer's two contracts from random
// inputs: semantically identical queries (terms permuted, duplicates
// injected, weights kept aligned) must collide on one key, and flipping
// any single option must separate the keys.
func FuzzCacheKey(f *testing.F) {
	f.Add("xml ranked search", int64(1), 10, 0.75, true, false, false, byte(0))
	f.Add("alpha beta alpha", int64(7), 5, 0.5, false, true, false, byte(1))
	f.Add("a", int64(42), 100, 1.0, true, false, true, byte(2))
	f.Add("päper ünï 統計", int64(3), 25, 0.9, false, false, false, byte(3))
	f.Fuzz(func(t *testing.T, termData string, seed int64, topM int, decay float64, prox, sum, tfidf bool, algoPick byte) {
		if !(decay >= 0 && decay <= 1) {
			t.Skip("decay outside the valid range")
		}
		raw := strings.Fields(termData)
		if len(raw) == 0 || len(raw) > 32 {
			t.Skip("no usable terms")
		}
		// Distinct terms in first-appearance order, each given a weight.
		rng := rand.New(rand.NewSource(seed))
		seen := map[string]bool{}
		var terms []string
		for _, w := range raw {
			if !seen[w] {
				seen[w] = true
				terms = append(terms, w)
			}
		}
		weights := make([]float64, len(terms))
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(3))
		}
		algos := []string{"HDIL", "DIL", "RDIL", "Naive-ID", "Naive-Rank", "Disjunctive"}
		base := Spec{
			Terms: terms, Weights: weights, Algo: algos[int(algoPick)%len(algos)],
			TopM: topM, Decay: decay, Proximity: prox, SumAgg: sum, TFIDF: tfidf,
		}
		want := base.Key()

		// Equivalent variant: permute the (term, weight) pairs — the
		// weight vector follows the new first-appearance order — and
		// re-append random duplicates (which must be ignored).
		perm := rng.Perm(len(terms))
		pterms := make([]string, len(terms))
		pweights := make([]float64, len(terms))
		for i, j := range perm {
			pterms[i] = terms[j]
			pweights[i] = weights[j]
		}
		dupTerms := append([]string(nil), pterms...)
		for i := 0; i < rng.Intn(4); i++ {
			dupTerms = append(dupTerms, pterms[rng.Intn(len(pterms))])
		}
		variant := base
		variant.Terms = dupTerms
		variant.Weights = pweights
		if got := variant.Key(); got != want {
			t.Fatalf("permuted/duplicated query changed key:\n base %q\n  got %q", want, got)
		}

		// Distinct options must separate.
		fresh := "\x01new-term"
		for seen[fresh] {
			fresh += "\x01" // guaranteed not already a query term
		}
		mutations := []func(*Spec){
			func(s *Spec) { s.TopM++ },
			func(s *Spec) { s.Proximity = !s.Proximity },
			func(s *Spec) { s.SumAgg = !s.SumAgg },
			func(s *Spec) { s.TFIDF = !s.TFIDF },
			func(s *Spec) { s.Algo = s.Algo + "'" },
			func(s *Spec) { s.Terms = append([]string{fresh}, s.Terms...) },
		}
		for i, mutate := range mutations {
			m := base
			m.Terms = append([]string(nil), base.Terms...)
			m.Weights = append([]float64(nil), base.Weights...)
			mutate(&m)
			if m.Key() == want {
				t.Fatalf("mutation %d did not change the key %q", i, want)
			}
		}
	})
}
