package dewey

import (
	"testing"
)

func id(cs ...uint32) ID { return ID(cs) }

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b ID
		want int
	}{
		{nil, nil, 0},
		{nil, id(0), -1},
		{id(0), nil, 1},
		{id(1, 2, 3), id(1, 2, 3), 0},
		{id(1, 2), id(1, 2, 0), -1}, // ancestor before descendant
		{id(1, 2, 0), id(1, 2), 1},
		{id(5, 0, 3, 0, 0), id(5, 0, 3, 0, 1), -1}, // paper's Figure 4 IDs
		{id(5, 0, 3, 0, 1), id(6, 0, 3, 8, 3), -1},
		{id(2), id(1, 5), 1},
		{id(1, 5), id(2), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonPrefix(t *testing.T) {
	cases := []struct {
		a, b ID
		want int
	}{
		{id(5, 0, 3, 0, 0), id(5, 0, 3, 0, 1), 4},
		{id(5, 0, 3, 0, 1), id(6, 0, 3, 8, 3), 0},
		{id(1, 2, 3), id(1, 2, 3), 3},
		{id(1, 2, 3), id(1, 2), 2},
		{nil, id(1), 0},
	}
	for _, c := range cases {
		if got := CommonPrefixLen(c.a, c.b); got != c.want {
			t.Errorf("CommonPrefixLen(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		cp := CommonPrefix(c.a, c.b)
		if len(cp) != c.want {
			t.Errorf("CommonPrefix(%v, %v) = %v, want length %d", c.a, c.b, cp, c.want)
		}
	}
}

func TestPrefixAncestor(t *testing.T) {
	a := id(5, 0, 3)
	d := id(5, 0, 3, 0, 1)
	if !a.IsPrefixOf(d) || !a.IsAncestorOf(d) {
		t.Errorf("%v should be ancestor and prefix of %v", a, d)
	}
	if !a.IsPrefixOf(a) {
		t.Errorf("ID should be prefix of itself")
	}
	if a.IsAncestorOf(a) {
		t.Errorf("ID should not be proper ancestor of itself")
	}
	if d.IsPrefixOf(a) {
		t.Errorf("descendant is not prefix of ancestor")
	}
	if id(5, 1).IsPrefixOf(d) {
		t.Errorf("sibling branch is not a prefix")
	}
}

func TestParentChild(t *testing.T) {
	a := id(5, 0, 3)
	if got := a.Parent(); !Equal(got, id(5, 0)) {
		t.Errorf("Parent(%v) = %v", a, got)
	}
	if got := id(5).Parent(); got != nil {
		t.Errorf("Parent of single component should be nil, got %v", got)
	}
	if got := ID(nil).Parent(); got != nil {
		t.Errorf("Parent of nil should be nil, got %v", got)
	}
	c := a.Child(7)
	if !Equal(c, id(5, 0, 3, 7)) {
		t.Errorf("Child = %v", c)
	}
	// Child must not alias a: mutating c must leave a intact.
	c[0] = 99
	if a[0] != 5 {
		t.Errorf("Child aliased parent storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := id(1, 2, 3)
	b := a.Clone()
	b[1] = 99
	if a[1] != 2 {
		t.Errorf("Clone shares storage")
	}
	if ID(nil).Clone() != nil {
		t.Errorf("Clone(nil) should be nil")
	}
}

func TestStringParse(t *testing.T) {
	for _, s := range []string{"5.0.3.0.0", "0", "1.2", "4294967295.0"} {
		parsed, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if parsed.String() != s {
			t.Errorf("round trip %q -> %v -> %q", s, parsed, parsed.String())
		}
	}
	for _, s := range []string{"", "1..2", "a.b", "1.-2", "4294967296"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
	if got := ID(nil).String(); got != "<nil>" {
		t.Errorf("nil String = %q", got)
	}
}

func TestDocDepth(t *testing.T) {
	a := id(7, 0, 2)
	if a.Doc() != 7 {
		t.Errorf("Doc = %d", a.Doc())
	}
	if a.Depth() != 2 {
		t.Errorf("Depth = %d", a.Depth())
	}
	if ID(nil).Doc() != 0 || ID(nil).Depth() != 0 {
		t.Errorf("nil Doc/Depth should be 0")
	}
}

func TestMinMax(t *testing.T) {
	a, b := id(1, 2), id(1, 3)
	if !Equal(Min(a, b), a) || !Equal(Max(a, b), b) {
		t.Errorf("Min/Max wrong")
	}
	if !Equal(Min(b, a), a) || !Equal(Max(b, a), b) {
		t.Errorf("Min/Max not symmetric")
	}
}
