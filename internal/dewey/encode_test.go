package dewey

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ids := []ID{
		nil,
		id(0),
		id(5, 0, 3, 0, 0),
		id(127),
		id(128),
		id(lim2 - 1),
		id(lim2),
		id(lim3 - 1),
		id(lim3),
		id(lim4 - 1),
		id(lim4),
		id(0xFFFFFFFF),
		id(1, 127, 128, lim2, lim3, lim4, 0xFFFFFFFF),
	}
	for _, want := range ids {
		enc := Encode(want)
		if len(enc) != EncodedLen(want) {
			t.Errorf("EncodedLen(%v) = %d, actual %d", want, EncodedLen(want), len(enc))
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", want, err)
		}
		if Compare(got, want) != 0 {
			t.Errorf("round trip %v -> %v", want, got)
		}
		n, err := NumComponents(enc)
		if err != nil || n != len(want) {
			t.Errorf("NumComponents(%v) = %d, %v; want %d", want, n, err, len(want))
		}
	}
}

func TestEncodeSmallComponentsOneByte(t *testing.T) {
	// The paper's space argument (Section 4.2.1) relies on small sibling
	// ordinals taking one byte each.
	e := Encode(id(5, 0, 3, 0, 0))
	if len(e) != 5 {
		t.Errorf("5 small components should encode in 5 bytes, got %d", len(e))
	}
}

func TestEncodedOrderPreserved(t *testing.T) {
	ids := []ID{
		id(0), id(1), id(127), id(128), id(129), id(16511), id(16512),
		id(1, 0), id(1, 1), id(1, 0, 0), id(2), id(2, 0),
		id(5, 0, 3, 0, 0), id(5, 0, 3, 0, 1), id(6, 0, 3, 8, 3),
		id(0xFFFFFFFF), id(0xFFFFFFFE, 5),
	}
	for _, a := range ids {
		for _, b := range ids {
			cmpID := Compare(a, b)
			cmpBytes := bytes.Compare(Encode(a), Encode(b))
			if sign(cmpID) != sign(cmpBytes) {
				t.Errorf("order mismatch: Compare(%v,%v)=%d but bytes.Compare=%d", a, b, cmpID, cmpBytes)
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestEncodedPrefixProperty(t *testing.T) {
	anc := id(5, 0, 3)
	desc := id(5, 0, 3, 0, 1)
	ea, ed := Encode(anc), Encode(desc)
	if !bytes.HasPrefix(ed, ea) {
		t.Errorf("encoded ancestor %x is not byte prefix of descendant %x", ea, ed)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := Encode(id(300, 5_000_000, 400_000_000))
	for i := 1; i < len(full); i++ {
		if _, err := Decode(full[:i]); err == nil {
			// Truncation mid-component must error; truncation at a
			// component boundary legitimately yields a shorter ID.
			if _, berr := NumComponents(full[:i]); berr == nil {
				continue
			}
			t.Errorf("Decode of truncated buffer len %d should fail", i)
		}
	}
}

func TestDecodeInto(t *testing.T) {
	buf := make(ID, 0, 8)
	e := Encode(id(5, 0, 3))
	got, err := DecodeInto(buf, e)
	if err != nil || !Equal(got, id(5, 0, 3)) {
		t.Fatalf("DecodeInto = %v, %v", got, err)
	}
	// Reuse must reset.
	got2, err := DecodeInto(got, Encode(id(9)))
	if err != nil || !Equal(got2, id(9)) {
		t.Fatalf("DecodeInto reuse = %v, %v", got2, err)
	}
}

// quick-check properties

func randomID(r *rand.Rand) ID {
	n := 1 + r.Intn(8)
	v := make(ID, n)
	for i := range v {
		// Mix magnitudes so all encoding lengths are exercised.
		switch r.Intn(4) {
		case 0:
			v[i] = uint32(r.Intn(128))
		case 1:
			v[i] = uint32(r.Intn(1 << 14))
		case 2:
			v[i] = uint32(r.Intn(1 << 22))
		default:
			v[i] = r.Uint32()
		}
	}
	return v
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		want := randomID(r)
		got, err := Decode(Encode(want))
		return err == nil && Compare(got, want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickOrderPreservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomID(r), randomID(r)
		return sign(Compare(a, b)) == sign(bytes.Compare(Encode(a), Encode(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickPrefixEncoding(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomID(r)
		cut := r.Intn(len(a) + 1)
		return bytes.HasPrefix(Encode(a), Encode(a[:cut]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCommonPrefixIsDeepestAncestor(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomID(r), randomID(r)
		n := CommonPrefixLen(a, b)
		p := ID(a[:n])
		if !p.IsPrefixOf(a) || !p.IsPrefixOf(b) {
			return false
		}
		// Maximality: extending by one more component must break prefix-ness.
		if n < len(a) && n < len(b) && a[n] == b[n] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	v := id(5, 0, 3, 0, 0, 12, 7)
	buf := make([]byte, 0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Append(buf[:0], v)
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	e := Encode(id(5, 0, 3, 0, 0, 12, 7))
	var v ID
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, _ = DecodeInto(v, e)
	}
}

func BenchmarkCompare(b *testing.B) {
	x := id(5, 0, 3, 0, 0, 12, 7)
	y := id(5, 0, 3, 0, 1, 2)
	for i := 0; i < b.N; i++ {
		Compare(x, y)
	}
}
