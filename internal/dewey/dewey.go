// Package dewey implements Dewey identifiers for XML elements as used by
// the XRANK system (Guo et al., SIGMOD 2003, Section 4.2).
//
// A Dewey ID is the path vector of sibling ordinals from the root of a
// document down to an element. The first component is the document ID, so a
// single ID space covers an entire multi-document collection. The defining
// property is that the ID of an ancestor is a prefix of the ID of every
// descendant, so ancestor/descendant relationships — and deepest common
// ancestors — can be computed from IDs alone, without touching the
// documents.
package dewey

import (
	"fmt"
	"strconv"
	"strings"
)

// ID is a Dewey identifier: component 0 is the document ID, and each further
// component is the zero-based ordinal of an element among its siblings.
// A nil or empty ID is valid and denotes "no element"; it sorts before every
// non-empty ID.
type ID []uint32

// Compare returns -1, 0, or +1 comparing a and b lexicographically by
// component, with a proper prefix ordering before any of its extensions.
// This is the document order of the corresponding elements (ancestors
// before descendants).
func Compare(a, b ID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Equal reports whether a and b are component-wise identical.
func Equal(a, b ID) bool { return Compare(a, b) == 0 }

// CommonPrefixLen returns the number of leading components shared by a and
// b. The shared prefix a[:CommonPrefixLen(a,b)] is the Dewey ID of the
// deepest common ancestor of the two elements (or the document, when only
// the document component matches).
func CommonPrefixLen(a, b ID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// CommonPrefix returns the deepest common ancestor ID of a and b, which is
// their longest common prefix. The result aliases a's backing array.
func CommonPrefix(a, b ID) ID { return a[:CommonPrefixLen(a, b)] }

// IsPrefixOf reports whether a is a (not necessarily proper) prefix of b,
// i.e. whether the element identified by a is b's ancestor-or-self.
func (a ID) IsPrefixOf(b ID) bool {
	return len(a) <= len(b) && CommonPrefixLen(a, b) == len(a)
}

// IsAncestorOf reports whether a is a proper ancestor of b.
func (a ID) IsAncestorOf(b ID) bool {
	return len(a) < len(b) && CommonPrefixLen(a, b) == len(a)
}

// Parent returns the ID of the parent element (the ID without its last
// component). Parent of an empty or single-component ID is nil. The result
// aliases a's backing array.
func (a ID) Parent() ID {
	if len(a) <= 1 {
		return nil
	}
	return a[:len(a)-1]
}

// Child returns a new ID identifying the ord-th child of a.
func (a ID) Child(ord uint32) ID {
	c := make(ID, len(a)+1)
	copy(c, a)
	c[len(a)] = ord
	return c
}

// Clone returns a copy of a with its own backing array.
func (a ID) Clone() ID {
	if a == nil {
		return nil
	}
	c := make(ID, len(a))
	copy(c, a)
	return c
}

// Doc returns the document component of the ID, or 0 for an empty ID.
func (a ID) Doc() uint32 {
	if len(a) == 0 {
		return 0
	}
	return a[0]
}

// Depth returns the number of components below the document component;
// the document root element has depth 1.
func (a ID) Depth() int {
	if len(a) == 0 {
		return 0
	}
	return len(a) - 1
}

// String renders the ID in the paper's dotted notation, e.g. "5.0.3.0.0".
func (a ID) String() string {
	if len(a) == 0 {
		return "<nil>"
	}
	var b strings.Builder
	for i, c := range a {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return b.String()
}

// Parse parses the dotted notation produced by String.
func Parse(s string) (ID, error) {
	if s == "" {
		return nil, fmt.Errorf("dewey: empty ID string")
	}
	parts := strings.Split(s, ".")
	id := make(ID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dewey: bad component %q in %q: %v", p, s, err)
		}
		id[i] = uint32(v)
	}
	return id, nil
}

// Min returns the smaller of a and b in document order.
func Min(a, b ID) ID {
	if Compare(a, b) <= 0 {
		return a
	}
	return b
}

// Max returns the larger of a and b in document order.
func Max(a, b ID) ID {
	if Compare(a, b) >= 0 {
		return a
	}
	return b
}
