package dewey

import (
	"bytes"
	"testing"
)

// FuzzDecode checks that arbitrary bytes never panic the decoder and that
// anything it accepts round-trips through Encode.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05})
	f.Add(Encode(ID{5, 0, 3, 0, 0}))
	f.Add(Encode(ID{0xFFFFFFFF, 127, 128}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(id)
		// Canonical encodings round-trip bit-exactly; Decode only accepts
		// canonical input because every (length-tag, value) range is
		// disjoint.
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip %x -> %v -> %x", data, id, re)
		}
	})
}

// FuzzParse checks the dotted-string parser against its printer.
func FuzzParse(f *testing.F) {
	f.Add("5.0.3.0.0")
	f.Add("")
	f.Add("1..2")
	f.Add("4294967295")
	f.Add("00.1")
	f.Fuzz(func(t *testing.T, s string) {
		id, err := Parse(s)
		if err != nil {
			return
		}
		// Printing and reparsing is stable (String produces the canonical
		// form, which may differ from a non-canonical input like "01").
		id2, err := Parse(id.String())
		if err != nil || !Equal(id, id2) {
			t.Fatalf("reparse %q -> %v -> %v (%v)", s, id, id2, err)
		}
	})
}
