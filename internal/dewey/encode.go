package dewey

import "fmt"

// Binary encoding of Dewey IDs.
//
// Each component is encoded big-endian in 1–5 bytes; the top three bits of
// the first byte give the encoding length, and encodings are canonical
// (shortest form only). Because the length tag grows with the value and the
// value ranges of the different lengths are disjoint, the encoding is
// order-preserving: bytes.Compare on two encoded IDs equals Compare on the
// IDs, and an encoded ancestor is a byte prefix of its encoded descendants.
// This is what lets B+-tree pages and postings compare keys without
// decoding, and it keeps the common case (small sibling ordinals, as the
// paper observes in Section 4.2.1) at one byte per component.
//
// Layout of the first byte (x = value bits):
//
//	0xxxxxxx                 1 byte,  values [0, 2^7)
//	10xxxxxx + 1 byte        2 bytes, values [2^7, 2^7+2^14)
//	110xxxxx + 2 bytes       3 bytes, values [2^7+2^14, 2^7+2^14+2^21)
//	1110xxxx + 3 bytes       4 bytes, ...
//	1111xxxx + 4 bytes       5 bytes, remaining uint32 range
//
// Offsetting each range by the capacity of the shorter ones keeps the
// encoding canonical and the ranges disjoint.

const (
	lim1 = 1 << 7
	lim2 = lim1 + 1<<14
	lim3 = lim2 + 1<<21
	lim4 = lim3 + 1<<28
)

// EncodedLen returns the number of bytes Append would write for id.
func EncodedLen(id ID) int {
	n := 0
	for _, c := range id {
		n += componentLen(c)
	}
	return n
}

func componentLen(c uint32) int {
	switch {
	case c < lim1:
		return 1
	case c < lim2:
		return 2
	case c < lim3:
		return 3
	case c < lim4:
		return 4
	default:
		return 5
	}
}

// Append appends the order-preserving encoding of id to buf and returns the
// extended slice.
func Append(buf []byte, id ID) []byte {
	for _, c := range id {
		buf = appendComponent(buf, c)
	}
	return buf
}

func appendComponent(buf []byte, c uint32) []byte {
	switch {
	case c < lim1:
		return append(buf, byte(c))
	case c < lim2:
		v := c - lim1
		return append(buf, 0x80|byte(v>>8), byte(v))
	case c < lim3:
		v := c - lim2
		return append(buf, 0xC0|byte(v>>16), byte(v>>8), byte(v))
	case c < lim4:
		v := c - lim3
		return append(buf, 0xE0|byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		v := uint64(c) - lim4
		return append(buf, 0xF0|byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

// Encode returns the order-preserving encoding of id.
func Encode(id ID) []byte {
	return Append(make([]byte, 0, EncodedLen(id)), id)
}

// Decode parses an encoded ID occupying all of buf.
func Decode(buf []byte) (ID, error) {
	id := make(ID, 0, len(buf))
	for len(buf) > 0 {
		c, n, err := decodeComponent(buf)
		if err != nil {
			return nil, err
		}
		id = append(id, c)
		buf = buf[n:]
	}
	return id, nil
}

// DecodeInto parses an encoded ID occupying all of buf, appending components
// to dst (which is reset to length zero first) to avoid allocation in hot
// loops. It returns the extended dst.
func DecodeInto(dst ID, buf []byte) (ID, error) {
	return AppendDecoded(dst[:0], buf)
}

// AppendDecoded decodes the components in buf and appends them to dst
// without resetting it — the primitive behind prefix-compressed postings,
// where a stored suffix extends a shared prefix.
func AppendDecoded(dst ID, buf []byte) (ID, error) {
	for len(buf) > 0 {
		c, n, err := decodeComponent(buf)
		if err != nil {
			return dst, err
		}
		dst = append(dst, c)
		buf = buf[n:]
	}
	return dst, nil
}

func decodeComponent(buf []byte) (uint32, int, error) {
	b0 := buf[0]
	switch {
	case b0 < 0x80:
		return uint32(b0), 1, nil
	case b0 < 0xC0:
		if len(buf) < 2 {
			return 0, 0, fmt.Errorf("dewey: truncated 2-byte component")
		}
		return lim1 + (uint32(b0&0x3F)<<8 | uint32(buf[1])), 2, nil
	case b0 < 0xE0:
		if len(buf) < 3 {
			return 0, 0, fmt.Errorf("dewey: truncated 3-byte component")
		}
		return lim2 + (uint32(b0&0x1F)<<16 | uint32(buf[1])<<8 | uint32(buf[2])), 3, nil
	case b0 < 0xF0:
		if len(buf) < 4 {
			return 0, 0, fmt.Errorf("dewey: truncated 4-byte component")
		}
		return lim3 + (uint32(b0&0x0F)<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])), 4, nil
	default:
		if len(buf) < 5 {
			return 0, 0, fmt.Errorf("dewey: truncated 5-byte component")
		}
		v := uint64(b0&0x0F)<<32 | uint64(buf[1])<<24 | uint64(buf[2])<<16 | uint64(buf[3])<<8 | uint64(buf[4])
		v += lim4
		if v > 0xFFFFFFFF {
			return 0, 0, fmt.Errorf("dewey: component overflows uint32")
		}
		return uint32(v), 5, nil
	}
}

// NumComponents returns how many components the encoded ID in buf holds,
// without materializing them. It returns an error on a truncated encoding.
func NumComponents(buf []byte) (int, error) {
	n := 0
	for len(buf) > 0 {
		_, w, err := decodeComponent(buf)
		if err != nil {
			return 0, err
		}
		buf = buf[w:]
		n++
	}
	return n, nil
}
